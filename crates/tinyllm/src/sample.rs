//! Stochastic decoding: temperature + top-k sampling.

use rand::rngs::StdRng;
use rand::Rng;

/// Samples a token from `logits` with `temperature` and optional `top_k`
/// filtering, using the caller's RNG.
///
/// `temperature == 0` degenerates to greedy argmax. `top_k == 0` means no
/// top-k filtering.
///
/// # Panics
///
/// Panics if `logits` is empty or `temperature` is negative.
pub fn sample_token(logits: &[f32], temperature: f32, top_k: usize, rng: &mut StdRng) -> usize {
    assert!(!logits.is_empty(), "cannot sample from empty logits");
    assert!(temperature >= 0.0, "temperature cannot be negative");
    if temperature == 0.0 {
        return crate::argmax(logits);
    }
    // Rank tokens by logit; keep the top-k (or all).
    let mut idx: Vec<usize> = (0..logits.len()).collect();
    idx.sort_by(|&a, &b| logits[b].partial_cmp(&logits[a]).expect("finite logits"));
    let keep = if top_k == 0 {
        idx.len()
    } else {
        top_k.min(idx.len())
    };
    let kept = &idx[..keep];
    // Softmax over the kept set at the given temperature.
    let max = logits[kept[0]];
    let weights: Vec<f64> = kept
        .iter()
        .map(|&i| (((logits[i] - max) / temperature) as f64).exp())
        .collect();
    let total: f64 = weights.iter().sum();
    let mut x = rng.gen::<f64>() * total;
    for (w, &i) in weights.iter().zip(kept) {
        x -= w;
        if x < 0.0 {
            return i;
        }
    }
    kept[keep - 1]
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn zero_temperature_is_greedy() {
        let logits = vec![0.1, 3.0, -1.0];
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10 {
            assert_eq!(sample_token(&logits, 0.0, 0, &mut rng), 1);
        }
    }

    #[test]
    fn top_1_is_greedy_at_any_temperature() {
        let logits = vec![0.1, 3.0, -1.0, 2.9];
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..10 {
            assert_eq!(sample_token(&logits, 5.0, 1, &mut rng), 1);
        }
    }

    #[test]
    fn sampling_follows_the_distribution() {
        // Two tokens, logit gap 1.0 at temperature 1.0: p1/p0 = e.
        let logits = vec![0.0, 1.0];
        let mut rng = StdRng::seed_from_u64(3);
        let n = 20_000;
        let ones = (0..n)
            .filter(|_| sample_token(&logits, 1.0, 0, &mut rng) == 1)
            .count();
        let frac = ones as f64 / n as f64;
        let expect = std::f64::consts::E / (1.0 + std::f64::consts::E);
        assert!((frac - expect).abs() < 0.02, "frac {frac} expect {expect}");
    }

    #[test]
    fn top_k_excludes_the_tail() {
        let logits = vec![5.0, 4.0, -100.0];
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..200 {
            let t = sample_token(&logits, 2.0, 2, &mut rng);
            assert!(t != 2, "tail token sampled despite top-2");
        }
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_logits_panic() {
        let mut rng = StdRng::seed_from_u64(5);
        let _ = sample_token(&[], 1.0, 0, &mut rng);
    }
}
