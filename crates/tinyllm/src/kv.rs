//! The KV cache with coupled or decoupled positional encoding.

/// Whether rotary position embeddings are baked into the cached keys.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PeMode {
    /// Keys are cached *before* RoPE; positions are re-embedded at use
    /// time (CachedAttention, §3.4 / Fig 11c). Truncation stays valid.
    Decoupled,
    /// Keys are cached *after* RoPE at their insertion position (the
    /// conventional layout, Fig 11b). Truncation scrambles positions.
    Coupled,
}

/// Per-layer cached key/value rows for one sequence.
#[derive(Debug, Clone)]
pub struct KvCache {
    mode: PeMode,
    /// `k[layer]` is row-major `[tokens, kv_dim]`.
    k: Vec<Vec<f32>>,
    /// `v[layer]`, same layout.
    v: Vec<Vec<f32>>,
    kv_dim: usize,
    tokens: usize,
}

impl KvCache {
    /// Creates an empty cache for `n_layers` layers of `kv_dim`-wide
    /// key/value rows.
    pub fn new(mode: PeMode, n_layers: usize, kv_dim: usize) -> KvCache {
        KvCache {
            mode,
            k: vec![Vec::new(); n_layers],
            v: vec![Vec::new(); n_layers],
            kv_dim,
            tokens: 0,
        }
    }

    /// Returns the positional-encoding mode.
    pub fn mode(&self) -> PeMode {
        self.mode
    }

    /// Returns the number of cached tokens.
    pub fn len(&self) -> usize {
        self.tokens
    }

    /// Returns `true` when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.tokens == 0
    }

    /// Returns the key/value width.
    pub fn kv_dim(&self) -> usize {
        self.kv_dim
    }

    /// Appends one token's K/V rows for `layer`.
    ///
    /// The caller appends layer 0 first for each token; the token count
    /// advances when layer 0 grows.
    pub fn push(&mut self, layer: usize, k_row: &[f32], v_row: &[f32]) {
        assert_eq!(k_row.len(), self.kv_dim, "key width mismatch");
        assert_eq!(v_row.len(), self.kv_dim, "value width mismatch");
        self.k[layer].extend_from_slice(k_row);
        self.v[layer].extend_from_slice(v_row);
        if layer == 0 {
            self.tokens += 1;
        }
    }

    /// Returns the cached keys of `layer` (row-major `[tokens, kv_dim]`).
    pub fn keys(&self, layer: usize) -> &[f32] {
        &self.k[layer]
    }

    /// Returns the cached values of `layer`.
    pub fn values(&self, layer: usize) -> &[f32] {
        &self.v[layer]
    }

    /// Drops the oldest `n` tokens from every layer (KV cache truncation,
    /// Fig 10b/12).
    ///
    /// In [`PeMode::Decoupled`] the remaining keys are position-free and
    /// get fresh positions `0..len` at the next use — the cache stays
    /// semantically identical to a recompute of the truncated prompt. In
    /// [`PeMode::Coupled`] the remaining keys keep their stale rotations.
    pub fn truncate_front(&mut self, n: usize) {
        let n = n.min(self.tokens);
        for layer_k in &mut self.k {
            layer_k.drain(..n * self.kv_dim);
        }
        for layer_v in &mut self.v {
            layer_v.drain(..n * self.kv_dim);
        }
        self.tokens -= n;
    }

    /// Removes everything.
    pub fn clear(&mut self) {
        for l in &mut self.k {
            l.clear();
        }
        for l in &mut self.v {
            l.clear();
        }
        self.tokens = 0;
    }

    /// Discards the KV rows of the given token indices (a *token
    /// discarding list*, §3.4's compression hook) from every layer.
    ///
    /// This is how CachedAttention complies with KV compression schemes
    /// such as attention sinks or heavy-hitter selection: the compression
    /// technique produces the TDL, the cache drops those rows, and —
    /// under [`PeMode::Decoupled`] — the survivors are re-embedded with
    /// compact fresh positions at the next use. Indices are deduplicated;
    /// out-of-range indices are ignored.
    pub fn discard(&mut self, tdl: &[usize]) {
        let mut drop = vec![false; self.tokens];
        for &i in tdl {
            if i < self.tokens {
                drop[i] = true;
            }
        }
        let kept: Vec<usize> = (0..self.tokens).filter(|&i| !drop[i]).collect();
        let dim = self.kv_dim;
        for layer in 0..self.k.len() {
            let mut new_k = Vec::with_capacity(kept.len() * dim);
            let mut new_v = Vec::with_capacity(kept.len() * dim);
            for &i in &kept {
                new_k.extend_from_slice(&self.k[layer][i * dim..(i + 1) * dim]);
                new_v.extend_from_slice(&self.v[layer][i * dim..(i + 1) * dim]);
            }
            self.k[layer] = new_k;
            self.v[layer] = new_v;
        }
        self.tokens = kept.len();
    }

    /// StreamingLLM-style truncation: keep the first `n_sink` tokens (the
    /// attention sinks) and the most recent `n_recent`, discarding the
    /// middle. A no-op when nothing falls in the middle.
    pub fn keep_sinks_and_recent(&mut self, n_sink: usize, n_recent: usize) {
        if n_sink + n_recent >= self.tokens {
            return;
        }
        let tdl: Vec<usize> = (n_sink..self.tokens - n_recent).collect();
        self.discard(&tdl);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_truncate_round_trip() {
        let mut c = KvCache::new(PeMode::Decoupled, 2, 4);
        for t in 0..3 {
            for layer in 0..2 {
                let row = vec![t as f32; 4];
                c.push(layer, &row, &row);
            }
        }
        assert_eq!(c.len(), 3);
        c.truncate_front(2);
        assert_eq!(c.len(), 1);
        assert_eq!(c.keys(0), &[2.0; 4]);
        assert_eq!(c.values(1), &[2.0; 4]);
    }

    #[test]
    fn truncate_more_than_len_empties() {
        let mut c = KvCache::new(PeMode::Coupled, 1, 2);
        c.push(0, &[1.0, 2.0], &[3.0, 4.0]);
        c.truncate_front(10);
        assert!(c.is_empty());
    }

    #[test]
    #[should_panic(expected = "key width mismatch")]
    fn wrong_width_rejected() {
        let mut c = KvCache::new(PeMode::Decoupled, 1, 4);
        c.push(0, &[1.0], &[1.0, 2.0, 3.0, 4.0]);
    }

    fn filled(n: usize) -> KvCache {
        let mut c = KvCache::new(PeMode::Decoupled, 2, 2);
        for t in 0..n {
            for layer in 0..2 {
                c.push(layer, &[t as f32, 0.0], &[0.0, t as f32]);
            }
        }
        c
    }

    #[test]
    fn discard_removes_exactly_the_tdl() {
        let mut c = filled(6);
        c.discard(&[1, 3, 3, 99]);
        assert_eq!(c.len(), 4);
        // Survivors 0, 2, 4, 5 in order, on every layer.
        for layer in 0..2 {
            let firsts: Vec<f32> = c.keys(layer).chunks(2).map(|r| r[0]).collect();
            assert_eq!(firsts, vec![0.0, 2.0, 4.0, 5.0]);
        }
    }

    #[test]
    fn keep_sinks_and_recent_drops_the_middle() {
        let mut c = filled(10);
        c.keep_sinks_and_recent(2, 3);
        assert_eq!(c.len(), 5);
        let firsts: Vec<f32> = c.keys(0).chunks(2).map(|r| r[0]).collect();
        assert_eq!(firsts, vec![0.0, 1.0, 7.0, 8.0, 9.0]);
        // Nothing to drop: no-op.
        let mut small = filled(4);
        small.keep_sinks_and_recent(2, 2);
        assert_eq!(small.len(), 4);
    }

    #[test]
    fn discard_empty_tdl_is_noop() {
        let mut c = filled(3);
        c.discard(&[]);
        assert_eq!(c.len(), 3);
    }
}
