//! The inference engine: a LLaMA-shaped forward pass over a KV cache.

use crate::{KvCache, PeMode};

/// Architecture hyperparameters.
#[derive(Debug, Clone, PartialEq)]
pub struct TinyConfig {
    /// Vocabulary size.
    pub vocab: usize,
    /// Model (embedding) dimension; equals `n_heads * head_dim`.
    pub dim: usize,
    /// Number of transformer layers.
    pub n_layers: usize,
    /// Attention (query) heads.
    pub n_heads: usize,
    /// Key/value heads (`<= n_heads`, GQA).
    pub n_kv_heads: usize,
    /// Per-head dimension (even, for RoPE).
    pub head_dim: usize,
    /// SwiGLU intermediate dimension.
    pub ffn_dim: usize,
    /// RoPE base.
    pub rope_theta: f32,
    /// RMSNorm epsilon.
    pub eps: f32,
}

impl TinyConfig {
    /// The configuration used by the Table 1–2 reproduction: small enough
    /// to train on CPU in seconds, big enough to learn the synthetic
    /// corpus well.
    pub fn table12() -> TinyConfig {
        TinyConfig {
            vocab: 32,
            dim: 48,
            n_layers: 2,
            n_heads: 4,
            n_kv_heads: 4,
            head_dim: 12,
            ffn_dim: 128,
            rope_theta: 10_000.0,
            eps: 1e-5,
        }
    }

    /// A GQA variant (2 KV heads for 4 query heads) used in tests.
    pub fn table12_gqa() -> TinyConfig {
        TinyConfig {
            n_kv_heads: 2,
            ..TinyConfig::table12()
        }
    }

    /// Query projection width.
    pub fn q_dim(&self) -> usize {
        self.n_heads * self.head_dim
    }

    /// Key/value projection width.
    pub fn kv_dim(&self) -> usize {
        self.n_kv_heads * self.head_dim
    }
}

/// One layer's weights, all row-major `[in, out]`.
#[derive(Debug, Clone)]
pub struct LayerWeights {
    /// Pre-attention RMSNorm scale `[dim]`.
    pub attn_norm: Vec<f32>,
    /// Query projection `[dim, q_dim]`.
    pub wq: Vec<f32>,
    /// Key projection `[dim, kv_dim]`.
    pub wk: Vec<f32>,
    /// Value projection `[dim, kv_dim]`.
    pub wv: Vec<f32>,
    /// Output projection `[q_dim, dim]`.
    pub wo: Vec<f32>,
    /// Pre-FFN RMSNorm scale `[dim]`.
    pub ffn_norm: Vec<f32>,
    /// SwiGLU gate projection `[dim, ffn_dim]`.
    pub w1: Vec<f32>,
    /// SwiGLU down projection `[ffn_dim, dim]`.
    pub w2: Vec<f32>,
    /// SwiGLU up projection `[dim, ffn_dim]`.
    pub w3: Vec<f32>,
}

/// Full model weights.
#[derive(Debug, Clone)]
pub struct Weights {
    /// Token embedding `[vocab, dim]`.
    pub embed: Vec<f32>,
    /// Transformer layers.
    pub layers: Vec<LayerWeights>,
    /// Final RMSNorm scale `[dim]`.
    pub final_norm: Vec<f32>,
    /// LM head `[dim, vocab]`.
    pub head: Vec<f32>,
}

/// Deterministic pseudo-random weight data.
fn randn(n: usize, std: f32, seed: u64) -> Vec<f32> {
    nanograd::Tensor::randn(vec![n], std, seed).data
}

impl Weights {
    /// Random initialization (the starting point for training).
    pub fn random(cfg: &TinyConfig, seed: u64) -> Weights {
        let d = cfg.dim;
        let std = 0.7 / (d as f32).sqrt();
        let mut s = seed;
        let mut next = |n: usize, scale: f32| {
            s += 1;
            randn(n, scale, s)
        };
        let layers = (0..cfg.n_layers)
            .map(|_| LayerWeights {
                attn_norm: vec![1.0; d],
                wq: next(d * cfg.q_dim(), std),
                wk: next(d * cfg.kv_dim(), std),
                wv: next(d * cfg.kv_dim(), std),
                wo: next(cfg.q_dim() * d, std),
                ffn_norm: vec![1.0; d],
                w1: next(d * cfg.ffn_dim, std),
                w2: next(cfg.ffn_dim * d, std),
                w3: next(d * cfg.ffn_dim, std),
            })
            .collect();
        Weights {
            embed: next(cfg.vocab * d, 0.1),
            layers,
            final_norm: vec![1.0; d],
            head: next(d * cfg.vocab, std),
        }
    }
}

/// `y = x · W` for row-major `W[in, out]`.
fn matvec(x: &[f32], w: &[f32], out_dim: usize) -> Vec<f32> {
    let mut y = vec![0.0; out_dim];
    for (i, &xi) in x.iter().enumerate() {
        if xi == 0.0 {
            continue;
        }
        let row = &w[i * out_dim..(i + 1) * out_dim];
        for (yj, wj) in y.iter_mut().zip(row) {
            *yj += xi * wj;
        }
    }
    y
}

/// Row-wise RMS normalization.
fn rmsnorm(x: &[f32], w: &[f32], eps: f32) -> Vec<f32> {
    let ms: f32 = x.iter().map(|v| v * v).sum::<f32>() / x.len() as f32;
    let r = 1.0 / (ms + eps).sqrt();
    x.iter().zip(w).map(|(v, w)| v * r * w).collect()
}

/// Rotates one `head_dim`-wide slice in place by RoPE at `pos`.
///
/// This must match `nanograd`'s RoPE exactly; the trainer-equivalence
/// test pins that.
fn rope_head(slice: &mut [f32], pos: usize, theta: f32) {
    let head_dim = slice.len();
    for i in 0..head_dim / 2 {
        let freq = theta.powf(-2.0 * i as f32 / head_dim as f32);
        let (sin, cos) = (pos as f32 * freq).sin_cos();
        let x = slice[2 * i];
        let y = slice[2 * i + 1];
        slice[2 * i] = x * cos - y * sin;
        slice[2 * i + 1] = x * sin + y * cos;
    }
}

/// Rotates every head of a projection row at `pos`.
fn rope_row(row: &mut [f32], pos: usize, head_dim: usize, theta: f32) {
    for chunk in row.chunks_mut(head_dim) {
        rope_head(chunk, pos, theta);
    }
}

/// Numerically stable log-softmax probability of `target`.
pub fn log_prob(logits: &[f32], target: usize) -> f32 {
    let max = logits.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let lse = max + logits.iter().map(|&x| (x - max).exp()).sum::<f32>().ln();
    logits[target] - lse
}

/// KL divergence `D(softmax(p) ‖ softmax(q))` in nats.
///
/// Measures how far a truncation scheme's next-token distribution `q`
/// drifts from the recompute reference `p`; exact agreement gives 0.
///
/// # Panics
///
/// Panics when the logit vectors have different lengths.
pub fn kl_divergence(p_logits: &[f32], q_logits: &[f32]) -> f64 {
    assert_eq!(p_logits.len(), q_logits.len(), "logit length mismatch");
    let log_softmax = |l: &[f32]| -> Vec<f64> {
        let max = l.iter().copied().fold(f32::NEG_INFINITY, f32::max) as f64;
        let lse = max + l.iter().map(|&x| (x as f64 - max).exp()).sum::<f64>().ln();
        l.iter().map(|&x| x as f64 - lse).collect()
    };
    let lp = log_softmax(p_logits);
    let lq = log_softmax(q_logits);
    lp.iter().zip(&lq).map(|(&a, &b)| a.exp() * (a - b)).sum()
}

/// Index of the largest logit (greedy decoding).
pub fn argmax(logits: &[f32]) -> usize {
    logits
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).expect("logits are finite"))
        .map(|(i, _)| i)
        .expect("non-empty logits")
}

/// The inference model.
pub struct Model {
    /// Architecture.
    pub cfg: TinyConfig,
    /// Weights.
    pub weights: Weights,
}

impl Model {
    /// Wraps config and weights.
    pub fn new(cfg: TinyConfig, weights: Weights) -> Model {
        Model { cfg, weights }
    }

    /// Creates an empty cache matching this model.
    pub fn cache(&self, mode: PeMode) -> KvCache {
        KvCache::new(mode, self.cfg.n_layers, self.cfg.kv_dim())
    }

    /// Feeds one token through the model, extending `cache`, and returns
    /// the next-token logits.
    ///
    /// The token's position is the cache index it lands on; under
    /// [`PeMode::Decoupled`] all cached keys are re-embedded with their
    /// *current* indices at use time, so a front-truncated cache behaves
    /// exactly like a recompute of the truncated prompt.
    pub fn forward_one(&self, token: usize, cache: &mut KvCache) -> Vec<f32> {
        let cfg = &self.cfg;
        assert!(token < cfg.vocab, "token {token} out of vocabulary");
        let d = cfg.dim;
        let hd = cfg.head_dim;
        let gqa = cfg.n_heads / cfg.n_kv_heads;
        let pos = cache.len();
        let mut x = self.weights.embed[token * d..(token + 1) * d].to_vec();
        for (layer_idx, lw) in self.weights.layers.iter().enumerate() {
            let h = rmsnorm(&x, &lw.attn_norm, cfg.eps);
            let mut q = matvec(&h, &lw.wq, cfg.q_dim());
            let mut k = matvec(&h, &lw.wk, cfg.kv_dim());
            let v = matvec(&h, &lw.wv, cfg.kv_dim());
            // Queries always carry their current position.
            rope_row(&mut q, pos, hd, cfg.rope_theta);
            match cache.mode() {
                // Decoupled: store the raw key, rotate at use.
                PeMode::Decoupled => cache.push(layer_idx, &k, &v),
                // Coupled: bake the position in now.
                PeMode::Coupled => {
                    rope_row(&mut k, pos, hd, cfg.rope_theta);
                    cache.push(layer_idx, &k, &v);
                }
            }
            let keys = cache.keys(layer_idx);
            let values = cache.values(layer_idx);
            let n_ctx = pos + 1;
            let kv_dim = cfg.kv_dim();
            let mut att_out = vec![0.0f32; cfg.q_dim()];
            let scale = 1.0 / (hd as f32).sqrt();
            for head in 0..cfg.n_heads {
                let kv_head = head / gqa;
                let q_h = &q[head * hd..(head + 1) * hd];
                let mut scores = Vec::with_capacity(n_ctx);
                for j in 0..n_ctx {
                    let k_j = &keys[j * kv_dim + kv_head * hd..j * kv_dim + (kv_head + 1) * hd];
                    let dot = match cache.mode() {
                        PeMode::Decoupled => {
                            // Re-embed position j at use time.
                            let mut kj = k_j.to_vec();
                            rope_head(&mut kj, j, cfg.rope_theta);
                            q_h.iter().zip(&kj).map(|(a, b)| a * b).sum::<f32>()
                        }
                        PeMode::Coupled => q_h.iter().zip(k_j).map(|(a, b)| a * b).sum::<f32>(),
                    };
                    scores.push(dot * scale);
                }
                // Softmax over the causal context.
                let max = scores.iter().copied().fold(f32::NEG_INFINITY, f32::max);
                let mut sum = 0.0;
                for s in scores.iter_mut() {
                    *s = (*s - max).exp();
                    sum += *s;
                }
                let out = &mut att_out[head * hd..(head + 1) * hd];
                for (j, s) in scores.iter().enumerate() {
                    let w = s / sum;
                    let v_j = &values[j * kv_dim + kv_head * hd..j * kv_dim + (kv_head + 1) * hd];
                    for (o, vv) in out.iter_mut().zip(v_j) {
                        *o += w * vv;
                    }
                }
            }
            let o = matvec(&att_out, &lw.wo, d);
            for (xi, oi) in x.iter_mut().zip(&o) {
                *xi += oi;
            }
            let h2 = rmsnorm(&x, &lw.ffn_norm, cfg.eps);
            let a = matvec(&h2, &lw.w1, cfg.ffn_dim);
            let c = matvec(&h2, &lw.w3, cfg.ffn_dim);
            let g: Vec<f32> = a
                .iter()
                .zip(&c)
                .map(|(&av, &cv)| av / (1.0 + (-av).exp()) * cv)
                .collect();
            let f = matvec(&g, &lw.w2, d);
            for (xi, fi) in x.iter_mut().zip(&f) {
                *xi += fi;
            }
        }
        let xn = rmsnorm(&x, &self.weights.final_norm, cfg.eps);
        matvec(&xn, &self.weights.head, cfg.vocab)
    }

    /// Feeds a token sequence, returning the logits after each token.
    pub fn forward(&self, tokens: &[usize], cache: &mut KvCache) -> Vec<Vec<f32>> {
        tokens.iter().map(|&t| self.forward_one(t, cache)).collect()
    }

    /// Greedy-decodes `n` tokens starting from the cache state and
    /// `first` as the next input token.
    pub fn greedy(&self, first: usize, n: usize, cache: &mut KvCache) -> Vec<usize> {
        let mut out = Vec::with_capacity(n);
        let mut tok = first;
        for _ in 0..n {
            let logits = self.forward_one(tok, cache);
            tok = argmax(&logits);
            out.push(tok);
        }
        out
    }

    /// Generates `n` tokens by temperature/top-k sampling, starting from
    /// the cache state and `first` as the next input token.
    pub fn generate(
        &self,
        first: usize,
        n: usize,
        cache: &mut KvCache,
        temperature: f32,
        top_k: usize,
        rng: &mut rand::rngs::StdRng,
    ) -> Vec<usize> {
        let mut out = Vec::with_capacity(n);
        let mut tok = first;
        for _ in 0..n {
            let logits = self.forward_one(tok, cache);
            tok = crate::sample_token(&logits, temperature, top_k, rng);
            out.push(tok);
        }
        out
    }

    /// Perplexity of `text` under teacher forcing with the given cache.
    pub fn perplexity(&self, text: &[usize], cache: &mut KvCache) -> f64 {
        assert!(text.len() >= 2, "perplexity needs at least two tokens");
        let mut nll = 0.0f64;
        for w in text.windows(2) {
            let logits = self.forward_one(w[0], cache);
            nll -= log_prob(&logits, w[1]) as f64;
        }
        (nll / (text.len() - 1) as f64).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> Model {
        let cfg = TinyConfig::table12();
        let w = Weights::random(&cfg, 99);
        Model::new(cfg, w)
    }

    #[test]
    fn forward_is_deterministic_and_finite() {
        let m = model();
        let mut c1 = m.cache(PeMode::Decoupled);
        let mut c2 = m.cache(PeMode::Decoupled);
        let a = m.forward(&[1, 2, 3], &mut c1);
        let b = m.forward(&[1, 2, 3], &mut c2);
        assert_eq!(a, b);
        assert!(a[2].iter().all(|x| x.is_finite()));
        assert_eq!(a[2].len(), m.cfg.vocab);
    }

    /// Without truncation, coupled and decoupled caches are numerically
    /// equivalent: rotating K at insert or at use gives the same dot
    /// products when positions never change.
    #[test]
    fn coupled_equals_decoupled_without_truncation() {
        let m = model();
        let toks = [3usize, 1, 4, 1, 5, 9, 2, 6];
        let mut cd = m.cache(PeMode::Decoupled);
        let mut cc = m.cache(PeMode::Coupled);
        let a = m.forward(&toks, &mut cd);
        let b = m.forward(&toks, &mut cc);
        for (ra, rb) in a.iter().zip(&b) {
            for (x, y) in ra.iter().zip(rb) {
                assert!((x - y).abs() < 1e-4, "{x} vs {y}");
            }
        }
    }

    /// §3.4's core claim, in its exact form: for a single-layer model —
    /// where cached KV depends only on the token itself — truncating a
    /// decoupled cache and continuing *equals* recomputing from the
    /// truncated token list.
    #[test]
    fn decoupled_truncation_equals_recompute_single_layer() {
        let cfg = TinyConfig {
            n_layers: 1,
            ..TinyConfig::table12()
        };
        let m = Model::new(cfg.clone(), Weights::random(&cfg, 42));
        let prompt: Vec<usize> = (0..20).map(|i| (i * 7 + 3) % 32).collect();
        let tail = [9usize, 8, 7];
        let mut ca = m.cache(PeMode::Decoupled);
        m.forward(&prompt, &mut ca);
        ca.truncate_front(10);
        let ca_logits = m.forward(&tail, &mut ca);
        let mut tt = m.cache(PeMode::Decoupled);
        m.forward(&prompt[10..], &mut tt);
        let tt_logits = m.forward(&tail, &mut tt);
        for (ra, rb) in ca_logits.iter().zip(&tt_logits) {
            for (x, y) in ra.iter().zip(rb) {
                assert!((x - y).abs() < 1e-4, "CA {x} vs TT {y}");
            }
        }
    }

    // Note: for deeper models the retained KV of upper layers still
    // encodes attention over the dropped prefix, so CA approximates
    // rather than equals TT. With *random* weights that approximation
    // error is as large as NKVT's scrambling; the Table 1 separation
    // (CA ≈ TT ≪ NKVT) emerges on trained models and is tested in
    // `train::tests::truncation_schemes_separate_on_a_trained_model`.

    /// Naive KV truncation diverges from the recompute reference.
    #[test]
    fn coupled_truncation_diverges() {
        let m = model();
        let prompt: Vec<usize> = (0..20).map(|i| (i * 7 + 3) % 32).collect();
        let tail = [9usize, 8, 7];
        let mut nkvt = m.cache(PeMode::Coupled);
        m.forward(&prompt, &mut nkvt);
        nkvt.truncate_front(10);
        let nk_logits = m.forward(&tail, &mut nkvt);
        let mut tt = m.cache(PeMode::Decoupled);
        m.forward(&prompt[10..], &mut tt);
        let tt_logits = m.forward(&tail, &mut tt);
        let max_diff = nk_logits
            .iter()
            .zip(&tt_logits)
            .flat_map(|(a, b)| a.iter().zip(b).map(|(x, y)| (x - y).abs()))
            .fold(0.0f32, f32::max);
        assert!(max_diff > 1e-2, "expected divergence, max diff {max_diff}");
    }

    #[test]
    fn gqa_forward_works() {
        let cfg = TinyConfig::table12_gqa();
        let w = Weights::random(&cfg, 5);
        let m = Model::new(cfg, w);
        let mut c = m.cache(PeMode::Decoupled);
        let logits = m.forward(&[1, 2, 3, 4], &mut c);
        assert!(logits[3].iter().all(|x| x.is_finite()));
        assert_eq!(c.kv_dim(), 2 * 12);
    }

    #[test]
    fn sampled_generation_stays_in_vocabulary() {
        use rand::SeedableRng;
        let m = model();
        let mut cache = m.cache(PeMode::Decoupled);
        m.forward(&[1, 2, 3], &mut cache);
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let toks = m.generate(4, 32, &mut cache, 0.8, 5, &mut rng);
        assert_eq!(toks.len(), 32);
        assert!(toks.iter().all(|&t| t < m.cfg.vocab));
        // Temperature zero collapses to the greedy path.
        let mut c1 = m.cache(PeMode::Decoupled);
        m.forward(&[1, 2, 3], &mut c1);
        let mut c2 = c1.clone();
        let greedy = m.greedy(4, 8, &mut c1);
        let cold = m.generate(4, 8, &mut c2, 0.0, 0, &mut rng);
        assert_eq!(greedy, cold);
    }

    #[test]
    fn greedy_is_deterministic() {
        let m = model();
        let mut c1 = m.cache(PeMode::Decoupled);
        m.forward(&[1, 2, 3], &mut c1);
        let mut c2 = c1.clone();
        assert_eq!(m.greedy(4, 8, &mut c1), m.greedy(4, 8, &mut c2));
    }

    #[test]
    fn kl_divergence_properties() {
        let p = vec![1.0f32, 0.0, -1.0];
        // Self-divergence is zero; shifted logits are the same distribution.
        assert!(kl_divergence(&p, &p).abs() < 1e-12);
        let shifted: Vec<f32> = p.iter().map(|x| x + 5.0).collect();
        assert!(kl_divergence(&p, &shifted).abs() < 1e-5);
        // Divergence from a genuinely different distribution is positive.
        let q = vec![-1.0f32, 0.0, 1.0];
        assert!(kl_divergence(&p, &q) > 0.1);
    }

    #[test]
    fn log_prob_and_argmax() {
        let logits = vec![0.0, 2.0, -1.0];
        assert_eq!(argmax(&logits), 1);
        let p: f32 = log_prob(&logits, 1);
        // softmax(2) among {0,2,-1}: e²/(1+e²+e⁻¹).
        let expect = (2.0f32.exp() / (1.0 + 2.0f32.exp() + (-1.0f32).exp())).ln();
        assert!((p - expect).abs() < 1e-5);
    }

    #[test]
    fn untrained_ppl_is_near_uniform() {
        let m = model();
        let text: Vec<usize> = (0..64).map(|i| (i * 13 + 5) % 32).collect();
        let mut c = m.cache(PeMode::Decoupled);
        let ppl = m.perplexity(&text, &mut c);
        // A random-weight model should sit in the vicinity of the uniform
        // perplexity (vocab = 32), certainly within a factor ~2.
        assert!(ppl > 8.0 && ppl < 90.0, "ppl {ppl}");
    }
}
