#![warn(missing_docs)]

//! A complete from-scratch CPU transformer with a decoupled
//! positional-encoding KV cache.
//!
//! This crate exists for the paper's §3.4 and Tables 1–2: it demonstrates
//! — on a real, trained RoPE transformer — that
//!
//! - **CA** (decoupled positional encoding): caching K *before* RoPE and
//!   re-embedding fresh positions at use time makes KV-cache truncation
//!   *exactly* equivalent to recomputing from the token-truncated prompt;
//! - **TT** (token truncation): the recompute reference;
//! - **NKVT** (naive KV truncation): truncating a cache that stores
//!   post-RoPE keys scrambles the positional information and destroys
//!   perplexity and accuracy.
//!
//! The architecture is LLaMA-shaped: RMSNorm → GQA-capable attention with
//! rotary position embeddings → SwiGLU FFN, residual connections, untied
//! LM head. [`train::Trainer`] fits the same architecture with
//! [`nanograd`] on a synthetic Markov corpus so the perplexities in the
//! Table 1 reproduction are meaningful; an equivalence test pins the
//! trainer's forward pass to the inference engine's.

pub mod corpus;
mod kv;
mod model;
mod sample;
mod serialize;
pub mod train;

pub use kv::{KvCache, PeMode};
pub use model::{argmax, kl_divergence, log_prob, LayerWeights, Model, TinyConfig, Weights};
pub use sample::sample_token;
pub use serialize::DecodeError;
