//! Synthetic corpora: a learnable Markov character language and a
//! LongEval-style retrieval task.
//!
//! We cannot ship WikiText-2/PTB/C4 or run LLaMA-7B (Table 1's setting),
//! so the Table 1–2 reproduction trains the tiny model on a structured
//! Markov language: each symbol strongly prefers a few successors, so a
//! trained model reaches a perplexity far below uniform and any scheme
//! that scrambles its context shows up as a large PPL regression.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A Markov language over `vocab` symbols.
///
/// Order 1 conditions each symbol on its predecessor; order 2 conditions
/// on the previous *two* symbols. Order 2 matters for the truncation
/// experiments: predicting it requires the attention mechanism to fetch
/// the token at relative position −2, which is exactly the
/// position-sensitive behaviour that naive KV truncation scrambles.
#[derive(Debug, Clone)]
pub struct MarkovLang {
    vocab: usize,
    order: usize,
    /// Row-major transition matrix `[vocab^order, vocab]`, rows sum to 1.
    trans: Vec<f32>,
}

impl MarkovLang {
    fn build(vocab: usize, order: usize, seed: u64) -> MarkovLang {
        assert!(vocab >= 8, "need a non-trivial vocabulary");
        assert!((1..=2).contains(&order), "order 1 or 2 supported");
        let mut rng = StdRng::seed_from_u64(seed);
        let states = vocab.pow(order as u32);
        let mut trans = vec![0.0f32; states * vocab];
        let floor = 0.08 / vocab as f32;
        for s in 0..states {
            let row = &mut trans[s * vocab..(s + 1) * vocab];
            for x in row.iter_mut() {
                *x = floor;
            }
            let mut picks = Vec::new();
            while picks.len() < 3 {
                let c = rng.gen_range(0..vocab);
                if !picks.contains(&c) {
                    picks.push(c);
                }
            }
            row[picks[0]] += 0.55;
            row[picks[1]] += 0.25;
            row[picks[2]] += 0.12;
            let sum: f32 = row.iter().sum();
            for x in row.iter_mut() {
                *x /= sum;
            }
        }
        MarkovLang {
            vocab,
            order,
            trans,
        }
    }

    /// Builds an order-1 language: each symbol has three preferred
    /// successors (probabilities 0.55/0.25/0.12) plus a uniform floor.
    pub fn new(vocab: usize, seed: u64) -> MarkovLang {
        MarkovLang::build(vocab, 1, seed)
    }

    /// Builds an order-2 language (successors conditioned on the previous
    /// two symbols).
    pub fn order2(vocab: usize, seed: u64) -> MarkovLang {
        MarkovLang::build(vocab, 2, seed)
    }

    /// Vocabulary size.
    pub fn vocab(&self) -> usize {
        self.vocab
    }

    /// Markov order.
    pub fn order(&self) -> usize {
        self.order
    }

    fn state_of(&self, history: &[usize]) -> usize {
        match self.order {
            1 => history[history.len() - 1],
            _ => history[history.len() - 2] * self.vocab + history[history.len() - 1],
        }
    }

    /// Samples a sequence of `len` symbols.
    pub fn sample(&self, len: usize, seed: u64) -> Vec<usize> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut out = Vec::with_capacity(len);
        for _ in 0..self.order.min(len) {
            out.push(rng.gen_range(0..self.vocab));
        }
        while out.len() < len {
            let state = self.state_of(&out);
            let row = &self.trans[state * self.vocab..(state + 1) * self.vocab];
            let mut x: f32 = rng.gen();
            let mut next = self.vocab - 1;
            for (c, &p) in row.iter().enumerate() {
                x -= p;
                if x < 0.0 {
                    next = c;
                    break;
                }
            }
            out.push(next);
        }
        out
    }

    /// The entropy rate of the chain in nats per symbol.
    ///
    /// Computed from the stationary distribution over states (power
    /// iteration on the state chain).
    pub fn entropy_rate(&self) -> f64 {
        let v = self.vocab;
        let states = v.pow(self.order as u32);
        let mut pi = vec![1.0f64 / states as f64; states];
        for _ in 0..200 {
            let mut next_pi = vec![0.0f64; states];
            for (s, &pi_s) in pi.iter().enumerate() {
                for c in 0..v {
                    let p = self.trans[s * v + c] as f64;
                    // The successor state drops the oldest symbol.
                    let ns = if self.order == 1 { c } else { (s % v) * v + c };
                    next_pi[ns] += pi_s * p;
                }
            }
            pi = next_pi;
        }
        let mut h = 0.0f64;
        for (s, &pi_s) in pi.iter().enumerate() {
            for c in 0..v {
                let p = self.trans[s * v + c] as f64;
                if p > 0.0 {
                    h -= pi_s * p * p.ln();
                }
            }
        }
        h
    }
}

/// A LongEval-style key-value retrieval prompt.
///
/// The prompt encodes `n_pairs` (key, value) records as symbol pairs
/// `[key, value]`, then asks about one key with `[QUERY, key]`; the
/// correct continuation is that key's value — the canonical induction
/// pattern `A B … A → B`. Table 2's accuracy experiment asks each
/// truncation scheme the question after the context overflowed and was
/// truncated.
#[derive(Debug, Clone)]
pub struct RetrievalTask {
    /// Prompt symbols.
    pub prompt: Vec<usize>,
    /// Expected answer symbol.
    pub answer: usize,
    /// Index (within `prompt`) where the queried record starts.
    pub record_at: usize,
}

/// Symbols reserved at the top of the vocabulary for SEP/QUERY markers.
pub const RESERVED_SYMBOLS: usize = 2;

/// Generates a retrieval task over a `vocab`-symbol alphabet.
///
/// Keys come from the first half of the payload alphabet
/// (`0..(vocab-2)/2`) and values from the second half, so a queried key
/// never collides with a value token — the same disjointness LongEval's
/// line-number/content format provides. `vocab-2` is SEP and `vocab-1`
/// is QUERY. `ask` selects which record (0-based) is queried.
pub fn retrieval_task(vocab: usize, n_pairs: usize, ask: usize, seed: u64) -> RetrievalTask {
    assert!(ask < n_pairs, "asked record out of range");
    let sep = vocab - 2;
    let query = vocab - 1;
    let payload = vocab - RESERVED_SYMBOLS;
    let key_space = payload / 2;
    // Keys are distinct, so the key alphabet must cover the record count.
    assert!(
        key_space >= n_pairs,
        "need at least {n_pairs} key symbols, vocab provides {key_space}"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let mut prompt = Vec::new();
    let mut keys = Vec::new();
    let mut answer = 0;
    let mut record_at = 0;
    for i in 0..n_pairs {
        // Distinct keys so the query is unambiguous.
        let key = loop {
            let k = rng.gen_range(0..key_space);
            if !keys.contains(&k) {
                break k;
            }
        };
        keys.push(key);
        let value = key_space + rng.gen_range(0..payload - key_space);
        if i == ask {
            answer = value;
            record_at = prompt.len();
        }
        prompt.extend_from_slice(&[key, value]);
    }
    prompt.extend_from_slice(&[query, keys[ask]]);
    let _ = sep;
    RetrievalTask {
        prompt,
        answer,
        record_at,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sampling_is_deterministic_and_in_range() {
        let lang = MarkovLang::new(32, 1);
        let a = lang.sample(500, 2);
        let b = lang.sample(500, 2);
        assert_eq!(a, b);
        assert!(a.iter().all(|&t| t < 32));
        assert_ne!(a, lang.sample(500, 3));
    }

    /// The language is genuinely predictable: entropy rate well below
    /// uniform (ln 32 ≈ 3.47 nats).
    #[test]
    fn entropy_rate_is_low() {
        let lang = MarkovLang::new(32, 1);
        let h = lang.entropy_rate();
        assert!(h < 2.0, "entropy rate {h}");
        assert!(h > 0.5, "suspiciously deterministic: {h}");
    }

    /// Empirical bigram statistics match the transition structure: the
    /// most frequent successor carries most of the mass.
    #[test]
    fn sampled_text_follows_transitions() {
        let lang = MarkovLang::new(16, 7);
        let text = lang.sample(20_000, 11);
        let mut counts = vec![0u32; 16 * 16];
        for w in text.windows(2) {
            counts[w[0] * 16 + w[1]] += 1;
        }
        // For each state with enough visits, the top successor takes
        // over 40% of transitions.
        for s in 0..16 {
            let row = &counts[s * 16..(s + 1) * 16];
            let total: u32 = row.iter().sum();
            if total < 200 {
                continue;
            }
            let max = *row.iter().max().unwrap();
            assert!(
                max as f64 / total as f64 > 0.4,
                "state {s}: top successor only {}/{}",
                max,
                total
            );
        }
    }

    #[test]
    fn retrieval_task_shape() {
        let t = retrieval_task(32, 10, 3, 5);
        assert_eq!(t.prompt.len(), 10 * 2 + 2);
        assert_eq!(t.prompt[t.prompt.len() - 2], 31); // QUERY
                                                      // The queried key matches the asked record's key; values come
                                                      // from the disjoint upper half of the payload alphabet.
        assert_eq!(t.prompt[t.prompt.len() - 1], t.prompt[t.record_at]);
        assert_eq!(t.answer, t.prompt[t.record_at + 1]);
        assert!(t.prompt[t.record_at] < 15);
        assert!(t.answer >= 15);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn asking_past_the_records_panics() {
        let _ = retrieval_task(32, 3, 3, 1);
    }
}
