//! Training the tiny transformer with `nanograd`.
//!
//! The trainer builds the exact same architecture as [`crate::Model`] on
//! an autodiff tape (full-sequence, causal-masked) and fits it with Adam.
//! An equivalence test pins the tape forward to the inference engine's
//! KV-cached forward, so perplexities measured through either path agree.

use nanograd::{clip_global_norm, Adam, CosineSchedule, Tape, Tensor, Var};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::{Model, TinyConfig, Weights};

/// Orders the weights as flat tensors (the tape parameter layout).
fn weights_to_tensors(cfg: &TinyConfig, w: &Weights) -> Vec<Tensor> {
    let d = cfg.dim;
    let mut out = vec![Tensor::from_vec(w.embed.clone(), vec![cfg.vocab, d])];
    for lw in &w.layers {
        out.push(Tensor::from_vec(lw.attn_norm.clone(), vec![d]));
        out.push(Tensor::from_vec(lw.wq.clone(), vec![d, cfg.q_dim()]));
        out.push(Tensor::from_vec(lw.wk.clone(), vec![d, cfg.kv_dim()]));
        out.push(Tensor::from_vec(lw.wv.clone(), vec![d, cfg.kv_dim()]));
        out.push(Tensor::from_vec(lw.wo.clone(), vec![cfg.q_dim(), d]));
        out.push(Tensor::from_vec(lw.ffn_norm.clone(), vec![d]));
        out.push(Tensor::from_vec(lw.w1.clone(), vec![d, cfg.ffn_dim]));
        out.push(Tensor::from_vec(lw.w2.clone(), vec![cfg.ffn_dim, d]));
        out.push(Tensor::from_vec(lw.w3.clone(), vec![d, cfg.ffn_dim]));
    }
    out.push(Tensor::from_vec(w.final_norm.clone(), vec![d]));
    out.push(Tensor::from_vec(w.head.clone(), vec![d, cfg.vocab]));
    out
}

/// Rebuilds [`Weights`] from the flat tensor layout.
fn tensors_to_weights(cfg: &TinyConfig, tensors: &[Tensor]) -> Weights {
    let mut it = tensors.iter();
    let embed = it.next().expect("embed").data.clone();
    let layers = (0..cfg.n_layers)
        .map(|_| crate::LayerWeights {
            attn_norm: it.next().expect("attn_norm").data.clone(),
            wq: it.next().expect("wq").data.clone(),
            wk: it.next().expect("wk").data.clone(),
            wv: it.next().expect("wv").data.clone(),
            wo: it.next().expect("wo").data.clone(),
            ffn_norm: it.next().expect("ffn_norm").data.clone(),
            w1: it.next().expect("w1").data.clone(),
            w2: it.next().expect("w2").data.clone(),
            w3: it.next().expect("w3").data.clone(),
        })
        .collect();
    let final_norm = it.next().expect("final_norm").data.clone();
    let head = it.next().expect("head").data.clone();
    Weights {
        embed,
        layers,
        final_norm,
        head,
    }
}

/// Trains the tiny transformer.
pub struct Trainer {
    /// Architecture being trained.
    pub cfg: TinyConfig,
    params: Vec<Tensor>,
    opt: Adam,
    clip_norm: Option<f32>,
}

/// Stability options for [`Trainer::train_with`].
#[derive(Debug, Clone, Default)]
pub struct TrainOptions {
    /// Global-norm gradient clipping threshold.
    pub clip_norm: Option<f32>,
    /// Cosine learning-rate schedule (overrides the constructor rate).
    pub schedule: Option<CosineSchedule>,
}

impl Trainer {
    /// Creates a trainer from a random initialization.
    pub fn new(cfg: TinyConfig, seed: u64, lr: f32) -> Trainer {
        let w = Weights::random(&cfg, seed);
        let params = weights_to_tensors(&cfg, &w);
        let shapes: Vec<Vec<usize>> = params.iter().map(|t| t.shape.clone()).collect();
        Trainer {
            cfg,
            params,
            opt: Adam::new(&shapes, lr),
            clip_norm: None,
        }
    }

    /// Builds the tape forward pass over `inputs`; returns the parameter
    /// vars (tape layout order) and the `[T, vocab]` logits.
    fn build(&self, tape: &mut Tape, inputs: &[usize]) -> (Vec<Var>, Var) {
        let cfg = &self.cfg;
        let t = inputs.len();
        let hd = cfg.head_dim;
        let gqa = cfg.n_heads / cfg.n_kv_heads;
        let params: Vec<Var> = self.params.iter().map(|p| tape.leaf(p.clone())).collect();
        let positions: Vec<usize> = (0..t).collect();
        // Additive causal mask.
        let mut mask = Tensor::zeros(vec![t, t]);
        for i in 0..t {
            for j in i + 1..t {
                mask.data[i * t + j] = -1e9;
            }
        }
        let mask = tape.leaf(mask);
        let mut p = params.iter().copied();
        let embed = p.next().expect("embed");
        let mut x = tape.embedding(embed, inputs);
        let scale = 1.0 / (hd as f32).sqrt();
        for _ in 0..cfg.n_layers {
            let attn_norm = p.next().expect("attn_norm");
            let wq = p.next().expect("wq");
            let wk = p.next().expect("wk");
            let wv = p.next().expect("wv");
            let wo = p.next().expect("wo");
            let ffn_norm = p.next().expect("ffn_norm");
            let w1 = p.next().expect("w1");
            let w2 = p.next().expect("w2");
            let w3 = p.next().expect("w3");
            let h = tape.rmsnorm(x, attn_norm, cfg.eps);
            let q = tape.matmul(h, wq);
            let k = tape.matmul(h, wk);
            let v = tape.matmul(h, wv);
            let q = tape.rope(q, &positions, hd, cfg.rope_theta);
            let k = tape.rope(k, &positions, hd, cfg.rope_theta);
            let mut heads = Vec::with_capacity(cfg.n_heads);
            for head in 0..cfg.n_heads {
                let kv_head = head / gqa;
                let qh = tape.slice_cols(q, head * hd, hd);
                let kh = tape.slice_cols(k, kv_head * hd, hd);
                let vh = tape.slice_cols(v, kv_head * hd, hd);
                let kt = tape.transpose(kh);
                let scores = tape.matmul(qh, kt);
                let scaled = tape.scale(scores, scale);
                let masked = tape.add(scaled, mask);
                let attn = tape.softmax(masked);
                heads.push(tape.matmul(attn, vh));
            }
            let att = tape.concat_cols(&heads);
            let o = tape.matmul(att, wo);
            x = tape.add(x, o);
            let h2 = tape.rmsnorm(x, ffn_norm, cfg.eps);
            let a = tape.matmul(h2, w1);
            let b = tape.silu(a);
            let c = tape.matmul(h2, w3);
            let g = tape.mul(b, c);
            let f = tape.matmul(g, w2);
            x = tape.add(x, f);
        }
        let final_norm = p.next().expect("final_norm");
        let head_w = p.next().expect("head");
        let xn = tape.rmsnorm(x, final_norm, cfg.eps);
        let logits = tape.matmul(xn, head_w);
        (params, logits)
    }

    /// Tape-based logits for `tokens` (one row per input token). Used by
    /// the trainer/inference equivalence test.
    pub fn forward_logits(&self, tokens: &[usize]) -> Vec<Vec<f32>> {
        let mut tape = Tape::new();
        let (_, logits) = self.build(&mut tape, tokens);
        let lv = tape.value(logits);
        let v = self.cfg.vocab;
        (0..tokens.len())
            .map(|r| lv.data[r * v..(r + 1) * v].to_vec())
            .collect()
    }

    /// One optimization step over `tokens` (inputs `[..n-1]`, targets
    /// `[1..]`); returns the loss in nats.
    pub fn step(&mut self, tokens: &[usize]) -> f32 {
        assert!(tokens.len() >= 2, "training window needs two tokens");
        let targets: Vec<usize> = tokens[1..].to_vec();
        self.step_with_targets(&tokens[..tokens.len() - 1], &targets)
    }

    /// One optimization step with explicit per-position targets; rows
    /// whose target is [`nanograd::IGNORE_TARGET`] carry no loss. Used
    /// when only some positions are supervised (e.g. the answer token of
    /// a retrieval episode).
    pub fn step_with_targets(&mut self, inputs: &[usize], targets: &[usize]) -> f32 {
        assert_eq!(inputs.len(), targets.len(), "one target per input");
        let mut tape = Tape::new();
        let (params, logits) = self.build(&mut tape, inputs);
        let loss = tape.cross_entropy(logits, targets);
        let loss_value = tape.value(loss).data[0];
        tape.backward(loss);
        let mut grads: Vec<Tensor> = params.iter().map(|&p| tape.grad(p)).collect();
        if let Some(max_norm) = self.clip_norm {
            clip_global_norm(&mut grads, max_norm);
        }
        self.opt.step(&mut self.params, &grads);
        loss_value
    }

    /// Trains on random windows of `corpus`; returns per-step losses.
    pub fn train(&mut self, corpus: &[usize], seq_len: usize, steps: usize, seed: u64) -> Vec<f32> {
        self.train_with(corpus, seq_len, steps, seed, &TrainOptions::default())
    }

    /// Trains with explicit stability options (gradient clipping, cosine
    /// learning-rate schedule); returns per-step losses.
    pub fn train_with(
        &mut self,
        corpus: &[usize],
        seq_len: usize,
        steps: usize,
        seed: u64,
        opts: &TrainOptions,
    ) -> Vec<f32> {
        assert!(corpus.len() > seq_len + 1, "corpus shorter than a window");
        let mut rng = StdRng::seed_from_u64(seed);
        (0..steps)
            .map(|step| {
                if let Some(sched) = &opts.schedule {
                    self.opt.set_lr(sched.lr(step as u64));
                }
                self.clip_norm = opts.clip_norm;
                let start = rng.gen_range(0..corpus.len() - seq_len - 1);
                self.step(&corpus[start..start + seq_len + 1])
            })
            .collect()
    }

    /// Current weights.
    pub fn weights(&self) -> Weights {
        tensors_to_weights(&self.cfg, &self.params)
    }

    /// Finishes training and wraps the weights in an inference model.
    pub fn into_model(self) -> Model {
        let w = self.weights();
        Model::new(self.cfg, w)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::MarkovLang;
    use crate::PeMode;

    fn small_cfg() -> TinyConfig {
        TinyConfig {
            vocab: 16,
            dim: 24,
            n_layers: 1,
            n_heads: 2,
            n_kv_heads: 2,
            head_dim: 12,
            ffn_dim: 48,
            rope_theta: 10_000.0,
            eps: 1e-5,
        }
    }

    /// The tape forward and the KV-cached inference forward compute the
    /// same function.
    #[test]
    fn trainer_matches_inference_engine() {
        let trainer = Trainer::new(small_cfg(), 3, 1e-3);
        let tokens = [1usize, 5, 3, 9, 0, 12, 7];
        let tape_logits = trainer.forward_logits(&tokens);
        let model = Model::new(trainer.cfg.clone(), trainer.weights());
        let mut cache = model.cache(PeMode::Decoupled);
        let inf_logits = model.forward(&tokens, &mut cache);
        for (a, b) in tape_logits.iter().zip(&inf_logits) {
            for (x, y) in a.iter().zip(b) {
                assert!((x - y).abs() < 2e-3, "tape {x} vs engine {y}");
            }
        }
    }

    /// Equivalence also holds under grouped-query attention.
    #[test]
    fn trainer_matches_inference_engine_gqa() {
        let cfg = TinyConfig {
            n_kv_heads: 1,
            ..small_cfg()
        };
        let trainer = Trainer::new(cfg, 4, 1e-3);
        let tokens = [2usize, 8, 8, 1, 14];
        let tape_logits = trainer.forward_logits(&tokens);
        let model = Model::new(trainer.cfg.clone(), trainer.weights());
        let mut cache = model.cache(PeMode::Decoupled);
        let inf_logits = model.forward(&tokens, &mut cache);
        for (a, b) in tape_logits.iter().zip(&inf_logits) {
            for (x, y) in a.iter().zip(b) {
                assert!((x - y).abs() < 2e-3, "tape {x} vs engine {y}");
            }
        }
    }

    /// Training reduces the loss toward the language's entropy rate.
    #[test]
    fn training_learns_the_markov_language() {
        let lang = MarkovLang::new(16, 1);
        let corpus = lang.sample(4_000, 2);
        let mut trainer = Trainer::new(small_cfg(), 5, 3e-3);
        let losses = trainer.train(&corpus, 32, 120, 7);
        let early: f32 = losses[..10].iter().sum::<f32>() / 10.0;
        let late: f32 = losses[losses.len() - 10..].iter().sum::<f32>() / 10.0;
        assert!(
            late < early * 0.75,
            "no learning: early {early}, late {late}"
        );
        // Below uniform (ln 16 ≈ 2.77) by a clear margin.
        assert!(late < 2.2, "late loss {late}");
    }

    /// The Table 1 shape on a trained model: after truncation, the
    /// decoupled cache's perplexity tracks the token-truncation reference
    /// while naive (coupled) KV truncation blows up.
    #[test]
    fn truncation_schemes_separate_on_a_trained_model() {
        // Order-2: predicting requires attending to relative position −2,
        // which is position-sensitive and breaks under scrambled RoPE.
        let lang = MarkovLang::order2(16, 1);
        let corpus = lang.sample(30_000, 2);
        let cfg = TinyConfig {
            vocab: 16,
            dim: 32,
            n_layers: 2,
            n_heads: 4,
            n_kv_heads: 4,
            head_dim: 8,
            ffn_dim: 96,
            rope_theta: 10_000.0,
            eps: 1e-5,
        };
        let mut trainer = Trainer::new(cfg, 5, 3e-3);
        // Train at sequence length 64 and keep the evaluation inside it:
        // RoPE does not extrapolate beyond trained positions.
        trainer.train(&corpus, 64, 1_000, 7);
        let m = trainer.into_model();
        let prompt = lang.sample(48, 99);
        let tail = lang.sample(36, 100);
        let keep_from = 24;
        // TT: recompute from the truncated prompt.
        let mut tt = m.cache(PeMode::Decoupled);
        m.forward(&prompt[keep_from..], &mut tt);
        let tt_ppl = m.perplexity(&tail, &mut tt);
        // CA: truncate the decoupled cache in place.
        let mut ca = m.cache(PeMode::Decoupled);
        m.forward(&prompt, &mut ca);
        ca.truncate_front(keep_from);
        let ca_ppl = m.perplexity(&tail, &mut ca);
        // NKVT: truncate a coupled cache.
        let mut nk = m.cache(PeMode::Coupled);
        m.forward(&prompt, &mut nk);
        nk.truncate_front(keep_from);
        let nk_ppl = m.perplexity(&tail, &mut nk);
        assert!(
            (ca_ppl - tt_ppl).abs() / tt_ppl < 0.10,
            "CA {ca_ppl} should track TT {tt_ppl}"
        );
        assert!(
            nk_ppl > tt_ppl * 1.12,
            "NKVT {nk_ppl} should degrade vs TT {tt_ppl}"
        );
    }

    /// Clipped, scheduled training learns at least as reliably as the
    /// plain loop.
    #[test]
    fn train_with_options_learns() {
        let lang = MarkovLang::new(16, 1);
        let corpus = lang.sample(4_000, 2);
        let mut trainer = Trainer::new(small_cfg(), 5, 3e-3);
        let opts = TrainOptions {
            clip_norm: Some(1.0),
            schedule: Some(nanograd::CosineSchedule {
                base_lr: 3e-3,
                warmup: 10,
                total: 120,
            }),
        };
        let losses = trainer.train_with(&corpus, 32, 120, 7, &opts);
        let late: f32 = losses[losses.len() - 10..].iter().sum::<f32>() / 10.0;
        assert!(late < 2.2, "late loss {late}");
    }

    #[test]
    fn weights_round_trip_through_tensor_layout() {
        let cfg = small_cfg();
        let w = Weights::random(&cfg, 11);
        let tensors = weights_to_tensors(&cfg, &w);
        let back = tensors_to_weights(&cfg, &tensors);
        assert_eq!(w.embed, back.embed);
        assert_eq!(w.layers[0].wq, back.layers[0].wq);
        assert_eq!(w.head, back.head);
    }
}
