//! Binary (de)serialization of model weights.
//!
//! A small self-describing little-endian format (no external
//! dependencies) so trained models can be cached on disk and shared
//! between the experiment binaries:
//!
//! ```text
//! magic "TLM1" · 9 config u32s/f32s · per-tensor [len u32, f32 × len]
//! ```

use crate::{LayerWeights, Model, TinyConfig, Weights};

const MAGIC: &[u8; 4] = b"TLM1";

/// A deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// The magic header is missing or wrong.
    BadMagic,
    /// The buffer ended before the declared data.
    Truncated,
    /// A declared length is inconsistent with the config.
    Inconsistent(&'static str),
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::BadMagic => write!(f, "not a TLM1 model file"),
            DecodeError::Truncated => write!(f, "model file truncated"),
            DecodeError::Inconsistent(what) => write!(f, "inconsistent field: {what}"),
        }
    }
}

impl std::error::Error for DecodeError {}

struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn f32(&mut self, v: f32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn vec(&mut self, v: &[f32]) {
        self.u32(v.len() as u32);
        for &x in v {
            self.f32(x);
        }
    }
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        if self.pos + n > self.buf.len() {
            return Err(DecodeError::Truncated);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }
    fn u32(&mut self) -> Result<u32, DecodeError> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }
    fn f32(&mut self) -> Result<f32, DecodeError> {
        Ok(f32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }
    fn vec(&mut self, expect_len: usize, what: &'static str) -> Result<Vec<f32>, DecodeError> {
        let n = self.u32()? as usize;
        if n != expect_len {
            return Err(DecodeError::Inconsistent(what));
        }
        let bytes = self.take(n * 4)?;
        Ok(bytes
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes(c.try_into().expect("4 bytes")))
            .collect())
    }
}

impl Model {
    /// Serializes config and weights.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = Writer {
            buf: MAGIC.to_vec(),
        };
        let c = &self.cfg;
        for v in [
            c.vocab,
            c.dim,
            c.n_layers,
            c.n_heads,
            c.n_kv_heads,
            c.head_dim,
            c.ffn_dim,
        ] {
            w.u32(v as u32);
        }
        w.f32(c.rope_theta);
        w.f32(c.eps);
        w.vec(&self.weights.embed);
        for lw in &self.weights.layers {
            w.vec(&lw.attn_norm);
            w.vec(&lw.wq);
            w.vec(&lw.wk);
            w.vec(&lw.wv);
            w.vec(&lw.wo);
            w.vec(&lw.ffn_norm);
            w.vec(&lw.w1);
            w.vec(&lw.w2);
            w.vec(&lw.w3);
        }
        w.vec(&self.weights.final_norm);
        w.vec(&self.weights.head);
        w.buf
    }

    /// Deserializes a model written by [`Model::to_bytes`].
    pub fn from_bytes(buf: &[u8]) -> Result<Model, DecodeError> {
        let mut r = Reader { buf, pos: 0 };
        if r.take(4)? != MAGIC {
            return Err(DecodeError::BadMagic);
        }
        let mut next = || r.u32();
        let (vocab, dim, n_layers, n_heads, n_kv_heads, head_dim, ffn_dim) = (
            next()? as usize,
            next()? as usize,
            next()? as usize,
            next()? as usize,
            next()? as usize,
            next()? as usize,
            next()? as usize,
        );
        if n_heads == 0 || head_dim == 0 || dim != n_heads * head_dim {
            return Err(DecodeError::Inconsistent("dim/head geometry"));
        }
        let cfg = TinyConfig {
            vocab,
            dim,
            n_layers,
            n_heads,
            n_kv_heads,
            head_dim,
            ffn_dim,
            rope_theta: r.f32()?,
            eps: r.f32()?,
        };
        let embed = r.vec(vocab * dim, "embed")?;
        let mut layers = Vec::with_capacity(n_layers);
        for _ in 0..n_layers {
            layers.push(LayerWeights {
                attn_norm: r.vec(dim, "attn_norm")?,
                wq: r.vec(dim * cfg.q_dim(), "wq")?,
                wk: r.vec(dim * cfg.kv_dim(), "wk")?,
                wv: r.vec(dim * cfg.kv_dim(), "wv")?,
                wo: r.vec(cfg.q_dim() * dim, "wo")?,
                ffn_norm: r.vec(dim, "ffn_norm")?,
                w1: r.vec(dim * ffn_dim, "w1")?,
                w2: r.vec(ffn_dim * dim, "w2")?,
                w3: r.vec(dim * ffn_dim, "w3")?,
            });
        }
        let final_norm = r.vec(dim, "final_norm")?;
        let head = r.vec(dim * vocab, "head")?;
        Ok(Model::new(
            cfg,
            Weights {
                embed,
                layers,
                final_norm,
                head,
            },
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PeMode;

    fn model() -> Model {
        let cfg = TinyConfig::table12();
        let w = Weights::random(&cfg, 7);
        Model::new(cfg, w)
    }

    #[test]
    fn round_trip_preserves_behaviour() {
        let m = model();
        let bytes = m.to_bytes();
        let back = Model::from_bytes(&bytes).unwrap();
        assert_eq!(m.cfg, back.cfg);
        let tokens = [1usize, 5, 9, 2];
        let mut c1 = m.cache(PeMode::Decoupled);
        let mut c2 = back.cache(PeMode::Decoupled);
        assert_eq!(m.forward(&tokens, &mut c1), back.forward(&tokens, &mut c2));
    }

    #[test]
    fn bad_magic_rejected() {
        assert_eq!(Model::from_bytes(b"np").err(), Some(DecodeError::Truncated));
        assert_eq!(
            Model::from_bytes(b"nope").err(),
            Some(DecodeError::BadMagic)
        );
        assert_eq!(
            Model::from_bytes(b"XXXX12345678").err(),
            Some(DecodeError::BadMagic)
        );
    }

    #[test]
    fn truncation_detected() {
        let bytes = model().to_bytes();
        let cut = &bytes[..bytes.len() / 2];
        assert_eq!(Model::from_bytes(cut).err(), Some(DecodeError::Truncated));
    }

    #[test]
    fn corrupted_length_detected() {
        let mut bytes = model().to_bytes();
        // Corrupt the embed length field (right after the 9-field header).
        let off = 4 + 7 * 4 + 2 * 4;
        bytes[off] ^= 0xff;
        assert!(matches!(
            Model::from_bytes(&bytes),
            Err(DecodeError::Inconsistent(_)) | Err(DecodeError::Truncated)
        ));
    }
}
