//! Fixed-size block allocation for one storage tier.
//!
//! §4.1: "The host memory and disks are managed in the form of blocks to
//! improve storage utilization. Our internal storage allocator allocates
//! and deallocates storage blocks on demand." Blocks are identity-tracked
//! so the same block is never double-allocated or double-freed, and tests
//! can verify conservation.

use serde::{Deserialize, Serialize};

/// Identifier of one block within a tier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct BlockId(pub u32);

/// An allocation error.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockError {
    /// Not enough free blocks for the request.
    OutOfBlocks {
        /// Blocks requested.
        requested: u32,
        /// Blocks free.
        free: u32,
    },
    /// A block was freed that was not allocated.
    DoubleFree(BlockId),
}

impl std::fmt::Display for BlockError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            BlockError::OutOfBlocks { requested, free } => {
                write!(f, "out of blocks: requested {requested}, free {free}")
            }
            BlockError::DoubleFree(id) => write!(f, "double free of block {id:?}"),
        }
    }
}

impl std::error::Error for BlockError {}

/// A block allocator over a fixed-capacity tier.
#[derive(Debug, Clone)]
pub struct BlockPool {
    name: &'static str,
    block_bytes: u64,
    n_blocks: u32,
    /// Free blocks, popped from the back (LIFO for locality).
    free: Vec<BlockId>,
    /// `allocated[i]` is true when block `i` is in use.
    allocated: Vec<bool>,
}

impl BlockPool {
    /// Creates a tier of `capacity_bytes`, rounded down to whole blocks.
    ///
    /// # Panics
    ///
    /// Panics if `block_bytes` is zero or the tier exceeds `u32::MAX`
    /// blocks.
    pub fn new(name: &'static str, capacity_bytes: u64, block_bytes: u64) -> Self {
        assert!(block_bytes > 0, "block size must be positive");
        let n = capacity_bytes / block_bytes;
        assert!(n <= u32::MAX as u64, "tier too large for u32 block ids");
        let n_blocks = n as u32;
        BlockPool {
            name,
            block_bytes,
            n_blocks,
            free: (0..n_blocks).rev().map(BlockId).collect(),
            allocated: vec![false; n_blocks as usize],
        }
    }

    /// Returns the tier's display name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Returns the size of one block in bytes.
    pub fn block_bytes(&self) -> u64 {
        self.block_bytes
    }

    /// Returns the total number of blocks.
    pub fn n_blocks(&self) -> u32 {
        self.n_blocks
    }

    /// Returns the number of free blocks.
    pub fn free_blocks(&self) -> u32 {
        self.free.len() as u32
    }

    /// Returns the number of allocated blocks.
    pub fn used_blocks(&self) -> u32 {
        self.n_blocks - self.free_blocks()
    }

    /// Returns the number of blocks needed to hold `bytes`.
    pub fn blocks_for(&self, bytes: u64) -> u32 {
        bytes.div_ceil(self.block_bytes) as u32
    }

    /// Returns `true` when `bytes` more would fit.
    pub fn fits(&self, bytes: u64) -> bool {
        self.blocks_for(bytes) <= self.free_blocks()
    }

    /// Returns free capacity in bytes (whole blocks).
    pub fn free_bytes(&self) -> u64 {
        self.free_blocks() as u64 * self.block_bytes
    }

    /// Returns total capacity in bytes (whole blocks).
    pub fn capacity_bytes(&self) -> u64 {
        self.n_blocks as u64 * self.block_bytes
    }

    /// Allocates enough blocks for `bytes`, or fails without side effects.
    pub fn alloc(&mut self, bytes: u64) -> Result<Vec<BlockId>, BlockError> {
        let need = self.blocks_for(bytes);
        if need > self.free_blocks() {
            return Err(BlockError::OutOfBlocks {
                requested: need,
                free: self.free_blocks(),
            });
        }
        let mut out = Vec::with_capacity(need as usize);
        for _ in 0..need {
            let id = self.free.pop().expect("count checked above");
            self.allocated[id.0 as usize] = true;
            out.push(id);
        }
        Ok(out)
    }

    /// Frees previously allocated blocks.
    pub fn free(&mut self, blocks: &[BlockId]) -> Result<(), BlockError> {
        for &id in blocks {
            if !self.allocated[id.0 as usize] {
                return Err(BlockError::DoubleFree(id));
            }
        }
        for &id in blocks {
            self.allocated[id.0 as usize] = false;
            self.free.push(id);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn alloc_rounds_up_to_blocks() {
        let mut p = BlockPool::new("dram", 1000, 100);
        assert_eq!(p.n_blocks(), 10);
        let a = p.alloc(250).unwrap();
        assert_eq!(a.len(), 3);
        assert_eq!(p.used_blocks(), 3);
        p.free(&a).unwrap();
        assert_eq!(p.used_blocks(), 0);
    }

    #[test]
    fn exhaustion_fails_cleanly() {
        let mut p = BlockPool::new("dram", 300, 100);
        let _a = p.alloc(300).unwrap();
        let err = p.alloc(1).unwrap_err();
        assert_eq!(
            err,
            BlockError::OutOfBlocks {
                requested: 1,
                free: 0
            }
        );
    }

    #[test]
    fn double_free_detected_atomically() {
        let mut p = BlockPool::new("dram", 300, 100);
        let a = p.alloc(200).unwrap();
        p.free(&a).unwrap();
        // Second free of the same blocks must fail and change nothing.
        assert!(matches!(p.free(&a), Err(BlockError::DoubleFree(_))));
        assert_eq!(p.free_blocks(), 3);
    }

    #[test]
    fn zero_byte_alloc_takes_no_blocks() {
        let mut p = BlockPool::new("dram", 300, 100);
        assert!(p.alloc(0).unwrap().is_empty());
        assert_eq!(p.used_blocks(), 0);
    }

    proptest! {
        /// Blocks are conserved and never double-allocated across a random
        /// sequence of allocs and frees.
        #[test]
        fn conservation(ops in proptest::collection::vec(0u64..4_000, 1..60)) {
            let mut p = BlockPool::new("t", 100_000, 512);
            let total = p.n_blocks();
            let mut live: Vec<Vec<BlockId>> = Vec::new();
            for (i, bytes) in ops.iter().enumerate() {
                if i % 3 == 2 && !live.is_empty() {
                    let blocks = live.swap_remove(i % live.len());
                    p.free(&blocks).unwrap();
                } else if let Ok(blocks) = p.alloc(*bytes) {
                    live.push(blocks);
                }
                let held: u32 = live.iter().map(|b| b.len() as u32).sum();
                prop_assert_eq!(p.used_blocks(), held);
                prop_assert_eq!(p.free_blocks() + p.used_blocks(), total);
                // No block id appears twice across live allocations.
                let mut all: Vec<u32> = live.iter().flatten().map(|b| b.0).collect();
                all.sort_unstable();
                let len_before = all.len();
                all.dedup();
                prop_assert_eq!(all.len(), len_before);
            }
        }
    }
}
