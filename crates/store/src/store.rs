//! The AttentionStore: tiered, session-granularity KV cache bookkeeping.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};
use sim::{Dur, Time};

use crate::events::{FetchKind, StoreEvent, StoreEventLog, StoreObserver, Tier};
use crate::{BlockPool, Entry, Placement, PolicyKind, QueueView, SessionId};

/// Direction of a tier-to-tier movement the engine must charge on a link.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransferDir {
    /// Promotion: SSD → host DRAM (prefetch or demand fetch).
    DiskToDram,
    /// Demotion: host DRAM → SSD (eviction).
    DramToDisk,
}

/// One tier movement produced by a store operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Transfer {
    /// The session whose KV moved.
    pub session: SessionId,
    /// Payload size in bytes.
    pub bytes: u64,
    /// Movement direction.
    pub dir: TransferDir,
}

/// Result of a session lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Lookup {
    /// KV resident in host DRAM: one PCIe hop from HBM.
    Dram,
    /// KV resident on SSD: must stage through DRAM first.
    Disk,
    /// No KV cached for this session.
    Miss,
}

/// Store configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StoreConfig {
    /// Host DRAM capacity for KV caching, bytes.
    pub dram_bytes: u64,
    /// SSD capacity for KV caching, bytes.
    pub disk_bytes: u64,
    /// Allocation block size, bytes.
    pub block_bytes: u64,
    /// Eviction policy (and, for scheduler-aware, prefetching).
    #[serde(skip, default = "default_policy")]
    pub policy: PolicyKind,
    /// Time-to-live since last access; `None` = keep until capacity
    /// pressure (§4.3.6 sets 1 hour for the capacity study).
    pub ttl: Option<Dur>,
    /// Fraction of DRAM kept free as the fetch buffer (§3.3.1); background
    /// demotion restores it.
    pub dram_reserve_fraction: f64,
    /// Assumed average session KV size before any entry exists, bytes
    /// (window sizing fallback).
    pub default_session_bytes: u64,
}

fn default_policy() -> PolicyKind {
    PolicyKind::SchedulerAware
}

impl Default for StoreConfig {
    /// The paper's testbed store: 128 GB DRAM, 10 TB SSD, 16 MiB blocks,
    /// scheduler-aware policy, no TTL, 10% DRAM reserve.
    fn default() -> Self {
        StoreConfig {
            dram_bytes: 128_000_000_000,
            disk_bytes: 10_000_000_000_000,
            block_bytes: 16 * 1024 * 1024,
            policy: PolicyKind::SchedulerAware,
            ttl: None,
            dram_reserve_fraction: 0.10,
            default_session_bytes: 1_000_000_000,
        }
    }
}

/// Cumulative store statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct StoreStats {
    /// Sessions saved or updated.
    pub saves: u64,
    /// Bytes written into the store by saves (total sizes).
    pub save_bytes: u64,
    /// DRAM → disk demotions.
    pub demotions: u64,
    /// Bytes demoted.
    pub demotion_bytes: u64,
    /// Disk → DRAM promotions (prefetch + demand).
    pub promotions: u64,
    /// Bytes promoted.
    pub promotion_bytes: u64,
    /// Entries dropped because capacity ran out everywhere.
    pub drops_capacity: u64,
    /// Entries dropped by TTL expiry.
    pub drops_ttl: u64,
    /// Entries dropped by explicit invalidation.
    pub drops_invalidated: u64,
    /// Saves rejected because the session could not fit at all.
    pub save_rejected: u64,
    /// Saves that spilled directly to disk because DRAM could not make
    /// room (e.g. everything resident was pinned).
    pub spills_to_disk: u64,
}

/// The hierarchical KV caching system (§3.3).
///
/// Pure bookkeeping over two [`BlockPool`] tiers; every mutation returns
/// the [`Transfer`]s the serving engine must charge on simulated links.
///
/// # Examples
///
/// ```
/// use sim::Time;
/// use store::{AttentionStore, Lookup, QueueView, SessionId, StoreConfig};
///
/// let mut store = AttentionStore::new(StoreConfig::default());
/// let queue = QueueView::empty();
/// // A finished conversation turn saves its session's KV cache.
/// let (_, saved) = store.save(SessionId(7), 1_500_000_000, 1_900, Time::ZERO, &queue);
/// assert!(saved);
/// // The session resumes: its KV is found in the fast tier and pinned.
/// let (found, _) = store.load_for_use(SessionId(7), Time::from_millis(60_000), &queue);
/// assert_eq!(found, Lookup::Dram);
/// ```
pub struct AttentionStore {
    cfg: StoreConfig,
    policy: Box<dyn crate::EvictionPolicy>,
    dram: BlockPool,
    disk: BlockPool,
    entries: BTreeMap<SessionId, Entry>,
    next_seq: u64,
    stats: StoreStats,
    /// Drainable event buffer; `None` = tracing off (zero cost).
    trace: Option<StoreEventLog>,
}

impl AttentionStore {
    /// Creates a store from a configuration.
    pub fn new(cfg: StoreConfig) -> Self {
        let policy = cfg.policy.build();
        let dram = BlockPool::new("dram", cfg.dram_bytes, cfg.block_bytes);
        let disk = BlockPool::new("disk", cfg.disk_bytes, cfg.block_bytes);
        AttentionStore {
            cfg,
            policy,
            dram,
            disk,
            entries: BTreeMap::new(),
            next_seq: 0,
            stats: StoreStats::default(),
            trace: None,
        }
    }

    /// Enables or disables event tracing. While enabled, every placement
    /// decision is buffered as a [`StoreEvent`] until
    /// [`drain_events`](AttentionStore::drain_events) takes it. Tracing
    /// never changes store behavior.
    pub fn set_tracing(&mut self, on: bool) {
        match (on, self.trace.is_some()) {
            (true, false) => self.trace = Some(StoreEventLog::new()),
            (false, true) => self.trace = None,
            _ => {}
        }
    }

    /// Takes the buffered [`StoreEvent`]s (empty when tracing is off).
    pub fn drain_events(&mut self) -> Vec<StoreEvent> {
        self.trace.as_mut().map(StoreEventLog::drain).unwrap_or_default()
    }

    /// Reports `ev` to the trace buffer when tracing is enabled.
    fn emit(&mut self, ev: StoreEvent) {
        if let Some(t) = &mut self.trace {
            t.on_store_event(ev);
        }
    }

    /// Number of buffered trace events (0 when tracing is off).
    fn trace_mark(&self) -> usize {
        self.trace.as_ref().map_or(0, |t| t.events().len())
    }

    /// Emits an occupancy gauge sample when events landed since `mark`,
    /// so occupancy trails every traced batch of placement changes
    /// without flooding no-op calls.
    fn emit_occupancy(&mut self, mark: usize, now: Time) {
        if self.trace_mark() > mark {
            let ev = StoreEvent::Occupancy {
                dram_bytes: self.dram_used_bytes(),
                disk_bytes: self.disk_used_bytes(),
                at: now,
            };
            self.emit(ev);
        }
    }

    /// Returns the configuration.
    pub fn config(&self) -> &StoreConfig {
        &self.cfg
    }

    /// Returns cumulative statistics.
    pub fn stats(&self) -> &StoreStats {
        &self.stats
    }

    /// Returns where `sid`'s KV currently lives.
    pub fn lookup(&self, sid: SessionId) -> Lookup {
        match self.entries.get(&sid).map(|e| e.placement) {
            Some(Placement::Dram) => Lookup::Dram,
            Some(Placement::Disk) => Lookup::Disk,
            None => Lookup::Miss,
        }
    }

    /// Returns the entry for `sid`, if cached.
    pub fn entry(&self, sid: SessionId) -> Option<&Entry> {
        self.entries.get(&sid)
    }

    /// Returns the number of cached sessions.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` when no sessions are cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Returns bytes resident in DRAM (whole blocks).
    pub fn dram_used_bytes(&self) -> u64 {
        self.dram.used_blocks() as u64 * self.dram.block_bytes()
    }

    /// Returns bytes resident on disk (whole blocks).
    pub fn disk_used_bytes(&self) -> u64 {
        self.disk.used_blocks() as u64 * self.disk.block_bytes()
    }

    /// Average session KV size, `S_kv`, used to size the look-ahead
    /// windows; falls back to the configured default when empty.
    pub fn avg_session_bytes(&self) -> u64 {
        if self.entries.is_empty() {
            return self.cfg.default_session_bytes.max(1);
        }
        let total: u64 = self.entries.values().map(|e| e.bytes).sum();
        (total / self.entries.len() as u64).max(1)
    }

    /// Look-ahead prefetch window length, `L_pw = C_mem / S_kv` (§3.3.1).
    pub fn prefetch_window(&self) -> usize {
        (self.cfg.dram_bytes / self.avg_session_bytes()) as usize
    }

    /// Look-ahead eviction window length,
    /// `L_ev = (C_mem + C_disk) / S_kv` (§3.3.2).
    pub fn eviction_window(&self) -> usize {
        ((self.cfg.dram_bytes + self.cfg.disk_bytes) / self.avg_session_bytes()) as usize
    }

    /// Unpinned candidates of one tier, sorted by session id for
    /// deterministic policy input.
    fn candidates(&self, tier: Placement, exclude: Option<SessionId>) -> Vec<(SessionId, &Entry)> {
        self.entries
            .iter()
            .filter(|(sid, e)| e.placement == tier && !e.pinned && Some(**sid) != exclude)
            .map(|(&sid, e)| (sid, e))
            .collect()
    }

    /// Drops `sid` entirely, freeing its blocks.
    fn drop_entry(&mut self, sid: SessionId) {
        if let Some(e) = self.entries.remove(&sid) {
            let pool = match e.placement {
                Placement::Dram => &mut self.dram,
                Placement::Disk => &mut self.disk,
            };
            pool.free(&e.blocks).expect("entry blocks are valid");
        }
    }

    /// Evicts one entry out of the disk tier (out of the system).
    /// Returns `false` when no candidate exists.
    fn evict_from_disk(&mut self, now: Time, queue: &QueueView, exclude: Option<SessionId>) -> bool {
        let window = self.eviction_window();
        let cands = self.candidates(Placement::Disk, exclude);
        let Some(victim) = self.policy.choose_victim(&cands, queue, window) else {
            return false;
        };
        let bytes = self.entries[&victim].bytes;
        self.drop_entry(victim);
        self.stats.drops_capacity += 1;
        self.emit(StoreEvent::EvictedDisk {
            session: victim.0,
            bytes,
            window_pos: queue.position(victim),
            at: now,
        });
        true
    }

    /// Picks the DRAM entry the policy would demote next.
    fn choose_dram_victim(
        &self,
        queue: &QueueView,
        exclude: Option<SessionId>,
    ) -> Option<SessionId> {
        let window = self.eviction_window();
        let cands = self.candidates(Placement::Dram, exclude);
        self.policy.choose_victim(&cands, queue, window)
    }

    /// Demotes `victim` to disk (or out of the system when the disk cannot
    /// make room). Returns the demotion transfer (`None` when the entry
    /// was dropped instead). `exclude` protects a session being staged by
    /// the caller from being evicted out of the disk tier.
    fn demote_session(
        &mut self,
        now: Time,
        victim: SessionId,
        queue: &QueueView,
        exclude: Option<SessionId>,
    ) -> Option<Transfer> {
        let bytes = self.entries[&victim].bytes;
        // Make room on disk; drop disk entries if necessary.
        while !self.disk.fits(bytes) {
            if !self.evict_from_disk(now, queue, exclude) {
                // Disk cannot hold this entry at all: drop it instead.
                self.drop_entry(victim);
                self.stats.drops_capacity += 1;
                self.emit(StoreEvent::DroppedDram {
                    session: victim.0,
                    bytes,
                    at: now,
                });
                return None;
            }
        }
        let new_blocks = self.disk.alloc(bytes).expect("fit ensured above");
        let e = self.entries.get_mut(&victim).expect("victim exists");
        let old_blocks = std::mem::replace(&mut e.blocks, new_blocks);
        e.placement = Placement::Disk;
        self.dram.free(&old_blocks).expect("blocks were in dram");
        self.stats.demotions += 1;
        self.stats.demotion_bytes += bytes;
        self.emit(StoreEvent::Demoted {
            session: victim.0,
            bytes,
            at: now,
        });
        Some(Transfer {
            session: victim,
            bytes,
            dir: TransferDir::DramToDisk,
        })
    }

    /// Frees DRAM until `bytes` fit, demoting victims; returns the
    /// demotion transfers, or `None` when room cannot be made.
    fn make_dram_room(
        &mut self,
        now: Time,
        bytes: u64,
        queue: &QueueView,
        exclude: Option<SessionId>,
        out: &mut Vec<Transfer>,
    ) -> bool {
        if self.dram.blocks_for(bytes) > self.dram.n_blocks() {
            return false;
        }
        while !self.dram.fits(bytes) {
            let Some(victim) = self.choose_dram_victim(queue, exclude) else {
                return false;
            };
            if let Some(t) = self.demote_session(now, victim, queue, exclude) {
                out.push(t);
            }
        }
        true
    }

    /// Saves (or updates) `sid`'s KV cache: `total_bytes` for
    /// `total_tokens`, landing in DRAM. Returns the demotion transfers
    /// made to fit it and whether the save succeeded.
    ///
    /// Updating an existing entry reallocates it at the new size; an entry
    /// previously demoted to disk is re-homed in DRAM (the fresh copy just
    /// came from HBM, so no disk read is charged).
    pub fn save(
        &mut self,
        sid: SessionId,
        total_bytes: u64,
        total_tokens: u64,
        now: Time,
        queue: &QueueView,
    ) -> (Vec<Transfer>, bool) {
        let mut transfers = Vec::new();
        let mark = self.trace_mark();
        // Free the stale copy first; the engine holds the bytes in HBM.
        self.drop_entry(sid);
        // Prefer DRAM; when it cannot make room (e.g. everything resident
        // is pinned by the running batch), spill straight to disk — the
        // write stream targets whichever tier has space.
        let placement = if self.make_dram_room(now, total_bytes, queue, None, &mut transfers) {
            Placement::Dram
        } else {
            if self.disk.blocks_for(total_bytes) > self.disk.n_blocks() {
                self.stats.save_rejected += 1;
                self.emit(StoreEvent::SaveRejected {
                    session: sid.0,
                    bytes: total_bytes,
                    at: now,
                });
                self.emit_occupancy(mark, now);
                return (transfers, false);
            }
            while !self.disk.fits(total_bytes) {
                if !self.evict_from_disk(now, queue, None) {
                    self.stats.save_rejected += 1;
                    self.emit(StoreEvent::SaveRejected {
                        session: sid.0,
                        bytes: total_bytes,
                        at: now,
                    });
                    self.emit_occupancy(mark, now);
                    return (transfers, false);
                }
            }
            self.stats.spills_to_disk += 1;
            // The write stream lands on the slow tier: report it so the
            // engine charges the disk-write link.
            transfers.push(Transfer {
                session: sid,
                bytes: total_bytes,
                dir: TransferDir::DramToDisk,
            });
            Placement::Disk
        };
        let pool = match placement {
            Placement::Dram => &mut self.dram,
            Placement::Disk => &mut self.disk,
        };
        let blocks = pool.alloc(total_bytes).expect("room made above");
        let seq = self.next_seq;
        self.next_seq += 1;
        self.entries.insert(
            sid,
            Entry {
                bytes: total_bytes,
                tokens: total_tokens,
                placement,
                blocks,
                last_access: now,
                insert_seq: seq,
                pinned: false,
            },
        );
        self.stats.saves += 1;
        self.stats.save_bytes += total_bytes;
        self.emit(StoreEvent::Saved {
            session: sid.0,
            bytes: total_bytes,
            tier: match placement {
                Placement::Dram => Tier::Dram,
                Placement::Disk => Tier::Disk,
            },
            at: now,
        });
        self.emit_occupancy(mark, now);
        (transfers, true)
    }

    /// Brings `sid`'s KV into DRAM for use and pins it.
    ///
    /// Returns where the KV was found plus any transfers (the demand
    /// promotion and the demotions that made room). Returns
    /// `(Lookup::Miss, vec![])` when the session has no cached KV.
    pub fn load_for_use(
        &mut self,
        sid: SessionId,
        now: Time,
        queue: &QueueView,
    ) -> (Lookup, Vec<Transfer>) {
        let found = self.lookup(sid);
        let mark = self.trace_mark();
        match found {
            Lookup::Miss => self.emit(StoreEvent::FetchMiss {
                session: sid.0,
                at: now,
            }),
            Lookup::Dram | Lookup::Disk => {
                let ev = StoreEvent::FetchHit {
                    session: sid.0,
                    tier: match found {
                        Lookup::Dram => Tier::Dram,
                        _ => Tier::Disk,
                    },
                    bytes: self.entries[&sid].bytes,
                    at: now,
                };
                self.emit(ev);
            }
        }
        let mut transfers = Vec::new();
        match found {
            Lookup::Miss => {}
            Lookup::Dram => {
                let e = self.entries.get_mut(&sid).expect("looked up");
                e.last_access = now;
                e.pinned = true;
            }
            Lookup::Disk => {
                let bytes = self.entries[&sid].bytes;
                if self.make_dram_room(now, bytes, queue, Some(sid), &mut transfers) {
                    let new_blocks = self.dram.alloc(bytes).expect("room made");
                    let e = self.entries.get_mut(&sid).expect("looked up");
                    let old = std::mem::replace(&mut e.blocks, new_blocks);
                    e.placement = Placement::Dram;
                    e.last_access = now;
                    e.pinned = true;
                    self.disk.free(&old).expect("blocks were on disk");
                    self.stats.promotions += 1;
                    self.stats.promotion_bytes += bytes;
                    self.emit(StoreEvent::Promoted {
                        session: sid.0,
                        bytes,
                        kind: FetchKind::Demand,
                        queue_pos: queue.position(sid),
                        at: now,
                    });
                    transfers.push(Transfer {
                        session: sid,
                        bytes,
                        dir: TransferDir::DiskToDram,
                    });
                } else {
                    // DRAM cannot stage it (pathological sizing): serve
                    // straight from disk; pin in place.
                    let e = self.entries.get_mut(&sid).expect("looked up");
                    e.last_access = now;
                    e.pinned = true;
                }
            }
        }
        self.emit_occupancy(mark, now);
        (found, transfers)
    }

    /// Unpins `sid` after the engine finished using (and re-saving) it.
    pub fn unpin(&mut self, sid: SessionId) {
        if let Some(e) = self.entries.get_mut(&sid) {
            e.pinned = false;
        }
    }

    /// Runs the look-ahead prefetcher (§3.3.1): promotes disk-resident KV
    /// of queued sessions within `L_pw` into free DRAM, then restores the
    /// DRAM reserve by demoting cold entries.
    ///
    /// No-op for history-only policies (LRU/FIFO cannot see the queue).
    pub fn prefetch(&mut self, now: Time, queue: &QueueView) -> Vec<Transfer> {
        if !self.policy.wants_prefetch() {
            return Vec::new();
        }
        let mut transfers = Vec::new();
        let mark = self.trace_mark();
        let window = self.prefetch_window();
        let targets: Vec<(usize, SessionId)> = queue
            .head(window)
            .enumerate()
            .filter(|&(_, sid)| {
                self.entries
                    .get(&sid)
                    .is_some_and(|e| e.placement == Placement::Disk && !e.pinned)
            })
            .collect();
        'targets: for (pos, sid) in targets {
            // Re-validate: an earlier iteration (or its evictions) may
            // have promoted, demoted or dropped this session already —
            // e.g. when the same session appears twice in the queue.
            let still_disk = self
                .entries
                .get(&sid)
                .is_some_and(|e| e.placement == Placement::Disk && !e.pinned);
            if !still_disk {
                continue;
            }
            let bytes = self.entries[&sid].bytes;
            // Fetching into the buffer may demote cold entries (Fig 9:
            // fetching Job 3 pushes Job 4 down) — but only entries whose
            // next use is strictly further in the future than this
            // target's, otherwise promote/demote ping-pong would saturate
            // the disk.
            while !self.dram.fits(bytes) {
                let Some(victim) = self.choose_dram_victim(queue, Some(sid)) else {
                    break 'targets;
                };
                if queue.position(victim).is_some_and(|vp| vp <= pos) {
                    break 'targets;
                }
                if let Some(t) = self.demote_session(now, victim, queue, Some(sid)) {
                    transfers.push(t);
                }
            }
            let new_blocks = self.dram.alloc(bytes).expect("fit ensured above");
            let e = self.entries.get_mut(&sid).expect("target exists");
            let old = std::mem::replace(&mut e.blocks, new_blocks);
            e.placement = Placement::Dram;
            e.last_access = now;
            self.disk.free(&old).expect("blocks were on disk");
            self.stats.promotions += 1;
            self.stats.promotion_bytes += bytes;
            self.emit(StoreEvent::Promoted {
                session: sid.0,
                bytes,
                kind: FetchKind::Prefetch,
                queue_pos: Some(pos),
                at: now,
            });
            transfers.push(Transfer {
                session: sid,
                bytes,
                dir: TransferDir::DiskToDram,
            });
        }
        transfers.extend(self.maintain_reserve(now, queue));
        self.emit_occupancy(mark, now);
        transfers
    }

    /// Demotes cold entries until the configured DRAM reserve is free
    /// again (§3.3.1's host-memory buffer).
    ///
    /// Only entries *outside* the look-ahead window are demoted here: the
    /// reserve exists to absorb incoming saves and fetches, and demoting a
    /// queued session would force the prefetcher to read it right back.
    pub fn maintain_reserve(&mut self, now: Time, queue: &QueueView) -> Vec<Transfer> {
        let reserve = (self.cfg.dram_bytes as f64 * self.cfg.dram_reserve_fraction) as u64;
        let window = self.eviction_window();
        let mut transfers = Vec::new();
        while self.dram.free_bytes() < reserve {
            let Some(victim) = self.choose_dram_victim(queue, None) else {
                break;
            };
            if queue.position(victim).is_some_and(|vp| vp < window) {
                break;
            }
            if let Some(t) = self.demote_session(now, victim, queue, None) {
                transfers.push(t);
            }
        }
        transfers
    }

    /// Shrinks `sid`'s cached KV to `new_bytes`/`new_tokens` in place
    /// (decoupled KV truncation, §3.4). No-op when not cached or when the
    /// entry is not actually shrinking.
    pub fn truncate(&mut self, sid: SessionId, new_bytes: u64, new_tokens: u64) {
        let Some(e) = self.entries.get(&sid) else {
            return;
        };
        if new_bytes >= e.bytes {
            return;
        }
        let placement = e.placement;
        let pool = match placement {
            Placement::Dram => &mut self.dram,
            Placement::Disk => &mut self.disk,
        };
        let old = self.entries.get_mut(&sid).expect("checked above");
        let old_blocks = std::mem::take(&mut old.blocks);
        pool.free(&old_blocks).expect("entry blocks valid");
        let blocks = pool
            .alloc(new_bytes)
            .expect("shrinking realloc always fits");
        let e = self.entries.get_mut(&sid).expect("checked above");
        e.blocks = blocks;
        e.bytes = new_bytes;
        e.tokens = new_tokens;
    }

    /// Drops `sid`'s KV (context-overflow invalidation in OF mode, or an
    /// aborted session).
    pub fn invalidate(&mut self, sid: SessionId) {
        if self.entries.contains_key(&sid) {
            self.drop_entry(sid);
            self.stats.drops_invalidated += 1;
        }
    }

    /// Drops entries idle longer than the TTL; returns how many expired.
    pub fn expire(&mut self, now: Time) -> u64 {
        let Some(ttl) = self.cfg.ttl else {
            return 0;
        };
        let dead: Vec<SessionId> = self
            .entries
            .iter()
            .filter(|(_, e)| !e.pinned && now.saturating_since(e.last_access) > ttl)
            .map(|(&sid, _)| sid)
            .collect();
        let n = dead.len() as u64;
        let mark = self.trace_mark();
        for sid in dead {
            self.drop_entry(sid);
            self.emit(StoreEvent::Expired {
                session: sid.0,
                at: now,
            });
        }
        self.stats.drops_ttl += n;
        self.emit_occupancy(mark, now);
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MB: u64 = 1_000_000;

    fn small_store(policy: PolicyKind) -> AttentionStore {
        AttentionStore::new(StoreConfig {
            dram_bytes: 10 * MB,
            disk_bytes: 30 * MB,
            block_bytes: MB,
            policy,
            ttl: None,
            dram_reserve_fraction: 0.0,
            default_session_bytes: MB,
        })
    }

    fn sid(n: u64) -> SessionId {
        SessionId(n)
    }

    #[test]
    fn save_then_load_hits_dram() {
        let mut s = small_store(PolicyKind::SchedulerAware);
        let q = QueueView::empty();
        let (t, ok) = s.save(sid(1), 3 * MB, 100, Time::ZERO, &q);
        assert!(ok && t.is_empty());
        assert_eq!(s.lookup(sid(1)), Lookup::Dram);
        let (found, t) = s.load_for_use(sid(1), Time::from_millis(5), &q);
        assert_eq!(found, Lookup::Dram);
        assert!(t.is_empty());
        assert!(s.entry(sid(1)).unwrap().pinned);
        s.unpin(sid(1));
        assert!(!s.entry(sid(1)).unwrap().pinned);
    }

    #[test]
    fn miss_for_unknown_session() {
        let mut s = small_store(PolicyKind::SchedulerAware);
        assert_eq!(s.lookup(sid(9)), Lookup::Miss);
        let (found, t) = s.load_for_use(sid(9), Time::ZERO, &QueueView::empty());
        assert_eq!(found, Lookup::Miss);
        assert!(t.is_empty());
    }

    #[test]
    fn dram_pressure_demotes_to_disk() {
        let mut s = small_store(PolicyKind::Lru);
        let q = QueueView::empty();
        // Fill DRAM with three sessions, oldest access first.
        for (i, t_ms) in [(1u64, 0u64), (2, 10), (3, 20)] {
            s.save(sid(i), 3 * MB, 100, Time::from_millis(t_ms), &q);
        }
        // A fourth needs room: LRU demotes session 1.
        let (transfers, ok) = s.save(sid(4), 3 * MB, 100, Time::from_millis(30), &q);
        assert!(ok);
        assert_eq!(transfers.len(), 1);
        assert_eq!(transfers[0].session, sid(1));
        assert_eq!(transfers[0].dir, TransferDir::DramToDisk);
        assert_eq!(s.lookup(sid(1)), Lookup::Disk);
        assert_eq!(s.lookup(sid(4)), Lookup::Dram);
    }

    #[test]
    fn disk_pressure_drops_out_of_system() {
        let mut s = AttentionStore::new(StoreConfig {
            dram_bytes: 4 * MB,
            disk_bytes: 4 * MB,
            block_bytes: MB,
            policy: PolicyKind::Fifo,
            ttl: None,
            dram_reserve_fraction: 0.0,
            default_session_bytes: MB,
        });
        let q = QueueView::empty();
        // Three 4MB sessions through a 4MB DRAM + 4MB disk: the first one
        // saved must eventually fall off the end of the hierarchy.
        s.save(sid(1), 4 * MB, 10, Time::from_millis(0), &q);
        s.save(sid(2), 4 * MB, 10, Time::from_millis(1), &q);
        s.save(sid(3), 4 * MB, 10, Time::from_millis(2), &q);
        assert_eq!(s.lookup(sid(1)), Lookup::Miss);
        assert_eq!(s.lookup(sid(2)), Lookup::Disk);
        assert_eq!(s.lookup(sid(3)), Lookup::Dram);
        assert_eq!(s.stats().drops_capacity, 1);
    }

    #[test]
    fn disk_hit_promotes_through_dram() {
        let mut s = small_store(PolicyKind::Lru);
        let q = QueueView::empty();
        for i in 1..=4u64 {
            s.save(sid(i), 3 * MB, 100, Time::from_millis(i), &q);
        }
        assert_eq!(s.lookup(sid(1)), Lookup::Disk);
        let (found, transfers) = s.load_for_use(sid(1), Time::from_millis(99), &q);
        assert_eq!(found, Lookup::Disk);
        // Promotion evicted someone and brought session 1 up.
        assert!(transfers
            .iter()
            .any(|t| t.session == sid(1) && t.dir == TransferDir::DiskToDram));
        assert_eq!(s.lookup(sid(1)), Lookup::Dram);
    }

    #[test]
    fn pinned_entries_are_never_victims() {
        let mut s = small_store(PolicyKind::Lru);
        let q = QueueView::empty();
        s.save(sid(1), 5 * MB, 100, Time::ZERO, &q);
        s.load_for_use(sid(1), Time::from_millis(1), &q);
        // Saving 6 MB would need to demote session 1, but it is pinned, so
        // there is no DRAM candidate: the save spills to disk instead.
        let (transfers, ok) = s.save(sid(2), 6 * MB, 100, Time::from_millis(2), &q);
        assert!(ok);
        assert_eq!(s.stats().spills_to_disk, 1);
        assert_eq!(s.lookup(sid(1)), Lookup::Dram);
        assert_eq!(s.lookup(sid(2)), Lookup::Disk);
        assert!(transfers
            .iter()
            .any(|t| t.session == sid(2) && t.dir == TransferDir::DramToDisk));
        // A session larger than the whole hierarchy is still rejected.
        let (_, ok) = s.save(sid(3), 50 * MB, 100, Time::from_millis(3), &q);
        assert!(!ok);
        assert_eq!(s.stats().save_rejected, 1);
    }

    #[test]
    fn scheduler_aware_prefetch_pulls_queued_sessions_up() {
        let mut s = small_store(PolicyKind::SchedulerAware);
        let q = QueueView::empty();
        for i in 1..=4u64 {
            s.save(sid(i), 3 * MB, 100, Time::from_millis(i), &q);
        }
        assert_eq!(s.lookup(sid(1)), Lookup::Disk);
        // Session 1 is waiting in the queue: prefetch promotes it.
        let queue = QueueView::new(&[sid(1)]);
        let transfers = s.prefetch(Time::from_millis(50), &queue);
        assert!(transfers
            .iter()
            .any(|t| t.session == sid(1) && t.dir == TransferDir::DiskToDram));
        assert_eq!(s.lookup(sid(1)), Lookup::Dram);
    }

    #[test]
    fn lru_and_fifo_never_prefetch() {
        for kind in [PolicyKind::Lru, PolicyKind::Fifo] {
            let mut s = small_store(kind);
            let q = QueueView::empty();
            for i in 1..=4u64 {
                s.save(sid(i), 3 * MB, 100, Time::from_millis(i), &q);
            }
            let queue = QueueView::new(&[sid(1)]);
            assert!(s.prefetch(Time::from_millis(50), &queue).is_empty());
            assert_eq!(s.lookup(sid(1)), Lookup::Disk);
        }
    }

    #[test]
    fn truncation_shrinks_in_place() {
        let mut s = small_store(PolicyKind::SchedulerAware);
        let q = QueueView::empty();
        s.save(sid(1), 8 * MB, 800, Time::ZERO, &q);
        let used_before = s.dram_used_bytes();
        s.truncate(sid(1), 4 * MB, 400);
        let e = s.entry(sid(1)).unwrap();
        assert_eq!(e.bytes, 4 * MB);
        assert_eq!(e.tokens, 400);
        assert!(s.dram_used_bytes() < used_before);
        // Growing via truncate is a no-op.
        s.truncate(sid(1), 100 * MB, 1);
        assert_eq!(s.entry(sid(1)).unwrap().bytes, 4 * MB);
    }

    #[test]
    fn invalidate_frees_everything() {
        let mut s = small_store(PolicyKind::SchedulerAware);
        let q = QueueView::empty();
        s.save(sid(1), 5 * MB, 100, Time::ZERO, &q);
        s.invalidate(sid(1));
        assert_eq!(s.lookup(sid(1)), Lookup::Miss);
        assert_eq!(s.dram_used_bytes(), 0);
        assert_eq!(s.stats().drops_invalidated, 1);
        // Invalidating again is a no-op.
        s.invalidate(sid(1));
        assert_eq!(s.stats().drops_invalidated, 1);
    }

    #[test]
    fn ttl_expiry_drops_idle_entries() {
        let mut s = AttentionStore::new(StoreConfig {
            ttl: Some(Dur::from_secs_f64(10.0)),
            dram_bytes: 10 * MB,
            disk_bytes: 10 * MB,
            block_bytes: MB,
            policy: PolicyKind::SchedulerAware,
            dram_reserve_fraction: 0.0,
            default_session_bytes: MB,
        });
        let q = QueueView::empty();
        s.save(sid(1), MB, 10, Time::ZERO, &q);
        s.save(sid(2), MB, 10, Time::from_secs_f64(8.0), &q);
        assert_eq!(s.expire(Time::from_secs_f64(9.0)), 0);
        assert_eq!(s.expire(Time::from_secs_f64(15.0)), 1);
        assert_eq!(s.lookup(sid(1)), Lookup::Miss);
        assert_eq!(s.lookup(sid(2)), Lookup::Dram);
        assert_eq!(s.stats().drops_ttl, 1);
    }

    #[test]
    fn reserve_maintenance_keeps_buffer_free() {
        let mut s = AttentionStore::new(StoreConfig {
            dram_bytes: 10 * MB,
            disk_bytes: 30 * MB,
            block_bytes: MB,
            policy: PolicyKind::SchedulerAware,
            ttl: None,
            dram_reserve_fraction: 0.3,
            default_session_bytes: MB,
        });
        let q = QueueView::empty();
        for i in 1..=3u64 {
            s.save(sid(i), 3 * MB, 100, Time::from_millis(i), &q);
        }
        assert!(s.dram.free_bytes() < 3 * MB);
        let transfers = s.maintain_reserve(Time::from_millis(9), &q);
        assert!(!transfers.is_empty());
        assert!(s.dram.free_bytes() >= 3 * MB);
    }

    #[test]
    fn resave_replaces_old_copy_exactly_once() {
        let mut s = small_store(PolicyKind::SchedulerAware);
        let q = QueueView::empty();
        s.save(sid(1), 2 * MB, 100, Time::ZERO, &q);
        s.save(sid(1), 4 * MB, 200, Time::from_millis(1), &q);
        assert_eq!(s.len(), 1);
        assert_eq!(s.entry(sid(1)).unwrap().bytes, 4 * MB);
        assert_eq!(s.dram_used_bytes(), 4 * MB);
    }

    /// Regression: a demand fetch under full disk pressure must never
    /// evict the very session being fetched, even when the policy would
    /// otherwise pick it (here: LRU, and the fetched session is oldest).
    #[test]
    fn demand_fetch_never_evicts_its_own_session() {
        let mut s = AttentionStore::new(StoreConfig {
            dram_bytes: 4 * MB,
            disk_bytes: 8 * MB,
            block_bytes: MB,
            policy: PolicyKind::Lru,
            ttl: None,
            dram_reserve_fraction: 0.0,
            default_session_bytes: 4 * MB,
        });
        let q = QueueView::empty();
        // s1 lands in DRAM, then s3 and s2 push it down; final layout:
        // DRAM = s2, disk = {s1, s3}, with s1 the least recently used.
        s.save(sid(1), 4 * MB, 10, Time::from_millis(0), &q);
        s.save(sid(3), 4 * MB, 10, Time::from_millis(1), &q);
        s.save(sid(2), 4 * MB, 10, Time::from_millis(2), &q);
        assert_eq!(s.lookup(sid(1)), Lookup::Disk);
        assert_eq!(s.lookup(sid(3)), Lookup::Disk);
        // Demand-fetching s1 demotes s2, which needs disk room; the LRU
        // disk victim would be s1 itself — it must be exempt.
        let (found, _) = s.load_for_use(sid(1), Time::from_millis(3), &q);
        assert_eq!(found, Lookup::Disk);
        assert_eq!(s.lookup(sid(1)), Lookup::Dram);
        assert_eq!(s.lookup(sid(3)), Lookup::Miss);
    }

    /// Regression: a session queued twice must be promoted exactly once;
    /// the second prefetch pass used to free its fresh DRAM blocks into
    /// the disk pool.
    #[test]
    fn duplicate_queue_entries_prefetch_once() {
        let mut s = small_store(PolicyKind::SchedulerAware);
        let q = QueueView::empty();
        for i in 1..=4u64 {
            s.save(sid(i), 3 * MB, 100, Time::from_millis(i), &q);
        }
        assert_eq!(s.lookup(sid(1)), Lookup::Disk);
        let queue = QueueView::new(&[sid(1), sid(1), sid(1)]);
        let transfers = s.prefetch(Time::from_millis(50), &queue);
        let promotions = transfers
            .iter()
            .filter(|t| t.session == sid(1) && t.dir == TransferDir::DiskToDram)
            .count();
        assert_eq!(promotions, 1);
        assert_eq!(s.lookup(sid(1)), Lookup::Dram);
        // Block accounting stayed consistent: re-saving and invalidating
        // everything drains both pools completely.
        for i in 1..=4u64 {
            s.invalidate(sid(i));
        }
        assert_eq!(s.dram_used_bytes(), 0);
        assert_eq!(s.disk_used_bytes(), 0);
    }

    #[test]
    fn window_lengths_follow_the_formulas() {
        let mut s = small_store(PolicyKind::SchedulerAware);
        // Empty store: fall back to default session size (1 MB).
        assert_eq!(s.prefetch_window(), 10);
        assert_eq!(s.eviction_window(), 40);
        let q = QueueView::empty();
        s.save(sid(1), 2 * MB, 100, Time::ZERO, &q);
        // S_kv = 2 MB now.
        assert_eq!(s.prefetch_window(), 5);
        assert_eq!(s.eviction_window(), 20);
    }
}
