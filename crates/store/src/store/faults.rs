//! Fault-aware store I/O: fallible load/save/prefetch with deterministic
//! retry-with-exponential-backoff, integrity verification and DRAM
//! pressure handling.
//!
//! Every `try_*` method delegates verbatim to its infallible counterpart
//! when no [`sim::FaultPlan`] is installed, so fault-free runs execute
//! byte-identical code. With a plan installed:
//!
//! - disk reads (demand fetches of disk-resident entries, prefetch
//!   promotions) roll the plan's read-error rate per attempt, retrying
//!   with exponential backoff up to `retry.max_retries` times;
//! - a demand fetch that exhausts its retries, or whose entry fails the
//!   integrity checksum, invalidates the entry and reports a
//!   [`DegradeReason`] — the engine then serves the turn by RE-style
//!   re-prefill instead of aborting;
//! - saves roll the write-error rate the same way; an exhausted save
//!   drops the (stale) entry so the next turn re-prefills;
//! - [`AttentionStore::apply_pressure`] squeezes DRAM residency down to
//!   a fraction of capacity, modelling a co-located consumer claiming
//!   host memory.
//!
//! All probabilistic decisions key the plan's pure-hash dice on
//! `(session, monotone roll counter)`, so a run's fault pattern is a
//! deterministic function of the plan alone.

#![warn(clippy::unwrap_used)]

use serde::Serialize;
use sim::fault::{dice, FaultStream};
use sim::{Dur, FaultPlan, RetryPolicy, SsdFaults, Time};

use crate::events::StoreEvent;
use crate::{QueueView, SessionId};

use super::{AttentionStore, Lookup, Transfer};

/// Cumulative fault-path statistics. Kept separate from
/// [`super::StoreStats`] (which is embedded in golden-pinned reports);
/// all-zero in fault-free runs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct FaultStats {
    /// Disk-read attempts that errored and were retried.
    pub read_retries: u64,
    /// Demand fetches that exhausted their retry budget.
    pub read_failures: u64,
    /// Save-path write attempts that errored and were retried.
    pub write_retries: u64,
    /// Saves that exhausted their retry budget.
    pub write_failures: u64,
    /// Integrity-checksum mismatches detected on load.
    pub corruptions_detected: u64,
}

/// Why a fetch degraded the session to RE-style re-prefill.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DegradeReason {
    /// The disk read exhausted its retry budget.
    ReadFailed,
    /// The entry failed its integrity checksum.
    Corrupted,
}

impl DegradeReason {
    /// Lowercase label used in serialized traces.
    pub fn label(self) -> &'static str {
        match self {
            DegradeReason::ReadFailed => "read_failed",
            DegradeReason::Corrupted => "corrupted",
        }
    }
}

/// Result of a fallible demand fetch.
#[derive(Debug, Clone)]
pub struct FetchOutcome {
    /// Where the KV was found (forced to [`Lookup::Miss`] on degrade).
    pub lookup: Lookup,
    /// Tier movements the engine must charge.
    pub transfers: Vec<Transfer>,
    /// Read retries that preceded the result.
    pub retries: u32,
    /// Total backoff delay accrued across those retries.
    pub backoff: Dur,
    /// `Some` when the session degraded to re-prefill.
    pub degraded: Option<DegradeReason>,
}

impl FetchOutcome {
    fn clean(lookup: Lookup, transfers: Vec<Transfer>) -> Self {
        FetchOutcome {
            lookup,
            transfers,
            retries: 0,
            backoff: Dur::ZERO,
            degraded: None,
        }
    }
}

/// Result of a fallible save.
#[derive(Debug, Clone)]
pub struct SaveOutcome {
    /// Eviction/demotion transfers the engine must charge.
    pub transfers: Vec<Transfer>,
    /// Whether the save fit (capacity, not faults).
    pub fitted: bool,
    /// Write retries that preceded the result.
    pub retries: u32,
    /// Total backoff delay accrued across those retries.
    pub backoff: Dur,
    /// `true` when the save exhausted its retries and was dropped.
    pub failed: bool,
}

/// Result of a fallible prefix consult.
#[derive(Debug, Clone)]
pub struct PrefixOutcome {
    /// The prefix match (forced to a miss on degrade).
    pub prefix: crate::PrefixMatch,
    /// Read retries that preceded the result.
    pub retries: u32,
    /// Total backoff delay accrued across those retries.
    pub backoff: Dur,
    /// `Some` when the session degraded to re-prefill.
    pub degraded: Option<DegradeReason>,
}

impl PrefixOutcome {
    fn clean(prefix: crate::PrefixMatch) -> Self {
        PrefixOutcome {
            prefix,
            retries: 0,
            backoff: Dur::ZERO,
            degraded: None,
        }
    }
}

/// Result of a fallible prefetch pass.
#[derive(Debug, Clone)]
pub struct PrefetchOutcome {
    /// Tier movements the engine must charge.
    pub transfers: Vec<Transfer>,
    /// Read retries accrued across the pass's disk reads.
    pub retries: u32,
    /// Total backoff delay accrued across those retries.
    pub backoff: Dur,
}

impl AttentionStore {
    /// Installs (or clears, when empty) the run's fault plan. The store
    /// only consults the plan's SSD rates and retry policy; link windows
    /// and crash schedules are the engine's concern.
    pub fn set_faults(&mut self, plan: FaultPlan) {
        self.faults = if plan.is_empty() { None } else { Some(plan) };
    }

    /// Cumulative fault-path statistics (all-zero without faults).
    pub fn fault_stats(&self) -> &FaultStats {
        &self.fault_stats
    }

    /// Copies out the Copy-able fault parameters, or `None` when fault-free.
    fn fault_profile(&self) -> Option<(u64, SsdFaults, RetryPolicy)> {
        self.faults.as_ref().map(|p| (p.seed, p.ssd, p.retry))
    }

    /// Takes the next dice key; monotone so repeated rolls differ.
    fn next_fault_roll(&mut self) -> u64 {
        let seq = self.fault_roll_seq;
        self.fault_roll_seq += 1;
        seq
    }

    /// Integrity checksum to stamp on a saved entry: correct metadata
    /// hash, or (with probability `corruption_rate`) a corrupted one the
    /// next load will detect.
    pub(super) fn stamp_checksum(&mut self, sid: SessionId, bytes: u64, tokens: u64) -> u64 {
        let good = crate::Entry::metadata_checksum(sid, bytes, tokens);
        let Some((seed, ssd, _)) = self.fault_profile() else {
            return good;
        };
        if ssd.corruption_rate <= 0.0 {
            return good;
        }
        let key = self.next_fault_roll();
        if dice(seed, FaultStream::Corrupt, sid.0, key) < ssd.corruption_rate {
            good ^ 1
        } else {
            good
        }
    }

    /// Fallible demand fetch: [`AttentionStore::load_for_use`] plus
    /// injected read errors (retried with exponential backoff) and the
    /// integrity check. On exhausted retries or detected corruption the
    /// entry is invalidated and the outcome reports [`Lookup::Miss`] with
    /// a [`DegradeReason`] — the caller re-prefills instead of aborting.
    pub fn try_load_for_use(
        &mut self,
        sid: SessionId,
        now: Time,
        queue: &QueueView,
    ) -> FetchOutcome {
        let Some((seed, ssd, retry)) = self.fault_profile() else {
            let (lookup, transfers) = self.load_for_use(sid, now, queue);
            return FetchOutcome::clean(lookup, transfers);
        };
        let mut retries = 0u32;
        let mut backoff = Dur::ZERO;
        // Slow-tier-resident entries ride the slow read path: roll per
        // attempt.
        if self.lookup(sid).is_slow_hit() && ssd.read_error_rate > 0.0 {
            loop {
                let key = self.next_fault_roll();
                if dice(seed, FaultStream::Read, sid.0, key) >= ssd.read_error_rate {
                    break;
                }
                if retries >= retry.max_retries {
                    let mark = self.trace_mark();
                    self.fault_stats.read_failures += 1;
                    self.emit(StoreEvent::ReadFailed {
                        session: sid.0,
                        attempts: retry.max_retries + 1,
                        at: now,
                    });
                    self.invalidate(sid);
                    self.emit_occupancy(mark, now);
                    return FetchOutcome {
                        lookup: Lookup::Miss,
                        transfers: Vec::new(),
                        retries,
                        backoff,
                        degraded: Some(DegradeReason::ReadFailed),
                    };
                }
                backoff += retry.backoff(retries);
                self.fault_stats.read_retries += 1;
                self.emit(StoreEvent::ReadRetry {
                    session: sid.0,
                    attempt: retries,
                    at: now,
                });
                retries += 1;
            }
        }
        // Integrity check over the saved KV metadata before handing the
        // entry to the engine (corruption is stamped at save time, so it
        // can surface from either tier).
        if let Some(e) = self.entries.get(&sid) {
            if !e.integrity_ok(sid) {
                let bytes = e.bytes;
                let mark = self.trace_mark();
                self.fault_stats.corruptions_detected += 1;
                self.emit(StoreEvent::CorruptionDetected {
                    session: sid.0,
                    bytes,
                    at: now,
                });
                self.invalidate(sid);
                self.emit_occupancy(mark, now);
                return FetchOutcome {
                    lookup: Lookup::Miss,
                    transfers: Vec::new(),
                    retries,
                    backoff,
                    degraded: Some(DegradeReason::Corrupted),
                };
            }
        }
        let (lookup, transfers) = self.load_for_use(sid, now, queue);
        FetchOutcome {
            lookup,
            transfers,
            retries,
            backoff,
            degraded: None,
        }
    }

    /// Fallible prefix consult: [`AttentionStore::load_prefix`] plus the
    /// same injected read errors as
    /// [`try_load_for_use`](AttentionStore::try_load_for_use). The read
    /// dice roll when the session's own stored KV sits in a slow tier;
    /// integrity checksums are a per-session-entry concept, so
    /// corruption detection only fires under per-session keying.
    pub fn try_load_prefix(
        &mut self,
        sid: SessionId,
        ctx_tokens: u64,
        now: Time,
        queue: &QueueView,
    ) -> PrefixOutcome {
        let Some((seed, ssd, retry)) = self.fault_profile() else {
            return PrefixOutcome::clean(self.load_prefix(sid, ctx_tokens, now, queue));
        };
        let mut retries = 0u32;
        let mut backoff = Dur::ZERO;
        if self.lookup(sid).is_slow_hit() && ssd.read_error_rate > 0.0 {
            loop {
                let key = self.next_fault_roll();
                if dice(seed, FaultStream::Read, sid.0, key) >= ssd.read_error_rate {
                    break;
                }
                if retries >= retry.max_retries {
                    let mark = self.trace_mark();
                    self.fault_stats.read_failures += 1;
                    self.emit(StoreEvent::ReadFailed {
                        session: sid.0,
                        attempts: retry.max_retries + 1,
                        at: now,
                    });
                    self.invalidate(sid);
                    self.emit_occupancy(mark, now);
                    return PrefixOutcome {
                        prefix: crate::PrefixMatch::miss(),
                        retries,
                        backoff,
                        degraded: Some(DegradeReason::ReadFailed),
                    };
                }
                backoff += retry.backoff(retries);
                self.fault_stats.read_retries += 1;
                self.emit(StoreEvent::ReadRetry {
                    session: sid.0,
                    attempt: retries,
                    at: now,
                });
                retries += 1;
            }
        }
        if let Some(e) = self.entries.get(&sid) {
            if !e.integrity_ok(sid) {
                let bytes = e.bytes;
                let mark = self.trace_mark();
                self.fault_stats.corruptions_detected += 1;
                self.emit(StoreEvent::CorruptionDetected {
                    session: sid.0,
                    bytes,
                    at: now,
                });
                self.invalidate(sid);
                self.emit_occupancy(mark, now);
                return PrefixOutcome {
                    prefix: crate::PrefixMatch::miss(),
                    retries,
                    backoff,
                    degraded: Some(DegradeReason::Corrupted),
                };
            }
        }
        let prefix = self.load_prefix(sid, ctx_tokens, now, queue);
        PrefixOutcome {
            prefix,
            retries,
            backoff,
            degraded: None,
        }
    }

    /// Fallible save: [`AttentionStore::save`] plus injected write errors
    /// retried with exponential backoff. An exhausted save drops the
    /// session's (stale) entry entirely — its next turn re-prefills.
    pub fn try_save(
        &mut self,
        sid: SessionId,
        total_bytes: u64,
        total_tokens: u64,
        now: Time,
        queue: &QueueView,
    ) -> SaveOutcome {
        let Some((seed, ssd, retry)) = self.fault_profile() else {
            let (transfers, fitted) = self.save(sid, total_bytes, total_tokens, now, queue);
            return SaveOutcome {
                transfers,
                fitted,
                retries: 0,
                backoff: Dur::ZERO,
                failed: false,
            };
        };
        let mut retries = 0u32;
        let mut backoff = Dur::ZERO;
        if ssd.write_error_rate > 0.0 {
            loop {
                let key = self.next_fault_roll();
                if dice(seed, FaultStream::Write, sid.0, key) >= ssd.write_error_rate {
                    break;
                }
                if retries >= retry.max_retries {
                    let mark = self.trace_mark();
                    self.fault_stats.write_failures += 1;
                    self.emit(StoreEvent::WriteFailed {
                        session: sid.0,
                        attempts: retry.max_retries + 1,
                        at: now,
                    });
                    // The stale pre-turn copy is useless now; drop it so
                    // the next turn re-prefills from scratch.
                    self.invalidate(sid);
                    self.emit_occupancy(mark, now);
                    return SaveOutcome {
                        transfers: Vec::new(),
                        fitted: false,
                        retries,
                        backoff,
                        failed: true,
                    };
                }
                backoff += retry.backoff(retries);
                self.fault_stats.write_retries += 1;
                self.emit(StoreEvent::WriteRetry {
                    session: sid.0,
                    attempt: retries,
                    at: now,
                });
                retries += 1;
            }
        }
        let (transfers, fitted) = self.save(sid, total_bytes, total_tokens, now, queue);
        SaveOutcome {
            transfers,
            fitted,
            retries,
            backoff,
            failed: false,
        }
    }

    /// Fallible prefetch: [`AttentionStore::prefetch`] plus injected read
    /// errors on the pass's disk reads. Prefetch reads never hard-fail —
    /// the demand path revalidates on admission — so exhausting the
    /// budget just caps the retries; the engine charges the extra link
    /// occupancy and backoff.
    pub fn try_prefetch(&mut self, now: Time, queue: &QueueView) -> PrefetchOutcome {
        let Some((seed, ssd, retry)) = self.fault_profile() else {
            return PrefetchOutcome {
                transfers: self.prefetch(now, queue),
                retries: 0,
                backoff: Dur::ZERO,
            };
        };
        let transfers = self.prefetch(now, queue);
        let mut retries = 0u32;
        let mut backoff = Dur::ZERO;
        if ssd.read_error_rate > 0.0 {
            for t in &transfers {
                if !t.is_promotion() {
                    continue;
                }
                let mut r = 0u32;
                while r < retry.max_retries {
                    let key = self.next_fault_roll();
                    if dice(seed, FaultStream::Read, t.session.0, key) >= ssd.read_error_rate {
                        break;
                    }
                    backoff += retry.backoff(r);
                    self.fault_stats.read_retries += 1;
                    self.emit(StoreEvent::ReadRetry {
                        session: t.session.0,
                        attempt: r,
                        at: now,
                    });
                    r += 1;
                }
                retries += r;
            }
        }
        PrefetchOutcome {
            transfers,
            retries,
            backoff,
        }
    }

    /// Applies a DRAM capacity pressure spike: squeezes DRAM residency
    /// down to `(1 - fraction) · dram_bytes` by demoting victims (pinned
    /// entries stay). Returns the demotion transfers to charge.
    ///
    /// # Panics
    ///
    /// Panics unless `0 <= fraction <= 1`.
    pub fn apply_pressure(&mut self, now: Time, fraction: f64, queue: &QueueView) -> Vec<Transfer> {
        assert!(
            (0.0..=1.0).contains(&fraction),
            "pressure fraction must be in [0, 1], got {fraction}"
        );
        let target = (self.cfg.tiers[0].capacity as f64 * (1.0 - fraction)) as u64;
        let mut transfers = Vec::new();
        let mark = self.trace_mark();
        if self.cfg.keying == crate::KeyingMode::ContentAddressed {
            while self.dram_used_bytes() > target {
                if self.ca_free_dead_in(now, crate::TierId(0)) {
                    continue;
                }
                let acting = SessionId(u64::MAX);
                if !self.ca_demote_one(now, crate::TierId(0), acting, queue, &mut transfers) {
                    break;
                }
            }
            self.emit_occupancy(mark, now);
            return transfers;
        }
        while self.dram_used_bytes() > target {
            let Some(victim) = self.choose_victim_in(crate::TierId(0), queue, None) else {
                break;
            };
            self.demote_session(now, victim, queue, None, &mut transfers);
        }
        self.emit_occupancy(mark, now);
        transfers
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{StoreConfig, TierId};
    use models::TierStack;

    fn store() -> AttentionStore {
        AttentionStore::new(StoreConfig {
            tiers: TierStack::two_tier(4_000_000_000, 40_000_000_000),
            ..StoreConfig::default()
        })
    }

    fn all_faults(read: f64, write: f64, corrupt: f64) -> FaultPlan {
        FaultPlan::new(99).with_ssd_errors(read, write, corrupt)
    }

    #[test]
    fn no_plan_delegates_cleanly() {
        let mut s = store();
        let q = QueueView::empty();
        let sid = SessionId(1);
        let out = s.try_save(sid, 1_000_000, 100, Time::ZERO, &q);
        assert!(out.fitted && !out.failed && out.retries == 0);
        let f = s.try_load_for_use(sid, Time::from_millis(1), &q);
        assert_eq!(f.lookup, Lookup::Hit(TierId(0)));
        assert!(f.degraded.is_none() && f.retries == 0 && f.backoff == Dur::ZERO);
        assert_eq!(*s.fault_stats(), FaultStats::default());
    }

    #[test]
    fn empty_plan_is_cleared_on_install() {
        let mut s = store();
        s.set_faults(FaultPlan::new(5));
        assert!(s.faults.is_none());
    }

    #[test]
    fn certain_read_errors_degrade_disk_hits_to_miss() {
        let mut s = store();
        let q = QueueView::empty();
        let sid = SessionId(7);
        s.set_faults(all_faults(1.0, 0.0, 0.0));
        s.save(sid, 1_000_000, 100, Time::ZERO, &q);
        // Force the entry onto disk so the read path rolls the dice.
        s.apply_pressure(Time::ZERO, 1.0, &q);
        assert_eq!(s.lookup(sid), Lookup::Hit(TierId(1)));
        let out = s.try_load_for_use(sid, Time::from_millis(5), &q);
        assert_eq!(out.lookup, Lookup::Miss);
        assert_eq!(out.degraded, Some(DegradeReason::ReadFailed));
        assert_eq!(
            out.retries,
            s.faults.as_ref().map(|p| p.retry.max_retries).unwrap_or(0)
        );
        assert!(out.backoff > Dur::ZERO);
        assert_eq!(s.fault_stats().read_failures, 1);
        assert!(s.entry(sid).is_none(), "degraded entry is invalidated");
    }

    #[test]
    fn certain_corruption_is_detected_on_load() {
        let mut s = store();
        let q = QueueView::empty();
        let sid = SessionId(9);
        s.set_faults(all_faults(0.0, 0.0, 1.0));
        s.save(sid, 1_000_000, 100, Time::ZERO, &q);
        let out = s.try_load_for_use(sid, Time::from_millis(5), &q);
        assert_eq!(out.lookup, Lookup::Miss);
        assert_eq!(out.degraded, Some(DegradeReason::Corrupted));
        assert_eq!(s.fault_stats().corruptions_detected, 1);
        assert!(s.entry(sid).is_none());
    }

    #[test]
    fn certain_write_errors_fail_the_save_and_drop_stale_state() {
        let mut s = store();
        let q = QueueView::empty();
        let sid = SessionId(4);
        s.save(sid, 500_000, 50, Time::ZERO, &q);
        s.set_faults(all_faults(0.0, 1.0, 0.0));
        let out = s.try_save(sid, 1_000_000, 100, Time::from_millis(10), &q);
        assert!(out.failed && !out.fitted);
        assert_eq!(s.fault_stats().write_failures, 1);
        assert!(s.entry(sid).is_none(), "stale entry dropped on failed save");
    }

    #[test]
    fn truncation_preserves_corruption() {
        let mut s = store();
        let q = QueueView::empty();
        let sid = SessionId(3);
        s.set_faults(all_faults(0.0, 0.0, 1.0));
        s.save(sid, 1_000_000, 100, Time::ZERO, &q);
        s.truncate(sid, 500_000, 50);
        let e = s.entry(sid).expect("still cached");
        assert!(!e.integrity_ok(sid), "corruption survives truncation");
        // And an honest entry stays honest through truncation.
        let mut clean = store();
        clean.save(sid, 1_000_000, 100, Time::ZERO, &q);
        clean.truncate(sid, 500_000, 50);
        assert!(clean.entry(sid).expect("cached").integrity_ok(sid));
    }

    #[test]
    fn pressure_squeezes_dram_residency() {
        let mut s = store();
        let q = QueueView::empty();
        for i in 0..3 {
            s.save(SessionId(i), 1_000_000_000, 1_000, Time::ZERO, &q);
        }
        let before = s.dram_used_bytes();
        assert!(before >= 3_000_000_000);
        let transfers = s.apply_pressure(Time::from_millis(1), 0.75, &q);
        assert!(!transfers.is_empty());
        assert!(s.dram_used_bytes() <= 1_000_000_000);
        for t in &transfers {
            assert!(t.is_demotion());
            assert_eq!((t.from, t.to), (TierId(0), TierId(1)));
        }
        assert!(s.entries.values().any(|e| e.placement == TierId(1)));
    }

    #[test]
    fn fault_decisions_are_deterministic_across_runs() {
        let run = || {
            let mut s = store();
            s.set_faults(all_faults(0.3, 0.3, 0.3));
            let q = QueueView::empty();
            let mut log = Vec::new();
            for i in 0..50u64 {
                let sid = SessionId(i % 10);
                let sv = s.try_save(sid, 2_000_000, 200, Time::from_millis(i), &q);
                log.push((sv.retries, sv.failed));
                let f = s.try_load_for_use(sid, Time::from_millis(i + 1), &q);
                log.push((f.retries, f.degraded.is_some()));
            }
            (log, *s.fault_stats())
        };
        assert_eq!(run(), run());
    }
}
