use models::TierStack;
use sim::{Dur, Time};

use crate::{PolicyKind, QueueView, SessionId, TierId};

use super::{AttentionStore, Lookup, StoreConfig};

const MB: u64 = 1_000_000;

fn small_store(policy: PolicyKind) -> AttentionStore {
    AttentionStore::new(StoreConfig {
        tiers: TierStack::two_tier(10 * MB, 30 * MB),
        block_bytes: MB,
        policy,
        ttl: None,
        dram_reserve_fraction: 0.0,
        default_session_bytes: MB,
        ..StoreConfig::default()
    })
}

fn sid(n: u64) -> SessionId {
    SessionId(n)
}

#[test]
fn save_then_load_hits_dram() {
    let mut s = small_store(PolicyKind::SchedulerAware);
    let q = QueueView::empty();
    let (t, ok) = s.save(sid(1), 3 * MB, 100, Time::ZERO, &q);
    assert!(ok && t.is_empty());
    assert_eq!(s.lookup(sid(1)), Lookup::Hit(TierId(0)));
    let (found, t) = s.load_for_use(sid(1), Time::from_millis(5), &q);
    assert_eq!(found, Lookup::Hit(TierId(0)));
    assert!(t.is_empty());
    assert!(s.entry(sid(1)).unwrap().pinned);
    s.unpin(sid(1));
    assert!(!s.entry(sid(1)).unwrap().pinned);
}

#[test]
fn unpin_is_idempotent_and_tolerates_evicted_sessions() {
    let mut s = small_store(PolicyKind::SchedulerAware);
    let q = QueueView::empty();
    // Never-saved session: unpin must be a no-op, not a panic.
    s.unpin(sid(42));
    s.save(sid(1), 3 * MB, 100, Time::ZERO, &q);
    let _ = s.load_for_use(sid(1), Time::from_millis(5), &q);
    assert!(s.entry(sid(1)).unwrap().pinned);
    // Double-unpin is fine.
    s.unpin(sid(1));
    s.unpin(sid(1));
    assert!(!s.entry(sid(1)).unwrap().pinned);
    // Unpin after the entry left the store entirely (crash recovery may
    // release pins for jobs whose sessions were invalidated meanwhile).
    s.invalidate(sid(1));
    s.unpin(sid(1));
    assert_eq!(s.lookup(sid(1)), Lookup::Miss);
}

#[test]
fn miss_for_unknown_session() {
    let mut s = small_store(PolicyKind::SchedulerAware);
    assert_eq!(s.lookup(sid(9)), Lookup::Miss);
    let (found, t) = s.load_for_use(sid(9), Time::ZERO, &QueueView::empty());
    assert_eq!(found, Lookup::Miss);
    assert!(t.is_empty());
}

#[test]
fn dram_pressure_demotes_to_disk() {
    let mut s = small_store(PolicyKind::Lru);
    let q = QueueView::empty();
    // Fill DRAM with three sessions, oldest access first.
    for (i, t_ms) in [(1u64, 0u64), (2, 10), (3, 20)] {
        s.save(sid(i), 3 * MB, 100, Time::from_millis(t_ms), &q);
    }
    // A fourth needs room: LRU demotes session 1.
    let (transfers, ok) = s.save(sid(4), 3 * MB, 100, Time::from_millis(30), &q);
    assert!(ok);
    assert_eq!(transfers.len(), 1);
    assert_eq!(transfers[0].session, sid(1));
    assert!(transfers[0].is_demotion());
    assert_eq!(s.lookup(sid(1)), Lookup::Hit(TierId(1)));
    assert_eq!(s.lookup(sid(4)), Lookup::Hit(TierId(0)));
}

#[test]
fn disk_pressure_drops_out_of_system() {
    let mut s = AttentionStore::new(StoreConfig {
        tiers: TierStack::two_tier(4 * MB, 4 * MB),
        block_bytes: MB,
        policy: PolicyKind::Fifo,
        ttl: None,
        dram_reserve_fraction: 0.0,
        default_session_bytes: MB,
        ..StoreConfig::default()
    });
    let q = QueueView::empty();
    // Three 4MB sessions through a 4MB DRAM + 4MB disk: the first one
    // saved must eventually fall off the end of the hierarchy.
    s.save(sid(1), 4 * MB, 10, Time::from_millis(0), &q);
    s.save(sid(2), 4 * MB, 10, Time::from_millis(1), &q);
    s.save(sid(3), 4 * MB, 10, Time::from_millis(2), &q);
    assert_eq!(s.lookup(sid(1)), Lookup::Miss);
    assert_eq!(s.lookup(sid(2)), Lookup::Hit(TierId(1)));
    assert_eq!(s.lookup(sid(3)), Lookup::Hit(TierId(0)));
    assert_eq!(s.stats().drops_capacity, 1);
}

#[test]
fn disk_hit_promotes_through_dram() {
    let mut s = small_store(PolicyKind::Lru);
    let q = QueueView::empty();
    for i in 1..=4u64 {
        s.save(sid(i), 3 * MB, 100, Time::from_millis(i), &q);
    }
    assert_eq!(s.lookup(sid(1)), Lookup::Hit(TierId(1)));
    let (found, transfers) = s.load_for_use(sid(1), Time::from_millis(99), &q);
    assert_eq!(found, Lookup::Hit(TierId(1)));
    // Promotion evicted someone and brought session 1 up.
    assert!(transfers
        .iter()
        .any(|t| t.session == sid(1) && t.is_promotion()));
    assert_eq!(s.lookup(sid(1)), Lookup::Hit(TierId(0)));
}

#[test]
fn pinned_entries_are_never_victims() {
    let mut s = small_store(PolicyKind::Lru);
    let q = QueueView::empty();
    s.save(sid(1), 5 * MB, 100, Time::ZERO, &q);
    s.load_for_use(sid(1), Time::from_millis(1), &q);
    // Saving 6 MB would need to demote session 1, but it is pinned, so
    // there is no DRAM candidate: the save spills to disk instead.
    let (transfers, ok) = s.save(sid(2), 6 * MB, 100, Time::from_millis(2), &q);
    assert!(ok);
    assert_eq!(s.stats().spills_to_disk, 1);
    assert_eq!(s.lookup(sid(1)), Lookup::Hit(TierId(0)));
    assert_eq!(s.lookup(sid(2)), Lookup::Hit(TierId(1)));
    assert!(transfers
        .iter()
        .any(|t| t.session == sid(2) && t.is_demotion()));
    // A session larger than the whole hierarchy is still rejected.
    let (_, ok) = s.save(sid(3), 50 * MB, 100, Time::from_millis(3), &q);
    assert!(!ok);
    assert_eq!(s.stats().save_rejected, 1);
}

#[test]
fn scheduler_aware_prefetch_pulls_queued_sessions_up() {
    let mut s = small_store(PolicyKind::SchedulerAware);
    let q = QueueView::empty();
    for i in 1..=4u64 {
        s.save(sid(i), 3 * MB, 100, Time::from_millis(i), &q);
    }
    assert_eq!(s.lookup(sid(1)), Lookup::Hit(TierId(1)));
    // Session 1 is waiting in the queue: prefetch promotes it.
    let queue = QueueView::new(&[sid(1)]);
    let transfers = s.prefetch(Time::from_millis(50), &queue);
    assert!(transfers
        .iter()
        .any(|t| t.session == sid(1) && t.is_promotion()));
    assert_eq!(s.lookup(sid(1)), Lookup::Hit(TierId(0)));
}

#[test]
fn lru_and_fifo_never_prefetch() {
    for kind in [PolicyKind::Lru, PolicyKind::Fifo] {
        let mut s = small_store(kind);
        let q = QueueView::empty();
        for i in 1..=4u64 {
            s.save(sid(i), 3 * MB, 100, Time::from_millis(i), &q);
        }
        let queue = QueueView::new(&[sid(1)]);
        assert!(s.prefetch(Time::from_millis(50), &queue).is_empty());
        assert_eq!(s.lookup(sid(1)), Lookup::Hit(TierId(1)));
    }
}

#[test]
fn truncation_shrinks_in_place() {
    let mut s = small_store(PolicyKind::SchedulerAware);
    let q = QueueView::empty();
    s.save(sid(1), 8 * MB, 800, Time::ZERO, &q);
    let used_before = s.dram_used_bytes();
    s.truncate(sid(1), 4 * MB, 400);
    let e = s.entry(sid(1)).unwrap();
    assert_eq!(e.bytes, 4 * MB);
    assert_eq!(e.tokens, 400);
    assert!(s.dram_used_bytes() < used_before);
    // Growing via truncate is a no-op.
    s.truncate(sid(1), 100 * MB, 1);
    assert_eq!(s.entry(sid(1)).unwrap().bytes, 4 * MB);
}

#[test]
fn invalidate_frees_everything() {
    let mut s = small_store(PolicyKind::SchedulerAware);
    let q = QueueView::empty();
    s.save(sid(1), 5 * MB, 100, Time::ZERO, &q);
    s.invalidate(sid(1));
    assert_eq!(s.lookup(sid(1)), Lookup::Miss);
    assert_eq!(s.dram_used_bytes(), 0);
    assert_eq!(s.stats().drops_invalidated, 1);
    // Invalidating again is a no-op.
    s.invalidate(sid(1));
    assert_eq!(s.stats().drops_invalidated, 1);
}

#[test]
fn ttl_expiry_drops_idle_entries() {
    let mut s = AttentionStore::new(StoreConfig {
        ttl: Some(Dur::from_secs_f64(10.0)),
        tiers: TierStack::two_tier(10 * MB, 10 * MB),
        block_bytes: MB,
        policy: PolicyKind::SchedulerAware,
        dram_reserve_fraction: 0.0,
        default_session_bytes: MB,
        ..StoreConfig::default()
    });
    let q = QueueView::empty();
    s.save(sid(1), MB, 10, Time::ZERO, &q);
    s.save(sid(2), MB, 10, Time::from_secs_f64(8.0), &q);
    assert_eq!(s.expire(Time::from_secs_f64(9.0)), 0);
    assert_eq!(s.expire(Time::from_secs_f64(15.0)), 1);
    assert_eq!(s.lookup(sid(1)), Lookup::Miss);
    assert_eq!(s.lookup(sid(2)), Lookup::Hit(TierId(0)));
    assert_eq!(s.stats().drops_ttl, 1);
}

#[test]
fn reserve_maintenance_keeps_buffer_free() {
    let mut s = AttentionStore::new(StoreConfig {
        tiers: TierStack::two_tier(10 * MB, 30 * MB),
        block_bytes: MB,
        policy: PolicyKind::SchedulerAware,
        ttl: None,
        dram_reserve_fraction: 0.3,
        default_session_bytes: MB,
        ..StoreConfig::default()
    });
    let q = QueueView::empty();
    for i in 1..=3u64 {
        s.save(sid(i), 3 * MB, 100, Time::from_millis(i), &q);
    }
    assert!(s.pools[0].free_bytes() < 3 * MB);
    let transfers = s.maintain_reserve(Time::from_millis(9), &q);
    assert!(!transfers.is_empty());
    assert!(s.pools[0].free_bytes() >= 3 * MB);
}

#[test]
fn resave_replaces_old_copy_exactly_once() {
    let mut s = small_store(PolicyKind::SchedulerAware);
    let q = QueueView::empty();
    s.save(sid(1), 2 * MB, 100, Time::ZERO, &q);
    s.save(sid(1), 4 * MB, 200, Time::from_millis(1), &q);
    assert_eq!(s.len(), 1);
    assert_eq!(s.entry(sid(1)).unwrap().bytes, 4 * MB);
    assert_eq!(s.dram_used_bytes(), 4 * MB);
}

/// Regression: a demand fetch under full disk pressure must never
/// evict the very session being fetched, even when the policy would
/// otherwise pick it (here: LRU, and the fetched session is oldest).
#[test]
fn demand_fetch_never_evicts_its_own_session() {
    let mut s = AttentionStore::new(StoreConfig {
        tiers: TierStack::two_tier(4 * MB, 8 * MB),
        block_bytes: MB,
        policy: PolicyKind::Lru,
        ttl: None,
        dram_reserve_fraction: 0.0,
        default_session_bytes: 4 * MB,
        ..StoreConfig::default()
    });
    let q = QueueView::empty();
    // s1 lands in DRAM, then s3 and s2 push it down; final layout:
    // DRAM = s2, disk = {s1, s3}, with s1 the least recently used.
    s.save(sid(1), 4 * MB, 10, Time::from_millis(0), &q);
    s.save(sid(3), 4 * MB, 10, Time::from_millis(1), &q);
    s.save(sid(2), 4 * MB, 10, Time::from_millis(2), &q);
    assert_eq!(s.lookup(sid(1)), Lookup::Hit(TierId(1)));
    assert_eq!(s.lookup(sid(3)), Lookup::Hit(TierId(1)));
    // Demand-fetching s1 demotes s2, which needs disk room; the LRU
    // disk victim would be s1 itself — it must be exempt.
    let (found, _) = s.load_for_use(sid(1), Time::from_millis(3), &q);
    assert_eq!(found, Lookup::Hit(TierId(1)));
    assert_eq!(s.lookup(sid(1)), Lookup::Hit(TierId(0)));
    assert_eq!(s.lookup(sid(3)), Lookup::Miss);
}

/// Regression: a session queued twice must be promoted exactly once;
/// the second prefetch pass used to free its fresh DRAM blocks into
/// the disk pool.
#[test]
fn duplicate_queue_entries_prefetch_once() {
    let mut s = small_store(PolicyKind::SchedulerAware);
    let q = QueueView::empty();
    for i in 1..=4u64 {
        s.save(sid(i), 3 * MB, 100, Time::from_millis(i), &q);
    }
    assert_eq!(s.lookup(sid(1)), Lookup::Hit(TierId(1)));
    let queue = QueueView::new(&[sid(1), sid(1), sid(1)]);
    let transfers = s.prefetch(Time::from_millis(50), &queue);
    let promotions = transfers
        .iter()
        .filter(|t| t.session == sid(1) && t.is_promotion())
        .count();
    assert_eq!(promotions, 1);
    assert_eq!(s.lookup(sid(1)), Lookup::Hit(TierId(0)));
    // Block accounting stayed consistent: re-saving and invalidating
    // everything drains both pools completely.
    for i in 1..=4u64 {
        s.invalidate(sid(i));
    }
    assert_eq!(s.dram_used_bytes(), 0);
    assert_eq!(s.disk_used_bytes(), 0);
}

#[test]
fn window_lengths_follow_the_formulas() {
    let mut s = small_store(PolicyKind::SchedulerAware);
    // Empty store: fall back to default session size (1 MB).
    assert_eq!(s.prefetch_window(), 10);
    assert_eq!(s.eviction_window(), 40);
    let q = QueueView::empty();
    s.save(sid(1), 2 * MB, 100, Time::ZERO, &q);
    // S_kv = 2 MB now.
    assert_eq!(s.prefetch_window(), 5);
    assert_eq!(s.eviction_window(), 20);
}

/// Tier movements on an owner-attributed merged queue view carry the
/// owning instance in their trace events.
#[test]
fn owner_attributed_views_tag_store_events() {
    let mut s = small_store(PolicyKind::SchedulerAware);
    s.set_tracing(true);
    let q = QueueView::empty();
    for i in 1..=4u64 {
        s.save(sid(i), 3 * MB, 100, Time::from_millis(i), &q);
    }
    s.drain_events();
    assert_eq!(s.lookup(sid(1)), Lookup::Hit(TierId(1)));
    // Session 1 queued on instance 2, session 2 on instance 0.
    let queue = QueueView::with_owners(&[sid(1), sid(2)], &[2, 0]);
    let transfers = s.prefetch(Time::from_millis(50), &queue);
    assert!(transfers
        .iter()
        .any(|t| t.session == sid(1) && t.is_promotion()));
    let events = s.drain_events();
    let promoted = events
        .iter()
        .find_map(|e| match *e {
            crate::StoreEvent::Promoted {
                session: 1,
                instance,
                ..
            } => Some(instance),
            _ => None,
        })
        .expect("session 1 was promoted");
    assert_eq!(promoted, Some(2));
    // Unqueued demotion victims carry no instance attribution.
    for e in &events {
        if let crate::StoreEvent::Demoted {
            session, instance, ..
        } = *e
        {
            assert_ne!(session, 1);
            assert_eq!(instance, None, "victims were not queued");
        }
    }
}
