//! Tier placement: victim selection, demotion/eviction and the entry
//! lifecycle operations (reserve maintenance, truncate, invalidate,
//! expire).

use sim::Time;

use crate::events::StoreEvent;
use crate::{Entry, Placement, QueueView, SessionId};

use super::{AttentionStore, Transfer, TransferDir};

impl AttentionStore {
    /// Unpinned candidates of one tier, sorted by session id for
    /// deterministic policy input.
    fn candidates(&self, tier: Placement, exclude: Option<SessionId>) -> Vec<(SessionId, &Entry)> {
        self.entries
            .iter()
            .filter(|(sid, e)| e.placement == tier && !e.pinned && Some(**sid) != exclude)
            .map(|(&sid, e)| (sid, e))
            .collect()
    }

    /// Drops `sid` entirely, freeing its blocks.
    pub(super) fn drop_entry(&mut self, sid: SessionId) {
        if let Some(e) = self.entries.remove(&sid) {
            let pool = match e.placement {
                Placement::Dram => &mut self.dram,
                Placement::Disk => &mut self.disk,
            };
            pool.free(&e.blocks).expect("entry blocks are valid");
        }
    }

    /// Evicts one entry out of the disk tier (out of the system).
    /// Returns `false` when no candidate exists.
    pub(super) fn evict_from_disk(
        &mut self,
        now: Time,
        queue: &QueueView,
        exclude: Option<SessionId>,
    ) -> bool {
        let window = self.eviction_window();
        let cands = self.candidates(Placement::Disk, exclude);
        let Some(victim) = self.policy.choose_victim(&cands, queue, window) else {
            return false;
        };
        let bytes = self.entries[&victim].bytes;
        self.drop_entry(victim);
        self.stats.drops_capacity += 1;
        self.emit(StoreEvent::EvictedDisk {
            session: victim.0,
            bytes,
            window_pos: queue.position(victim),
            instance: queue.owner(victim),
            at: now,
        });
        true
    }

    /// Picks the DRAM entry the policy would demote next.
    pub(super) fn choose_dram_victim(
        &self,
        queue: &QueueView,
        exclude: Option<SessionId>,
    ) -> Option<SessionId> {
        let window = self.eviction_window();
        let cands = self.candidates(Placement::Dram, exclude);
        self.policy.choose_victim(&cands, queue, window)
    }

    /// Demotes `victim` to disk (or out of the system when the disk cannot
    /// make room). Returns the demotion transfer (`None` when the entry
    /// was dropped instead). `exclude` protects a session being staged by
    /// the caller from being evicted out of the disk tier.
    pub(super) fn demote_session(
        &mut self,
        now: Time,
        victim: SessionId,
        queue: &QueueView,
        exclude: Option<SessionId>,
    ) -> Option<Transfer> {
        let bytes = self.entries[&victim].bytes;
        // Make room on disk; drop disk entries if necessary.
        while !self.disk.fits(bytes) {
            if !self.evict_from_disk(now, queue, exclude) {
                // Disk cannot hold this entry at all: drop it instead.
                self.drop_entry(victim);
                self.stats.drops_capacity += 1;
                self.emit(StoreEvent::DroppedDram {
                    session: victim.0,
                    bytes,
                    at: now,
                });
                return None;
            }
        }
        let new_blocks = self.disk.alloc(bytes).expect("fit ensured above");
        let e = self.entries.get_mut(&victim).expect("victim exists");
        let old_blocks = std::mem::replace(&mut e.blocks, new_blocks);
        e.placement = Placement::Disk;
        self.dram.free(&old_blocks).expect("blocks were in dram");
        self.stats.demotions += 1;
        self.stats.demotion_bytes += bytes;
        self.emit(StoreEvent::Demoted {
            session: victim.0,
            bytes,
            instance: queue.owner(victim),
            at: now,
        });
        Some(Transfer {
            session: victim,
            bytes,
            dir: TransferDir::DramToDisk,
        })
    }

    /// Frees DRAM until `bytes` fit, demoting victims; returns the
    /// demotion transfers, or `None` when room cannot be made.
    pub(super) fn make_dram_room(
        &mut self,
        now: Time,
        bytes: u64,
        queue: &QueueView,
        exclude: Option<SessionId>,
        out: &mut Vec<Transfer>,
    ) -> bool {
        if self.dram.blocks_for(bytes) > self.dram.n_blocks() {
            return false;
        }
        while !self.dram.fits(bytes) {
            let Some(victim) = self.choose_dram_victim(queue, exclude) else {
                return false;
            };
            if let Some(t) = self.demote_session(now, victim, queue, exclude) {
                out.push(t);
            }
        }
        true
    }

    /// Demotes cold entries until the configured DRAM reserve is free
    /// again (§3.3.1's host-memory buffer).
    ///
    /// Only entries *outside* the look-ahead window are demoted here: the
    /// reserve exists to absorb incoming saves and fetches, and demoting a
    /// queued session would force the prefetcher to read it right back.
    pub fn maintain_reserve(&mut self, now: Time, queue: &QueueView) -> Vec<Transfer> {
        let reserve = (self.cfg.dram_bytes as f64 * self.cfg.dram_reserve_fraction) as u64;
        let window = self.eviction_window();
        let mut transfers = Vec::new();
        while self.dram.free_bytes() < reserve {
            let Some(victim) = self.choose_dram_victim(queue, None) else {
                break;
            };
            if queue.position(victim).is_some_and(|vp| vp < window) {
                break;
            }
            if let Some(t) = self.demote_session(now, victim, queue, None) {
                transfers.push(t);
            }
        }
        transfers
    }

    /// Shrinks `sid`'s cached KV to `new_bytes`/`new_tokens` in place
    /// (decoupled KV truncation, §3.4). No-op when not cached or when the
    /// entry is not actually shrinking.
    pub fn truncate(&mut self, sid: SessionId, new_bytes: u64, new_tokens: u64) {
        let Some(e) = self.entries.get(&sid) else {
            return;
        };
        if new_bytes >= e.bytes {
            return;
        }
        let placement = e.placement;
        let was_ok = e.integrity_ok(sid);
        let pool = match placement {
            Placement::Dram => &mut self.dram,
            Placement::Disk => &mut self.disk,
        };
        let old = self.entries.get_mut(&sid).expect("checked above");
        let old_blocks = std::mem::take(&mut old.blocks);
        pool.free(&old_blocks).expect("entry blocks valid");
        let blocks = pool
            .alloc(new_bytes)
            .expect("shrinking realloc always fits");
        let e = self.entries.get_mut(&sid).expect("checked above");
        e.blocks = blocks;
        e.bytes = new_bytes;
        e.tokens = new_tokens;
        // Re-stamp the integrity checksum for the new metadata; an entry
        // corrupted at save time stays corrupt through truncation.
        let good = Entry::metadata_checksum(sid, new_bytes, new_tokens);
        e.checksum = if was_ok { good } else { good ^ 1 };
    }

    /// Drops `sid`'s KV (context-overflow invalidation in OF mode, or an
    /// aborted session).
    pub fn invalidate(&mut self, sid: SessionId) {
        if self.entries.contains_key(&sid) {
            self.drop_entry(sid);
            self.stats.drops_invalidated += 1;
        }
    }

    /// Drops entries idle longer than the TTL; returns how many expired.
    pub fn expire(&mut self, now: Time) -> u64 {
        let Some(ttl) = self.cfg.ttl else {
            return 0;
        };
        let dead: Vec<SessionId> = self
            .entries
            .iter()
            .filter(|(_, e)| !e.pinned && now.saturating_since(e.last_access) > ttl)
            .map(|(&sid, _)| sid)
            .collect();
        let n = dead.len() as u64;
        let mark = self.trace_mark();
        for sid in dead {
            self.drop_entry(sid);
            self.emit(StoreEvent::Expired {
                session: sid.0,
                at: now,
            });
        }
        self.stats.drops_ttl += n;
        self.emit_occupancy(mark, now);
        n
    }
}
