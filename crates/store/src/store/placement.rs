//! Tier placement: victim selection, hop-by-adjacent-tier demotion,
//! bottom-tier eviction and the entry lifecycle operations (reserve
//! maintenance, truncate, invalidate, expire).

use sim::Time;

use crate::events::StoreEvent;
use crate::{Entry, QueueView, SessionId, TierId};

use super::{AttentionStore, Transfer};

impl AttentionStore {
    /// Unpinned candidates of one tier, sorted by session id for
    /// deterministic policy input.
    fn candidates(&self, tier: TierId, exclude: Option<SessionId>) -> Vec<(SessionId, &Entry)> {
        self.entries
            .iter()
            .filter(|(sid, e)| e.placement == tier && !e.pinned && Some(**sid) != exclude)
            .map(|(&sid, e)| (sid, e))
            .collect()
    }

    /// Drops `sid` entirely, freeing its blocks.
    pub(super) fn drop_entry(&mut self, sid: SessionId) {
        if let Some(e) = self.entries.remove(&sid) {
            self.pools[e.placement.0]
                .free(&e.blocks)
                .expect("entry blocks are valid");
        }
    }

    /// Evicts one entry out of `tier` (out of the system). Only the
    /// stack's bottom tier evicts; fuller tiers above push entries down
    /// instead. Returns `false` when no candidate exists.
    pub(super) fn evict_from_tier(
        &mut self,
        now: Time,
        tier: TierId,
        queue: &QueueView,
        exclude: Option<SessionId>,
    ) -> bool {
        let window = self.eviction_window();
        let cands = self.candidates(tier, exclude);
        let Some(victim) = self.policy.choose_victim(&cands, queue, window) else {
            return false;
        };
        let bytes = self.entries[&victim].bytes;
        self.drop_entry(victim);
        self.stats.drops_capacity += 1;
        self.emit(StoreEvent::Evicted {
            session: victim.0,
            bytes,
            tier,
            window_pos: queue.position(victim),
            instance: queue.owner(victim),
            at: now,
        });
        true
    }

    /// Picks the entry of `tier` the policy would demote next.
    pub(super) fn choose_victim_in(
        &self,
        tier: TierId,
        queue: &QueueView,
        exclude: Option<SessionId>,
    ) -> Option<SessionId> {
        let window = self.eviction_window();
        let cands = self.candidates(tier, exclude);
        self.policy.choose_victim(&cands, queue, window)
    }

    /// Frees space in `tier` by one entry: the bottom tier evicts out of
    /// the system, any other tier demotes a victim one hop down (which
    /// may cascade further). Returns `false` when `tier` has no eligible
    /// victim; `true` means space was freed (the victim was demoted or,
    /// failing that, dropped).
    pub(super) fn push_down_from(
        &mut self,
        now: Time,
        tier: TierId,
        queue: &QueueView,
        exclude: Option<SessionId>,
        out: &mut Vec<Transfer>,
    ) -> bool {
        if tier == self.bottom_tier() {
            return self.evict_from_tier(now, tier, queue, exclude);
        }
        let Some(victim) = self.choose_victim_in(tier, queue, exclude) else {
            return false;
        };
        // Demoted or dropped, the victim's blocks left `tier` either way.
        self.demote_session(now, victim, queue, exclude, out);
        true
    }

    /// Demotes `victim` one hop to the adjacent slower tier (or out of
    /// the system when no tier below can make room). Returns `true` and
    /// pushes the demotion hop onto `out` when the entry moved; `false`
    /// means it was dropped instead. `exclude` protects a session being
    /// staged by the caller from being evicted along the cascade.
    pub(super) fn demote_session(
        &mut self,
        now: Time,
        victim: SessionId,
        queue: &QueueView,
        exclude: Option<SessionId>,
        out: &mut Vec<Transfer>,
    ) -> bool {
        let bytes = self.entries[&victim].bytes;
        let from = self.entries[&victim].placement;
        let to = from.below();
        debug_assert!(to.0 < self.pools.len(), "bottom tier evicts, not demotes");
        // Make room one tier down; cascade further demotions/evictions if
        // necessary.
        while !self.pools[to.0].fits(bytes) {
            if !self.push_down_from(now, to, queue, exclude, out) {
                // The tier below cannot hold this entry at all: drop it.
                self.drop_entry(victim);
                self.stats.drops_capacity += 1;
                self.emit(StoreEvent::Dropped {
                    session: victim.0,
                    bytes,
                    tier: from,
                    at: now,
                });
                return false;
            }
        }
        let new_blocks = self.pools[to.0].alloc(bytes).expect("fit ensured above");
        let e = self.entries.get_mut(&victim).expect("victim exists");
        let old_blocks = std::mem::replace(&mut e.blocks, new_blocks);
        e.placement = to;
        self.pools[from.0]
            .free(&old_blocks)
            .expect("blocks were in the source tier");
        self.stats.demotions += 1;
        self.stats.demotion_bytes += bytes;
        self.emit(StoreEvent::Demoted {
            session: victim.0,
            bytes,
            from,
            to,
            instance: queue.owner(victim),
            at: now,
        });
        out.push(Transfer {
            session: victim,
            bytes,
            from,
            to,
        });
        true
    }

    /// Frees space in `tier` until `bytes` fit, demoting victims hop by
    /// hop; pushes the demotion transfers onto `out`. Returns `false`
    /// when room cannot be made.
    pub(super) fn make_room_in(
        &mut self,
        now: Time,
        tier: TierId,
        bytes: u64,
        queue: &QueueView,
        exclude: Option<SessionId>,
        out: &mut Vec<Transfer>,
    ) -> bool {
        sim::scope!("store.make_room");
        let pool = &self.pools[tier.0];
        if pool.blocks_for(bytes) > pool.n_blocks() {
            return false;
        }
        while !self.pools[tier.0].fits(bytes) {
            let Some(victim) = self.choose_victim_in(tier, queue, exclude) else {
                return false;
            };
            self.demote_session(now, victim, queue, exclude, out);
        }
        true
    }

    /// Demotes cold entries until the configured tier-0 reserve is free
    /// again (§3.3.1's host-memory buffer).
    ///
    /// Only entries *outside* the look-ahead window are demoted here: the
    /// reserve exists to absorb incoming saves and fetches, and demoting a
    /// queued session would force the prefetcher to read it right back.
    pub fn maintain_reserve(&mut self, now: Time, queue: &QueueView) -> Vec<Transfer> {
        sim::scope!("store.reserve");
        if self.cfg.keying == crate::KeyingMode::ContentAddressed {
            return self.ca_maintain_reserve(now, queue);
        }
        let reserve = (self.cfg.tiers[0].capacity as f64 * self.cfg.dram_reserve_fraction) as u64;
        let window = self.eviction_window();
        let mut transfers = Vec::new();
        while self.pools[0].free_bytes() < reserve {
            let Some(victim) = self.choose_victim_in(TierId(0), queue, None) else {
                break;
            };
            if queue.position(victim).is_some_and(|vp| vp < window) {
                break;
            }
            self.demote_session(now, victim, queue, None, &mut transfers);
        }
        transfers
    }

    /// Shrinks `sid`'s cached KV to `new_bytes`/`new_tokens` in place
    /// (decoupled KV truncation, §3.4). No-op when not cached or when the
    /// entry is not actually shrinking.
    pub fn truncate(&mut self, sid: SessionId, new_bytes: u64, new_tokens: u64) {
        if self.cfg.keying == crate::KeyingMode::ContentAddressed {
            return self.ca_truncate(sid, new_bytes, new_tokens);
        }
        let Some(e) = self.entries.get(&sid) else {
            return;
        };
        if new_bytes >= e.bytes {
            return;
        }
        let placement = e.placement;
        let was_ok = e.integrity_ok(sid);
        let pool = &mut self.pools[placement.0];
        let old = self.entries.get_mut(&sid).expect("checked above");
        let old_blocks = std::mem::take(&mut old.blocks);
        pool.free(&old_blocks).expect("entry blocks valid");
        let blocks = pool
            .alloc(new_bytes)
            .expect("shrinking realloc always fits");
        let e = self.entries.get_mut(&sid).expect("checked above");
        e.blocks = blocks;
        e.bytes = new_bytes;
        e.tokens = new_tokens;
        // Re-stamp the integrity checksum for the new metadata; an entry
        // corrupted at save time stays corrupt through truncation.
        let good = Entry::metadata_checksum(sid, new_bytes, new_tokens);
        e.checksum = if was_ok { good } else { good ^ 1 };
    }

    /// Drops `sid`'s KV (context-overflow invalidation in OF mode, or an
    /// aborted session).
    pub fn invalidate(&mut self, sid: SessionId) {
        if self.cfg.keying == crate::KeyingMode::ContentAddressed {
            return self.ca_invalidate(sid);
        }
        if self.entries.contains_key(&sid) {
            self.drop_entry(sid);
            self.stats.drops_invalidated += 1;
        }
    }

    /// Drops entries idle longer than the TTL; returns how many expired.
    pub fn expire(&mut self, now: Time) -> u64 {
        if self.cfg.keying == crate::KeyingMode::ContentAddressed {
            return self.ca_expire(now);
        }
        let Some(ttl) = self.cfg.ttl else {
            return 0;
        };
        let dead: Vec<SessionId> = self
            .entries
            .iter()
            .filter(|(_, e)| !e.pinned && now.saturating_since(e.last_access) > ttl)
            .map(|(&sid, _)| sid)
            .collect();
        let n = dead.len() as u64;
        let mark = self.trace_mark();
        for sid in dead {
            self.drop_entry(sid);
            self.emit(StoreEvent::Expired {
                session: sid.0,
                at: now,
            });
        }
        self.stats.drops_ttl += n;
        self.emit_occupancy(mark, now);
        n
    }
}
