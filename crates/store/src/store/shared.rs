//! The content-addressed block ledger: storage, lookup and eviction for
//! [`KeyingMode::ContentAddressed`].
//!
//! Instead of one private [`Entry`] per session, the ledger stores
//! *chunk nodes* — `block_tokens`-sized spans of KV addressed by their
//! prefix chain hash — shared by every session whose token stream
//! produces the same hash. A session is reduced to an ordered list of
//! node references (its chain). The `chain hash → node` map is the
//! prefix trie: longest-prefix match walks successive chain hashes until
//! the first miss, so one lookup per block and no explicit tree.
//!
//! Lifecycle rules:
//! - **refs** count saved chains referencing a node. Releasing a
//!   reference never frees the node immediately — an unreferenced node
//!   stays resident (still matchable) until capacity pressure reclaims
//!   it, which is the refcounted-eviction path.
//! - **pins** count in-flight uses (a consult pins the matched chain
//!   until the engine unpins after the turn). A pinned node is exempt
//!   from demotion and eviction at every tier, like pinned entries in
//!   per-session mode.
//! - A node is *evictable out of the system* only when `refs == 0`;
//!   referenced nodes demote hop by hop instead. When the bottom tier
//!   holds only referenced blocks, the ledger falls back to releasing
//!   the least-recently-used unpinned session's whole chain (the moral
//!   equivalent of per-session eviction, reported with the same
//!   `evicted` event).

use std::collections::{BTreeMap, HashMap};

use sim::Time;

use crate::chain::{ContentKey, DedupStats};
use crate::events::{FetchKind, StoreEvent};
use crate::{BlockId, QueueView, SessionId, TierId};

use super::{AttentionStore, Lookup, Transfer};

/// Result of a content-addressed prefix consult.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PrefixMatch {
    /// Tokens of the requested context covered by stored blocks (the
    /// engine prefills only the unmatched tail).
    pub matched_tokens: u64,
    /// Where the deepest matched block was found (`Miss` when nothing
    /// matched).
    pub lookup: Lookup,
    /// Adjacent-tier hops to charge (promotions of matched blocks plus
    /// any demotions that made room for them).
    pub transfers: Vec<Transfer>,
}

impl PrefixMatch {
    /// A match of nothing.
    pub fn miss() -> Self {
        PrefixMatch {
            matched_tokens: 0,
            lookup: Lookup::Miss,
            transfers: Vec::new(),
        }
    }
}

/// One stored chunk of KV, shared by every chain that references it.
pub(super) struct ChunkNode {
    chain_hash: u64,
    tokens: u64,
    bytes: u64,
    placement: TierId,
    blocks: Vec<BlockId>,
    /// Saved chains referencing this node.
    refs: u64,
    /// In-flight consults holding this node (exempt from movement).
    pins: u64,
    last_access: Time,
    insert_seq: u64,
    /// Last session to save or match this node; used to attribute tier
    /// transfers when the node itself moves.
    owner_hint: SessionId,
}

/// One session's view of the ledger: an ordered chain of node slots.
pub(super) struct SessionRef {
    chain: Vec<usize>,
    tokens: u64,
    bytes: u64,
    key: ContentKey,
    last_access: Time,
    insert_seq: u64,
}

/// The shared-block side of the store (empty and inert in per-session
/// mode).
#[derive(Default)]
pub(super) struct BlockLedger {
    /// Slab of nodes; `None` slots are free for reuse.
    nodes: Vec<Option<ChunkNode>>,
    free_slots: Vec<usize>,
    /// chain hash → slot: the prefix trie.
    by_hash: HashMap<u64, usize>,
    sessions: BTreeMap<SessionId, SessionRef>,
    /// Content keys registered before a session's first save.
    keys: BTreeMap<SessionId, ContentKey>,
    /// Chains pinned by in-flight consults.
    pinned: BTreeMap<SessionId, Vec<usize>>,
    next_seq: u64,
    pub(super) dedup: DedupStats,
}

impl BlockLedger {
    fn node(&self, slot: usize) -> &ChunkNode {
        self.nodes[slot].as_ref().expect("slot is live")
    }

    fn node_mut(&mut self, slot: usize) -> &mut ChunkNode {
        self.nodes[slot].as_mut().expect("slot is live")
    }

    fn insert_node(&mut self, node: ChunkNode) -> usize {
        let hash = node.chain_hash;
        let slot = match self.free_slots.pop() {
            Some(s) => {
                self.nodes[s] = Some(node);
                s
            }
            None => {
                self.nodes.push(Some(node));
                self.nodes.len() - 1
            }
        };
        self.by_hash.insert(hash, slot);
        slot
    }

    /// Live slots, ascending (deterministic iteration order).
    fn live_slots(&self) -> impl Iterator<Item = usize> + '_ {
        self.nodes
            .iter()
            .enumerate()
            .filter_map(|(i, n)| n.as_ref().map(|_| i))
    }
}

impl AttentionStore {
    /// Registers `sid`'s content key (from the workload's declared shared
    /// prefix) so its chunks hash into the shared namespace. Must happen
    /// before the session's first save; later calls are ignored once a
    /// chain exists (the key travels with the chain from then on).
    pub fn register_content(&mut self, sid: SessionId, key: ContentKey) {
        if !self.shared.sessions.contains_key(&sid) {
            self.shared.keys.insert(sid, key);
        }
    }

    /// Cumulative dedup statistics (all zero in per-session mode).
    pub fn dedup_stats(&self) -> DedupStats {
        self.shared.dedup
    }

    fn ca_key(&self, sid: SessionId) -> ContentKey {
        if let Some(r) = self.shared.sessions.get(&sid) {
            return r.key;
        }
        self.shared
            .keys
            .get(&sid)
            .copied()
            .unwrap_or_else(|| ContentKey::private(sid.0))
    }

    /// Splits `total_bytes` across the chain proportionally to tokens,
    /// rounding so the per-chunk sizes sum exactly to the total.
    fn chunk_bytes(total_bytes: u64, total_tokens: u64, start: u64, n: u64) -> u64 {
        let at = |tok: u64| -> u64 {
            ((total_bytes as u128 * tok as u128) / total_tokens.max(1) as u128) as u64
        };
        at(start + n) - at(start)
    }

    // ---- lookup / accessors -------------------------------------------

    pub(super) fn ca_lookup(&self, sid: SessionId) -> Lookup {
        match self.shared.sessions.get(&sid) {
            Some(r) if !r.chain.is_empty() => {
                let deepest = r
                    .chain
                    .iter()
                    .map(|&s| self.shared.node(s).placement)
                    .max()
                    .expect("chain non-empty");
                Lookup::Hit(deepest)
            }
            _ => Lookup::Miss,
        }
    }

    pub(super) fn ca_tokens(&self, sid: SessionId) -> Option<u64> {
        self.shared.sessions.get(&sid).map(|r| r.tokens)
    }

    pub(super) fn ca_len(&self) -> usize {
        self.shared.sessions.len()
    }

    /// `S_kv` under block keying: block size × observed chain length,
    /// i.e. the mean bytes of the stored chains. Without this, the
    /// windows would fall back to the per-session default forever
    /// (the ledger never populates `entries`), collapsing `L_pw`/`L_ev`
    /// to fixed constants.
    pub(super) fn ca_avg_session_bytes(&self) -> u64 {
        let n = self.shared.sessions.len() as u64;
        if n == 0 {
            return self.cfg.default_session_bytes.max(1);
        }
        let total: u64 = self.shared.sessions.values().map(|r| r.bytes).sum();
        (total / n).max(1)
    }

    // ---- room making / refcounted eviction ----------------------------

    /// Frees the least-recently-used dead node (refs == 0, pins == 0) of
    /// `tier` out of the system — the refcounted eviction path. Returns
    /// `false` when the tier has no dead node.
    pub(super) fn ca_free_dead_in(&mut self, now: Time, tier: TierId) -> bool {
        let victim = self
            .shared
            .live_slots()
            .filter(|&s| {
                let n = self.shared.node(s);
                n.placement == tier && n.refs == 0 && n.pins == 0
            })
            .min_by_key(|&s| {
                let n = self.shared.node(s);
                (n.last_access, n.insert_seq)
            });
        let Some(slot) = victim else {
            return false;
        };
        let node = self.shared.nodes[slot].take().expect("victim is live");
        self.shared.by_hash.remove(&node.chain_hash);
        self.shared.free_slots.push(slot);
        self.pools[tier.0]
            .free(&node.blocks)
            .expect("node blocks are valid");
        self.shared.dedup.refcounted_evictions += 1;
        self.emit(StoreEvent::BlockEvicted {
            blocks: node.blocks.len() as u64,
            bytes: node.bytes,
            tier,
            refs: 0,
            at: now,
        });
        true
    }

    /// Demotes the least-recently-used unpinned node of `tier` one hop
    /// down (making room below as needed), preferring nodes no session
    /// inside the look-ahead eviction window maps to — the
    /// scheduler-aware victim order of §3.3.2 at block granularity.
    /// Returns `false` when no node is movable.
    pub(super) fn ca_demote_one(
        &mut self,
        now: Time,
        tier: TierId,
        acting: SessionId,
        queue: &QueueView,
        out: &mut Vec<Transfer>,
    ) -> bool {
        debug_assert!(
            tier != self.bottom_tier(),
            "bottom tier evicts, not demotes"
        );
        let window = self.eviction_window();
        let needed = self.ca_queued_slots(queue, window);
        let victim = self
            .shared
            .live_slots()
            .filter(|&s| {
                let n = self.shared.node(s);
                n.placement == tier && n.pins == 0
            })
            .min_by_key(|&s| {
                let n = self.shared.node(s);
                // `false < true`: blocks an imminent session will read —
                // via its stored chain (owner_hint in-window) or its
                // registered key resolving here on a first turn — sort
                // last, demoted only when nothing colder remains; among
                // the rest, plain LRU.
                let soon =
                    queue.position(n.owner_hint).is_some_and(|p| p < window) || needed.contains(&s);
                (soon, n.last_access, n.insert_seq)
            });
        let Some(slot) = victim else {
            return false;
        };
        self.ca_demote_slot(now, slot, acting, queue, out)
    }

    /// Demotes one specific node one hop down (making room below as
    /// needed). Returns `false` when room below cannot be made.
    fn ca_demote_slot(
        &mut self,
        now: Time,
        slot: usize,
        acting: SessionId,
        queue: &QueueView,
        out: &mut Vec<Transfer>,
    ) -> bool {
        let (bytes, from) = {
            let n = self.shared.node(slot);
            (n.bytes, n.placement)
        };
        let to = from.below();
        if !self.ca_make_room_in(now, to, bytes, acting, queue, out) {
            return false;
        }
        let new_blocks = self.pools[to.0].alloc(bytes).expect("room made above");
        let node = self.shared.node_mut(slot);
        let old_blocks = std::mem::replace(&mut node.blocks, new_blocks);
        node.placement = to;
        let mover = node.owner_hint;
        self.pools[from.0]
            .free(&old_blocks)
            .expect("blocks were in the source tier");
        self.stats.demotions += 1;
        self.stats.demotion_bytes += bytes;
        self.emit(StoreEvent::BlockDemoted {
            blocks: self.shared.node(slot).blocks.len() as u64,
            bytes,
            from,
            to,
            at: now,
        });
        out.push(Transfer {
            session: mover,
            bytes,
            from,
            to,
        });
        true
    }

    /// Releases the least-recently-used unpinned session's whole chain —
    /// the fallback when the bottom tier holds only referenced blocks.
    /// Sessions outside the look-ahead eviction window are preferred.
    fn ca_release_lru_session(&mut self, now: Time, queue: &QueueView) -> bool {
        let window = self.eviction_window();
        let cands: Vec<SessionId> = self
            .shared
            .sessions
            .keys()
            .filter(|sid| !self.shared.pinned.contains_key(sid))
            .copied()
            .collect();
        let order = |sid: &SessionId| {
            let r = &self.shared.sessions[sid];
            (r.last_access, r.insert_seq)
        };
        let victim = cands
            .iter()
            .filter(|&&sid| queue.position(sid).is_none_or(|p| p >= window))
            .min_by_key(|sid| order(sid))
            .or_else(|| cands.iter().min_by_key(|sid| order(sid)))
            .copied();
        let Some(sid) = victim else {
            return false;
        };
        let r = self.shared.sessions.remove(&sid).expect("victim exists");
        for &slot in &r.chain {
            let n = self.shared.node_mut(slot);
            n.refs = n.refs.saturating_sub(1);
        }
        self.stats.drops_capacity += 1;
        self.shared.dedup.session_releases += 1;
        self.emit(StoreEvent::Evicted {
            session: sid.0,
            bytes: r.bytes,
            tier: self.bottom_tier(),
            window_pos: queue.position(sid),
            instance: queue.owner(sid),
            at: now,
        });
        true
    }

    /// Frees space in `tier` until `bytes` fit: dead nodes are reclaimed
    /// first (refcounted eviction), then live nodes demote hop by hop;
    /// at the bottom tier, chains of cold sessions are released to turn
    /// referenced blocks into dead ones. Returns `false` when room
    /// cannot be made.
    fn ca_make_room_in(
        &mut self,
        now: Time,
        tier: TierId,
        bytes: u64,
        acting: SessionId,
        queue: &QueueView,
        out: &mut Vec<Transfer>,
    ) -> bool {
        let pool = &self.pools[tier.0];
        if pool.blocks_for(bytes) > pool.n_blocks() {
            return false;
        }
        while !self.pools[tier.0].fits(bytes) {
            if self.ca_free_dead_in(now, tier) {
                continue;
            }
            let progressed = if tier == self.bottom_tier() {
                self.ca_release_lru_session(now, queue)
            } else {
                self.ca_demote_one(now, tier, acting, queue, out)
            };
            if !progressed {
                return false;
            }
        }
        true
    }

    // ---- save ---------------------------------------------------------

    pub(super) fn ca_save(
        &mut self,
        sid: SessionId,
        total_bytes: u64,
        total_tokens: u64,
        now: Time,
        queue: &QueueView,
    ) -> (Vec<Transfer>, bool) {
        // A save supersedes the consult that admitted the turn: release
        // its pins (mirrors the per-session save replacing the pinned
        // entry), or the session would block prefetch and demotion for
        // its whole think time.
        self.ca_unpin(sid);
        let mut transfers = Vec::new();
        let mark = self.trace_mark();
        let key = self.ca_key(sid);
        let desired = key.chain(total_tokens, self.cfg.block_tokens);

        // Diff against the previous chain: keep the common prefix, release
        // the rest. Replacing only a partial tail chunk is growth; anything
        // more is copy-on-divergence.
        let old: Vec<usize> = self
            .shared
            .sessions
            .get(&sid)
            .map(|r| r.chain.clone())
            .unwrap_or_default();
        let common = old
            .iter()
            .zip(desired.iter())
            .take_while(|(&slot, ck)| self.shared.node(slot).chain_hash == ck.chain_hash)
            .count();
        let released = old.len() - common;
        if released > 0 {
            let old_tail_partial =
                self.shared.node(old[old.len() - 1]).tokens < self.cfg.block_tokens;
            for &slot in &old[common..] {
                let n = self.shared.node_mut(slot);
                n.refs = n.refs.saturating_sub(1);
            }
            let grew = released == 1 && common == old.len() - 1 && old_tail_partial;
            if !grew {
                self.shared.dedup.divergences += 1;
                self.emit(StoreEvent::BlockDiverged {
                    session: sid.0,
                    at_block: common as u64,
                    released_blocks: released as u64,
                    at: now,
                });
            }
        }

        let chain: Vec<usize> = old[..common].to_vec();
        let mut covered_tokens: u64 = desired[..common].iter().map(|c| c.tokens).sum();
        // Byte totals track the *stored* node sizes: a dedup-hit node was
        // sized by whichever session wrote it first, and proportional
        // rounding differs across totals.
        let mut covered_bytes: u64 = chain.iter().map(|&s| self.shared.node(s).bytes).sum();
        let mut chain = chain;
        let mut new_blocks = 0u64;
        let mut dedup_blocks = 0u64;
        let mut bytes_written = 0u64;
        let mut bytes_saved = 0u64;
        let mut spilled = false;
        let mut fitted = true;
        for ck in &desired[common..] {
            let bytes = Self::chunk_bytes(total_bytes, total_tokens, covered_tokens, ck.tokens);
            if let Some(&slot) = self.shared.by_hash.get(&ck.chain_hash) {
                // Cross-session (or re-grown) dedup hit: share the node.
                let n = self.shared.node_mut(slot);
                n.refs += 1;
                n.last_access = now;
                n.owner_hint = sid;
                dedup_blocks += 1;
                bytes_saved += n.bytes;
                covered_bytes += n.bytes;
                chain.push(slot);
            } else {
                // Fresh chunk: prefer tier 0, spill down the stack like
                // per-session saves (the write stream lands hop by hop).
                let placement = (0..self.pools.len())
                    .map(TierId)
                    .find(|&t| self.ca_make_room_in(now, t, bytes, sid, queue, &mut transfers));
                let Some(placement) = placement else {
                    fitted = false;
                    break;
                };
                if !placement.is_fast() {
                    spilled = true;
                    for hop in 0..placement.0 {
                        transfers.push(Transfer {
                            session: sid,
                            bytes,
                            from: TierId(hop),
                            to: TierId(hop + 1),
                        });
                    }
                }
                let blocks = self.pools[placement.0]
                    .alloc(bytes)
                    .expect("room made above");
                let seq = self.shared.next_seq;
                self.shared.next_seq += 1;
                let slot = self.shared.insert_node(ChunkNode {
                    chain_hash: ck.chain_hash,
                    tokens: ck.tokens,
                    bytes,
                    placement,
                    blocks,
                    refs: 1,
                    pins: 0,
                    last_access: now,
                    insert_seq: seq,
                    owner_hint: sid,
                });
                new_blocks += 1;
                bytes_written += bytes;
                covered_bytes += bytes;
                chain.push(slot);
            }
            covered_tokens += ck.tokens;
        }

        self.shared.dedup.new_blocks += new_blocks;
        self.shared.dedup.dedup_blocks += dedup_blocks;
        self.shared.dedup.bytes_written += bytes_written;
        self.shared.dedup.bytes_saved += bytes_saved;
        if spilled {
            self.stats.spills_to_disk += 1;
        }
        if !fitted {
            self.stats.save_rejected += 1;
            self.emit(StoreEvent::SaveRejected {
                session: sid.0,
                bytes: total_bytes.saturating_sub(covered_bytes),
                at: now,
            });
        }
        if chain.is_empty() {
            // Nothing fit at all: no chain survives.
            self.shared.sessions.remove(&sid);
            self.emit_occupancy(mark, now);
            return (transfers, false);
        }
        let deepest = chain
            .iter()
            .map(|&s| self.shared.node(s).placement)
            .max()
            .expect("chain non-empty");
        let seq = self.shared.next_seq;
        self.shared.next_seq += 1;
        self.shared.sessions.insert(
            sid,
            SessionRef {
                chain,
                tokens: covered_tokens,
                bytes: covered_bytes,
                key,
                last_access: now,
                insert_seq: seq,
            },
        );
        self.stats.saves += 1;
        self.stats.save_bytes += covered_bytes;
        self.emit(StoreEvent::Saved {
            session: sid.0,
            bytes: covered_bytes,
            tier: deepest,
            at: now,
        });
        self.emit(StoreEvent::BlockSaved {
            session: sid.0,
            new_blocks,
            dedup_blocks,
            bytes_written,
            bytes_saved,
            at: now,
        });
        self.emit_occupancy(mark, now);
        (transfers, fitted)
    }

    // ---- consult / load -----------------------------------------------

    /// Longest-prefix match of `sid`'s next context (`ctx_tokens` =
    /// history + new user tokens) against the trie, across *all*
    /// sessions. Matched blocks are pinned and staged to tier 0; the
    /// engine prefills only the unmatched tail.
    pub(super) fn ca_load_prefix(
        &mut self,
        sid: SessionId,
        ctx_tokens: u64,
        now: Time,
        queue: &QueueView,
    ) -> PrefixMatch {
        sim::scope!("store.trie_probe");
        // A consult replaces any pins left by a previous one.
        self.ca_unpin(sid);
        let mark = self.trace_mark();
        let key = self.ca_key(sid);

        // Cross-session walk: successive chain hashes over the context's
        // chunk grid until the first miss.
        let grid = key.chain(ctx_tokens, self.cfg.block_tokens);
        let mut cross: Vec<usize> = Vec::new();
        let mut cross_tokens = 0u64;
        for ck in &grid {
            let Some(&slot) = self.shared.by_hash.get(&ck.chain_hash) else {
                break;
            };
            cross.push(slot);
            cross_tokens += ck.tokens;
        }
        // Own-chain fallback: a session resuming its own history can
        // always reuse its stored prefix, even where its partial tail
        // chunk does not align with the context's chunk grid.
        let own_tokens = self
            .shared
            .sessions
            .get(&sid)
            .map_or(0, |r| r.tokens.min(ctx_tokens));
        let (matched_tokens, matched) = if own_tokens > cross_tokens {
            let r = &self.shared.sessions[&sid];
            (own_tokens, r.chain.clone())
        } else {
            (cross_tokens, cross)
        };

        if matched.is_empty() {
            self.emit(StoreEvent::FetchMiss {
                session: sid.0,
                at: now,
            });
            self.emit_occupancy(mark, now);
            return PrefixMatch::miss();
        }

        let matched_bytes: u64 = matched.iter().map(|&s| self.shared.node(s).bytes).sum();
        let deepest = matched
            .iter()
            .map(|&s| self.shared.node(s).placement)
            .max()
            .expect("non-empty");
        self.emit(StoreEvent::FetchHit {
            session: sid.0,
            tier: deepest,
            bytes: matched_bytes,
            at: now,
        });
        self.emit(StoreEvent::BlockDedupHit {
            session: sid.0,
            matched_blocks: matched.len() as u64,
            bytes: matched_bytes,
            at: now,
        });
        self.shared.dedup.lookup_hits += 1;
        self.shared.dedup.matched_blocks += matched.len() as u64;

        // Pin first so room-making below cannot evict what we matched.
        for &slot in &matched {
            let n = self.shared.node_mut(slot);
            n.pins += 1;
            n.last_access = now;
            n.owner_hint = sid;
        }
        self.shared.pinned.insert(sid, matched.clone());
        if let Some(r) = self.shared.sessions.get_mut(&sid) {
            r.last_access = now;
        }

        // Stage matched blocks up to tier 0 (serve-in-place when tier 0
        // genuinely cannot hold them).
        let mut transfers = Vec::new();
        let mut promoted_bytes = 0u64;
        let mut promoted_from = TierId(0);
        for &slot in &matched {
            let (bytes, from) = {
                let n = self.shared.node(slot);
                (n.bytes, n.placement)
            };
            if from.is_fast() {
                continue;
            }
            if !self.ca_make_room_in(now, TierId(0), bytes, sid, queue, &mut transfers) {
                continue;
            }
            let new_blocks = self.pools[0].alloc(bytes).expect("room made above");
            let node = self.shared.node_mut(slot);
            let old_blocks = std::mem::replace(&mut node.blocks, new_blocks);
            node.placement = TierId(0);
            self.pools[from.0]
                .free(&old_blocks)
                .expect("blocks were in the source tier");
            self.stats.promotions += 1;
            self.stats.promotion_bytes += bytes;
            promoted_bytes += bytes;
            promoted_from = promoted_from.max(from);
            Self::push_promotion_hops(&mut transfers, sid, bytes, from);
        }
        if promoted_bytes > 0 {
            self.emit(StoreEvent::Promoted {
                session: sid.0,
                bytes: promoted_bytes,
                kind: FetchKind::Demand,
                from: promoted_from,
                to: TierId(0),
                queue_pos: queue.position(sid),
                instance: queue.owner(sid),
                at: now,
            });
        }
        self.emit_occupancy(mark, now);
        PrefixMatch {
            matched_tokens,
            lookup: Lookup::Hit(deepest),
            transfers,
        }
    }

    /// `load_for_use` in content-addressed mode: stage the session's own
    /// stored chain (cross-session matching needs the context length,
    /// which only [`ca_load_prefix`](Self::ca_load_prefix) receives).
    pub(super) fn ca_load_for_use(
        &mut self,
        sid: SessionId,
        now: Time,
        queue: &QueueView,
    ) -> (Lookup, Vec<Transfer>) {
        let Some(tokens) = self.ca_tokens(sid) else {
            let mark = self.trace_mark();
            self.emit(StoreEvent::FetchMiss {
                session: sid.0,
                at: now,
            });
            self.emit_occupancy(mark, now);
            return (Lookup::Miss, Vec::new());
        };
        let m = self.ca_load_prefix(sid, tokens, now, queue);
        (m.lookup, m.transfers)
    }

    pub(super) fn ca_unpin(&mut self, sid: SessionId) {
        if let Some(slots) = self.shared.pinned.remove(&sid) {
            for slot in slots {
                let n = self.shared.node_mut(slot);
                n.pins = n.pins.saturating_sub(1);
            }
        }
    }

    // ---- lifecycle ----------------------------------------------------

    /// Truncation rewrites history in place, so the session's content
    /// forks from every chain it shared: bump the key's generation,
    /// release the old chain and rebuild the survivor prefix under the
    /// new (fully private) hashes — copy-on-divergence. Exclusively
    /// owned nodes are converted in place; shared nodes are copied into
    /// free space (never by evicting others — truncation is a
    /// bookkeeping shrink, not a capacity event).
    pub(super) fn ca_truncate(&mut self, sid: SessionId, new_bytes: u64, new_tokens: u64) {
        let Some(r) = self.shared.sessions.get(&sid) else {
            return;
        };
        if new_bytes >= r.bytes {
            return;
        }
        let now = r.last_access;
        let mut key = r.key;
        key.generation += 1;
        self.shared.keys.insert(sid, key);
        let old = self
            .shared
            .sessions
            .remove(&sid)
            .expect("checked above")
            .chain;
        for &slot in &old {
            let n = self.shared.node_mut(slot);
            n.refs = n.refs.saturating_sub(1);
        }
        self.shared.dedup.divergences += 1;
        self.emit(StoreEvent::BlockDiverged {
            session: sid.0,
            at_block: 0,
            released_blocks: old.len() as u64,
            at: now,
        });

        let desired = key.chain(new_tokens, self.cfg.block_tokens);
        let mut chain = Vec::with_capacity(desired.len());
        let mut covered_tokens = 0u64;
        let mut covered_bytes = 0u64;
        for (k, ck) in desired.iter().enumerate() {
            // The rewritten chunk may already be in the trie — e.g. a
            // session re-registered at generation 0 after an earlier
            // truncate/invalidate cycle rebuilds the same generation-1
            // hashes. Same hash means same content: reference the
            // stored node rather than inserting a duplicate, which
            // would orphan the incumbent's trie entry.
            if let Some(&hit) = self.shared.by_hash.get(&ck.chain_hash) {
                let n = self.shared.node_mut(hit);
                n.refs += 1;
                n.last_access = now;
                n.owner_hint = sid;
                let bytes = n.bytes;
                self.shared.dedup.dedup_blocks += 1;
                self.shared.dedup.bytes_saved += bytes;
                chain.push(hit);
                covered_tokens += ck.tokens;
                covered_bytes += bytes;
                continue;
            }
            let bytes = Self::chunk_bytes(new_bytes, new_tokens, covered_tokens, ck.tokens);
            let old_slot = old.get(k).copied();
            let exclusive = old_slot.is_some_and(|s| {
                let n = self.shared.node(s);
                n.refs == 0 && n.pins == 0
            });
            let slot = if exclusive {
                // Convert in place: shrink-realloc within the node's tier.
                let slot = old_slot.expect("checked above");
                let (tier, old_hash, old_blocks) = {
                    let n = self.shared.node_mut(slot);
                    (n.placement, n.chain_hash, std::mem::take(&mut n.blocks))
                };
                self.shared.by_hash.remove(&old_hash);
                self.pools[tier.0]
                    .free(&old_blocks)
                    .expect("node blocks valid");
                let blocks = self.pools[tier.0]
                    .alloc(bytes)
                    .expect("shrinking realloc always fits");
                let n = self.shared.node_mut(slot);
                n.chain_hash = ck.chain_hash;
                n.tokens = ck.tokens;
                n.bytes = bytes;
                n.blocks = blocks;
                n.refs = 1;
                self.shared.by_hash.insert(ck.chain_hash, slot);
                Some(slot)
            } else {
                // Shared (or pinned) node: copy into free space, first
                // tier that fits, fastest first.
                let tier = (0..self.pools.len())
                    .map(TierId)
                    .find(|t| self.pools[t.0].fits(bytes));
                tier.map(|tier| {
                    let blocks = self.pools[tier.0].alloc(bytes).expect("fits checked");
                    let seq = self.shared.next_seq;
                    self.shared.next_seq += 1;
                    self.shared.insert_node(ChunkNode {
                        chain_hash: ck.chain_hash,
                        tokens: ck.tokens,
                        bytes,
                        placement: tier,
                        blocks,
                        refs: 1,
                        pins: 0,
                        last_access: now,
                        insert_seq: seq,
                        owner_hint: sid,
                    })
                })
            };
            let Some(slot) = slot else {
                break; // keep the prefix that fit
            };
            chain.push(slot);
            covered_tokens += ck.tokens;
            covered_bytes += bytes;
        }
        // Old nodes beyond the survivor prefix that we exclusively owned
        // are dead now; reclaim them eagerly.
        for (k, &slot) in old.iter().enumerate() {
            if chain.get(k) == Some(&slot) {
                continue;
            }
            let n = self.shared.node(slot);
            if n.refs == 0 && n.pins == 0 {
                let node = self.shared.nodes[slot].take().expect("slot live");
                self.shared.by_hash.remove(&node.chain_hash);
                self.shared.free_slots.push(slot);
                self.pools[node.placement.0]
                    .free(&node.blocks)
                    .expect("node blocks valid");
                self.shared.dedup.refcounted_evictions += 1;
                self.emit(StoreEvent::BlockEvicted {
                    blocks: node.blocks.len() as u64,
                    bytes: node.bytes,
                    tier: node.placement,
                    refs: 0,
                    at: now,
                });
            }
        }
        if !chain.is_empty() {
            let seq = self.shared.next_seq;
            self.shared.next_seq += 1;
            self.shared.sessions.insert(
                sid,
                SessionRef {
                    chain,
                    tokens: covered_tokens,
                    bytes: covered_bytes,
                    key,
                    last_access: now,
                    insert_seq: seq,
                },
            );
        }
    }

    pub(super) fn ca_invalidate(&mut self, sid: SessionId) {
        self.ca_unpin(sid);
        if let Some(r) = self.shared.sessions.remove(&sid) {
            for &slot in &r.chain {
                let n = self.shared.node_mut(slot);
                n.refs = n.refs.saturating_sub(1);
            }
            self.stats.drops_invalidated += 1;
        }
    }

    pub(super) fn ca_expire(&mut self, now: Time) -> u64 {
        let Some(ttl) = self.cfg.ttl else {
            return 0;
        };
        let mark = self.trace_mark();
        let dead: Vec<SessionId> = self
            .shared
            .sessions
            .iter()
            .filter(|(sid, r)| {
                !self.shared.pinned.contains_key(sid) && now.saturating_since(r.last_access) > ttl
            })
            .map(|(&sid, _)| sid)
            .collect();
        let n = dead.len() as u64;
        for sid in dead {
            let r = self.shared.sessions.remove(&sid).expect("listed above");
            for &slot in &r.chain {
                let node = self.shared.node_mut(slot);
                node.refs = node.refs.saturating_sub(1);
            }
            self.emit(StoreEvent::Expired {
                session: sid.0,
                at: now,
            });
        }
        self.stats.drops_ttl += n;
        // Reclaim nodes that are both unreferenced and idle past the TTL.
        let stale: Vec<usize> = self
            .shared
            .live_slots()
            .filter(|&s| {
                let node = self.shared.node(s);
                node.refs == 0 && node.pins == 0 && now.saturating_since(node.last_access) > ttl
            })
            .collect();
        for slot in stale {
            let node = self.shared.nodes[slot].take().expect("slot live");
            self.shared.by_hash.remove(&node.chain_hash);
            self.shared.free_slots.push(slot);
            self.pools[node.placement.0]
                .free(&node.blocks)
                .expect("node blocks valid");
            self.shared.dedup.refcounted_evictions += 1;
            self.emit(StoreEvent::BlockEvicted {
                blocks: node.blocks.len() as u64,
                bytes: node.bytes,
                tier: node.placement,
                refs: 0,
                at: now,
            });
        }
        self.emit_occupancy(mark, now);
        n
    }

    /// Slots any session in `queue.head(upto)` will read: stored chains,
    /// plus — for chainless first-turn sessions — the prefix of their
    /// registered key that resolves in the trie. With shared nodes a
    /// block's `owner_hint` names only its *last* accessor, so "is an
    /// imminent session about to read this?" must consult every imminent
    /// session's mapping, not the hint.
    fn ca_queued_slots(&self, queue: &QueueView, upto: usize) -> std::collections::HashSet<usize> {
        let mut slots = std::collections::HashSet::new();
        for sid in queue.head(upto) {
            if let Some(r) = self.shared.sessions.get(&sid) {
                slots.extend(r.chain.iter().copied());
            } else if let Some(key) = self.shared.keys.get(&sid) {
                if key.shared_tokens > 0 {
                    for ck in key.chain(key.shared_tokens, self.cfg.block_tokens) {
                        match self.shared.by_hash.get(&ck.chain_hash) {
                            Some(&slot) => {
                                slots.insert(slot);
                            }
                            None => break,
                        }
                    }
                }
            }
        }
        slots
    }

    // ---- prefetch / reserve -------------------------------------------

    /// Look-ahead prefetch over chains: stages slow-tier blocks of queued
    /// sessions into *free* tier-0 space (block granularity makes partial
    /// staging natural — no demotion cascades are forced on behalf of a
    /// prediction), then restores the tier-0 reserve.
    pub(super) fn ca_prefetch(&mut self, now: Time, queue: &QueueView) -> Vec<Transfer> {
        if !self.policy.wants_prefetch() {
            return Vec::new();
        }
        let mut transfers = Vec::new();
        let mark = self.trace_mark();
        let window = self.prefetch_window();
        let targets: Vec<(usize, SessionId)> = queue
            .head(window)
            .enumerate()
            .filter(|&(_, sid)| {
                !self.shared.pinned.contains_key(&sid)
                    && match self.shared.sessions.get(&sid) {
                        Some(r) => r
                            .chain
                            .iter()
                            .any(|&s| !self.shared.node(s).placement.is_fast()),
                        // First turn: no chain of its own yet, but its
                        // registered content key may match blocks other
                        // sessions stored.
                        None => self
                            .shared
                            .keys
                            .get(&sid)
                            .is_some_and(|k| k.shared_tokens > 0),
                    }
            })
            .collect();
        'targets: for (pos, sid) in targets {
            // Turn-0 targets (no chain of their own) stage into free
            // space only: their matched blocks are shared with other
            // sessions, so forcing demotions on their behalf ping-pongs
            // the very chains those sessions are about to resume.
            let own_chain = self.shared.sessions.contains_key(&sid);
            let chain: Vec<usize> = match self.shared.sessions.get(&sid) {
                Some(r) => r.chain.clone(),
                None => {
                    // Turn-0 look-ahead: walk the trie over the queued
                    // session's *shared* span (those chunk hashes do not
                    // involve its private seed), staging whatever prefix
                    // other sessions already stored — the block-granular
                    // analogue of §3.3.1 for cross-session reuse.
                    let Some(key) = self.shared.keys.get(&sid).copied() else {
                        continue;
                    };
                    let grid = key.chain(key.shared_tokens, self.cfg.block_tokens);
                    let mut slots = Vec::new();
                    for ck in &grid {
                        match self.shared.by_hash.get(&ck.chain_hash) {
                            Some(&slot) => slots.push(slot),
                            None => break,
                        }
                    }
                    slots
                }
            };
            // The working set of the whole prefetch window — every
            // queued target's chain and key grid, not just this one's.
            // Victims must come from *outside* it: queue positions
            // shuffle between passes, so demoting one window target's
            // blocks to stage another's would promote/demote ping-pong
            // the same blocks pass after pass (a shared node's
            // owner_hint names only its last accessor and cannot see
            // this). Mirrors the per-session rule that prefetch victims
            // are strictly out-of-window.
            let mut protected = self.ca_queued_slots(queue, window);
            protected.extend(chain.iter().copied());
            let mut promoted_bytes = 0u64;
            let mut promoted_from = TierId(0);
            // When no victim is demotable the whole pass stops — but only
            // after this target's `promoted` event is emitted: chunks
            // already staged pushed their fast-arriving transfers, and an
            // unheralded completion would leave the trace unpaired.
            let mut stalled = false;
            for slot in chain {
                let (bytes, from, pinned) = {
                    let n = self.shared.node(slot);
                    (n.bytes, n.placement, n.pins > 0)
                };
                if from.is_fast() || pinned {
                    continue;
                }
                // Fetching into the buffer may demote colder blocks (Fig
                // 9: fetching Job 3 pushes Job 4 down) — but only blocks
                // no session queued at or before this target maps to,
                // otherwise promote/demote ping-pong would saturate the
                // slow links.
                if !own_chain && !self.pools[0].fits(bytes) {
                    break;
                }
                while !self.pools[0].fits(bytes) {
                    let victim = self
                        .shared
                        .live_slots()
                        .filter(|&s| {
                            let n = self.shared.node(s);
                            n.placement.is_fast()
                                && n.pins == 0
                                && n.owner_hint != sid
                                && !protected.contains(&s)
                                && queue.position(n.owner_hint).is_none_or(|p| p > pos)
                        })
                        .min_by_key(|&s| {
                            let n = self.shared.node(s);
                            (n.last_access, n.insert_seq)
                        });
                    match victim {
                        Some(v) if self.ca_demote_slot(now, v, sid, queue, &mut transfers) => {}
                        _ => {
                            stalled = true;
                            break;
                        }
                    }
                }
                if stalled {
                    break;
                }
                let new_blocks = self.pools[0].alloc(bytes).expect("fits checked");
                let node = self.shared.node_mut(slot);
                let old_blocks = std::mem::replace(&mut node.blocks, new_blocks);
                node.placement = TierId(0);
                node.last_access = now;
                self.pools[from.0]
                    .free(&old_blocks)
                    .expect("blocks were in the source tier");
                self.stats.promotions += 1;
                self.stats.promotion_bytes += bytes;
                promoted_bytes += bytes;
                promoted_from = promoted_from.max(from);
                Self::push_promotion_hops(&mut transfers, sid, bytes, from);
            }
            if promoted_bytes > 0 {
                self.emit(StoreEvent::Promoted {
                    session: sid.0,
                    bytes: promoted_bytes,
                    kind: FetchKind::Prefetch,
                    from: promoted_from,
                    to: TierId(0),
                    queue_pos: Some(pos),
                    instance: queue.owner(sid),
                    at: now,
                });
            }
            if stalled {
                break 'targets;
            }
        }
        transfers.extend(self.ca_maintain_reserve(now, queue));
        self.emit_occupancy(mark, now);
        transfers
    }

    /// Restores the tier-0 reserve: dead nodes are reclaimed first, then
    /// cold live nodes demote one hop down. Stops — leaving the reserve
    /// short — rather than demote a block an in-window session maps to:
    /// demoting those only to re-stage them next prefetch pass would
    /// churn the slow links (the per-session reserve has the same
    /// refusal).
    pub(super) fn ca_maintain_reserve(&mut self, now: Time, queue: &QueueView) -> Vec<Transfer> {
        let reserve = (self.cfg.tiers[0].capacity as f64 * self.cfg.dram_reserve_fraction) as u64;
        let window = self.eviction_window();
        let needed = self.ca_queued_slots(queue, window);
        let mut transfers = Vec::new();
        while self.pools[0].free_bytes() < reserve {
            if self.ca_free_dead_in(now, TierId(0)) {
                continue;
            }
            let victim = self
                .shared
                .live_slots()
                .filter(|&s| {
                    let n = self.shared.node(s);
                    n.placement == TierId(0) && n.pins == 0
                })
                .min_by_key(|&s| {
                    let n = self.shared.node(s);
                    (n.last_access, n.insert_seq)
                });
            let Some(slot) = victim else {
                break;
            };
            let n = self.shared.node(slot);
            let soon =
                needed.contains(&slot) || queue.position(n.owner_hint).is_some_and(|p| p < window);
            if soon {
                break;
            }
            let acting = SessionId(u64::MAX);
            if !self.ca_demote_slot(now, slot, acting, queue, &mut transfers) {
                break;
            }
        }
        transfers
    }

    // ---- invariants (for tests) ---------------------------------------

    /// Checks the ledger's structural invariants; returns a description
    /// of the first violation. Exposed for the property tests.
    #[doc(hidden)]
    pub fn validate_blocks(&self) -> Result<(), String> {
        let l = &self.shared;
        // by_hash maps exactly the live nodes.
        for (&hash, &slot) in &l.by_hash {
            let Some(node) = l.nodes.get(slot).and_then(|n| n.as_ref()) else {
                return Err(format!("by_hash {hash:#x} points at dead slot {slot}"));
            };
            if node.chain_hash != hash {
                return Err(format!(
                    "by_hash {hash:#x} points at node {:#x}",
                    node.chain_hash
                ));
            }
        }
        let live = l.live_slots().count();
        if l.by_hash.len() != live {
            return Err(format!(
                "{} live nodes but {} hash entries",
                live,
                l.by_hash.len()
            ));
        }
        // Refcount conservation: refs == chains referencing the slot.
        let mut want_refs: HashMap<usize, u64> = HashMap::new();
        for r in l.sessions.values() {
            for &slot in &r.chain {
                *want_refs.entry(slot).or_insert(0) += 1;
            }
        }
        // Pin conservation: pins == pinned-map occurrences.
        let mut want_pins: HashMap<usize, u64> = HashMap::new();
        for slots in l.pinned.values() {
            for &slot in slots {
                *want_pins.entry(slot).or_insert(0) += 1;
            }
        }
        let mut tier_blocks = vec![0usize; self.pools.len()];
        for slot in l.live_slots() {
            let node = l.node(slot);
            let refs = want_refs.get(&slot).copied().unwrap_or(0);
            if node.refs != refs {
                return Err(format!(
                    "node {slot}: refs {} but {} chains reference it",
                    node.refs, refs
                ));
            }
            let pins = want_pins.get(&slot).copied().unwrap_or(0);
            if node.pins != pins {
                return Err(format!(
                    "node {slot}: pins {} but {} consults hold it",
                    node.pins, pins
                ));
            }
            tier_blocks[node.placement.0] += node.blocks.len();
        }
        // Every chain references live nodes only, with consistent sums.
        for (sid, r) in &l.sessions {
            let mut tokens = 0;
            let mut bytes = 0;
            for &slot in &r.chain {
                let Some(node) = l.nodes.get(slot).and_then(|n| n.as_ref()) else {
                    return Err(format!("{sid}: chain references dead slot {slot}"));
                };
                tokens += node.tokens;
                bytes += node.bytes;
            }
            if tokens != r.tokens || bytes != r.bytes {
                return Err(format!(
                    "{sid}: ref claims {}t/{}B, chain sums {}t/{}B",
                    r.tokens, r.bytes, tokens, bytes
                ));
            }
        }
        // Pool accounting: in content-addressed mode the pools hold
        // exactly the nodes (per-session entries and nodes coexist only
        // transiently in tests that mix modes, which we do not allow).
        if self.entries.is_empty() {
            for (i, pool) in self.pools.iter().enumerate() {
                if pool.used_blocks() as usize != tier_blocks[i] {
                    return Err(format!(
                        "tier {i}: pool holds {} blocks, nodes account for {}",
                        pool.used_blocks(),
                        tier_blocks[i]
                    ));
                }
            }
        }
        Ok(())
    }
}
