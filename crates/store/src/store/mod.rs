//! The AttentionStore: tiered KV cache bookkeeping, keyed either by
//! session (one private entry per conversation, the paper's scheme) or
//! by content-addressed block chain (fixed-size chunks shared across
//! sessions with a common token prefix, [`crate::KeyingMode`]).
//!
//! The implementation is split along its seams:
//!
//! - this module: the data types, configuration, statistics ledger and
//!   the store struct itself (construction, tracing, capacity queries,
//!   look-ahead window sizing);
//! - [`placement`]: per-session tier placement — victim selection,
//!   hop-by-hop demotion, eviction, reserve maintenance and entry
//!   lifecycle (truncate / invalidate / expire);
//! - [`fetch`]: the per-session read/write paths — save, demand fetch
//!   and the scheduler-aware look-ahead prefetcher;
//! - [`shared`]: the content-addressed block ledger — chunk chains,
//!   prefix-trie lookup, copy-on-divergence and refcounted eviction.
//!
//! Every public operation dispatches on the configured keying mode at
//! its entry point; the per-session paths are the original code,
//! untouched, so `per_session` mode stays byte-for-byte identical to
//! the store before block keying existed.

mod faults;
mod fetch;
mod placement;
mod shared;
#[cfg(test)]
mod tests;

pub use faults::{
    DegradeReason, FaultStats, FetchOutcome, PrefetchOutcome, PrefixOutcome, SaveOutcome,
};
pub use shared::PrefixMatch;

use std::collections::BTreeMap;

use models::TierStack;
use serde::{Deserialize, Serialize};
use sim::{Dur, Time};

use crate::chain::KeyingMode;
use crate::events::{StoreEvent, StoreEventLog, StoreObserver};
use crate::{BlockPool, Entry, PolicyKind, SessionId, TierId};

/// One adjacent-tier hop produced by a store operation, for the engine to
/// charge on the corresponding [`sim::BandwidthLink`].
///
/// Movements are always between adjacent tiers: a promotion from a deep
/// tier is reported as a chain of hops (`from = to + 1` each), a demotion
/// as a single hop down (`to = from + 1`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Transfer {
    /// The session whose KV moved.
    pub session: SessionId,
    /// Payload size in bytes.
    pub bytes: u64,
    /// Tier the bytes left.
    pub from: TierId,
    /// Adjacent tier the bytes landed in.
    pub to: TierId,
}

impl Transfer {
    /// Whether the hop moves toward the staging tier (a read on the
    /// slower tier's link).
    pub fn is_promotion(&self) -> bool {
        self.to < self.from
    }

    /// Whether the hop moves away from the staging tier (a write on the
    /// slower tier's link).
    pub fn is_demotion(&self) -> bool {
        self.from < self.to
    }

    /// The slower tier of the hop, whose link carries the bytes.
    pub fn slow_tier(&self) -> TierId {
        self.from.max(self.to)
    }
}

/// Result of a session lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Lookup {
    /// KV resident in tier `.0` of the stack (tier 0 = ready for use, a
    /// deeper tier = must be staged up hop by hop first).
    Hit(TierId),
    /// No KV cached for this session.
    Miss,
}

impl Lookup {
    /// The tier the lookup hit, if any.
    pub fn tier(self) -> Option<TierId> {
        match self {
            Lookup::Hit(t) => Some(t),
            Lookup::Miss => None,
        }
    }

    /// Whether the KV was found already staged in tier 0.
    pub fn is_fast_hit(self) -> bool {
        matches!(self, Lookup::Hit(t) if t.is_fast())
    }

    /// Whether the KV was found in a below-staging tier.
    pub fn is_slow_hit(self) -> bool {
        matches!(self, Lookup::Hit(t) if !t.is_fast())
    }
}

/// Store configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StoreConfig {
    /// The storage tier stack, fastest first (§3.3 uses host DRAM over
    /// SSD; deeper stacks add pooled memory and object storage).
    pub tiers: TierStack,
    /// Allocation block size, bytes.
    pub block_bytes: u64,
    /// Eviction policy (and, for scheduler-aware, prefetching).
    #[serde(skip, default = "default_policy")]
    pub policy: PolicyKind,
    /// How saved KV is keyed: per-session private entries (the paper's
    /// scheme and the default) or content-addressed block chains shared
    /// across sessions.
    #[serde(skip, default)]
    pub keying: KeyingMode,
    /// Dedup chunk granularity in tokens under content-addressed
    /// keying: prefixes match in whole chunks of this many tokens.
    /// Distinct from `block_bytes`, the *allocation* granularity — one
    /// chunk typically spans several allocation blocks.
    #[serde(skip, default = "default_block_tokens")]
    pub block_tokens: u64,
    /// Time-to-live since last access; `None` = keep until capacity
    /// pressure (§4.3.6 sets 1 hour for the capacity study).
    pub ttl: Option<Dur>,
    /// Fraction of tier 0 kept free as the fetch buffer (§3.3.1);
    /// background demotion restores it.
    pub dram_reserve_fraction: f64,
    /// Assumed average stored size per session before anything is
    /// cached, bytes — the window-sizing fallback. Once data exists the
    /// windows use the observed mean instead: mean entry bytes under
    /// per-session keying, block size × observed chain length under
    /// block keying.
    pub default_session_bytes: u64,
}

fn default_policy() -> PolicyKind {
    PolicyKind::SchedulerAware
}

fn default_block_tokens() -> u64 {
    128
}

impl StoreConfig {
    /// Capacity of the fast staging tier (tier 0), bytes.
    pub fn dram_bytes(&self) -> u64 {
        self.tiers[0].capacity
    }

    /// Capacity below the staging tier, bytes.
    pub fn disk_bytes(&self) -> u64 {
        self.tiers.slow_capacity()
    }

    /// Resizes the fast staging tier (tier 0).
    pub fn set_dram_bytes(&mut self, bytes: u64) {
        self.tiers[0].capacity = bytes;
    }

    /// Resizes tier 1 (the paper's SSD slot).
    ///
    /// # Panics
    ///
    /// Panics when the stack has no tier below the staging tier.
    pub fn set_disk_bytes(&mut self, bytes: u64) {
        assert!(self.tiers.len() > 1, "stack has no tier below tier 0");
        self.tiers[1].capacity = bytes;
    }
}

impl Default for StoreConfig {
    /// The paper's testbed store: 128 GB DRAM over 10 TB SSD, 16 MiB
    /// blocks, scheduler-aware policy, no TTL, 10% DRAM reserve.
    fn default() -> Self {
        StoreConfig {
            tiers: TierStack::paper_two_tier(),
            block_bytes: 16 * 1024 * 1024,
            policy: PolicyKind::SchedulerAware,
            keying: KeyingMode::default(),
            block_tokens: default_block_tokens(),
            ttl: None,
            dram_reserve_fraction: 0.10,
            default_session_bytes: 1_000_000_000,
        }
    }
}

/// Cumulative store statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct StoreStats {
    /// Sessions saved or updated.
    pub saves: u64,
    /// Bytes written into the store by saves (total sizes).
    pub save_bytes: u64,
    /// Downward adjacent-tier demotion hops.
    pub demotions: u64,
    /// Bytes demoted.
    pub demotion_bytes: u64,
    /// Promotions up to the staging tier (prefetch + demand).
    pub promotions: u64,
    /// Bytes promoted.
    pub promotion_bytes: u64,
    /// Entries dropped because capacity ran out everywhere.
    pub drops_capacity: u64,
    /// Entries dropped by TTL expiry.
    pub drops_ttl: u64,
    /// Entries dropped by explicit invalidation.
    pub drops_invalidated: u64,
    /// Saves rejected because the session could not fit at all.
    pub save_rejected: u64,
    /// Saves that spilled directly below tier 0 because it could not make
    /// room (e.g. everything resident was pinned).
    pub spills_to_disk: u64,
}

/// The hierarchical KV caching system (§3.3).
///
/// Pure bookkeeping over a stack of [`BlockPool`] tiers (one per
/// [`models::TierSpec`]); every mutation returns the adjacent-tier
/// [`Transfer`] hops the serving engine must charge on simulated links.
/// One store may back many serving instances: queue views built with
/// [`crate::QueueView::with_owners`] let it attribute tier movements to
/// the instance whose queue motivated them.
///
/// # Examples
///
/// ```
/// use sim::Time;
/// use store::{AttentionStore, Lookup, QueueView, SessionId, StoreConfig, TierId};
///
/// let mut store = AttentionStore::new(StoreConfig::default());
/// let queue = QueueView::empty();
/// // A finished conversation turn saves its session's KV cache.
/// let (_, saved) = store.save(SessionId(7), 1_500_000_000, 1_900, Time::ZERO, &queue);
/// assert!(saved);
/// // The session resumes: its KV is found in the fast tier and pinned.
/// let (found, _) = store.load_for_use(SessionId(7), Time::from_millis(60_000), &queue);
/// assert_eq!(found, Lookup::Hit(TierId(0)));
/// ```
pub struct AttentionStore {
    cfg: StoreConfig,
    policy: Box<dyn crate::EvictionPolicy>,
    /// One block pool per configured tier, fastest first.
    pools: Vec<BlockPool>,
    entries: BTreeMap<SessionId, Entry>,
    /// The content-addressed block ledger (empty and inert under
    /// per-session keying).
    shared: shared::BlockLedger,
    next_seq: u64,
    stats: StoreStats,
    /// Drainable event buffer; `None` = tracing off (zero cost).
    trace: Option<StoreEventLog>,
    /// Installed fault plan; `None` = fault-free (the `try_*` APIs then
    /// delegate verbatim to the infallible paths).
    faults: Option<sim::FaultPlan>,
    /// Fault-path statistics (separate from [`StoreStats`], which is
    /// embedded in the golden-pinned run reports).
    fault_stats: faults::FaultStats,
    /// Monotone counter keying the deterministic fault dice, so repeated
    /// rolls for one session stay independent.
    fault_roll_seq: u64,
}

impl AttentionStore {
    /// Creates a store from a configuration.
    pub fn new(cfg: StoreConfig) -> Self {
        let policy = cfg.policy.build();
        let pools = cfg
            .tiers
            .iter()
            .map(|t| BlockPool::new(t.name, t.capacity, cfg.block_bytes))
            .collect();
        AttentionStore {
            cfg,
            policy,
            pools,
            entries: BTreeMap::new(),
            shared: shared::BlockLedger::default(),
            next_seq: 0,
            stats: StoreStats::default(),
            trace: None,
            faults: None,
            fault_stats: faults::FaultStats::default(),
            fault_roll_seq: 0,
        }
    }

    /// Enables or disables event tracing. While enabled, every placement
    /// decision is buffered as a [`StoreEvent`] until
    /// [`drain_events`](AttentionStore::drain_events) takes it. Enabling
    /// emits one [`StoreEvent::TierConfig`] per tier first, so trace
    /// consumers can resolve tier indices to names. Tracing never changes
    /// store behavior.
    pub fn set_tracing(&mut self, on: bool) {
        match (on, self.trace.is_some()) {
            (true, false) => {
                let mut log = StoreEventLog::new();
                for (i, spec) in self.cfg.tiers.iter().enumerate() {
                    log.on_store_event(StoreEvent::TierConfig {
                        tier: TierId(i),
                        name: spec.name,
                        capacity: spec.capacity,
                        at: Time::ZERO,
                    });
                }
                if self.cfg.keying == KeyingMode::ContentAddressed {
                    log.on_store_event(StoreEvent::BlockConfig {
                        block_tokens: self.cfg.block_tokens,
                        at: Time::ZERO,
                    });
                }
                self.trace = Some(log);
            }
            (false, true) => self.trace = None,
            _ => {}
        }
    }

    /// Takes the buffered [`StoreEvent`]s (empty when tracing is off).
    pub fn drain_events(&mut self) -> Vec<StoreEvent> {
        self.trace
            .as_mut()
            .map(StoreEventLog::drain)
            .unwrap_or_default()
    }

    /// Reports `ev` to the trace buffer when tracing is enabled.
    fn emit(&mut self, ev: StoreEvent) {
        if let Some(t) = &mut self.trace {
            t.on_store_event(ev);
        }
    }

    /// Number of buffered trace events (0 when tracing is off).
    fn trace_mark(&self) -> usize {
        self.trace.as_ref().map_or(0, |t| t.events().len())
    }

    /// Emits per-tier occupancy gauge samples when events landed since
    /// `mark`, so occupancy trails every traced batch of placement
    /// changes without flooding no-op calls.
    fn emit_occupancy(&mut self, mark: usize, now: Time) {
        if self.trace_mark() > mark {
            for i in 0..self.pools.len() {
                let ev = StoreEvent::Occupancy {
                    tier: TierId(i),
                    used_bytes: self.tier_used_bytes(TierId(i)),
                    at: now,
                };
                self.emit(ev);
            }
        }
    }

    /// Returns the configuration.
    pub fn config(&self) -> &StoreConfig {
        &self.cfg
    }

    /// Returns cumulative statistics.
    pub fn stats(&self) -> &StoreStats {
        &self.stats
    }

    /// Returns where `sid`'s KV currently lives (under block keying,
    /// the *deepest* tier its chain touches — the worst-case staging
    /// distance).
    pub fn lookup(&self, sid: SessionId) -> Lookup {
        if self.cfg.keying == KeyingMode::ContentAddressed {
            return self.ca_lookup(sid);
        }
        match self.entries.get(&sid).map(|e| e.placement) {
            Some(t) => Lookup::Hit(t),
            None => Lookup::Miss,
        }
    }

    /// Returns the entry for `sid`, if cached (per-session keying only;
    /// block chains have no [`Entry`] — use
    /// [`cached_tokens`](AttentionStore::cached_tokens)).
    pub fn entry(&self, sid: SessionId) -> Option<&Entry> {
        self.entries.get(&sid)
    }

    /// Tokens of `sid`'s stored KV, in either keying mode.
    pub fn cached_tokens(&self, sid: SessionId) -> Option<u64> {
        if self.cfg.keying == KeyingMode::ContentAddressed {
            return self.ca_tokens(sid);
        }
        self.entries.get(&sid).map(|e| e.tokens)
    }

    /// Returns the number of cached sessions.
    pub fn len(&self) -> usize {
        if self.cfg.keying == KeyingMode::ContentAddressed {
            return self.ca_len();
        }
        self.entries.len()
    }

    /// Returns `true` when no sessions are cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of configured tiers.
    pub fn n_tiers(&self) -> usize {
        self.pools.len()
    }

    /// The slowest (bottom) tier, where capacity evictions leave the
    /// system.
    pub fn bottom_tier(&self) -> TierId {
        TierId(self.pools.len() - 1)
    }

    /// Returns bytes resident in `tier` (whole blocks).
    pub fn tier_used_bytes(&self, tier: TierId) -> u64 {
        let pool = &self.pools[tier.0];
        pool.used_blocks() as u64 * pool.block_bytes()
    }

    /// Returns bytes resident in the fast staging tier (whole blocks).
    pub fn dram_used_bytes(&self) -> u64 {
        self.tier_used_bytes(TierId(0))
    }

    /// Returns bytes resident below the staging tier (whole blocks).
    pub fn disk_used_bytes(&self) -> u64 {
        (1..self.pools.len())
            .map(|i| self.tier_used_bytes(TierId(i)))
            .sum()
    }

    /// Average stored bytes per session, `S_kv`, used to size the
    /// look-ahead windows; falls back to the configured default when
    /// empty. Under per-session keying this is the mean entry size;
    /// under block keying it is block size × observed chain length
    /// (the mean bytes of the stored chains), so the windows track the
    /// deduplicated footprint rather than a fixed guess.
    pub fn avg_session_bytes(&self) -> u64 {
        if self.cfg.keying == KeyingMode::ContentAddressed {
            return self.ca_avg_session_bytes();
        }
        if self.entries.is_empty() {
            return self.cfg.default_session_bytes.max(1);
        }
        let total: u64 = self.entries.values().map(|e| e.bytes).sum();
        (total / self.entries.len() as u64).max(1)
    }

    /// Look-ahead prefetch window length, `L_pw = C_mem / S_kv` (§3.3.1).
    pub fn prefetch_window(&self) -> usize {
        (self.cfg.tiers[0].capacity / self.avg_session_bytes()) as usize
    }

    /// Look-ahead eviction window length, generalized from §3.3.2's
    /// `L_ev = (C_mem + C_disk) / S_kv` to the stack's total capacity.
    pub fn eviction_window(&self) -> usize {
        (self.cfg.tiers.total_capacity() / self.avg_session_bytes()) as usize
    }
}
