//! The AttentionStore: tiered, session-granularity KV cache bookkeeping.
//!
//! The implementation is split along its seams:
//!
//! - this module: the data types, configuration, statistics ledger and
//!   the store struct itself (construction, tracing, capacity queries,
//!   look-ahead window sizing);
//! - [`placement`]: tier placement — victim selection, demotion,
//!   eviction, reserve maintenance and entry lifecycle (truncate /
//!   invalidate / expire);
//! - [`fetch`]: the read/write paths — save, demand fetch and the
//!   scheduler-aware look-ahead prefetcher.

mod faults;
mod fetch;
mod placement;
#[cfg(test)]
mod tests;

pub use faults::{DegradeReason, FaultStats, FetchOutcome, PrefetchOutcome, SaveOutcome};

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};
use sim::{Dur, Time};

use crate::events::{StoreEvent, StoreEventLog, StoreObserver};
use crate::{BlockPool, Entry, Placement, PolicyKind, SessionId};

/// Direction of a tier-to-tier movement the engine must charge on a link.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransferDir {
    /// Promotion: SSD → host DRAM (prefetch or demand fetch).
    DiskToDram,
    /// Demotion: host DRAM → SSD (eviction).
    DramToDisk,
}

/// One tier movement produced by a store operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Transfer {
    /// The session whose KV moved.
    pub session: SessionId,
    /// Payload size in bytes.
    pub bytes: u64,
    /// Movement direction.
    pub dir: TransferDir,
}

/// Result of a session lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Lookup {
    /// KV resident in host DRAM: one PCIe hop from HBM.
    Dram,
    /// KV resident on SSD: must stage through DRAM first.
    Disk,
    /// No KV cached for this session.
    Miss,
}

/// Store configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StoreConfig {
    /// Host DRAM capacity for KV caching, bytes.
    pub dram_bytes: u64,
    /// SSD capacity for KV caching, bytes.
    pub disk_bytes: u64,
    /// Allocation block size, bytes.
    pub block_bytes: u64,
    /// Eviction policy (and, for scheduler-aware, prefetching).
    #[serde(skip, default = "default_policy")]
    pub policy: PolicyKind,
    /// Time-to-live since last access; `None` = keep until capacity
    /// pressure (§4.3.6 sets 1 hour for the capacity study).
    pub ttl: Option<Dur>,
    /// Fraction of DRAM kept free as the fetch buffer (§3.3.1); background
    /// demotion restores it.
    pub dram_reserve_fraction: f64,
    /// Assumed average session KV size before any entry exists, bytes
    /// (window sizing fallback).
    pub default_session_bytes: u64,
}

fn default_policy() -> PolicyKind {
    PolicyKind::SchedulerAware
}

impl Default for StoreConfig {
    /// The paper's testbed store: 128 GB DRAM, 10 TB SSD, 16 MiB blocks,
    /// scheduler-aware policy, no TTL, 10% DRAM reserve.
    fn default() -> Self {
        StoreConfig {
            dram_bytes: 128_000_000_000,
            disk_bytes: 10_000_000_000_000,
            block_bytes: 16 * 1024 * 1024,
            policy: PolicyKind::SchedulerAware,
            ttl: None,
            dram_reserve_fraction: 0.10,
            default_session_bytes: 1_000_000_000,
        }
    }
}

/// Cumulative store statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct StoreStats {
    /// Sessions saved or updated.
    pub saves: u64,
    /// Bytes written into the store by saves (total sizes).
    pub save_bytes: u64,
    /// DRAM → disk demotions.
    pub demotions: u64,
    /// Bytes demoted.
    pub demotion_bytes: u64,
    /// Disk → DRAM promotions (prefetch + demand).
    pub promotions: u64,
    /// Bytes promoted.
    pub promotion_bytes: u64,
    /// Entries dropped because capacity ran out everywhere.
    pub drops_capacity: u64,
    /// Entries dropped by TTL expiry.
    pub drops_ttl: u64,
    /// Entries dropped by explicit invalidation.
    pub drops_invalidated: u64,
    /// Saves rejected because the session could not fit at all.
    pub save_rejected: u64,
    /// Saves that spilled directly to disk because DRAM could not make
    /// room (e.g. everything resident was pinned).
    pub spills_to_disk: u64,
}

/// The hierarchical KV caching system (§3.3).
///
/// Pure bookkeeping over two [`BlockPool`] tiers; every mutation returns
/// the [`Transfer`]s the serving engine must charge on simulated links.
/// One store may back many serving instances: queue views built with
/// [`crate::QueueView::with_owners`] let it attribute tier movements to
/// the instance whose queue motivated them.
///
/// # Examples
///
/// ```
/// use sim::Time;
/// use store::{AttentionStore, Lookup, QueueView, SessionId, StoreConfig};
///
/// let mut store = AttentionStore::new(StoreConfig::default());
/// let queue = QueueView::empty();
/// // A finished conversation turn saves its session's KV cache.
/// let (_, saved) = store.save(SessionId(7), 1_500_000_000, 1_900, Time::ZERO, &queue);
/// assert!(saved);
/// // The session resumes: its KV is found in the fast tier and pinned.
/// let (found, _) = store.load_for_use(SessionId(7), Time::from_millis(60_000), &queue);
/// assert_eq!(found, Lookup::Dram);
/// ```
pub struct AttentionStore {
    cfg: StoreConfig,
    policy: Box<dyn crate::EvictionPolicy>,
    dram: BlockPool,
    disk: BlockPool,
    entries: BTreeMap<SessionId, Entry>,
    next_seq: u64,
    stats: StoreStats,
    /// Drainable event buffer; `None` = tracing off (zero cost).
    trace: Option<StoreEventLog>,
    /// Installed fault plan; `None` = fault-free (the `try_*` APIs then
    /// delegate verbatim to the infallible paths).
    faults: Option<sim::FaultPlan>,
    /// Fault-path statistics (separate from [`StoreStats`], which is
    /// embedded in the golden-pinned run reports).
    fault_stats: faults::FaultStats,
    /// Monotone counter keying the deterministic fault dice, so repeated
    /// rolls for one session stay independent.
    fault_roll_seq: u64,
}

impl AttentionStore {
    /// Creates a store from a configuration.
    pub fn new(cfg: StoreConfig) -> Self {
        let policy = cfg.policy.build();
        let dram = BlockPool::new("dram", cfg.dram_bytes, cfg.block_bytes);
        let disk = BlockPool::new("disk", cfg.disk_bytes, cfg.block_bytes);
        AttentionStore {
            cfg,
            policy,
            dram,
            disk,
            entries: BTreeMap::new(),
            next_seq: 0,
            stats: StoreStats::default(),
            trace: None,
            faults: None,
            fault_stats: faults::FaultStats::default(),
            fault_roll_seq: 0,
        }
    }

    /// Enables or disables event tracing. While enabled, every placement
    /// decision is buffered as a [`StoreEvent`] until
    /// [`drain_events`](AttentionStore::drain_events) takes it. Tracing
    /// never changes store behavior.
    pub fn set_tracing(&mut self, on: bool) {
        match (on, self.trace.is_some()) {
            (true, false) => self.trace = Some(StoreEventLog::new()),
            (false, true) => self.trace = None,
            _ => {}
        }
    }

    /// Takes the buffered [`StoreEvent`]s (empty when tracing is off).
    pub fn drain_events(&mut self) -> Vec<StoreEvent> {
        self.trace
            .as_mut()
            .map(StoreEventLog::drain)
            .unwrap_or_default()
    }

    /// Reports `ev` to the trace buffer when tracing is enabled.
    fn emit(&mut self, ev: StoreEvent) {
        if let Some(t) = &mut self.trace {
            t.on_store_event(ev);
        }
    }

    /// Number of buffered trace events (0 when tracing is off).
    fn trace_mark(&self) -> usize {
        self.trace.as_ref().map_or(0, |t| t.events().len())
    }

    /// Emits an occupancy gauge sample when events landed since `mark`,
    /// so occupancy trails every traced batch of placement changes
    /// without flooding no-op calls.
    fn emit_occupancy(&mut self, mark: usize, now: Time) {
        if self.trace_mark() > mark {
            let ev = StoreEvent::Occupancy {
                dram_bytes: self.dram_used_bytes(),
                disk_bytes: self.disk_used_bytes(),
                at: now,
            };
            self.emit(ev);
        }
    }

    /// Returns the configuration.
    pub fn config(&self) -> &StoreConfig {
        &self.cfg
    }

    /// Returns cumulative statistics.
    pub fn stats(&self) -> &StoreStats {
        &self.stats
    }

    /// Returns where `sid`'s KV currently lives.
    pub fn lookup(&self, sid: SessionId) -> Lookup {
        match self.entries.get(&sid).map(|e| e.placement) {
            Some(Placement::Dram) => Lookup::Dram,
            Some(Placement::Disk) => Lookup::Disk,
            None => Lookup::Miss,
        }
    }

    /// Returns the entry for `sid`, if cached.
    pub fn entry(&self, sid: SessionId) -> Option<&Entry> {
        self.entries.get(&sid)
    }

    /// Returns the number of cached sessions.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` when no sessions are cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Returns bytes resident in DRAM (whole blocks).
    pub fn dram_used_bytes(&self) -> u64 {
        self.dram.used_blocks() as u64 * self.dram.block_bytes()
    }

    /// Returns bytes resident on disk (whole blocks).
    pub fn disk_used_bytes(&self) -> u64 {
        self.disk.used_blocks() as u64 * self.disk.block_bytes()
    }

    /// Average session KV size, `S_kv`, used to size the look-ahead
    /// windows; falls back to the configured default when empty.
    pub fn avg_session_bytes(&self) -> u64 {
        if self.entries.is_empty() {
            return self.cfg.default_session_bytes.max(1);
        }
        let total: u64 = self.entries.values().map(|e| e.bytes).sum();
        (total / self.entries.len() as u64).max(1)
    }

    /// Look-ahead prefetch window length, `L_pw = C_mem / S_kv` (§3.3.1).
    pub fn prefetch_window(&self) -> usize {
        (self.cfg.dram_bytes / self.avg_session_bytes()) as usize
    }

    /// Look-ahead eviction window length,
    /// `L_ev = (C_mem + C_disk) / S_kv` (§3.3.2).
    pub fn eviction_window(&self) -> usize {
        ((self.cfg.dram_bytes + self.cfg.disk_bytes) / self.avg_session_bytes()) as usize
    }
}
