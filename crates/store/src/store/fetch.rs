//! The read/write paths: save, demand fetch (with pinning) and the
//! scheduler-aware look-ahead prefetcher (§3.3.1).

use sim::Time;

use crate::events::{FetchKind, StoreEvent, Tier};
use crate::{Entry, Placement, QueueView, SessionId};

use super::{AttentionStore, Lookup, Transfer, TransferDir};

impl AttentionStore {
    /// Saves (or updates) `sid`'s KV cache: `total_bytes` for
    /// `total_tokens`, landing in DRAM. Returns the demotion transfers
    /// made to fit it and whether the save succeeded.
    ///
    /// Updating an existing entry reallocates it at the new size; an entry
    /// previously demoted to disk is re-homed in DRAM (the fresh copy just
    /// came from HBM, so no disk read is charged).
    pub fn save(
        &mut self,
        sid: SessionId,
        total_bytes: u64,
        total_tokens: u64,
        now: Time,
        queue: &QueueView,
    ) -> (Vec<Transfer>, bool) {
        let mut transfers = Vec::new();
        let mark = self.trace_mark();
        // Free the stale copy first; the engine holds the bytes in HBM.
        self.drop_entry(sid);
        // Prefer DRAM; when it cannot make room (e.g. everything resident
        // is pinned by the running batch), spill straight to disk — the
        // write stream targets whichever tier has space.
        let placement = if self.make_dram_room(now, total_bytes, queue, None, &mut transfers) {
            Placement::Dram
        } else {
            if self.disk.blocks_for(total_bytes) > self.disk.n_blocks() {
                self.stats.save_rejected += 1;
                self.emit(StoreEvent::SaveRejected {
                    session: sid.0,
                    bytes: total_bytes,
                    at: now,
                });
                self.emit_occupancy(mark, now);
                return (transfers, false);
            }
            while !self.disk.fits(total_bytes) {
                if !self.evict_from_disk(now, queue, None) {
                    self.stats.save_rejected += 1;
                    self.emit(StoreEvent::SaveRejected {
                        session: sid.0,
                        bytes: total_bytes,
                        at: now,
                    });
                    self.emit_occupancy(mark, now);
                    return (transfers, false);
                }
            }
            self.stats.spills_to_disk += 1;
            // The write stream lands on the slow tier: report it so the
            // engine charges the disk-write link.
            transfers.push(Transfer {
                session: sid,
                bytes: total_bytes,
                dir: TransferDir::DramToDisk,
            });
            Placement::Disk
        };
        let pool = match placement {
            Placement::Dram => &mut self.dram,
            Placement::Disk => &mut self.disk,
        };
        let blocks = pool.alloc(total_bytes).expect("room made above");
        let seq = self.next_seq;
        self.next_seq += 1;
        let checksum = self.stamp_checksum(sid, total_bytes, total_tokens);
        self.entries.insert(
            sid,
            Entry {
                bytes: total_bytes,
                tokens: total_tokens,
                placement,
                blocks,
                last_access: now,
                insert_seq: seq,
                pinned: false,
                checksum,
            },
        );
        self.stats.saves += 1;
        self.stats.save_bytes += total_bytes;
        self.emit(StoreEvent::Saved {
            session: sid.0,
            bytes: total_bytes,
            tier: match placement {
                Placement::Dram => Tier::Dram,
                Placement::Disk => Tier::Disk,
            },
            at: now,
        });
        self.emit_occupancy(mark, now);
        (transfers, true)
    }

    /// Brings `sid`'s KV into DRAM for use and pins it.
    ///
    /// Returns where the KV was found plus any transfers (the demand
    /// promotion and the demotions that made room). Returns
    /// `(Lookup::Miss, vec![])` when the session has no cached KV.
    pub fn load_for_use(
        &mut self,
        sid: SessionId,
        now: Time,
        queue: &QueueView,
    ) -> (Lookup, Vec<Transfer>) {
        let found = self.lookup(sid);
        let mark = self.trace_mark();
        match found {
            Lookup::Miss => self.emit(StoreEvent::FetchMiss {
                session: sid.0,
                at: now,
            }),
            Lookup::Dram | Lookup::Disk => {
                let ev = StoreEvent::FetchHit {
                    session: sid.0,
                    tier: match found {
                        Lookup::Dram => Tier::Dram,
                        _ => Tier::Disk,
                    },
                    bytes: self.entries[&sid].bytes,
                    at: now,
                };
                self.emit(ev);
            }
        }
        let mut transfers = Vec::new();
        match found {
            Lookup::Miss => {}
            Lookup::Dram => {
                let e = self.entries.get_mut(&sid).expect("looked up");
                e.last_access = now;
                e.pinned = true;
            }
            Lookup::Disk => {
                let bytes = self.entries[&sid].bytes;
                if self.make_dram_room(now, bytes, queue, Some(sid), &mut transfers) {
                    let new_blocks = self.dram.alloc(bytes).expect("room made");
                    let e = self.entries.get_mut(&sid).expect("looked up");
                    let old = std::mem::replace(&mut e.blocks, new_blocks);
                    e.placement = Placement::Dram;
                    e.last_access = now;
                    e.pinned = true;
                    self.disk.free(&old).expect("blocks were on disk");
                    self.stats.promotions += 1;
                    self.stats.promotion_bytes += bytes;
                    self.emit(StoreEvent::Promoted {
                        session: sid.0,
                        bytes,
                        kind: FetchKind::Demand,
                        queue_pos: queue.position(sid),
                        instance: queue.owner(sid),
                        at: now,
                    });
                    transfers.push(Transfer {
                        session: sid,
                        bytes,
                        dir: TransferDir::DiskToDram,
                    });
                } else {
                    // DRAM cannot stage it (pathological sizing): serve
                    // straight from disk; pin in place.
                    let e = self.entries.get_mut(&sid).expect("looked up");
                    e.last_access = now;
                    e.pinned = true;
                }
            }
        }
        self.emit_occupancy(mark, now);
        (found, transfers)
    }

    /// Unpins `sid` after the engine finished using (and re-saving) it.
    ///
    /// Idempotent and panic-free regardless of caller ordering: unpinning
    /// a session that was never pinned, was already unpinned, or whose
    /// entry has since been evicted/invalidated (e.g. crash recovery
    /// releasing pins for jobs that never reached their save) is a no-op.
    pub fn unpin(&mut self, sid: SessionId) {
        if let Some(e) = self.entries.get_mut(&sid) {
            e.pinned = false;
        }
    }

    /// Runs the look-ahead prefetcher (§3.3.1): promotes disk-resident KV
    /// of queued sessions within `L_pw` into free DRAM, then restores the
    /// DRAM reserve by demoting cold entries.
    ///
    /// No-op for history-only policies (LRU/FIFO cannot see the queue).
    pub fn prefetch(&mut self, now: Time, queue: &QueueView) -> Vec<Transfer> {
        if !self.policy.wants_prefetch() {
            return Vec::new();
        }
        let mut transfers = Vec::new();
        let mark = self.trace_mark();
        let window = self.prefetch_window();
        let targets: Vec<(usize, SessionId)> = queue
            .head(window)
            .enumerate()
            .filter(|&(_, sid)| {
                self.entries
                    .get(&sid)
                    .is_some_and(|e| e.placement == Placement::Disk && !e.pinned)
            })
            .collect();
        'targets: for (pos, sid) in targets {
            // Re-validate: an earlier iteration (or its evictions) may
            // have promoted, demoted or dropped this session already —
            // e.g. when the same session appears twice in the queue.
            let still_disk = self
                .entries
                .get(&sid)
                .is_some_and(|e| e.placement == Placement::Disk && !e.pinned);
            if !still_disk {
                continue;
            }
            let bytes = self.entries[&sid].bytes;
            // Fetching into the buffer may demote cold entries (Fig 9:
            // fetching Job 3 pushes Job 4 down) — but only entries whose
            // next use is strictly further in the future than this
            // target's, otherwise promote/demote ping-pong would saturate
            // the disk.
            while !self.dram.fits(bytes) {
                let Some(victim) = self.choose_dram_victim(queue, Some(sid)) else {
                    break 'targets;
                };
                if queue.position(victim).is_some_and(|vp| vp <= pos) {
                    break 'targets;
                }
                if let Some(t) = self.demote_session(now, victim, queue, Some(sid)) {
                    transfers.push(t);
                }
            }
            let new_blocks = self.dram.alloc(bytes).expect("fit ensured above");
            let e = self.entries.get_mut(&sid).expect("target exists");
            let old = std::mem::replace(&mut e.blocks, new_blocks);
            e.placement = Placement::Dram;
            e.last_access = now;
            self.disk.free(&old).expect("blocks were on disk");
            self.stats.promotions += 1;
            self.stats.promotion_bytes += bytes;
            self.emit(StoreEvent::Promoted {
                session: sid.0,
                bytes,
                kind: FetchKind::Prefetch,
                queue_pos: Some(pos),
                instance: queue.owner(sid),
                at: now,
            });
            transfers.push(Transfer {
                session: sid,
                bytes,
                dir: TransferDir::DiskToDram,
            });
        }
        transfers.extend(self.maintain_reserve(now, queue));
        self.emit_occupancy(mark, now);
        transfers
    }
}
