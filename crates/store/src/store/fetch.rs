//! The read/write paths: save, demand fetch (with pinning) and the
//! scheduler-aware look-ahead prefetcher (§3.3.1).

use sim::Time;

use crate::events::{FetchKind, StoreEvent};
use crate::{Entry, QueueView, SessionId, TierId};

use super::{AttentionStore, Lookup, Transfer};

impl AttentionStore {
    /// Pushes the chain of adjacent-tier hops that stage `sid`'s bytes
    /// from `from` up to tier 0: `(from → from-1), ..., (1 → 0)`.
    pub(super) fn push_promotion_hops(
        out: &mut Vec<Transfer>,
        sid: SessionId,
        bytes: u64,
        from: TierId,
    ) {
        for hop in (1..=from.0).rev() {
            out.push(Transfer {
                session: sid,
                bytes,
                from: TierId(hop),
                to: TierId(hop - 1),
            });
        }
    }

    /// Saves (or updates) `sid`'s KV cache: `total_bytes` for
    /// `total_tokens`, landing in tier 0. Returns the demotion transfers
    /// made to fit it and whether the save succeeded.
    ///
    /// Updating an existing entry reallocates it at the new size; an
    /// entry previously demoted below tier 0 is re-homed in tier 0 (the
    /// fresh copy just came from HBM, so no slow-tier read is charged).
    pub fn save(
        &mut self,
        sid: SessionId,
        total_bytes: u64,
        total_tokens: u64,
        now: Time,
        queue: &QueueView,
    ) -> (Vec<Transfer>, bool) {
        sim::scope!("store.save");
        if self.cfg.keying == crate::KeyingMode::ContentAddressed {
            return self.ca_save(sid, total_bytes, total_tokens, now, queue);
        }
        let mut transfers = Vec::new();
        let mark = self.trace_mark();
        // Free the stale copy first; the engine holds the bytes in HBM.
        self.drop_entry(sid);
        // Prefer tier 0; when it cannot make room (e.g. everything
        // resident is pinned by the running batch), spill down the stack
        // to the first tier with space — the write stream targets
        // whichever tier can take it.
        let placement =
            if self.make_room_in(now, TierId(0), total_bytes, queue, None, &mut transfers) {
                TierId(0)
            } else {
                let Some(landing) = self.spill_tier(now, total_bytes, queue, &mut transfers) else {
                    self.stats.save_rejected += 1;
                    self.emit(StoreEvent::SaveRejected {
                        session: sid.0,
                        bytes: total_bytes,
                        at: now,
                    });
                    self.emit_occupancy(mark, now);
                    return (transfers, false);
                };
                self.stats.spills_to_disk += 1;
                // The write stream lands hop by hop on the slow tier: report
                // the chain so the engine charges each boundary's write link.
                for hop in 0..landing.0 {
                    transfers.push(Transfer {
                        session: sid,
                        bytes: total_bytes,
                        from: TierId(hop),
                        to: TierId(hop + 1),
                    });
                }
                landing
            };
        let blocks = self.pools[placement.0]
            .alloc(total_bytes)
            .expect("room made above");
        let seq = self.next_seq;
        self.next_seq += 1;
        let checksum = self.stamp_checksum(sid, total_bytes, total_tokens);
        self.entries.insert(
            sid,
            Entry {
                bytes: total_bytes,
                tokens: total_tokens,
                placement,
                blocks,
                last_access: now,
                insert_seq: seq,
                pinned: false,
                checksum,
            },
        );
        self.stats.saves += 1;
        self.stats.save_bytes += total_bytes;
        self.emit(StoreEvent::Saved {
            session: sid.0,
            bytes: total_bytes,
            tier: placement,
            at: now,
        });
        self.emit_occupancy(mark, now);
        (transfers, true)
    }

    /// Finds the first tier below 0 that can hold `bytes`, evicting or
    /// pushing entries down as needed. Returns `None` when no tier fits.
    fn spill_tier(
        &mut self,
        now: Time,
        bytes: u64,
        queue: &QueueView,
        out: &mut Vec<Transfer>,
    ) -> Option<TierId> {
        for t in 1..self.pools.len() {
            let tier = TierId(t);
            let pool = &self.pools[t];
            if pool.blocks_for(bytes) > pool.n_blocks() {
                continue;
            }
            let mut fitted = true;
            while !self.pools[t].fits(bytes) {
                if !self.push_down_from(now, tier, queue, None, out) {
                    fitted = false;
                    break;
                }
            }
            if fitted {
                return Some(tier);
            }
        }
        None
    }

    /// Brings `sid`'s KV into tier 0 for use and pins it.
    ///
    /// Returns where the KV was found plus any transfers (the demand
    /// promotion hops and the demotions that made room). Returns
    /// `(Lookup::Miss, vec![])` when the session has no cached KV.
    pub fn load_for_use(
        &mut self,
        sid: SessionId,
        now: Time,
        queue: &QueueView,
    ) -> (Lookup, Vec<Transfer>) {
        sim::scope!("store.fetch");
        if self.cfg.keying == crate::KeyingMode::ContentAddressed {
            return self.ca_load_for_use(sid, now, queue);
        }
        let found = self.lookup(sid);
        let mark = self.trace_mark();
        match found {
            Lookup::Miss => self.emit(StoreEvent::FetchMiss {
                session: sid.0,
                at: now,
            }),
            Lookup::Hit(tier) => {
                let ev = StoreEvent::FetchHit {
                    session: sid.0,
                    tier,
                    bytes: self.entries[&sid].bytes,
                    at: now,
                };
                self.emit(ev);
            }
        }
        let mut transfers = Vec::new();
        match found {
            Lookup::Miss => {}
            Lookup::Hit(tier) if tier.is_fast() => {
                let e = self.entries.get_mut(&sid).expect("looked up");
                e.last_access = now;
                e.pinned = true;
            }
            Lookup::Hit(from) => {
                let bytes = self.entries[&sid].bytes;
                if self.make_room_in(now, TierId(0), bytes, queue, Some(sid), &mut transfers) {
                    let new_blocks = self.pools[0].alloc(bytes).expect("room made");
                    let e = self.entries.get_mut(&sid).expect("looked up");
                    let old = std::mem::replace(&mut e.blocks, new_blocks);
                    e.placement = TierId(0);
                    e.last_access = now;
                    e.pinned = true;
                    self.pools[from.0]
                        .free(&old)
                        .expect("blocks were in the source tier");
                    self.stats.promotions += 1;
                    self.stats.promotion_bytes += bytes;
                    // One event covers the whole journey; the per-hop
                    // transfers below carry the link charges.
                    self.emit(StoreEvent::Promoted {
                        session: sid.0,
                        bytes,
                        kind: FetchKind::Demand,
                        from,
                        to: TierId(0),
                        queue_pos: queue.position(sid),
                        instance: queue.owner(sid),
                        at: now,
                    });
                    Self::push_promotion_hops(&mut transfers, sid, bytes, from);
                } else {
                    // Tier 0 cannot stage it (pathological sizing): serve
                    // straight from the slow tier; pin in place.
                    let e = self.entries.get_mut(&sid).expect("looked up");
                    e.last_access = now;
                    e.pinned = true;
                }
            }
        }
        self.emit_occupancy(mark, now);
        (found, transfers)
    }

    /// Unpins `sid` after the engine finished using (and re-saving) it.
    ///
    /// Idempotent and panic-free regardless of caller ordering: unpinning
    /// a session that was never pinned, was already unpinned, or whose
    /// entry has since been evicted/invalidated (e.g. crash recovery
    /// releasing pins for jobs that never reached their save) is a no-op.
    pub fn unpin(&mut self, sid: SessionId) {
        if self.cfg.keying == crate::KeyingMode::ContentAddressed {
            return self.ca_unpin(sid);
        }
        if let Some(e) = self.entries.get_mut(&sid) {
            e.pinned = false;
        }
    }

    /// Longest-prefix match of `sid`'s next context against the stored
    /// KV, pinning and staging what matched (see
    /// [`crate::PrefixMatch`]). Under per-session keying this reduces to
    /// [`load_for_use`](AttentionStore::load_for_use) — the only
    /// matchable prefix is the session's own history.
    pub fn load_prefix(
        &mut self,
        sid: SessionId,
        ctx_tokens: u64,
        now: Time,
        queue: &QueueView,
    ) -> crate::PrefixMatch {
        sim::scope!("store.prefix_match");
        if self.cfg.keying == crate::KeyingMode::ContentAddressed {
            return self.ca_load_prefix(sid, ctx_tokens, now, queue);
        }
        let matched = self
            .entries
            .get(&sid)
            .map_or(0, |e| e.tokens.min(ctx_tokens));
        let (lookup, transfers) = self.load_for_use(sid, now, queue);
        crate::PrefixMatch {
            matched_tokens: if lookup == Lookup::Miss { 0 } else { matched },
            lookup,
            transfers,
        }
    }

    /// Runs the look-ahead prefetcher (§3.3.1): promotes slow-tier KV of
    /// queued sessions within `L_pw` into free tier-0 space, then
    /// restores the tier-0 reserve by demoting cold entries.
    ///
    /// No-op for history-only policies (LRU/FIFO cannot see the queue).
    pub fn prefetch(&mut self, now: Time, queue: &QueueView) -> Vec<Transfer> {
        sim::scope!("store.prefetch");
        if self.cfg.keying == crate::KeyingMode::ContentAddressed {
            return self.ca_prefetch(now, queue);
        }
        if !self.policy.wants_prefetch() {
            return Vec::new();
        }
        let mut transfers = Vec::new();
        let mark = self.trace_mark();
        let window = self.prefetch_window();
        let targets: Vec<(usize, SessionId)> = queue
            .head(window)
            .enumerate()
            .filter(|&(_, sid)| {
                self.entries
                    .get(&sid)
                    .is_some_and(|e| !e.placement.is_fast() && !e.pinned)
            })
            .collect();
        'targets: for (pos, sid) in targets {
            // Re-validate: an earlier iteration (or its evictions) may
            // have promoted, demoted or dropped this session already —
            // e.g. when the same session appears twice in the queue.
            let from = match self.entries.get(&sid) {
                Some(e) if !e.placement.is_fast() && !e.pinned => e.placement,
                _ => continue,
            };
            let bytes = self.entries[&sid].bytes;
            // Fetching into the buffer may demote cold entries (Fig 9:
            // fetching Job 3 pushes Job 4 down) — but only entries whose
            // next use is strictly further in the future than this
            // target's, otherwise promote/demote ping-pong would saturate
            // the slow links.
            while !self.pools[0].fits(bytes) {
                let Some(victim) = self.choose_victim_in(TierId(0), queue, Some(sid)) else {
                    break 'targets;
                };
                if queue.position(victim).is_some_and(|vp| vp <= pos) {
                    break 'targets;
                }
                self.demote_session(now, victim, queue, Some(sid), &mut transfers);
            }
            let new_blocks = self.pools[0].alloc(bytes).expect("fit ensured above");
            let e = self.entries.get_mut(&sid).expect("target exists");
            let old = std::mem::replace(&mut e.blocks, new_blocks);
            e.placement = TierId(0);
            e.last_access = now;
            self.pools[from.0]
                .free(&old)
                .expect("blocks were in the source tier");
            self.stats.promotions += 1;
            self.stats.promotion_bytes += bytes;
            self.emit(StoreEvent::Promoted {
                session: sid.0,
                bytes,
                kind: FetchKind::Prefetch,
                from,
                to: TierId(0),
                queue_pos: Some(pos),
                instance: queue.owner(sid),
                at: now,
            });
            Self::push_promotion_hops(&mut transfers, sid, bytes, from);
        }
        transfers.extend(self.maintain_reserve(now, queue));
        self.emit_occupancy(mark, now);
        transfers
    }
}
