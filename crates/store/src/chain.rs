//! Content-addressed chunk chains: the keying layer of block-granular
//! cross-session KV dedup.
//!
//! Under [`KeyingMode::ContentAddressed`] the store's unit of storage is
//! no longer a whole-session entry but a fixed-size *chunk* of
//! `block_tokens` tokens, addressed by the hash of everything up to and
//! including it. Two sessions whose token streams share a prefix produce
//! identical chain hashes for the shared chunks and therefore resolve to
//! the *same* stored nodes — a million users on one system prompt store
//! its KV once.
//!
//! The chain hash doubles as the radix-tree lookup: because chunk `k`'s
//! hash folds in chunk `k-1`'s, the map `chain_hash → node` *is* the
//! prefix trie, and longest-prefix match is a walk of successive chain
//! hashes until the first miss (the same trick vLLM's prefix caching
//! uses). No explicit tree needs maintaining.
//!
//! Token content is abstracted by seeds: the simulator never materializes
//! tokens, so a [`ContentKey`] describes a session's stream as a shared
//! prefix (`shared_seed` for the first `shared_tokens` tokens — the
//! system prompt, parent agent context or RAG document all sessions in a
//! pool present verbatim) followed by private tokens (`private_seed`).
//! Chunks fully inside the shared span hash from the shared seed alone,
//! so they collide — deliberately — across the pool; chunks touching
//! private tokens fold the private seed in and never collide across
//! sessions. Context truncation rewrites history in place, so it bumps
//! `generation`, which poisons every chunk hash and forks the session
//! onto a fresh private chain (copy-on-divergence, observable as a
//! `block_diverged` event).

use serde::{Deserialize, Serialize};

/// How the store keys saved KV.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum KeyingMode {
    /// One session = one private entry, no cross-session sharing — the
    /// paper's scheme, byte-for-byte identical to the store before block
    /// keying existed.
    #[default]
    PerSession,
    /// Fixed-size chunks content-addressed by prefix chain hash, shared
    /// across sessions, refcount-evicted.
    ContentAddressed,
}

impl KeyingMode {
    /// Lowercase label used in configs and tables.
    pub fn label(self) -> &'static str {
        match self {
            KeyingMode::PerSession => "per_session",
            KeyingMode::ContentAddressed => "content_addressed",
        }
    }
}

/// splitmix64 finalizer: the same mixer the fault dice and entry
/// checksums use, so one u64 in, one well-distributed u64 out.
fn mix(mut x: u64) -> u64 {
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d049bb133111eb);
    x ^ (x >> 31)
}

/// Folds `b` into running hash `a`.
fn fold(a: u64, b: u64) -> u64 {
    mix(a ^ b.wrapping_mul(0x9e3779b97f4a7c15))
}

/// Describes one session's token content for chunk hashing.
///
/// The engine registers a key per session before its first save (from
/// the workload's `PrefixContent`, when present); sessions without one
/// get [`ContentKey::private`], whose chunks never collide with anyone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ContentKey {
    /// Seed of the shared prefix content (pool/document/parent id).
    pub shared_seed: u64,
    /// Length of the shared prefix in tokens; 0 = fully private.
    pub shared_tokens: u64,
    /// Seed of the session-private tokens after the shared prefix.
    pub private_seed: u64,
    /// Bumped on truncation: history was rewritten in place, so every
    /// chunk of the old chain is invalid for matching.
    pub generation: u64,
}

impl ContentKey {
    /// A fully private key for a session with no declared shared prefix.
    pub fn private(session: u64) -> Self {
        ContentKey {
            shared_seed: 0,
            shared_tokens: 0,
            private_seed: mix(session ^ 0xa076_1d64_78bd_642f),
            generation: 0,
        }
    }

    /// Hash of chunk `index` covering tokens `[start, start + n)`.
    ///
    /// Chunks fully inside the shared span (generation 0) hash from the
    /// shared seed alone — identical across every session of the pool.
    /// A chunk straddling the shared/private boundary folds both seeds
    /// (still deterministic, but private). Anything past the boundary,
    /// or any chunk of a truncated (generation > 0) session, is private.
    pub fn chunk_hash(&self, index: u64, start: u64, n: u64) -> u64 {
        let span = fold(index, n);
        if self.generation == 0 && start + n <= self.shared_tokens {
            fold(self.shared_seed, span)
        } else if self.generation == 0 && start < self.shared_tokens {
            fold(fold(self.shared_seed, self.private_seed), span)
        } else {
            fold(fold(self.private_seed, self.generation), span)
        }
    }

    /// Extends chain hash `prev` (use [`CHAIN_SEED`] for chunk 0) with
    /// chunk hash `h`.
    pub fn chain_hash(prev: u64, h: u64) -> u64 {
        fold(prev, h)
    }

    /// The chain hashes of the first `tokens` tokens chunked every
    /// `block_tokens`, in order. The last chunk may be partial; its
    /// token count is folded into the hash, so a partial tail only
    /// matches a chunk of exactly the same extent.
    pub fn chain(&self, tokens: u64, block_tokens: u64) -> Vec<ChunkKey> {
        let b = block_tokens.max(1);
        let mut out = Vec::with_capacity(tokens.div_ceil(b) as usize);
        let mut prev = CHAIN_SEED;
        let mut start = 0;
        let mut index = 0;
        while start < tokens {
            let n = b.min(tokens - start);
            let h = self.chunk_hash(index, start, n);
            prev = ContentKey::chain_hash(prev, h);
            out.push(ChunkKey {
                chain_hash: prev,
                tokens: n,
            });
            start += n;
            index += 1;
        }
        out
    }
}

/// Root of every chunk chain.
pub const CHAIN_SEED: u64 = 0x4b56_6368_6169_6e00; // "KVchain"

/// One chunk's identity in a chain: the cumulative chain hash plus the
/// chunk's token extent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChunkKey {
    /// Cumulative hash of everything up to and including this chunk.
    pub chain_hash: u64,
    /// Tokens this chunk covers (partial tails < `block_tokens`).
    pub tokens: u64,
}

/// Cumulative dedup statistics of the content-addressed ledger.
///
/// Kept separate from [`crate::StoreStats`], which is embedded in the
/// golden-pinned run reports and must not gain fields.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DedupStats {
    /// Consults that matched at least one stored block.
    pub lookup_hits: u64,
    /// Blocks matched across all consults.
    pub matched_blocks: u64,
    /// Save-side chunks that resolved to an already-stored node.
    pub dedup_blocks: u64,
    /// Save-side chunks written fresh.
    pub new_blocks: u64,
    /// Bytes *not* written because the chunk already existed.
    pub bytes_saved: u64,
    /// Bytes physically written by saves.
    pub bytes_written: u64,
    /// Sessions that forked off a shared chain (copy-on-divergence).
    pub divergences: u64,
    /// Unreferenced nodes reclaimed (the refcounted eviction path).
    pub refcounted_evictions: u64,
    /// Whole-chain releases forced when the bottom tier held only
    /// referenced blocks (the fallback that mirrors per-session
    /// eviction).
    pub session_releases: u64,
}

impl DedupStats {
    /// Fraction of saved chunks that were dedup hits.
    pub fn dedup_ratio(&self) -> f64 {
        let total = self.dedup_blocks + self.new_blocks;
        if total == 0 {
            return 0.0;
        }
        self.dedup_blocks as f64 / total as f64
    }

    /// Logical bytes stored per physical byte written — the effective
    /// capacity multiplier dedup buys.
    pub fn effective_capacity_factor(&self) -> f64 {
        if self.bytes_written == 0 {
            return 1.0;
        }
        (self.bytes_written + self.bytes_saved) as f64 / self.bytes_written as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shared_prefix_chunks_collide_private_tails_do_not() {
        let a = ContentKey {
            shared_seed: 7,
            shared_tokens: 256,
            private_seed: 1,
            generation: 0,
        };
        let b = ContentKey {
            shared_seed: 7,
            shared_tokens: 256,
            private_seed: 2,
            generation: 0,
        };
        let ca = a.chain(512, 128);
        let cb = b.chain(512, 128);
        assert_eq!(ca.len(), 4);
        // First two chunks are fully inside the shared 256 tokens.
        assert_eq!(ca[0], cb[0]);
        assert_eq!(ca[1], cb[1]);
        // Past the boundary the private seeds fork the chains.
        assert_ne!(ca[2], cb[2]);
        assert_ne!(ca[3], cb[3]);
    }

    #[test]
    fn straddling_chunk_is_deterministic_but_private() {
        let a = ContentKey {
            shared_seed: 7,
            shared_tokens: 100,
            private_seed: 1,
            generation: 0,
        };
        let b = ContentKey {
            private_seed: 2,
            ..a
        };
        // Chunk [64, 128) straddles the 100-token boundary.
        assert_eq!(a.chain(128, 64)[1], a.chain(128, 64)[1]);
        assert_ne!(a.chain(128, 64)[1], b.chain(128, 64)[1]);
    }

    #[test]
    fn growth_extends_the_chain_in_place() {
        let k = ContentKey::private(9);
        let short = k.chain(300, 128);
        let long = k.chain(600, 128);
        // Full chunks of the shorter chain are a prefix of the longer.
        assert_eq!(short[0], long[0]);
        assert_eq!(short[1], long[1]);
        // The partial 44-token tail is replaced, not extended.
        assert_eq!(short[2].tokens, 44);
        assert_eq!(long[2].tokens, 128);
        assert_ne!(short[2].chain_hash, long[2].chain_hash);
    }

    #[test]
    fn generation_bump_forks_everything() {
        let k = ContentKey {
            shared_seed: 7,
            shared_tokens: 256,
            private_seed: 1,
            generation: 0,
        };
        let bumped = ContentKey { generation: 1, ..k };
        let a = k.chain(256, 128);
        let b = bumped.chain(256, 128);
        assert_ne!(a[0], b[0]);
        assert_ne!(a[1], b[1]);
    }

    #[test]
    fn dedup_stats_ratios() {
        let mut d = DedupStats::default();
        assert_eq!(d.dedup_ratio(), 0.0);
        assert_eq!(d.effective_capacity_factor(), 1.0);
        d.dedup_blocks = 3;
        d.new_blocks = 1;
        d.bytes_saved = 300;
        d.bytes_written = 100;
        assert!((d.dedup_ratio() - 0.75).abs() < 1e-12);
        assert!((d.effective_capacity_factor() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn keying_labels() {
        assert_eq!(KeyingMode::default(), KeyingMode::PerSession);
        assert_eq!(KeyingMode::PerSession.label(), "per_session");
        assert_eq!(KeyingMode::ContentAddressed.label(), "content_addressed");
    }
}
