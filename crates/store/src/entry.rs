//! Session-granularity cache entries.

use serde::{Deserialize, Serialize};
use sim::Time;

use crate::BlockId;

/// Identifier of a conversation session.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct SessionId(pub u64);

impl std::fmt::Display for SessionId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// Which tier currently holds a session's KV cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Placement {
    /// Host memory: fast PCIe path to HBM.
    Dram,
    /// SSD: must be staged through DRAM before use.
    Disk,
}

/// One session's cached KV: placement, size and access metadata.
#[derive(Debug, Clone)]
pub struct Entry {
    /// KV payload size in bytes (grows each turn, shrinks on truncation).
    pub bytes: u64,
    /// Number of cached tokens the bytes correspond to.
    pub tokens: u64,
    /// Current tier.
    pub placement: Placement,
    /// Blocks backing the entry in its current tier.
    pub blocks: Vec<BlockId>,
    /// Last time the entry was saved or loaded (LRU / TTL input).
    pub last_access: Time,
    /// Monotonic insertion sequence (FIFO input).
    pub insert_seq: u64,
    /// Pinned entries are mid-transfer or in use and exempt from eviction.
    pub pinned: bool,
    /// Integrity checksum over the saved KV metadata, written at save
    /// time and verified on load. A mismatch means the stored KV is
    /// corrupt and the session must re-prefill.
    pub checksum: u64,
}

impl Entry {
    /// The integrity checksum over an entry's saved KV metadata: a pure
    /// hash of `(session, bytes, tokens)` (splitmix64 finalizer).
    pub fn metadata_checksum(session: SessionId, bytes: u64, tokens: u64) -> u64 {
        let mut x = session
            .0
            .wrapping_mul(0x9e3779b97f4a7c15)
            .wrapping_add(bytes.wrapping_mul(0xbf58476d1ce4e5b9))
            .wrapping_add(tokens.wrapping_mul(0x94d049bb133111eb));
        x = (x ^ (x >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94d049bb133111eb);
        x ^ (x >> 31)
    }

    /// Returns `true` when the entry's checksum matches its metadata.
    pub fn integrity_ok(&self, session: SessionId) -> bool {
        self.checksum == Entry::metadata_checksum(session, self.bytes, self.tokens)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn session_id_displays_compactly() {
        assert_eq!(SessionId(42).to_string(), "s42");
    }

    #[test]
    fn placement_equality() {
        assert_eq!(Placement::Dram, Placement::Dram);
        assert_ne!(Placement::Dram, Placement::Disk);
    }
}
