//! Session-granularity cache entries.

use serde::{Deserialize, Serialize};
use sim::Time;

use crate::BlockId;

/// Identifier of a conversation session.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct SessionId(pub u64);

impl std::fmt::Display for SessionId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// Index of a storage tier in the configured
/// [`TierStack`](models::TierStack), fastest first: tier 0 is the
/// staging tier the engine reads KV from (host DRAM in the paper's
/// stack), higher indices are progressively slower and cheaper.
///
/// This is the one canonical tier vocabulary: entries record where they
/// live as a `TierId`, trace events carry `TierId`s, and telemetry maps
/// them back to [`TierSpec::name`](models::TierSpec) labels. It replaces
/// the old `Placement { Dram, Disk }` / `events::Tier { Dram, Disk }`
/// pair of two-variant enums.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct TierId(pub usize);

impl TierId {
    /// The staging tier the engine reads from (DRAM in the paper stack).
    pub const FAST: TierId = TierId(0);

    /// Whether this is the fast staging tier (tier 0).
    pub fn is_fast(self) -> bool {
        self.0 == 0
    }

    /// The adjacent slower tier.
    pub fn below(self) -> TierId {
        TierId(self.0 + 1)
    }

    /// The adjacent faster tier, if any.
    pub fn above(self) -> Option<TierId> {
        self.0.checked_sub(1).map(TierId)
    }
}

impl std::fmt::Display for TierId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// One session's cached KV: placement, size and access metadata.
#[derive(Debug, Clone)]
pub struct Entry {
    /// KV payload size in bytes (grows each turn, shrinks on truncation).
    pub bytes: u64,
    /// Number of cached tokens the bytes correspond to.
    pub tokens: u64,
    /// Current tier.
    pub placement: TierId,
    /// Blocks backing the entry in its current tier.
    pub blocks: Vec<BlockId>,
    /// Last time the entry was saved or loaded (LRU / TTL input).
    pub last_access: Time,
    /// Monotonic insertion sequence (FIFO input).
    pub insert_seq: u64,
    /// Pinned entries are mid-transfer or in use and exempt from eviction.
    pub pinned: bool,
    /// Integrity checksum over the saved KV metadata, written at save
    /// time and verified on load. A mismatch means the stored KV is
    /// corrupt and the session must re-prefill.
    pub checksum: u64,
}

impl Entry {
    /// The integrity checksum over an entry's saved KV metadata: a pure
    /// hash of `(session, bytes, tokens)` (splitmix64 finalizer).
    pub fn metadata_checksum(session: SessionId, bytes: u64, tokens: u64) -> u64 {
        let mut x = session
            .0
            .wrapping_mul(0x9e3779b97f4a7c15)
            .wrapping_add(bytes.wrapping_mul(0xbf58476d1ce4e5b9))
            .wrapping_add(tokens.wrapping_mul(0x94d049bb133111eb));
        x = (x ^ (x >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94d049bb133111eb);
        x ^ (x >> 31)
    }

    /// Returns `true` when the entry's checksum matches its metadata.
    pub fn integrity_ok(&self, session: SessionId) -> bool {
        self.checksum == Entry::metadata_checksum(session, self.bytes, self.tokens)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn session_id_displays_compactly() {
        assert_eq!(SessionId(42).to_string(), "s42");
    }

    #[test]
    fn tier_ids_order_fastest_first() {
        assert_eq!(TierId::FAST, TierId(0));
        assert!(TierId(0).is_fast());
        assert!(!TierId(1).is_fast());
        assert!(TierId(0) < TierId(1));
        assert_eq!(TierId(1).below(), TierId(2));
        assert_eq!(TierId(1).above(), Some(TierId(0)));
        assert_eq!(TierId(0).above(), None);
        assert_eq!(TierId(3).to_string(), "t3");
    }

    #[test]
    fn tier_id_serializes_as_bare_index() {
        assert_eq!(serde_json::to_string(&TierId(2)).unwrap(), "2");
    }
}
