#![warn(missing_docs)]

//! AttentionStore: the hierarchical KV caching system of CachedAttention.
//!
//! When a conversation session goes inactive, the serving engine hands its
//! KV cache to this store; when the session resumes, the engine asks for it
//! back. Internally the store manages a configurable stack of tiers (the
//! paper's §4.1 testbed is host DRAM over SSD; deeper stacks add pooled
//! memory and object storage) in fixed-size blocks, at *session
//! granularity*: a session's KV is either all useful or not at all
//! (§3.3.2), so sessions move between adjacent tiers whole, hop by hop.
//!
//! The two placement schemes from §3.3:
//!
//! - **Scheduler-aware fetching**: a look-ahead prefetch window over the
//!   job scheduler's queue, sized `C_mem / S_kv`, pulls slow-tier KV
//!   into tier 0 before its job runs.
//! - **Scheduler-aware eviction**: a look-ahead eviction window sized by
//!   the stack's total capacity over `S_kv` (the paper's
//!   `(C_mem + C_disk) / S_kv`). Entries appearing in the window are
//!   exempt where possible; when all candidates are in the window, the one
//!   nearest the tail (furthest future use — Belady with a horizon) goes
//!   first. Victims demote one hop down; bottom-tier victims leave the
//!   system.
//!
//! [`Lru`] and [`Fifo`] baselines (Figure 21) share the same tiers but see
//! no queue and never prefetch.
//!
//! The store is *pure bookkeeping*: methods take the current virtual time
//! and return adjacent-tier [`Transfer`] hops; the serving engine charges
//! those hops on the simulated per-boundary links.

mod block;
mod chain;
mod entry;
mod events;
mod planner;
mod policy;
#[allow(clippy::module_inception)]
mod store;

pub use block::{BlockId, BlockPool};
pub use chain::{ChunkKey, ContentKey, DedupStats, KeyingMode, CHAIN_SEED};
pub use entry::{Entry, SessionId, TierId};
pub use events::{FetchKind, NullStoreObserver, StoreEvent, StoreEventLog, StoreObserver};
pub use planner::StorePlanner;
pub use policy::{EvictionPolicy, Fifo, Lru, PolicyKind, QueueView, SchedulerAware};
pub use store::{
    AttentionStore, DegradeReason, FaultStats, FetchOutcome, Lookup, PrefetchOutcome, PrefixMatch,
    PrefixOutcome, SaveOutcome, StoreConfig, StoreStats, Transfer,
};
