//! The planning-side store API the serving engine programs against.
//!
//! The engine never touches blocks, entries or eviction internals: during
//! a run it only *plans* — look up a session's KV on admission, prefetch
//! ahead of the queue, save on retirement, truncate or invalidate on
//! context overflow, expire on TTL sweeps. [`StorePlanner`] captures
//! exactly that surface, so the engine's transfer stage can be wired to
//! [`AttentionStore`] (or to a test double) without seeing the rest of
//! the store's API.

use crate::{
    AttentionStore, ContentKey, DedupStats, FaultStats, FetchOutcome, KeyingMode, Lookup,
    PrefetchOutcome, PrefixMatch, PrefixOutcome, QueueView, SaveOutcome, SessionId, StoreEvent,
    StoreStats, Transfer,
};
use sim::{Dur, FaultPlan, Time};

/// The store operations the serving engine's planning stages use.
///
/// Every mutating call returns the [`Transfer`]s the engine must charge
/// on its simulated links; the store itself never models time beyond
/// recording access timestamps.
pub trait StorePlanner {
    /// Looks up and pins `sid`'s KV for an admitted job, demand-promoting
    /// disk-resident KV. Returns where it was found plus the transfers.
    fn load_for_use(
        &mut self,
        sid: SessionId,
        now: Time,
        queue: &QueueView,
    ) -> (Lookup, Vec<Transfer>);

    /// Number of cached tokens for `sid`, if present in any tier.
    fn entry_tokens(&self, sid: SessionId) -> Option<u64>;

    /// Runs the scheduler-aware prefetcher over the queue (§3.3.1).
    fn prefetch(&mut self, now: Time, queue: &QueueView) -> Vec<Transfer>;

    /// Saves (or updates) `sid`'s KV; returns eviction/demotion transfers
    /// and whether the save fit.
    fn save(
        &mut self,
        sid: SessionId,
        total_bytes: u64,
        total_tokens: u64,
        now: Time,
        queue: &QueueView,
    ) -> (Vec<Transfer>, bool);

    /// Shrinks `sid`'s cached KV in place (decoupled positional encoding
    /// truncation, §3.4).
    fn truncate(&mut self, sid: SessionId, new_bytes: u64, new_tokens: u64);

    /// Drops `sid`'s cached KV entirely (coupled positional encoding
    /// overflow, §4.3.4).
    fn invalidate(&mut self, sid: SessionId);

    /// Drops entries idle past the TTL; returns how many were dropped.
    fn expire(&mut self, now: Time) -> u64;

    /// Running statistics.
    fn stats(&self) -> &StoreStats;

    /// Scheduler-aware prefetch window in sessions: `C_mem / S_kv`.
    fn prefetch_window(&self) -> usize;

    /// Scheduler-aware eviction window in sessions:
    /// `(C_mem + C_disk) / S_kv`.
    fn eviction_window(&self) -> usize;

    /// Enables or disables [`StoreEvent`] tracing. Planners without a
    /// trace facility (test doubles) ignore this.
    fn set_tracing(&mut self, _on: bool) {}

    /// Takes the [`StoreEvent`]s buffered since the last drain. Empty
    /// when tracing is off or unsupported.
    fn drain_events(&mut self) -> Vec<StoreEvent> {
        Vec::new()
    }

    /// Releases `sid`'s use-pin without re-saving (crash recovery).
    /// Idempotent and a no-op for sessions no longer cached; planners
    /// without pinning ignore it.
    fn unpin(&mut self, _sid: SessionId) {}

    /// Installs the run's fault plan. Planners without a fault facility
    /// (test doubles) ignore it and stay infallible.
    fn set_faults(&mut self, _plan: FaultPlan) {}

    /// Cumulative fault-path statistics (all-zero when unsupported).
    fn fault_stats(&self) -> FaultStats {
        FaultStats::default()
    }

    /// Fallible [`StorePlanner::load_for_use`]: may report injected read
    /// errors, retries and degradation. Defaults to the infallible path.
    fn try_load_for_use(&mut self, sid: SessionId, now: Time, queue: &QueueView) -> FetchOutcome {
        let (lookup, transfers) = self.load_for_use(sid, now, queue);
        FetchOutcome {
            lookup,
            transfers,
            retries: 0,
            backoff: Dur::ZERO,
            degraded: None,
        }
    }

    /// Fallible [`StorePlanner::save`]. Defaults to the infallible path.
    fn try_save(
        &mut self,
        sid: SessionId,
        total_bytes: u64,
        total_tokens: u64,
        now: Time,
        queue: &QueueView,
    ) -> SaveOutcome {
        let (transfers, fitted) = self.save(sid, total_bytes, total_tokens, now, queue);
        SaveOutcome {
            transfers,
            fitted,
            retries: 0,
            backoff: Dur::ZERO,
            failed: false,
        }
    }

    /// Fallible [`StorePlanner::prefetch`]. Defaults to the infallible
    /// path.
    fn try_prefetch(&mut self, now: Time, queue: &QueueView) -> PrefetchOutcome {
        PrefetchOutcome {
            transfers: self.prefetch(now, queue),
            retries: 0,
            backoff: Dur::ZERO,
        }
    }

    /// Applies a DRAM pressure spike (see
    /// [`AttentionStore::apply_pressure`]); returns the demotion
    /// transfers. Defaults to a no-op.
    fn apply_pressure(&mut self, _now: Time, _fraction: f64, _queue: &QueueView) -> Vec<Transfer> {
        Vec::new()
    }

    /// Which keying scheme this planner stores KV under. Planners
    /// without block keying are per-session.
    fn keying(&self) -> KeyingMode {
        KeyingMode::PerSession
    }

    /// Registers the token-content identity of `sid` before its first
    /// save, so block hashing can recognise shared prefixes. No-op for
    /// per-session planners.
    fn register_content(&mut self, _sid: SessionId, _key: ContentKey) {}

    /// Longest-prefix match of `sid`'s next `ctx_tokens` of context
    /// against the store, pinning and staging what matched. Defaults to
    /// the per-session reduction: the only matchable prefix is the
    /// session's own cached history.
    fn load_prefix(
        &mut self,
        sid: SessionId,
        ctx_tokens: u64,
        now: Time,
        queue: &QueueView,
    ) -> PrefixMatch {
        let matched = self.entry_tokens(sid).unwrap_or(0).min(ctx_tokens);
        let (lookup, transfers) = self.load_for_use(sid, now, queue);
        PrefixMatch {
            matched_tokens: if lookup == Lookup::Miss { 0 } else { matched },
            lookup,
            transfers,
        }
    }

    /// Fallible [`StorePlanner::load_prefix`]. Defaults to the
    /// infallible path.
    fn try_load_prefix(
        &mut self,
        sid: SessionId,
        ctx_tokens: u64,
        now: Time,
        queue: &QueueView,
    ) -> PrefixOutcome {
        PrefixOutcome {
            prefix: self.load_prefix(sid, ctx_tokens, now, queue),
            retries: 0,
            backoff: Dur::ZERO,
            degraded: None,
        }
    }

    /// Cross-session dedup statistics (all-zero for per-session
    /// planners).
    fn dedup_stats(&self) -> DedupStats {
        DedupStats::default()
    }
}

impl StorePlanner for AttentionStore {
    fn load_for_use(
        &mut self,
        sid: SessionId,
        now: Time,
        queue: &QueueView,
    ) -> (Lookup, Vec<Transfer>) {
        AttentionStore::load_for_use(self, sid, now, queue)
    }

    fn entry_tokens(&self, sid: SessionId) -> Option<u64> {
        self.cached_tokens(sid)
    }

    fn prefetch(&mut self, now: Time, queue: &QueueView) -> Vec<Transfer> {
        AttentionStore::prefetch(self, now, queue)
    }

    fn save(
        &mut self,
        sid: SessionId,
        total_bytes: u64,
        total_tokens: u64,
        now: Time,
        queue: &QueueView,
    ) -> (Vec<Transfer>, bool) {
        AttentionStore::save(self, sid, total_bytes, total_tokens, now, queue)
    }

    fn truncate(&mut self, sid: SessionId, new_bytes: u64, new_tokens: u64) {
        AttentionStore::truncate(self, sid, new_bytes, new_tokens)
    }

    fn invalidate(&mut self, sid: SessionId) {
        AttentionStore::invalidate(self, sid)
    }

    fn expire(&mut self, now: Time) -> u64 {
        AttentionStore::expire(self, now)
    }

    fn stats(&self) -> &StoreStats {
        AttentionStore::stats(self)
    }

    fn prefetch_window(&self) -> usize {
        AttentionStore::prefetch_window(self)
    }

    fn eviction_window(&self) -> usize {
        AttentionStore::eviction_window(self)
    }

    fn set_tracing(&mut self, on: bool) {
        AttentionStore::set_tracing(self, on)
    }

    fn drain_events(&mut self) -> Vec<StoreEvent> {
        AttentionStore::drain_events(self)
    }

    fn unpin(&mut self, sid: SessionId) {
        AttentionStore::unpin(self, sid)
    }

    fn set_faults(&mut self, plan: FaultPlan) {
        AttentionStore::set_faults(self, plan)
    }

    fn fault_stats(&self) -> FaultStats {
        *AttentionStore::fault_stats(self)
    }

    fn try_load_for_use(&mut self, sid: SessionId, now: Time, queue: &QueueView) -> FetchOutcome {
        AttentionStore::try_load_for_use(self, sid, now, queue)
    }

    fn try_save(
        &mut self,
        sid: SessionId,
        total_bytes: u64,
        total_tokens: u64,
        now: Time,
        queue: &QueueView,
    ) -> SaveOutcome {
        AttentionStore::try_save(self, sid, total_bytes, total_tokens, now, queue)
    }

    fn try_prefetch(&mut self, now: Time, queue: &QueueView) -> PrefetchOutcome {
        AttentionStore::try_prefetch(self, now, queue)
    }

    fn apply_pressure(&mut self, now: Time, fraction: f64, queue: &QueueView) -> Vec<Transfer> {
        AttentionStore::apply_pressure(self, now, fraction, queue)
    }

    fn keying(&self) -> KeyingMode {
        self.config().keying
    }

    fn register_content(&mut self, sid: SessionId, key: ContentKey) {
        AttentionStore::register_content(self, sid, key)
    }

    fn load_prefix(
        &mut self,
        sid: SessionId,
        ctx_tokens: u64,
        now: Time,
        queue: &QueueView,
    ) -> PrefixMatch {
        AttentionStore::load_prefix(self, sid, ctx_tokens, now, queue)
    }

    fn try_load_prefix(
        &mut self,
        sid: SessionId,
        ctx_tokens: u64,
        now: Time,
        queue: &QueueView,
    ) -> PrefixOutcome {
        AttentionStore::try_load_prefix(self, sid, ctx_tokens, now, queue)
    }

    fn dedup_stats(&self) -> DedupStats {
        AttentionStore::dedup_stats(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{StoreConfig, TierId};

    /// The trait is object-safe and the blanket impl delegates.
    #[test]
    fn attention_store_is_a_planner() {
        let mut store = AttentionStore::new(StoreConfig::default());
        let planner: &mut dyn StorePlanner = &mut store;
        let view = QueueView::empty();
        let sid = SessionId(1);
        let (t, ok) = planner.save(sid, 1_000_000, 100, Time::ZERO, &view);
        assert!(ok);
        assert!(t.is_empty());
        assert_eq!(planner.entry_tokens(sid), Some(100));
        let (found, _) = planner.load_for_use(sid, Time::ZERO, &view);
        assert_eq!(found, Lookup::Hit(TierId(0)));
        assert_eq!(planner.stats().saves, 1);
        planner.invalidate(sid);
        assert_eq!(planner.entry_tokens(sid), None);
    }
}
