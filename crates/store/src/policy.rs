//! Eviction policies: scheduler-aware (the paper's), LRU and FIFO.

use std::collections::HashMap;

use crate::{Entry, SessionId};

/// A read-only view of the job scheduler's queue, head first.
///
/// The scheduler-aware schemes (§3.3) are built on exactly this: the queue
/// tells the store which sessions will be needed and in what order.
///
/// In a cluster, the view is *merged* across every instance's queue (see
/// the engine's `ClusterSim`); [`QueueView::with_owners`] additionally
/// records which serving instance each queued session belongs to, so the
/// store can attribute tier transfers per instance.
pub struct QueueView {
    order: Vec<SessionId>,
    pos: HashMap<SessionId, usize>,
    owner: HashMap<SessionId, u32>,
}

impl Default for QueueView {
    fn default() -> Self {
        QueueView::empty()
    }
}

impl QueueView {
    /// Builds a view from the queue's session order (head first). When a
    /// session appears more than once, its earliest position wins.
    pub fn new(order: &[SessionId]) -> Self {
        let mut pos = HashMap::with_capacity(order.len());
        for (i, &sid) in order.iter().enumerate() {
            pos.entry(sid).or_insert(i);
        }
        QueueView {
            order: order.to_vec(),
            pos,
            owner: HashMap::new(),
        }
    }

    /// Builds a view that also records the owning serving instance of
    /// each queued session. `owners[i]` is the instance whose queue holds
    /// `order[i]`; like positions, a duplicated session keeps the owner of
    /// its earliest occurrence.
    ///
    /// # Panics
    ///
    /// Panics when `order` and `owners` differ in length.
    pub fn with_owners(order: &[SessionId], owners: &[u32]) -> Self {
        assert_eq!(order.len(), owners.len(), "one owner per queued session");
        let mut view = QueueView::new(order);
        view.owner.reserve(order.len());
        for (&sid, &inst) in order.iter().zip(owners) {
            view.owner.entry(sid).or_insert(inst);
        }
        view
    }

    /// An empty queue (what LRU/FIFO effectively see).
    pub fn empty() -> Self {
        QueueView::new(&[])
    }

    /// Rebuilds this view in place from a fresh `order`/`owners` pair,
    /// reusing the retained allocations. Semantically identical to
    /// [`QueueView::with_owners`]; this is the cluster's per-store-
    /// consultation hot path (`ClusterSim::merged_view` rebuilds a
    /// scratch view instead of allocating three collections per call).
    ///
    /// # Panics
    ///
    /// Panics when `order` and `owners` differ in length.
    pub fn rebuild(&mut self, order: &[SessionId], owners: &[u32]) {
        assert_eq!(order.len(), owners.len(), "one owner per queued session");
        self.order.clear();
        self.order.extend_from_slice(order);
        self.pos.clear();
        self.owner.clear();
        for (i, (&sid, &inst)) in order.iter().zip(owners).enumerate() {
            self.pos.entry(sid).or_insert(i);
            self.owner.entry(sid).or_insert(inst);
        }
    }

    /// Returns the queue position of `sid` (0 = head), if present.
    pub fn position(&self, sid: SessionId) -> Option<usize> {
        self.pos.get(&sid).copied()
    }

    /// Returns the serving instance whose queue holds `sid`, when the
    /// view was built with owner attribution and `sid` is queued.
    pub fn owner(&self, sid: SessionId) -> Option<u32> {
        self.owner.get(&sid).copied()
    }

    /// Returns the number of queued jobs.
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// Returns `true` when no jobs are queued.
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// Iterates the first `window` queued sessions, head first.
    pub fn head(&self, window: usize) -> impl Iterator<Item = SessionId> + '_ {
        self.order.iter().copied().take(window)
    }
}

/// Which eviction policy an [`crate::AttentionStore`] runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PolicyKind {
    /// The paper's look-ahead policy (§3.3.2) with prefetching (§3.3.1).
    SchedulerAware,
    /// Least-recently-used baseline.
    Lru,
    /// First-in-first-out baseline.
    Fifo,
}

impl PolicyKind {
    /// Instantiates the policy.
    pub fn build(self) -> Box<dyn EvictionPolicy> {
        match self {
            PolicyKind::SchedulerAware => Box::new(SchedulerAware),
            PolicyKind::Lru => Box::new(Lru),
            PolicyKind::Fifo => Box::new(Fifo),
        }
    }
}

/// Chooses which session to evict from a tier.
pub trait EvictionPolicy {
    /// Picks a victim among `candidates` (unpinned entries of one tier).
    ///
    /// `queue` is the scheduler's queue and `window` the look-ahead
    /// eviction window length in queue positions; history-only policies
    /// ignore both. Returns `None` when there are no candidates.
    fn choose_victim(
        &self,
        candidates: &[(SessionId, &Entry)],
        queue: &QueueView,
        window: usize,
    ) -> Option<SessionId>;

    /// Returns `true` when the store should run the look-ahead prefetcher
    /// for this policy.
    fn wants_prefetch(&self) -> bool {
        false
    }
}

/// Least-recently-used victim selection.
pub struct Lru;

impl EvictionPolicy for Lru {
    fn choose_victim(
        &self,
        candidates: &[(SessionId, &Entry)],
        _queue: &QueueView,
        _window: usize,
    ) -> Option<SessionId> {
        candidates
            .iter()
            .min_by_key(|(sid, e)| (e.last_access, e.insert_seq, *sid))
            .map(|&(sid, _)| sid)
    }
}

/// First-in-first-out victim selection.
pub struct Fifo;

impl EvictionPolicy for Fifo {
    fn choose_victim(
        &self,
        candidates: &[(SessionId, &Entry)],
        _queue: &QueueView,
        _window: usize,
    ) -> Option<SessionId> {
        candidates
            .iter()
            .min_by_key(|(sid, e)| (e.insert_seq, *sid))
            .map(|&(sid, _)| sid)
    }
}

/// The paper's scheduler-aware eviction (§3.3.2).
///
/// Entries whose sessions do **not** appear in the look-ahead eviction
/// window are preferred victims (their next use, if any, is beyond the
/// horizon); among them the least recently used goes first. When every
/// candidate is in the window, the one nearest the **tail** — the furthest
/// future use, i.e. the Belady choice within the horizon — is evicted.
pub struct SchedulerAware;

impl EvictionPolicy for SchedulerAware {
    fn choose_victim(
        &self,
        candidates: &[(SessionId, &Entry)],
        queue: &QueueView,
        window: usize,
    ) -> Option<SessionId> {
        let in_window = |sid: SessionId| match queue.position(sid) {
            Some(p) if p < window => Some(p),
            _ => None,
        };
        // Preferred: not referenced within the window; LRU among them.
        if let Some(&(sid, _)) = candidates
            .iter()
            .filter(|&&(sid, _)| in_window(sid).is_none())
            .min_by_key(|(sid, e)| (e.last_access, e.insert_seq, *sid))
        {
            return Some(sid);
        }
        // Everything is about to be used: evict the furthest-future one.
        candidates
            .iter()
            .max_by_key(|&&(sid, _)| (in_window(sid).expect("filtered above"), sid))
            .map(|&(sid, _)| sid)
    }

    fn wants_prefetch(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim::Time;

    fn entry(last_access_ns: u64, insert_seq: u64) -> Entry {
        Entry {
            bytes: 100,
            tokens: 10,
            placement: crate::TierId(0),
            blocks: Vec::new(),
            last_access: Time::from_nanos(last_access_ns),
            insert_seq,
            pinned: false,
            checksum: 0,
        }
    }

    #[test]
    fn lru_picks_oldest_access() {
        let a = entry(50, 0);
        let b = entry(10, 1);
        let c = entry(30, 2);
        let cands = vec![(SessionId(1), &a), (SessionId(2), &b), (SessionId(3), &c)];
        assert_eq!(
            Lru.choose_victim(&cands, &QueueView::empty(), 0),
            Some(SessionId(2))
        );
    }

    #[test]
    fn fifo_picks_earliest_insert() {
        let a = entry(50, 7);
        let b = entry(10, 9);
        let cands = vec![(SessionId(1), &a), (SessionId(2), &b)];
        assert_eq!(
            Fifo.choose_victim(&cands, &QueueView::empty(), 0),
            Some(SessionId(1))
        );
    }

    #[test]
    fn scheduler_aware_prefers_out_of_window() {
        // Queue: [s1, s2]; s3 is not queued, so it must be the victim even
        // though it is the most recently used.
        let a = entry(10, 0);
        let b = entry(20, 1);
        let c = entry(99, 2);
        let cands = vec![(SessionId(1), &a), (SessionId(2), &b), (SessionId(3), &c)];
        let q = QueueView::new(&[SessionId(1), SessionId(2)]);
        assert_eq!(
            SchedulerAware.choose_victim(&cands, &q, 10),
            Some(SessionId(3))
        );
    }

    #[test]
    fn scheduler_aware_falls_back_to_tail_of_window() {
        // All candidates are queued: the one nearest the tail goes.
        let a = entry(10, 0);
        let b = entry(20, 1);
        let cands = vec![(SessionId(1), &a), (SessionId(2), &b)];
        let q = QueueView::new(&[SessionId(2), SessionId(1)]);
        assert_eq!(
            SchedulerAware.choose_victim(&cands, &q, 10),
            Some(SessionId(1))
        );
    }

    #[test]
    fn window_truncates_the_queue() {
        // s2 is queued but beyond the window, so it counts as
        // out-of-window and is preferred over in-window s1.
        let a = entry(10, 0);
        let b = entry(5, 1);
        let cands = vec![(SessionId(1), &a), (SessionId(2), &b)];
        let q = QueueView::new(&[SessionId(1), SessionId(2)]);
        assert_eq!(
            SchedulerAware.choose_victim(&cands, &q, 1),
            Some(SessionId(2))
        );
    }

    #[test]
    fn empty_candidates_yield_none() {
        for kind in [
            PolicyKind::SchedulerAware,
            PolicyKind::Lru,
            PolicyKind::Fifo,
        ] {
            assert_eq!(
                kind.build().choose_victim(&[], &QueueView::empty(), 4),
                None
            );
        }
    }

    #[test]
    fn only_scheduler_aware_prefetches() {
        assert!(PolicyKind::SchedulerAware.build().wants_prefetch());
        assert!(!PolicyKind::Lru.build().wants_prefetch());
        assert!(!PolicyKind::Fifo.build().wants_prefetch());
    }

    #[test]
    fn rebuild_matches_with_owners_and_reuses_buffers() {
        let order = [SessionId(5), SessionId(6), SessionId(5), SessionId(7)];
        let owners = [1u32, 0, 2, 1];
        let fresh = QueueView::with_owners(&order, &owners);
        let mut reused = QueueView::default();
        // Rebuild over stale content to prove the clear is complete.
        reused.rebuild(&[SessionId(99)], &[9]);
        reused.rebuild(&order, &owners);
        assert_eq!(reused.len(), fresh.len());
        assert_eq!(
            reused.head(10).collect::<Vec<_>>(),
            fresh.head(10).collect::<Vec<_>>()
        );
        for &sid in &[SessionId(5), SessionId(6), SessionId(7), SessionId(99)] {
            assert_eq!(reused.position(sid), fresh.position(sid));
            assert_eq!(reused.owner(sid), fresh.owner(sid));
        }
        // Duplicates keep the earliest occurrence's position and owner.
        assert_eq!(reused.position(SessionId(5)), Some(0));
        assert_eq!(reused.owner(SessionId(5)), Some(1));
    }

    #[test]
    fn queue_view_duplicate_sessions_keep_earliest_position() {
        let q = QueueView::new(&[SessionId(5), SessionId(6), SessionId(5)]);
        assert_eq!(q.position(SessionId(5)), Some(0));
        assert_eq!(q.len(), 3);
        assert_eq!(
            q.head(2).collect::<Vec<_>>(),
            vec![SessionId(5), SessionId(6)]
        );
    }
}
