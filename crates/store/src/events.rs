//! Store trace events: an observer hook over the AttentionStore.
//!
//! Every placement decision the store makes — where a save landed, which
//! tier a fetch hit, what got promoted, demoted or evicted and at which
//! look-ahead window position — is reported as a [`StoreEvent`] through
//! the [`StoreObserver`] hook. Observation is strictly read-only: events
//! describe state changes *after* they are committed, and nothing an
//! observer does can alter the store's behavior (the golden-report
//! fixtures hold with or without tracing enabled).
//!
//! Tiers are identified by their [`TierId`] index into the configured
//! stack; the [`StoreEvent::TierConfig`] records emitted when tracing is
//! enabled map each index to its display name and capacity, so trace
//! consumers can label tracks without hard-coding a hierarchy.
//!
//! The serving engine drains these events through
//! [`StorePlanner::drain_events`](crate::StorePlanner::drain_events) and
//! merges them with its own pipeline events into one causally-ordered
//! trace; a few variants ([`StoreEvent::PrefetchCompleted`],
//! [`StoreEvent::WriteBufferStall`]) are emitted by the engine itself
//! because only the transfer stage knows the link timings involved.

use serde::{Serialize, Value};
use sim::Time;

use crate::TierId;

/// Why a below-tier-0 entry was promoted up to the staging tier.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FetchKind {
    /// Demand fetch: an admitted job needed its KV right now.
    Demand,
    /// Look-ahead prefetch (§3.3.1): the job was still queued.
    Prefetch,
}

impl FetchKind {
    /// Lowercase label used in serialized traces.
    pub fn label(self) -> &'static str {
        match self {
            FetchKind::Demand => "demand",
            FetchKind::Prefetch => "prefetch",
        }
    }
}

/// One observable decision of the AttentionStore (plus the two
/// engine-emitted transfer-timing variants; see the module docs).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum StoreEvent {
    /// Tier `tier` of the configured stack is named `name` and holds
    /// `capacity` bytes. Emitted once per tier when tracing is enabled,
    /// before any other event, so trace consumers can resolve
    /// [`TierId`] indices to labels.
    TierConfig {
        /// Tier index, fastest first.
        tier: TierId,
        /// The tier's display name from its `TierSpec`.
        name: &'static str,
        /// The tier's capacity in bytes.
        capacity: u64,
        /// Virtual time tracing was enabled.
        at: Time,
    },
    /// A session's KV was saved (or updated) into `tier`.
    Saved {
        /// External session id.
        session: u64,
        /// Stored payload size.
        bytes: u64,
        /// Tier the save landed in (below tier 0 = spill, §3.3.1's write
        /// stream).
        tier: TierId,
        /// Virtual commit time.
        at: Time,
    },
    /// A save could not fit anywhere and was rejected.
    SaveRejected {
        /// External session id.
        session: u64,
        /// Payload size that did not fit.
        bytes: u64,
        /// Virtual time of the attempt.
        at: Time,
    },
    /// A demand lookup found the session's KV in `tier`.
    FetchHit {
        /// External session id.
        session: u64,
        /// Tier the KV was found in (before any promotion).
        tier: TierId,
        /// Cached payload size.
        bytes: u64,
        /// Virtual lookup time.
        at: Time,
    },
    /// A demand lookup found nothing cached.
    FetchMiss {
        /// External session id.
        session: u64,
        /// Virtual lookup time.
        at: Time,
    },
    /// A session's KV was promoted up to the staging tier. The movement
    /// is physically hop-by-adjacent-tier (`from` → `from-1` → ... →
    /// `to`); one event covers the whole journey and the per-hop
    /// transfers carry the link charges.
    Promoted {
        /// External session id.
        session: u64,
        /// Payload size moved.
        bytes: u64,
        /// Demand fetch or look-ahead prefetch.
        kind: FetchKind,
        /// Tier the KV was resident in before the journey.
        from: TierId,
        /// Destination tier (tier 0 today).
        to: TierId,
        /// The session's scheduler-queue position when prefetched.
        queue_pos: Option<usize>,
        /// The serving instance whose queue motivated the move, when the
        /// store was consulted with an owner-attributed queue view.
        instance: Option<u32>,
        /// Virtual time the movement was planned (the engine charges the
        /// actual link time).
        at: Time,
    },
    /// A session's KV was demoted one hop to the adjacent slower tier to
    /// make room.
    Demoted {
        /// External session id.
        session: u64,
        /// Payload size moved.
        bytes: u64,
        /// Tier the KV left.
        from: TierId,
        /// The adjacent slower tier it landed in (`from + 1`).
        to: TierId,
        /// The serving instance whose queue holds the victim, if queued on
        /// an owner-attributed view.
        instance: Option<u32>,
        /// Virtual commit time.
        at: Time,
    },
    /// A session's KV was evicted out of tier `tier` (out of the system)
    /// under capacity pressure.
    Evicted {
        /// External session id.
        session: u64,
        /// Payload size dropped.
        bytes: u64,
        /// The tier the entry was evicted from (the stack's bottom tier).
        tier: TierId,
        /// The victim's position in the scheduler queue, if it was queued
        /// at all (scheduler-aware eviction prefers unqueued victims, so
        /// `Some` here means every candidate was inside the window).
        window_pos: Option<usize>,
        /// The serving instance whose queue holds the victim, if queued on
        /// an owner-attributed view.
        instance: Option<u32>,
        /// Virtual commit time.
        at: Time,
    },
    /// An entry was dropped outright from `tier` because the tier below
    /// could not make room for its demotion.
    Dropped {
        /// External session id.
        session: u64,
        /// Payload size dropped.
        bytes: u64,
        /// The tier the entry was dropped from.
        tier: TierId,
        /// Virtual commit time.
        at: Time,
    },
    /// A session's KV expired by TTL.
    Expired {
        /// External session id.
        session: u64,
        /// Virtual sweep time.
        at: Time,
    },
    /// One tier's occupancy after a batch of store operations (a gauge,
    /// emitted once per tier per drained interaction rather than per
    /// block move).
    Occupancy {
        /// Tier index the sample describes.
        tier: TierId,
        /// Bytes resident in the tier (whole blocks).
        used_bytes: u64,
        /// Virtual sample time.
        at: Time,
    },
    /// A prefetched session's KV finished staging into the fast tier
    /// (engine-emitted: the store plans the move, the transfer stage
    /// knows when the link completes it).
    PrefetchCompleted {
        /// External session id.
        session: u64,
        /// The serving instance whose queue the prefetch targets, when
        /// known.
        instance: Option<u32>,
        /// Virtual staging-completion time.
        at: Time,
    },
    /// Admission stalled because the HBM write buffer was still draining
    /// (§3.2.2; engine-emitted).
    WriteBufferStall {
        /// External session id of the stalled job.
        session: u64,
        /// Earliest time the buffer will have drained.
        until: Time,
        /// Virtual time of the stalled attempt.
        at: Time,
    },
    /// A slow-tier read attempt errored (fault injection) and will be
    /// retried after exponential backoff.
    ReadRetry {
        /// External session id.
        session: u64,
        /// 0-based retry number about to run.
        attempt: u32,
        /// Virtual time of the failed attempt.
        at: Time,
    },
    /// A slow-tier read exhausted its retry budget; the session's cached
    /// KV is invalidated and the turn degrades to RE-style re-prefill.
    ReadFailed {
        /// External session id.
        session: u64,
        /// Total attempts made (initial + retries).
        attempts: u32,
        /// Virtual time of the final failure.
        at: Time,
    },
    /// A save-path write attempt errored (fault injection) and will be
    /// retried after exponential backoff.
    WriteRetry {
        /// External session id.
        session: u64,
        /// 0-based retry number about to run.
        attempt: u32,
        /// Virtual time of the failed attempt.
        at: Time,
    },
    /// A save exhausted its retry budget; the session's KV is not stored
    /// (its next turn re-prefills from scratch).
    WriteFailed {
        /// External session id.
        session: u64,
        /// Total attempts made (initial + retries).
        attempts: u32,
        /// Virtual time of the final failure.
        at: Time,
    },
    /// The integrity checksum over a loaded entry's saved KV metadata did
    /// not match: the entry is invalidated and the session degrades to
    /// RE-style re-prefill.
    CorruptionDetected {
        /// External session id.
        session: u64,
        /// Size of the corrupted payload.
        bytes: u64,
        /// Virtual detection time.
        at: Time,
    },
    /// The store runs in content-addressed block keying. Emitted once
    /// alongside the `tier_config` records when tracing is enabled, so
    /// trace consumers know to expect (and validate) block events;
    /// per-session traces never carry it.
    BlockConfig {
        /// Dedup chunk granularity in tokens.
        block_tokens: u64,
        /// Virtual time tracing was enabled.
        at: Time,
    },
    /// A content-addressed save committed: how much of the chain was
    /// written fresh vs shared with already-stored blocks.
    BlockSaved {
        /// External session id.
        session: u64,
        /// Chunks allocated fresh by this save.
        new_blocks: u64,
        /// Chunks that resolved to an already-stored node.
        dedup_blocks: u64,
        /// Bytes physically written.
        bytes_written: u64,
        /// Bytes *not* written thanks to dedup.
        bytes_saved: u64,
        /// Virtual commit time.
        at: Time,
    },
    /// A consult matched a stored prefix in the content-addressed trie.
    BlockDedupHit {
        /// External session id of the resuming turn.
        session: u64,
        /// Blocks of the context covered by stored KV.
        matched_blocks: u64,
        /// Bytes of the matched prefix.
        bytes: u64,
        /// Virtual lookup time.
        at: Time,
    },
    /// A session's tokens forked from a chain it previously referenced
    /// (copy-on-divergence): the suffix from `at_block` was released,
    /// never mutated in place.
    BlockDiverged {
        /// External session id.
        session: u64,
        /// First chain position that diverged.
        at_block: u64,
        /// Chain references released from that position on.
        released_blocks: u64,
        /// Virtual commit time.
        at: Time,
    },
    /// A block node was demoted one hop to the adjacent slower tier to
    /// make room. No single session owns a shared node, so the event is
    /// tier-wide (the paired transfer carries attribution).
    BlockDemoted {
        /// Allocation blocks moved.
        blocks: u64,
        /// Payload size moved.
        bytes: u64,
        /// Tier the node left.
        from: TierId,
        /// The adjacent slower tier it landed in (`from + 1`).
        to: TierId,
        /// Virtual commit time.
        at: Time,
    },
    /// An unreferenced block node was reclaimed out of the system — the
    /// refcounted eviction path. `refs` is always 0: a node still
    /// referenced by any live chain is never evicted, only demoted.
    BlockEvicted {
        /// Allocation blocks freed.
        blocks: u64,
        /// Payload size freed.
        bytes: u64,
        /// The tier the node was reclaimed from.
        tier: TierId,
        /// Chain references at eviction time (always 0 by invariant;
        /// recorded so trace validation can assert it).
        refs: u64,
        /// Virtual commit time.
        at: Time,
    },
}

impl StoreEvent {
    /// Snake-case name of the variant, used as the `kind` field in
    /// serialized traces.
    pub fn kind(&self) -> &'static str {
        match self {
            StoreEvent::TierConfig { .. } => "tier_config",
            StoreEvent::Saved { .. } => "saved",
            StoreEvent::SaveRejected { .. } => "save_rejected",
            StoreEvent::FetchHit { .. } => "fetch_hit",
            StoreEvent::FetchMiss { .. } => "fetch_miss",
            StoreEvent::Promoted { .. } => "promoted",
            StoreEvent::Demoted { .. } => "demoted",
            StoreEvent::Evicted { .. } => "evicted",
            StoreEvent::Dropped { .. } => "dropped",
            StoreEvent::Expired { .. } => "expired",
            StoreEvent::Occupancy { .. } => "occupancy",
            StoreEvent::PrefetchCompleted { .. } => "prefetch_completed",
            StoreEvent::WriteBufferStall { .. } => "write_buffer_stall",
            StoreEvent::ReadRetry { .. } => "read_retry",
            StoreEvent::ReadFailed { .. } => "read_failed",
            StoreEvent::WriteRetry { .. } => "write_retry",
            StoreEvent::WriteFailed { .. } => "write_failed",
            StoreEvent::CorruptionDetected { .. } => "corruption_detected",
            StoreEvent::BlockConfig { .. } => "block_config",
            StoreEvent::BlockSaved { .. } => "block_saved",
            StoreEvent::BlockDedupHit { .. } => "block_dedup_hit",
            StoreEvent::BlockDiverged { .. } => "block_diverged",
            StoreEvent::BlockDemoted { .. } => "block_demoted",
            StoreEvent::BlockEvicted { .. } => "block_evicted",
        }
    }

    /// Coarse category: `cache` (save/fetch lifecycle), `tiering`
    /// (promote/demote/evict movements), `gauge` (occupancy samples and
    /// tier configuration), `stall` (write-buffer backpressure) or
    /// `fault` (injected-failure retries, exhaustions and corruption
    /// detections).
    pub fn category(&self) -> &'static str {
        match self {
            StoreEvent::Saved { .. }
            | StoreEvent::SaveRejected { .. }
            | StoreEvent::FetchHit { .. }
            | StoreEvent::FetchMiss { .. }
            | StoreEvent::Expired { .. }
            | StoreEvent::BlockSaved { .. }
            | StoreEvent::BlockDedupHit { .. }
            | StoreEvent::BlockDiverged { .. } => "cache",
            StoreEvent::Promoted { .. }
            | StoreEvent::Demoted { .. }
            | StoreEvent::Evicted { .. }
            | StoreEvent::Dropped { .. }
            | StoreEvent::PrefetchCompleted { .. }
            | StoreEvent::BlockDemoted { .. }
            | StoreEvent::BlockEvicted { .. } => "tiering",
            StoreEvent::TierConfig { .. }
            | StoreEvent::Occupancy { .. }
            | StoreEvent::BlockConfig { .. } => "gauge",
            StoreEvent::WriteBufferStall { .. } => "stall",
            StoreEvent::ReadRetry { .. }
            | StoreEvent::ReadFailed { .. }
            | StoreEvent::WriteRetry { .. }
            | StoreEvent::WriteFailed { .. }
            | StoreEvent::CorruptionDetected { .. } => "fault",
        }
    }

    /// The event's virtual timestamp.
    pub fn at(&self) -> Time {
        match *self {
            StoreEvent::TierConfig { at, .. }
            | StoreEvent::Saved { at, .. }
            | StoreEvent::SaveRejected { at, .. }
            | StoreEvent::FetchHit { at, .. }
            | StoreEvent::FetchMiss { at, .. }
            | StoreEvent::Promoted { at, .. }
            | StoreEvent::Demoted { at, .. }
            | StoreEvent::Evicted { at, .. }
            | StoreEvent::Dropped { at, .. }
            | StoreEvent::Expired { at, .. }
            | StoreEvent::Occupancy { at, .. }
            | StoreEvent::PrefetchCompleted { at, .. }
            | StoreEvent::WriteBufferStall { at, .. }
            | StoreEvent::ReadRetry { at, .. }
            | StoreEvent::ReadFailed { at, .. }
            | StoreEvent::WriteRetry { at, .. }
            | StoreEvent::WriteFailed { at, .. }
            | StoreEvent::CorruptionDetected { at, .. }
            | StoreEvent::BlockConfig { at, .. }
            | StoreEvent::BlockSaved { at, .. }
            | StoreEvent::BlockDedupHit { at, .. }
            | StoreEvent::BlockDiverged { at, .. }
            | StoreEvent::BlockDemoted { at, .. }
            | StoreEvent::BlockEvicted { at, .. } => at,
        }
    }

    /// The session the event concerns (`None` for tier-wide gauges).
    pub fn session(&self) -> Option<u64> {
        match *self {
            StoreEvent::Saved { session, .. }
            | StoreEvent::SaveRejected { session, .. }
            | StoreEvent::FetchHit { session, .. }
            | StoreEvent::FetchMiss { session, .. }
            | StoreEvent::Promoted { session, .. }
            | StoreEvent::Demoted { session, .. }
            | StoreEvent::Evicted { session, .. }
            | StoreEvent::Dropped { session, .. }
            | StoreEvent::Expired { session, .. }
            | StoreEvent::PrefetchCompleted { session, .. }
            | StoreEvent::WriteBufferStall { session, .. }
            | StoreEvent::ReadRetry { session, .. }
            | StoreEvent::ReadFailed { session, .. }
            | StoreEvent::WriteRetry { session, .. }
            | StoreEvent::WriteFailed { session, .. }
            | StoreEvent::CorruptionDetected { session, .. }
            | StoreEvent::BlockSaved { session, .. }
            | StoreEvent::BlockDedupHit { session, .. }
            | StoreEvent::BlockDiverged { session, .. } => Some(session),
            StoreEvent::TierConfig { .. }
            | StoreEvent::Occupancy { .. }
            | StoreEvent::BlockConfig { .. }
            | StoreEvent::BlockDemoted { .. }
            | StoreEvent::BlockEvicted { .. } => None,
        }
    }

    /// The serving instance the event is attributed to (the owner of the
    /// target session in the merged queue view), when one was known.
    pub fn instance(&self) -> Option<u32> {
        match *self {
            StoreEvent::Promoted { instance, .. }
            | StoreEvent::Demoted { instance, .. }
            | StoreEvent::Evicted { instance, .. }
            | StoreEvent::PrefetchCompleted { instance, .. } => instance,
            _ => None,
        }
    }
}

/// Builds the serialized payload fields shared by most variants.
fn fields(pairs: Vec<(&str, Value)>) -> Value {
    Value::Object(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

fn secs(t: Time) -> Value {
    Value::F64(t.as_secs_f64())
}

fn tier_index(t: TierId) -> Value {
    Value::U64(t.0 as u64)
}

/// Appends `("instance", id)` only when attribution is present, keeping
/// single-instance serializations byte-identical to the pre-cluster form.
fn push_instance(pairs: &mut Vec<(&str, Value)>, instance: Option<u32>) {
    if let Some(i) = instance {
        pairs.push(("instance", Value::U64(u64::from(i))));
    }
}

impl Serialize for StoreEvent {
    /// Serializes as a tagged object: `kind` first, payload fields next,
    /// the timestamp (`at`, fractional seconds) last. Tier references are
    /// bare [`TierId`] indices; `tier_config` records carry the
    /// index→name mapping.
    fn to_value(&self) -> Value {
        let kind = Value::Str(self.kind().to_string());
        match *self {
            StoreEvent::TierConfig {
                tier,
                name,
                capacity,
                at,
            } => fields(vec![
                ("kind", kind),
                ("tier", tier_index(tier)),
                ("name", Value::Str(name.to_string())),
                ("capacity", Value::U64(capacity)),
                ("at", secs(at)),
            ]),
            StoreEvent::Saved {
                session,
                bytes,
                tier,
                at,
            } => fields(vec![
                ("kind", kind),
                ("session", Value::U64(session)),
                ("bytes", Value::U64(bytes)),
                ("tier", tier_index(tier)),
                ("at", secs(at)),
            ]),
            StoreEvent::SaveRejected { session, bytes, at } => fields(vec![
                ("kind", kind),
                ("session", Value::U64(session)),
                ("bytes", Value::U64(bytes)),
                ("at", secs(at)),
            ]),
            StoreEvent::FetchHit {
                session,
                tier,
                bytes,
                at,
            } => fields(vec![
                ("kind", kind),
                ("session", Value::U64(session)),
                ("tier", tier_index(tier)),
                ("bytes", Value::U64(bytes)),
                ("at", secs(at)),
            ]),
            StoreEvent::FetchMiss { session, at } => fields(vec![
                ("kind", kind),
                ("session", Value::U64(session)),
                ("at", secs(at)),
            ]),
            StoreEvent::Promoted {
                session,
                bytes,
                kind: fetch,
                from,
                to,
                queue_pos,
                instance,
                at,
            } => {
                let mut pairs = vec![
                    ("kind", kind),
                    ("session", Value::U64(session)),
                    ("bytes", Value::U64(bytes)),
                    ("fetch", Value::Str(fetch.label().to_string())),
                    ("from", tier_index(from)),
                    ("to", tier_index(to)),
                    (
                        "queue_pos",
                        match queue_pos {
                            Some(p) => Value::U64(p as u64),
                            None => Value::Null,
                        },
                    ),
                ];
                push_instance(&mut pairs, instance);
                pairs.push(("at", secs(at)));
                fields(pairs)
            }
            StoreEvent::Demoted {
                session,
                bytes,
                from,
                to,
                instance,
                at,
            } => {
                let mut pairs = vec![
                    ("kind", kind),
                    ("session", Value::U64(session)),
                    ("bytes", Value::U64(bytes)),
                    ("from", tier_index(from)),
                    ("to", tier_index(to)),
                ];
                push_instance(&mut pairs, instance);
                pairs.push(("at", secs(at)));
                fields(pairs)
            }
            StoreEvent::Evicted {
                session,
                bytes,
                tier,
                window_pos,
                instance,
                at,
            } => {
                let mut pairs = vec![
                    ("kind", kind),
                    ("session", Value::U64(session)),
                    ("bytes", Value::U64(bytes)),
                    ("tier", tier_index(tier)),
                    (
                        "window_pos",
                        match window_pos {
                            Some(p) => Value::U64(p as u64),
                            None => Value::Null,
                        },
                    ),
                ];
                push_instance(&mut pairs, instance);
                pairs.push(("at", secs(at)));
                fields(pairs)
            }
            StoreEvent::Dropped {
                session,
                bytes,
                tier,
                at,
            } => fields(vec![
                ("kind", kind),
                ("session", Value::U64(session)),
                ("bytes", Value::U64(bytes)),
                ("tier", tier_index(tier)),
                ("at", secs(at)),
            ]),
            StoreEvent::Expired { session, at } => fields(vec![
                ("kind", kind),
                ("session", Value::U64(session)),
                ("at", secs(at)),
            ]),
            StoreEvent::Occupancy {
                tier,
                used_bytes,
                at,
            } => fields(vec![
                ("kind", kind),
                ("tier", tier_index(tier)),
                ("used_bytes", Value::U64(used_bytes)),
                ("at", secs(at)),
            ]),
            StoreEvent::PrefetchCompleted {
                session,
                instance,
                at,
            } => {
                let mut pairs = vec![("kind", kind), ("session", Value::U64(session))];
                push_instance(&mut pairs, instance);
                pairs.push(("at", secs(at)));
                fields(pairs)
            }
            StoreEvent::WriteBufferStall { session, until, at } => fields(vec![
                ("kind", kind),
                ("session", Value::U64(session)),
                ("until", secs(until)),
                ("at", secs(at)),
            ]),
            StoreEvent::ReadRetry {
                session,
                attempt,
                at,
            }
            | StoreEvent::WriteRetry {
                session,
                attempt,
                at,
            } => fields(vec![
                ("kind", kind),
                ("session", Value::U64(session)),
                ("attempt", Value::U64(u64::from(attempt))),
                ("at", secs(at)),
            ]),
            StoreEvent::ReadFailed {
                session,
                attempts,
                at,
            }
            | StoreEvent::WriteFailed {
                session,
                attempts,
                at,
            } => fields(vec![
                ("kind", kind),
                ("session", Value::U64(session)),
                ("attempts", Value::U64(u64::from(attempts))),
                ("at", secs(at)),
            ]),
            StoreEvent::CorruptionDetected { session, bytes, at } => fields(vec![
                ("kind", kind),
                ("session", Value::U64(session)),
                ("bytes", Value::U64(bytes)),
                ("at", secs(at)),
            ]),
            StoreEvent::BlockConfig { block_tokens, at } => fields(vec![
                ("kind", kind),
                ("block_tokens", Value::U64(block_tokens)),
                ("at", secs(at)),
            ]),
            StoreEvent::BlockSaved {
                session,
                new_blocks,
                dedup_blocks,
                bytes_written,
                bytes_saved,
                at,
            } => fields(vec![
                ("kind", kind),
                ("session", Value::U64(session)),
                ("new_blocks", Value::U64(new_blocks)),
                ("dedup_blocks", Value::U64(dedup_blocks)),
                ("bytes_written", Value::U64(bytes_written)),
                ("bytes_saved", Value::U64(bytes_saved)),
                ("at", secs(at)),
            ]),
            StoreEvent::BlockDedupHit {
                session,
                matched_blocks,
                bytes,
                at,
            } => fields(vec![
                ("kind", kind),
                ("session", Value::U64(session)),
                ("matched_blocks", Value::U64(matched_blocks)),
                ("bytes", Value::U64(bytes)),
                ("at", secs(at)),
            ]),
            StoreEvent::BlockDiverged {
                session,
                at_block,
                released_blocks,
                at,
            } => fields(vec![
                ("kind", kind),
                ("session", Value::U64(session)),
                ("at_block", Value::U64(at_block)),
                ("released_blocks", Value::U64(released_blocks)),
                ("at", secs(at)),
            ]),
            StoreEvent::BlockDemoted {
                blocks,
                bytes,
                from,
                to,
                at,
            } => fields(vec![
                ("kind", kind),
                ("blocks", Value::U64(blocks)),
                ("bytes", Value::U64(bytes)),
                ("from", tier_index(from)),
                ("to", tier_index(to)),
                ("at", secs(at)),
            ]),
            StoreEvent::BlockEvicted {
                blocks,
                bytes,
                tier,
                refs,
                at,
            } => fields(vec![
                ("kind", kind),
                ("blocks", Value::U64(blocks)),
                ("bytes", Value::U64(bytes)),
                ("tier", tier_index(tier)),
                ("refs", Value::U64(refs)),
                ("at", secs(at)),
            ]),
        }
    }
}

/// A sink for [`StoreEvent`]s.
pub trait StoreObserver {
    /// Called after the store commits the observed decision.
    fn on_store_event(&mut self, ev: StoreEvent);
}

/// The default observer: discards everything, costs nothing.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullStoreObserver;

impl StoreObserver for NullStoreObserver {
    fn on_store_event(&mut self, _ev: StoreEvent) {}
}

/// A Vec-collecting observer; the AttentionStore uses one internally as
/// its drainable event buffer when tracing is enabled.
#[derive(Debug, Clone, Default)]
pub struct StoreEventLog {
    events: Vec<StoreEvent>,
}

impl StoreEventLog {
    /// Creates an empty log.
    pub fn new() -> Self {
        StoreEventLog::default()
    }

    /// All collected events, in commit order.
    pub fn events(&self) -> &[StoreEvent] {
        &self.events
    }

    /// Takes the collected events, leaving the log empty.
    pub fn drain(&mut self) -> Vec<StoreEvent> {
        std::mem::take(&mut self.events)
    }
}

impl StoreObserver for StoreEventLog {
    fn on_store_event(&mut self, ev: StoreEvent) {
        self.events.push(ev);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log_collects_and_drains() {
        let mut log = StoreEventLog::new();
        log.on_store_event(StoreEvent::FetchMiss {
            session: 4,
            at: Time::ZERO,
        });
        log.on_store_event(StoreEvent::Saved {
            session: 4,
            bytes: 10,
            tier: TierId(0),
            at: Time::from_millis(5),
        });
        assert_eq!(log.events().len(), 2);
        let drained = log.drain();
        assert_eq!(drained.len(), 2);
        assert!(log.events().is_empty());
        assert_eq!(drained[0].session(), Some(4));
        assert_eq!(drained[1].kind(), "saved");
        assert_eq!(drained[1].category(), "cache");
    }

    #[test]
    fn serializes_as_tagged_objects() {
        let ev = StoreEvent::Promoted {
            session: 9,
            bytes: 1_000,
            kind: FetchKind::Prefetch,
            from: TierId(1),
            to: TierId(0),
            queue_pos: Some(2),
            instance: None,
            at: Time::from_secs_f64(1.5),
        };
        let json = serde_json::to_string(&ev).unwrap();
        assert_eq!(
            json,
            "{\"kind\":\"promoted\",\"session\":9,\"bytes\":1000,\
             \"fetch\":\"prefetch\",\"from\":1,\"to\":0,\"queue_pos\":2,\"at\":1.5}"
        );
        let tagged = StoreEvent::Promoted {
            session: 9,
            bytes: 1_000,
            kind: FetchKind::Prefetch,
            from: TierId(1),
            to: TierId(0),
            queue_pos: Some(2),
            instance: Some(3),
            at: Time::from_secs_f64(1.5),
        };
        assert_eq!(
            serde_json::to_string(&tagged).unwrap(),
            "{\"kind\":\"promoted\",\"session\":9,\"bytes\":1000,\
             \"fetch\":\"prefetch\",\"from\":1,\"to\":0,\"queue_pos\":2,\
             \"instance\":3,\"at\":1.5}"
        );
        let gauge = StoreEvent::Occupancy {
            tier: TierId(0),
            used_bytes: 7,
            at: Time::ZERO,
        };
        assert_eq!(
            serde_json::to_string(&gauge).unwrap(),
            "{\"kind\":\"occupancy\",\"tier\":0,\"used_bytes\":7,\"at\":0.0}"
        );
        assert_eq!(gauge.category(), "gauge");
        assert_eq!(gauge.session(), None);
    }

    #[test]
    fn tier_config_maps_indices_to_names() {
        let ev = StoreEvent::TierConfig {
            tier: TierId(1),
            name: "pooled",
            capacity: 64,
            at: Time::ZERO,
        };
        assert_eq!(ev.kind(), "tier_config");
        assert_eq!(ev.category(), "gauge");
        assert_eq!(ev.session(), None);
        assert_eq!(
            serde_json::to_string(&ev).unwrap(),
            "{\"kind\":\"tier_config\",\"tier\":1,\"name\":\"pooled\",\
             \"capacity\":64,\"at\":0.0}"
        );
    }

    #[test]
    fn block_events_serialize_and_categorize() {
        let hit = StoreEvent::BlockDedupHit {
            session: 3,
            matched_blocks: 5,
            bytes: 640,
            at: Time::from_secs_f64(2.5),
        };
        assert_eq!(hit.kind(), "block_dedup_hit");
        assert_eq!(hit.category(), "cache");
        assert_eq!(hit.session(), Some(3));
        assert_eq!(
            serde_json::to_string(&hit).unwrap(),
            "{\"kind\":\"block_dedup_hit\",\"session\":3,\
             \"matched_blocks\":5,\"bytes\":640,\"at\":2.5}"
        );
        let evicted = StoreEvent::BlockEvicted {
            blocks: 2,
            bytes: 320,
            tier: TierId(1),
            refs: 0,
            at: Time::ZERO,
        };
        assert_eq!(evicted.category(), "tiering");
        assert_eq!(evicted.session(), None);
        assert_eq!(
            serde_json::to_string(&evicted).unwrap(),
            "{\"kind\":\"block_evicted\",\"blocks\":2,\"bytes\":320,\
             \"tier\":1,\"refs\":0,\"at\":0.0}"
        );
        let cfg = StoreEvent::BlockConfig {
            block_tokens: 128,
            at: Time::ZERO,
        };
        assert_eq!(cfg.category(), "gauge");
        assert_eq!(cfg.session(), None);
        let div = StoreEvent::BlockDiverged {
            session: 8,
            at_block: 2,
            released_blocks: 3,
            at: Time::ZERO,
        };
        assert_eq!(div.category(), "cache");
        assert_eq!(
            serde_json::to_string(&div).unwrap(),
            "{\"kind\":\"block_diverged\",\"session\":8,\"at_block\":2,\
             \"released_blocks\":3,\"at\":0.0}"
        );
        let saved = StoreEvent::BlockSaved {
            session: 8,
            new_blocks: 1,
            dedup_blocks: 4,
            bytes_written: 100,
            bytes_saved: 400,
            at: Time::ZERO,
        };
        assert_eq!(saved.category(), "cache");
        let dem = StoreEvent::BlockDemoted {
            blocks: 1,
            bytes: 128,
            from: TierId(0),
            to: TierId(1),
            at: Time::ZERO,
        };
        assert_eq!(dem.category(), "tiering");
        assert_eq!(dem.session(), None);
    }

    #[test]
    fn timestamps_and_kinds_are_exposed() {
        let ev = StoreEvent::WriteBufferStall {
            session: 1,
            until: Time::from_secs_f64(2.0),
            at: Time::from_secs_f64(1.0),
        };
        assert_eq!(ev.at(), Time::from_secs_f64(1.0));
        assert_eq!(ev.kind(), "write_buffer_stall");
        assert_eq!(ev.category(), "stall");
    }
}
