//! Property and behavior tests for the content-addressed block ledger.
//!
//! The ledger's structural invariants (refcount and pin conservation,
//! trie/slab agreement, pool accounting) are checked by
//! `AttentionStore::validate_blocks` after every operation of a random
//! sequence; the directed tests pin down the lifecycle rules the
//! invariants alone cannot express — copy-on-divergence never touching
//! a shared block, pinned chains surviving capacity pressure, and
//! per-session keying reducing to a ledger-free store.

use models::TierStack;
use proptest::prelude::*;
use sim::Time;
use store::{
    AttentionStore, ContentKey, KeyingMode, Lookup, PolicyKind, QueueView, SessionId, StoreConfig,
    StoreEvent, TierId,
};

const MB: u64 = 1_000_000;
/// Bytes of KV per token in these tests (arbitrary, but fixed so token
/// counts translate to predictable pressure).
const BPT: u64 = 10_000;

fn block_store(keying: KeyingMode) -> AttentionStore {
    AttentionStore::new(StoreConfig {
        tiers: TierStack::two_tier(20 * MB, 60 * MB),
        block_bytes: MB,
        policy: PolicyKind::SchedulerAware,
        keying,
        block_tokens: 128,
        ttl: None,
        dram_reserve_fraction: 0.0,
        default_session_bytes: MB,
    })
}

fn sid(n: u64) -> SessionId {
    SessionId(n)
}

/// Two pools of sessions sharing a 256-token prefix: even sessions in
/// pool 0, odd in pool 1. Private tails never collide.
fn pooled_key(n: u64) -> ContentKey {
    ContentKey {
        shared_seed: 1_000 + n % 2,
        shared_tokens: 256,
        private_seed: 7_000 + n,
        generation: 0,
    }
}

/// One scripted operation against the store, decoded from proptest
/// draws: `(op selector, session, token count)`.
fn apply_op(s: &mut AttentionStore, op: u64, n: u64, tokens: u64, step: usize) {
    let now = Time::from_millis(step as u64);
    let order: Vec<SessionId> = (0..6).map(sid).collect();
    let q = QueueView::new(&order);
    match op % 6 {
        0 | 1 => {
            // Save dominates the mix so chains actually exist.
            s.register_content(sid(n), pooled_key(n));
            s.save(sid(n), tokens * BPT, tokens, now, &q);
        }
        2 => {
            s.register_content(sid(n), pooled_key(n));
            let _ = s.load_prefix(sid(n), tokens, now, &q);
        }
        3 => s.unpin(sid(n)),
        4 => s.invalidate(sid(n)),
        _ => {
            // Truncation: divergence path. Harmless no-op when the
            // session has nothing stored or is not shrinking.
            s.truncate(sid(n), tokens * BPT / 2, tokens / 2);
        }
    }
    let _ = s.prefetch(now, &q);
}

proptest! {
    /// Any operation sequence leaves the ledger structurally sound:
    /// every node's refcount equals the number of chains referencing
    /// it, every pin is owned by an in-flight consult, the trie maps
    /// exactly the live nodes, and the pools hold exactly the nodes'
    /// blocks.
    #[test]
    fn random_op_sequences_keep_ledger_invariants(
        ops in proptest::collection::vec((0u64..6, 0u64..6, 64u64..512), 1..60)
    ) {
        let mut s = block_store(KeyingMode::ContentAddressed);
        for (step, &(op, n, tokens)) in ops.iter().enumerate() {
            apply_op(&mut s, op, n, tokens, step);
            if let Err(e) = s.validate_blocks() {
                prop_assert!(false, "after step {step} (op {op}): {e}\nops: {ops:?}");
            }
        }
    }

    /// The same sequences under per-session keying never touch the
    /// ledger: dedup statistics stay zero and no block events are
    /// emitted, so a per-session run is byte-for-byte free of the
    /// block machinery.
    #[test]
    fn per_session_reduction_never_touches_the_ledger(
        ops in proptest::collection::vec((0u64..6, 0u64..6, 64u64..512), 1..40)
    ) {
        let mut s = block_store(KeyingMode::PerSession);
        s.set_tracing(true);
        for (step, &(op, n, tokens)) in ops.iter().enumerate() {
            apply_op(&mut s, op, n, tokens, step);
        }
        let d = s.dedup_stats();
        prop_assert_eq!(d.lookup_hits, 0);
        prop_assert_eq!(d.matched_blocks, 0);
        prop_assert_eq!(d.dedup_blocks, 0);
        prop_assert_eq!(d.bytes_saved, 0);
        prop_assert_eq!(d.divergences, 0);
        prop_assert_eq!(d.refcounted_evictions, 0);
        for ev in s.drain_events() {
            let is_block = matches!(
                ev,
                StoreEvent::BlockConfig { .. }
                    | StoreEvent::BlockSaved { .. }
                    | StoreEvent::BlockDedupHit { .. }
                    | StoreEvent::BlockDiverged { .. }
                    | StoreEvent::BlockDemoted { .. }
                    | StoreEvent::BlockEvicted { .. }
            );
            prop_assert!(!is_block, "per-session run emitted {ev:?}");
        }
    }
}

/// Copy-on-divergence: when one sharer's history is rewritten
/// (truncation bumps its content generation), the shared blocks are
/// released by reference, never mutated — the other sharer still
/// matches its full prefix afterwards.
#[test]
fn divergence_never_mutates_shared_blocks() {
    let mut s = block_store(KeyingMode::ContentAddressed);
    let q = QueueView::empty();
    let (a, b) = (sid(0), sid(2)); // same pool (both even)
    s.register_content(a, pooled_key(0));
    s.register_content(b, pooled_key(2));
    s.save(a, 512 * BPT, 512, Time::ZERO, &q);
    s.save(b, 512 * BPT, 512, Time::from_millis(1), &q);
    // The 256-token shared span dedups: b's save wrote less than a's.
    let d = s.dedup_stats();
    assert!(
        d.dedup_blocks > 0,
        "no chunks shared between the pool's sessions"
    );
    assert!(d.bytes_saved > 0);

    // b's history is rewritten in place: every chunk of its old chain
    // is invalid for matching, so its chain forks off a's.
    s.truncate(b, 256 * BPT, 256);
    assert_eq!(s.dedup_stats().divergences, 1);
    s.validate_blocks().expect("ledger sound after divergence");

    // a is untouched: the full 512-token prefix still matches.
    let m = s.load_prefix(a, 512, Time::from_millis(2), &q);
    assert_eq!(m.matched_tokens, 512, "divergence mutated a shared chain");
    assert_ne!(m.lookup, Lookup::Miss);
    s.unpin(a);
    s.validate_blocks().expect("ledger sound after re-consult");
}

/// A pinned chain is exempt from demotion and eviction at every tier:
/// saves from other sessions that overflow the fast tier must demote
/// around the pinned blocks, and the pinned session still matches its
/// full prefix from the fast tier afterwards.
#[test]
fn pinned_chains_survive_capacity_pressure() {
    let mut s = block_store(KeyingMode::ContentAddressed);
    let q = QueueView::empty();
    let a = sid(0);
    s.register_content(a, pooled_key(0));
    s.save(a, 512 * BPT, 512, Time::ZERO, &q);
    // Consult pins a's whole chain in tier 0.
    let m = s.load_prefix(a, 512, Time::from_millis(1), &q);
    assert_eq!(m.matched_tokens, 512);
    assert_eq!(m.lookup, Lookup::Hit(TierId(0)));

    // Storm: 20 MB of DRAM, ~5 MB pinned, then 12 sessions x 4 MB of
    // private chains — far past tier 0 and into tier-1 pressure.
    for i in 1..=12 {
        let other = sid(100 + i);
        s.save(other, 400 * BPT, 400, Time::from_millis(1 + i), &q);
        s.validate_blocks().expect("ledger sound under pressure");
    }

    // The pinned chain never moved: still a full fast-tier match.
    assert_eq!(
        s.lookup(a),
        Lookup::Hit(TierId(0)),
        "pinned chain was demoted"
    );
    s.unpin(a);
    // Once unpinned it is fair game again; the ledger stays sound.
    s.save(sid(200), 400 * BPT, 400, Time::from_millis(50), &q);
    s.validate_blocks().expect("ledger sound after unpin");
}

/// Refcounted eviction only reclaims dead nodes: every `block_evicted`
/// event carries `refs == 0`, even under pressure that forces chain
/// releases at the bottom tier.
#[test]
fn eviction_reclaims_only_unreferenced_nodes() {
    let mut s = block_store(KeyingMode::ContentAddressed);
    s.set_tracing(true);
    let q = QueueView::empty();
    for i in 0..40 {
        let n = sid(i);
        s.register_content(n, pooled_key(i));
        s.save(n, 400 * BPT, 400, Time::from_millis(i), &q);
        // Half the sessions leave: their exclusive tail nodes go dead
        // and become reclaimable.
        if i % 2 == 0 {
            s.invalidate(n);
        }
        s.validate_blocks().expect("ledger sound during churn");
    }
    let mut evictions = 0;
    for ev in s.drain_events() {
        if let StoreEvent::BlockEvicted { refs, .. } = ev {
            assert_eq!(refs, 0, "a referenced node was evicted");
            evictions += 1;
        }
    }
    assert!(evictions > 0, "churn never exercised the eviction path");
}
