//! Causal spans: fold the merged event trace into per-turn span trees.
//!
//! The raw trace is a flat, commit-ordered stream of instants. This
//! module rebuilds the *durations* the paper reasons about — for every
//! turn a well-formed tree
//!
//! ```text
//! turn
//! ├── queue_wait            arrival   → admission
//! │   ├── prefetch          disk→DRAM staging (store-side, owner-attributed)
//! │   └── write_buffer      admission blocked on the HBM write buffer (§3.2.2)
//! ├── prefill               admission → first token
//! │   └── fetch_stall       KV transfer left visible under §3.2.1's preload
//! └── decode                first token → retirement
//! ```
//!
//! plus the causal edges that cross subsystems: the `prefetch` child is
//! the shared store staging KV for this instance's queue, and a
//! rerouted turn keeps one root spanning both instances it touched.
//!
//! On top of the forest sit the paper's observables:
//!
//! - [`TurnSpan::bottleneck`]: the critical-path attribution — which
//!   segment dominated this turn's arrival-to-first-token latency.
//! - [`SpanForest::overlap_efficiency`]: the fraction of KV transfer
//!   time hidden under prefill compute, the direct §3.2.1 observable
//!   (≈ 0 for the RE baseline and for `preload = false` ablations).
//! - [`SpanForest::summary`]: percentiles, per-stage means and per-tier
//!   fetch-latency breakdowns (§3.3), serializable for `exp_profile`
//!   and the `BENCH_profile.json` regression harness.
//!
//! The builder is total: malformed input never panics, it records a
//! human-readable violation instead (the CI `trace_check` gate and the
//! proptests assert the engine never produces one).

use std::collections::HashMap;

use engine::EngineEvent;
use metrics::Histogram;
use serde::Serialize;
use sim::Time;
use store::{FetchKind, StoreEvent};

use crate::trace::{TraceEvent, TraceRecord};

/// One node of a turn's span tree.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Span {
    /// Segment name (`turn`, `queue_wait`, `prefetch`, `write_buffer`,
    /// `prefill`, `fetch_stall`, `decode`).
    pub name: &'static str,
    /// Start of the segment, virtual seconds.
    pub start_secs: f64,
    /// End of the segment, virtual seconds (`>= start_secs`).
    pub end_secs: f64,
    /// Nested sub-segments, non-overlapping and contained in the parent.
    pub children: Vec<Span>,
}

impl Span {
    fn new(name: &'static str, start: f64, end: f64) -> Span {
        Span {
            name,
            start_secs: start,
            end_secs: end,
            children: Vec::new(),
        }
    }

    /// The segment's duration in seconds.
    pub fn secs(&self) -> f64 {
        self.end_secs - self.start_secs
    }
}

/// Which segment dominated a turn's arrival-to-first-token latency.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Bottleneck {
    /// Plain scheduler queueing (HBM residency, batch slots, ordering).
    QueueWait,
    /// Admission blocked on the draining HBM write buffer (§3.2.2).
    WriteBuffer,
    /// KV transfer time left visible despite layer-wise preload (§3.2.1).
    FetchStall,
    /// The prefill computation itself — the floor CachedAttention aims
    /// to get TTFT down to.
    PrefillCompute,
}

impl Bottleneck {
    /// Snake-case label used in summaries.
    pub fn label(self) -> &'static str {
        match self {
            Bottleneck::QueueWait => "queue_wait",
            Bottleneck::WriteBuffer => "write_buffer",
            Bottleneck::FetchStall => "fetch_stall",
            Bottleneck::PrefillCompute => "prefill_compute",
        }
    }
}

/// One turn's reconstructed spans and timing attribution.
#[derive(Debug, Clone, PartialEq)]
pub struct TurnSpan {
    /// External session id.
    pub session: u64,
    /// Zero-based turn index within the session.
    pub turn: usize,
    /// Serving instance that retired the turn (`None` in single-engine
    /// traces collected through the instance-blind observer path).
    pub instance: Option<u32>,
    /// Turn arrival (root start).
    pub arrival: Time,
    /// Admission (prefill issue).
    pub admitted: Time,
    /// First token.
    pub prefill_done: Time,
    /// Retirement (root end).
    pub retired: Time,
    /// Store classification of the reuse (`hit_fast`, `hit_slow`,
    /// `miss`, `no_history`, `no_store`), when consulted.
    pub consult_class: Option<&'static str>,
    /// Tokens of history reused from the store.
    pub reused_tokens: u64,
    /// Tokens prefilled on the GPU.
    pub computed_tokens: u64,
    /// KV transfer time the reuse required, seconds.
    pub load_secs: f64,
    /// Pure prefill compute, seconds.
    pub comp_secs: f64,
    /// Transfer time left visible on the critical path, seconds.
    pub stall_secs: f64,
    /// Admission retries while queued.
    pub deferrals: u64,
    /// Total admission time lost to HBM write-buffer drains, seconds.
    pub write_buffer_secs: f64,
    /// The store-side prefetch that staged this turn's KV, when one ran
    /// (promotion time → staging completion).
    pub prefetch: Option<(Time, Time)>,
    /// Crash reroutes this turn survived.
    pub reroutes: u64,
    /// Whether a cache-path fault degraded the turn to a re-prefill.
    pub degraded: bool,
    /// The assembled span tree (root `turn`).
    pub root: Span,
}

impl TurnSpan {
    /// Arrival → admission, seconds.
    pub fn queue_wait_secs(&self) -> f64 {
        self.admitted.saturating_since(self.arrival).as_secs_f64()
    }

    /// Admission → first token (the report's service TTFT), seconds.
    pub fn ttft_service_secs(&self) -> f64 {
        self.prefill_done
            .saturating_since(self.admitted)
            .as_secs_f64()
    }

    /// Arrival → first token (what the user experiences), seconds.
    pub fn ttft_arrival_secs(&self) -> f64 {
        self.prefill_done
            .saturating_since(self.arrival)
            .as_secs_f64()
    }

    /// First token → retirement, seconds.
    pub fn decode_secs(&self) -> f64 {
        self.retired
            .saturating_since(self.prefill_done)
            .as_secs_f64()
    }

    /// KV transfer time hidden under prefill compute, seconds.
    pub fn hidden_secs(&self) -> f64 {
        (self.load_secs - self.stall_secs).max(0.0)
    }

    /// Critical-path attribution: the segment that contributed most to
    /// this turn's arrival-to-first-token latency. Write-buffer time is
    /// carved out of the queue wait it is part of; ties resolve toward
    /// the earlier pipeline stage.
    pub fn bottleneck(&self) -> Bottleneck {
        let wb = self.write_buffer_secs.min(self.queue_wait_secs());
        let segments = [
            (Bottleneck::QueueWait, self.queue_wait_secs() - wb),
            (Bottleneck::WriteBuffer, wb),
            (Bottleneck::FetchStall, self.stall_secs),
            (Bottleneck::PrefillCompute, self.comp_secs),
        ];
        let mut best = segments[0];
        for seg in &segments[1..] {
            if seg.1 > best.1 {
                best = *seg;
            }
        }
        best.0
    }
}

/// Per-session build state while walking the stream.
struct Pending {
    turn: usize,
    instance: Option<u32>,
    arrival: Time,
    admitted: Option<Time>,
    prefill_done: Option<Time>,
    consult_class: Option<&'static str>,
    reused: u64,
    computed: u64,
    load_secs: f64,
    comp_secs: f64,
    stall_secs: f64,
    deferrals: u64,
    write_buffer: Vec<(Time, Time)>,
    prefetch_open: Option<Time>,
    prefetch: Option<(Time, Time)>,
    reroutes: u64,
    degraded: bool,
}

impl Pending {
    fn new(turn: usize, arrival: Time) -> Pending {
        Pending {
            turn,
            instance: None,
            arrival,
            admitted: None,
            prefill_done: None,
            consult_class: None,
            reused: 0,
            computed: 0,
            load_secs: 0.0,
            comp_secs: 0.0,
            stall_secs: 0.0,
            deferrals: 0,
            write_buffer: Vec::new(),
            prefetch_open: None,
            prefetch: None,
            reroutes: 0,
            degraded: false,
        }
    }
}

/// Every turn's span tree plus any well-formedness violations found
/// while folding the stream.
#[derive(Debug, Clone, Default)]
pub struct SpanForest {
    /// Completed turns, in retirement order.
    pub turns: Vec<TurnSpan>,
    /// Human-readable well-formedness violations (empty for any trace
    /// the engine emits; the proptests and `trace_check` pin this).
    pub violations: Vec<String>,
}

/// Clamps `(start, end)` into `[lo, hi]`; `None` if nothing remains.
fn clamp(start: Time, end: Time, lo: Time, hi: Time) -> Option<(f64, f64)> {
    let s = start.max(lo).min(hi);
    let e = end.max(lo).min(hi);
    if e > s {
        Some((s.as_secs_f64(), e.as_secs_f64()))
    } else {
        None
    }
}

/// Packs labeled intervals into a parent window as non-overlapping
/// children: clamps each to the window, sorts by start, and trims any
/// residual overlap so siblings never intersect.
fn pack_children(lo: Time, hi: Time, items: Vec<(&'static str, Time, Time)>) -> Vec<Span> {
    let mut clamped: Vec<(&'static str, f64, f64)> = items
        .into_iter()
        .filter_map(|(name, s, e)| clamp(s, e, lo, hi).map(|(s, e)| (name, s, e)))
        .collect();
    clamped.sort_by(|a, b| a.1.total_cmp(&b.1));
    let mut out: Vec<Span> = Vec::new();
    for (name, start, end) in clamped {
        let start = match out.last() {
            Some(prev) => start.max(prev.end_secs),
            None => start,
        };
        if end > start {
            out.push(Span::new(name, start, end));
        }
    }
    out
}

impl SpanForest {
    /// Folds a commit-ordered trace into per-turn span trees.
    ///
    /// Records must be in `seq` order (timestamps alone cannot order
    /// the stream: a store `prefetch_completed` carries its future
    /// link-completion time). Crash reroutes restart the turn's
    /// pipeline but keep its single root; the count is recorded on
    /// [`TurnSpan::reroutes`].
    pub fn from_records(records: &[TraceRecord]) -> SpanForest {
        let mut forest = SpanForest::default();
        let mut pending: HashMap<u64, Pending> = HashMap::new();
        for rec in records {
            match rec.ev {
                TraceEvent::Engine(ev) => forest.engine_event(&mut pending, rec.instance, ev),
                TraceEvent::Store(ev) => forest.store_event(&mut pending, ev),
            }
        }
        let mut open: Vec<u64> = pending.keys().copied().collect();
        open.sort_unstable();
        for sid in open {
            forest
                .violations
                .push(format!("session {sid}: turn still open at end of trace"));
        }
        forest
    }

    fn engine_event(
        &mut self,
        pending: &mut HashMap<u64, Pending>,
        instance: Option<u32>,
        ev: EngineEvent,
    ) {
        match ev {
            EngineEvent::TurnArrived { session, turn, at } => {
                if pending.insert(session, Pending::new(turn, at)).is_some() {
                    self.violations
                        .push(format!("session {session}: arrival mid-turn"));
                }
            }
            EngineEvent::Consulted {
                session,
                class,
                reused,
                at: _,
            } => {
                if let Some(p) = pending.get_mut(&session) {
                    p.consult_class = Some(class.label());
                    p.reused = reused;
                }
            }
            EngineEvent::Deferred { session, .. } => {
                if let Some(p) = pending.get_mut(&session) {
                    p.deferrals += 1;
                }
            }
            EngineEvent::Admitted {
                session,
                computed,
                at,
                ..
            } => match pending.get_mut(&session) {
                Some(p) if p.admitted.is_none() => {
                    p.admitted = Some(at);
                    p.computed = computed;
                    p.instance = instance.or(p.instance);
                }
                Some(_) => self
                    .violations
                    .push(format!("session {session}: double admission")),
                None => self
                    .violations
                    .push(format!("session {session}: admission without arrival")),
            },
            EngineEvent::PrefillTimed {
                session,
                load_secs,
                comp_secs,
                stall_secs,
                ..
            } => {
                if let Some(p) = pending.get_mut(&session) {
                    p.load_secs = load_secs;
                    p.comp_secs = comp_secs;
                    p.stall_secs = stall_secs;
                }
            }
            EngineEvent::PrefillDone { session, at, .. } => match pending.get_mut(&session) {
                Some(p) if p.admitted.is_some() && p.prefill_done.is_none() => {
                    p.prefill_done = Some(at);
                }
                _ => self
                    .violations
                    .push(format!("session {session}: first token without admission")),
            },
            EngineEvent::Retired { session, at, .. } => match pending.remove(&session) {
                Some(p) => self.finish_turn(session, p, at),
                None => self
                    .violations
                    .push(format!("session {session}: retirement without arrival")),
            },
            EngineEvent::TurnRerouted { session, to, .. } => match pending.get_mut(&session) {
                Some(p) => {
                    // The survivor restarts the pipeline from its queue;
                    // the turn keeps one root spanning both instances.
                    p.admitted = None;
                    p.prefill_done = None;
                    p.load_secs = 0.0;
                    p.comp_secs = 0.0;
                    p.stall_secs = 0.0;
                    p.instance = Some(to);
                    p.reroutes += 1;
                }
                None => self
                    .violations
                    .push(format!("session {session}: reroute of an idle session")),
            },
            EngineEvent::DegradedRecompute { session, .. } => {
                if let Some(p) = pending.get_mut(&session) {
                    p.degraded = true;
                }
            }
            // A shed turn opened with its arrival and ends right there:
            // the rejection closes the turn with no pipeline spans.
            EngineEvent::TurnShed { session, .. } => {
                if pending.remove(&session).is_none() {
                    self.violations
                        .push(format!("session {session}: shed without arrival"));
                }
            }
            EngineEvent::Truncated { .. }
            | EngineEvent::HbmReserved { .. }
            | EngineEvent::InstanceCrashed { .. }
            | EngineEvent::SloConfig { .. }
            | EngineEvent::OverloadLevelChanged { .. }
            | EngineEvent::ScaleUp { .. }
            | EngineEvent::ScaleDown { .. } => {}
        }
    }

    fn store_event(&mut self, pending: &mut HashMap<u64, Pending>, ev: StoreEvent) {
        match ev {
            StoreEvent::Promoted {
                session,
                kind: FetchKind::Prefetch,
                at,
                ..
            } => {
                if let Some(p) = pending.get_mut(&session) {
                    p.prefetch_open = Some(at);
                }
            }
            StoreEvent::PrefetchCompleted { session, at, .. } => {
                if let Some(p) = pending.get_mut(&session) {
                    if let Some(start) = p.prefetch_open.take() {
                        if at < start {
                            self.violations.push(format!(
                                "session {session}: prefetch completed before it started"
                            ));
                        } else {
                            p.prefetch = Some((start, at));
                        }
                    }
                }
            }
            StoreEvent::WriteBufferStall {
                session, until, at, ..
            } => {
                if let Some(p) = pending.get_mut(&session) {
                    if until >= at {
                        p.write_buffer.push((at, until));
                    } else {
                        self.violations
                            .push(format!("session {session}: negative write-buffer stall"));
                    }
                }
            }
            _ => {}
        }
    }

    /// Closes a pending turn into a [`TurnSpan`], recording violations
    /// for any mis-ordered milestone and clamping so the emitted tree
    /// stays well-formed regardless.
    fn finish_turn(&mut self, session: u64, p: Pending, retired: Time) {
        let (Some(admitted), Some(prefill_done)) = (p.admitted, p.prefill_done) else {
            self.violations.push(format!(
                "session {session}: retired without a full pipeline"
            ));
            return;
        };
        for (what, earlier, later) in [
            ("queue_wait", p.arrival, admitted),
            ("prefill", admitted, prefill_done),
            ("decode", prefill_done, retired),
        ] {
            if later < earlier {
                self.violations
                    .push(format!("session {session}: negative {what} duration"));
            }
        }
        let admitted = admitted.max(p.arrival);
        let prefill_done = prefill_done.max(admitted);
        let retired = retired.max(prefill_done);

        let mut queue_items: Vec<(&'static str, Time, Time)> = Vec::new();
        if let Some((s, e)) = p.prefetch {
            queue_items.push(("prefetch", s, e));
        }
        for (s, e) in &p.write_buffer {
            queue_items.push(("write_buffer", *s, *e));
        }
        let mut queue = Span::new(
            "queue_wait",
            p.arrival.as_secs_f64(),
            admitted.as_secs_f64(),
        );
        queue.children = pack_children(p.arrival, admitted, queue_items);

        let mut prefill = Span::new(
            "prefill",
            admitted.as_secs_f64(),
            prefill_done.as_secs_f64(),
        );
        if p.stall_secs > 0.0 {
            let stall_end = (admitted.as_secs_f64() + p.stall_secs).min(prefill.end_secs);
            if stall_end > prefill.start_secs {
                prefill
                    .children
                    .push(Span::new("fetch_stall", prefill.start_secs, stall_end));
            }
        }

        let decode = Span::new("decode", prefill_done.as_secs_f64(), retired.as_secs_f64());

        let mut root = Span::new("turn", p.arrival.as_secs_f64(), retired.as_secs_f64());
        root.children = vec![queue, prefill, decode];

        let write_buffer_secs = p
            .write_buffer
            .iter()
            .map(|(s, e)| e.saturating_since(*s).as_secs_f64())
            .sum();
        self.turns.push(TurnSpan {
            session,
            turn: p.turn,
            instance: p.instance,
            arrival: p.arrival,
            admitted,
            prefill_done,
            retired,
            consult_class: p.consult_class,
            reused_tokens: p.reused,
            computed_tokens: p.computed,
            load_secs: p.load_secs,
            comp_secs: p.comp_secs,
            stall_secs: p.stall_secs,
            deferrals: p.deferrals,
            write_buffer_secs,
            prefetch: p.prefetch,
            reroutes: p.reroutes,
            degraded: p.degraded,
            root,
        });
    }

    /// Fraction of KV transfer time hidden under prefill compute across
    /// the whole run (Σ hidden / Σ load, 0 when nothing transferred) —
    /// the §3.2.1 observable. ≈ 0 for RE (nothing reused) and for the
    /// `preload = false` ablation (everything stalls).
    pub fn overlap_efficiency(&self) -> f64 {
        let load: f64 = self.turns.iter().map(|t| t.load_secs).sum();
        if load <= 0.0 {
            return 0.0;
        }
        self.turns.iter().map(|t| t.hidden_secs()).sum::<f64>() / load
    }

    /// Aggregates the forest into the serializable profile the
    /// regression harness records.
    pub fn summary(&self) -> ProfileSummary {
        let mut ttft_service = Histogram::new();
        let mut ttft_arrival = Histogram::new();
        let mut queue_wait = Histogram::new();
        let mut stall = Histogram::new();
        let mut compute = Histogram::new();
        let mut decode = Histogram::new();
        let mut prefetch = Histogram::new();
        let mut bottlenecks = [0u64; 4];
        let mut tiers: Vec<TierStats> = Vec::new();
        for t in &self.turns {
            ttft_service.push(t.ttft_service_secs());
            ttft_arrival.push(t.ttft_arrival_secs());
            queue_wait.push(t.queue_wait_secs());
            stall.push(t.stall_secs);
            compute.push(t.comp_secs);
            decode.push(t.decode_secs());
            if let Some((s, e)) = t.prefetch {
                prefetch.push(e.saturating_since(s).as_secs_f64());
            }
            bottlenecks[match t.bottleneck() {
                Bottleneck::QueueWait => 0,
                Bottleneck::WriteBuffer => 1,
                Bottleneck::FetchStall => 2,
                Bottleneck::PrefillCompute => 3,
            }] += 1;
            if let Some(class) = t.consult_class {
                let slot = match tiers.iter_mut().find(|s| s.class == class) {
                    Some(slot) => slot,
                    None => {
                        tiers.push(TierStats {
                            class,
                            turns: 0,
                            mean_load_secs: 0.0,
                            mean_stall_secs: 0.0,
                        });
                        tiers.last_mut().expect("just pushed")
                    }
                };
                // Accumulate sums first; normalized below.
                slot.turns += 1;
                slot.mean_load_secs += t.load_secs;
                slot.mean_stall_secs += t.stall_secs;
            }
        }
        for slot in &mut tiers {
            if slot.turns > 0 {
                slot.mean_load_secs /= slot.turns as f64;
                slot.mean_stall_secs /= slot.turns as f64;
            }
        }
        tiers.sort_by(|a, b| a.class.cmp(b.class));
        let pct = |h: &mut Histogram, p: f64| h.percentile(p);
        ProfileSummary {
            turns: self.turns.len() as u64,
            violations: self.violations.len() as u64,
            ttft_mean_secs: ttft_service.mean(),
            ttft_p50_secs: pct(&mut ttft_service, 50.0),
            ttft_p95_secs: pct(&mut ttft_service, 95.0),
            ttft_p99_secs: pct(&mut ttft_service, 99.0),
            ttft_arrival_mean_secs: ttft_arrival.mean(),
            ttft_arrival_p99_secs: pct(&mut ttft_arrival, 99.0),
            queue_wait_mean_secs: queue_wait.mean(),
            queue_wait_p99_secs: pct(&mut queue_wait, 99.0),
            fetch_stall_mean_secs: stall.mean(),
            prefill_compute_mean_secs: compute.mean(),
            decode_mean_secs: decode.mean(),
            prefetch_count: prefetch.count() as u64,
            prefetch_mean_secs: prefetch.mean(),
            kv_load_secs_total: self.turns.iter().map(|t| t.load_secs).sum(),
            kv_hidden_secs_total: self.turns.iter().map(|t| t.hidden_secs()).sum(),
            overlap_efficiency: self.overlap_efficiency(),
            bottleneck_queue_wait: bottlenecks[0],
            bottleneck_write_buffer: bottlenecks[1],
            bottleneck_fetch_stall: bottlenecks[2],
            bottleneck_prefill_compute: bottlenecks[3],
            tiers,
        }
    }
}

/// Fetch-latency breakdown for one consult class (§3.3): how long turns
/// of that class spent loading KV and how much of it stayed visible.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct TierStats {
    /// Consult classification (`hit_fast`, `hit_slow`, `miss`,
    /// `no_history`, `no_store`).
    pub class: &'static str,
    /// Turns so classified.
    pub turns: u64,
    /// Mean KV transfer time required, seconds.
    pub mean_load_secs: f64,
    /// Mean transfer time left visible on the critical path, seconds.
    pub mean_stall_secs: f64,
}

/// Serializable aggregate of a [`SpanForest`] — the per-scenario record
/// of `BENCH_profile.json`.
#[derive(Debug, Clone, Serialize)]
pub struct ProfileSummary {
    /// Turns profiled.
    pub turns: u64,
    /// Span well-formedness violations (must be 0).
    pub violations: u64,
    /// Mean service TTFT (admission → first token), seconds.
    pub ttft_mean_secs: f64,
    /// Median service TTFT, seconds (`None` — serialized `null` — when
    /// no turn completed a prefill; distinguishes "no samples" from
    /// "0 s").
    pub ttft_p50_secs: Option<f64>,
    /// p95 service TTFT, seconds (`None` when no samples).
    pub ttft_p95_secs: Option<f64>,
    /// p99 service TTFT, seconds (`None` when no samples).
    pub ttft_p99_secs: Option<f64>,
    /// Mean arrival TTFT (arrival → first token), seconds.
    pub ttft_arrival_mean_secs: f64,
    /// p99 arrival TTFT, seconds (`None` when no samples).
    pub ttft_arrival_p99_secs: Option<f64>,
    /// Mean queue wait, seconds.
    pub queue_wait_mean_secs: f64,
    /// p99 queue wait, seconds (`None` when no samples).
    pub queue_wait_p99_secs: Option<f64>,
    /// Mean visible fetch stall, seconds.
    pub fetch_stall_mean_secs: f64,
    /// Mean pure prefill compute, seconds.
    pub prefill_compute_mean_secs: f64,
    /// Mean decode duration, seconds.
    pub decode_mean_secs: f64,
    /// Prefetch staging spans observed.
    pub prefetch_count: u64,
    /// Mean prefetch staging latency, seconds.
    pub prefetch_mean_secs: f64,
    /// Total KV transfer time required by reuse, seconds.
    pub kv_load_secs_total: f64,
    /// Share of that transfer hidden under compute, seconds.
    pub kv_hidden_secs_total: f64,
    /// Σ hidden / Σ load (§3.2.1 observable).
    pub overlap_efficiency: f64,
    /// Turns bottlenecked on plain queueing.
    pub bottleneck_queue_wait: u64,
    /// Turns bottlenecked on the HBM write buffer.
    pub bottleneck_write_buffer: u64,
    /// Turns bottlenecked on visible KV fetch.
    pub bottleneck_fetch_stall: u64,
    /// Turns bottlenecked on prefill compute.
    pub bottleneck_prefill_compute: u64,
    /// Per-consult-class fetch-latency breakdown, sorted by class.
    pub tiers: Vec<TierStats>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use engine::ConsultClass;
    use store::TierId;

    fn rec(seq: u64, ev: TraceEvent) -> TraceRecord {
        TraceRecord {
            seq,
            instance: Some(0),
            ev,
        }
    }

    fn t(secs: f64) -> Time {
        Time::from_secs_f64(secs)
    }

    /// arrival 0 → admit 2 → first token 5 → retire 9, with a prefetch
    /// staging [0.5, 1.5], a write-buffer stall [0, 0.25] and an
    /// admission-time breakdown of load 2.0 / comp 2.0 / stall 1.0.
    fn one_turn() -> Vec<TraceRecord> {
        let evs: Vec<TraceEvent> = vec![
            TraceEvent::Engine(EngineEvent::turn_arrived(7, 0, t(0.0))),
            TraceEvent::Store(StoreEvent::WriteBufferStall {
                session: 7,
                until: t(0.25),
                at: t(0.0),
            }),
            TraceEvent::Store(StoreEvent::Promoted {
                session: 7,
                bytes: 100,
                kind: FetchKind::Prefetch,
                from: TierId(1),
                to: TierId(0),
                queue_pos: Some(0),
                instance: Some(0),
                at: t(0.5),
            }),
            TraceEvent::Store(StoreEvent::PrefetchCompleted {
                session: 7,
                instance: Some(0),
                at: t(1.5),
            }),
            TraceEvent::Engine(EngineEvent::consulted(7, ConsultClass::HitFast, 80, t(2.0))),
            TraceEvent::Engine(EngineEvent::admitted(7, 80, 40, false, t(2.0))),
            TraceEvent::Engine(EngineEvent::prefill_timed(
                7,
                2.0,
                2.0,
                1.0,
                Some(0),
                t(2.0),
            )),
            TraceEvent::Engine(EngineEvent::prefill_done(7, 3.0, t(5.0))),
            TraceEvent::Engine(EngineEvent::retired(7, 120, t(9.0))),
        ];
        evs.into_iter()
            .enumerate()
            .map(|(i, ev)| rec(i as u64, ev))
            .collect()
    }

    #[test]
    fn builds_one_well_formed_turn() {
        let forest = SpanForest::from_records(&one_turn());
        assert!(forest.violations.is_empty(), "{:?}", forest.violations);
        assert_eq!(forest.turns.len(), 1);
        let turn = &forest.turns[0];
        assert_eq!(turn.session, 7);
        assert_eq!(turn.instance, Some(0));
        assert_eq!(turn.consult_class, Some("hit_fast"));
        assert_eq!(turn.queue_wait_secs(), 2.0);
        assert_eq!(turn.ttft_service_secs(), 3.0);
        assert_eq!(turn.decode_secs(), 4.0);
        assert_eq!(turn.hidden_secs(), 1.0);
        // Root spans the whole turn; stage children tile it exactly.
        assert_eq!(turn.root.name, "turn");
        assert_eq!(turn.root.secs(), 9.0);
        let names: Vec<_> = turn.root.children.iter().map(|c| c.name).collect();
        assert_eq!(names, vec!["queue_wait", "prefill", "decode"]);
        // queue_wait holds the write-buffer stall and the prefetch.
        let queue = &turn.root.children[0];
        let q_names: Vec<_> = queue.children.iter().map(|c| c.name).collect();
        assert_eq!(q_names, vec!["write_buffer", "prefetch"]);
        // prefill holds the visible stall, which leads the compute.
        let prefill = &turn.root.children[1];
        assert_eq!(prefill.children.len(), 1);
        assert_eq!(prefill.children[0].name, "fetch_stall");
        assert_eq!(prefill.children[0].secs(), 1.0);
    }

    #[test]
    fn attributes_the_bottleneck_to_the_dominant_segment() {
        let forest = SpanForest::from_records(&one_turn());
        // comp 2.0 beats stall 1.0, write-buffer 0.25 and plain queue
        // wait 2.0 - 0.25 = 1.75.
        assert_eq!(forest.turns[0].bottleneck(), Bottleneck::PrefillCompute);
        let mut t0 = forest.turns[0].clone();
        t0.stall_secs = 5.0;
        assert_eq!(t0.bottleneck(), Bottleneck::FetchStall);
    }

    #[test]
    fn overlap_efficiency_is_hidden_over_load() {
        let forest = SpanForest::from_records(&one_turn());
        // load 2.0, stall 1.0 → hidden 1.0 → efficiency 0.5.
        assert!((forest.overlap_efficiency() - 0.5).abs() < 1e-12);
        let summary = forest.summary();
        assert_eq!(summary.turns, 1);
        assert_eq!(summary.violations, 0);
        assert_eq!(summary.prefetch_count, 1);
        assert!((summary.prefetch_mean_secs - 1.0).abs() < 1e-12);
        assert_eq!(summary.tiers.len(), 1);
        assert_eq!(summary.tiers[0].class, "hit_fast");
        let json = serde_json::to_string(&summary).unwrap();
        assert!(json.contains("\"overlap_efficiency\":0.5"));
    }

    #[test]
    fn empty_forest_has_zero_efficiency_not_nan() {
        let forest = SpanForest::from_records(&[]);
        assert_eq!(forest.overlap_efficiency(), 0.0);
        assert_eq!(forest.summary().turns, 0);
    }

    #[test]
    fn malformed_streams_record_violations_instead_of_panicking() {
        // Retirement without any pipeline behind it.
        let recs = vec![rec(
            0,
            TraceEvent::Engine(EngineEvent::retired(3, 10, t(1.0))),
        )];
        let forest = SpanForest::from_records(&recs);
        assert_eq!(forest.turns.len(), 0);
        assert_eq!(forest.violations.len(), 1);
        // A turn left open at the end of the trace.
        let recs = vec![rec(
            0,
            TraceEvent::Engine(EngineEvent::turn_arrived(4, 0, t(0.0))),
        )];
        let forest = SpanForest::from_records(&recs);
        assert!(forest.violations[0].contains("still open"));
    }

    #[test]
    fn reroute_restarts_the_pipeline_under_one_root() {
        let evs: Vec<TraceEvent> = vec![
            TraceEvent::Engine(EngineEvent::turn_arrived(9, 2, t(0.0))),
            TraceEvent::Engine(EngineEvent::consulted(9, ConsultClass::HitSlow, 50, t(1.0))),
            TraceEvent::Engine(EngineEvent::admitted(9, 50, 10, false, t(1.0))),
            TraceEvent::Engine(EngineEvent::prefill_timed(
                9,
                1.0,
                0.5,
                1.0,
                Some(1),
                t(1.0),
            )),
            TraceEvent::Engine(EngineEvent::turn_rerouted(9, 0, 1, t(2.0))),
            TraceEvent::Engine(EngineEvent::consulted(9, ConsultClass::Miss, 0, t(3.0))),
            TraceEvent::Engine(EngineEvent::admitted(9, 0, 60, false, t(3.0))),
            TraceEvent::Engine(EngineEvent::prefill_timed(9, 0.0, 2.0, 0.0, None, t(3.0))),
            TraceEvent::Engine(EngineEvent::prefill_done(9, 2.0, t(5.0))),
            TraceEvent::Engine(EngineEvent::retired(9, 60, t(6.0))),
        ];
        let recs: Vec<TraceRecord> = evs
            .into_iter()
            .enumerate()
            .map(|(i, ev)| rec(i as u64, ev))
            .collect();
        let forest = SpanForest::from_records(&recs);
        assert!(forest.violations.is_empty(), "{:?}", forest.violations);
        assert_eq!(forest.turns.len(), 1);
        let turn = &forest.turns[0];
        assert_eq!(turn.reroutes, 1);
        assert_eq!(turn.instance, Some(0));
        // The re-run's timings replace the aborted attempt's.
        assert_eq!(turn.consult_class, Some("miss"));
        assert_eq!(turn.comp_secs, 2.0);
        assert_eq!(turn.stall_secs, 0.0);
        assert_eq!(turn.queue_wait_secs(), 3.0);
    }

    #[test]
    fn packing_trims_overlapping_children() {
        let spans = pack_children(
            t(0.0),
            t(10.0),
            vec![
                ("write_buffer", t(1.0), t(4.0)),
                ("prefetch", t(3.0), t(6.0)),
                ("write_buffer", t(20.0), t(30.0)), // outside the window
            ],
        );
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].end_secs, 4.0);
        assert_eq!(spans[1].start_secs, 4.0); // trimmed to the sibling
        assert_eq!(spans[1].end_secs, 6.0);
        let _ = TierId(0); // keep the store import exercised
    }
}
