//! Trace exporters: JSONL event dumps and Chrome trace-event JSON.
//!
//! [`to_jsonl`] writes one self-describing JSON object per line — the
//! grep/jq-friendly format the CI smoke check validates. [`to_chrome_trace`]
//! renders the same records in the Chrome trace-event format (the
//! `{"traceEvents": [...]}` envelope), which Perfetto and
//! `chrome://tracing` open directly: one track per session showing
//! queued → prefill → decode spans, prefetch staging spans, instant
//! markers for the store's placement decisions, and counter tracks for
//! HBM reservations and tier occupancy.

use std::collections::HashMap;

use engine::EngineEvent;
use serde::Value;
use store::{FetchKind, StoreEvent};

use crate::trace::{TraceEvent, TraceRecord};

/// Renders records as JSON Lines: one object per record, `seq` first.
pub fn to_jsonl(records: &[TraceRecord]) -> String {
    let mut out = String::new();
    for rec in records {
        out.push_str(&serde_json::to_string(rec).expect("trace records always serialize"));
        out.push('\n');
    }
    out
}

/// Virtual pid of the single simulated serving process.
const PID: u64 = 1;

fn obj(pairs: Vec<(&str, Value)>) -> Value {
    Value::Object(
        pairs
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

fn micros(secs: f64) -> Value {
    Value::F64(secs * 1e6)
}

/// A complete ("X") span on a session track.
fn span(name: &str, cat: &str, tid: u64, start_secs: f64, end_secs: f64) -> Value {
    obj(vec![
        ("name", Value::Str(name.to_string())),
        ("cat", Value::Str(cat.to_string())),
        ("ph", Value::Str("X".to_string())),
        ("ts", micros(start_secs)),
        ("dur", micros((end_secs - start_secs).max(0.0))),
        ("pid", Value::U64(PID)),
        ("tid", Value::U64(tid)),
    ])
}

/// A thread-scoped instant ("i") marker on a session track.
fn instant(name: &str, cat: &str, tid: u64, at_secs: f64) -> Value {
    obj(vec![
        ("name", Value::Str(name.to_string())),
        ("cat", Value::Str(cat.to_string())),
        ("ph", Value::Str("i".to_string())),
        ("s", Value::Str("t".to_string())),
        ("ts", micros(at_secs)),
        ("pid", Value::U64(PID)),
        ("tid", Value::U64(tid)),
    ])
}

/// A counter ("C") sample.
fn counter(name: &str, at_secs: f64, args: Vec<(&str, Value)>) -> Value {
    obj(vec![
        ("name", Value::Str(name.to_string())),
        ("ph", Value::Str("C".to_string())),
        ("ts", micros(at_secs)),
        ("pid", Value::U64(PID)),
        ("args", obj(args)),
    ])
}

/// A metadata ("M") event naming the process or a thread.
fn metadata(what: &str, tid: Option<u64>, label: &str) -> Value {
    let mut pairs = vec![
        ("name", Value::Str(what.to_string())),
        ("ph", Value::Str("M".to_string())),
        ("pid", Value::U64(PID)),
    ];
    if let Some(tid) = tid {
        pairs.push(("tid", Value::U64(tid)));
    }
    pairs.push(("args", obj(vec![("name", Value::Str(label.to_string()))])));
    obj(pairs)
}

/// Renders records as a Chrome trace-event file (loadable in Perfetto).
///
/// Session tracks are threads of one process; `ts`/`dur` are
/// microseconds of virtual time. Span pairing follows the pipeline's
/// causal order: `TurnArrived → Admitted` becomes a `queued` span,
/// `Admitted → PrefillDone` a `prefill` span, `PrefillDone → Retired` a
/// `decode` span, and a prefetch `Promoted → PrefetchCompleted` pair a
/// `prefetch` staging span. Store decisions appear as instant markers;
/// occupancy gauges and HBM reservations become counter tracks.
pub fn to_chrome_trace(records: &[TraceRecord]) -> String {
    let mut events: Vec<Value> = vec![metadata("process_name", None, "cachedattention")];
    let mut named: Vec<u64> = Vec::new();
    // Open span starts, keyed by session.
    let mut queued_at: HashMap<u64, f64> = HashMap::new();
    let mut admitted_at: HashMap<u64, f64> = HashMap::new();
    let mut prefill_done_at: HashMap<u64, f64> = HashMap::new();
    let mut prefetch_at: HashMap<u64, f64> = HashMap::new();

    for rec in records {
        if let Some(sid) = rec.ev.session() {
            if !named.contains(&sid) {
                named.push(sid);
                events.push(metadata("thread_name", Some(sid), &format!("session {sid}")));
            }
        }
        let at = rec.ev.at().as_secs_f64();
        match rec.ev {
            TraceEvent::Engine(ev) => match ev {
                EngineEvent::TurnArrived { session, .. } => {
                    queued_at.insert(session, at);
                }
                EngineEvent::Admitted { session, .. } => {
                    if let Some(start) = queued_at.remove(&session) {
                        events.push(span("queued", "sched", session, start, at));
                    }
                    admitted_at.insert(session, at);
                }
                EngineEvent::PrefillDone { session, .. } => {
                    if let Some(start) = admitted_at.remove(&session) {
                        events.push(span("prefill", "gpu", session, start, at));
                    }
                    prefill_done_at.insert(session, at);
                }
                EngineEvent::Retired { session, .. } => {
                    if let Some(start) = prefill_done_at.remove(&session) {
                        events.push(span("decode", "gpu", session, start, at));
                    }
                }
                EngineEvent::HbmReserved { reserved_bytes, .. } => {
                    events.push(counter(
                        "hbm_reserved_bytes",
                        at,
                        vec![("reserved", Value::U64(reserved_bytes))],
                    ));
                }
                EngineEvent::Truncated { session, .. }
                | EngineEvent::Consulted { session, .. }
                | EngineEvent::Deferred { session, .. } => {
                    events.push(instant(ev.kind(), ev.category(), session, at));
                }
            },
            TraceEvent::Store(ev) => match ev {
                StoreEvent::Occupancy {
                    dram_bytes,
                    disk_bytes,
                    ..
                } => {
                    events.push(counter(
                        "store_occupancy_bytes",
                        at,
                        vec![
                            ("dram", Value::U64(dram_bytes)),
                            ("disk", Value::U64(disk_bytes)),
                        ],
                    ));
                }
                StoreEvent::Promoted {
                    session,
                    kind: FetchKind::Prefetch,
                    ..
                } => {
                    prefetch_at.insert(session, at);
                }
                StoreEvent::PrefetchCompleted { session, .. } => {
                    if let Some(start) = prefetch_at.remove(&session) {
                        events.push(span("prefetch", "tiering", session, start, at));
                    }
                }
                other => {
                    if let Some(sid) = other.session() {
                        events.push(instant(other.kind(), other.category(), sid, at));
                    }
                }
            },
        }
    }

    let envelope = obj(vec![
        ("traceEvents", Value::Array(events)),
        ("displayTimeUnit", Value::Str("ms".to_string())),
    ]);
    serde_json::to_string(&envelope).expect("trace envelope always serializes")
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim::Time;
    use store::Tier;

    fn rec(seq: u64, ev: TraceEvent) -> TraceRecord {
        TraceRecord { seq, ev }
    }

    fn sample_records() -> Vec<TraceRecord> {
        vec![
            rec(
                0,
                TraceEvent::Engine(EngineEvent::turn_arrived(1, 0, Time::ZERO)),
            ),
            rec(
                1,
                TraceEvent::Store(StoreEvent::FetchHit {
                    session: 1,
                    tier: Tier::Dram,
                    bytes: 100,
                    at: Time::from_millis(1),
                }),
            ),
            rec(
                2,
                TraceEvent::Engine(EngineEvent::admitted(
                    1,
                    100,
                    50,
                    false,
                    Time::from_millis(2),
                )),
            ),
            rec(
                3,
                TraceEvent::Engine(EngineEvent::prefill_done(1, 0.1, Time::from_millis(102))),
            ),
            rec(
                4,
                TraceEvent::Engine(EngineEvent::retired(1, 150, Time::from_millis(500))),
            ),
            rec(
                5,
                TraceEvent::Store(StoreEvent::Occupancy {
                    dram_bytes: 10,
                    disk_bytes: 20,
                    at: Time::from_millis(500),
                }),
            ),
        ]
    }

    #[test]
    fn jsonl_is_one_parsable_object_per_line() {
        let text = to_jsonl(&sample_records());
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 6);
        for (i, line) in lines.iter().enumerate() {
            let v: Value = serde_json::from_str(line).expect("line parses");
            match v {
                Value::Object(pairs) => {
                    assert_eq!(pairs[0].0, "seq");
                    assert!(matches!(pairs[0].1, Value::U64(n) if n == i as u64));
                }
                other => panic!("expected object, got {other:?}"),
            }
        }
    }

    #[test]
    fn chrome_trace_has_spans_counters_and_metadata() {
        let json = to_chrome_trace(&sample_records());
        let parsed: Value = serde_json::from_str(&json).expect("valid JSON");
        let Value::Object(pairs) = parsed else {
            panic!("expected envelope object");
        };
        assert_eq!(pairs[0].0, "traceEvents");
        assert!(json.contains("\"name\":\"queued\""));
        assert!(json.contains("\"name\":\"prefill\""));
        assert!(json.contains("\"name\":\"decode\""));
        assert!(json.contains("\"name\":\"fetch_hit\""));
        assert!(json.contains("\"name\":\"store_occupancy_bytes\""));
        assert!(json.contains("\"name\":\"session 1\""));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"ph\":\"C\""));
        assert!(json.contains("\"ph\":\"M\""));
    }
}
