//! Trace exporters: JSONL event dumps, Chrome trace-event JSON, the
//! windowed time-series dump and a Prometheus-style text exposition.
//!
//! [`to_jsonl`] writes one self-describing JSON object per line — the
//! grep/jq-friendly format the CI smoke check validates. [`to_chrome_trace`]
//! renders the same records in the Chrome trace-event format (the
//! `{"traceEvents": [...]}` envelope), which Perfetto and
//! `chrome://tracing` open directly: one process per serving instance
//! (records without instance attribution land on the default process),
//! one thread per session showing queued → prefill → decode spans,
//! prefetch staging and write-buffer stall spans with flow arrows
//! linking each prefetch to the admission that consumes it, instant
//! markers for the store's placement decisions, and counter tracks for
//! HBM reservations and each tier's occupancy (one track per tier,
//! labeled with the stack's configured tier names). A session that migrates
//! instances under least-loaded routing shows its spans under whichever
//! process served that turn.
//!
//! The windowed plane adds two formats: [`windows_to_jsonl`] dumps one
//! `window_config` header line, one `window` record per tumbling window
//! (counters, gauges, latency sketches and the derived health signals)
//! and the `alert_fired`/`alert_resolved` transitions, while
//! [`to_prometheus`] renders a [`MetricsSnapshot`] as the text
//! exposition a Prometheus scrape of the final state would return.
//! [`to_chrome_trace_with_alerts`] overlays the alert transitions on the
//! Perfetto timeline as globally scoped instant events.

use std::collections::HashMap;

use engine::EngineEvent;
use serde::{Serialize, Value};
use store::{FetchKind, StoreEvent};

use crate::health::{AlertEvent, HealthSignals};
use crate::hub::MetricsSnapshot;
use crate::trace::{TraceEvent, TraceRecord};
use crate::window::WindowSeries;

/// Renders records as JSON Lines: one object per record, `seq` first.
pub fn to_jsonl(records: &[TraceRecord]) -> String {
    let mut out = String::new();
    for rec in records {
        out.push_str(&serde_json::to_string(rec).expect("trace records always serialize"));
        out.push('\n');
    }
    out
}

/// Virtual pid of unattributed records (and of instance 0, so
/// single-instance traces look exactly like the pre-cluster ones).
const DEFAULT_PID: u64 = 1;

/// Virtual pid of a record: instance `i` maps to process `i + 1`.
fn pid_of(rec: &TraceRecord) -> u64 {
    rec.instance.map_or(DEFAULT_PID, |i| u64::from(i) + 1)
}

fn obj(pairs: Vec<(&str, Value)>) -> Value {
    Value::Object(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

fn micros(secs: f64) -> Value {
    Value::F64(secs * 1e6)
}

/// A complete ("X") span on a session track.
fn span(name: &str, cat: &str, pid: u64, tid: u64, start_secs: f64, end_secs: f64) -> Value {
    obj(vec![
        ("name", Value::Str(name.to_string())),
        ("cat", Value::Str(cat.to_string())),
        ("ph", Value::Str("X".to_string())),
        ("ts", micros(start_secs)),
        ("dur", micros((end_secs - start_secs).max(0.0))),
        ("pid", Value::U64(pid)),
        ("tid", Value::U64(tid)),
    ])
}

/// A thread-scoped instant ("i") marker on a session track.
fn instant(name: &str, cat: &str, pid: u64, tid: u64, at_secs: f64) -> Value {
    obj(vec![
        ("name", Value::Str(name.to_string())),
        ("cat", Value::Str(cat.to_string())),
        ("ph", Value::Str("i".to_string())),
        ("s", Value::Str("t".to_string())),
        ("ts", micros(at_secs)),
        ("pid", Value::U64(pid)),
        ("tid", Value::U64(tid)),
    ])
}

/// A counter ("C") sample.
fn counter(name: &str, pid: u64, at_secs: f64, args: Vec<(&str, Value)>) -> Value {
    obj(vec![
        ("name", Value::Str(name.to_string())),
        ("ph", Value::Str("C".to_string())),
        ("ts", micros(at_secs)),
        ("pid", Value::U64(pid)),
        ("args", obj(args)),
    ])
}

/// One endpoint of a flow arrow: `ph: "s"` opens it at the producer,
/// `ph: "f"` (binding to the enclosing slice's end, `bp: "e"`) closes
/// it at the consumer. Perfetto draws the arrow between the two slices.
fn flow(phase: &str, id: u64, pid: u64, tid: u64, at_secs: f64) -> Value {
    let mut pairs = vec![
        ("name", Value::Str("kv_transfer".to_string())),
        ("cat", Value::Str("tiering".to_string())),
        ("ph", Value::Str(phase.to_string())),
        ("id", Value::U64(id)),
        ("ts", micros(at_secs)),
        ("pid", Value::U64(pid)),
        ("tid", Value::U64(tid)),
    ];
    if phase == "f" {
        pairs.push(("bp", Value::Str("e".to_string())));
    }
    obj(pairs)
}

/// A metadata ("M") event naming a process or a thread.
fn metadata(what: &str, pid: u64, tid: Option<u64>, label: &str) -> Value {
    let mut pairs = vec![
        ("name", Value::Str(what.to_string())),
        ("ph", Value::Str("M".to_string())),
        ("pid", Value::U64(pid)),
    ];
    if let Some(tid) = tid {
        pairs.push(("tid", Value::U64(tid)));
    }
    pairs.push(("args", obj(vec![("name", Value::Str(label.to_string()))])));
    obj(pairs)
}

/// Renders records as a Chrome trace-event file (loadable in Perfetto).
///
/// Each serving instance is a process (instance `i` = pid `i + 1`;
/// unattributed records share pid 1 with instance 0); session tracks are
/// threads of the process that served them; `ts`/`dur` are microseconds
/// of virtual time. Span pairing follows the pipeline's causal order:
/// `TurnArrived → Admitted` becomes a `queued` span, `Admitted →
/// PrefillDone` a `prefill` span, `PrefillDone → Retired` a `decode`
/// span, and a prefetch `Promoted → PrefetchCompleted` pair a `prefetch`
/// staging span. Write-buffer stalls render with their real extent
/// (`at → until`), the visible fetch stall nests inside its prefill
/// slice, and a flow arrow connects each completed prefetch to the
/// admission that consumes the staged KV — the Perfetto waterfall shows
/// the §3.2 overlap (or its absence) directly. Store decisions appear
/// as instant markers; occupancy gauges and HBM reservations become
/// per-process counter tracks.
pub fn to_chrome_trace(records: &[TraceRecord]) -> String {
    to_chrome_trace_with_alerts(records, &[])
}

/// [`to_chrome_trace`] with the alert timeline overlaid: every
/// `AlertFired`/`AlertResolved` transition renders as a globally scoped
/// instant event (`ph: "i"`, `s: "g"`) named after its rule, so Perfetto
/// draws a full-height marker at the window boundary where the rule
/// transitioned, with the deciding signal value in its args.
pub fn to_chrome_trace_with_alerts(records: &[TraceRecord], alerts: &[AlertEvent]) -> String {
    chrome_envelope(chrome_events(records, alerts))
}

/// Builds the trace-event list shared by every Chrome-trace flavour.
fn chrome_events(records: &[TraceRecord], alerts: &[AlertEvent]) -> Vec<Value> {
    let mut events: Vec<Value> = Vec::new();
    let mut named_pids: Vec<u64> = Vec::new();
    let mut named_threads: Vec<(u64, u64)> = Vec::new();
    // Open span starts, keyed by session: (pid at start, start time).
    let mut queued_at: HashMap<u64, (u64, f64)> = HashMap::new();
    let mut admitted_at: HashMap<u64, (u64, f64)> = HashMap::new();
    let mut prefill_done_at: HashMap<u64, (u64, f64)> = HashMap::new();
    let mut prefetch_at: HashMap<u64, (u64, f64)> = HashMap::new();
    // Finished prefetch stagings awaiting their consumer: session →
    // (pid of the staging span, staging end time). Consumed by the next
    // admission to draw the causal prefetch → prefill flow arrow.
    let mut prefetch_done: HashMap<u64, (u64, f64)> = HashMap::new();
    let mut flow_ids: u64 = 0;
    // Tier index → display name, learned from `tier_config` records.
    let mut tier_labels: HashMap<usize, &'static str> = HashMap::new();

    for rec in records {
        let pid = pid_of(rec);
        if !named_pids.contains(&pid) {
            named_pids.push(pid);
            let label = if pid == DEFAULT_PID {
                "cachedattention".to_string()
            } else {
                format!("cachedattention instance {}", pid - 1)
            };
            events.push(metadata("process_name", pid, None, &label));
        }
        if let Some(sid) = rec.ev.session() {
            if !named_threads.contains(&(pid, sid)) {
                named_threads.push((pid, sid));
                events.push(metadata(
                    "thread_name",
                    pid,
                    Some(sid),
                    &format!("session {sid}"),
                ));
            }
        }
        let at = rec.ev.at().as_secs_f64();
        match rec.ev {
            TraceEvent::Engine(ev) => match ev {
                EngineEvent::TurnArrived { session, .. } => {
                    queued_at.insert(session, (pid, at));
                }
                EngineEvent::Admitted { session, .. } => {
                    if let Some((p, start)) = queued_at.remove(&session) {
                        events.push(span("queued", "sched", p, session, start, at));
                    }
                    if let Some((p, end)) = prefetch_done.remove(&session) {
                        // Causal edge: the staged KV this admission
                        // consumes came from that prefetch.
                        flow_ids += 1;
                        events.push(flow("s", flow_ids, p, session, end));
                        events.push(flow("f", flow_ids, pid, session, at));
                    }
                    admitted_at.insert(session, (pid, at));
                }
                EngineEvent::PrefillDone { session, .. } => {
                    if let Some((p, start)) = admitted_at.remove(&session) {
                        events.push(span("prefill", "gpu", p, session, start, at));
                    }
                    prefill_done_at.insert(session, (pid, at));
                }
                EngineEvent::Retired { session, .. } => {
                    if let Some((p, start)) = prefill_done_at.remove(&session) {
                        events.push(span("decode", "gpu", p, session, start, at));
                    }
                }
                EngineEvent::HbmReserved { reserved_bytes, .. } => {
                    events.push(counter(
                        "hbm_reserved_bytes",
                        pid,
                        at,
                        vec![("reserved", Value::U64(reserved_bytes))],
                    ));
                }
                EngineEvent::PrefillTimed {
                    session,
                    stall_secs,
                    ..
                } => {
                    // The visible fetch stall nests inside the upcoming
                    // `prefill` slice (the stall leads, compute follows).
                    if stall_secs > 0.0 {
                        events.push(span(
                            "fetch_stall",
                            "gpu",
                            pid,
                            session,
                            at,
                            at + stall_secs,
                        ));
                    }
                }
                EngineEvent::Truncated { session, .. }
                | EngineEvent::Consulted { session, .. }
                | EngineEvent::Deferred { session, .. }
                | EngineEvent::TurnRerouted { session, .. }
                | EngineEvent::DegradedRecompute { session, .. } => {
                    events.push(instant(ev.kind(), ev.category(), pid, session, at));
                }
                EngineEvent::TurnShed { session, .. } => {
                    // A shed closes the turn before it ever runs: end the
                    // queued span (the wait the admission controller cut
                    // short) and mark the rejection on the session lane.
                    if let Some((p, start)) = queued_at.remove(&session) {
                        events.push(span("queued", "sched", p, session, start, at));
                    }
                    events.push(instant(ev.kind(), ev.category(), pid, session, at));
                }
                EngineEvent::InstanceCrashed { .. }
                | EngineEvent::ScaleUp { .. }
                | EngineEvent::ScaleDown { .. }
                | EngineEvent::OverloadLevelChanged { .. } => {
                    // No session track: mark the crash / fleet change on
                    // the instance's tid-0 lane.
                    events.push(instant(ev.kind(), ev.category(), pid, 0, at));
                }
                EngineEvent::SloConfig { .. } => {}
            },
            TraceEvent::Store(ev) => match ev {
                StoreEvent::TierConfig { tier, name, .. } => {
                    tier_labels.insert(tier.0, name);
                }
                StoreEvent::Occupancy {
                    tier, used_bytes, ..
                } => {
                    let label = tier_labels
                        .get(&tier.0)
                        .map_or_else(|| format!("t{}", tier.0), |n| (*n).to_string());
                    events.push(counter(
                        &format!("store_occupancy_bytes:{label}"),
                        pid,
                        at,
                        vec![("used", Value::U64(used_bytes))],
                    ));
                }
                StoreEvent::Promoted {
                    session,
                    kind: FetchKind::Prefetch,
                    ..
                } => {
                    prefetch_at.insert(session, (pid, at));
                }
                StoreEvent::PrefetchCompleted { session, .. } => {
                    if let Some((p, start)) = prefetch_at.remove(&session) {
                        events.push(span("prefetch", "tiering", p, session, start, at));
                        prefetch_done.insert(session, (p, at));
                    }
                }
                StoreEvent::WriteBufferStall { session, until, .. } => {
                    // The stall has real extent — admission is blocked
                    // from `at` until the buffer drains at `until` — so
                    // it renders as a duration slice, not an instant.
                    events.push(span(
                        "write_buffer_stall",
                        "stall",
                        pid,
                        session,
                        at,
                        until.as_secs_f64(),
                    ));
                }
                other => {
                    if let Some(sid) = other.session() {
                        events.push(instant(other.kind(), other.category(), pid, sid, at));
                    }
                }
            },
        }
    }
    for a in alerts {
        events.push(obj(vec![
            ("name", Value::Str(a.rule.clone())),
            ("cat", Value::Str("alert".to_string())),
            ("ph", Value::Str("i".to_string())),
            ("s", Value::Str("g".to_string())),
            ("ts", micros(a.at_secs)),
            ("pid", Value::U64(DEFAULT_PID)),
            ("tid", Value::U64(0)),
            (
                "args",
                obj(vec![
                    ("kind", Value::Str(a.kind.label().to_string())),
                    ("signal", Value::Str(a.signal.clone())),
                    ("value", Value::F64(a.value)),
                    ("window", Value::U64(a.window as u64)),
                ]),
            ),
        ]));
    }
    if events.is_empty() {
        events.push(metadata(
            "process_name",
            DEFAULT_PID,
            None,
            "cachedattention",
        ));
    }
    events
}

/// Wraps trace events in the `{"traceEvents": [...]}` envelope.
fn chrome_envelope(events: Vec<Value>) -> String {
    let envelope = obj(vec![
        ("traceEvents", Value::Array(events)),
        ("displayTimeUnit", Value::Str("ms".to_string())),
    ]);
    serde_json::to_string(&envelope).expect("trace envelope always serializes")
}

/// Virtual pid of the host-time self-profile process track.
const SELFPROF_PID: u64 = 1000;

/// [`to_chrome_trace`] with the host-time self-profile rendered as a
/// dedicated process beside the virtual-time tracks, so a single Chrome
/// trace shows both clocks. Each profiled scope becomes its own thread
/// under a "simulator host time (self-profile)" process holding one
/// aggregate slice whose extent is the scope's **self** time in host
/// microseconds (`ts` starts at zero: host slices align with the virtual
/// origin for side-by-side magnitude reading, not causality); call count
/// and total/mean/max ns ride in the slice args.
pub fn to_chrome_trace_two_clock(records: &[TraceRecord], profile: &sim::SelfProfile) -> String {
    let mut events = chrome_events(records, &[]);
    events.push(metadata(
        "process_name",
        SELFPROF_PID,
        None,
        "simulator host time (self-profile)",
    ));
    for (i, s) in profile.scopes.iter().enumerate() {
        let tid = i as u64;
        events.push(metadata("thread_name", SELFPROF_PID, Some(tid), &s.name));
        events.push(obj(vec![
            ("name", Value::Str(s.name.clone())),
            ("cat", Value::Str("selfprof".to_string())),
            ("ph", Value::Str("X".to_string())),
            ("ts", Value::F64(0.0)),
            ("dur", Value::F64(s.self_ns as f64 / 1e3)),
            ("pid", Value::U64(SELFPROF_PID)),
            ("tid", Value::U64(tid)),
            (
                "args",
                obj(vec![
                    ("calls", Value::U64(s.calls)),
                    ("total_ns", Value::U64(s.total_ns)),
                    ("self_ns", Value::U64(s.self_ns)),
                    ("mean_ns", Value::U64(s.mean_ns)),
                    ("max_ns", Value::U64(s.max_ns)),
                ]),
            ),
        ]));
    }
    chrome_envelope(events)
}

/// Renders the windowed plane as JSON Lines: a `window_config` header
/// (width, window count, SLO target, tier names), then one `window`
/// record per tumbling window — counters, queue-depth and occupancy
/// gauges, the four latency sketches (sparse log-bucket form) and the
/// derived health signals — then the `alert_fired`/`alert_resolved`
/// transitions in chronological order. The CI smoke validates this
/// format with `trace_check --windows`.
///
/// # Panics
/// Panics when `signals` was not derived from `series` (point/window
/// count mismatch).
pub fn windows_to_jsonl(
    series: &WindowSeries,
    signals: &HealthSignals,
    alerts: &[AlertEvent],
) -> String {
    assert_eq!(
        series.windows.len(),
        signals.points.len(),
        "health signals must be derived from the same window series"
    );
    let mut out = String::new();
    let mut line = |v: Value| {
        out.push_str(&serde_json::to_string(&v).expect("window records always serialize"));
        out.push('\n');
    };
    line(obj(vec![
        ("kind", Value::Str("window_config".to_string())),
        ("width_secs", Value::F64(series.width_secs)),
        ("windows", Value::U64(series.windows.len() as u64)),
        (
            "slo_ttft_p99_secs",
            Value::F64(signals.slo.ttft_p99_target_secs),
        ),
        (
            "tiers",
            Value::Array(
                series
                    .tier_names
                    .iter()
                    .map(|n| Value::Str(n.clone()))
                    .collect(),
            ),
        ),
    ]));
    for (w, p) in series.windows.iter().zip(signals.points.iter()) {
        let tiers: Vec<Value> = w
            .tiers
            .iter()
            .map(|t| {
                obj(vec![
                    ("tier", Value::U64(t.tier as u64)),
                    (
                        "name",
                        Value::Str(
                            series
                                .tier_names
                                .get(t.tier)
                                .cloned()
                                .unwrap_or_else(|| format!("t{}", t.tier)),
                        ),
                    ),
                    ("store_hits", Value::U64(t.store_hits)),
                    ("occupancy_end_bytes", Value::F64(t.occupancy_end_bytes)),
                    ("occupancy_peak_bytes", Value::F64(t.occupancy_peak_bytes)),
                    (
                        "occupancy_slope_bytes_per_sec",
                        Value::F64(
                            p.occupancy_slope_bytes_per_sec
                                .get(t.tier)
                                .copied()
                                .unwrap_or(0.0),
                        ),
                    ),
                ])
            })
            .collect();
        let instances: Vec<Value> = w
            .instances
            .iter()
            .map(|i| {
                obj(vec![
                    ("instance", Value::U64(u64::from(i.instance))),
                    ("turns_arrived", Value::U64(i.turns_arrived)),
                    ("admitted", Value::U64(i.admitted)),
                    ("retired", Value::U64(i.retired)),
                ])
            })
            .collect();
        line(obj(vec![
            ("kind", Value::Str("window".to_string())),
            ("index", Value::U64(w.index as u64)),
            ("start_secs", Value::F64(w.start_secs)),
            ("end_secs", Value::F64(w.end_secs)),
            ("counters", w.counters.to_value()),
            ("queue_depth_end", Value::U64(w.queue_depth_end)),
            ("queue_depth_peak", Value::U64(w.queue_depth_peak)),
            (
                "hbm_reserved_end_bytes",
                Value::F64(w.hbm_reserved_end_bytes),
            ),
            ("arrival_rate_per_sec", Value::F64(p.arrival_rate_per_sec)),
            ("ttft_p99_secs", p.ttft_p99_secs.to_value()),
            ("slo_burn_rate", p.slo_burn_rate.to_value()),
            ("fault_rate_per_sec", Value::F64(p.fault_rate_per_sec)),
            ("ttft", w.ttft.to_value()),
            ("queue_wait", w.queue_wait.to_value()),
            ("fetch_stall", w.fetch_stall.to_value()),
            ("prefetch_latency", w.prefetch_latency.to_value()),
            ("tiers", Value::Array(tiers)),
            ("instances", Value::Array(instances)),
        ]));
    }
    for a in alerts {
        line(a.to_value());
    }
    out
}

/// Formats a float the way Prometheus expositions expect (plain decimal
/// or scientific, never `NaN`-quoted — the snapshot never holds one).
fn prom_num(x: f64) -> String {
    format!("{x}")
}

/// Writes one metric family: `# HELP`/`# TYPE` preamble plus one sample
/// line per `(labels, value)` pair. Families with no samples are elided.
fn prom_metric(out: &mut String, name: &str, help: &str, kind: &str, samples: Vec<(String, f64)>) {
    if samples.is_empty() {
        return;
    }
    out.push_str(&format!("# HELP {name} {help}\n# TYPE {name} {kind}\n"));
    for (labels, v) in samples {
        out.push_str(&format!("{name}{labels} {}\n", prom_num(v)));
    }
}

/// Writes one summary family: quantile samples (absent percentiles are
/// skipped, matching the snapshot's `null` fields) plus optional
/// `_sum`/`_count` lines.
fn prom_summary(
    out: &mut String,
    name: &str,
    help: &str,
    count_sum: Option<(u64, f64)>,
    quantiles: &[(&str, Option<f64>)],
) {
    let qs: Vec<(&str, f64)> = quantiles
        .iter()
        .filter_map(|(q, v)| v.map(|v| (*q, v)))
        .collect();
    if qs.is_empty() && count_sum.is_none() {
        return;
    }
    out.push_str(&format!("# HELP {name} {help}\n# TYPE {name} summary\n"));
    for (q, v) in qs {
        out.push_str(&format!("{name}{{quantile=\"{q}\"}} {}\n", prom_num(v)));
    }
    if let Some((count, sum)) = count_sum {
        out.push_str(&format!("{name}_sum {}\n", prom_num(sum)));
        out.push_str(&format!("{name}_count {count}\n"));
    }
}

/// Renders a [`MetricsSnapshot`] as a Prometheus text exposition — what
/// a scrape of the final state would return. Counters get the `_total`
/// suffix convention, latency summaries render as `{quantile="..."}`
/// series (empty histograms export no quantile samples, matching the
/// snapshot's `null` fields), and the per-tier / per-instance slices
/// become labeled series.
pub fn to_prometheus(snap: &MetricsSnapshot) -> String {
    let mut out = String::new();
    let plain = |v: f64| vec![(String::new(), v)];

    let counters: [(&str, &str, u64); 18] = [
        (
            "turns_arrived",
            "Turns that arrived and were queued.",
            snap.turns_arrived,
        ),
        (
            "turns_retired",
            "Jobs that finished decoding and retired.",
            snap.retired,
        ),
        (
            "truncations",
            "Context-overflow truncations.",
            snap.truncations,
        ),
        (
            "hits_fast",
            "Consultations classified fast-tier hits.",
            snap.hits_fast,
        ),
        (
            "hits_slow",
            "Consultations classified slow-tier hits.",
            snap.hits_slow,
        ),
        ("misses", "Consultations classified misses.", snap.misses),
        (
            "store_misses",
            "Store lookups that found nothing cached.",
            snap.store_misses,
        ),
        (
            "saves",
            "Sessions saved or updated in the store.",
            snap.saves,
        ),
        (
            "save_rejections",
            "Saves rejected for capacity.",
            snap.save_rejections,
        ),
        (
            "prefetch_promotions",
            "Look-ahead prefetch promotions.",
            snap.prefetch_promotions,
        ),
        (
            "demand_promotions",
            "Demand-fetch promotions.",
            snap.demand_promotions,
        ),
        (
            "demotions",
            "One-hop demotions to slower tiers.",
            snap.demotions,
        ),
        ("evictions", "Bottom-tier evictions.", snap.evictions),
        (
            "write_stalls",
            "Admissions stalled on the HBM write buffer.",
            snap.write_stalls,
        ),
        (
            "read_retries",
            "Injected read errors that were retried.",
            snap.read_retries,
        ),
        (
            "write_retries",
            "Injected write errors that were retried.",
            snap.write_retries,
        ),
        (
            "instance_crashes",
            "Scripted instance crashes.",
            snap.instance_crashes,
        ),
        (
            "turns_rerouted",
            "Turns re-queued after a crash.",
            snap.turns_rerouted,
        ),
    ];
    for (name, help, v) in counters {
        prom_metric(
            &mut out,
            &format!("cachedattention_{name}_total"),
            help,
            "counter",
            plain(v as f64),
        );
    }
    prom_metric(
        &mut out,
        "cachedattention_hit_rate",
        "Hits over classified consultations.",
        "gauge",
        plain(snap.hit_rate),
    );
    prom_metric(
        &mut out,
        "cachedattention_overlap_efficiency",
        "Fraction of KV transfer time hidden under prefill compute.",
        "gauge",
        plain(snap.overlap_efficiency),
    );
    prom_metric(
        &mut out,
        "cachedattention_hbm_reserved_peak_bytes",
        "Peak live-KV HBM reservation.",
        "gauge",
        plain(snap.hbm_reserved_peak_bytes),
    );

    // Latency summaries: absent percentiles (empty histograms) export no
    // quantile samples, matching the snapshot's `null` fields. Only TTFT
    // carries `_sum`/`_count` (the snapshot keeps no sample count for
    // the other distributions).
    prom_summary(
        &mut out,
        "cachedattention_ttft_seconds",
        "Service TTFT (admission to first token).",
        Some((
            snap.ttft_count,
            snap.ttft_mean_secs * snap.ttft_count as f64,
        )),
        &[
            ("0.5", snap.ttft_p50_secs),
            ("0.95", snap.ttft_p95_secs),
            ("0.99", snap.ttft_p99_secs),
        ],
    );
    prom_summary(
        &mut out,
        "cachedattention_queue_wait_seconds",
        "Queue wait (arrival to admission).",
        None,
        &[
            ("0.5", snap.queue_wait_p50_secs),
            ("0.95", snap.queue_wait_p95_secs),
            ("0.99", snap.queue_wait_p99_secs),
        ],
    );
    prom_summary(
        &mut out,
        "cachedattention_prefetch_latency_seconds",
        "Prefetch staging latency (promotion to completion).",
        None,
        &[("0.99", snap.prefetch_latency_p99_secs)],
    );

    prom_metric(
        &mut out,
        "cachedattention_store_hits_total",
        "Store lookups served per tier.",
        "counter",
        snap.tiers
            .iter()
            .map(|t| (format!("{{tier=\"{}\"}}", t.name), t.store_hits as f64))
            .collect(),
    );
    prom_metric(
        &mut out,
        "cachedattention_tier_occupancy_peak_bytes",
        "Peak occupancy per tier.",
        "gauge",
        snap.tiers
            .iter()
            .map(|t| (format!("{{tier=\"{}\"}}", t.name), t.occupancy_peak_bytes))
            .collect(),
    );
    prom_metric(
        &mut out,
        "cachedattention_instance_turns_arrived_total",
        "Turns routed per serving instance.",
        "counter",
        snap.instances
            .iter()
            .map(|i| {
                (
                    format!("{{instance=\"{}\"}}", i.instance),
                    i.turns_arrived as f64,
                )
            })
            .collect(),
    );
    prom_metric(
        &mut out,
        "cachedattention_instance_retired_total",
        "Jobs retired per serving instance.",
        "counter",
        snap.instances
            .iter()
            .map(|i| (format!("{{instance=\"{}\"}}", i.instance), i.retired as f64))
            .collect(),
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim::Time;
    use store::TierId;

    fn rec(seq: u64, ev: TraceEvent) -> TraceRecord {
        TraceRecord {
            seq,
            instance: None,
            ev,
        }
    }

    fn rec_on(seq: u64, instance: u32, ev: TraceEvent) -> TraceRecord {
        TraceRecord {
            seq,
            instance: Some(instance),
            ev,
        }
    }

    fn sample_records() -> Vec<TraceRecord> {
        vec![
            rec(
                0,
                TraceEvent::Engine(EngineEvent::turn_arrived(1, 0, Time::ZERO)),
            ),
            rec(
                1,
                TraceEvent::Store(StoreEvent::FetchHit {
                    session: 1,
                    tier: TierId(0),
                    bytes: 100,
                    at: Time::from_millis(1),
                }),
            ),
            rec(
                2,
                TraceEvent::Engine(EngineEvent::admitted(
                    1,
                    100,
                    50,
                    false,
                    Time::from_millis(2),
                )),
            ),
            rec(
                3,
                TraceEvent::Engine(EngineEvent::prefill_done(1, 0.1, Time::from_millis(102))),
            ),
            rec(
                4,
                TraceEvent::Engine(EngineEvent::retired(1, 150, Time::from_millis(500))),
            ),
            rec(
                5,
                TraceEvent::Store(StoreEvent::Occupancy {
                    tier: TierId(0),
                    used_bytes: 10,
                    at: Time::from_millis(500),
                }),
            ),
            rec(
                6,
                TraceEvent::Store(StoreEvent::Occupancy {
                    tier: TierId(1),
                    used_bytes: 20,
                    at: Time::from_millis(500),
                }),
            ),
        ]
    }

    #[test]
    fn jsonl_is_one_parsable_object_per_line() {
        let text = to_jsonl(&sample_records());
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 7);
        for (i, line) in lines.iter().enumerate() {
            let v: Value = serde_json::from_str(line).expect("line parses");
            match v {
                Value::Object(pairs) => {
                    assert_eq!(pairs[0].0, "seq");
                    assert!(matches!(pairs[0].1, Value::U64(n) if n == i as u64));
                }
                other => panic!("expected object, got {other:?}"),
            }
        }
    }

    #[test]
    fn chrome_trace_has_spans_counters_and_metadata() {
        let json = to_chrome_trace(&sample_records());
        let parsed: Value = serde_json::from_str(&json).expect("valid JSON");
        let Value::Object(pairs) = parsed else {
            panic!("expected envelope object");
        };
        assert_eq!(pairs[0].0, "traceEvents");
        assert!(json.contains("\"name\":\"queued\""));
        assert!(json.contains("\"name\":\"prefill\""));
        assert!(json.contains("\"name\":\"decode\""));
        assert!(json.contains("\"name\":\"fetch_hit\""));
        // Per-tier occupancy tracks, labeled by index when no
        // `tier_config` record announced a name.
        assert!(json.contains("\"name\":\"store_occupancy_bytes:t0\""));
        assert!(json.contains("\"name\":\"store_occupancy_bytes:t1\""));
        assert!(json.contains("\"name\":\"session 1\""));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"ph\":\"C\""));
        assert!(json.contains("\"ph\":\"M\""));
    }

    #[test]
    fn tier_config_names_the_occupancy_tracks() {
        let records = vec![
            rec(
                0,
                TraceEvent::Store(StoreEvent::TierConfig {
                    tier: TierId(1),
                    name: "pooled",
                    capacity: 1_000,
                    at: Time::ZERO,
                }),
            ),
            rec(
                1,
                TraceEvent::Store(StoreEvent::Occupancy {
                    tier: TierId(1),
                    used_bytes: 64,
                    at: Time::from_millis(2),
                }),
            ),
        ];
        let json = to_chrome_trace(&records);
        assert!(json.contains("\"name\":\"store_occupancy_bytes:pooled\""));
        assert!(!json.contains("store_occupancy_bytes:t1"));
    }

    #[test]
    fn prefetch_flows_into_the_consuming_admission() {
        let records = vec![
            rec(
                0,
                TraceEvent::Engine(EngineEvent::turn_arrived(7, 0, Time::ZERO)),
            ),
            rec(
                1,
                TraceEvent::Store(StoreEvent::Promoted {
                    session: 7,
                    bytes: 100,
                    kind: FetchKind::Prefetch,
                    from: TierId(1),
                    to: TierId(0),
                    queue_pos: Some(0),
                    instance: None,
                    at: Time::from_millis(1),
                }),
            ),
            rec(
                2,
                TraceEvent::Store(StoreEvent::PrefetchCompleted {
                    session: 7,
                    instance: None,
                    at: Time::from_millis(5),
                }),
            ),
            rec(
                3,
                TraceEvent::Engine(EngineEvent::admitted(
                    7,
                    100,
                    50,
                    false,
                    Time::from_millis(8),
                )),
            ),
        ];
        let json = to_chrome_trace(&records);
        // The staging span, both flow endpoints sharing one id, and the
        // slice-end binding on the finish side.
        assert!(json.contains("\"name\":\"prefetch\""));
        assert!(json.contains("\"name\":\"kv_transfer\",\"cat\":\"tiering\",\"ph\":\"s\",\"id\":1"));
        assert!(json.contains("\"name\":\"kv_transfer\",\"cat\":\"tiering\",\"ph\":\"f\",\"id\":1"));
        assert!(json.contains("\"bp\":\"e\""));
    }

    #[test]
    fn write_buffer_stall_renders_with_its_real_extent() {
        let records = vec![rec(
            0,
            TraceEvent::Store(StoreEvent::WriteBufferStall {
                session: 3,
                until: Time::from_millis(40),
                at: Time::from_millis(10),
            }),
        )];
        let json = to_chrome_trace(&records);
        assert!(json.contains("\"name\":\"write_buffer_stall\""));
        // 30 ms of blocked admission = 30_000 µs of slice duration.
        assert!(json.contains("\"dur\":30000"));
        // A duration slice, not the old instant marker.
        assert!(!json.contains("\"ph\":\"i\""));
    }

    #[test]
    fn instances_become_their_own_perfetto_processes() {
        let records = vec![
            rec_on(
                0,
                0,
                TraceEvent::Engine(EngineEvent::turn_arrived(1, 0, Time::ZERO)),
            ),
            rec_on(
                1,
                1,
                TraceEvent::Engine(EngineEvent::turn_arrived(2, 0, Time::ZERO)),
            ),
            rec_on(
                2,
                0,
                TraceEvent::Engine(EngineEvent::admitted(1, 0, 50, false, Time::from_millis(2))),
            ),
            rec_on(
                3,
                1,
                TraceEvent::Engine(EngineEvent::admitted(2, 0, 50, false, Time::from_millis(3))),
            ),
        ];
        let json = to_chrome_trace(&records);
        // Instance 0 keeps the pre-cluster process identity; instance 1
        // appears as its own named process with its own session thread.
        assert!(json.contains("\"name\":\"cachedattention\""));
        assert!(json.contains("\"name\":\"cachedattention instance 1\""));
        assert!(json.contains("\"pid\":2"));
        let parsed: Value = serde_json::from_str(&json).expect("valid JSON");
        let Value::Object(pairs) = parsed else {
            panic!("expected envelope object");
        };
        let Value::Array(events) = &pairs[0].1 else {
            panic!("expected traceEvents array");
        };
        // Both queued spans exist, one per process.
        let queued: Vec<&Value> = events
            .iter()
            .filter(|e| {
                serde_json::to_string(e)
                    .unwrap()
                    .contains("\"name\":\"queued\"")
            })
            .collect();
        assert_eq!(queued.len(), 2);
    }

    use crate::health::{AlertKind, AlertRule, HealthSignals, Signal, SloConfig};
    use crate::window::WindowedHub;
    use engine::EngineObserver;

    fn alert(kind: AlertKind, at_secs: f64, window: usize) -> AlertEvent {
        AlertEvent {
            rule: "queue_depth_high".into(),
            signal: "queue_depth".into(),
            kind,
            window,
            at_secs,
            value: 12.0,
        }
    }

    #[test]
    fn alerts_render_as_global_instants_in_the_chrome_trace() {
        let alerts = vec![
            alert(AlertKind::Fired, 2.0, 1),
            alert(AlertKind::Resolved, 5.0, 4),
        ];
        let json = to_chrome_trace_with_alerts(&sample_records(), &alerts);
        serde_json::from_str::<Value>(&json).expect("valid JSON");
        assert!(json.contains("\"name\":\"queue_depth_high\""));
        assert!(json.contains("\"cat\":\"alert\""));
        // Global-scope instants so they span every track in Perfetto.
        assert!(json.contains("\"ph\":\"i\",\"s\":\"g\""));
        assert!(json.contains("\"kind\":\"alert_fired\""));
        assert!(json.contains("\"kind\":\"alert_resolved\""));
        // Instant at 2 s virtual time = 2_000_000 µs.
        assert!(json.contains("\"ts\":2000000.0"));
    }

    /// A small windowed run: two TTFT samples in different windows plus
    /// a queue arrival, sealed and scored against a 1 s SLO.
    fn windowed_fixture() -> (crate::window::WindowSeries, HealthSignals) {
        let mut hub = WindowedHub::new(1.0);
        hub.on_event(EngineEvent::turn_arrived(1, 0, Time::from_millis(100)));
        hub.on_event(EngineEvent::admitted(
            1,
            0,
            50,
            false,
            Time::from_millis(200),
        ));
        hub.on_event(EngineEvent::prefill_done(1, 0.1, Time::from_millis(300)));
        hub.on_event(EngineEvent::prefill_done(2, 2.5, Time::from_secs_f64(1.5)));
        hub.on_store_event(StoreEvent::Occupancy {
            tier: TierId(0),
            used_bytes: 64,
            at: Time::from_millis(400),
        });
        let series = hub.series();
        let signals = HealthSignals::from_series(&series, &SloConfig::new(1.0));
        (series, signals)
    }

    #[test]
    fn windowed_jsonl_has_header_windows_and_alerts() {
        let (series, signals) = windowed_fixture();
        let rules = [AlertRule::new("burn", Signal::SloBurnRate, 1.0)];
        let alerts = signals.evaluate(&rules);
        assert!(!alerts.is_empty());
        let text = windows_to_jsonl(&series, &signals, &alerts);
        let lines: Vec<&str> = text.lines().collect();
        // Header + one line per window + one per alert event.
        assert_eq!(lines.len(), 1 + series.windows.len() + alerts.len());
        let header: Value = serde_json::from_str(lines[0]).expect("header parses");
        assert!(matches!(header.get("kind"), Some(Value::Str(s)) if s == "window_config"));
        assert!(matches!(header.get("width_secs"), Some(Value::F64(w)) if *w == 1.0));
        for line in &lines[1..=series.windows.len()] {
            let v: Value = serde_json::from_str(line).expect("window line parses");
            assert!(matches!(v.get("kind"), Some(Value::Str(s)) if s == "window"));
            assert!(v.get("counters").is_some());
            assert!(v.get("ttft").is_some());
            assert!(v.get("tiers").is_some());
        }
        let last: Value = serde_json::from_str(lines.last().unwrap()).expect("alert parses");
        assert!(matches!(last.get("kind"), Some(Value::Str(s)) if s.starts_with("alert_")));
        // Window 0's TTFT sample (0.1 s) is under the 1 s target: burn 0.
        let w0: Value = serde_json::from_str(lines[1]).expect("w0 parses");
        assert!(matches!(w0.get("slo_burn_rate"), Some(Value::F64(b)) if *b == 0.0));
        // Window 1's sample (2.5 s) breaches: burn present and > 1.
        let w1: Value = serde_json::from_str(lines[2]).expect("w1 parses");
        assert!(matches!(w1.get("slo_burn_rate"), Some(Value::F64(b)) if *b > 1.0));
    }

    #[test]
    fn prometheus_exposition_has_counters_gauges_and_summaries() {
        let mut hub = crate::hub::MetricsHub::new();
        hub.on_event(EngineEvent::turn_arrived(1, 0, Time::ZERO));
        hub.on_event(EngineEvent::admitted(1, 0, 50, false, Time::from_millis(4)));
        hub.on_event(EngineEvent::prefill_done(1, 0.25, Time::from_millis(254)));
        hub.on_store_event(StoreEvent::TierConfig {
            tier: TierId(0),
            name: "dram",
            capacity: 1_000,
            at: Time::ZERO,
        });
        hub.on_store_event(StoreEvent::FetchHit {
            session: 1,
            tier: TierId(0),
            bytes: 5,
            at: Time::from_millis(1),
        });
        let text = to_prometheus(&hub.snapshot());
        assert!(text.contains("# TYPE cachedattention_turns_arrived_total counter"));
        assert!(text.contains("cachedattention_turns_arrived_total 1\n"));
        assert!(text.contains("# TYPE cachedattention_ttft_seconds summary"));
        assert!(text.contains("cachedattention_ttft_seconds{quantile=\"0.99\"} 0.25\n"));
        assert!(text.contains("cachedattention_ttft_seconds_count 1\n"));
        assert!(text.contains("cachedattention_store_hits_total{tier=\"dram\"} 1\n"));
        // Empty distributions export no quantile series at all.
        assert!(!text.contains("cachedattention_prefetch_latency_seconds"));
        // Every non-comment line is `name[{labels}] value`.
        for line in text.lines() {
            if line.starts_with('#') {
                continue;
            }
            assert!(
                line.split_whitespace().count() == 2,
                "malformed sample line: {line}"
            );
        }
    }
}
