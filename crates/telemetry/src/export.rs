//! Trace exporters: JSONL event dumps and Chrome trace-event JSON.
//!
//! [`to_jsonl`] writes one self-describing JSON object per line — the
//! grep/jq-friendly format the CI smoke check validates. [`to_chrome_trace`]
//! renders the same records in the Chrome trace-event format (the
//! `{"traceEvents": [...]}` envelope), which Perfetto and
//! `chrome://tracing` open directly: one process per serving instance
//! (records without instance attribution land on the default process),
//! one thread per session showing queued → prefill → decode spans,
//! prefetch staging and write-buffer stall spans with flow arrows
//! linking each prefetch to the admission that consumes it, instant
//! markers for the store's placement decisions, and counter tracks for
//! HBM reservations and each tier's occupancy (one track per tier,
//! labeled with the stack's configured tier names). A session that migrates
//! instances under least-loaded routing shows its spans under whichever
//! process served that turn.

use std::collections::HashMap;

use engine::EngineEvent;
use serde::Value;
use store::{FetchKind, StoreEvent};

use crate::trace::{TraceEvent, TraceRecord};

/// Renders records as JSON Lines: one object per record, `seq` first.
pub fn to_jsonl(records: &[TraceRecord]) -> String {
    let mut out = String::new();
    for rec in records {
        out.push_str(&serde_json::to_string(rec).expect("trace records always serialize"));
        out.push('\n');
    }
    out
}

/// Virtual pid of unattributed records (and of instance 0, so
/// single-instance traces look exactly like the pre-cluster ones).
const DEFAULT_PID: u64 = 1;

/// Virtual pid of a record: instance `i` maps to process `i + 1`.
fn pid_of(rec: &TraceRecord) -> u64 {
    rec.instance.map_or(DEFAULT_PID, |i| u64::from(i) + 1)
}

fn obj(pairs: Vec<(&str, Value)>) -> Value {
    Value::Object(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

fn micros(secs: f64) -> Value {
    Value::F64(secs * 1e6)
}

/// A complete ("X") span on a session track.
fn span(name: &str, cat: &str, pid: u64, tid: u64, start_secs: f64, end_secs: f64) -> Value {
    obj(vec![
        ("name", Value::Str(name.to_string())),
        ("cat", Value::Str(cat.to_string())),
        ("ph", Value::Str("X".to_string())),
        ("ts", micros(start_secs)),
        ("dur", micros((end_secs - start_secs).max(0.0))),
        ("pid", Value::U64(pid)),
        ("tid", Value::U64(tid)),
    ])
}

/// A thread-scoped instant ("i") marker on a session track.
fn instant(name: &str, cat: &str, pid: u64, tid: u64, at_secs: f64) -> Value {
    obj(vec![
        ("name", Value::Str(name.to_string())),
        ("cat", Value::Str(cat.to_string())),
        ("ph", Value::Str("i".to_string())),
        ("s", Value::Str("t".to_string())),
        ("ts", micros(at_secs)),
        ("pid", Value::U64(pid)),
        ("tid", Value::U64(tid)),
    ])
}

/// A counter ("C") sample.
fn counter(name: &str, pid: u64, at_secs: f64, args: Vec<(&str, Value)>) -> Value {
    obj(vec![
        ("name", Value::Str(name.to_string())),
        ("ph", Value::Str("C".to_string())),
        ("ts", micros(at_secs)),
        ("pid", Value::U64(pid)),
        ("args", obj(args)),
    ])
}

/// One endpoint of a flow arrow: `ph: "s"` opens it at the producer,
/// `ph: "f"` (binding to the enclosing slice's end, `bp: "e"`) closes
/// it at the consumer. Perfetto draws the arrow between the two slices.
fn flow(phase: &str, id: u64, pid: u64, tid: u64, at_secs: f64) -> Value {
    let mut pairs = vec![
        ("name", Value::Str("kv_transfer".to_string())),
        ("cat", Value::Str("tiering".to_string())),
        ("ph", Value::Str(phase.to_string())),
        ("id", Value::U64(id)),
        ("ts", micros(at_secs)),
        ("pid", Value::U64(pid)),
        ("tid", Value::U64(tid)),
    ];
    if phase == "f" {
        pairs.push(("bp", Value::Str("e".to_string())));
    }
    obj(pairs)
}

/// A metadata ("M") event naming a process or a thread.
fn metadata(what: &str, pid: u64, tid: Option<u64>, label: &str) -> Value {
    let mut pairs = vec![
        ("name", Value::Str(what.to_string())),
        ("ph", Value::Str("M".to_string())),
        ("pid", Value::U64(pid)),
    ];
    if let Some(tid) = tid {
        pairs.push(("tid", Value::U64(tid)));
    }
    pairs.push(("args", obj(vec![("name", Value::Str(label.to_string()))])));
    obj(pairs)
}

/// Renders records as a Chrome trace-event file (loadable in Perfetto).
///
/// Each serving instance is a process (instance `i` = pid `i + 1`;
/// unattributed records share pid 1 with instance 0); session tracks are
/// threads of the process that served them; `ts`/`dur` are microseconds
/// of virtual time. Span pairing follows the pipeline's causal order:
/// `TurnArrived → Admitted` becomes a `queued` span, `Admitted →
/// PrefillDone` a `prefill` span, `PrefillDone → Retired` a `decode`
/// span, and a prefetch `Promoted → PrefetchCompleted` pair a `prefetch`
/// staging span. Write-buffer stalls render with their real extent
/// (`at → until`), the visible fetch stall nests inside its prefill
/// slice, and a flow arrow connects each completed prefetch to the
/// admission that consumes the staged KV — the Perfetto waterfall shows
/// the §3.2 overlap (or its absence) directly. Store decisions appear
/// as instant markers; occupancy gauges and HBM reservations become
/// per-process counter tracks.
pub fn to_chrome_trace(records: &[TraceRecord]) -> String {
    let mut events: Vec<Value> = Vec::new();
    let mut named_pids: Vec<u64> = Vec::new();
    let mut named_threads: Vec<(u64, u64)> = Vec::new();
    // Open span starts, keyed by session: (pid at start, start time).
    let mut queued_at: HashMap<u64, (u64, f64)> = HashMap::new();
    let mut admitted_at: HashMap<u64, (u64, f64)> = HashMap::new();
    let mut prefill_done_at: HashMap<u64, (u64, f64)> = HashMap::new();
    let mut prefetch_at: HashMap<u64, (u64, f64)> = HashMap::new();
    // Finished prefetch stagings awaiting their consumer: session →
    // (pid of the staging span, staging end time). Consumed by the next
    // admission to draw the causal prefetch → prefill flow arrow.
    let mut prefetch_done: HashMap<u64, (u64, f64)> = HashMap::new();
    let mut flow_ids: u64 = 0;
    // Tier index → display name, learned from `tier_config` records.
    let mut tier_labels: HashMap<usize, &'static str> = HashMap::new();

    for rec in records {
        let pid = pid_of(rec);
        if !named_pids.contains(&pid) {
            named_pids.push(pid);
            let label = if pid == DEFAULT_PID {
                "cachedattention".to_string()
            } else {
                format!("cachedattention instance {}", pid - 1)
            };
            events.push(metadata("process_name", pid, None, &label));
        }
        if let Some(sid) = rec.ev.session() {
            if !named_threads.contains(&(pid, sid)) {
                named_threads.push((pid, sid));
                events.push(metadata(
                    "thread_name",
                    pid,
                    Some(sid),
                    &format!("session {sid}"),
                ));
            }
        }
        let at = rec.ev.at().as_secs_f64();
        match rec.ev {
            TraceEvent::Engine(ev) => match ev {
                EngineEvent::TurnArrived { session, .. } => {
                    queued_at.insert(session, (pid, at));
                }
                EngineEvent::Admitted { session, .. } => {
                    if let Some((p, start)) = queued_at.remove(&session) {
                        events.push(span("queued", "sched", p, session, start, at));
                    }
                    if let Some((p, end)) = prefetch_done.remove(&session) {
                        // Causal edge: the staged KV this admission
                        // consumes came from that prefetch.
                        flow_ids += 1;
                        events.push(flow("s", flow_ids, p, session, end));
                        events.push(flow("f", flow_ids, pid, session, at));
                    }
                    admitted_at.insert(session, (pid, at));
                }
                EngineEvent::PrefillDone { session, .. } => {
                    if let Some((p, start)) = admitted_at.remove(&session) {
                        events.push(span("prefill", "gpu", p, session, start, at));
                    }
                    prefill_done_at.insert(session, (pid, at));
                }
                EngineEvent::Retired { session, .. } => {
                    if let Some((p, start)) = prefill_done_at.remove(&session) {
                        events.push(span("decode", "gpu", p, session, start, at));
                    }
                }
                EngineEvent::HbmReserved { reserved_bytes, .. } => {
                    events.push(counter(
                        "hbm_reserved_bytes",
                        pid,
                        at,
                        vec![("reserved", Value::U64(reserved_bytes))],
                    ));
                }
                EngineEvent::PrefillTimed {
                    session,
                    stall_secs,
                    ..
                } => {
                    // The visible fetch stall nests inside the upcoming
                    // `prefill` slice (the stall leads, compute follows).
                    if stall_secs > 0.0 {
                        events.push(span(
                            "fetch_stall",
                            "gpu",
                            pid,
                            session,
                            at,
                            at + stall_secs,
                        ));
                    }
                }
                EngineEvent::Truncated { session, .. }
                | EngineEvent::Consulted { session, .. }
                | EngineEvent::Deferred { session, .. }
                | EngineEvent::TurnRerouted { session, .. }
                | EngineEvent::DegradedRecompute { session, .. } => {
                    events.push(instant(ev.kind(), ev.category(), pid, session, at));
                }
                EngineEvent::InstanceCrashed { .. } => {
                    // No session track: mark the crash on the instance's
                    // tid-0 lane.
                    events.push(instant(ev.kind(), ev.category(), pid, 0, at));
                }
            },
            TraceEvent::Store(ev) => match ev {
                StoreEvent::TierConfig { tier, name, .. } => {
                    tier_labels.insert(tier.0, name);
                }
                StoreEvent::Occupancy {
                    tier, used_bytes, ..
                } => {
                    let label = tier_labels
                        .get(&tier.0)
                        .map_or_else(|| format!("t{}", tier.0), |n| (*n).to_string());
                    events.push(counter(
                        &format!("store_occupancy_bytes:{label}"),
                        pid,
                        at,
                        vec![("used", Value::U64(used_bytes))],
                    ));
                }
                StoreEvent::Promoted {
                    session,
                    kind: FetchKind::Prefetch,
                    ..
                } => {
                    prefetch_at.insert(session, (pid, at));
                }
                StoreEvent::PrefetchCompleted { session, .. } => {
                    if let Some((p, start)) = prefetch_at.remove(&session) {
                        events.push(span("prefetch", "tiering", p, session, start, at));
                        prefetch_done.insert(session, (p, at));
                    }
                }
                StoreEvent::WriteBufferStall { session, until, .. } => {
                    // The stall has real extent — admission is blocked
                    // from `at` until the buffer drains at `until` — so
                    // it renders as a duration slice, not an instant.
                    events.push(span(
                        "write_buffer_stall",
                        "stall",
                        pid,
                        session,
                        at,
                        until.as_secs_f64(),
                    ));
                }
                other => {
                    if let Some(sid) = other.session() {
                        events.push(instant(other.kind(), other.category(), pid, sid, at));
                    }
                }
            },
        }
    }
    if events.is_empty() {
        events.push(metadata(
            "process_name",
            DEFAULT_PID,
            None,
            "cachedattention",
        ));
    }

    let envelope = obj(vec![
        ("traceEvents", Value::Array(events)),
        ("displayTimeUnit", Value::Str("ms".to_string())),
    ]);
    serde_json::to_string(&envelope).expect("trace envelope always serializes")
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim::Time;
    use store::TierId;

    fn rec(seq: u64, ev: TraceEvent) -> TraceRecord {
        TraceRecord {
            seq,
            instance: None,
            ev,
        }
    }

    fn rec_on(seq: u64, instance: u32, ev: TraceEvent) -> TraceRecord {
        TraceRecord {
            seq,
            instance: Some(instance),
            ev,
        }
    }

    fn sample_records() -> Vec<TraceRecord> {
        vec![
            rec(
                0,
                TraceEvent::Engine(EngineEvent::turn_arrived(1, 0, Time::ZERO)),
            ),
            rec(
                1,
                TraceEvent::Store(StoreEvent::FetchHit {
                    session: 1,
                    tier: TierId(0),
                    bytes: 100,
                    at: Time::from_millis(1),
                }),
            ),
            rec(
                2,
                TraceEvent::Engine(EngineEvent::admitted(
                    1,
                    100,
                    50,
                    false,
                    Time::from_millis(2),
                )),
            ),
            rec(
                3,
                TraceEvent::Engine(EngineEvent::prefill_done(1, 0.1, Time::from_millis(102))),
            ),
            rec(
                4,
                TraceEvent::Engine(EngineEvent::retired(1, 150, Time::from_millis(500))),
            ),
            rec(
                5,
                TraceEvent::Store(StoreEvent::Occupancy {
                    tier: TierId(0),
                    used_bytes: 10,
                    at: Time::from_millis(500),
                }),
            ),
            rec(
                6,
                TraceEvent::Store(StoreEvent::Occupancy {
                    tier: TierId(1),
                    used_bytes: 20,
                    at: Time::from_millis(500),
                }),
            ),
        ]
    }

    #[test]
    fn jsonl_is_one_parsable_object_per_line() {
        let text = to_jsonl(&sample_records());
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 7);
        for (i, line) in lines.iter().enumerate() {
            let v: Value = serde_json::from_str(line).expect("line parses");
            match v {
                Value::Object(pairs) => {
                    assert_eq!(pairs[0].0, "seq");
                    assert!(matches!(pairs[0].1, Value::U64(n) if n == i as u64));
                }
                other => panic!("expected object, got {other:?}"),
            }
        }
    }

    #[test]
    fn chrome_trace_has_spans_counters_and_metadata() {
        let json = to_chrome_trace(&sample_records());
        let parsed: Value = serde_json::from_str(&json).expect("valid JSON");
        let Value::Object(pairs) = parsed else {
            panic!("expected envelope object");
        };
        assert_eq!(pairs[0].0, "traceEvents");
        assert!(json.contains("\"name\":\"queued\""));
        assert!(json.contains("\"name\":\"prefill\""));
        assert!(json.contains("\"name\":\"decode\""));
        assert!(json.contains("\"name\":\"fetch_hit\""));
        // Per-tier occupancy tracks, labeled by index when no
        // `tier_config` record announced a name.
        assert!(json.contains("\"name\":\"store_occupancy_bytes:t0\""));
        assert!(json.contains("\"name\":\"store_occupancy_bytes:t1\""));
        assert!(json.contains("\"name\":\"session 1\""));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"ph\":\"C\""));
        assert!(json.contains("\"ph\":\"M\""));
    }

    #[test]
    fn tier_config_names_the_occupancy_tracks() {
        let records = vec![
            rec(
                0,
                TraceEvent::Store(StoreEvent::TierConfig {
                    tier: TierId(1),
                    name: "pooled",
                    capacity: 1_000,
                    at: Time::ZERO,
                }),
            ),
            rec(
                1,
                TraceEvent::Store(StoreEvent::Occupancy {
                    tier: TierId(1),
                    used_bytes: 64,
                    at: Time::from_millis(2),
                }),
            ),
        ];
        let json = to_chrome_trace(&records);
        assert!(json.contains("\"name\":\"store_occupancy_bytes:pooled\""));
        assert!(!json.contains("store_occupancy_bytes:t1"));
    }

    #[test]
    fn prefetch_flows_into_the_consuming_admission() {
        let records = vec![
            rec(
                0,
                TraceEvent::Engine(EngineEvent::turn_arrived(7, 0, Time::ZERO)),
            ),
            rec(
                1,
                TraceEvent::Store(StoreEvent::Promoted {
                    session: 7,
                    bytes: 100,
                    kind: FetchKind::Prefetch,
                    from: TierId(1),
                    to: TierId(0),
                    queue_pos: Some(0),
                    instance: None,
                    at: Time::from_millis(1),
                }),
            ),
            rec(
                2,
                TraceEvent::Store(StoreEvent::PrefetchCompleted {
                    session: 7,
                    instance: None,
                    at: Time::from_millis(5),
                }),
            ),
            rec(
                3,
                TraceEvent::Engine(EngineEvent::admitted(
                    7,
                    100,
                    50,
                    false,
                    Time::from_millis(8),
                )),
            ),
        ];
        let json = to_chrome_trace(&records);
        // The staging span, both flow endpoints sharing one id, and the
        // slice-end binding on the finish side.
        assert!(json.contains("\"name\":\"prefetch\""));
        assert!(json.contains("\"name\":\"kv_transfer\",\"cat\":\"tiering\",\"ph\":\"s\",\"id\":1"));
        assert!(json.contains("\"name\":\"kv_transfer\",\"cat\":\"tiering\",\"ph\":\"f\",\"id\":1"));
        assert!(json.contains("\"bp\":\"e\""));
    }

    #[test]
    fn write_buffer_stall_renders_with_its_real_extent() {
        let records = vec![rec(
            0,
            TraceEvent::Store(StoreEvent::WriteBufferStall {
                session: 3,
                until: Time::from_millis(40),
                at: Time::from_millis(10),
            }),
        )];
        let json = to_chrome_trace(&records);
        assert!(json.contains("\"name\":\"write_buffer_stall\""));
        // 30 ms of blocked admission = 30_000 µs of slice duration.
        assert!(json.contains("\"dur\":30000"));
        // A duration slice, not the old instant marker.
        assert!(!json.contains("\"ph\":\"i\""));
    }

    #[test]
    fn instances_become_their_own_perfetto_processes() {
        let records = vec![
            rec_on(
                0,
                0,
                TraceEvent::Engine(EngineEvent::turn_arrived(1, 0, Time::ZERO)),
            ),
            rec_on(
                1,
                1,
                TraceEvent::Engine(EngineEvent::turn_arrived(2, 0, Time::ZERO)),
            ),
            rec_on(
                2,
                0,
                TraceEvent::Engine(EngineEvent::admitted(1, 0, 50, false, Time::from_millis(2))),
            ),
            rec_on(
                3,
                1,
                TraceEvent::Engine(EngineEvent::admitted(2, 0, 50, false, Time::from_millis(3))),
            ),
        ];
        let json = to_chrome_trace(&records);
        // Instance 0 keeps the pre-cluster process identity; instance 1
        // appears as its own named process with its own session thread.
        assert!(json.contains("\"name\":\"cachedattention\""));
        assert!(json.contains("\"name\":\"cachedattention instance 1\""));
        assert!(json.contains("\"pid\":2"));
        let parsed: Value = serde_json::from_str(&json).expect("valid JSON");
        let Value::Object(pairs) = parsed else {
            panic!("expected envelope object");
        };
        let Value::Array(events) = &pairs[0].1 else {
            panic!("expected traceEvents array");
        };
        // Both queued spans exist, one per process.
        let queued: Vec<&Value> = events
            .iter()
            .filter(|e| {
                serde_json::to_string(e)
                    .unwrap()
                    .contains("\"name\":\"queued\"")
            })
            .collect();
        assert_eq!(queued.len(), 2);
    }
}
