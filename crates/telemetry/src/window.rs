//! The windowed metrics plane: tumbling sim-time windows over the same
//! commit-ordered event stream [`MetricsHub`](crate::MetricsHub) folds
//! into end-of-run totals.
//!
//! A [`WindowedHub`] slices the run into fixed-width tumbling windows of
//! *virtual* time. Each window carries the per-event counters (global,
//! per-tier and per-instance), queue-depth and occupancy gauges, and
//! four mergeable [`LogSketch`] latency distributions (TTFT, queue wait,
//! fetch stall, prefetch latency). Because the sketches share one fixed
//! bucket grid, merging every window yields exactly the sketch of the
//! whole run — the reconciliation proptests pin window sums against the
//! end-of-run [`MetricsSnapshot`](crate::MetricsSnapshot).
//!
//! Events land in the window containing their own timestamp, not the
//! window being "currently" filled: the merged trace is ordered by
//! commit `seq`, and a completion event may carry a future link time, so
//! windows are kept addressable at all times and only sealed by
//! [`WindowedHub::series`]. Observation is strictly read-only, exactly
//! like the scalar hub.

use std::collections::HashMap;

use engine::{ConsultClass, EngineEvent, EngineObserver};
use metrics::LogSketch;
use serde::Serialize;
use store::{FetchKind, StoreEvent};

/// Per-window tallies of the engine and store event streams. Field
/// meanings match the same-named [`MetricsSnapshot`](crate::MetricsSnapshot)
/// totals; summing any field across all windows reproduces the total
/// exactly.
#[derive(Debug, Clone, Copy, Default, Serialize)]
pub struct WindowCounters {
    /// Turns that arrived (queued) in this window.
    pub turns_arrived: u64,
    /// Jobs admitted (prefill issued).
    pub admitted: u64,
    /// Jobs retired.
    pub retired: u64,
    /// Context-overflow truncations.
    pub truncations: u64,
    /// Consultations classified fast-tier hits.
    pub hits_fast: u64,
    /// Consultations classified slow-tier hits.
    pub hits_slow: u64,
    /// Consultations classified misses.
    pub misses: u64,
    /// Raw admission deferrals (uncoalesced).
    pub deferred_events: u64,
    /// Sessions saved or updated in the store.
    pub saves: u64,
    /// Saves rejected for capacity.
    pub save_rejections: u64,
    /// Demand lookups that found nothing cached.
    pub store_misses: u64,
    /// Look-ahead prefetch promotions.
    pub prefetch_promotions: u64,
    /// Demand-fetch promotions.
    pub demand_promotions: u64,
    /// One-hop demotions.
    pub demotions: u64,
    /// Bottom-tier evictions.
    pub evictions: u64,
    /// Entries dropped because the tier below had no room.
    pub drops: u64,
    /// TTL expirations.
    pub expirations: u64,
    /// Admissions stalled on the HBM write buffer.
    pub write_stalls: u64,
    /// Consults that matched at least one stored block (block keying).
    pub block_dedup_hits: u64,
    /// Blocks matched by those consults.
    pub blocks_matched: u64,
    /// Save-side blocks resolved to an already-stored copy.
    pub blocks_deduped: u64,
    /// Save-side blocks written fresh.
    pub blocks_written: u64,
    /// Sessions forked off a shared chain (copy-on-divergence).
    pub block_divergences: u64,
    /// Block demotions to a slower tier.
    pub block_demotions: u64,
    /// Unreferenced blocks reclaimed (refcounted eviction).
    pub block_evictions: u64,
    /// Injected read errors that were retried.
    pub read_retries: u64,
    /// Reads abandoned after exhausting retries.
    pub read_failures: u64,
    /// Injected write errors that were retried.
    pub write_retries: u64,
    /// Saves abandoned after exhausting retries.
    pub write_failures: u64,
    /// Checksum mismatches caught on load.
    pub corruptions_detected: u64,
    /// Turns degraded to a full re-prefill.
    pub recompute_fallbacks: u64,
    /// Scripted instance crashes.
    pub instance_crashes: u64,
    /// Turns re-queued after a crash.
    pub turns_rerouted: u64,
    /// Arriving turns shed with a typed rejection (SLO admission).
    pub turns_shed: u64,
    /// Degradation-ladder rung changes (either direction).
    pub overload_transitions: u64,
    /// Autoscaler scale-up actions.
    pub scale_ups: u64,
    /// Autoscaler scale-down actions.
    pub scale_downs: u64,
}

impl WindowCounters {
    /// Every fault-stream event folded into one tally (the alert
    /// engine's fault-rate signal).
    pub fn fault_events(&self) -> u64 {
        self.read_retries
            + self.read_failures
            + self.write_retries
            + self.write_failures
            + self.corruptions_detected
            + self.recompute_fallbacks
            + self.instance_crashes
            + self.turns_rerouted
    }

    fn merge(&mut self, other: &WindowCounters) {
        self.turns_arrived += other.turns_arrived;
        self.admitted += other.admitted;
        self.retired += other.retired;
        self.truncations += other.truncations;
        self.hits_fast += other.hits_fast;
        self.hits_slow += other.hits_slow;
        self.misses += other.misses;
        self.deferred_events += other.deferred_events;
        self.saves += other.saves;
        self.save_rejections += other.save_rejections;
        self.store_misses += other.store_misses;
        self.prefetch_promotions += other.prefetch_promotions;
        self.demand_promotions += other.demand_promotions;
        self.demotions += other.demotions;
        self.evictions += other.evictions;
        self.drops += other.drops;
        self.expirations += other.expirations;
        self.write_stalls += other.write_stalls;
        self.block_dedup_hits += other.block_dedup_hits;
        self.blocks_matched += other.blocks_matched;
        self.blocks_deduped += other.blocks_deduped;
        self.blocks_written += other.blocks_written;
        self.block_divergences += other.block_divergences;
        self.block_demotions += other.block_demotions;
        self.block_evictions += other.block_evictions;
        self.read_retries += other.read_retries;
        self.read_failures += other.read_failures;
        self.write_retries += other.write_retries;
        self.write_failures += other.write_failures;
        self.corruptions_detected += other.corruptions_detected;
        self.recompute_fallbacks += other.recompute_fallbacks;
        self.instance_crashes += other.instance_crashes;
        self.turns_rerouted += other.turns_rerouted;
        self.turns_shed += other.turns_shed;
        self.overload_transitions += other.overload_transitions;
        self.scale_ups += other.scale_ups;
        self.scale_downs += other.scale_downs;
    }
}

/// One tier's slice of a window.
#[derive(Debug, Clone)]
pub struct WindowTier {
    /// Tier-stack index, fastest first.
    pub tier: usize,
    /// Store lookups that found KV resident in this tier.
    pub store_hits: u64,
    /// Occupancy at the end of the window, bytes (forward-filled from
    /// the previous window when no gauge sample landed here).
    pub occupancy_end_bytes: f64,
    /// Peak occupancy within the window, bytes.
    pub occupancy_peak_bytes: f64,
    /// Whether a gauge sample actually landed in this window.
    sampled: bool,
}

impl WindowTier {
    fn new(tier: usize) -> Self {
        WindowTier {
            tier,
            store_hits: 0,
            occupancy_end_bytes: 0.0,
            occupancy_peak_bytes: 0.0,
            sampled: false,
        }
    }
}

/// One instance's slice of a window (empty in single-engine runs, which
/// observe through the instance-blind hooks).
#[derive(Debug, Clone, Copy)]
pub struct WindowInstance {
    /// Instance id.
    pub instance: u32,
    /// Turns routed to this instance in this window.
    pub turns_arrived: u64,
    /// Jobs admitted on this instance.
    pub admitted: u64,
    /// Jobs retired on this instance.
    pub retired: u64,
}

impl WindowInstance {
    fn new(instance: u32) -> Self {
        WindowInstance {
            instance,
            turns_arrived: 0,
            admitted: 0,
            retired: 0,
        }
    }
}

/// One tumbling window of the run: `[start_secs, end_secs)` in virtual
/// time.
#[derive(Debug, Clone)]
pub struct Window {
    /// Zero-based window index; `start_secs = index * width`.
    pub index: usize,
    /// Inclusive window start, seconds of virtual time.
    pub start_secs: f64,
    /// Exclusive window end, seconds of virtual time.
    pub end_secs: f64,
    /// Event tallies for this window.
    pub counters: WindowCounters,
    /// Queue depth (arrived, not yet admitted) at the end of the window.
    pub queue_depth_end: u64,
    /// Peak queue depth observed within the window.
    pub queue_depth_peak: u64,
    /// Live-KV HBM reservation at the end of the window, bytes.
    pub hbm_reserved_end_bytes: f64,
    /// Service TTFTs completed in this window, seconds.
    pub ttft: LogSketch,
    /// Queue waits of jobs admitted in this window, seconds.
    pub queue_wait: LogSketch,
    /// Visible fetch stalls of prefills issued in this window, seconds.
    pub fetch_stall: LogSketch,
    /// Prefetch staging latencies completed in this window, seconds.
    pub prefetch_latency: LogSketch,
    /// Per-tier slices, fastest tier first.
    pub tiers: Vec<WindowTier>,
    /// Per-instance slices (cluster runs only).
    pub instances: Vec<WindowInstance>,
    /// Whether any queue-depth-relevant event landed in this window.
    depth_sampled: bool,
    /// Whether an HBM gauge sample landed in this window.
    hbm_sampled: bool,
}

impl Window {
    fn new(index: usize, width_secs: f64) -> Self {
        Window {
            index,
            start_secs: index as f64 * width_secs,
            end_secs: (index + 1) as f64 * width_secs,
            counters: WindowCounters::default(),
            queue_depth_end: 0,
            queue_depth_peak: 0,
            hbm_reserved_end_bytes: 0.0,
            ttft: LogSketch::new(),
            queue_wait: LogSketch::new(),
            fetch_stall: LogSketch::new(),
            prefetch_latency: LogSketch::new(),
            tiers: Vec::new(),
            instances: Vec::new(),
            depth_sampled: false,
            hbm_sampled: false,
        }
    }

    fn tier(&mut self, tier: usize) -> &mut WindowTier {
        if self.tiers.len() <= tier {
            let from = self.tiers.len();
            self.tiers.extend((from..=tier).map(WindowTier::new));
        }
        &mut self.tiers[tier]
    }

    fn instance(&mut self, instance: u32) -> &mut WindowInstance {
        let i = instance as usize;
        if self.instances.len() <= i {
            let from = self.instances.len();
            self.instances
                .extend((from..=i).map(|n| WindowInstance::new(n as u32)));
        }
        &mut self.instances[i]
    }

    fn record_depth(&mut self, depth: u64) {
        self.queue_depth_peak = self.queue_depth_peak.max(depth);
        self.queue_depth_end = depth;
        self.depth_sampled = true;
    }
}

/// The sealed window series a [`WindowedHub`] renders at end of run:
/// contiguous, non-overlapping windows covering `[0, n * width)` with
/// gauges forward-filled across silent windows.
#[derive(Debug, Clone)]
pub struct WindowSeries {
    /// The tumbling window width, seconds of virtual time.
    pub width_secs: f64,
    /// Tier display names, fastest first (`t{i}` when never announced).
    pub tier_names: Vec<String>,
    /// The windows, index-ordered and contiguous.
    pub windows: Vec<Window>,
}

impl WindowSeries {
    /// Rolls every window up into one totals window (counters summed,
    /// sketches merged) — by construction exactly what a single-window
    /// hub would have recorded for the whole run.
    pub fn totals(&self) -> WindowTotals {
        let mut counters = WindowCounters::default();
        let mut ttft = LogSketch::new();
        let mut queue_wait = LogSketch::new();
        let mut fetch_stall = LogSketch::new();
        let mut prefetch_latency = LogSketch::new();
        for w in &self.windows {
            counters.merge(&w.counters);
            ttft.merge(&w.ttft);
            queue_wait.merge(&w.queue_wait);
            fetch_stall.merge(&w.fetch_stall);
            prefetch_latency.merge(&w.prefetch_latency);
        }
        WindowTotals {
            counters,
            ttft,
            queue_wait,
            fetch_stall,
            prefetch_latency,
        }
    }
}

/// The end-of-run rollup of a [`WindowSeries`].
#[derive(Debug, Clone)]
pub struct WindowTotals {
    /// Summed per-window counters.
    pub counters: WindowCounters,
    /// All TTFT samples, merged.
    pub ttft: LogSketch,
    /// All queue-wait samples, merged.
    pub queue_wait: LogSketch,
    /// All fetch-stall samples, merged.
    pub fetch_stall: LogSketch,
    /// All prefetch-latency samples, merged.
    pub prefetch_latency: LogSketch,
}

/// An [`EngineObserver`] aggregating the merged event stream into
/// tumbling windows of virtual time. Attach standalone, or through
/// [`Telemetry::with_windows`](crate::Telemetry::with_windows) to record
/// the raw trace alongside.
#[derive(Debug, Clone)]
pub struct WindowedHub {
    width_secs: f64,
    windows: Vec<Window>,
    /// Arrival time of each session's in-flight turn — the same pairing
    /// state [`MetricsHub`](crate::MetricsHub) keeps, so window queue
    /// waits reconcile sample-for-sample with the end-of-run histogram.
    /// Its size is also the observable queue depth (arrived, not yet
    /// admitted).
    arrivals: HashMap<u64, f64>,
    /// Promotion time of each session's in-flight prefetch.
    prefetch_starts: HashMap<u64, f64>,
    tier_names: Vec<Option<&'static str>>,
}

impl WindowedHub {
    /// Creates a hub slicing the run into `width_secs`-wide windows.
    ///
    /// # Panics
    /// Panics when `width_secs` is not strictly positive and finite.
    pub fn new(width_secs: f64) -> Self {
        assert!(
            width_secs > 0.0 && width_secs.is_finite(),
            "window width must be positive and finite"
        );
        WindowedHub {
            width_secs,
            windows: Vec::new(),
            arrivals: HashMap::new(),
            prefetch_starts: HashMap::new(),
            tier_names: Vec::new(),
        }
    }

    /// The configured window width, seconds.
    pub fn width_secs(&self) -> f64 {
        self.width_secs
    }

    fn window_at(&mut self, at_secs: f64) -> &mut Window {
        let idx = ((at_secs / self.width_secs).floor()).max(0.0) as usize;
        if self.windows.len() <= idx {
            let from = self.windows.len();
            let width = self.width_secs;
            self.windows
                .extend((from..=idx).map(|i| Window::new(i, width)));
        }
        &mut self.windows[idx]
    }

    fn record_depth_at(&mut self, at_secs: f64) {
        let depth = self.arrivals.len() as u64;
        self.window_at(at_secs).record_depth(depth);
    }

    /// Seals the series: windows are made contiguous from virtual time
    /// zero, and the queue-depth / occupancy / HBM gauges are forward-
    /// filled across windows no sample landed in (a silent window holds
    /// the last known level).
    pub fn series(&self) -> WindowSeries {
        let mut windows = self.windows.clone();
        let n_tiers = windows
            .iter()
            .map(|w| w.tiers.len())
            .max()
            .unwrap_or(0)
            .max(self.tier_names.len());
        let mut depth_carry = 0u64;
        let mut hbm_carry = 0.0f64;
        let mut occ_carry = vec![0.0f64; n_tiers];
        for w in &mut windows {
            for t in w.tiers.len()..n_tiers {
                w.tiers.push(WindowTier::new(t));
            }
            if w.depth_sampled {
                depth_carry = w.queue_depth_end;
            } else {
                w.queue_depth_end = depth_carry;
                w.queue_depth_peak = depth_carry;
            }
            if w.hbm_sampled {
                hbm_carry = w.hbm_reserved_end_bytes;
            } else {
                w.hbm_reserved_end_bytes = hbm_carry;
            }
            for t in &mut w.tiers {
                if t.sampled {
                    occ_carry[t.tier] = t.occupancy_end_bytes;
                } else {
                    t.occupancy_end_bytes = occ_carry[t.tier];
                    t.occupancy_peak_bytes = occ_carry[t.tier];
                }
            }
        }
        let tier_names = (0..n_tiers)
            .map(|i| match self.tier_names.get(i).copied().flatten() {
                Some(n) => n.to_string(),
                None => format!("t{i}"),
            })
            .collect();
        WindowSeries {
            width_secs: self.width_secs,
            tier_names,
            windows,
        }
    }
}

impl EngineObserver for WindowedHub {
    fn on_event(&mut self, ev: EngineEvent) {
        let at = ev.at().as_secs_f64();
        match ev {
            EngineEvent::TurnArrived { session, .. } => {
                self.window_at(at).counters.turns_arrived += 1;
                self.arrivals.insert(session, at);
                self.record_depth_at(at);
            }
            EngineEvent::Truncated { .. } => self.window_at(at).counters.truncations += 1,
            EngineEvent::Consulted { class, .. } => {
                let w = self.window_at(at);
                match class {
                    ConsultClass::NoHistory => {}
                    ConsultClass::NoStore | ConsultClass::Miss => w.counters.misses += 1,
                    ConsultClass::HitFast => w.counters.hits_fast += 1,
                    ConsultClass::HitSlow => w.counters.hits_slow += 1,
                }
            }
            EngineEvent::Deferred { .. } => self.window_at(at).counters.deferred_events += 1,
            EngineEvent::Admitted { session, .. } => {
                let arrived = self.arrivals.remove(&session);
                let w = self.window_at(at);
                w.counters.admitted += 1;
                if let Some(arrived) = arrived {
                    w.queue_wait.push(at - arrived);
                }
                self.record_depth_at(at);
            }
            EngineEvent::PrefillTimed { stall_secs, .. } => {
                self.window_at(at).fetch_stall.push(stall_secs);
            }
            EngineEvent::PrefillDone { ttft_secs, .. } => {
                self.window_at(at).ttft.push(ttft_secs);
            }
            EngineEvent::Retired { .. } => self.window_at(at).counters.retired += 1,
            EngineEvent::HbmReserved { reserved_bytes, .. } => {
                let w = self.window_at(at);
                w.hbm_reserved_end_bytes = reserved_bytes as f64;
                w.hbm_sampled = true;
            }
            EngineEvent::InstanceCrashed { .. } => {
                self.window_at(at).counters.instance_crashes += 1;
            }
            EngineEvent::TurnRerouted { .. } => self.window_at(at).counters.turns_rerouted += 1,
            EngineEvent::DegradedRecompute { .. } => {
                self.window_at(at).counters.recompute_fallbacks += 1;
            }
            EngineEvent::TurnShed { session, .. } => {
                // The arrival opened a queue-depth entry; the rejection
                // closes it without an admission.
                self.arrivals.remove(&session);
                self.window_at(at).counters.turns_shed += 1;
                self.record_depth_at(at);
            }
            EngineEvent::OverloadLevelChanged { .. } => {
                self.window_at(at).counters.overload_transitions += 1;
            }
            EngineEvent::ScaleUp { .. } => self.window_at(at).counters.scale_ups += 1,
            EngineEvent::ScaleDown { .. } => self.window_at(at).counters.scale_downs += 1,
            EngineEvent::SloConfig { .. } => {}
        }
    }

    fn on_instance_event(&mut self, instance: u32, ev: EngineEvent) {
        let at = ev.at().as_secs_f64();
        match ev {
            EngineEvent::TurnArrived { .. } => {
                self.window_at(at).instance(instance).turns_arrived += 1;
            }
            EngineEvent::Admitted { .. } => self.window_at(at).instance(instance).admitted += 1,
            EngineEvent::Retired { .. } => self.window_at(at).instance(instance).retired += 1,
            _ => {}
        }
        self.on_event(ev);
    }

    fn wants_store_events(&self) -> bool {
        true
    }

    fn on_store_event(&mut self, ev: StoreEvent) {
        let at = ev.at().as_secs_f64();
        match ev {
            StoreEvent::TierConfig { tier, name, .. } => {
                if self.tier_names.len() <= tier.0 {
                    self.tier_names.resize(tier.0 + 1, None);
                }
                self.tier_names[tier.0] = Some(name);
            }
            StoreEvent::Saved { .. } => self.window_at(at).counters.saves += 1,
            StoreEvent::SaveRejected { .. } => self.window_at(at).counters.save_rejections += 1,
            StoreEvent::FetchHit { tier, .. } => self.window_at(at).tier(tier.0).store_hits += 1,
            StoreEvent::FetchMiss { .. } => self.window_at(at).counters.store_misses += 1,
            StoreEvent::Promoted { session, kind, .. } => match kind {
                FetchKind::Demand => self.window_at(at).counters.demand_promotions += 1,
                FetchKind::Prefetch => {
                    self.window_at(at).counters.prefetch_promotions += 1;
                    self.prefetch_starts.insert(session, at);
                }
            },
            StoreEvent::Demoted { .. } => self.window_at(at).counters.demotions += 1,
            StoreEvent::Evicted { .. } => self.window_at(at).counters.evictions += 1,
            StoreEvent::Dropped { .. } => self.window_at(at).counters.drops += 1,
            StoreEvent::Expired { .. } => self.window_at(at).counters.expirations += 1,
            StoreEvent::Occupancy {
                tier, used_bytes, ..
            } => {
                let t = self.window_at(at).tier(tier.0);
                t.occupancy_end_bytes = used_bytes as f64;
                t.occupancy_peak_bytes = t.occupancy_peak_bytes.max(used_bytes as f64);
                t.sampled = true;
            }
            StoreEvent::PrefetchCompleted { session, .. } => {
                if let Some(start) = self.prefetch_starts.remove(&session) {
                    self.window_at(at).prefetch_latency.push(at - start);
                }
            }
            StoreEvent::WriteBufferStall { .. } => self.window_at(at).counters.write_stalls += 1,
            StoreEvent::BlockConfig { .. } => {}
            StoreEvent::BlockSaved {
                new_blocks,
                dedup_blocks,
                ..
            } => {
                let c = &mut self.window_at(at).counters;
                c.blocks_written += new_blocks;
                c.blocks_deduped += dedup_blocks;
            }
            StoreEvent::BlockDedupHit { matched_blocks, .. } => {
                let c = &mut self.window_at(at).counters;
                c.block_dedup_hits += 1;
                c.blocks_matched += matched_blocks;
            }
            StoreEvent::BlockDiverged { .. } => {
                self.window_at(at).counters.block_divergences += 1;
            }
            StoreEvent::BlockDemoted { .. } => self.window_at(at).counters.block_demotions += 1,
            StoreEvent::BlockEvicted { .. } => self.window_at(at).counters.block_evictions += 1,
            StoreEvent::ReadRetry { .. } => self.window_at(at).counters.read_retries += 1,
            StoreEvent::ReadFailed { .. } => self.window_at(at).counters.read_failures += 1,
            StoreEvent::WriteRetry { .. } => self.window_at(at).counters.write_retries += 1,
            StoreEvent::WriteFailed { .. } => self.window_at(at).counters.write_failures += 1,
            StoreEvent::CorruptionDetected { .. } => {
                self.window_at(at).counters.corruptions_detected += 1;
            }
        }
    }

    fn on_instance_store_event(&mut self, _instance: u32, ev: StoreEvent) {
        self.on_store_event(ev);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim::Time;
    use store::TierId;

    fn arrival(session: u64, at: f64) -> EngineEvent {
        EngineEvent::turn_arrived(session, 0, Time::from_secs_f64(at))
    }

    fn admitted(session: u64, at: f64) -> EngineEvent {
        EngineEvent::admitted(session, 0, 10, false, Time::from_secs_f64(at))
    }

    #[test]
    fn events_land_in_their_own_windows() {
        let mut hub = WindowedHub::new(5.0);
        hub.on_event(arrival(1, 1.0));
        hub.on_event(arrival(2, 6.0));
        hub.on_event(EngineEvent::prefill_done(1, 0.3, Time::from_secs_f64(12.0)));
        let series = hub.series();
        assert_eq!(series.windows.len(), 3);
        assert_eq!(series.windows[0].counters.turns_arrived, 1);
        assert_eq!(series.windows[1].counters.turns_arrived, 1);
        assert_eq!(series.windows[2].ttft.count(), 1);
        for (i, w) in series.windows.iter().enumerate() {
            assert_eq!(w.index, i);
            assert_eq!(w.start_secs, i as f64 * 5.0);
            assert_eq!(w.end_secs, (i + 1) as f64 * 5.0);
        }
    }

    #[test]
    fn queue_depth_tracks_arrivals_minus_admissions() {
        let mut hub = WindowedHub::new(1.0);
        hub.on_event(arrival(1, 0.1));
        hub.on_event(arrival(2, 0.2));
        hub.on_event(admitted(1, 0.5));
        hub.on_event(admitted(2, 2.5));
        let series = hub.series();
        assert_eq!(series.windows[0].queue_depth_peak, 2);
        assert_eq!(series.windows[0].queue_depth_end, 1);
        // Window 1 is silent: forward-filled from window 0.
        assert_eq!(series.windows[1].queue_depth_end, 1);
        assert_eq!(series.windows[1].queue_depth_peak, 1);
        assert_eq!(series.windows[2].queue_depth_end, 0);
    }

    #[test]
    fn queue_wait_pairs_arrival_to_admission() {
        let mut hub = WindowedHub::new(5.0);
        hub.on_event(arrival(7, 1.0));
        hub.on_event(admitted(7, 3.5));
        let series = hub.series();
        let w = &series.windows[0];
        assert_eq!(w.queue_wait.count(), 1);
        assert!((w.queue_wait.percentile(50.0).unwrap() - 2.5).abs() < 1e-9);
        // An admission without a tracked arrival contributes no sample.
        let mut hub = WindowedHub::new(5.0);
        hub.on_event(admitted(9, 3.5));
        assert_eq!(hub.series().windows[0].queue_wait.count(), 0);
    }

    #[test]
    fn occupancy_forward_fills_silent_windows() {
        let mut hub = WindowedHub::new(1.0);
        hub.on_store_event(StoreEvent::TierConfig {
            tier: TierId(0),
            name: "dram",
            capacity: 1_000,
            at: Time::ZERO,
        });
        hub.on_store_event(StoreEvent::Occupancy {
            tier: TierId(0),
            used_bytes: 700,
            at: Time::from_secs_f64(0.5),
        });
        hub.on_store_event(StoreEvent::Occupancy {
            tier: TierId(0),
            used_bytes: 300,
            at: Time::from_secs_f64(3.5),
        });
        let series = hub.series();
        assert_eq!(series.tier_names, vec!["dram".to_string()]);
        assert_eq!(series.windows[0].tiers[0].occupancy_end_bytes, 700.0);
        assert_eq!(series.windows[1].tiers[0].occupancy_end_bytes, 700.0);
        assert_eq!(series.windows[2].tiers[0].occupancy_end_bytes, 700.0);
        assert_eq!(series.windows[3].tiers[0].occupancy_end_bytes, 300.0);
        // The sampled window's peak keeps the within-window max.
        assert_eq!(series.windows[0].tiers[0].occupancy_peak_bytes, 700.0);
    }

    #[test]
    fn totals_merge_counters_and_sketches() {
        let mut hub = WindowedHub::new(2.0);
        for (s, at) in [(1u64, 0.5), (2, 2.5), (3, 4.5)] {
            hub.on_event(arrival(s, at));
            hub.on_event(EngineEvent::prefill_done(
                s,
                0.1 * s as f64,
                Time::from_secs_f64(at + 0.4),
            ));
        }
        let totals = hub.series().totals();
        assert_eq!(totals.counters.turns_arrived, 3);
        assert_eq!(totals.ttft.count(), 3);
        assert!((totals.ttft.sum() - 0.6).abs() < 1e-9);
    }

    #[test]
    fn instance_slices_grow_on_demand() {
        let mut hub = WindowedHub::new(1.0);
        hub.on_instance_event(2, arrival(1, 0.5));
        let series = hub.series();
        let insts = &series.windows[0].instances;
        assert_eq!(insts.len(), 3);
        assert_eq!(insts[2].turns_arrived, 1);
        assert_eq!(insts[0].turns_arrived, 0);
        // The instance-blind tally still sees the event.
        assert_eq!(series.windows[0].counters.turns_arrived, 1);
    }

    #[test]
    #[should_panic(expected = "window width")]
    fn zero_width_is_rejected() {
        WindowedHub::new(0.0);
    }
}
