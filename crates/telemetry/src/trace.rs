//! The merged trace: engine and store events in one causal stream.
//!
//! The serving engine emits [`EngineEvent`]s for its own pipeline steps
//! and drains the store's [`StoreEvent`]s after every interaction, so an
//! observer sees both streams interleaved in commit order. A
//! [`TraceRecord`] stamps each event with that global order (`seq`) plus
//! its source and category, which is what the exporters serialize.

use engine::EngineEvent;
use serde::{Serialize, Value};
use sim::Time;
use store::StoreEvent;

/// One event of the merged stream.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TraceEvent {
    /// A serving-pipeline step.
    Engine(EngineEvent),
    /// A store placement decision (or an engine-emitted transfer-timing
    /// event; see the store crate's event docs).
    Store(StoreEvent),
}

impl TraceEvent {
    /// Which subsystem emitted the event.
    pub fn source(&self) -> &'static str {
        match self {
            TraceEvent::Engine(_) => "engine",
            TraceEvent::Store(_) => "store",
        }
    }

    /// Snake-case variant name (`turn_arrived`, `fetch_hit`, ...).
    pub fn kind(&self) -> &'static str {
        match self {
            TraceEvent::Engine(e) => e.kind(),
            TraceEvent::Store(e) => e.kind(),
        }
    }

    /// Coarse category: `session`/`sched`/`gpu` for engine events,
    /// `cache`/`tiering`/`gauge`/`stall` for store events.
    pub fn category(&self) -> &'static str {
        match self {
            TraceEvent::Engine(e) => e.category(),
            TraceEvent::Store(e) => e.category(),
        }
    }

    /// The event's virtual timestamp.
    pub fn at(&self) -> Time {
        match self {
            TraceEvent::Engine(e) => e.at(),
            TraceEvent::Store(e) => e.at(),
        }
    }

    /// The session the event concerns (`None` for tier-wide gauges and
    /// instance-scoped faults).
    pub fn session(&self) -> Option<u64> {
        match self {
            TraceEvent::Engine(e) => e.session(),
            TraceEvent::Store(e) => e.session(),
        }
    }
}

/// One line of the exported trace: a [`TraceEvent`] stamped with its
/// position in the merged commit order and, in cluster runs, the serving
/// instance whose pipeline step committed it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceRecord {
    /// Zero-based position in the merged stream. Timestamps alone cannot
    /// order the trace (an engine-emitted completion event may carry a
    /// future link time), so consumers sort and join on `seq`.
    pub seq: u64,
    /// Serving instance the event is attributed to (`None` when the
    /// record was collected through the instance-blind observer path).
    pub instance: Option<u32>,
    /// The event itself.
    pub ev: TraceEvent,
}

impl Serialize for TraceRecord {
    /// Serializes as the event's tagged object with `seq`, `source`,
    /// `category` (and `instance`, when attributed) prepended, so every
    /// JSONL line is self-describing.
    fn to_value(&self) -> Value {
        let inner = match &self.ev {
            TraceEvent::Engine(e) => e.to_value(),
            TraceEvent::Store(e) => e.to_value(),
        };
        let mut pairs = vec![
            ("seq".to_string(), Value::U64(self.seq)),
            (
                "source".to_string(),
                Value::Str(self.ev.source().to_string()),
            ),
            (
                "category".to_string(),
                Value::Str(self.ev.category().to_string()),
            ),
        ];
        if let Some(inst) = self.instance {
            pairs.push(("instance".to_string(), Value::U64(u64::from(inst))));
        }
        match inner {
            Value::Object(fields) => pairs.extend(fields),
            other => pairs.push(("event".to_string(), other)),
        }
        Value::Object(pairs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use engine::ConsultClass;
    use store::TierId;

    #[test]
    fn records_are_self_describing_jsonl_lines() {
        let rec = TraceRecord {
            seq: 3,
            instance: None,
            ev: TraceEvent::Engine(EngineEvent::consulted(
                7,
                ConsultClass::HitFast,
                500,
                Time::from_secs_f64(1.0),
            )),
        };
        let json = serde_json::to_string(&rec).unwrap();
        assert_eq!(
            json,
            "{\"seq\":3,\"source\":\"engine\",\"category\":\"sched\",\
             \"kind\":\"consulted\",\"session\":7,\"class\":\"hit_fast\",\
             \"reused\":500,\"at\":1.0}"
        );
    }

    #[test]
    fn attributed_records_carry_their_instance() {
        let rec = TraceRecord {
            seq: 4,
            instance: Some(2),
            ev: TraceEvent::Engine(EngineEvent::consulted(
                7,
                ConsultClass::HitFast,
                500,
                Time::from_secs_f64(1.0),
            )),
        };
        let json = serde_json::to_string(&rec).unwrap();
        assert_eq!(
            json,
            "{\"seq\":4,\"source\":\"engine\",\"category\":\"sched\",\
             \"instance\":2,\"kind\":\"consulted\",\"session\":7,\
             \"class\":\"hit_fast\",\"reused\":500,\"at\":1.0}"
        );
    }

    #[test]
    fn store_events_carry_their_category() {
        let rec = TraceRecord {
            seq: 0,
            instance: None,
            ev: TraceEvent::Store(StoreEvent::FetchHit {
                session: 2,
                tier: TierId(1),
                bytes: 10,
                at: Time::ZERO,
            }),
        };
        assert_eq!(rec.ev.source(), "store");
        assert_eq!(rec.ev.category(), "cache");
        assert_eq!(rec.ev.kind(), "fetch_hit");
        assert_eq!(rec.ev.session(), Some(2));
        let json = serde_json::to_string(&rec).unwrap();
        assert!(json.starts_with("{\"seq\":0,\"source\":\"store\""));
    }
}
