//! The live metrics hub: an observer aggregating both event streams into
//! the `metrics` primitives as the run executes.
//!
//! Where [`RunReport`](engine::RunReport) is the simulator's own
//! accounting (computed from internal state, warmup-filtered), the
//! [`MetricsHub`] rebuilds the same figures purely from the observable
//! event stream — per-tier hit counters, TTFT and queue-wait histograms,
//! HBM and per-tier occupancy curves — which is exactly what a production
//! telemetry agent would see. With zero warmup turns the hub's hit
//! counts reconcile with the report's, which the integration tests pin.

use std::collections::HashMap;

use engine::{CoalescedLog, ConsultClass, EngineEvent, EngineObserver};
use metrics::{Counter, Histogram, TimeSeries};
use serde::Serialize;
use store::{FetchKind, StoreEvent, TierId};

/// Bucket width of the occupancy gauge curves, seconds.
const GAUGE_BUCKET_SECS: f64 = 1.0;

/// An [`EngineObserver`] that aggregates live into metrics primitives.
///
/// Attach it with [`engine::run_with_observer`] (or through
/// [`Telemetry`](crate::Telemetry)); render the aggregates with
/// [`snapshot`](MetricsHub::snapshot). Observation is read-only: a run
/// with a hub attached produces a byte-identical `RunReport`.
#[derive(Debug, Clone)]
pub struct MetricsHub {
    // Engine-stream aggregates.
    turns_arrived: Counter,
    hits_fast: Counter,
    hits_slow: Counter,
    misses: Counter,
    ttft: Histogram,
    queue_wait: Histogram,
    /// Visible fetch-stall share of each issued prefill, seconds.
    fetch_stall: Histogram,
    /// Pure compute share of each issued prefill, seconds.
    prefill_compute: Histogram,
    /// Total KV transfer time the reuses required, seconds.
    kv_load_secs: f64,
    /// Share of that transfer hidden under prefill compute (§3.2.1).
    kv_hidden_secs: f64,
    /// Prefetch staging latency (promotion → completion), seconds.
    prefetch_latency: Histogram,
    /// Promotion time of each session's in-flight prefetch.
    prefetch_starts: HashMap<u64, f64>,
    truncations: Counter,
    retired: Counter,
    hbm_reserved: TimeSeries,
    /// Admission retries coalesced per session run (satellite fix for
    /// the one-`Deferred`-per-retry flood).
    deferrals: CoalescedLog,
    /// Arrival time of each session's in-flight turn, for queue waits.
    arrivals: HashMap<u64, f64>,
    // Store-stream aggregates, sliced per tier-stack index. The slices
    // grow on demand as events reference deeper tiers; names come from
    // the `tier_config` records a tracing store emits up front (falling
    // back to the `t{i}` index label).
    tier_names: Vec<Option<&'static str>>,
    store_hits_by_tier: Vec<Counter>,
    occupancy_by_tier: Vec<TimeSeries>,
    store_misses: Counter,
    saves: Counter,
    save_rejections: Counter,
    prefetch_promotions: Counter,
    demand_promotions: Counter,
    demotions: Counter,
    evictions: Counter,
    drops: Counter,
    expirations: Counter,
    write_stalls: Counter,
    // Block-keyed store aggregates (all-zero under per-session keying).
    block_dedup_hits: Counter,
    blocks_matched: Counter,
    blocks_deduped: Counter,
    blocks_written: Counter,
    dedup_bytes_saved: Counter,
    dedup_bytes_written: Counter,
    block_divergences: Counter,
    block_demotions: Counter,
    block_evictions: Counter,
    // Fault-stream aggregates (all-zero without a fault plan).
    read_retries: Counter,
    read_failures: Counter,
    write_retries: Counter,
    write_failures: Counter,
    corruptions_detected: Counter,
    recompute_fallbacks: Counter,
    instance_crashes: Counter,
    turns_rerouted: Counter,
    // Overload-stream aggregates (all-zero without an SLO policy).
    turns_shed: Counter,
    overload_transitions: Counter,
    scale_ups: Counter,
    scale_downs: Counter,
    // Per-instance slices of the engine stream, grown on demand as the
    // cluster's instance-tagged observer hooks report new instance ids.
    per_instance: Vec<InstanceAgg>,
}

/// Per-instance slice of the engine-stream aggregates.
#[derive(Debug, Clone)]
struct InstanceAgg {
    turns_arrived: Counter,
    hits_fast: Counter,
    hits_slow: Counter,
    misses: Counter,
    retired: Counter,
    read_retries: Counter,
    write_retries: Counter,
    recompute_fallbacks: Counter,
    turns_rerouted_away: Counter,
}

impl InstanceAgg {
    fn new() -> Self {
        InstanceAgg {
            turns_arrived: Counter::new(),
            hits_fast: Counter::new(),
            hits_slow: Counter::new(),
            misses: Counter::new(),
            retired: Counter::new(),
            read_retries: Counter::new(),
            write_retries: Counter::new(),
            recompute_fallbacks: Counter::new(),
            turns_rerouted_away: Counter::new(),
        }
    }
}

impl Default for MetricsHub {
    fn default() -> Self {
        MetricsHub::new()
    }
}

impl MetricsHub {
    /// Creates an empty hub (1-second gauge buckets).
    pub fn new() -> Self {
        MetricsHub {
            turns_arrived: Counter::new(),
            hits_fast: Counter::new(),
            hits_slow: Counter::new(),
            misses: Counter::new(),
            ttft: Histogram::new(),
            queue_wait: Histogram::new(),
            fetch_stall: Histogram::new(),
            prefill_compute: Histogram::new(),
            kv_load_secs: 0.0,
            kv_hidden_secs: 0.0,
            prefetch_latency: Histogram::new(),
            prefetch_starts: HashMap::new(),
            truncations: Counter::new(),
            retired: Counter::new(),
            hbm_reserved: TimeSeries::new(GAUGE_BUCKET_SECS),
            deferrals: CoalescedLog::new(),
            arrivals: HashMap::new(),
            tier_names: Vec::new(),
            store_hits_by_tier: Vec::new(),
            occupancy_by_tier: Vec::new(),
            store_misses: Counter::new(),
            saves: Counter::new(),
            save_rejections: Counter::new(),
            prefetch_promotions: Counter::new(),
            demand_promotions: Counter::new(),
            demotions: Counter::new(),
            evictions: Counter::new(),
            drops: Counter::new(),
            expirations: Counter::new(),
            write_stalls: Counter::new(),
            block_dedup_hits: Counter::new(),
            blocks_matched: Counter::new(),
            blocks_deduped: Counter::new(),
            blocks_written: Counter::new(),
            dedup_bytes_saved: Counter::new(),
            dedup_bytes_written: Counter::new(),
            block_divergences: Counter::new(),
            block_demotions: Counter::new(),
            block_evictions: Counter::new(),
            read_retries: Counter::new(),
            read_failures: Counter::new(),
            write_retries: Counter::new(),
            write_failures: Counter::new(),
            corruptions_detected: Counter::new(),
            recompute_fallbacks: Counter::new(),
            instance_crashes: Counter::new(),
            turns_rerouted: Counter::new(),
            turns_shed: Counter::new(),
            overload_transitions: Counter::new(),
            scale_ups: Counter::new(),
            scale_downs: Counter::new(),
            per_instance: Vec::new(),
        }
    }

    /// The coalesced admission-deferral log.
    pub fn deferrals(&self) -> &CoalescedLog {
        &self.deferrals
    }

    /// The per-instance slice for `instance`, grown on demand.
    fn instance_agg(&mut self, instance: u32) -> &mut InstanceAgg {
        let i = instance as usize;
        if self.per_instance.len() <= i {
            self.per_instance.resize_with(i + 1, InstanceAgg::new);
        }
        &mut self.per_instance[i]
    }

    /// Grows the per-tier slices so index `tier` is addressable.
    fn grow_tiers(&mut self, tier: TierId) {
        let n = tier.0 + 1;
        if self.tier_names.len() < n {
            self.tier_names.resize(n, None);
        }
        if self.store_hits_by_tier.len() < n {
            self.store_hits_by_tier.resize_with(n, Counter::new);
        }
        if self.occupancy_by_tier.len() < n {
            self.occupancy_by_tier
                .resize_with(n, || TimeSeries::new(GAUGE_BUCKET_SECS));
        }
    }

    /// Renders the per-tier store-stream slices, fastest tier first. The
    /// single source the snapshot's `tiers` array AND its legacy scalar
    /// rollups (`store_hits_dram`/`_disk`, the dram/disk occupancy peaks
    /// and timelines) are both derived from, so they cannot drift apart.
    fn tier_metrics(&self) -> Vec<TierMetrics> {
        (0..self
            .store_hits_by_tier
            .len()
            .max(self.occupancy_by_tier.len())
            .max(self.tier_names.len()))
            .map(|i| TierMetrics {
                tier: i,
                name: match self.tier_names.get(i).copied().flatten() {
                    Some(n) => n.to_string(),
                    None => format!("t{i}"),
                },
                store_hits: self.store_hits_by_tier.get(i).map_or(0, Counter::get),
                occupancy_peak_bytes: self.occupancy_by_tier.get(i).map_or(0.0, TimeSeries::peak),
                occupancy_timeline: self
                    .occupancy_by_tier
                    .get(i)
                    .cloned()
                    .unwrap_or_else(|| TimeSeries::new(GAUGE_BUCKET_SECS)),
            })
            .collect()
    }

    /// Renders the current aggregates as a serializable snapshot.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut ttft = self.ttft.clone();
        let mut queue_wait = self.queue_wait.clone();
        let mut prefetch_latency = self.prefetch_latency.clone();
        let tiers = self.tier_metrics();
        MetricsSnapshot {
            turns_arrived: self.turns_arrived.get(),
            hits_fast: self.hits_fast.get(),
            hits_slow: self.hits_slow.get(),
            misses: self.misses.get(),
            hit_rate: {
                let hits = self.hits_fast.get() + self.hits_slow.get();
                let total = hits + self.misses.get();
                if total == 0 {
                    0.0
                } else {
                    hits as f64 / total as f64
                }
            },
            ttft_count: ttft.count() as u64,
            ttft_mean_secs: ttft.mean(),
            ttft_p50_secs: ttft.median(),
            ttft_p95_secs: ttft.percentile(95.0),
            ttft_p99_secs: ttft.percentile(99.0),
            queue_wait_mean_secs: queue_wait.mean(),
            queue_wait_p50_secs: queue_wait.median(),
            queue_wait_p95_secs: queue_wait.percentile(95.0),
            queue_wait_p99_secs: queue_wait.percentile(99.0),
            fetch_stall_mean_secs: self.fetch_stall.mean(),
            prefill_compute_mean_secs: self.prefill_compute.mean(),
            kv_load_secs_total: self.kv_load_secs,
            kv_hidden_secs_total: self.kv_hidden_secs,
            overlap_efficiency: if self.kv_load_secs > 0.0 {
                self.kv_hidden_secs / self.kv_load_secs
            } else {
                0.0
            },
            prefetch_latency_mean_secs: prefetch_latency.mean(),
            prefetch_latency_p99_secs: prefetch_latency.percentile(99.0),
            truncations: self.truncations.get(),
            retired: self.retired.get(),
            deferred_events: self.deferrals.deferred_total(),
            deferred_runs: self.deferrals.entries().len() as u64,
            store_hits_dram: tiers.first().map_or(0, |t| t.store_hits),
            store_hits_disk: tiers.iter().skip(1).map(|t| t.store_hits).sum(),
            store_misses: self.store_misses.get(),
            saves: self.saves.get(),
            save_rejections: self.save_rejections.get(),
            prefetch_promotions: self.prefetch_promotions.get(),
            demand_promotions: self.demand_promotions.get(),
            demotions: self.demotions.get(),
            evictions: self.evictions.get(),
            drops: self.drops.get(),
            expirations: self.expirations.get(),
            write_stalls: self.write_stalls.get(),
            block_dedup_hits: self.block_dedup_hits.get(),
            blocks_matched: self.blocks_matched.get(),
            blocks_deduped: self.blocks_deduped.get(),
            blocks_written: self.blocks_written.get(),
            dedup_bytes_saved: self.dedup_bytes_saved.get(),
            dedup_bytes_written: self.dedup_bytes_written.get(),
            dedup_ratio: {
                let total = self.blocks_deduped.get() + self.blocks_written.get();
                if total == 0 {
                    0.0
                } else {
                    self.blocks_deduped.get() as f64 / total as f64
                }
            },
            block_divergences: self.block_divergences.get(),
            block_demotions: self.block_demotions.get(),
            block_evictions: self.block_evictions.get(),
            read_retries: self.read_retries.get(),
            read_failures: self.read_failures.get(),
            write_retries: self.write_retries.get(),
            write_failures: self.write_failures.get(),
            corruptions_detected: self.corruptions_detected.get(),
            recompute_fallbacks: self.recompute_fallbacks.get(),
            instance_crashes: self.instance_crashes.get(),
            turns_rerouted: self.turns_rerouted.get(),
            turns_shed: self.turns_shed.get(),
            overload_transitions: self.overload_transitions.get(),
            scale_ups: self.scale_ups.get(),
            scale_downs: self.scale_downs.get(),
            hbm_reserved_peak_bytes: self.hbm_reserved.peak(),
            dram_occupancy_peak_bytes: tiers.first().map_or(0.0, |t| t.occupancy_peak_bytes),
            disk_occupancy_peak_bytes: tiers.get(1).map_or(0.0, |t| t.occupancy_peak_bytes),
            hbm_reserved_timeline: self.hbm_reserved.clone(),
            dram_occupancy_timeline: tiers
                .first()
                .map(|t| t.occupancy_timeline.clone())
                .unwrap_or_else(|| TimeSeries::new(GAUGE_BUCKET_SECS)),
            disk_occupancy_timeline: tiers
                .get(1)
                .map(|t| t.occupancy_timeline.clone())
                .unwrap_or_else(|| TimeSeries::new(GAUGE_BUCKET_SECS)),
            tiers,
            instances: self
                .per_instance
                .iter()
                .enumerate()
                .map(|(i, agg)| {
                    let hits = agg.hits_fast.get() + agg.hits_slow.get();
                    let total = hits + agg.misses.get();
                    InstanceMetrics {
                        instance: i as u32,
                        turns_arrived: agg.turns_arrived.get(),
                        hits_fast: agg.hits_fast.get(),
                        hits_slow: agg.hits_slow.get(),
                        misses: agg.misses.get(),
                        hit_rate: if total == 0 {
                            0.0
                        } else {
                            hits as f64 / total as f64
                        },
                        retired: agg.retired.get(),
                        read_retries: agg.read_retries.get(),
                        write_retries: agg.write_retries.get(),
                        recompute_fallbacks: agg.recompute_fallbacks.get(),
                        turns_rerouted_away: agg.turns_rerouted_away.get(),
                    }
                })
                .collect(),
        }
    }
}

impl EngineObserver for MetricsHub {
    fn on_event(&mut self, ev: EngineEvent) {
        match ev {
            EngineEvent::TurnArrived { session, at, .. } => {
                self.turns_arrived.incr();
                self.arrivals.insert(session, at.as_secs_f64());
            }
            EngineEvent::Truncated { .. } => self.truncations.incr(),
            EngineEvent::Consulted { class, .. } => match class {
                ConsultClass::NoHistory => {}
                ConsultClass::NoStore | ConsultClass::Miss => self.misses.incr(),
                ConsultClass::HitFast => self.hits_fast.incr(),
                ConsultClass::HitSlow => self.hits_slow.incr(),
            },
            EngineEvent::Deferred { .. } => self.deferrals.on_event(ev),
            EngineEvent::Admitted { session, at, .. } => {
                if let Some(arrived) = self.arrivals.remove(&session) {
                    self.queue_wait.push(at.as_secs_f64() - arrived);
                }
            }
            EngineEvent::PrefillTimed {
                load_secs,
                comp_secs,
                stall_secs,
                ..
            } => {
                self.fetch_stall.push(stall_secs);
                self.prefill_compute.push(comp_secs);
                self.kv_load_secs += load_secs;
                self.kv_hidden_secs += (load_secs - stall_secs).max(0.0);
            }
            EngineEvent::PrefillDone { ttft_secs, .. } => self.ttft.push(ttft_secs),
            EngineEvent::Retired { .. } => self.retired.incr(),
            EngineEvent::HbmReserved {
                reserved_bytes, at, ..
            } => self
                .hbm_reserved
                .record_max(at.as_secs_f64(), reserved_bytes as f64),
            EngineEvent::InstanceCrashed { .. } => self.instance_crashes.incr(),
            EngineEvent::TurnRerouted { .. } => self.turns_rerouted.incr(),
            EngineEvent::DegradedRecompute { .. } => self.recompute_fallbacks.incr(),
            // A shed turn's open arrival must not linger as a phantom
            // queue-wait entry.
            EngineEvent::TurnShed { session, .. } => {
                self.turns_shed.incr();
                self.arrivals.remove(&session);
            }
            EngineEvent::OverloadLevelChanged { .. } => self.overload_transitions.incr(),
            EngineEvent::ScaleUp { .. } => self.scale_ups.incr(),
            EngineEvent::ScaleDown { .. } => self.scale_downs.incr(),
            EngineEvent::SloConfig { .. } => {}
        }
    }

    fn on_instance_event(&mut self, instance: u32, ev: EngineEvent) {
        let agg = self.instance_agg(instance);
        match ev {
            EngineEvent::TurnArrived { .. } => agg.turns_arrived.incr(),
            EngineEvent::Consulted { class, .. } => match class {
                ConsultClass::NoHistory => {}
                ConsultClass::NoStore | ConsultClass::Miss => agg.misses.incr(),
                ConsultClass::HitFast => agg.hits_fast.incr(),
                ConsultClass::HitSlow => agg.hits_slow.incr(),
            },
            EngineEvent::Retired { .. } => agg.retired.incr(),
            EngineEvent::DegradedRecompute { .. } => agg.recompute_fallbacks.incr(),
            _ => {}
        }
        // A reroute is billed to the instance the turn left (the dead
        // one), not the survivor that emitted the event.
        if let EngineEvent::TurnRerouted { from, .. } = ev {
            self.instance_agg(from).turns_rerouted_away.incr();
        }
        self.on_event(ev);
    }

    fn wants_store_events(&self) -> bool {
        true
    }

    fn on_store_event(&mut self, ev: StoreEvent) {
        match ev {
            StoreEvent::TierConfig { tier, name, .. } => {
                self.grow_tiers(tier);
                self.tier_names[tier.0] = Some(name);
            }
            StoreEvent::Saved { .. } => self.saves.incr(),
            StoreEvent::SaveRejected { .. } => self.save_rejections.incr(),
            StoreEvent::FetchHit { tier, .. } => {
                self.grow_tiers(tier);
                self.store_hits_by_tier[tier.0].incr();
            }
            StoreEvent::FetchMiss { .. } => self.store_misses.incr(),
            StoreEvent::Promoted {
                session, kind, at, ..
            } => match kind {
                FetchKind::Demand => self.demand_promotions.incr(),
                FetchKind::Prefetch => {
                    self.prefetch_promotions.incr();
                    self.prefetch_starts.insert(session, at.as_secs_f64());
                }
            },
            StoreEvent::Demoted { .. } => self.demotions.incr(),
            StoreEvent::Evicted { .. } => self.evictions.incr(),
            StoreEvent::Dropped { .. } => self.drops.incr(),
            StoreEvent::Expired { .. } => self.expirations.incr(),
            StoreEvent::Occupancy {
                tier,
                used_bytes,
                at,
            } => {
                self.grow_tiers(tier);
                self.occupancy_by_tier[tier.0].record_max(at.as_secs_f64(), used_bytes as f64);
            }
            StoreEvent::PrefetchCompleted { session, at, .. } => {
                if let Some(start) = self.prefetch_starts.remove(&session) {
                    self.prefetch_latency.push(at.as_secs_f64() - start);
                }
            }
            StoreEvent::WriteBufferStall { .. } => self.write_stalls.incr(),
            StoreEvent::BlockConfig { .. } => {}
            StoreEvent::BlockSaved {
                new_blocks,
                dedup_blocks,
                bytes_written,
                bytes_saved,
                ..
            } => {
                self.blocks_written.add(new_blocks);
                self.blocks_deduped.add(dedup_blocks);
                self.dedup_bytes_written.add(bytes_written);
                self.dedup_bytes_saved.add(bytes_saved);
            }
            StoreEvent::BlockDedupHit { matched_blocks, .. } => {
                self.block_dedup_hits.incr();
                self.blocks_matched.add(matched_blocks);
            }
            StoreEvent::BlockDiverged { .. } => self.block_divergences.incr(),
            StoreEvent::BlockDemoted { .. } => self.block_demotions.incr(),
            StoreEvent::BlockEvicted { .. } => self.block_evictions.incr(),
            StoreEvent::ReadRetry { .. } => self.read_retries.incr(),
            StoreEvent::ReadFailed { .. } => self.read_failures.incr(),
            StoreEvent::WriteRetry { .. } => self.write_retries.incr(),
            StoreEvent::WriteFailed { .. } => self.write_failures.incr(),
            StoreEvent::CorruptionDetected { .. } => self.corruptions_detected.incr(),
        }
    }

    fn on_instance_store_event(&mut self, instance: u32, ev: StoreEvent) {
        // Fault retries are billed to the instance whose pipeline step
        // drained them, so chaos runs stay profile-comparable per GPU.
        match ev {
            StoreEvent::ReadRetry { .. } => self.instance_agg(instance).read_retries.incr(),
            StoreEvent::WriteRetry { .. } => self.instance_agg(instance).write_retries.incr(),
            _ => {}
        }
        self.on_store_event(ev);
    }
}

/// A serializable rendering of a [`MetricsHub`]'s aggregates.
#[derive(Debug, Clone, Serialize)]
pub struct MetricsSnapshot {
    /// Turns that arrived (all turns; the hub sees no warmup filter).
    pub turns_arrived: u64,
    /// Consultations classified fast-tier hits.
    pub hits_fast: u64,
    /// Consultations classified slow-tier hits.
    pub hits_slow: u64,
    /// Consultations classified misses (no cached KV, or no store).
    pub misses: u64,
    /// Hits over classified consultations.
    pub hit_rate: f64,
    /// TTFT samples observed.
    pub ttft_count: u64,
    /// Mean service TTFT, seconds.
    pub ttft_mean_secs: f64,
    /// Median service TTFT, seconds (`None` — serialized `null` — when
    /// no prefill completed; distinguishes "no samples" from "0 s").
    pub ttft_p50_secs: Option<f64>,
    /// p95 service TTFT, seconds (`None` when no samples).
    pub ttft_p95_secs: Option<f64>,
    /// p99 service TTFT, seconds (`None` when no samples).
    pub ttft_p99_secs: Option<f64>,
    /// Mean queue wait (arrival → admission), seconds.
    pub queue_wait_mean_secs: f64,
    /// Median queue wait, seconds (`None` when no samples).
    pub queue_wait_p50_secs: Option<f64>,
    /// p95 queue wait, seconds (`None` when no samples).
    pub queue_wait_p95_secs: Option<f64>,
    /// p99 queue wait, seconds (`None` when no samples).
    pub queue_wait_p99_secs: Option<f64>,
    /// Mean visible fetch stall per issued prefill, seconds.
    pub fetch_stall_mean_secs: f64,
    /// Mean pure prefill compute per issued prefill, seconds.
    pub prefill_compute_mean_secs: f64,
    /// Total KV transfer time required by reuse, seconds.
    pub kv_load_secs_total: f64,
    /// Share of that transfer hidden under prefill compute, seconds.
    pub kv_hidden_secs_total: f64,
    /// Fraction of KV transfer time hidden under compute (§3.2.1's
    /// direct observable; 0 when nothing was transferred).
    pub overlap_efficiency: f64,
    /// Mean prefetch staging latency (promotion → completion), seconds.
    pub prefetch_latency_mean_secs: f64,
    /// p99 prefetch staging latency, seconds (`None` when no samples).
    pub prefetch_latency_p99_secs: Option<f64>,
    /// Context-overflow truncations.
    pub truncations: u64,
    /// Jobs retired.
    pub retired: u64,
    /// Total admission deferrals (before coalescing).
    pub deferred_events: u64,
    /// Coalesced deferral runs (consecutive same-session retries).
    pub deferred_runs: u64,
    /// Store lookups that found KV resident in tier 0 (the fast staging
    /// tier; rollup of the per-tier slices in [`tiers`](Self::tiers)).
    pub store_hits_dram: u64,
    /// Store lookups that found KV resident below tier 0 (all slower
    /// tiers combined).
    pub store_hits_disk: u64,
    /// Store lookups that found nothing cached.
    pub store_misses: u64,
    /// Sessions saved or updated.
    pub saves: u64,
    /// Saves rejected for capacity.
    pub save_rejections: u64,
    /// Look-ahead prefetch promotions (slow tier → tier 0).
    pub prefetch_promotions: u64,
    /// Demand-fetch promotions (slow tier → tier 0).
    pub demand_promotions: u64,
    /// One-hop demotions to an adjacent slower tier.
    pub demotions: u64,
    /// Evictions out of the stack's bottom tier (out of the system).
    pub evictions: u64,
    /// Entries dropped because the tier below could not take their
    /// demotion.
    pub drops: u64,
    /// TTL expirations.
    pub expirations: u64,
    /// Admissions stalled on the HBM write buffer.
    pub write_stalls: u64,
    /// Consults that matched at least one stored block (block-keyed
    /// stores only; zero under per-session keying, like every dedup
    /// counter below).
    pub block_dedup_hits: u64,
    /// Blocks matched across all consults.
    pub blocks_matched: u64,
    /// Save-side blocks that resolved to an already-stored copy.
    pub blocks_deduped: u64,
    /// Save-side blocks written fresh.
    pub blocks_written: u64,
    /// Bytes not written because the block already existed.
    pub dedup_bytes_saved: u64,
    /// Bytes physically written by saves.
    pub dedup_bytes_written: u64,
    /// Fraction of saved blocks that were dedup hits.
    pub dedup_ratio: f64,
    /// Sessions that forked off a shared chain (copy-on-divergence).
    pub block_divergences: u64,
    /// Block demotions to a slower tier.
    pub block_demotions: u64,
    /// Unreferenced blocks reclaimed (refcounted eviction).
    pub block_evictions: u64,
    /// Injected slow-tier read errors that were retried.
    pub read_retries: u64,
    /// Reads abandoned after exhausting their retry budget.
    pub read_failures: u64,
    /// Injected slow-tier write errors that were retried.
    pub write_retries: u64,
    /// Saves abandoned after exhausting their retry budget.
    pub write_failures: u64,
    /// Checksum mismatches caught on load.
    pub corruptions_detected: u64,
    /// Turns degraded to a full re-prefill after a cache-path failure.
    pub recompute_fallbacks: u64,
    /// Scripted instance crashes observed.
    pub instance_crashes: u64,
    /// Turns re-queued onto surviving instances after a crash.
    pub turns_rerouted: u64,
    /// Arriving turns shed with a typed rejection (SLO admission).
    pub turns_shed: u64,
    /// Degradation-ladder rung changes (either direction).
    pub overload_transitions: u64,
    /// Autoscaler scale-up actions.
    pub scale_ups: u64,
    /// Autoscaler scale-down actions.
    pub scale_downs: u64,
    /// Peak live-KV HBM reservation, bytes.
    pub hbm_reserved_peak_bytes: f64,
    /// Peak tier-0 occupancy, bytes (see [`tiers`](Self::tiers) for the
    /// full stack).
    pub dram_occupancy_peak_bytes: f64,
    /// Peak tier-1 occupancy, bytes.
    pub disk_occupancy_peak_bytes: f64,
    /// Live-KV HBM reservation over time (1 s buckets, per-bucket max).
    pub hbm_reserved_timeline: TimeSeries,
    /// Tier-0 occupancy over time (1 s buckets, per-bucket max).
    pub dram_occupancy_timeline: TimeSeries,
    /// Tier-1 occupancy over time (1 s buckets, per-bucket max).
    pub disk_occupancy_timeline: TimeSeries,
    /// Per-tier store-stream aggregates, fastest tier first, labeled by
    /// the stack's configured tier names.
    pub tiers: Vec<TierMetrics>,
    /// Per-instance engine-stream aggregates (empty when the run was
    /// observed through the instance-blind hooks).
    pub instances: Vec<InstanceMetrics>,
}

/// One tier's slice of the store-stream aggregates.
#[derive(Debug, Clone, Serialize)]
pub struct TierMetrics {
    /// Tier-stack index, fastest first.
    pub tier: usize,
    /// The tier's display name (from the store's `tier_config` records;
    /// `t{i}` when the run never announced one).
    pub name: String,
    /// Store lookups that found KV resident in this tier.
    pub store_hits: u64,
    /// Peak occupancy of this tier, bytes.
    pub occupancy_peak_bytes: f64,
    /// This tier's occupancy over time (1 s buckets, per-bucket max).
    pub occupancy_timeline: TimeSeries,
}

/// One instance's slice of the engine-stream aggregates.
#[derive(Debug, Clone, Serialize)]
pub struct InstanceMetrics {
    /// Instance id.
    pub instance: u32,
    /// Turns routed to this instance.
    pub turns_arrived: u64,
    /// Fast-tier hits consulted on this instance.
    pub hits_fast: u64,
    /// Slow-tier hits consulted on this instance.
    pub hits_slow: u64,
    /// Misses consulted on this instance.
    pub misses: u64,
    /// Hits over classified consultations on this instance.
    pub hit_rate: f64,
    /// Jobs retired on this instance.
    pub retired: u64,
    /// Injected slow-tier read errors retried on this instance.
    pub read_retries: u64,
    /// Injected slow-tier write errors retried on this instance.
    pub write_retries: u64,
    /// Turns degraded to a full re-prefill on this instance.
    pub recompute_fallbacks: u64,
    /// Turns this instance lost to crash reroutes.
    pub turns_rerouted_away: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim::Time;

    #[test]
    fn hub_aggregates_both_streams() {
        let mut hub = MetricsHub::new();
        assert!(hub.wants_store_events());
        hub.on_event(EngineEvent::turn_arrived(1, 0, Time::ZERO));
        hub.on_event(EngineEvent::consulted(
            1,
            ConsultClass::HitFast,
            100,
            Time::from_millis(1),
        ));
        hub.on_event(EngineEvent::deferred(
            1,
            Time::from_millis(3),
            Time::from_millis(2),
        ));
        hub.on_event(EngineEvent::deferred(
            1,
            Time::from_millis(4),
            Time::from_millis(3),
        ));
        hub.on_event(EngineEvent::admitted(
            1,
            100,
            50,
            false,
            Time::from_millis(4),
        ));
        hub.on_event(EngineEvent::prefill_done(1, 0.25, Time::from_millis(254)));
        hub.on_event(EngineEvent::hbm_reserved(
            1,
            1_000,
            10_000,
            Time::from_millis(4),
        ));
        hub.on_store_event(StoreEvent::TierConfig {
            tier: TierId(0),
            name: "dram",
            capacity: 1_000,
            at: Time::ZERO,
        });
        hub.on_store_event(StoreEvent::FetchHit {
            session: 1,
            tier: TierId(0),
            bytes: 5,
            at: Time::from_millis(1),
        });
        hub.on_store_event(StoreEvent::Occupancy {
            tier: TierId(0),
            used_bytes: 500,
            at: Time::from_millis(1),
        });
        hub.on_store_event(StoreEvent::Occupancy {
            tier: TierId(1),
            used_bytes: 700,
            at: Time::from_millis(1),
        });
        let snap = hub.snapshot();
        assert_eq!(snap.turns_arrived, 1);
        assert_eq!(snap.hits_fast, 1);
        assert_eq!(snap.hit_rate, 1.0);
        assert_eq!(snap.deferred_events, 2);
        assert_eq!(snap.deferred_runs, 1);
        assert_eq!(snap.store_hits_dram, 1);
        assert_eq!(snap.ttft_count, 1);
        assert!((snap.ttft_mean_secs - 0.25).abs() < 1e-12);
        assert!((snap.queue_wait_mean_secs - 0.004).abs() < 1e-12);
        assert_eq!(snap.hbm_reserved_peak_bytes, 1_000.0);
        assert_eq!(snap.dram_occupancy_peak_bytes, 500.0);
        assert_eq!(snap.disk_occupancy_peak_bytes, 700.0);
        // The per-tier slices carry the same data keyed by name: tier 0
        // was announced as "dram", tier 1 fell back to its index label.
        assert_eq!(snap.tiers.len(), 2);
        assert_eq!(snap.tiers[0].name, "dram");
        assert_eq!(snap.tiers[0].store_hits, 1);
        assert_eq!(snap.tiers[0].occupancy_peak_bytes, 500.0);
        assert_eq!(snap.tiers[1].name, "t1");
        assert_eq!(snap.tiers[1].store_hits, 0);
        assert_eq!(snap.tiers[1].occupancy_peak_bytes, 700.0);
    }

    /// Hits below tier 1 still roll up into the legacy slow-tier counter
    /// and the per-tier slices keep them separable.
    #[test]
    fn deep_tier_hits_roll_up() {
        let mut hub = MetricsHub::new();
        for (tier, n) in [(1usize, 2u64), (3, 1)] {
            for _ in 0..n {
                hub.on_store_event(StoreEvent::FetchHit {
                    session: 1,
                    tier: TierId(tier),
                    bytes: 5,
                    at: Time::ZERO,
                });
            }
        }
        let snap = hub.snapshot();
        assert_eq!(snap.store_hits_dram, 0);
        assert_eq!(snap.store_hits_disk, 3);
        assert_eq!(snap.tiers.len(), 4);
        assert_eq!(snap.tiers[1].store_hits, 2);
        assert_eq!(snap.tiers[2].store_hits, 0);
        assert_eq!(snap.tiers[3].store_hits, 1);
    }

    #[test]
    fn snapshot_serializes_to_json() {
        let hub = MetricsHub::new();
        let json = serde_json::to_string(&hub.snapshot()).unwrap();
        assert!(json.contains("\"turns_arrived\":0"));
        assert!(json.contains("\"hit_rate\":0.0"));
        assert!(json.contains("\"dram_occupancy_timeline\""));
        // Empty histograms export null percentiles, not a fake 0.0.
        assert!(json.contains("\"ttft_p50_secs\":null"));
        assert!(json.contains("\"queue_wait_p99_secs\":null"));
        assert!(json.contains("\"prefetch_latency_p99_secs\":null"));
    }
}
