//! Streaming SLO signals and the deterministic alert-rules engine.
//!
//! [`HealthSignals`] derives one [`HealthPoint`] per tumbling window of a
//! [`WindowSeries`]: queue depth, rolling TTFT p99,
//! the p99 error-budget *burn rate* against a configurable SLO target,
//! per-tier occupancy slope, and fault-event rates. An [`AlertRule`]
//! (threshold + sustain duration + hysteresis) is evaluated over that
//! series, emitting [`AlertEvent`]s (`AlertFired` / `AlertResolved`)
//! pinned to window boundaries — everything is a pure function of the
//! window series and the rule set, so alert timelines are bit-reproducible
//! across runs, exactly like the rest of the simulator.
//!
//! Semantics, evaluated per window in index order:
//! - a rule *breaches* in a window when its signal is **strictly above**
//!   `threshold`; once the breach has persisted for `sustain_secs` of
//!   contiguous windows the rule fires at that window's end.
//! - an active alert *resolves* at the end of the first window whose
//!   signal is **at or below** `clear_below` (set it under `threshold`
//!   for hysteresis, so a signal oscillating across the threshold does
//!   not flap).
//! - a window with no latency samples evaluates latency-derived signals
//!   as 0 (no traffic is healthy traffic).

use serde::{Serialize, Value};

use crate::window::WindowSeries;

/// The SLO quantile the burn-rate signal budgets against (p99).
const BURN_QUANTILE: f64 = 0.99;

/// The service-level objective the health layer scores against.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct SloConfig {
    /// The TTFT the p99 must stay under, seconds.
    pub ttft_p99_target_secs: f64,
}

impl Default for SloConfig {
    fn default() -> Self {
        SloConfig {
            ttft_p99_target_secs: 1.0,
        }
    }
}

impl SloConfig {
    /// An SLO of "p99 TTFT stays under `target_secs`".
    pub fn new(target_secs: f64) -> Self {
        SloConfig {
            ttft_p99_target_secs: target_secs,
        }
    }
}

/// One window's derived health signals.
#[derive(Debug, Clone)]
pub struct HealthPoint {
    /// The window index this point describes.
    pub index: usize,
    /// Window start, seconds of virtual time.
    pub start_secs: f64,
    /// Window end, seconds of virtual time.
    pub end_secs: f64,
    /// Queue depth at the end of the window.
    pub queue_depth_end: u64,
    /// Peak queue depth within the window.
    pub queue_depth_peak: u64,
    /// Turn arrivals per second of virtual time.
    pub arrival_rate_per_sec: f64,
    /// Rolling TTFT p99 over this window's completions (`None` when no
    /// prefill finished in the window).
    pub ttft_p99_secs: Option<f64>,
    /// p99 error-budget burn rate: the fraction of this window's TTFT
    /// samples over the SLO target, divided by the budget (1 − 0.99).
    /// 1.0 means the window consumed its budget exactly; above 1.0 the
    /// SLO is burning down. `None` when no samples landed.
    pub slo_burn_rate: Option<f64>,
    /// Fault-stream events (retries, failures, corruptions, crashes,
    /// reroutes, recompute fallbacks) per second of virtual time.
    pub fault_rate_per_sec: f64,
    /// Per-tier occupancy slope, bytes per second of virtual time
    /// (end-of-window level minus the previous window's, over the
    /// width). Positive slopes mean the tier is filling.
    pub occupancy_slope_bytes_per_sec: Vec<f64>,
}

/// The live signal a rule watches.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Signal {
    /// Peak queue depth in the window.
    QueueDepth,
    /// Rolling TTFT p99, seconds (0 when the window had no samples).
    TtftP99Secs,
    /// p99 error-budget burn rate (0 when the window had no samples).
    SloBurnRate,
    /// Fault events per second.
    FaultRate,
    /// Occupancy slope of one tier, bytes per second.
    TierOccupancySlope(usize),
}

impl Signal {
    /// The signal's value in one window (missing signals read as 0).
    pub fn value(&self, p: &HealthPoint) -> f64 {
        match self {
            Signal::QueueDepth => p.queue_depth_peak as f64,
            Signal::TtftP99Secs => p.ttft_p99_secs.unwrap_or(0.0),
            Signal::SloBurnRate => p.slo_burn_rate.unwrap_or(0.0),
            Signal::FaultRate => p.fault_rate_per_sec,
            Signal::TierOccupancySlope(t) => p
                .occupancy_slope_bytes_per_sec
                .get(*t)
                .copied()
                .unwrap_or(0.0),
        }
    }

    /// Stable snake-case label, used in exports.
    pub fn label(&self) -> String {
        match self {
            Signal::QueueDepth => "queue_depth".to_string(),
            Signal::TtftP99Secs => "ttft_p99_secs".to_string(),
            Signal::SloBurnRate => "slo_burn_rate".to_string(),
            Signal::FaultRate => "fault_rate_per_sec".to_string(),
            Signal::TierOccupancySlope(t) => format!("tier{t}_occupancy_slope"),
        }
    }
}

/// A deterministic alerting rule: threshold, sustain duration and
/// hysteresis, all in virtual time.
#[derive(Debug, Clone)]
pub struct AlertRule {
    /// The rule's display name (also the pairing key in exports).
    pub name: String,
    /// The signal watched.
    pub signal: Signal,
    /// Fire once the signal stays strictly above this for
    /// [`sustain_secs`](Self::sustain_secs).
    pub threshold: f64,
    /// Resolve once the signal is at or below this (defaults to 80% of
    /// the threshold).
    pub clear_below: f64,
    /// How long the breach must persist before firing (0 fires at the
    /// first breaching window's end).
    pub sustain_secs: f64,
}

impl AlertRule {
    /// A rule firing when `signal > threshold`, with default hysteresis
    /// (clear at 80% of the threshold) and no sustain requirement.
    pub fn new(name: impl Into<String>, signal: Signal, threshold: f64) -> Self {
        AlertRule {
            name: name.into(),
            signal,
            threshold,
            clear_below: threshold * 0.8,
            sustain_secs: 0.0,
        }
    }

    /// Requires the breach to persist `secs` of virtual time.
    pub fn sustain(mut self, secs: f64) -> Self {
        self.sustain_secs = secs;
        self
    }

    /// Sets the hysteresis clear level.
    pub fn clear_below(mut self, level: f64) -> Self {
        self.clear_below = level;
        self
    }
}

/// Whether an [`AlertEvent`] opened or closed an alert.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AlertKind {
    /// The rule's breach sustained long enough: the alert opened.
    Fired,
    /// The signal dropped to the clear level: the alert closed.
    Resolved,
}

impl AlertKind {
    /// Stable snake-case label (`alert_fired` / `alert_resolved`).
    pub fn label(&self) -> &'static str {
        match self {
            AlertKind::Fired => "alert_fired",
            AlertKind::Resolved => "alert_resolved",
        }
    }
}

/// One alert transition, pinned to a window boundary of virtual time.
#[derive(Debug, Clone)]
pub struct AlertEvent {
    /// The rule that transitioned.
    pub rule: String,
    /// The signal label the rule watches.
    pub signal: String,
    /// Fired or resolved.
    pub kind: AlertKind,
    /// The window whose evaluation caused the transition.
    pub window: usize,
    /// The transition time (that window's end), seconds of virtual time.
    pub at_secs: f64,
    /// The signal's value in the deciding window.
    pub value: f64,
}

impl Serialize for AlertEvent {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("kind".into(), Value::Str(self.kind.label().to_string())),
            ("rule".into(), Value::Str(self.rule.clone())),
            ("signal".into(), Value::Str(self.signal.clone())),
            ("window".into(), Value::U64(self.window as u64)),
            ("at".into(), Value::F64(self.at_secs)),
            ("value".into(), Value::F64(self.value)),
        ])
    }
}

/// The derived health series of one run.
#[derive(Debug, Clone)]
pub struct HealthSignals {
    /// The SLO the burn rate was computed against.
    pub slo: SloConfig,
    /// One point per window, index-ordered.
    pub points: Vec<HealthPoint>,
}

impl HealthSignals {
    /// Computes the per-window health signals of a sealed series.
    pub fn from_series(series: &WindowSeries, slo: &SloConfig) -> Self {
        let width = series.width_secs;
        let mut prev_occ: Vec<f64> = Vec::new();
        let points = series
            .windows
            .iter()
            .map(|w| {
                let slope: Vec<f64> = w
                    .tiers
                    .iter()
                    .map(|t| {
                        let prev = prev_occ.get(t.tier).copied().unwrap_or(0.0);
                        (t.occupancy_end_bytes - prev) / width
                    })
                    .collect();
                prev_occ = w.tiers.iter().map(|t| t.occupancy_end_bytes).collect();
                let burn = (w.ttft.count() > 0).then(|| {
                    let over = w.ttft.count_over(slo.ttft_p99_target_secs) as f64;
                    over / w.ttft.count() as f64 / (1.0 - BURN_QUANTILE)
                });
                HealthPoint {
                    index: w.index,
                    start_secs: w.start_secs,
                    end_secs: w.end_secs,
                    queue_depth_end: w.queue_depth_end,
                    queue_depth_peak: w.queue_depth_peak,
                    arrival_rate_per_sec: w.counters.turns_arrived as f64 / width,
                    ttft_p99_secs: w.ttft.percentile(99.0),
                    slo_burn_rate: burn,
                    fault_rate_per_sec: w.counters.fault_events() as f64 / width,
                    occupancy_slope_bytes_per_sec: slope,
                }
            })
            .collect();
        HealthSignals { slo: *slo, points }
    }

    /// Evaluates `rules` over the series, returning every alert
    /// transition in chronological (window, then rule) order.
    pub fn evaluate(&self, rules: &[AlertRule]) -> Vec<AlertEvent> {
        struct RuleState {
            active: bool,
            breach_since: Option<f64>,
        }
        let mut states: Vec<RuleState> = rules
            .iter()
            .map(|_| RuleState {
                active: false,
                breach_since: None,
            })
            .collect();
        let mut events = Vec::new();
        for p in &self.points {
            for (rule, state) in rules.iter().zip(states.iter_mut()) {
                let v = rule.signal.value(p);
                if state.active {
                    if v <= rule.clear_below {
                        state.active = false;
                        state.breach_since = None;
                        events.push(AlertEvent {
                            rule: rule.name.clone(),
                            signal: rule.signal.label(),
                            kind: AlertKind::Resolved,
                            window: p.index,
                            at_secs: p.end_secs,
                            value: v,
                        });
                    }
                } else if v > rule.threshold {
                    let since = *state.breach_since.get_or_insert(p.start_secs);
                    if p.end_secs - since >= rule.sustain_secs {
                        state.active = true;
                        events.push(AlertEvent {
                            rule: rule.name.clone(),
                            signal: rule.signal.label(),
                            kind: AlertKind::Fired,
                            window: p.index,
                            at_secs: p.end_secs,
                            value: v,
                        });
                    }
                } else {
                    state.breach_since = None;
                }
            }
        }
        events
    }
}

/// The stock rule set the `exp_watch` experiment (and the future
/// autoscaler) watches: queue buildup, SLO burn and fault storms, with
/// sustain windows scaled to the series' window width.
pub fn default_rules(width_secs: f64) -> Vec<AlertRule> {
    vec![
        AlertRule::new("queue_depth_high", Signal::QueueDepth, 8.0)
            .sustain(2.0 * width_secs)
            .clear_below(4.0),
        AlertRule::new("ttft_slo_burn", Signal::SloBurnRate, 1.0)
            .sustain(2.0 * width_secs)
            .clear_below(0.5),
        AlertRule::new("fault_storm", Signal::FaultRate, 0.1).clear_below(0.0),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::window::WindowedHub;
    use engine::{EngineEvent, EngineObserver};
    use sim::Time;

    /// Drives a hub so that windows 0..n hold one TTFT sample each.
    fn series_with_ttfts(width: f64, ttfts: &[f64]) -> WindowSeries {
        let mut hub = WindowedHub::new(width);
        for (i, &t) in ttfts.iter().enumerate() {
            hub.on_event(EngineEvent::prefill_done(
                i as u64,
                t,
                Time::from_secs_f64(i as f64 * width + width / 2.0),
            ));
        }
        hub.series()
    }

    #[test]
    fn burn_rate_scores_against_the_target() {
        let series = series_with_ttfts(1.0, &[0.1, 2.0]);
        let signals = HealthSignals::from_series(&series, &SloConfig::new(1.0));
        // Window 0: sample under target → zero burn.
        assert_eq!(signals.points[0].slo_burn_rate, Some(0.0));
        // Window 1: every sample over target → burn = 1/0.01 = 100.
        let burn = signals.points[1].slo_burn_rate.unwrap();
        assert!((burn - 100.0).abs() < 1e-9, "{burn}");
        assert_eq!(signals.points[1].ttft_p99_secs, Some(2.0));
    }

    #[test]
    fn empty_windows_have_no_latency_signal() {
        let mut hub = WindowedHub::new(1.0);
        hub.on_event(EngineEvent::turn_arrived(1, 0, Time::from_secs_f64(2.5)));
        let signals = HealthSignals::from_series(&hub.series(), &SloConfig::default());
        assert_eq!(signals.points[0].ttft_p99_secs, None);
        assert_eq!(signals.points[0].slo_burn_rate, None);
        assert!((signals.points[2].arrival_rate_per_sec - 1.0).abs() < 1e-12);
    }

    #[test]
    fn sustain_delays_firing() {
        // Burn is over threshold from window 0 on; with a 2 s sustain on
        // 1 s windows the alert fires at the end of window 1.
        let series = series_with_ttfts(1.0, &[5.0, 5.0, 5.0]);
        let signals = HealthSignals::from_series(&series, &SloConfig::new(1.0));
        let rules = [AlertRule::new("burn", Signal::SloBurnRate, 1.0).sustain(2.0)];
        let events = signals.evaluate(&rules);
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].kind, AlertKind::Fired);
        assert_eq!(events[0].window, 1);
        assert_eq!(events[0].at_secs, 2.0);
    }

    #[test]
    fn interrupted_breaches_reset_the_sustain_clock() {
        // over, under, over, over: a 2 s sustain only completes on the
        // second contiguous streak.
        let series = series_with_ttfts(1.0, &[5.0, 0.1, 5.0, 5.0]);
        let signals = HealthSignals::from_series(&series, &SloConfig::new(1.0));
        let rules = [AlertRule::new("burn", Signal::SloBurnRate, 1.0).sustain(2.0)];
        let events = signals.evaluate(&rules);
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].window, 3);
    }

    #[test]
    fn hysteresis_requires_the_clear_level() {
        // Fire on 5.0, then hover between clear (0.5) and threshold
        // (1.0): the alert must stay open until the signal reaches 0.5.
        let series = series_with_ttfts(1.0, &[5.0, 5.0, 0.1]);
        let signals = HealthSignals::from_series(&series, &SloConfig::new(1.0));
        // p99 signal: values 5.0, 5.0, 0.1 with threshold 2.0, clear 1.0.
        let rules = [AlertRule::new("ttft", Signal::TtftP99Secs, 2.0).clear_below(1.0)];
        let events = signals.evaluate(&rules);
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].kind, AlertKind::Fired);
        assert_eq!(events[0].window, 0);
        assert_eq!(events[1].kind, AlertKind::Resolved);
        assert_eq!(events[1].window, 2);
        assert_eq!(events[1].at_secs, 3.0);
    }

    #[test]
    fn open_alerts_stay_open_at_eof() {
        let series = series_with_ttfts(1.0, &[5.0, 5.0]);
        let signals = HealthSignals::from_series(&series, &SloConfig::new(1.0));
        let rules = [AlertRule::new("ttft", Signal::TtftP99Secs, 2.0)];
        let events = signals.evaluate(&rules);
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].kind, AlertKind::Fired);
    }

    #[test]
    fn occupancy_slope_tracks_fill_rate() {
        use store::{StoreEvent, TierId};
        let mut hub = WindowedHub::new(2.0);
        for (at, bytes) in [(0.5, 100u64), (2.5, 500), (4.5, 300)] {
            hub.on_store_event(StoreEvent::Occupancy {
                tier: TierId(0),
                used_bytes: bytes,
                at: Time::from_secs_f64(at),
            });
        }
        let signals = HealthSignals::from_series(&hub.series(), &SloConfig::default());
        assert!((signals.points[0].occupancy_slope_bytes_per_sec[0] - 50.0).abs() < 1e-9);
        assert!((signals.points[1].occupancy_slope_bytes_per_sec[0] - 200.0).abs() < 1e-9);
        assert!((signals.points[2].occupancy_slope_bytes_per_sec[0] + 100.0).abs() < 1e-9);
    }

    #[test]
    fn default_rules_cover_queue_burn_and_faults() {
        let rules = default_rules(5.0);
        assert_eq!(rules.len(), 3);
        assert!(rules.iter().any(|r| r.signal == Signal::QueueDepth));
        assert!(rules.iter().any(|r| r.signal == Signal::SloBurnRate));
        assert!(rules.iter().any(|r| r.signal == Signal::FaultRate));
        // Hysteresis is real: every clear level sits under its threshold.
        for r in &rules {
            assert!(r.clear_below < r.threshold);
        }
    }
}
