#![warn(missing_docs)]

//! Unified run telemetry for the CachedAttention simulator.
//!
//! The serving engine publishes [`EngineEvent`]s for its pipeline steps
//! (arrival, scheduling, prefill, retirement) and, when tracing is on,
//! drains the AttentionStore's [`StoreEvent`]s (tier hits, promotions,
//! evictions, occupancy gauges) after every store interaction. This
//! crate merges the two streams into one causally ordered trace and
//! aggregates it live:
//!
//! - [`TraceRecord`]/[`TraceEvent`]: one event of the merged stream,
//!   stamped with its commit-order `seq`, source and category.
//! - [`MetricsHub`]: an [`EngineObserver`] folding the stream into the
//!   `metrics` crate's primitives (per-tier hit counters, TTFT and
//!   queue-wait histograms, HBM/DRAM occupancy time series), rendered
//!   on demand as a [`MetricsSnapshot`].
//! - [`to_jsonl`] / [`to_chrome_trace`]: exporters for the raw trace —
//!   grep-friendly JSON Lines, and the Chrome trace-event format that
//!   Perfetto and `chrome://tracing` open directly.
//! - [`Telemetry`] + [`run_with_telemetry`]: the turnkey combination —
//!   run a config and get the report, the full trace, and the hub.
//!
//! Observation is strictly read-only: a run produces a byte-identical
//! [`RunReport`] whether observed by `NullObserver` or the full
//! [`Telemetry`] stack (the golden-report tests enforce this).

use engine::{ClusterConfig, ClusterReport, EngineConfig, EngineEvent, EngineObserver, RunReport};
use store::StoreEvent;
use workload::Trace;

mod export;
pub mod health;
mod hub;
pub mod span;
mod trace;
mod window;

pub use export::{
    to_chrome_trace, to_chrome_trace_two_clock, to_chrome_trace_with_alerts, to_jsonl,
    to_prometheus, windows_to_jsonl,
};
pub use health::{
    default_rules, AlertEvent, AlertKind, AlertRule, HealthPoint, HealthSignals, Signal, SloConfig,
};
pub use hub::{InstanceMetrics, MetricsHub, MetricsSnapshot};
pub use span::{Bottleneck, ProfileSummary, Span, SpanForest, TierStats, TurnSpan};
pub use trace::{TraceEvent, TraceRecord};
pub use window::{
    Window, WindowCounters, WindowInstance, WindowSeries, WindowTier, WindowTotals, WindowedHub,
};

/// The full telemetry stack: records the merged event trace verbatim
/// and feeds every event through a [`MetricsHub`].
///
/// Use [`run_with_telemetry`] to drive a run with one attached, then
/// export [`Telemetry::records`] with [`to_jsonl`]/[`to_chrome_trace`]
/// and summarize with [`Telemetry::snapshot`].
#[derive(Debug, Default)]
pub struct Telemetry {
    records: Vec<TraceRecord>,
    hub: MetricsHub,
    windows: Option<WindowedHub>,
}

impl Telemetry {
    /// A fresh, empty telemetry collector.
    pub fn new() -> Self {
        Self::default()
    }

    /// A collector that additionally slices the run into tumbling
    /// windows of `width_secs` virtual time (the streaming plane the
    /// health signals and alert rules are computed from).
    pub fn with_windows(width_secs: f64) -> Self {
        Telemetry {
            windows: Some(WindowedHub::new(width_secs)),
            ..Self::default()
        }
    }

    /// The windowed aggregator, when enabled via
    /// [`with_windows`](Self::with_windows).
    pub fn windows(&self) -> Option<&WindowedHub> {
        self.windows.as_ref()
    }

    /// Seals and returns the window series (`None` unless constructed
    /// with [`with_windows`](Self::with_windows)).
    pub fn window_series(&self) -> Option<WindowSeries> {
        self.windows.as_ref().map(WindowedHub::series)
    }

    /// The merged trace in commit order.
    pub fn records(&self) -> &[TraceRecord] {
        &self.records
    }

    /// The live metrics aggregator.
    pub fn hub(&self) -> &MetricsHub {
        &self.hub
    }

    /// Renders the hub's current aggregates.
    pub fn snapshot(&self) -> MetricsSnapshot {
        self.hub.snapshot()
    }

    fn push(&mut self, instance: Option<u32>, ev: TraceEvent) {
        let seq = self.records.len() as u64;
        self.records.push(TraceRecord { seq, instance, ev });
    }
}

impl EngineObserver for Telemetry {
    fn on_event(&mut self, ev: EngineEvent) {
        sim::scope!("telemetry.dispatch");
        self.push(None, TraceEvent::Engine(ev));
        self.hub.on_event(ev);
        if let Some(w) = self.windows.as_mut() {
            w.on_event(ev);
        }
    }

    fn on_instance_event(&mut self, instance: u32, ev: EngineEvent) {
        sim::scope!("telemetry.dispatch");
        self.push(Some(instance), TraceEvent::Engine(ev));
        self.hub.on_instance_event(instance, ev);
        if let Some(w) = self.windows.as_mut() {
            w.on_instance_event(instance, ev);
        }
    }

    fn wants_store_events(&self) -> bool {
        true
    }

    fn on_store_event(&mut self, ev: StoreEvent) {
        sim::scope!("telemetry.dispatch");
        self.push(None, TraceEvent::Store(ev));
        self.hub.on_store_event(ev);
        if let Some(w) = self.windows.as_mut() {
            w.on_store_event(ev);
        }
    }

    fn on_instance_store_event(&mut self, instance: u32, ev: StoreEvent) {
        sim::scope!("telemetry.dispatch");
        // Events that carry their own owner attribution (promotions,
        // demotions, prefetch completions) keep it; the rest are tagged
        // with the instance whose pipeline step drained them.
        let inst = ev.instance().unwrap_or(instance);
        self.push(Some(inst), TraceEvent::Store(ev));
        self.hub.on_instance_store_event(inst, ev);
        if let Some(w) = self.windows.as_mut() {
            w.on_instance_store_event(inst, ev);
        }
    }
}

/// Runs `trace` under `cfg` with the full telemetry stack attached.
///
/// The returned [`RunReport`] is byte-identical to an unobserved run of
/// the same config; the [`Telemetry`] holds the merged event trace and
/// the aggregated metrics.
pub fn run_with_telemetry(cfg: EngineConfig, trace: Trace) -> (RunReport, Telemetry) {
    engine::run_with_observer(cfg, trace, Telemetry::new())
}

/// Runs a cluster under `cfg` with the full telemetry stack attached.
///
/// Every trace record is tagged with the serving instance it ran on, the
/// hub folds per-instance aggregates next to the global ones, and the
/// Chrome exporter renders each instance as its own Perfetto process.
pub fn run_cluster_with_telemetry(cfg: ClusterConfig, trace: Trace) -> (ClusterReport, Telemetry) {
    engine::run_cluster_with_observer(cfg, trace, Telemetry::new())
}

/// [`run_with_telemetry`] with the windowed plane enabled: the returned
/// [`Telemetry`] additionally carries a [`WindowedHub`] slicing the run
/// into `width_secs`-wide tumbling windows.
pub fn run_with_windowed_telemetry(
    cfg: EngineConfig,
    trace: Trace,
    width_secs: f64,
) -> (RunReport, Telemetry) {
    engine::run_with_observer(cfg, trace, Telemetry::with_windows(width_secs))
}

/// [`run_cluster_with_telemetry`] with the windowed plane enabled.
pub fn run_cluster_with_windowed_telemetry(
    cfg: ClusterConfig,
    trace: Trace,
    width_secs: f64,
) -> (ClusterReport, Telemetry) {
    engine::run_cluster_with_observer(cfg, trace, Telemetry::with_windows(width_secs))
}

#[cfg(test)]
mod tests {
    use super::*;
    use engine::Mode;
    use models::ModelSpec;
    use workload::{Generator, ShareGptProfile};

    fn small_cfg(mode: Mode) -> (EngineConfig, Trace) {
        let trace = Generator::new(ShareGptProfile::default(), 7).trace(12);
        let cfg = EngineConfig::paper(mode, ModelSpec::llama2_13b());
        (cfg, trace)
    }

    #[test]
    fn telemetry_run_matches_plain_run() {
        let (cfg, trace) = small_cfg(Mode::CachedAttention);
        let plain = engine::run_trace(cfg.clone(), trace.clone());
        let (observed, tel) = run_with_telemetry(cfg, trace);
        assert_eq!(
            serde_json::to_string(&plain).unwrap(),
            serde_json::to_string(&observed).unwrap()
        );
        assert!(!tel.records().is_empty());
    }

    #[test]
    fn merged_stream_has_both_sources_and_dense_seq() {
        let (cfg, trace) = small_cfg(Mode::CachedAttention);
        let (_report, tel) = run_with_telemetry(cfg, trace);
        let recs = tel.records();
        assert!(recs.iter().any(|r| matches!(r.ev, TraceEvent::Engine(_))));
        assert!(recs.iter().any(|r| matches!(r.ev, TraceEvent::Store(_))));
        for (i, r) in recs.iter().enumerate() {
            assert_eq!(r.seq, i as u64);
        }
    }

    #[test]
    fn hub_counts_agree_with_trace() {
        let (cfg, trace) = small_cfg(Mode::CachedAttention);
        let (_report, tel) = run_with_telemetry(cfg, trace);
        let snap = tel.snapshot();
        let arrived = tel
            .records()
            .iter()
            .filter(|r| r.ev.kind() == "turn_arrived")
            .count() as u64;
        assert_eq!(snap.turns_arrived, arrived);
    }
}
