//! End-to-end behaviour of the serving pipeline, exercised through the
//! public API only (these tests moved out of `serving.rs` when the
//! monolithic simulator was decomposed into staged modules).

use engine::{
    run_paper_workload, run_trace, run_traced, ConsultClass, EngineConfig, EngineEvent, Mode,
    RunReport,
};
use models::ModelSpec;
use workload::{Generator, ShareGptProfile, Trace};

fn small_trace(n: usize, seed: u64) -> Trace {
    Generator::new(ShareGptProfile::default(), seed).trace(n)
}

fn run(mode: Mode, n: usize) -> RunReport {
    run_paper_workload(mode, ModelSpec::llama2_13b(), small_trace(n, 7), 0)
}

/// Every session runs to completion in both modes.
#[test]
fn workload_completes_in_all_modes() {
    for mode in [
        Mode::CachedAttention,
        Mode::Recompute,
        Mode::CoupledOverflow,
    ] {
        let r = run(mode, 120);
        assert_eq!(r.sessions_done.get(), 120, "{mode:?}");
        assert!(r.makespan_secs > 0.0);
        assert_eq!(r.turns_measured.get() as usize, {
            // All turns measured with zero warmup.
            small_trace(120, 7).total_turns()
        });
    }
}

/// With an ample store, CachedAttention hits on nearly every
/// resumption turn.
#[test]
fn ca_hit_rate_is_high_with_ample_store() {
    let r = run(Mode::CachedAttention, 150);
    assert!(r.resumption_turns.get() > 0);
    assert!(r.hit_rate() > 0.95, "hit rate {}", r.hit_rate());
    // Scheduler-aware placement keeps the hits in the fast tier.
    assert!(r.fast_hit_rate() > 0.9, "fast {}", r.fast_hit_rate());
}

/// RE recomputes everything: computed == presented prompt tokens.
#[test]
fn re_recomputes_all_prompt_tokens() {
    let r = run(Mode::Recompute, 100);
    assert_eq!(r.computed_tokens.get(), r.prompt_tokens.get());
    assert_eq!(r.hit_rate(), 0.0);
}

/// The paper's headline: CA cuts TTFT, computed tokens and GPU time
/// versus RE on the same trace.
#[test]
fn ca_beats_re_on_the_same_trace() {
    let ca = run(Mode::CachedAttention, 200);
    let re = run(Mode::Recompute, 200);
    assert!(
        ca.ttft_mean() < re.ttft_mean(),
        "TTFT ca {} re {}",
        ca.ttft_mean(),
        re.ttft_mean()
    );
    assert!(ca.computed_tokens.get() < re.computed_tokens.get() / 2);
    assert!(ca.prefill_throughput() > re.prefill_throughput());
    assert!(ca.busy_hours() < re.busy_hours());
}

/// OF sits between CA and RE: overflow invalidations cost it hits.
#[test]
fn of_loses_hits_to_overflow() {
    // LLaMA-65B's 2K window overflows constantly (§4.3.4).
    let ca = run_paper_workload(
        Mode::CachedAttention,
        ModelSpec::llama1_65b(),
        small_trace(150, 11),
        0,
    );
    let of = run_paper_workload(
        Mode::CoupledOverflow,
        ModelSpec::llama1_65b(),
        small_trace(150, 11),
        0,
    );
    assert!(
        of.hit_rate() < ca.hit_rate(),
        "of {} ca {}",
        of.hit_rate(),
        ca.hit_rate()
    );
    assert!(of.store_stats.drops_invalidated > 0);
}

/// Truncation keeps every admitted prompt inside the context window.
#[test]
fn context_never_exceeds_window() {
    let r = run_paper_workload(
        Mode::CachedAttention,
        ModelSpec::llama1_65b(),
        small_trace(100, 3),
        0,
    );
    assert!(r.truncations.get() > 0, "workload should overflow 2K");
    // Indirect check: prompt tokens per turn never exceed the window.
    // (Direct check lives in truncate::truncate_history's unit tests.)
    let max_prompt = r.prompt_tokens.get() / r.turns_measured.get().max(1);
    assert!(max_prompt <= 2048 + 2048);
}

/// Runs are deterministic: identical seeds give identical reports.
#[test]
fn runs_are_deterministic() {
    let a = run(Mode::CachedAttention, 80);
    let b = run(Mode::CachedAttention, 80);
    assert_eq!(a.makespan_secs, b.makespan_secs);
    assert_eq!(a.computed_tokens.get(), b.computed_tokens.get());
    assert_eq!(a.h2d_bytes, b.h2d_bytes);
    assert_eq!(a.store_stats, b.store_stats);
}

/// HBM residency limits the batch: with a deliberately tiny HBM the
/// run still completes and the live-KV high water stays within the
/// budget (admission defers to decode instead of overcommitting).
#[test]
fn hbm_budget_limits_the_batch() {
    let trace = small_trace(120, 19);
    let mut cfg = EngineConfig::paper(Mode::Recompute, ModelSpec::llama1_65b());
    // Shrink HBM so only a couple of 65B contexts fit beside the
    // weights: total 160 GB − 130 GB weights − 16 GB reserve ≈ 14 GB.
    cfg.cluster.gpu.hbm_bytes = 40_000_000_000;
    let budget = {
        let total = cfg.cluster.total_hbm_bytes();
        total - cfg.model.weight_bytes() - total / 10
    };
    let r = run_trace(cfg, trace.clone());
    assert_eq!(r.sessions_done.get(), 120);
    // A single job is always admitted when the batch is empty (it
    // cannot wait on itself), so the bound is the budget or the
    // largest single-job reservation, whichever is greater.
    let model = ModelSpec::llama1_65b();
    let max_single = trace
        .sessions
        .iter()
        .flat_map(|sess| {
            (0..sess.n_turns()).map(|i| {
                let t = &sess.turns[i];
                let hist = sess.historical_tokens_at(i).min(2048);
                model.kv_bytes(hist + t.user_tokens as u64 + t.resp_tokens as u64)
            })
        })
        .max()
        .unwrap_or(0);
    assert!(
        r.hbm_high_water_bytes <= budget.max(max_single),
        "high water {} exceeds budget {budget} and max single {max_single}",
        r.hbm_high_water_bytes
    );
    // A roomy HBM admits far more concurrent KV.
    let roomy = run_trace(
        EngineConfig::paper(Mode::Recompute, ModelSpec::llama1_65b()),
        trace,
    );
    assert!(roomy.hbm_high_water_bytes >= r.hbm_high_water_bytes);
}

/// The GPU-busy timeline accounts for every busy second: its total
/// matches prefill + decode (stalls inside prefills included in the
/// prefill span).
#[test]
fn busy_timeline_accounts_for_busy_time() {
    let r = run(Mode::CachedAttention, 80);
    let timeline_total = r.gpu_busy_timeline.total();
    let busy = r.prefill_busy_secs + r.decode_busy_secs + r.stall_secs;
    // The timeline records prefill spans at their full (stall
    // inclusive) duration, so totals agree within the stall slack.
    assert!(
        (timeline_total - busy).abs() <= r.stall_secs + 1.0,
        "timeline {timeline_total} vs busy {busy}"
    );
    assert!(r.gpu_busy_timeline.peak() > 0.0);
}

/// Chunked prefill trades a little TTFT for decode-latency relief:
/// the run still completes, decoding jobs stop being blocked by whole
/// prefills, and the total computed work is unchanged.
#[test]
fn chunked_prefill_relieves_decode_blocking() {
    let trace = small_trace(200, 13);
    let model = ModelSpec::llama2_70b();
    let base = EngineConfig::paper(Mode::Recompute, model.clone());
    let mono = run_trace(base.clone(), trace.clone());
    let chunked = run_trace(base.with_chunked_prefill(256), trace);
    assert_eq!(mono.sessions_done.get(), chunked.sessions_done.get());
    assert_eq!(mono.computed_tokens.get(), chunked.computed_tokens.get());
    // Decode wall latency improves (fewer long prefill stalls).
    let mut m = mono;
    let mut c = chunked;
    let (m_p95, c_p95) = (
        m.decode_latency.percentile(95.0).unwrap(),
        c.decode_latency.percentile(95.0).unwrap(),
    );
    assert!(
        c_p95 <= m_p95 * 1.02,
        "chunked p95 {c_p95} vs monolithic {m_p95}"
    );
    // The prefilled job itself waits a bit longer.
    assert!(c.ttft_mean() >= m.ttft_mean() * 0.98);
}

/// Warmup excludes early turns from the metrics but not the run.
#[test]
fn warmup_filters_metrics() {
    let all = run_paper_workload(
        Mode::CachedAttention,
        ModelSpec::llama2_13b(),
        small_trace(100, 5),
        0,
    );
    let warmed = run_paper_workload(
        Mode::CachedAttention,
        ModelSpec::llama2_13b(),
        small_trace(100, 5),
        200,
    );
    assert!(warmed.turns_measured.get() < all.turns_measured.get());
    assert_eq!(warmed.sessions_done.get(), all.sessions_done.get());
    // Warmed-up hit rates are at least as good: the store is hot.
    assert!(warmed.hit_rate() >= all.hit_rate() - 0.05);
}

/// The observer hook is pure observation: a traced run produces the
/// exact same report as an untraced one, plus a consistent event
/// stream (every turn arrives, every admitted job retires, hit/miss
/// classifications agree with the report counters).
#[test]
fn traced_run_matches_untraced_and_is_consistent() {
    let cfg = EngineConfig::paper(Mode::CachedAttention, ModelSpec::llama2_13b());
    let trace = small_trace(60, 7);
    let plain = run_trace(cfg.clone(), trace.clone());
    let (traced, events) = run_traced(cfg, trace.clone());
    assert_eq!(plain.makespan_secs, traced.makespan_secs);
    assert_eq!(plain.computed_tokens.get(), traced.computed_tokens.get());
    assert_eq!(plain.h2d_bytes, traced.h2d_bytes);
    assert_eq!(plain.store_stats, traced.store_stats);

    let count = |f: &dyn Fn(&EngineEvent) -> bool| events.iter().filter(|e| f(e)).count();
    let arrivals = count(&|e| matches!(e, EngineEvent::TurnArrived { .. }));
    let admissions = count(&|e| matches!(e, EngineEvent::Admitted { .. }));
    let prefills = count(&|e| matches!(e, EngineEvent::PrefillDone { .. }));
    let retirements = count(&|e| matches!(e, EngineEvent::Retired { .. }));
    assert_eq!(arrivals, trace.total_turns());
    assert_eq!(admissions, arrivals);
    assert_eq!(prefills, arrivals);
    assert_eq!(retirements, arrivals);

    let hits_fast = count(&|e| {
        matches!(
            e,
            EngineEvent::Consulted {
                class: ConsultClass::HitFast,
                ..
            }
        )
    });
    assert_eq!(hits_fast as u64, traced.hits_fast.get());
    let truncations = count(&|e| matches!(e, EngineEvent::Truncated { .. }));
    assert_eq!(truncations as u64, traced.truncations.get());
}
