//! SLO-aware overload control: deadlines, the degradation ladder and the
//! autoscaler policy.
//!
//! A production deployment dies from overload before it dies from cache
//! misses: a flash crowd turns a fixed-size FCFS cluster into unbounded
//! queue growth and TTFT collapse for everyone. This module holds the
//! *policy* side of the overload-robustness layer —
//! [`ClusterSim`](crate::ClusterSim) holds the mechanism:
//!
//! - [`SloPolicy`]: the per-run SLO configuration (TTFT target, EDF
//!   scheduling, bounded per-instance inboxes, the ladder thresholds and
//!   the optional [`AutoscalePolicy`]). Strictly additive: a cluster
//!   without a policy (or with [`SloPolicy::noop`]) behaves
//!   byte-identically to the pre-SLO engine.
//! - [`OverloadLevel`]: the four-rung degradation ladder — full
//!   CachedAttention → recompute-only (skip fetch, keep serving) →
//!   harder truncation (shrink the work) → shed (typed rejection instead
//!   of unbounded queueing).
//! - [`SloState`]: the deterministic decision automaton. Signals are the
//!   *observable* queue depth and the windowed TTFT-SLO burn rate;
//!   transitions require `sustain_ticks` consecutive breaching windows
//!   and clear only below `clear_ratio ×` the threshold, mirroring the
//!   telemetry plane's `AlertRule` sustain/clear hysteresis so the
//!   engine acts on the same shape of signal the operator alerts on.
//!
//! Every decision is a pure function of the virtual-time signal series,
//! so overload behaviour is bit-reproducible like everything else.

use sim::{Dur, Time};

/// One rung of the degradation ladder, mildest first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum OverloadLevel {
    /// Full CachedAttention service.
    Normal,
    /// Skip store fetches and prefetching; recompute history instead.
    /// Sheds slow-tier bandwidth and pinning without refusing work.
    RecomputeOnly,
    /// Additionally truncate history against a shrunken effective
    /// context window, shrinking every prefill.
    HardTruncate,
    /// Additionally shed arriving turns with a typed rejection.
    Shed,
}

impl OverloadLevel {
    /// Stable label used in events and reports.
    pub fn label(self) -> &'static str {
        match self {
            OverloadLevel::Normal => "normal",
            OverloadLevel::RecomputeOnly => "recompute_only",
            OverloadLevel::HardTruncate => "hard_truncate",
            OverloadLevel::Shed => "shed",
        }
    }

    /// The next-harsher rung (saturating).
    pub fn escalate(self) -> OverloadLevel {
        match self {
            OverloadLevel::Normal => OverloadLevel::RecomputeOnly,
            OverloadLevel::RecomputeOnly => OverloadLevel::HardTruncate,
            OverloadLevel::HardTruncate | OverloadLevel::Shed => OverloadLevel::Shed,
        }
    }

    /// The next-milder rung (saturating).
    pub fn relax(self) -> OverloadLevel {
        match self {
            OverloadLevel::Normal | OverloadLevel::RecomputeOnly => OverloadLevel::Normal,
            OverloadLevel::HardTruncate => OverloadLevel::RecomputeOnly,
            OverloadLevel::Shed => OverloadLevel::HardTruncate,
        }
    }
}

/// Queue-driven autoscaling policy: add instances while sustained
/// per-instance queue depth stays above `up_queue_depth`, retire them
/// once it stays below `down_queue_depth`, with a cooldown between
/// actions so scaling cannot flap within one decision's settling time.
#[derive(Debug, Clone, PartialEq)]
pub struct AutoscalePolicy {
    /// Never scale below this many instances.
    pub min_instances: usize,
    /// Never scale above this many instances.
    pub max_instances: usize,
    /// Mean queue depth per alive instance that (sustained) adds one.
    pub up_queue_depth: f64,
    /// Mean queue depth per alive instance below which (sustained) one
    /// retires.
    pub down_queue_depth: f64,
    /// Consecutive breaching/clear ticks required before acting
    /// (mirrors `AlertRule::sustain_secs` in tick units).
    pub sustain_ticks: u32,
    /// Minimum gap between two scaling actions.
    pub cooldown: Dur,
}

impl Default for AutoscalePolicy {
    fn default() -> Self {
        AutoscalePolicy {
            min_instances: 1,
            max_instances: 8,
            up_queue_depth: 6.0,
            down_queue_depth: 1.0,
            sustain_ticks: 2,
            cooldown: Dur::from_secs_f64(30.0),
        }
    }
}

impl AutoscalePolicy {
    /// Returns a copy with different instance bounds.
    pub fn with_bounds(mut self, min: usize, max: usize) -> Self {
        assert!(min >= 1, "autoscaling below one instance strands work");
        assert!(max >= min, "max_instances must be at least min_instances");
        self.min_instances = min;
        self.max_instances = max;
        self
    }
}

/// The overload policy of one cluster run.
///
/// Attach with [`ClusterConfig::with_slo`](crate::ClusterConfig::with_slo);
/// the no-op policy is dropped there so SLO-free runs take none of the
/// overload paths (the goldens pin this byte-for-byte).
#[derive(Debug, Clone, PartialEq)]
pub struct SloPolicy {
    /// Default TTFT target (relative deadline) for turns that do not
    /// carry their own `ttft_deadline`. `Dur::ZERO` means the policy is
    /// a no-op.
    pub ttft_target: Dur,
    /// Use EDF admission with this starvation-guard slack instead of
    /// FCFS (`None` keeps FCFS order under SLO accounting).
    pub edf_max_slack: Option<Dur>,
    /// Bounded per-instance inbox capacity (waiting jobs); overflow
    /// sheds with a typed rejection regardless of ladder level.
    pub inbox_capacity: usize,
    /// Signal-evaluation cadence: ladder and autoscaler decisions fire
    /// on this tumbling window of virtual time.
    pub tick: Dur,
    /// Mean queue depth per alive instance that counts as a breach.
    pub degrade_queue_depth: f64,
    /// TTFT-p99 SLO burn rate (miss fraction over the 1% error budget)
    /// that counts as a breach.
    pub degrade_burn: f64,
    /// Consecutive breaching (resp. clear) ticks before the ladder
    /// escalates (resp. relaxes) one rung.
    pub sustain_ticks: u32,
    /// Signals must fall below `clear_ratio ×` their threshold before a
    /// tick counts toward relaxing — the `AlertRule::clear_below`
    /// hysteresis, so the ladder cannot flap on a signal hovering at
    /// the threshold.
    pub clear_ratio: f64,
    /// Effective context-window fraction under
    /// [`OverloadLevel::HardTruncate`]: history is truncated as if the
    /// model window were this much smaller.
    pub hard_truncate_window: f64,
    /// Queue-driven autoscaling, if enabled.
    pub autoscale: Option<AutoscalePolicy>,
}

impl SloPolicy {
    /// An SLO policy with the given TTFT target and ladder defaults
    /// (EDF with a `10 × target` starvation floor, 32-job inboxes, 5 s
    /// decision ticks, no autoscaler).
    pub fn new(ttft_target: Dur) -> Self {
        assert!(ttft_target > Dur::ZERO, "a zero target is the no-op policy");
        SloPolicy {
            ttft_target,
            edf_max_slack: Some(Dur::from_nanos(ttft_target.as_nanos().saturating_mul(10))),
            inbox_capacity: 32,
            tick: Dur::from_secs_f64(5.0),
            degrade_queue_depth: 8.0,
            degrade_burn: 1.0,
            sustain_ticks: 2,
            clear_ratio: 0.5,
            hard_truncate_window: 0.5,
            autoscale: None,
        }
    }

    /// The no-op policy: attaching it is the same as attaching none.
    /// Exists so "empty SLO config" can be written down and pinned
    /// byte-identical to the SLO-free engine.
    pub fn noop() -> Self {
        SloPolicy {
            ttft_target: Dur::ZERO,
            edf_max_slack: None,
            inbox_capacity: usize::MAX,
            tick: Dur::from_secs_f64(5.0),
            degrade_queue_depth: f64::INFINITY,
            degrade_burn: f64::INFINITY,
            sustain_ticks: u32::MAX,
            clear_ratio: 0.5,
            hard_truncate_window: 1.0,
            autoscale: None,
        }
    }

    /// Whether this policy changes nothing (dropped at config time).
    pub fn is_noop(&self) -> bool {
        self.ttft_target == Dur::ZERO
    }

    /// Returns a copy with FCFS admission (SLO accounting without EDF).
    pub fn with_fcfs(mut self) -> Self {
        self.edf_max_slack = None;
        self
    }

    /// Returns a copy with a different per-instance inbox capacity.
    pub fn with_inbox_capacity(mut self, cap: usize) -> Self {
        assert!(cap >= 1, "a zero-capacity inbox sheds everything");
        self.inbox_capacity = cap;
        self
    }

    /// Returns a copy with a different decision-tick width.
    pub fn with_tick(mut self, tick: Dur) -> Self {
        assert!(tick > Dur::ZERO, "decision ticks need positive width");
        self.tick = tick;
        self
    }

    /// Returns a copy with autoscaling enabled.
    pub fn with_autoscale(mut self, a: AutoscalePolicy) -> Self {
        self.autoscale = Some(a);
        self
    }
}

/// A scaling action the autoscaler decided on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScaleDecision {
    /// Add one instance.
    Up,
    /// Retire one instance (draining it like a crash, minus the fault).
    Down,
}

/// What one decision tick concluded.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct TickDecision {
    /// Ladder transition, if one fired: `(from, to)`.
    pub transition: Option<(OverloadLevel, OverloadLevel)>,
    /// Scaling action, if one fired.
    pub scale: Option<ScaleDecision>,
    /// The tick's TTFT-SLO burn rate (for observability).
    pub burn: f64,
}

/// The overload decision automaton: current ladder rung plus the sustain
/// and cooldown counters behind the hysteresis.
#[derive(Debug, Default)]
pub struct SloState {
    level_idx: u8,
    breach_ticks: u32,
    clear_ticks: u32,
    up_ticks: u32,
    down_ticks: u32,
    last_scale: Option<Time>,
    ttft_samples: u64,
    ttft_misses: u64,
}

impl SloState {
    /// Current ladder rung.
    pub fn level(&self) -> OverloadLevel {
        match self.level_idx {
            0 => OverloadLevel::Normal,
            1 => OverloadLevel::RecomputeOnly,
            2 => OverloadLevel::HardTruncate,
            _ => OverloadLevel::Shed,
        }
    }

    fn set_level(&mut self, l: OverloadLevel) {
        self.level_idx = match l {
            OverloadLevel::Normal => 0,
            OverloadLevel::RecomputeOnly => 1,
            OverloadLevel::HardTruncate => 2,
            OverloadLevel::Shed => 3,
        };
    }

    /// Records one measured first token: whether it met its deadline.
    /// Feeds the next tick's burn-rate signal.
    pub fn note_first_token(&mut self, met_deadline: bool) {
        self.ttft_samples += 1;
        if !met_deadline {
            self.ttft_misses += 1;
        }
    }

    /// Records a shed turn as a deadline miss: rejections burn the error
    /// budget too, otherwise shedding everything would read as perfect
    /// service.
    pub fn note_shed(&mut self) {
        self.ttft_samples += 1;
        self.ttft_misses += 1;
    }

    /// Runs one decision tick over the window that just closed.
    ///
    /// `depth_per_instance` is the observable mean queue depth across
    /// alive instances at the tick instant; the burn rate comes from the
    /// first tokens noted since the previous tick (and resets here).
    /// At most one ladder transition and one scaling action fire per
    /// tick, so every decision is attributable to one window's signals.
    pub fn on_tick(
        &mut self,
        p: &SloPolicy,
        now: Time,
        depth_per_instance: f64,
        n_alive: usize,
    ) -> TickDecision {
        // Burn rate against a p99 target: miss fraction over the 1%
        // error budget (1.0 = exactly burning the budget), the same
        // definition `HealthSignals` exports to operators.
        let burn = if self.ttft_samples == 0 {
            0.0
        } else {
            (self.ttft_misses as f64 / self.ttft_samples as f64) / 0.01
        };
        self.ttft_samples = 0;
        self.ttft_misses = 0;
        let mut out = TickDecision {
            burn,
            ..TickDecision::default()
        };

        // Ladder: breach when either signal exceeds its threshold;
        // clear only when both sit below clear_ratio × threshold.
        //
        // The Shed rung keys on queue depth alone, in both directions.
        // Escalating into it on burn would shed work the queue could
        // still absorb (misses recompute/truncation cannot fix are not
        // fixed by rejecting more work either), and relaxing out of it
        // on burn would deadlock: shed turns burn the error budget
        // themselves, so at the Shed rung the burn signal measures the
        // rung, not the service, and only the drained queue can witness
        // recovery.
        let level = self.level();
        let depth_breach = depth_per_instance > p.degrade_queue_depth;
        let depth_clear = depth_per_instance <= p.clear_ratio * p.degrade_queue_depth;
        let breach = if level >= OverloadLevel::HardTruncate {
            depth_breach
        } else {
            depth_breach || burn > p.degrade_burn
        };
        let clear = if level == OverloadLevel::Shed {
            depth_clear
        } else {
            depth_clear && burn <= p.clear_ratio * p.degrade_burn
        };
        if breach {
            self.breach_ticks += 1;
            self.clear_ticks = 0;
        } else if clear {
            self.clear_ticks += 1;
            self.breach_ticks = 0;
        } else {
            // The hysteresis band: neither escalating nor relaxing.
            self.breach_ticks = 0;
            self.clear_ticks = 0;
        }
        if self.breach_ticks >= p.sustain_ticks && level != OverloadLevel::Shed {
            self.breach_ticks = 0;
            self.set_level(level.escalate());
            out.transition = Some((level, self.level()));
        } else if self.clear_ticks >= p.sustain_ticks && level != OverloadLevel::Normal {
            self.clear_ticks = 0;
            self.set_level(level.relax());
            out.transition = Some((level, self.level()));
        }

        // Autoscaler: same sustain shape on queue depth, plus cooldown.
        if let Some(a) = &p.autoscale {
            if depth_per_instance > a.up_queue_depth {
                self.up_ticks += 1;
                self.down_ticks = 0;
            } else if depth_per_instance < a.down_queue_depth {
                self.down_ticks += 1;
                self.up_ticks = 0;
            } else {
                self.up_ticks = 0;
                self.down_ticks = 0;
            }
            let cooled = match self.last_scale {
                None => true,
                Some(at) => now >= at + a.cooldown,
            };
            if cooled {
                if self.up_ticks >= a.sustain_ticks && n_alive < a.max_instances {
                    self.up_ticks = 0;
                    self.last_scale = Some(now);
                    out.scale = Some(ScaleDecision::Up);
                } else if self.down_ticks >= a.sustain_ticks && n_alive > a.min_instances {
                    self.down_ticks = 0;
                    self.last_scale = Some(now);
                    out.scale = Some(ScaleDecision::Down);
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn policy() -> SloPolicy {
        SloPolicy::new(Dur::from_secs_f64(2.0)).with_tick(Dur::from_secs_f64(5.0))
    }

    #[test]
    fn ladder_escalates_only_after_sustain() {
        let p = policy();
        let mut s = SloState::default();
        let t = |i: u64| Time::from_secs_f64(5.0 * i as f64);
        // One breaching tick: not enough (sustain_ticks = 2).
        assert_eq!(s.on_tick(&p, t(1), 20.0, 2).transition, None);
        assert_eq!(s.level(), OverloadLevel::Normal);
        // Second consecutive breach: escalate one rung.
        let d = s.on_tick(&p, t(2), 20.0, 2);
        assert_eq!(
            d.transition,
            Some((OverloadLevel::Normal, OverloadLevel::RecomputeOnly))
        );
        // An interrupted breach resets the sustain counter.
        assert_eq!(s.on_tick(&p, t(3), 20.0, 2).transition, None);
        assert_eq!(s.on_tick(&p, t(4), 5.0, 2).transition, None);
        assert_eq!(s.on_tick(&p, t(5), 20.0, 2).transition, None);
        assert_eq!(s.level(), OverloadLevel::RecomputeOnly);
    }

    #[test]
    fn ladder_clears_only_below_the_hysteresis_band() {
        let p = policy();
        let mut s = SloState::default();
        s.set_level(OverloadLevel::HardTruncate);
        let t = |i: u64| Time::from_secs_f64(5.0 * i as f64);
        // Depth inside the band (clear needs <= 4.0 here): no relax ever.
        for i in 1..6 {
            assert_eq!(s.on_tick(&p, t(i), 6.0, 2).transition, None);
        }
        assert_eq!(s.level(), OverloadLevel::HardTruncate);
        // Below the clear level for sustain ticks: one rung down.
        assert_eq!(s.on_tick(&p, t(6), 1.0, 2).transition, None);
        let d = s.on_tick(&p, t(7), 1.0, 2);
        assert_eq!(
            d.transition,
            Some((OverloadLevel::HardTruncate, OverloadLevel::RecomputeOnly))
        );
    }

    #[test]
    fn burn_rate_breaches_independently_of_depth() {
        let p = policy();
        let mut s = SloState::default();
        // 5% of first tokens missing a p99 target = 5× burn.
        for i in 0..100 {
            s.note_first_token(i % 20 != 0);
        }
        let d = s.on_tick(&p, Time::from_secs_f64(5.0), 0.0, 2);
        assert!((d.burn - 5.0).abs() < 1e-9, "burn {}", d.burn);
        for i in 0..100 {
            s.note_first_token(i % 20 != 0);
        }
        let d = s.on_tick(&p, Time::from_secs_f64(10.0), 0.0, 2);
        assert_eq!(
            d.transition,
            Some((OverloadLevel::Normal, OverloadLevel::RecomputeOnly))
        );
        // Samples reset at every tick.
        let d = s.on_tick(&p, Time::from_secs_f64(15.0), 0.0, 2);
        assert_eq!(d.burn, 0.0);
    }

    /// The Shed rung ignores the burn signal in both directions: pure
    /// burn (with a short queue) never escalates HardTruncate → Shed,
    /// and an active Shed rung — whose own rejections keep the burn
    /// rate pinned high — relaxes as soon as the queue drains, instead
    /// of deadlocking on the misses it generates itself.
    #[test]
    fn shed_rung_keys_on_queue_depth_alone() {
        let p = policy();
        let t = |i: u64| Time::from_secs_f64(5.0 * i as f64);
        let mut s = SloState::default();
        s.set_level(OverloadLevel::HardTruncate);
        for i in 1..8 {
            for _ in 0..100 {
                s.note_first_token(false);
            }
            assert_eq!(s.on_tick(&p, t(i), 0.0, 2).transition, None);
        }
        assert_eq!(s.level(), OverloadLevel::HardTruncate);
        // Depth breaching does escalate the last rung.
        assert_eq!(s.on_tick(&p, t(8), 20.0, 2).transition, None);
        let d = s.on_tick(&p, t(9), 20.0, 2);
        assert_eq!(
            d.transition,
            Some((OverloadLevel::HardTruncate, OverloadLevel::Shed))
        );
        // At Shed, rejections burn the budget, yet the drained queue
        // relaxes the rung anyway.
        for _ in 0..100 {
            s.note_shed();
        }
        assert_eq!(s.on_tick(&p, t(10), 0.0, 2).transition, None);
        for _ in 0..100 {
            s.note_shed();
        }
        let d = s.on_tick(&p, t(11), 0.0, 2);
        assert_eq!(
            d.transition,
            Some((OverloadLevel::Shed, OverloadLevel::HardTruncate))
        );
    }

    #[test]
    fn shed_turns_burn_the_budget() {
        let mut s = SloState::default();
        s.note_shed();
        s.note_first_token(true);
        let d = s.on_tick(&policy(), Time::from_secs_f64(5.0), 0.0, 1);
        assert!((d.burn - 50.0).abs() < 1e-9);
    }

    #[test]
    fn autoscaler_respects_sustain_bounds_and_cooldown() {
        let a = AutoscalePolicy {
            cooldown: Dur::from_secs_f64(30.0),
            ..AutoscalePolicy::default().with_bounds(1, 3)
        };
        let p = policy().with_autoscale(a);
        let mut s = SloState::default();
        let t = |i: u64| Time::from_secs_f64(5.0 * i as f64);
        assert_eq!(s.on_tick(&p, t(1), 10.0, 1).scale, None);
        assert_eq!(s.on_tick(&p, t(2), 10.0, 1).scale, Some(ScaleDecision::Up));
        // Cooldown: sustained breach cannot fire again for 30 s.
        for i in 3..8 {
            assert_eq!(s.on_tick(&p, t(i), 10.0, 2).scale, None);
        }
        assert_eq!(s.on_tick(&p, t(8), 10.0, 2).scale, Some(ScaleDecision::Up));
        // At max_instances no further up-scaling fires.
        for i in 9..20 {
            assert_eq!(s.on_tick(&p, t(i), 10.0, 3).scale, None);
        }
        // Sustained idleness scales down, bounded by min_instances.
        let mut s = SloState::default();
        assert_eq!(s.on_tick(&p, t(1), 0.0, 3).scale, None);
        assert_eq!(s.on_tick(&p, t(2), 0.0, 3).scale, Some(ScaleDecision::Down));
        let mut s = SloState::default();
        assert_eq!(s.on_tick(&p, t(1), 0.0, 1).scale, None);
        assert_eq!(s.on_tick(&p, t(2), 0.0, 1).scale, None);
    }

    #[test]
    fn noop_policy_never_decides_anything() {
        let p = SloPolicy::noop();
        assert!(p.is_noop());
        assert!(!SloPolicy::new(Dur::from_secs_f64(1.0)).is_noop());
        let mut s = SloState::default();
        for i in 1..50u64 {
            let d = s.on_tick(&p, Time::from_secs_f64(i as f64), 1e9, 1);
            assert_eq!(d.transition, None);
            assert_eq!(d.scale, None);
        }
        assert_eq!(s.level(), OverloadLevel::Normal);
    }
}
