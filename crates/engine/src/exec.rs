//! Execution stage: what the GPU runs and for how long.
//!
//! Owns the job arena's [`Job`] record, the GPU's current [`Action`], the
//! decode batch, and the timing arithmetic: [`prefill_timing`] folds the
//! layer-wise pre-loading schedule (§3.2.1) into a prefill's duration,
//! [`plan_prefill`] decides monolithic vs Sarathi-style chunked issue,
//! and [`Executor::advance_decode`] steps the continuous batch one token.
//!
//! The stage is deliberately ignorant of the report and the store: it
//! returns durations and classifications, and the orchestrator does the
//! bookkeeping.

use sim::{Dur, Time};

use crate::overlap::{no_preload, with_preload, PreloadParams};
use crate::transfer::TransferPlan;
use crate::{EngineConfig, Medium};

/// What the GPU is doing until the pending tick.
#[derive(Debug, Clone, Copy)]
pub enum Action {
    /// Prefilling `job` monolithically; at the tick it joins the batch.
    Prefill {
        /// Job arena index.
        job: usize,
    },
    /// Running one chunk of `job`'s prefill; `chunks_left` more follow.
    PrefillChunk {
        /// Job arena index.
        job: usize,
        /// Chunks remaining after the current one.
        chunks_left: u32,
        /// Duration of each chunk.
        chunk_dur: Dur,
    },
    /// One decode iteration of the whole batch.
    Decode,
    /// Stalled waiting for data or buffer drain.
    Sleep,
}

/// One turn's job.
#[derive(Debug)]
pub struct Job {
    /// Owning session (index into the simulator's session table).
    pub session: usize,
    /// Serving instance the router assigned this turn to (always 0 on a
    /// single-instance engine).
    pub instance: u32,
    /// When the turn arrived.
    pub arrival: Time,
    /// Prompt tokens presented this turn (clamped to the window).
    pub user_tokens: u64,
    /// Response tokens to decode.
    pub resp_tokens: u64,
    /// Historical context tokens visible to the model (post-truncation).
    pub hist_tokens: u64,
    /// History tokens served from the cache.
    pub reused_tokens: u64,
    /// Tokens actually prefilled on the GPU.
    pub computed_tokens: u64,
    /// Live context length while decoding.
    pub ctx_tokens: u64,
    /// Decode tokens still to produce.
    pub remaining_decode: u64,
    /// Whether this turn counts toward the metrics (past warmup).
    pub measured: bool,
    /// Pure prefill compute time in seconds.
    pub prefill_secs: f64,
    /// When the job was admitted onto the GPU.
    pub admitted_at: Time,
    /// When decoding started (prefill completion).
    pub decode_start: Time,
    /// Store-consultation outcome, filled the first time the job reaches
    /// the queue head: (reused tokens, staging completion time, tier the
    /// KV was found in — `None` on a miss).
    pub consulted: Option<(u64, Time, Option<store::TierId>)>,
    /// Absolute TTFT deadline the scheduler orders by; `None` when no SLO
    /// policy governs the run.
    pub deadline: Option<Time>,
    /// Admitted under overload degradation: skip the store's fetch path
    /// and recompute the full prefill (the turn still saves on retire).
    pub degraded: bool,
}

impl Job {
    /// A fresh job for one arriving turn on `instance`, not yet consulted
    /// or admitted.
    #[allow(clippy::too_many_arguments)]
    pub fn for_turn(
        session: usize,
        instance: u32,
        arrival: Time,
        user_tokens: u64,
        resp_tokens: u64,
        hist_tokens: u64,
        measured: bool,
    ) -> Self {
        Job {
            session,
            instance,
            arrival,
            user_tokens,
            resp_tokens,
            hist_tokens,
            reused_tokens: 0,
            computed_tokens: 0,
            ctx_tokens: 0,
            remaining_decode: resp_tokens,
            measured,
            prefill_secs: 0.0,
            admitted_at: Time::ZERO,
            decode_start: Time::ZERO,
            consulted: None,
            deadline: None,
            degraded: false,
        }
    }
}

/// How an admitted prefill is issued.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PrefillIssue {
    /// One uninterrupted prefill.
    Monolithic,
    /// Sarathi-style chunking: `n_chunks` equal slices with one decode
    /// iteration piggybacked between consecutive slices.
    Chunked {
        /// Number of slices.
        n_chunks: u64,
        /// Duration of each slice.
        chunk_dur: Dur,
    },
}

/// Splits a prefill into chunks when a chunk size is configured and the
/// computed span exceeds it.
pub fn plan_prefill(chunk_tokens: Option<u64>, computed: u64, total: Dur) -> PrefillIssue {
    match chunk_tokens {
        Some(chunk) if computed > chunk => {
            let n_chunks = computed.div_ceil(chunk).max(1);
            PrefillIssue::Chunked {
                n_chunks,
                chunk_dur: total / n_chunks,
            }
        }
        _ => PrefillIssue::Monolithic,
    }
}

/// Computes the prefill timing of a job given its reuse split and the
/// staging completion of its cached KV.
/// Returns (total duration, pure compute, stall).
///
/// For DRAM-backed fast tiers the reused KV is pre-loaded layer-wise
/// over the `h2d` stream, overlapped with the partial prefill (§3.2.1);
/// the stream is occupied through the end of the load. For HBM-backed
/// fast tiers the KV is already device-resident and only the staging
/// wait remains.
pub fn prefill_timing(
    cfg: &EngineConfig,
    plan: &mut TransferPlan,
    now: Time,
    reused: u64,
    computed: u64,
    staged: Time,
) -> (Dur, Dur, Dur) {
    let m = &cfg.model;
    let comp = cfg.cost.prefill_time(m, &cfg.cluster, computed, reused);
    let load_bytes = cfg.stored_kv_bytes(reused);
    if reused == 0 {
        return (comp, comp, Dur::ZERO);
    }
    // For HBM-backed fast tiers the KV is already device-resident.
    if matches!(cfg.medium, Medium::HbmDram | Medium::HbmOnly) {
        let wait = staged.saturating_since(now);
        return (wait + comp, comp, wait);
    }
    let layers = m.n_layers;
    let t_load_layer = plan.h2d_duration_of(load_bytes / layers as u64);
    let t_comp_layer = comp / layers as u64;
    // The read stream may have warmed the buffer while it was idle
    // before this job, but never before the KV was staged in DRAM.
    let stream_free = plan.h2d_busy_until().max(staged);
    let max_warm = t_load_layer * cfg.read_buffer_layers as u64;
    let (warm, delay) = if stream_free <= now {
        (now.saturating_since(stream_free).min(max_warm), Dur::ZERO)
    } else {
        (Dur::ZERO, stream_free - now)
    };
    let params = PreloadParams {
        n_layers: layers,
        t_load_layer,
        t_comp_layer,
        buffer_layers: cfg.read_buffer_layers,
        warm,
        delay,
    };
    let timing = if cfg.preload {
        with_preload(&params)
    } else {
        no_preload(&params)
    };
    // Occupy the load stream through the end of this job's transfers.
    plan.h2d_occupy(now + timing.load_done, load_bytes);
    (timing.done, comp, timing.stall)
}

/// The GPU's mutable execution state: current action, paused chunked
/// prefill, and the continuous decode batch.
#[derive(Debug, Default)]
pub struct Executor {
    /// What the GPU runs until the pending tick (`None` = idle).
    pub gpu_action: Option<Action>,
    /// A chunked prefill paused for one piggybacked decode iteration:
    /// (job, chunks left, chunk duration).
    pub pending_chunk: Option<(usize, u32, Dur)>,
    /// Jobs decoding together under continuous batching.
    pub batch: Vec<usize>,
}

impl Executor {
    /// Creates an idle executor with an empty batch.
    pub fn new() -> Self {
        Executor::default()
    }

    /// Duration of one decode iteration of the current batch.
    pub fn decode_iter_dur(&self, cfg: &EngineConfig, jobs: &[Job]) -> Dur {
        let total_ctx: u64 = self.batch.iter().map(|&j| jobs[j].ctx_tokens).sum();
        cfg.cost
            .decode_iter_time(&cfg.model, &cfg.cluster, self.batch.len() as u64, total_ctx)
    }

    /// Advances every batched job by one decoded token; removes and
    /// returns the jobs that just finished, in batch order.
    pub fn advance_decode(&mut self, jobs: &mut [Job]) -> Vec<usize> {
        let mut finished = Vec::new();
        for &j in &self.batch {
            let job = &mut jobs[j];
            job.ctx_tokens += 1;
            job.remaining_decode -= 1;
            if job.remaining_decode == 0 {
                finished.push(j);
            }
        }
        self.batch.retain(|j| !finished.contains(j));
        finished
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job(resp: u64) -> Job {
        Job {
            session: 0,
            instance: 0,
            arrival: Time::ZERO,
            user_tokens: 10,
            resp_tokens: resp,
            hist_tokens: 0,
            reused_tokens: 0,
            computed_tokens: 10,
            ctx_tokens: 10,
            remaining_decode: resp,
            measured: true,
            prefill_secs: 0.0,
            admitted_at: Time::ZERO,
            decode_start: Time::ZERO,
            consulted: None,
            deadline: None,
            degraded: false,
        }
    }

    #[test]
    fn plan_prefill_only_chunks_past_the_threshold() {
        let total = Dur::from_secs_f64(1.0);
        assert_eq!(plan_prefill(None, 10_000, total), PrefillIssue::Monolithic);
        assert_eq!(
            plan_prefill(Some(256), 200, total),
            PrefillIssue::Monolithic
        );
        assert_eq!(
            plan_prefill(Some(256), 256, total),
            PrefillIssue::Monolithic
        );
        match plan_prefill(Some(256), 1000, total) {
            PrefillIssue::Chunked {
                n_chunks,
                chunk_dur,
            } => {
                assert_eq!(n_chunks, 4);
                assert_eq!(chunk_dur, total / 4);
            }
            other => panic!("expected chunked, got {other:?}"),
        }
    }

    #[test]
    fn advance_decode_retires_in_batch_order() {
        let mut jobs = vec![job(1), job(2), job(1)];
        let mut ex = Executor::new();
        ex.batch = vec![0, 1, 2];
        let finished = ex.advance_decode(&mut jobs);
        assert_eq!(finished, vec![0, 2]);
        assert_eq!(ex.batch, vec![1]);
        assert_eq!(jobs[0].ctx_tokens, 11);
        assert_eq!(jobs[1].remaining_decode, 1);
        let finished = ex.advance_decode(&mut jobs);
        assert_eq!(finished, vec![1]);
        assert!(ex.batch.is_empty());
    }
}
