//! The single-engine serving facade.
//!
//! [`ServingSim`] is the original one-GPU entry point, now a thin facade
//! over [`ClusterSim`](crate::ClusterSim) with a single instance and the
//! session-affinity router (under which every turn routes to instance 0,
//! reproducing the pre-cluster engine operation-for-operation — the
//! golden `RunReport` fixtures pin this byte-for-byte). The staged
//! pipeline the orchestrator sequences lives in the sibling modules:
//!
//! - [`scheduler`](crate::scheduler) — the job queue
//!   ([`SchedulerPolicy`](crate::scheduler::SchedulerPolicy), FCFS by
//!   default) and the pure admission predicates;
//! - [`transfer`](crate::transfer) — the four bandwidth links, store
//!   consultation, write-buffer gating and fast-tier staging times;
//! - [`hbm`](crate::hbm) — the live-KV budget and high-water ledger;
//! - [`truncate`](crate::truncate) — the context-overflow policy;
//! - [`exec`](crate::exec) — prefill/decode timing, chunked-prefill
//!   issue and the continuous decode batch.

use workload::Trace;

use crate::cluster::{ClusterConfig, ClusterSim};
use crate::events::{EngineObserver, NullObserver};
use crate::{EngineConfig, RunReport};

/// The single-instance serving world: a one-GPU cluster.
pub struct ServingSim<O: EngineObserver = NullObserver> {
    inner: ClusterSim<O>,
}

impl ServingSim<NullObserver> {
    /// Builds a simulator for `cfg` over `trace`.
    pub fn new(cfg: EngineConfig, trace: Trace) -> Self {
        ServingSim::with_observer(cfg, trace, NullObserver)
    }

    /// Runs the full workload to completion and returns the report.
    pub fn run(cfg: EngineConfig, trace: Trace) -> RunReport {
        let mut world = ServingSim::new(cfg, trace);
        world.drive();
        world.finish().0
    }
}

impl<O: EngineObserver> ServingSim<O> {
    /// Builds a simulator that reports every pipeline step to `obs`.
    pub fn with_observer(cfg: EngineConfig, trace: Trace, obs: O) -> Self {
        ServingSim {
            inner: ClusterSim::with_observer(ClusterConfig::single(cfg), trace, obs),
        }
    }

    /// Feeds the trace's session arrivals and runs the event loop dry.
    pub(crate) fn drive(&mut self) {
        self.inner.drive();
    }

    /// Finalizes the report; hands back the observer too.
    pub(crate) fn finish(self) -> (RunReport, O) {
        let (cluster, obs) = self.inner.finish();
        (cluster.aggregate, obs)
    }
}
