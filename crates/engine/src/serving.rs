//! The discrete-event serving orchestrator.
//!
//! [`ServingSim`] is a thin event dispatcher over the staged pipeline;
//! the stages own the mechanics:
//!
//! - [`scheduler`](crate::scheduler) — the job queue
//!   ([`SchedulerPolicy`], FCFS by default) and the pure admission
//!   predicates (data readiness, HBM residency);
//! - [`transfer`](crate::transfer) — the four bandwidth links, store
//!   consultation, write-buffer gating and fast-tier staging times;
//! - [`hbm`](crate::hbm) — the live-KV budget and high-water ledger;
//! - [`truncate`](crate::truncate) — the context-overflow policy;
//! - [`exec`](crate::exec) — prefill/decode timing, chunked-prefill
//!   issue and the continuous decode batch.
//!
//! The orchestrator sequences those stages per event (closed-loop turn
//! arrivals, GPU ticks, TTL sweeps), keeps the session table and job
//! arena, and routes outcomes into the [`RunReport`] recorders, so a
//! stage never sees the metrics it influences. An [`EngineObserver`]
//! watches every committed step; [`run_traced`](crate::run_traced)
//! collects the stream.

use sim::{Dur, EventQueue, Time, World};
use store::{AttentionStore, QueueView, SessionId, StoreEvent, StorePlanner, TransferDir};
use workload::Trace;

use crate::events::{ConsultClass, EngineEvent, EngineObserver, NullObserver};
use crate::exec::{self, Action, Executor, Job, PrefillIssue};
use crate::hbm::HbmLedger;
use crate::scheduler::{self, Fcfs, SchedulerPolicy};
use crate::transfer::TransferPlan;
use crate::truncate;
use crate::{EngineConfig, Mode, RunReport};

/// Simulation events (public because [`ServingSim`] implements
/// [`World<Event = Ev>`]; not constructed by users directly).
#[derive(Debug, Clone, Copy)]
pub enum Ev {
    /// A session's next turn arrived (the user hit enter).
    TurnArrival(usize),
    /// The GPU finished its current action (or should wake up).
    GpuTick,
    /// Periodic TTL sweep.
    Sweep,
}

/// Per-session progress.
#[derive(Debug)]
struct SessionState {
    /// Index into `trace.sessions`.
    spec: usize,
    /// Next turn index to arrive.
    next_turn: usize,
    /// Historical context tokens visible to the model (post-truncation).
    hist_tokens: u64,
}

/// The serving world: event dispatch over the staged pipeline.
pub struct ServingSim<O: EngineObserver = NullObserver> {
    cfg: EngineConfig,
    trace: Trace,
    sessions: Vec<SessionState>,
    jobs: Vec<Job>,
    sched: Box<dyn SchedulerPolicy>,
    exec: Executor,
    store: Option<Box<dyn StorePlanner>>,
    plan: TransferPlan,
    hbm: HbmLedger,
    turn_arrivals: usize,
    sessions_remaining: usize,
    last_completion: Time,
    report: RunReport,
    obs: O,
}

impl ServingSim<NullObserver> {
    /// Builds a simulator for `cfg` over `trace`.
    pub fn new(cfg: EngineConfig, trace: Trace) -> Self {
        ServingSim::with_observer(cfg, trace, NullObserver)
    }

    /// Runs the full workload to completion and returns the report.
    pub fn run(cfg: EngineConfig, trace: Trace) -> RunReport {
        let mut world = ServingSim::new(cfg, trace);
        world.drive();
        world.finish().0
    }
}

impl<O: EngineObserver> ServingSim<O> {
    /// Builds a simulator that reports every pipeline step to `obs`.
    pub fn with_observer(cfg: EngineConfig, trace: Trace, obs: O) -> Self {
        let mut store: Option<Box<dyn StorePlanner>> = match cfg.mode {
            Mode::Recompute => None,
            _ => Some(Box::new(AttentionStore::new(cfg.store.clone()))),
        };
        if let Some(s) = &mut store {
            // Store tracing is buffered-and-drained, never behavioral:
            // only turn it on for observers that will consume the stream.
            s.set_tracing(obs.wants_store_events());
        }
        let sessions = (0..trace.sessions.len())
            .map(|i| SessionState {
                spec: i,
                next_turn: 0,
                hist_tokens: 0,
            })
            .collect();
        let sessions_remaining = trace.sessions.len();
        let report = RunReport::new(cfg.model.name, cfg.mode);
        let plan = TransferPlan::new(&cfg);
        let hbm = HbmLedger::new(&cfg.cluster, &cfg.model);
        ServingSim {
            cfg,
            trace,
            sessions,
            jobs: Vec::new(),
            sched: Box::new(Fcfs::new()),
            exec: Executor::new(),
            store,
            plan,
            hbm,
            turn_arrivals: 0,
            sessions_remaining,
            last_completion: Time::ZERO,
            report,
            obs,
        }
    }

    /// Feeds the trace's session arrivals and runs the event loop dry.
    pub(crate) fn drive(&mut self) {
        let mut q = EventQueue::new();
        for (i, s) in self.trace.sessions.iter().enumerate() {
            q.push(s.arrival, Ev::TurnArrival(i));
        }
        if self.cfg.store.ttl.is_some() && self.cfg.mode != Mode::Recompute {
            q.push(Time::from_secs_f64(30.0), Ev::Sweep);
        }
        sim::run(self, &mut q, None);
    }

    /// Finalizes the report; hands back the observer too.
    pub(crate) fn finish(mut self) -> (RunReport, O) {
        self.report.makespan_secs = self.last_completion.as_secs_f64();
        self.report.h2d_bytes = self.plan.h2d_bytes();
        self.report.d2h_bytes = self.plan.d2h_bytes();
        self.report.slow_read_bytes = self.plan.slow_read_bytes();
        self.report.slow_write_bytes = self.plan.slow_write_bytes();
        self.report.hbm_high_water_bytes = self.hbm.high_water();
        if let Some(store) = &self.store {
            self.report.store_stats = *store.stats();
        }
        (self.report, self.obs)
    }

    /// External id of a session-table row.
    fn sid(&self, session: usize) -> SessionId {
        SessionId(self.trace.sessions[self.sessions[session].spec].id)
    }

    /// Session ids of the waiting jobs, queue order.
    fn queue_sessions(&self) -> Vec<SessionId> {
        self.sched
            .snapshot()
            .into_iter()
            .map(|j| self.sid(self.jobs[j].session))
            .collect()
    }

    /// Forwards buffered store events to an opted-in observer, keeping
    /// both streams in one commit order.
    fn pump_store_events(&mut self) {
        if !self.obs.wants_store_events() {
            return;
        }
        if let Some(store) = &mut self.store {
            for ev in store.drain_events() {
                self.obs.on_store_event(ev);
            }
        }
    }

    /// Runs the scheduler-aware prefetcher over the current queue.
    fn run_prefetch(&mut self, now: Time) {
        let order = self.queue_sessions();
        let Some(store) = &mut self.store else {
            return;
        };
        let transfers = store.prefetch(now, &QueueView::new(&order));
        self.plan.charge(now, &transfers);
        self.pump_store_events();
        if self.obs.wants_store_events() {
            // The store planned the promotions; only the transfer stage
            // knows when the slow-read link completes them.
            for t in &transfers {
                if t.dir == TransferDir::DiskToDram {
                    let at = self.plan.fast_ready(t.session.0).unwrap_or(now);
                    self.obs.on_store_event(StoreEvent::PrefetchCompleted {
                        session: t.session.0,
                        at,
                    });
                }
            }
        }
    }

    /// Applies context-window truncation at turn arrival. Returns the new
    /// history length.
    fn apply_truncation(&mut self, now: Time, session: usize, user: u64, measured: bool) -> u64 {
        let window = self.cfg.model.context_window as u64;
        let hist = self.sessions[session].hist_tokens;
        let out = truncate::truncate_history(window, self.cfg.truncation_ratio, hist, user);
        if !out.truncated {
            return hist;
        }
        if measured {
            self.report.truncations.incr();
        }
        let sid = self.sid(session);
        let bytes = self.cfg.stored_kv_bytes(out.new_hist);
        let store = self.store.as_mut().map(|s| s.as_mut() as &mut dyn StorePlanner);
        truncate::apply_store_effect(self.cfg.mode, store, sid, bytes, out.new_hist);
        self.sessions[session].hist_tokens = out.new_hist;
        self.obs
            .on_event(EngineEvent::truncated(sid.0, hist, out.new_hist, now));
        out.new_hist
    }

    /// Handles a turn arrival: creates the job, queues it, prefetches.
    fn on_turn_arrival(&mut self, now: Time, session: usize, q: &mut EventQueue<Ev>) {
        let arrival_index = self.turn_arrivals;
        self.turn_arrivals += 1;
        let measured = arrival_index >= self.cfg.warmup_turns;
        let spec = &self.trace.sessions[self.sessions[session].spec];
        let turn_idx = self.sessions[session].next_turn;
        let turn = &spec.turns[turn_idx];
        let user = (turn.user_tokens as u64).min(self.cfg.model.context_window as u64);
        let resp = turn.resp_tokens as u64;
        self.obs
            .on_event(EngineEvent::turn_arrived(self.sid(session).0, turn_idx, now));
        let hist = self.apply_truncation(now, session, user, measured);
        self.jobs
            .push(Job::for_turn(session, now, user, resp, hist, measured));
        self.sched.enqueue(self.jobs.len() - 1);
        self.run_prefetch(now);
        if self.exec.gpu_action.is_none() {
            self.exec.gpu_action = Some(Action::Sleep);
            q.push(now, Ev::GpuTick);
        }
    }

    /// Consults the store for the head job and classifies the access.
    /// Returns (reused tokens, when the KV is staged in the fast tier).
    fn consult_store(&mut self, now: Time, job_idx: usize) -> (u64, Time) {
        let job = &self.jobs[job_idx];
        let (session, hist, measured) = (job.session, job.hist_tokens, job.measured);
        let sid = self.sid(session);
        if hist == 0 {
            self.obs
                .on_event(EngineEvent::consulted(sid.0, ConsultClass::NoHistory, 0, now));
            return (0, now);
        }
        if measured {
            self.report.resumption_turns.incr();
        }
        if self.store.is_none() {
            // RE: always recompute.
            self.report.record_consult(ConsultClass::NoStore, measured);
            self.obs
                .on_event(EngineEvent::consulted(sid.0, ConsultClass::NoStore, 0, now));
            return (0, now);
        }
        let order = self.queue_sessions();
        let view = QueueView::new(&order);
        let cfg = &self.cfg;
        let store = self.store.as_mut().expect("checked above");
        let consult = self.plan.consult(now, store.as_mut(), sid, hist, &view, |tokens| {
            cfg.stored_kv_bytes(tokens)
        });
        self.pump_store_events();
        self.report.record_consult(consult.class, measured);
        self.obs
            .on_event(EngineEvent::consulted(sid.0, consult.class, consult.reused, now));
        (consult.reused, consult.staged)
    }

    /// Starts the prefill of the queue's head job. On `Err` the job
    /// cannot start at `now` (data or buffer not ready) and the value is
    /// the earliest time it could.
    fn try_admit(&mut self, now: Time, q: &mut EventQueue<Ev>) -> Result<(), Time> {
        let job_idx = self.sched.front().expect("caller checked");
        let gate = self.plan.write_gate(now);
        if gate > now {
            if self.obs.wants_store_events() {
                let sid = self.sid(self.jobs[job_idx].session);
                self.obs.on_store_event(StoreEvent::WriteBufferStall {
                    session: sid.0,
                    until: gate,
                    at: now,
                });
            }
            return Err(self.defer(now, job_idx, gate));
        }
        // Consult the store the first time this job reaches the head; the
        // outcome (hit classification, pinning, demand fetch) sticks.
        let (reused, staged) = match self.jobs[job_idx].consulted {
            Some(r) => r,
            None => {
                let r = self.consult_store(now, job_idx);
                self.jobs[job_idx].consulted = Some(r);
                r
            }
        };
        // KV still staging into the fast tier: decode meanwhile.
        if let Some(until) = scheduler::data_ready_defer(now, staged, self.exec.batch.is_empty()) {
            return Err(self.defer(now, job_idx, until));
        }
        // HBM residency (§2.4, Challenge 2): the new job's full context
        // plus its response must fit beside the decoding batch's live KV.
        let job = &self.jobs[job_idx];
        let job_peak = self
            .cfg
            .model
            .kv_bytes(job.hist_tokens + job.user_tokens + job.resp_tokens);
        let reserved = self.hbm.reserved_kv(&self.cfg.model, &self.exec.batch, &self.jobs);
        if !scheduler::hbm_fits(reserved, job_peak, self.hbm.budget(), self.exec.batch.is_empty()) {
            // Decode until a job retires and frees HBM.
            return Err(self.defer(now, job_idx, now));
        }
        self.sched.pop_front();
        let job = &self.jobs[job_idx];
        let computed = job.hist_tokens - reused + job.user_tokens;
        let (total, comp, stall) =
            exec::prefill_timing(&self.cfg, &mut self.plan, now, reused, computed, staged);
        let wait = staged.saturating_since(now);
        let total = total.max(wait + comp);
        self.hbm.note_reserved(reserved + job_peak);
        let sid = self.sid(self.jobs[job_idx].session);
        let job = &mut self.jobs[job_idx];
        job.reused_tokens = reused;
        job.computed_tokens = computed;
        job.admitted_at = now;
        job.prefill_secs = comp.as_secs_f64();
        self.report.record_admission(
            now.as_secs_f64(),
            comp.as_secs_f64(),
            total.as_secs_f64(),
            (stall.max(wait)).as_secs_f64(),
            job.measured,
            job.hist_tokens + job.user_tokens,
            computed,
        );
        let chunked = match exec::plan_prefill(self.cfg.chunked_prefill_tokens, computed, total) {
            PrefillIssue::Chunked { n_chunks, chunk_dur } => {
                self.issue_chunk(now, q, job_idx, (n_chunks - 1) as u32, chunk_dur);
                true
            }
            PrefillIssue::Monolithic => {
                self.exec.gpu_action = Some(Action::Prefill { job: job_idx });
                q.push(now + total, Ev::GpuTick);
                false
            }
        };
        self.obs
            .on_event(EngineEvent::admitted(sid.0, reused, computed, chunked, now));
        self.obs.on_event(EngineEvent::hbm_reserved(
            sid.0,
            reserved + job_peak,
            self.hbm.budget(),
            now,
        ));
        // The queue head moved: give the prefetcher a chance to stage the
        // next jobs' KV while this prefill runs.
        self.run_prefetch(now);
        Ok(())
    }

    /// Reports a deferred admission to the observer; returns `until`.
    fn defer(&mut self, now: Time, job_idx: usize, until: Time) -> Time {
        let sid = self.sid(self.jobs[job_idx].session);
        self.obs.on_event(EngineEvent::deferred(sid.0, until, now));
        until
    }

    /// Starts the next slice of a paused chunked prefill.
    fn issue_chunk(
        &mut self,
        now: Time,
        q: &mut EventQueue<Ev>,
        job: usize,
        chunks_left: u32,
        chunk_dur: Dur,
    ) {
        self.exec.gpu_action = Some(Action::PrefillChunk {
            job,
            chunks_left,
            chunk_dur,
        });
        q.push(now + chunk_dur, Ev::GpuTick);
    }

    /// Completes a prefill: records TTFT (admission → first token; queue
    /// wait is reported separately), flushes the prefill-phase KV through
    /// the write stream (§3.2.2), moves the job into the decode batch.
    fn complete_prefill(&mut self, now: Time, job_idx: usize) {
        let job = &mut self.jobs[job_idx];
        job.ctx_tokens = job.hist_tokens + job.user_tokens;
        job.decode_start = now;
        let (session, measured, computed) = (job.session, job.measured, job.computed_tokens);
        let ttft = (now - job.admitted_at).as_secs_f64();
        let queue_wait = (job.admitted_at - job.arrival).as_secs_f64();
        self.report.record_first_token(measured, ttft, queue_wait);
        if self.cfg.mode != Mode::Recompute {
            let bytes = self.cfg.stored_kv_bytes(computed);
            self.plan.d2h_transfer(now, bytes);
        }
        self.exec.batch.push(job_idx);
        self.obs
            .on_event(EngineEvent::prefill_done(self.sid(session).0, ttft, now));
    }

    /// Retires a finished job: saves KV, updates the session, schedules
    /// the next turn.
    fn retire_job(&mut self, now: Time, job_idx: usize, q: &mut EventQueue<Ev>) {
        self.last_completion = now;
        let job = &self.jobs[job_idx];
        let (session, measured, resp) = (job.session, job.measured, job.resp_tokens);
        let new_hist = job.hist_tokens + job.user_tokens + job.resp_tokens;
        if measured {
            self.report
                .decode_latency
                .push((now - job.decode_start).as_secs_f64());
        }
        // Save the whole session's KV back to the store; only the decode
        // phase's fresh tokens still need the device→host hop (the prefill
        // share was flushed at prefill completion).
        if self.cfg.mode != Mode::Recompute {
            let sid = self.sid(session);
            let total_bytes = self.cfg.stored_kv_bytes(new_hist);
            let order = self.queue_sessions();
            let view = QueueView::new(&order);
            let store = self.store.as_mut().expect("store exists outside RE");
            let (transfers, _saved) = store.save(sid, total_bytes, new_hist, now, &view);
            self.plan.charge(now, &transfers);
            self.pump_store_events();
            let done = self.plan.d2h_transfer(now, self.cfg.stored_kv_bytes(resp));
            if !self.cfg.async_save {
                // Synchronous saving blocks the GPU until the write-back
                // completes (Fig 8a).
                self.report.stall_secs += done.saturating_since(now).as_secs_f64();
            }
        }
        // Advance the session.
        let st = &mut self.sessions[session];
        st.hist_tokens = new_hist;
        st.next_turn += 1;
        let spec = &self.trace.sessions[st.spec];
        if st.next_turn < spec.turns.len() {
            let think = spec.turns[st.next_turn - 1].think;
            q.push(now + think, Ev::TurnArrival(session));
        } else {
            self.sessions_remaining -= 1;
            self.report.sessions_done.incr();
        }
        self.obs
            .on_event(EngineEvent::retired(self.sid(session).0, new_hist, now));
        // Space freed by the save/demotions may unblock prefetches.
        self.run_prefetch(now);
    }

    /// Picks the GPU's next action after the previous one completed.
    fn schedule_next(&mut self, now: Time, q: &mut EventQueue<Ev>) {
        // A paused chunked prefill resumes before anything else.
        if let Some((job, chunks_left, chunk_dur)) = self.exec.pending_chunk.take() {
            self.issue_chunk(now, q, job, chunks_left.saturating_sub(1), chunk_dur);
            return;
        }
        // Admission first: prefill of waiting jobs blocks decoding, which
        // is the continuous-batching behaviour the paper describes.
        if !self.sched.is_empty() && self.exec.batch.len() < self.cfg.max_batch {
            match self.try_admit(now, q) {
                Ok(()) => return,
                Err(ready_at) => {
                    if self.exec.batch.is_empty() {
                        // Nothing else to run: stall until ready.
                        self.exec.gpu_action = Some(Action::Sleep);
                        self.report.stall_secs += (ready_at - now).as_secs_f64();
                        q.push(ready_at, Ev::GpuTick);
                        return;
                    }
                    // Fall through to decode while the buffer drains.
                }
            }
        }
        if !self.exec.batch.is_empty() {
            let dur = self.exec.decode_iter_dur(&self.cfg, &self.jobs);
            self.report
                .record_decode_iter(dur.as_secs_f64(), Some(now.as_secs_f64()));
            self.exec.gpu_action = Some(Action::Decode);
            q.push(now + dur, Ev::GpuTick);
            return;
        }
        // Idle: a future TurnArrival will wake the GPU.
        self.exec.gpu_action = None;
    }
}

impl<O: EngineObserver> World for ServingSim<O> {
    type Event = Ev;

    fn handle(&mut self, now: Time, ev: Ev, q: &mut EventQueue<Ev>) {
        match ev {
            Ev::TurnArrival(session) => self.on_turn_arrival(now, session, q),
            Ev::Sweep => {
                if let Some(store) = &mut self.store {
                    store.expire(now);
                }
                self.pump_store_events();
                if self.sessions_remaining > 0 {
                    q.push(now + Dur::from_secs_f64(30.0), Ev::Sweep);
                }
            }
            Ev::GpuTick => {
                match self.exec.gpu_action.take() {
                    Some(Action::Prefill { job }) => self.complete_prefill(now, job),
                    Some(Action::PrefillChunk {
                        job,
                        chunks_left,
                        chunk_dur,
                    }) => {
                        if chunks_left == 0 {
                            self.complete_prefill(now, job);
                        } else if self.exec.batch.is_empty() {
                            // Nothing to piggyback: run the next slice.
                            self.issue_chunk(now, q, job, chunks_left - 1, chunk_dur);
                            return;
                        } else {
                            // Let one decode iteration through, then
                            // resume (schedule_next picks it back up). Its
                            // timeline span is covered by the admission.
                            self.exec.pending_chunk = Some((job, chunks_left, chunk_dur));
                            let dur = self.exec.decode_iter_dur(&self.cfg, &self.jobs);
                            self.report.record_decode_iter(dur.as_secs_f64(), None);
                            self.exec.gpu_action = Some(Action::Decode);
                            q.push(now + dur, Ev::GpuTick);
                            return;
                        }
                    }
                    Some(Action::Decode) => {
                        let finished = self.exec.advance_decode(&mut self.jobs);
                        for j in finished {
                            self.retire_job(now, j, q);
                        }
                    }
                    Some(Action::Sleep) | None => {}
                }
                self.schedule_next(now, q);
            }
        }
    }
}
