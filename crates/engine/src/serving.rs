//! The discrete-event serving simulator.
//!
//! One [`ServingSim`] executes a whole multi-turn workload against a model
//! and cluster under one serving mode:
//!
//! - **Closed-loop turns**: a session's turn `j+1` arrives a think time
//!   after turn `j`'s response completes, so a backlogged engine stretches
//!   the timeline just as production traffic would.
//! - **Continuous batching** (Orca-style, §4.1): up to `max_batch` jobs
//!   decode together one token per iteration; a newly admitted job's
//!   prefill runs on the GPU first and blocks the decoding jobs, which is
//!   exactly why shrinking prefill time also shortens decode time (§4.2).
//! - **CachedAttention path**: on admission the engine consults
//!   AttentionStore; hits pre-load layer-wise over PCIe overlapped with
//!   the partial prefill (§3.2.1), misses recompute. On completion the new
//!   KV is saved asynchronously (§3.2.2) and the store bookkeeping is
//!   updated, with demotions/drops decided by the eviction policy.
//! - **Recomputation path (RE)**: no store; every turn re-prefills all
//!   historical tokens.
//!
//! Capacity effects (HBM residency of the running batch) are modelled by
//! the batch-slot limit, matching the paper's fixed batch counts.

use std::collections::{HashMap, VecDeque};

use models::ModelSpec;
use sim::{BandwidthLink, Dur, EventQueue, Time, World};
use store::{AttentionStore, Lookup, QueueView, SessionId, Transfer, TransferDir};
use workload::Trace;

use crate::overlap::{no_preload, with_preload, PreloadParams};
use crate::{EngineConfig, Medium, Mode, RunReport};

/// Simulation events (public because [`ServingSim`] implements
/// [`World<Event = Ev>`]; not constructed by users directly).
#[derive(Debug, Clone, Copy)]
pub enum Ev {
    /// A session's next turn arrived (the user hit enter).
    TurnArrival(usize),
    /// The GPU finished its current action (or should wake up).
    GpuTick,
    /// Periodic TTL sweep.
    Sweep,
}

/// What the GPU is doing until the pending [`Ev::GpuTick`].
#[derive(Debug, Clone, Copy)]
enum Action {
    /// Prefilling `job` monolithically; at the tick it joins the batch.
    Prefill { job: usize },
    /// Running one chunk of `job`'s prefill; `chunks_left` more follow.
    PrefillChunk {
        job: usize,
        chunks_left: u32,
        chunk_dur: Dur,
    },
    /// One decode iteration of the whole batch.
    Decode,
    /// Stalled waiting for data or buffer drain.
    Sleep,
}

/// Per-session progress.
#[derive(Debug)]
struct SessionState {
    /// Index into `trace.sessions`.
    spec: usize,
    /// Next turn index to arrive.
    next_turn: usize,
    /// Historical context tokens visible to the model (post-truncation).
    hist_tokens: u64,
}

/// One turn's job.
#[derive(Debug)]
struct Job {
    session: usize,
    arrival: Time,
    user_tokens: u64,
    resp_tokens: u64,
    hist_tokens: u64,
    reused_tokens: u64,
    computed_tokens: u64,
    ctx_tokens: u64,
    remaining_decode: u64,
    measured: bool,
    prefill_secs: f64,
    admitted_at: Time,
    decode_start: Time,
    /// Store-consultation outcome, filled the first time the job reaches
    /// the queue head: (reused tokens, staging completion time).
    consulted: Option<(u64, Time)>,
}

/// The serving world.
pub struct ServingSim {
    cfg: EngineConfig,
    trace: Trace,
    sessions: Vec<SessionState>,
    jobs: Vec<Job>,
    queue: VecDeque<usize>,
    batch: Vec<usize>,
    store: Option<AttentionStore>,
    /// Host→device KV load stream.
    h2d: BandwidthLink,
    /// Device→host KV save stream.
    d2h: BandwidthLink,
    /// Slow-tier read channel (SSD reads, or PCIe for the HBM+DRAM medium).
    slow_rd: BandwidthLink,
    /// Slow-tier write channel.
    slow_wr: BandwidthLink,
    /// When each session's KV finishes staging into the fast tier.
    fast_ready_at: HashMap<u64, Time>,
    gpu_action: Option<Action>,
    /// A chunked prefill paused for one piggybacked decode iteration.
    pending_chunk: Option<(usize, u32, Dur)>,
    turn_arrivals: usize,
    sessions_remaining: usize,
    last_completion: Time,
    report: RunReport,
}

impl ServingSim {
    /// Builds a simulator for `cfg` over `trace`.
    pub fn new(cfg: EngineConfig, trace: Trace) -> Self {
        let store = match cfg.mode {
            Mode::Recompute => None,
            _ => Some(AttentionStore::new(cfg.store.clone())),
        };
        let sessions = (0..trace.sessions.len())
            .map(|i| SessionState {
                spec: i,
                next_turn: 0,
                hist_tokens: 0,
            })
            .collect();
        let pcie = cfg.cluster.pcie_bw;
        let (slow_rd_bw, slow_wr_bw) = match cfg.medium {
            Medium::DramDisk => (cfg.cluster.disk_read_bw, cfg.cluster.disk_write_bw),
            // Fast tier is HBM; the slow tier is host DRAM behind PCIe.
            Medium::HbmDram | Medium::HbmOnly => (pcie, pcie),
        };
        let sessions_remaining = trace.sessions.len();
        let report = RunReport::new(cfg.model.name, cfg.mode);
        ServingSim {
            cfg,
            trace,
            sessions,
            jobs: Vec::new(),
            queue: VecDeque::new(),
            batch: Vec::new(),
            store,
            h2d: BandwidthLink::new("h2d", pcie),
            d2h: BandwidthLink::new("d2h", pcie),
            slow_rd: BandwidthLink::new("slow-rd", slow_rd_bw),
            slow_wr: BandwidthLink::new("slow-wr", slow_wr_bw),
            fast_ready_at: HashMap::new(),
            gpu_action: None,
            pending_chunk: None,
            turn_arrivals: 0,
            sessions_remaining,
            last_completion: Time::ZERO,
            report,
        }
    }

    /// Runs the full workload to completion and returns the report.
    pub fn run(cfg: EngineConfig, trace: Trace) -> RunReport {
        let ttl_sweep = cfg.store.ttl.is_some() && cfg.mode != Mode::Recompute;
        let mut world = ServingSim::new(cfg, trace);
        let mut q = EventQueue::new();
        for (i, s) in world.trace.sessions.iter().enumerate() {
            q.push(s.arrival, Ev::TurnArrival(i));
        }
        if ttl_sweep {
            q.push(Time::from_secs_f64(30.0), Ev::Sweep);
        }
        sim::run(&mut world, &mut q, None);
        world.finish()
    }

    /// Finalizes the report.
    fn finish(mut self) -> RunReport {
        self.report.makespan_secs = self.last_completion.as_secs_f64();
        self.report.h2d_bytes = self.h2d.total_bytes();
        self.report.d2h_bytes = self.d2h.total_bytes();
        self.report.slow_read_bytes = self.slow_rd.total_bytes();
        self.report.slow_write_bytes = self.slow_wr.total_bytes();
        if let Some(store) = &self.store {
            self.report.store_stats = *store.stats();
        }
        self.report
    }

    /// HBM bytes available for live KV: aggregate HBM minus the sharded
    /// model weights minus a 10% activation/workspace reserve (§2.4's
    /// free-HBM arithmetic: 320 GB − 130 GB of LLaMA-65B weights ≈ 190 GB).
    fn hbm_kv_budget(&self) -> u64 {
        let total = self.cfg.cluster.total_hbm_bytes();
        let weights = self.cfg.model.weight_bytes();
        let reserve = total / 10;
        total.saturating_sub(weights).saturating_sub(reserve)
    }

    /// Uncompressed KV bytes the decoding batch will hold resident in
    /// HBM at its peak: each job reserves its full final context
    /// (history + prompt + response) on admission, since decode grows
    /// the cache in place.
    fn hbm_reserved_kv(&self) -> u64 {
        self.batch
            .iter()
            .map(|&j| {
                let job = &self.jobs[j];
                self.cfg
                    .model
                    .kv_bytes(job.hist_tokens + job.user_tokens + job.resp_tokens)
            })
            .sum()
    }

    /// Bytes of stored/transferred KV for `tokens` tokens after the
    /// configured compression (§5's orthogonal quantization hook).
    fn stored_kv_bytes(&self, tokens: u64) -> u64 {
        (self.cfg.model.kv_bytes(tokens) as f64 * self.cfg.kv_compression) as u64
    }

    /// The model's context window as u64.
    fn window(&self) -> u64 {
        self.cfg.model.context_window as u64
    }

    /// Session ids of the waiting jobs, queue order.
    fn queue_sessions(&self) -> Vec<SessionId> {
        self.queue
            .iter()
            .map(|&j| SessionId(self.trace.sessions[self.jobs[j].session].id))
            .collect()
    }

    /// Charges store transfers on the slow-tier links; promotions update
    /// the fast-tier staging times.
    fn charge_transfers(&mut self, now: Time, transfers: &[Transfer]) {
        for t in transfers {
            match t.dir {
                TransferDir::DiskToDram => {
                    let done = self.slow_rd.transfer(now, t.bytes);
                    let e = self.fast_ready_at.entry(t.session.0).or_insert(done);
                    *e = (*e).max(done);
                }
                TransferDir::DramToDisk => {
                    self.slow_wr.transfer(now, t.bytes);
                }
            }
        }
    }

    /// Runs the scheduler-aware prefetcher over the current queue.
    fn run_prefetch(&mut self, now: Time) {
        let order = self.queue_sessions();
        if let Some(store) = &mut self.store {
            let view = QueueView::new(&order);
            let transfers = store.prefetch(now, &view);
            self.charge_transfers(now, &transfers);
        }
    }

    /// Applies context-window truncation at turn arrival. Returns the new
    /// history length.
    fn apply_truncation(&mut self, session: usize, user: u64, measured: bool) -> u64 {
        let w = self.window();
        let user = user.min(w);
        let hist = self.sessions[session].hist_tokens;
        if hist + user <= w {
            return hist;
        }
        let drop = ((w as f64) * self.cfg.truncation_ratio).max(1.0) as u64;
        let mut h = hist;
        while h + user > w {
            let cut = drop.min(h);
            h -= cut;
            if cut == 0 {
                break;
            }
        }
        if measured {
            self.report.truncations.incr();
        }
        let sid = SessionId(self.trace.sessions[self.sessions[session].spec].id);
        match self.cfg.mode {
            // Decoupled positional encoding: truncate the stored KV
            // directly; it stays valid (§3.4).
            Mode::CachedAttention => {
                let bytes = self.stored_kv_bytes(h);
                if let Some(store) = &mut self.store {
                    store.truncate(sid, bytes, h);
                }
            }
            // Coupled positional encoding: truncation scrambles positions,
            // the stored KV is useless (§4.3.4).
            Mode::CoupledOverflow => {
                if let Some(store) = &mut self.store {
                    store.invalidate(sid);
                }
            }
            // RE recomputes from the truncated token prompt anyway.
            Mode::Recompute => {}
        }
        self.sessions[session].hist_tokens = h;
        h
    }

    /// Handles a turn arrival: creates the job, queues it, prefetches.
    fn on_turn_arrival(&mut self, now: Time, session: usize, q: &mut EventQueue<Ev>) {
        let arrival_index = self.turn_arrivals;
        self.turn_arrivals += 1;
        let measured = arrival_index >= self.cfg.warmup_turns;
        let spec = &self.trace.sessions[self.sessions[session].spec];
        let turn = &spec.turns[self.sessions[session].next_turn];
        let user = (turn.user_tokens as u64).min(self.window());
        let resp = turn.resp_tokens as u64;
        let hist = self.apply_truncation(session, user, measured);
        let job = Job {
            session,
            arrival: now,
            user_tokens: user,
            resp_tokens: resp,
            hist_tokens: hist,
            reused_tokens: 0,
            computed_tokens: 0,
            ctx_tokens: 0,
            remaining_decode: resp,
            measured,
            prefill_secs: 0.0,
            admitted_at: Time::ZERO,
            decode_start: Time::ZERO,
            consulted: None,
        };
        self.jobs.push(job);
        self.queue.push_back(self.jobs.len() - 1);
        self.run_prefetch(now);
        if self.gpu_action.is_none() {
            self.gpu_action = Some(Action::Sleep);
            q.push(now, Ev::GpuTick);
        }
    }

    /// Time before which the next prefill may not start because the HBM
    /// write buffer is still draining (§3.2.2).
    fn write_gate(&self, now: Time) -> Time {
        if !self.cfg.async_save {
            return now;
        }
        let buffer_drain = self.d2h.duration_of(self.cfg.write_buffer_bytes);
        let backlog = self.d2h.backlog_at(now);
        if backlog > buffer_drain {
            now + (backlog - buffer_drain)
        } else {
            now
        }
    }

    /// Consults the store for the head job and classifies the access.
    /// Returns (reused tokens, when the KV is staged in the fast tier).
    fn consult_store(&mut self, now: Time, job_idx: usize) -> (u64, Time) {
        let job = &self.jobs[job_idx];
        let session = job.session;
        let hist = job.hist_tokens;
        let measured = job.measured;
        let sid = SessionId(self.trace.sessions[self.sessions[session].spec].id);
        if hist == 0 {
            return (0, now);
        }
        if measured {
            self.report.resumption_turns.incr();
        }
        if self.store.is_none() {
            // RE: always recompute.
            if measured {
                self.report.misses.incr();
            }
            return (0, now);
        }
        let order = self.queue_sessions();
        let view = QueueView::new(&order);
        let store = self.store.as_mut().expect("checked above");
        let (found, transfers) = store.load_for_use(sid, now, &view);
        let entry_tokens = store.entry(sid).map(|e| e.tokens).unwrap_or(0);
        let had_promotion = transfers
            .iter()
            .any(|t| t.session == sid && t.dir == TransferDir::DiskToDram);
        self.charge_transfers(now, &transfers);
        match found {
            Lookup::Miss => {
                if measured {
                    self.report.misses.incr();
                }
                (0, now)
            }
            Lookup::Dram => {
                if measured {
                    self.report.hits_fast.incr();
                }
                let staged = self
                    .fast_ready_at
                    .get(&sid.0)
                    .copied()
                    .unwrap_or(now)
                    .max(now);
                (entry_tokens.min(hist), staged)
            }
            Lookup::Disk => {
                if measured {
                    self.report.hits_slow.incr();
                }
                let staged = if had_promotion {
                    self.fast_ready_at.get(&sid.0).copied().unwrap_or(now)
                } else {
                    // DRAM could not stage it: stream straight from the
                    // slow tier (rare pathological sizing).
                    let bytes = self.stored_kv_bytes(entry_tokens.min(hist));
                    self.slow_rd.transfer(now, bytes)
                };
                (entry_tokens.min(hist), staged.max(now))
            }
        }
    }

    /// Computes the prefill timing of a job given its reuse split.
    /// Returns (total duration, pure compute, stall).
    fn prefill_timing(
        &mut self,
        now: Time,
        reused: u64,
        computed: u64,
        staged: Time,
    ) -> (Dur, Dur, Dur) {
        let m = &self.cfg.model;
        let comp = self
            .cfg
            .cost
            .prefill_time(m, &self.cfg.cluster, computed, reused);
        let load_bytes = (m.kv_bytes(reused) as f64 * self.cfg.kv_compression) as u64;
        if reused == 0 {
            return (comp, comp, Dur::ZERO);
        }
        // For HBM-backed fast tiers the KV is already device-resident.
        if matches!(self.cfg.medium, Medium::HbmDram | Medium::HbmOnly) {
            let wait = staged.saturating_since(now);
            return (wait + comp, comp, wait);
        }
        let layers = m.n_layers;
        let t_load_layer = self.h2d.duration_of(load_bytes / layers as u64);
        let t_comp_layer = comp / layers as u64;
        // The read stream may have warmed the buffer while it was idle
        // before this job, but never before the KV was staged in DRAM.
        let stream_free = self.h2d.busy_until().max(staged);
        let max_warm = t_load_layer * self.cfg.read_buffer_layers as u64;
        let (warm, delay) = if stream_free <= now {
            (now.saturating_since(stream_free).min(max_warm), Dur::ZERO)
        } else {
            (Dur::ZERO, stream_free - now)
        };
        let params = PreloadParams {
            n_layers: layers,
            t_load_layer,
            t_comp_layer,
            buffer_layers: self.cfg.read_buffer_layers,
            warm,
            delay,
        };
        let timing = if self.cfg.preload {
            with_preload(&params)
        } else {
            no_preload(&params)
        };
        // Occupy the load stream through the end of this job's transfers.
        self.h2d.occupy(now + timing.load_done, load_bytes);
        (timing.done, comp, timing.stall)
    }

    /// Starts the prefill of the queue's head job. Returns `false` when it
    /// cannot start at `now` (data or buffer not ready) and the earliest
    /// time it could.
    fn try_admit(&mut self, now: Time, q: &mut EventQueue<Ev>) -> Result<(), Time> {
        let job_idx = *self.queue.front().expect("caller checked");
        let gate = self.write_gate(now);
        if gate > now {
            return Err(gate);
        }
        // Consult the store the first time this job reaches the head; the
        // outcome (hit classification, pinning, demand fetch) sticks.
        let (reused, staged) = match self.jobs[job_idx].consulted {
            Some(r) => r,
            None => {
                let r = self.consult_store(now, job_idx);
                self.jobs[job_idx].consulted = Some(r);
                r
            }
        };
        if staged > now && !self.batch.is_empty() {
            // KV still staging into the fast tier: decode meanwhile.
            return Err(staged);
        }
        // HBM residency (§2.4, Challenge 2): the new job's full context
        // plus its response must fit beside the decoding batch's live KV.
        let job_peak = self.cfg.model.kv_bytes(
            self.jobs[job_idx].hist_tokens
                + self.jobs[job_idx].user_tokens
                + self.jobs[job_idx].resp_tokens,
        );
        if self.hbm_reserved_kv() + job_peak > self.hbm_kv_budget() && !self.batch.is_empty() {
            // Decode until a job retires and frees HBM.
            return Err(now);
        }
        self.queue.pop_front();
        let job = &self.jobs[job_idx];
        let computed = job.hist_tokens - reused + job.user_tokens;
        let (total, comp, stall) = self.prefill_timing(now, reused, computed, staged);
        let wait = staged.saturating_since(now);
        let total = total.max(wait + comp);
        let reserved = self.hbm_reserved_kv() + job_peak;
        if reserved > self.report.hbm_high_water_bytes {
            self.report.hbm_high_water_bytes = reserved;
        }
        let job = &mut self.jobs[job_idx];
        job.reused_tokens = reused;
        job.computed_tokens = computed;
        job.admitted_at = now;
        job.prefill_secs = comp.as_secs_f64();
        self.report.prefill_busy_secs += comp.as_secs_f64();
        self.report.gpu_busy_timeline.add_span(
            now.as_secs_f64(),
            total.as_secs_f64(),
            total.as_secs_f64(),
        );
        self.report.stall_secs += (stall.max(wait)).as_secs_f64();
        if job.measured {
            self.report.turns_measured.incr();
            self.report
                .prompt_tokens
                .add(job.hist_tokens + job.user_tokens);
            self.report.computed_tokens.add(computed);
            self.report.measured_prefill_secs += comp.as_secs_f64();
        }
        match self.cfg.chunked_prefill_tokens {
            Some(chunk_tokens) if computed > chunk_tokens => {
                // Sarathi-style chunking: split the prefill into equal
                // slices; a decode iteration piggybacks between slices so
                // the batch keeps making progress.
                let n_chunks = computed.div_ceil(chunk_tokens).max(1);
                let chunk_dur = total / n_chunks;
                self.gpu_action = Some(Action::PrefillChunk {
                    job: job_idx,
                    chunks_left: (n_chunks - 1) as u32,
                    chunk_dur,
                });
                q.push(now + chunk_dur, Ev::GpuTick);
            }
            _ => {
                self.gpu_action = Some(Action::Prefill { job: job_idx });
                q.push(now + total, Ev::GpuTick);
            }
        }
        // The queue head moved: give the prefetcher a chance to stage the
        // next jobs' KV while this prefill runs.
        self.run_prefetch(now);
        Ok(())
    }

    /// Starts the next slice of a paused chunked prefill.
    fn issue_chunk(
        &mut self,
        now: Time,
        q: &mut EventQueue<Ev>,
        job: usize,
        chunks_left: u32,
        chunk_dur: Dur,
    ) {
        self.gpu_action = Some(Action::PrefillChunk {
            job,
            chunks_left,
            chunk_dur,
        });
        q.push(now + chunk_dur, Ev::GpuTick);
    }

    /// Completes a prefill: records TTFT, saves the prefill-phase KV
    /// asynchronously, moves the job into the decode batch.
    fn complete_prefill(&mut self, now: Time, job_idx: usize) {
        let job = &mut self.jobs[job_idx];
        job.ctx_tokens = job.hist_tokens + job.user_tokens;
        job.decode_start = now;
        let measured = job.measured;
        // TTFT is the service latency: admission (the job is scheduled
        // onto the GPU) to first token. Queue wait is reported separately
        // — in the overloaded closed-loop runs it is dominated by the
        // backlog and tracked by the makespan.
        let ttft = (now - job.admitted_at).as_secs_f64();
        let queue_wait = (job.admitted_at - job.arrival).as_secs_f64();
        let computed = job.computed_tokens;
        if measured {
            self.report.ttft.push(ttft);
            self.report.queue_wait.push(queue_wait);
        }
        // The prefill phase produced `computed` tokens of fresh KV; the
        // write stream flushes it overlapped with decoding (§3.2.2).
        if self.cfg.mode != Mode::Recompute {
            let bytes = self.stored_kv_bytes(computed);
            self.d2h.transfer(now, bytes);
        }
        self.batch.push(job_idx);
    }

    /// Completes one decode iteration; finished jobs retire.
    fn complete_decode_iteration(&mut self, now: Time, q: &mut EventQueue<Ev>) {
        let mut finished = Vec::new();
        for &j in &self.batch {
            let job = &mut self.jobs[j];
            job.ctx_tokens += 1;
            job.remaining_decode -= 1;
            if job.remaining_decode == 0 {
                finished.push(j);
            }
        }
        self.batch.retain(|j| !finished.contains(j));
        for j in finished {
            self.retire_job(now, j, q);
        }
    }

    /// Retires a finished job: saves KV, updates the session, schedules
    /// the next turn.
    fn retire_job(&mut self, now: Time, job_idx: usize, q: &mut EventQueue<Ev>) {
        self.last_completion = now;
        let job = &self.jobs[job_idx];
        let session = job.session;
        let measured = job.measured;
        let decode_latency = (now - job.decode_start).as_secs_f64();
        let new_hist = job.hist_tokens + job.user_tokens + job.resp_tokens;
        let resp = job.resp_tokens;
        if measured {
            self.report.decode_latency.push(decode_latency);
        }
        // Save the whole session's KV back to the store; only the decode
        // phase's fresh tokens still need the device→host hop (the prefill
        // share was flushed at prefill completion).
        if self.cfg.mode != Mode::Recompute {
            let sid = SessionId(self.trace.sessions[self.sessions[session].spec].id);
            let total_bytes = self.stored_kv_bytes(new_hist);
            let order = self.queue_sessions();
            let view = QueueView::new(&order);
            let store = self.store.as_mut().expect("store exists outside RE");
            let (transfers, _saved) = store.save(sid, total_bytes, new_hist, now, &view);
            self.charge_transfers(now, &transfers);
            let decode_bytes = self.stored_kv_bytes(resp);
            let done = self.d2h.transfer(now, decode_bytes);
            if !self.cfg.async_save {
                // Synchronous saving blocks the GPU until the write-back
                // completes (Fig 8a).
                let block = done.saturating_since(now);
                self.report.stall_secs += block.as_secs_f64();
            }
        }
        // Advance the session.
        let st = &mut self.sessions[session];
        st.hist_tokens = new_hist;
        st.next_turn += 1;
        let spec = &self.trace.sessions[st.spec];
        if st.next_turn < spec.turns.len() {
            let think = spec.turns[st.next_turn - 1].think;
            q.push(now + think, Ev::TurnArrival(session));
        } else {
            self.sessions_remaining -= 1;
            self.report.sessions_done.incr();
        }
        // Space freed by the save/demotions may unblock prefetches.
        self.run_prefetch(now);
    }

    /// Picks the GPU's next action after the previous one completed.
    fn schedule_next(&mut self, now: Time, q: &mut EventQueue<Ev>) {
        // A paused chunked prefill resumes before anything else.
        if let Some((job, chunks_left, chunk_dur)) = self.pending_chunk.take() {
            self.issue_chunk(now, q, job, chunks_left.saturating_sub(1), chunk_dur);
            return;
        }
        // Admission first: prefill of waiting jobs blocks decoding, which
        // is the continuous-batching behaviour the paper describes.
        if !self.queue.is_empty() && self.batch.len() < self.cfg.max_batch {
            match self.try_admit(now, q) {
                Ok(()) => return,
                Err(ready_at) => {
                    if self.batch.is_empty() {
                        // Nothing else to run: stall until ready.
                        self.gpu_action = Some(Action::Sleep);
                        self.report.stall_secs += (ready_at - now).as_secs_f64();
                        q.push(ready_at, Ev::GpuTick);
                        return;
                    }
                    // Fall through to decode while the buffer drains.
                }
            }
        }
        if !self.batch.is_empty() {
            let total_ctx: u64 = self.batch.iter().map(|&j| self.jobs[j].ctx_tokens).sum();
            let dur = self.cfg.cost.decode_iter_time(
                &self.cfg.model,
                &self.cfg.cluster,
                self.batch.len() as u64,
                total_ctx,
            );
            self.report.decode_busy_secs += dur.as_secs_f64();
            self.report.gpu_busy_timeline.add_span(
                now.as_secs_f64(),
                dur.as_secs_f64(),
                dur.as_secs_f64(),
            );
            self.gpu_action = Some(Action::Decode);
            q.push(now + dur, Ev::GpuTick);
            return;
        }
        // Idle: a future TurnArrival will wake the GPU.
        self.gpu_action = None;
    }
}

impl World for ServingSim {
    type Event = Ev;

    fn handle(&mut self, now: Time, ev: Ev, q: &mut EventQueue<Ev>) {
        match ev {
            Ev::TurnArrival(session) => self.on_turn_arrival(now, session, q),
            Ev::Sweep => {
                if let Some(store) = &mut self.store {
                    store.expire(now);
                }
                if self.sessions_remaining > 0 {
                    q.push(now + Dur::from_secs_f64(30.0), Ev::Sweep);
                }
            }
            Ev::GpuTick => {
                match self.gpu_action.take() {
                    Some(Action::Prefill { job }) => self.complete_prefill(now, job),
                    Some(Action::PrefillChunk {
                        job,
                        chunks_left,
                        chunk_dur,
                    }) => {
                        if chunks_left == 0 {
                            self.complete_prefill(now, job);
                        } else if self.batch.is_empty() {
                            // Nothing to piggyback: run the next slice.
                            self.issue_chunk(now, q, job, chunks_left - 1, chunk_dur);
                            return;
                        } else {
                            // Let one decode iteration through, then
                            // resume (schedule_next picks it back up).
                            self.pending_chunk = Some((job, chunks_left, chunk_dur));
                            let total_ctx: u64 =
                                self.batch.iter().map(|&j| self.jobs[j].ctx_tokens).sum();
                            let dur = self.cfg.cost.decode_iter_time(
                                &self.cfg.model,
                                &self.cfg.cluster,
                                self.batch.len() as u64,
                                total_ctx,
                            );
                            self.report.decode_busy_secs += dur.as_secs_f64();
                            self.gpu_action = Some(Action::Decode);
                            q.push(now + dur, Ev::GpuTick);
                            return;
                        }
                    }
                    Some(Action::Decode) => self.complete_decode_iteration(now, q),
                    Some(Action::Sleep) | None => {}
                }
                self.schedule_next(now, q);
            }
        }
    }
}

/// Runs `cfg` over `trace` and returns the collected report.
///
/// # Examples
///
/// ```
/// use engine::{run_trace, EngineConfig, Mode};
/// use models::ModelSpec;
/// use workload::{Generator, ShareGptProfile};
///
/// let trace = Generator::new(ShareGptProfile::default(), 1).trace(20);
/// let cfg = EngineConfig::paper(Mode::CachedAttention, ModelSpec::llama2_13b());
/// let report = run_trace(cfg, trace);
/// assert_eq!(report.sessions_done.get(), 20);
/// assert!(report.hit_rate() > 0.5);
/// ```
pub fn run_trace(cfg: EngineConfig, trace: Trace) -> RunReport {
    ServingSim::run(cfg, trace)
}

/// Convenience: the paper's end-to-end run for one model and mode.
pub fn run_paper_workload(
    mode: Mode,
    model: ModelSpec,
    trace: Trace,
    warmup_turns: usize,
) -> RunReport {
    let cfg = EngineConfig::paper(mode, model).with_warmup(warmup_turns);
    run_trace(cfg, trace)
}

#[cfg(test)]
mod tests {
    use super::*;
    use workload::{Generator, ShareGptProfile};

    fn small_trace(n: usize, seed: u64) -> Trace {
        Generator::new(ShareGptProfile::default(), seed).trace(n)
    }

    fn run(mode: Mode, n: usize) -> RunReport {
        run_paper_workload(mode, ModelSpec::llama2_13b(), small_trace(n, 7), 0)
    }

    /// Every session runs to completion in both modes.
    #[test]
    fn workload_completes_in_all_modes() {
        for mode in [
            Mode::CachedAttention,
            Mode::Recompute,
            Mode::CoupledOverflow,
        ] {
            let r = run(mode, 120);
            assert_eq!(r.sessions_done.get(), 120, "{mode:?}");
            assert!(r.makespan_secs > 0.0);
            assert_eq!(r.turns_measured.get() as usize, {
                // All turns measured with zero warmup.
                small_trace(120, 7).total_turns()
            });
        }
    }

    /// With an ample store, CachedAttention hits on nearly every
    /// resumption turn.
    #[test]
    fn ca_hit_rate_is_high_with_ample_store() {
        let r = run(Mode::CachedAttention, 150);
        assert!(r.resumption_turns.get() > 0);
        assert!(r.hit_rate() > 0.95, "hit rate {}", r.hit_rate());
        // Scheduler-aware placement keeps the hits in the fast tier.
        assert!(r.fast_hit_rate() > 0.9, "fast {}", r.fast_hit_rate());
    }

    /// RE recomputes everything: computed == presented prompt tokens.
    #[test]
    fn re_recomputes_all_prompt_tokens() {
        let r = run(Mode::Recompute, 100);
        assert_eq!(r.computed_tokens.get(), r.prompt_tokens.get());
        assert_eq!(r.hit_rate(), 0.0);
    }

    /// The paper's headline: CA cuts TTFT, computed tokens and GPU time
    /// versus RE on the same trace.
    #[test]
    fn ca_beats_re_on_the_same_trace() {
        let ca = run(Mode::CachedAttention, 200);
        let re = run(Mode::Recompute, 200);
        assert!(
            ca.ttft_mean() < re.ttft_mean(),
            "TTFT ca {} re {}",
            ca.ttft_mean(),
            re.ttft_mean()
        );
        assert!(ca.computed_tokens.get() < re.computed_tokens.get() / 2);
        assert!(ca.prefill_throughput() > re.prefill_throughput());
        assert!(ca.busy_hours() < re.busy_hours());
    }

    /// OF sits between CA and RE: overflow invalidations cost it hits.
    #[test]
    fn of_loses_hits_to_overflow() {
        // LLaMA-65B's 2K window overflows constantly (§4.3.4).
        let ca = run_paper_workload(
            Mode::CachedAttention,
            ModelSpec::llama1_65b(),
            small_trace(150, 11),
            0,
        );
        let of = run_paper_workload(
            Mode::CoupledOverflow,
            ModelSpec::llama1_65b(),
            small_trace(150, 11),
            0,
        );
        assert!(
            of.hit_rate() < ca.hit_rate(),
            "of {} ca {}",
            of.hit_rate(),
            ca.hit_rate()
        );
        assert!(of.store_stats.drops_invalidated > 0);
    }

    /// Truncation keeps every admitted prompt inside the context window.
    #[test]
    fn context_never_exceeds_window() {
        let r = run_paper_workload(
            Mode::CachedAttention,
            ModelSpec::llama1_65b(),
            small_trace(100, 3),
            0,
        );
        assert!(r.truncations.get() > 0, "workload should overflow 2K");
        // Indirect check: prompt tokens per turn never exceed the window.
        // (Direct check lives in the simulator via apply_truncation.)
        let max_prompt = r.prompt_tokens.get() / r.turns_measured.get().max(1);
        assert!(max_prompt <= 2048 + 2048);
    }

    /// Runs are deterministic: identical seeds give identical reports.
    #[test]
    fn runs_are_deterministic() {
        let a = run(Mode::CachedAttention, 80);
        let b = run(Mode::CachedAttention, 80);
        assert_eq!(a.makespan_secs, b.makespan_secs);
        assert_eq!(a.computed_tokens.get(), b.computed_tokens.get());
        assert_eq!(a.h2d_bytes, b.h2d_bytes);
        assert_eq!(a.store_stats, b.store_stats);
    }

    /// HBM residency limits the batch: with a deliberately tiny HBM the
    /// run still completes and the live-KV high water stays within the
    /// budget (admission defers to decode instead of overcommitting).
    #[test]
    fn hbm_budget_limits_the_batch() {
        let trace = small_trace(120, 19);
        let mut cfg = EngineConfig::paper(Mode::Recompute, ModelSpec::llama1_65b());
        // Shrink HBM so only a couple of 65B contexts fit beside the
        // weights: total 160 GB − 130 GB weights − 16 GB reserve ≈ 14 GB.
        cfg.cluster.gpu.hbm_bytes = 40_000_000_000;
        let budget = {
            let total = cfg.cluster.total_hbm_bytes();
            total - cfg.model.weight_bytes() - total / 10
        };
        let r = run_trace(cfg, trace.clone());
        assert_eq!(r.sessions_done.get(), 120);
        // A single job is always admitted when the batch is empty (it
        // cannot wait on itself), so the bound is the budget or the
        // largest single-job reservation, whichever is greater.
        let model = ModelSpec::llama1_65b();
        let max_single = trace
            .sessions
            .iter()
            .flat_map(|sess| {
                (0..sess.n_turns()).map(|i| {
                    let t = &sess.turns[i];
                    let hist = sess.historical_tokens_at(i).min(2048);
                    model.kv_bytes(hist + t.user_tokens as u64 + t.resp_tokens as u64)
                })
            })
            .max()
            .unwrap_or(0);
        assert!(
            r.hbm_high_water_bytes <= budget.max(max_single),
            "high water {} exceeds budget {budget} and max single {max_single}",
            r.hbm_high_water_bytes
        );
        // A roomy HBM admits far more concurrent KV.
        let roomy = run_trace(
            EngineConfig::paper(Mode::Recompute, ModelSpec::llama1_65b()),
            trace,
        );
        assert!(roomy.hbm_high_water_bytes >= r.hbm_high_water_bytes);
    }

    /// The GPU-busy timeline accounts for every busy second: its total
    /// matches prefill + decode (stalls inside prefills included in the
    /// prefill span).
    #[test]
    fn busy_timeline_accounts_for_busy_time() {
        let r = run(Mode::CachedAttention, 80);
        let timeline_total = r.gpu_busy_timeline.total();
        let busy = r.prefill_busy_secs + r.decode_busy_secs + r.stall_secs;
        // The timeline records prefill spans at their full (stall
        // inclusive) duration, so totals agree within the stall slack.
        assert!(
            (timeline_total - busy).abs() <= r.stall_secs + 1.0,
            "timeline {timeline_total} vs busy {busy}"
        );
        assert!(r.gpu_busy_timeline.peak() > 0.0);
    }

    /// Chunked prefill trades a little TTFT for decode-latency relief:
    /// the run still completes, decoding jobs stop being blocked by whole
    /// prefills, and the total computed work is unchanged.
    #[test]
    fn chunked_prefill_relieves_decode_blocking() {
        let trace = small_trace(200, 13);
        let model = ModelSpec::llama2_70b();
        let base = EngineConfig::paper(Mode::Recompute, model.clone());
        let mono = run_trace(base.clone(), trace.clone());
        let chunked = run_trace(base.with_chunked_prefill(256), trace);
        assert_eq!(mono.sessions_done.get(), chunked.sessions_done.get());
        assert_eq!(mono.computed_tokens.get(), chunked.computed_tokens.get());
        // Decode wall latency improves (fewer long prefill stalls).
        let mut m = mono;
        let mut c = chunked;
        let (m_p95, c_p95) = (
            m.decode_latency.percentile(95.0).unwrap(),
            c.decode_latency.percentile(95.0).unwrap(),
        );
        assert!(
            c_p95 <= m_p95 * 1.02,
            "chunked p95 {c_p95} vs monolithic {m_p95}"
        );
        // The prefilled job itself waits a bit longer.
        assert!(c.ttft_mean() >= m.ttft_mean() * 0.98);
    }

    /// Warmup excludes early turns from the metrics but not the run.
    #[test]
    fn warmup_filters_metrics() {
        let all = run_paper_workload(
            Mode::CachedAttention,
            ModelSpec::llama2_13b(),
            small_trace(100, 5),
            0,
        );
        let warmed = run_paper_workload(
            Mode::CachedAttention,
            ModelSpec::llama2_13b(),
            small_trace(100, 5),
            200,
        );
        assert!(warmed.turns_measured.get() < all.turns_measured.get());
        assert_eq!(warmed.sessions_done.get(), all.sessions_done.get());
        // Warmed-up hit rates are at least as good: the store is hot.
        assert!(warmed.hit_rate() >= all.hit_rate() - 0.05);
    }
}
