//! Engine trace events: an observer hook over the serving pipeline.
//!
//! Every stage of the pipeline reports what it decided — arrivals,
//! truncations, store consultations, admissions, completions — through an
//! [`EngineObserver`]. Observation is strictly read-only: observers see
//! events *after* the simulator has committed the corresponding state
//! change, and nothing the observer does can alter the run (which is why
//! the golden-report fixtures hold with or without one attached).
//!
//! [`EventLog`] is the canonical observer: it collects events into a
//! `Vec` for test assertions and offline analysis;
//! [`run_traced`](crate::run_traced) wires it up.

use sim::Time;

/// How a store consultation classified a resuming job's KV.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConsultClass {
    /// First turn (no history): nothing to look up.
    NoHistory,
    /// No store configured (the RE baseline): always recompute.
    NoStore,
    /// History existed but no cached KV survived.
    Miss,
    /// KV found in the fast tier.
    HitFast,
    /// KV found in the slow tier.
    HitSlow,
}

/// One observable step of the serving pipeline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EngineEvent {
    /// A session's next turn arrived and was queued.
    TurnArrived {
        /// External session id.
        session: u64,
        /// Zero-based turn index within the session.
        turn: usize,
        /// Virtual arrival time.
        at: Time,
    },
    /// Context overflow shrank a session's visible history.
    Truncated {
        /// External session id.
        session: u64,
        /// History length before truncation.
        old_hist: u64,
        /// History length after truncation.
        new_hist: u64,
        /// Virtual time of the owning turn's arrival.
        at: Time,
    },
    /// The transfer stage consulted the store for a queue-head job.
    Consulted {
        /// External session id.
        session: u64,
        /// Classification of the access.
        class: ConsultClass,
        /// Tokens of history the engine will reuse.
        reused: u64,
        /// Virtual consultation time.
        at: Time,
    },
    /// Admission deferred the queue-head job.
    Deferred {
        /// External session id.
        session: u64,
        /// Earliest time admission can be retried.
        until: Time,
        /// Virtual time of the attempt.
        at: Time,
    },
    /// A job was admitted and its prefill issued.
    Admitted {
        /// External session id.
        session: u64,
        /// Tokens of reused history.
        reused: u64,
        /// Tokens prefilled on the GPU.
        computed: u64,
        /// Whether the prefill was split into chunks.
        chunked: bool,
        /// Virtual admission time.
        at: Time,
    },
    /// A prefill finished and the job joined the decode batch.
    PrefillDone {
        /// External session id.
        session: u64,
        /// Service TTFT in seconds (admission → first token).
        ttft_secs: f64,
        /// Virtual completion time.
        at: Time,
    },
    /// A job finished decoding and retired.
    Retired {
        /// External session id.
        session: u64,
        /// The session's history length after this turn.
        new_hist: u64,
        /// Virtual retirement time.
        at: Time,
    },
}

impl EngineEvent {
    /// A [`EngineEvent::TurnArrived`] for `session`'s turn `turn`.
    pub fn turn_arrived(session: u64, turn: usize, at: Time) -> Self {
        EngineEvent::TurnArrived { session, turn, at }
    }

    /// A [`EngineEvent::Truncated`] shrinking `session`'s history.
    pub fn truncated(session: u64, old_hist: u64, new_hist: u64, at: Time) -> Self {
        EngineEvent::Truncated {
            session,
            old_hist,
            new_hist,
            at,
        }
    }

    /// A [`EngineEvent::Consulted`] classifying a store access.
    pub fn consulted(session: u64, class: ConsultClass, reused: u64, at: Time) -> Self {
        EngineEvent::Consulted {
            session,
            class,
            reused,
            at,
        }
    }

    /// A [`EngineEvent::Deferred`] admission retryable at `until`.
    pub fn deferred(session: u64, until: Time, at: Time) -> Self {
        EngineEvent::Deferred { session, until, at }
    }

    /// An [`EngineEvent::Admitted`] job entering the GPU.
    pub fn admitted(session: u64, reused: u64, computed: u64, chunked: bool, at: Time) -> Self {
        EngineEvent::Admitted {
            session,
            reused,
            computed,
            chunked,
            at,
        }
    }

    /// A [`EngineEvent::PrefillDone`] first token.
    pub fn prefill_done(session: u64, ttft_secs: f64, at: Time) -> Self {
        EngineEvent::PrefillDone {
            session,
            ttft_secs,
            at,
        }
    }

    /// An [`EngineEvent::Retired`] finished job.
    pub fn retired(session: u64, new_hist: u64, at: Time) -> Self {
        EngineEvent::Retired {
            session,
            new_hist,
            at,
        }
    }

    /// The external session id the event concerns.
    pub fn session(&self) -> u64 {
        match *self {
            EngineEvent::TurnArrived { session, .. }
            | EngineEvent::Truncated { session, .. }
            | EngineEvent::Consulted { session, .. }
            | EngineEvent::Deferred { session, .. }
            | EngineEvent::Admitted { session, .. }
            | EngineEvent::PrefillDone { session, .. }
            | EngineEvent::Retired { session, .. } => session,
        }
    }
}

/// A sink for [`EngineEvent`]s.
pub trait EngineObserver {
    /// Called after the simulator commits the observed step.
    fn on_event(&mut self, ev: EngineEvent);
}

/// The default observer: discards everything, costs nothing.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullObserver;

impl EngineObserver for NullObserver {
    fn on_event(&mut self, _ev: EngineEvent) {}
}

/// A Vec-collecting observer for tests and offline analysis.
#[derive(Debug, Clone, Default)]
pub struct EventLog {
    events: Vec<EngineEvent>,
}

impl EventLog {
    /// Creates an empty log.
    pub fn new() -> Self {
        EventLog::default()
    }

    /// All collected events, in commit order.
    pub fn events(&self) -> &[EngineEvent] {
        &self.events
    }

    /// Consumes the log, returning the collected events.
    pub fn into_events(self) -> Vec<EngineEvent> {
        self.events
    }
}

impl EngineObserver for EventLog {
    fn on_event(&mut self, ev: EngineEvent) {
        self.events.push(ev);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log_collects_in_order() {
        let mut log = EventLog::new();
        log.on_event(EngineEvent::TurnArrived {
            session: 3,
            turn: 0,
            at: Time::ZERO,
        });
        log.on_event(EngineEvent::Retired {
            session: 3,
            new_hist: 42,
            at: Time::from_secs_f64(1.0),
        });
        assert_eq!(log.events().len(), 2);
        assert_eq!(log.events()[0].session(), 3);
        assert!(matches!(log.events()[1], EngineEvent::Retired { new_hist: 42, .. }));
    }
}
