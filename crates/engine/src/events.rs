//! Engine trace events: an observer hook over the serving pipeline.
//!
//! Every stage of the pipeline reports what it decided — arrivals,
//! truncations, store consultations, admissions, completions — through an
//! [`EngineObserver`]. Observation is strictly read-only: observers see
//! events *after* the simulator has committed the corresponding state
//! change, and nothing the observer does can alter the run (which is why
//! the golden-report fixtures hold with or without one attached).
//!
//! [`EventLog`] is the canonical observer: it collects events into a
//! `Vec` for test assertions and offline analysis;
//! [`run_traced`](crate::run_traced) wires it up. [`CoalescedLog`]
//! collapses admission-retry floods (one [`EngineEvent::Deferred`] per
//! retry) into counted [`LogEntry::DeferredRun`] records.
//!
//! Observers that also want the [`StoreEvent`] stream (the store's
//! placement decisions, drained through the engine so both streams share
//! one causal order) opt in via
//! [`EngineObserver::wants_store_events`].

use serde::{Serialize, Value};
use sim::Time;
use store::StoreEvent;

/// How a store consultation classified a resuming job's KV.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConsultClass {
    /// First turn (no history): nothing to look up.
    NoHistory,
    /// No store configured (the RE baseline): always recompute.
    NoStore,
    /// History existed but no cached KV survived.
    Miss,
    /// KV found in the fast tier.
    HitFast,
    /// KV found in the slow tier.
    HitSlow,
}

impl ConsultClass {
    /// Lowercase label used in serialized traces.
    pub fn label(self) -> &'static str {
        match self {
            ConsultClass::NoHistory => "no_history",
            ConsultClass::NoStore => "no_store",
            ConsultClass::Miss => "miss",
            ConsultClass::HitFast => "hit_fast",
            ConsultClass::HitSlow => "hit_slow",
        }
    }
}

/// One observable step of the serving pipeline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EngineEvent {
    /// A session's next turn arrived and was queued.
    TurnArrived {
        /// External session id.
        session: u64,
        /// Zero-based turn index within the session.
        turn: usize,
        /// Virtual arrival time.
        at: Time,
    },
    /// Context overflow shrank a session's visible history.
    Truncated {
        /// External session id.
        session: u64,
        /// History length before truncation.
        old_hist: u64,
        /// History length after truncation.
        new_hist: u64,
        /// Virtual time of the owning turn's arrival.
        at: Time,
    },
    /// The transfer stage consulted the store for a queue-head job.
    Consulted {
        /// External session id.
        session: u64,
        /// Classification of the access.
        class: ConsultClass,
        /// Tokens of history the engine will reuse.
        reused: u64,
        /// Virtual consultation time.
        at: Time,
    },
    /// Admission deferred the queue-head job.
    Deferred {
        /// External session id.
        session: u64,
        /// Earliest time admission can be retried.
        until: Time,
        /// Virtual time of the attempt.
        at: Time,
    },
    /// A job was admitted and its prefill issued.
    Admitted {
        /// External session id.
        session: u64,
        /// Tokens of reused history.
        reused: u64,
        /// Tokens prefilled on the GPU.
        computed: u64,
        /// Whether the prefill was split into chunks.
        chunked: bool,
        /// Virtual admission time.
        at: Time,
    },
    /// Admission-time breakdown of the prefill the engine just issued:
    /// how much KV-transfer time the turn needs, how much compute, and
    /// how much of the transfer stays *visible* as a stall (§3.2.1's
    /// layer-wise preload hides the rest under compute). The span
    /// profiler derives overlap efficiency from this event alone.
    PrefillTimed {
        /// External session id.
        session: u64,
        /// KV transfer time the reuse requires, seconds (host→device
        /// for DRAM-backed fast tiers, residual staging wait for
        /// HBM-backed ones; zero when nothing is reused).
        load_secs: f64,
        /// Pure prefill compute time, seconds.
        comp_secs: f64,
        /// Transfer time left visible on the critical path, seconds
        /// (the issued prefill lasts `comp_secs + stall_secs`).
        stall_secs: f64,
        /// Tier-stack index the reused KV was found in (`None` when the
        /// turn reused nothing).
        tier: Option<usize>,
        /// Virtual admission time.
        at: Time,
    },
    /// A prefill finished and the job joined the decode batch.
    PrefillDone {
        /// External session id.
        session: u64,
        /// Service TTFT in seconds (admission → first token).
        ttft_secs: f64,
        /// Virtual completion time.
        at: Time,
    },
    /// A job finished decoding and retired.
    Retired {
        /// External session id.
        session: u64,
        /// The session's history length after this turn.
        new_hist: u64,
        /// Virtual retirement time.
        at: Time,
    },
    /// Admission reserved HBM for a job's peak context (a gauge of the
    /// live-KV budget, §2.4).
    HbmReserved {
        /// External session id of the admitted job.
        session: u64,
        /// Live-KV bytes reserved after this admission (batch + new job).
        reserved_bytes: u64,
        /// The HBM budget those reservations must fit in.
        budget_bytes: u64,
        /// Virtual admission time.
        at: Time,
    },
    /// A serving instance crashed (scripted fault); its jobs are being
    /// re-routed to the survivors.
    InstanceCrashed {
        /// The instance that went down.
        instance: u32,
        /// Virtual crash time.
        at: Time,
    },
    /// A turn orphaned by an instance crash was re-queued elsewhere.
    TurnRerouted {
        /// External session id.
        session: u64,
        /// The dead instance the turn was queued (or running) on.
        from: u32,
        /// The surviving instance it was re-queued on.
        to: u32,
        /// Virtual re-route time.
        at: Time,
    },
    /// A session's cached KV could not be served (read failure or
    /// corruption); the turn degrades to a full re-prefill.
    DegradedRecompute {
        /// External session id.
        session: u64,
        /// Why the cache path failed (`"read_failed"`, `"corrupted"`,
        /// `"overload"` when the degradation ladder forced it).
        reason: &'static str,
        /// Virtual detection time.
        at: Time,
    },
    /// Header announcing that an SLO overload policy governs this run.
    /// Emitted once at start; every other `overload`-category event is
    /// gated on it (`trace_check` enforces both directions).
    SloConfig {
        /// Default TTFT target in seconds.
        ttft_target_secs: f64,
        /// Bounded per-instance inbox capacity (waiting jobs).
        inbox_capacity: u64,
        /// Virtual start time.
        at: Time,
    },
    /// An arriving turn was shed with a typed rejection instead of being
    /// queued (inbox overflow or the ladder's shed rung). Terminal for
    /// the session: no job is created and later turns never arrive.
    TurnShed {
        /// External session id.
        session: u64,
        /// Zero-based turn index within the session.
        turn: usize,
        /// Why it was shed (`"inbox_full"`, `"overload_shed"`).
        reason: &'static str,
        /// Virtual arrival time.
        at: Time,
    },
    /// The degradation ladder moved one rung.
    OverloadLevelChanged {
        /// The rung it left (label).
        from: &'static str,
        /// The rung it entered (label).
        to: &'static str,
        /// Virtual decision time.
        at: Time,
    },
    /// The autoscaler brought an instance into service.
    ScaleUp {
        /// The instance now serving.
        instance: u32,
        /// Alive instances after the action.
        n_alive: u32,
        /// Virtual decision time.
        at: Time,
    },
    /// The autoscaler retired an instance; its queued and in-flight
    /// turns were re-routed (each emits [`EngineEvent::TurnRerouted`]).
    ScaleDown {
        /// The instance retired.
        instance: u32,
        /// Alive instances after the action.
        n_alive: u32,
        /// Virtual decision time.
        at: Time,
    },
}

impl EngineEvent {
    /// A [`EngineEvent::TurnArrived`] for `session`'s turn `turn`.
    pub fn turn_arrived(session: u64, turn: usize, at: Time) -> Self {
        EngineEvent::TurnArrived { session, turn, at }
    }

    /// A [`EngineEvent::Truncated`] shrinking `session`'s history.
    pub fn truncated(session: u64, old_hist: u64, new_hist: u64, at: Time) -> Self {
        EngineEvent::Truncated {
            session,
            old_hist,
            new_hist,
            at,
        }
    }

    /// A [`EngineEvent::Consulted`] classifying a store access.
    pub fn consulted(session: u64, class: ConsultClass, reused: u64, at: Time) -> Self {
        EngineEvent::Consulted {
            session,
            class,
            reused,
            at,
        }
    }

    /// A [`EngineEvent::Deferred`] admission retryable at `until`.
    pub fn deferred(session: u64, until: Time, at: Time) -> Self {
        EngineEvent::Deferred { session, until, at }
    }

    /// An [`EngineEvent::Admitted`] job entering the GPU.
    pub fn admitted(session: u64, reused: u64, computed: u64, chunked: bool, at: Time) -> Self {
        EngineEvent::Admitted {
            session,
            reused,
            computed,
            chunked,
            at,
        }
    }

    /// A [`EngineEvent::PrefillTimed`] admission-time breakdown.
    pub fn prefill_timed(
        session: u64,
        load_secs: f64,
        comp_secs: f64,
        stall_secs: f64,
        tier: Option<usize>,
        at: Time,
    ) -> Self {
        EngineEvent::PrefillTimed {
            session,
            load_secs,
            comp_secs,
            stall_secs,
            tier,
            at,
        }
    }

    /// A [`EngineEvent::PrefillDone`] first token.
    pub fn prefill_done(session: u64, ttft_secs: f64, at: Time) -> Self {
        EngineEvent::PrefillDone {
            session,
            ttft_secs,
            at,
        }
    }

    /// An [`EngineEvent::Retired`] finished job.
    pub fn retired(session: u64, new_hist: u64, at: Time) -> Self {
        EngineEvent::Retired {
            session,
            new_hist,
            at,
        }
    }

    /// An [`EngineEvent::HbmReserved`] admission-time gauge.
    pub fn hbm_reserved(session: u64, reserved_bytes: u64, budget_bytes: u64, at: Time) -> Self {
        EngineEvent::HbmReserved {
            session,
            reserved_bytes,
            budget_bytes,
            at,
        }
    }

    /// An [`EngineEvent::InstanceCrashed`] scripted fault.
    pub fn instance_crashed(instance: u32, at: Time) -> Self {
        EngineEvent::InstanceCrashed { instance, at }
    }

    /// An [`EngineEvent::TurnRerouted`] crash-recovery re-queue.
    pub fn turn_rerouted(session: u64, from: u32, to: u32, at: Time) -> Self {
        EngineEvent::TurnRerouted {
            session,
            from,
            to,
            at,
        }
    }

    /// An [`EngineEvent::DegradedRecompute`] cache-path failure.
    pub fn degraded_recompute(session: u64, reason: &'static str, at: Time) -> Self {
        EngineEvent::DegradedRecompute {
            session,
            reason,
            at,
        }
    }

    /// An [`EngineEvent::SloConfig`] policy header.
    pub fn slo_config(ttft_target_secs: f64, inbox_capacity: u64, at: Time) -> Self {
        EngineEvent::SloConfig {
            ttft_target_secs,
            inbox_capacity,
            at,
        }
    }

    /// An [`EngineEvent::TurnShed`] typed rejection.
    pub fn turn_shed(session: u64, turn: usize, reason: &'static str, at: Time) -> Self {
        EngineEvent::TurnShed {
            session,
            turn,
            reason,
            at,
        }
    }

    /// An [`EngineEvent::OverloadLevelChanged`] ladder transition.
    pub fn overload_level(from: &'static str, to: &'static str, at: Time) -> Self {
        EngineEvent::OverloadLevelChanged { from, to, at }
    }

    /// An [`EngineEvent::ScaleUp`] autoscaler action.
    pub fn scale_up(instance: u32, n_alive: u32, at: Time) -> Self {
        EngineEvent::ScaleUp {
            instance,
            n_alive,
            at,
        }
    }

    /// An [`EngineEvent::ScaleDown`] autoscaler action.
    pub fn scale_down(instance: u32, n_alive: u32, at: Time) -> Self {
        EngineEvent::ScaleDown {
            instance,
            n_alive,
            at,
        }
    }

    /// The external session id the event concerns; `None` for
    /// instance-scoped events ([`EngineEvent::InstanceCrashed`]) and
    /// cluster-scoped overload decisions.
    pub fn session(&self) -> Option<u64> {
        match *self {
            EngineEvent::TurnArrived { session, .. }
            | EngineEvent::Truncated { session, .. }
            | EngineEvent::Consulted { session, .. }
            | EngineEvent::Deferred { session, .. }
            | EngineEvent::Admitted { session, .. }
            | EngineEvent::PrefillTimed { session, .. }
            | EngineEvent::PrefillDone { session, .. }
            | EngineEvent::Retired { session, .. }
            | EngineEvent::HbmReserved { session, .. }
            | EngineEvent::TurnRerouted { session, .. }
            | EngineEvent::TurnShed { session, .. }
            | EngineEvent::DegradedRecompute { session, .. } => Some(session),
            EngineEvent::InstanceCrashed { .. }
            | EngineEvent::SloConfig { .. }
            | EngineEvent::OverloadLevelChanged { .. }
            | EngineEvent::ScaleUp { .. }
            | EngineEvent::ScaleDown { .. } => None,
        }
    }

    /// Snake-case name of the variant, used as the `kind` field in
    /// serialized traces.
    pub fn kind(&self) -> &'static str {
        match self {
            EngineEvent::TurnArrived { .. } => "turn_arrived",
            EngineEvent::Truncated { .. } => "truncated",
            EngineEvent::Consulted { .. } => "consulted",
            EngineEvent::Deferred { .. } => "deferred",
            EngineEvent::Admitted { .. } => "admitted",
            EngineEvent::PrefillTimed { .. } => "prefill_timed",
            EngineEvent::PrefillDone { .. } => "prefill_done",
            EngineEvent::Retired { .. } => "retired",
            EngineEvent::HbmReserved { .. } => "hbm_reserved",
            EngineEvent::InstanceCrashed { .. } => "instance_crashed",
            EngineEvent::TurnRerouted { .. } => "turn_rerouted",
            EngineEvent::DegradedRecompute { .. } => "degraded_recompute",
            EngineEvent::SloConfig { .. } => "slo_config",
            EngineEvent::TurnShed { .. } => "turn_shed",
            EngineEvent::OverloadLevelChanged { .. } => "overload_level",
            EngineEvent::ScaleUp { .. } => "scale_up",
            EngineEvent::ScaleDown { .. } => "scale_down",
        }
    }

    /// Coarse category: `session` (turn lifecycle), `sched` (queueing and
    /// admission decisions), `gpu` (execution and HBM effects), `fault`
    /// (injected failures and their recovery) or `overload` (SLO-driven
    /// admission control, degradation and autoscaling).
    pub fn category(&self) -> &'static str {
        match self {
            EngineEvent::TurnArrived { .. }
            | EngineEvent::Truncated { .. }
            | EngineEvent::Retired { .. } => "session",
            EngineEvent::Consulted { .. }
            | EngineEvent::Deferred { .. }
            | EngineEvent::Admitted { .. } => "sched",
            EngineEvent::PrefillTimed { .. }
            | EngineEvent::PrefillDone { .. }
            | EngineEvent::HbmReserved { .. } => "gpu",
            EngineEvent::InstanceCrashed { .. }
            | EngineEvent::TurnRerouted { .. }
            | EngineEvent::DegradedRecompute { .. } => "fault",
            EngineEvent::SloConfig { .. }
            | EngineEvent::TurnShed { .. }
            | EngineEvent::OverloadLevelChanged { .. }
            | EngineEvent::ScaleUp { .. }
            | EngineEvent::ScaleDown { .. } => "overload",
        }
    }

    /// The event's virtual timestamp.
    pub fn at(&self) -> Time {
        match *self {
            EngineEvent::TurnArrived { at, .. }
            | EngineEvent::Truncated { at, .. }
            | EngineEvent::Consulted { at, .. }
            | EngineEvent::Deferred { at, .. }
            | EngineEvent::Admitted { at, .. }
            | EngineEvent::PrefillTimed { at, .. }
            | EngineEvent::PrefillDone { at, .. }
            | EngineEvent::Retired { at, .. }
            | EngineEvent::HbmReserved { at, .. }
            | EngineEvent::InstanceCrashed { at, .. }
            | EngineEvent::TurnRerouted { at, .. }
            | EngineEvent::DegradedRecompute { at, .. }
            | EngineEvent::SloConfig { at, .. }
            | EngineEvent::TurnShed { at, .. }
            | EngineEvent::OverloadLevelChanged { at, .. }
            | EngineEvent::ScaleUp { at, .. }
            | EngineEvent::ScaleDown { at, .. } => at,
        }
    }
}

/// Builds the serialized payload fields shared by most variants.
fn fields(pairs: Vec<(&str, Value)>) -> Value {
    Value::Object(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

fn secs(t: Time) -> Value {
    Value::F64(t.as_secs_f64())
}

impl Serialize for EngineEvent {
    /// Serializes as a tagged object: `kind` first, payload fields next,
    /// the timestamp (`at`, fractional seconds) last — the same shape the
    /// store events use, so both streams merge into one JSONL trace.
    fn to_value(&self) -> Value {
        let kind = Value::Str(self.kind().to_string());
        match *self {
            EngineEvent::TurnArrived { session, turn, at } => fields(vec![
                ("kind", kind),
                ("session", Value::U64(session)),
                ("turn", Value::U64(turn as u64)),
                ("at", secs(at)),
            ]),
            EngineEvent::Truncated {
                session,
                old_hist,
                new_hist,
                at,
            } => fields(vec![
                ("kind", kind),
                ("session", Value::U64(session)),
                ("old_hist", Value::U64(old_hist)),
                ("new_hist", Value::U64(new_hist)),
                ("at", secs(at)),
            ]),
            EngineEvent::Consulted {
                session,
                class,
                reused,
                at,
            } => fields(vec![
                ("kind", kind),
                ("session", Value::U64(session)),
                ("class", Value::Str(class.label().to_string())),
                ("reused", Value::U64(reused)),
                ("at", secs(at)),
            ]),
            EngineEvent::Deferred { session, until, at } => fields(vec![
                ("kind", kind),
                ("session", Value::U64(session)),
                ("until", secs(until)),
                ("at", secs(at)),
            ]),
            EngineEvent::Admitted {
                session,
                reused,
                computed,
                chunked,
                at,
            } => fields(vec![
                ("kind", kind),
                ("session", Value::U64(session)),
                ("reused", Value::U64(reused)),
                ("computed", Value::U64(computed)),
                ("chunked", Value::Bool(chunked)),
                ("at", secs(at)),
            ]),
            EngineEvent::PrefillTimed {
                session,
                load_secs,
                comp_secs,
                stall_secs,
                tier,
                at,
            } => {
                let mut f = vec![
                    ("kind", kind),
                    ("session", Value::U64(session)),
                    ("load_secs", Value::F64(load_secs)),
                    ("comp_secs", Value::F64(comp_secs)),
                    ("stall_secs", Value::F64(stall_secs)),
                ];
                if let Some(t) = tier {
                    f.push(("tier", Value::U64(t as u64)));
                }
                f.push(("at", secs(at)));
                fields(f)
            }
            EngineEvent::PrefillDone {
                session,
                ttft_secs,
                at,
            } => fields(vec![
                ("kind", kind),
                ("session", Value::U64(session)),
                ("ttft_secs", Value::F64(ttft_secs)),
                ("at", secs(at)),
            ]),
            EngineEvent::Retired {
                session,
                new_hist,
                at,
            } => fields(vec![
                ("kind", kind),
                ("session", Value::U64(session)),
                ("new_hist", Value::U64(new_hist)),
                ("at", secs(at)),
            ]),
            EngineEvent::HbmReserved {
                session,
                reserved_bytes,
                budget_bytes,
                at,
            } => fields(vec![
                ("kind", kind),
                ("session", Value::U64(session)),
                ("reserved_bytes", Value::U64(reserved_bytes)),
                ("budget_bytes", Value::U64(budget_bytes)),
                ("at", secs(at)),
            ]),
            EngineEvent::InstanceCrashed { instance, at } => fields(vec![
                ("kind", kind),
                ("instance", Value::U64(instance as u64)),
                ("at", secs(at)),
            ]),
            EngineEvent::TurnRerouted {
                session,
                from,
                to,
                at,
            } => fields(vec![
                ("kind", kind),
                ("session", Value::U64(session)),
                ("from", Value::U64(from as u64)),
                ("to", Value::U64(to as u64)),
                ("at", secs(at)),
            ]),
            EngineEvent::DegradedRecompute {
                session,
                reason,
                at,
            } => fields(vec![
                ("kind", kind),
                ("session", Value::U64(session)),
                ("reason", Value::Str(reason.to_string())),
                ("at", secs(at)),
            ]),
            EngineEvent::SloConfig {
                ttft_target_secs,
                inbox_capacity,
                at,
            } => fields(vec![
                ("kind", kind),
                ("ttft_target_secs", Value::F64(ttft_target_secs)),
                ("inbox_capacity", Value::U64(inbox_capacity)),
                ("at", secs(at)),
            ]),
            EngineEvent::TurnShed {
                session,
                turn,
                reason,
                at,
            } => fields(vec![
                ("kind", kind),
                ("session", Value::U64(session)),
                ("turn", Value::U64(turn as u64)),
                ("reason", Value::Str(reason.to_string())),
                ("at", secs(at)),
            ]),
            EngineEvent::OverloadLevelChanged { from, to, at } => fields(vec![
                ("kind", kind),
                ("from", Value::Str(from.to_string())),
                ("to", Value::Str(to.to_string())),
                ("at", secs(at)),
            ]),
            EngineEvent::ScaleUp {
                instance,
                n_alive,
                at,
            } => fields(vec![
                ("kind", kind),
                ("instance", Value::U64(instance as u64)),
                ("n_alive", Value::U64(n_alive as u64)),
                ("at", secs(at)),
            ]),
            EngineEvent::ScaleDown {
                instance,
                n_alive,
                at,
            } => fields(vec![
                ("kind", kind),
                ("instance", Value::U64(instance as u64)),
                ("n_alive", Value::U64(n_alive as u64)),
                ("at", secs(at)),
            ]),
        }
    }
}

/// A sink for [`EngineEvent`]s (and, opted into, [`StoreEvent`]s).
pub trait EngineObserver {
    /// Called after the simulator commits the observed step.
    fn on_event(&mut self, ev: EngineEvent);

    /// Whether this observer wants the store's [`StoreEvent`] stream too.
    /// When `false` (the default) the engine leaves store tracing off, so
    /// plain observers pay nothing for it.
    fn wants_store_events(&self) -> bool {
        false
    }

    /// Called with each store placement decision, drained in commit order
    /// and interleaved causally with the engine events. Only invoked when
    /// [`wants_store_events`](EngineObserver::wants_store_events) is
    /// `true`.
    fn on_store_event(&mut self, _ev: StoreEvent) {}

    /// Instance-tagged form of [`on_event`](EngineObserver::on_event):
    /// the cluster orchestrator reports which serving instance committed
    /// the step. Defaults to dropping the tag, so single-instance
    /// observers need not care.
    fn on_instance_event(&mut self, _instance: u32, ev: EngineEvent) {
        self.on_event(ev);
    }

    /// Instance-tagged form of
    /// [`on_store_event`](EngineObserver::on_store_event): `instance` is
    /// the serving instance whose pipeline step drained the store event.
    /// Defaults to dropping the tag.
    fn on_instance_store_event(&mut self, _instance: u32, ev: StoreEvent) {
        self.on_store_event(ev);
    }
}

/// The default observer: discards everything, costs nothing.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullObserver;

impl EngineObserver for NullObserver {
    fn on_event(&mut self, _ev: EngineEvent) {}
}

/// A Vec-collecting observer for tests and offline analysis.
#[derive(Debug, Clone, Default)]
pub struct EventLog {
    events: Vec<EngineEvent>,
}

impl EventLog {
    /// Creates an empty log.
    pub fn new() -> Self {
        EventLog::default()
    }

    /// All collected events, in commit order.
    pub fn events(&self) -> &[EngineEvent] {
        &self.events
    }

    /// Consumes the log, returning the collected events.
    pub fn into_events(self) -> Vec<EngineEvent> {
        self.events
    }
}

impl EngineObserver for EventLog {
    fn on_event(&mut self, ev: EngineEvent) {
        self.events.push(ev);
    }
}

/// One record of a [`CoalescedLog`]: either a single event or a run of
/// consecutive admission deferrals for the same session collapsed into
/// a count plus its first/last timestamps.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LogEntry {
    /// A single (non-coalesced) event.
    Event(EngineEvent),
    /// `count` consecutive [`EngineEvent::Deferred`] events for
    /// `session`, coalesced.
    DeferredRun {
        /// External session id whose admission kept being deferred.
        session: u64,
        /// How many deferrals the run collapsed.
        count: u64,
        /// Timestamp of the first deferral in the run.
        first_at: Time,
        /// Timestamp of the last deferral in the run.
        last_at: Time,
        /// The last deferral's retry time.
        until: Time,
    },
}

/// An [`EventLog`] variant that coalesces admission-retry floods.
///
/// A long admission stall emits one [`EngineEvent::Deferred`] per retry;
/// collecting those verbatim floods the log (and anything aggregating
/// it). This observer collapses consecutive deferrals of the same
/// session into one counted [`LogEntry::DeferredRun`]; every other event
/// passes through unchanged. The telemetry crate's `MetricsHub` uses one
/// internally.
#[derive(Debug, Clone, Default)]
pub struct CoalescedLog {
    entries: Vec<LogEntry>,
}

impl CoalescedLog {
    /// Creates an empty log.
    pub fn new() -> Self {
        CoalescedLog::default()
    }

    /// All collected entries, in commit order.
    pub fn entries(&self) -> &[LogEntry] {
        &self.entries
    }

    /// Consumes the log, returning the collected entries.
    pub fn into_entries(self) -> Vec<LogEntry> {
        self.entries
    }

    /// Total deferrals observed (the sum over every coalesced run).
    pub fn deferred_total(&self) -> u64 {
        self.entries
            .iter()
            .map(|e| match e {
                LogEntry::DeferredRun { count, .. } => *count,
                LogEntry::Event(_) => 0,
            })
            .sum()
    }
}

impl EngineObserver for CoalescedLog {
    fn on_event(&mut self, ev: EngineEvent) {
        if let EngineEvent::Deferred { session, until, at } = ev {
            if let Some(LogEntry::DeferredRun {
                session: s,
                count,
                last_at,
                until: u,
                ..
            }) = self.entries.last_mut()
            {
                if *s == session {
                    *count += 1;
                    *last_at = at;
                    *u = until;
                    return;
                }
            }
            self.entries.push(LogEntry::DeferredRun {
                session,
                count: 1,
                first_at: at,
                last_at: at,
                until,
            });
        } else {
            self.entries.push(LogEntry::Event(ev));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log_collects_in_order() {
        let mut log = EventLog::new();
        log.on_event(EngineEvent::TurnArrived {
            session: 3,
            turn: 0,
            at: Time::ZERO,
        });
        log.on_event(EngineEvent::Retired {
            session: 3,
            new_hist: 42,
            at: Time::from_secs_f64(1.0),
        });
        assert_eq!(log.events().len(), 2);
        assert_eq!(log.events()[0].session(), Some(3));
        assert!(matches!(
            log.events()[1],
            EngineEvent::Retired { new_hist: 42, .. }
        ));
    }

    #[test]
    fn serializes_as_tagged_objects() {
        let ev = EngineEvent::consulted(5, ConsultClass::HitSlow, 700, Time::from_secs_f64(2.0));
        let json = serde_json::to_string(&ev).unwrap();
        assert_eq!(
            json,
            "{\"kind\":\"consulted\",\"session\":5,\"class\":\"hit_slow\",\
             \"reused\":700,\"at\":2.0}"
        );
        assert_eq!(ev.kind(), "consulted");
        assert_eq!(ev.category(), "sched");
        assert_eq!(ev.at(), Time::from_secs_f64(2.0));
    }

    #[test]
    fn coalesced_log_collapses_deferral_runs() {
        let mut log = CoalescedLog::new();
        log.on_event(EngineEvent::turn_arrived(1, 0, Time::ZERO));
        for ms in [10u64, 20, 30] {
            log.on_event(EngineEvent::deferred(
                1,
                Time::from_millis(ms + 5),
                Time::from_millis(ms),
            ));
        }
        // A different session breaks the run.
        log.on_event(EngineEvent::deferred(
            2,
            Time::from_millis(41),
            Time::from_millis(40),
        ));
        log.on_event(EngineEvent::admitted(
            1,
            0,
            100,
            false,
            Time::from_millis(50),
        ));
        assert_eq!(log.entries().len(), 4);
        assert!(matches!(
            log.entries()[1],
            LogEntry::DeferredRun {
                session: 1,
                count: 3,
                first_at,
                last_at,
                ..
            } if first_at == Time::from_millis(10) && last_at == Time::from_millis(30)
        ));
        assert!(matches!(
            log.entries()[2],
            LogEntry::DeferredRun {
                session: 2,
                count: 1,
                ..
            }
        ));
        assert_eq!(log.deferred_total(), 4);
    }

    #[test]
    fn prefill_timed_serializes_and_classifies() {
        let ev = EngineEvent::prefill_timed(4, 0.5, 0.25, 0.125, Some(1), Time::from_secs_f64(3.0));
        assert_eq!(ev.kind(), "prefill_timed");
        assert_eq!(ev.category(), "gpu");
        assert_eq!(ev.session(), Some(4));
        assert_eq!(ev.at(), Time::from_secs_f64(3.0));
        assert_eq!(
            serde_json::to_string(&ev).unwrap(),
            "{\"kind\":\"prefill_timed\",\"session\":4,\"load_secs\":0.5,\
             \"comp_secs\":0.25,\"stall_secs\":0.125,\"tier\":1,\"at\":3.0}"
        );
        // No reuse: the tier field is omitted entirely.
        let miss = EngineEvent::prefill_timed(4, 0.0, 0.25, 0.0, None, Time::from_secs_f64(3.0));
        assert_eq!(
            serde_json::to_string(&miss).unwrap(),
            "{\"kind\":\"prefill_timed\",\"session\":4,\"load_secs\":0.0,\
             \"comp_secs\":0.25,\"stall_secs\":0.0,\"at\":3.0}"
        );
    }

    #[test]
    fn fault_events_serialize_and_classify() {
        let crash = EngineEvent::instance_crashed(1, Time::from_secs_f64(3.0));
        assert_eq!(crash.session(), None);
        assert_eq!(crash.category(), "fault");
        assert_eq!(
            serde_json::to_string(&crash).unwrap(),
            "{\"kind\":\"instance_crashed\",\"instance\":1,\"at\":3.0}"
        );
        let re = EngineEvent::turn_rerouted(9, 1, 0, Time::from_secs_f64(3.0));
        assert_eq!(re.session(), Some(9));
        assert_eq!(re.kind(), "turn_rerouted");
        assert_eq!(
            serde_json::to_string(&re).unwrap(),
            "{\"kind\":\"turn_rerouted\",\"session\":9,\"from\":1,\"to\":0,\"at\":3.0}"
        );
        let deg = EngineEvent::degraded_recompute(9, "corrupted", Time::from_secs_f64(4.0));
        assert_eq!(deg.category(), "fault");
        assert_eq!(deg.at(), Time::from_secs_f64(4.0));
    }

    #[test]
    fn overload_events_serialize_and_classify() {
        let hdr = EngineEvent::slo_config(2.0, 32, Time::ZERO);
        assert_eq!(hdr.session(), None);
        assert_eq!(hdr.category(), "overload");
        assert_eq!(
            serde_json::to_string(&hdr).unwrap(),
            "{\"kind\":\"slo_config\",\"ttft_target_secs\":2.0,\"inbox_capacity\":32,\"at\":0.0}"
        );
        let shed = EngineEvent::turn_shed(7, 2, "inbox_full", Time::from_secs_f64(5.0));
        assert_eq!(shed.session(), Some(7));
        assert_eq!(shed.kind(), "turn_shed");
        assert_eq!(shed.category(), "overload");
        assert_eq!(
            serde_json::to_string(&shed).unwrap(),
            "{\"kind\":\"turn_shed\",\"session\":7,\"turn\":2,\"reason\":\"inbox_full\",\"at\":5.0}"
        );
        let lvl = EngineEvent::overload_level("normal", "recompute_only", Time::from_secs_f64(6.0));
        assert_eq!(lvl.session(), None);
        assert_eq!(lvl.kind(), "overload_level");
        assert_eq!(
            serde_json::to_string(&lvl).unwrap(),
            "{\"kind\":\"overload_level\",\"from\":\"normal\",\"to\":\"recompute_only\",\"at\":6.0}"
        );
        let up = EngineEvent::scale_up(2, 3, Time::from_secs_f64(7.0));
        assert_eq!(up.session(), None);
        assert_eq!(up.category(), "overload");
        assert_eq!(
            serde_json::to_string(&up).unwrap(),
            "{\"kind\":\"scale_up\",\"instance\":2,\"n_alive\":3,\"at\":7.0}"
        );
        let down = EngineEvent::scale_down(2, 2, Time::from_secs_f64(9.0));
        assert_eq!(down.kind(), "scale_down");
        assert_eq!(down.at(), Time::from_secs_f64(9.0));
    }

    #[test]
    fn default_observer_ignores_store_events() {
        let mut obs = NullObserver;
        assert!(!obs.wants_store_events());
        // The default hook is a no-op; just exercise it.
        obs.on_store_event(StoreEvent::FetchMiss {
            session: 1,
            at: Time::ZERO,
        });
    }
}
