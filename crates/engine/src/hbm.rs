//! HBM residency stage: the live-KV budget and its high-water mark.
//!
//! The decoding batch holds every member's KV cache resident in HBM, and
//! each admitted job reserves its *final* context (history + prompt +
//! response) up front because decode grows the cache in place. This
//! ledger owns the budget arithmetic of §2.4 — aggregate HBM minus the
//! sharded weights minus a 10% activation/workspace reserve — and tracks
//! the peak reservation for the report.

use models::{ClusterSpec, ModelSpec};

use crate::exec::Job;

/// HBM accounting for the live decode batch's KV.
#[derive(Debug, Clone, Copy)]
pub struct HbmLedger {
    budget: u64,
    high_water: u64,
}

impl HbmLedger {
    /// Computes the KV budget for `model` on `cluster` (§2.4's free-HBM
    /// arithmetic: 320 GB − 130 GB of LLaMA-65B weights − 10% ≈ 158 GB).
    pub fn new(cluster: &ClusterSpec, model: &ModelSpec) -> Self {
        let total = cluster.total_hbm_bytes();
        let weights = model.weight_bytes();
        let reserve = total / 10;
        HbmLedger {
            budget: total.saturating_sub(weights).saturating_sub(reserve),
            high_water: 0,
        }
    }

    /// HBM bytes available for live KV.
    pub fn budget(&self) -> u64 {
        self.budget
    }

    /// Uncompressed KV bytes the decoding batch holds reserved at its
    /// peak: each member's full final context.
    pub fn reserved_kv(&self, model: &ModelSpec, batch: &[usize], jobs: &[Job]) -> u64 {
        batch
            .iter()
            .map(|&j| {
                let job = &jobs[j];
                model.kv_bytes(job.hist_tokens + job.user_tokens + job.resp_tokens)
            })
            .sum()
    }

    /// Records a post-admission reservation level; keeps the maximum.
    pub fn note_reserved(&mut self, reserved: u64) {
        if reserved > self.high_water {
            self.high_water = reserved;
        }
    }

    /// Peak KV reservation seen over the run.
    pub fn high_water(&self) -> u64 {
        self.high_water
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim::Time;

    fn job(hist: u64, user: u64, resp: u64) -> Job {
        Job {
            session: 0,
            instance: 0,
            arrival: Time::ZERO,
            user_tokens: user,
            resp_tokens: resp,
            hist_tokens: hist,
            reused_tokens: 0,
            computed_tokens: 0,
            ctx_tokens: 0,
            remaining_decode: resp,
            measured: true,
            prefill_secs: 0.0,
            admitted_at: Time::ZERO,
            decode_start: Time::ZERO,
            consulted: None,
            deadline: None,
            degraded: false,
        }
    }

    #[test]
    fn budget_subtracts_weights_and_reserve() {
        let model = ModelSpec::llama1_65b();
        let cluster = ClusterSpec::paper_testbed().with_gpus(4);
        let ledger = HbmLedger::new(&cluster, &model);
        let total = cluster.total_hbm_bytes();
        assert_eq!(ledger.budget(), total - model.weight_bytes() - total / 10);
    }

    #[test]
    fn budget_saturates_when_weights_exceed_hbm() {
        let model = ModelSpec::llama1_65b();
        let mut cluster = ClusterSpec::paper_testbed().with_gpus(1);
        cluster.gpu.hbm_bytes = 1_000_000;
        assert_eq!(HbmLedger::new(&cluster, &model).budget(), 0);
    }

    #[test]
    fn reserved_kv_sums_final_contexts() {
        let model = ModelSpec::llama2_13b();
        let cluster = ClusterSpec::paper_testbed().with_gpus(2);
        let ledger = HbmLedger::new(&cluster, &model);
        let jobs = vec![job(100, 20, 30), job(0, 50, 50)];
        let batch = vec![0, 1];
        assert_eq!(
            ledger.reserved_kv(&model, &batch, &jobs),
            model.kv_bytes(150) + model.kv_bytes(100)
        );
        assert_eq!(ledger.reserved_kv(&model, &[], &jobs), 0);
    }

    #[test]
    fn high_water_is_monotone() {
        let model = ModelSpec::llama2_13b();
        let cluster = ClusterSpec::paper_testbed().with_gpus(2);
        let mut ledger = HbmLedger::new(&cluster, &model);
        ledger.note_reserved(10);
        ledger.note_reserved(5);
        assert_eq!(ledger.high_water(), 10);
        ledger.note_reserved(25);
        assert_eq!(ledger.high_water(), 25);
    }
}
