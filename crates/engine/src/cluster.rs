//! The N-instance cluster orchestrator sharing one AttentionStore.
//!
//! [`ClusterSim`] generalizes the single-engine discrete-event loop to a
//! cluster: one event stream drives N [`EngineInstance`]s — each with its
//! own job queue, executor, PCIe links and HBM ledger — while the session
//! table, the job arena, the shared [`AttentionStore`] and the aggregate
//! [`RunReport`] stay global. A [`RouterPolicy`] picks the instance for
//! every arriving turn ([`SessionAffinity`](crate::router::SessionAffinity)
//! by default).
//!
//! The shared store sees one *merged* [`QueueView`] built from every
//! instance's queue: per-queue positions are interleaved round-robin
//! (all queue heads first, then all seconds, ties by instance id), so the
//! §3.3 prefetch and eviction windows protect the sessions the cluster
//! will serve soonest regardless of which instance holds them. Each
//! session in the view is tagged with its owning instance, which is how
//! prefetch/demotion transfers are charged to the right instance's links
//! and how store events carry per-instance attribution.
//!
//! Determinism: with `n_instances == 1` every router routes to instance
//! 0, the merged view degenerates to the single queue, and every
//! operation lands in the same order as the pre-cluster engine — the
//! golden `RunReport` fixtures reproduce byte-for-byte (pinned by
//! `tests/cluster_equivalence.rs`).

use std::collections::BTreeMap;

use serde::Serialize;
use sim::{BoundedInbox, Dur, EventQueue, FaultPlan, Time, World};
use store::{
    AttentionStore, ContentKey, DedupStats, KeyingMode, QueueView, SessionId, StoreEvent,
    StorePlanner, TierId,
};
use workload::Trace;

use crate::events::{ConsultClass, EngineEvent, EngineObserver, NullObserver};
use crate::exec::{self, Action, Job, PrefillIssue};
use crate::instance::{EngineInstance, InstanceReport};
use crate::router::{InstanceLoad, RouterKind, RouterPolicy};
use crate::scheduler;
use crate::slo::{OverloadLevel, ScaleDecision, SloPolicy, SloState};
use crate::truncate;
use crate::{EngineConfig, Medium, Mode, RunReport};

/// Simulation events (public because [`ClusterSim`] implements
/// [`World<Event = Ev>`]; not constructed by users directly).
#[derive(Debug, Clone, Copy)]
pub enum Ev {
    /// A session's next turn arrived (the user hit enter).
    TurnArrival(usize),
    /// An instance's GPU finished its current action (or should wake up).
    GpuTick(u32),
    /// Periodic TTL sweep of the shared store.
    Sweep,
    /// A scripted instance crash fired (fault plan).
    Crash(u32),
    /// A scripted DRAM pressure spike fired (index into the fault plan's
    /// pressure list).
    Pressure(usize),
    /// An SLO decision tick closed (ladder + autoscaler evaluation).
    SloTick,
}

/// Per-session progress.
#[derive(Debug)]
struct SessionState {
    /// Index into `trace.sessions`.
    spec: usize,
    /// Next turn index to arrive.
    next_turn: usize,
    /// Historical context tokens visible to the model (post-truncation).
    hist_tokens: u64,
}

/// A cluster serving setup: the per-instance engine config, the instance
/// count, and the routing policy.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Per-instance engine configuration (every instance is identical).
    pub engine: EngineConfig,
    /// Number of serving instances sharing the store.
    pub n_instances: usize,
    /// Which router dispatches arriving turns.
    pub router: RouterKind,
    /// Scripted faults injected into the run (`None` = fault-free; an
    /// empty plan is normalized to `None`, so the fault layer is strictly
    /// additive and fault-free runs stay byte-identical).
    pub faults: Option<FaultPlan>,
    /// The overload-robustness policy (`None` = no SLO; the no-op policy
    /// is normalized to `None`, so the overload layer is strictly
    /// additive and SLO-free runs stay byte-identical).
    pub slo: Option<SloPolicy>,
}

impl ClusterConfig {
    /// A cluster of `n_instances` copies of `engine` under `router`.
    pub fn new(engine: EngineConfig, n_instances: usize, router: RouterKind) -> Self {
        ClusterConfig {
            engine,
            n_instances,
            router,
            faults: None,
            slo: None,
        }
    }

    /// The degenerate single-instance cluster
    /// [`ServingSim`](crate::ServingSim) wraps: one instance, affinity
    /// routing.
    pub fn single(engine: EngineConfig) -> Self {
        ClusterConfig::new(engine, 1, RouterKind::SessionAffinity)
    }

    /// Installs a fault plan for the run. Empty plans are dropped.
    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        self.faults = if plan.is_empty() { None } else { Some(plan) };
        self
    }

    /// Installs an SLO overload policy. No-op policies are dropped.
    pub fn with_slo(mut self, policy: SloPolicy) -> Self {
        self.slo = if policy.is_noop() { None } else { Some(policy) };
        self
    }
}

/// Fault-path counters of one cluster run: what the injected faults did
/// and how the cluster degraded around them. All-zero for fault-free
/// runs (it lives beside the golden-pinned aggregate, not inside it).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct FaultReport {
    /// Injected slow-tier read errors that were retried.
    pub read_retries: u64,
    /// Reads abandoned after exhausting their retry budget.
    pub read_failures: u64,
    /// Injected slow-tier write errors that were retried.
    pub write_retries: u64,
    /// Saves abandoned after exhausting their retry budget.
    pub write_failures: u64,
    /// Checksum mismatches caught on load.
    pub corruptions_detected: u64,
    /// Turns that fell back to a full re-prefill after a cache-path
    /// failure (read failure or corruption).
    pub recompute_fallbacks: u64,
    /// Scripted instance crashes that fired.
    pub instance_crashes: u64,
    /// Turns re-queued onto surviving instances after a crash.
    pub turns_rerouted: u64,
    /// Scripted DRAM pressure spikes that fired.
    pub pressure_events: u64,
}

impl FaultReport {
    /// Whether any fault-path activity was recorded.
    pub fn any(&self) -> bool {
        *self != FaultReport::default()
    }
}

/// Overload-path counters of one cluster run: what the admission ladder
/// and the autoscaler did. All-zero for SLO-free runs (like
/// [`FaultReport`], it lives beside the golden-pinned aggregate).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct OverloadReport {
    /// Arriving turns rejected with a typed shed event.
    pub turns_shed: u64,
    /// Turns admitted in recompute-only degradation (fetch skipped).
    pub degraded_recomputes: u64,
    /// Truncations forced by the shrunken hard-truncate window.
    pub hard_truncations: u64,
    /// Degradation-ladder rung changes (either direction).
    pub level_transitions: u64,
    /// Autoscaler scale-up actions.
    pub scale_ups: u64,
    /// Autoscaler scale-down actions.
    pub scale_downs: u64,
    /// Measured first tokens that met their TTFT deadline.
    pub slo_attained: u64,
    /// Measured first tokens that missed, plus measured shed turns.
    pub slo_missed: u64,
    /// Peak alive instances during the run.
    pub peak_instances: u64,
}

impl OverloadReport {
    /// Whether any overload-path activity was recorded.
    pub fn any(&self) -> bool {
        *self != OverloadReport::default()
    }

    /// Fraction of measured turns that met their TTFT deadline (shed
    /// turns count as misses). `1.0` when nothing was measured.
    pub fn attainment(&self) -> f64 {
        let total = self.slo_attained + self.slo_missed;
        if total == 0 {
            return 1.0;
        }
        self.slo_attained as f64 / total as f64
    }
}

/// The result of a cluster run: the aggregate report plus per-instance
/// breakdowns.
#[derive(Debug, Serialize)]
pub struct ClusterReport {
    /// Aggregate metrics across all instances (same recorder call order
    /// as the single-engine report; link totals summed, HBM high water
    /// maxed).
    pub aggregate: RunReport,
    /// Label of the router that dispatched turns.
    pub router: &'static str,
    /// Per-instance counters and link totals.
    pub instances: Vec<InstanceReport>,
    /// Fault-path counters (all-zero when no fault plan was installed).
    pub faults: FaultReport,
    /// Overload-path counters (all-zero when no SLO policy was installed).
    pub overload: OverloadReport,
    /// Cross-session dedup counters (all-zero under per-session keying).
    pub dedup: DedupStats,
}

impl ClusterReport {
    /// Aggregate serving throughput: measured turns per makespan second.
    pub fn throughput(&self) -> f64 {
        if self.aggregate.makespan_secs == 0.0 {
            return 0.0;
        }
        self.aggregate.turns_measured.get() as f64 / self.aggregate.makespan_secs
    }
}

/// The cluster world: one event stream dispatched across N instances.
pub struct ClusterSim<O: EngineObserver = NullObserver> {
    cfg: EngineConfig,
    trace: Trace,
    sessions: Vec<SessionState>,
    jobs: Vec<Job>,
    instances: Vec<EngineInstance>,
    router: Box<dyn RouterPolicy>,
    store: Option<Box<dyn StorePlanner>>,
    turn_arrivals: usize,
    sessions_remaining: usize,
    last_completion: Time,
    report: RunReport,
    obs: O,
    /// The run's fault plan (`None` = fault-free; the fallible store and
    /// consult paths are only taken when set).
    faults: Option<FaultPlan>,
    recompute_fallbacks: u64,
    instance_crashes: u64,
    turns_rerouted: u64,
    pressure_events: u64,
    /// The run's SLO policy (`None` = SLO-free; the overload paths are
    /// only taken when set).
    slo: Option<SloPolicy>,
    slo_state: SloState,
    /// One admission ledger per instance, indexed like `instances`.
    /// Empty when no SLO policy is installed.
    inboxes: Vec<BoundedInbox>,
    turns_shed: u64,
    degraded_recomputes: u64,
    hard_truncations: u64,
    level_transitions: u64,
    scale_ups: u64,
    scale_downs: u64,
    slo_attained: u64,
    slo_missed: u64,
    peak_instances: usize,
    // Reusable scratch buffers: the merged queue view and router loads
    // are rebuilt at every consultation, and per-consultation allocation
    // was the hot path the snapshot_into refactor removed.
    scratch_snapshot: Vec<usize>,
    scratch_triples: Vec<(u32, u32, usize)>,
    scratch_order: Vec<SessionId>,
    scratch_owners: Vec<u32>,
    scratch_view: QueueView,
    scratch_loads: Vec<InstanceLoad>,
}

impl ClusterSim<NullObserver> {
    /// Builds a cluster simulator for `cfg` over `trace`.
    pub fn new(cfg: ClusterConfig, trace: Trace) -> Self {
        ClusterSim::with_observer(cfg, trace, NullObserver)
    }

    /// Runs the full workload to completion and returns the report.
    pub fn run(cfg: ClusterConfig, trace: Trace) -> ClusterReport {
        let mut world = ClusterSim::new(cfg, trace);
        world.drive();
        world.finish().0
    }
}

impl<O: EngineObserver> ClusterSim<O> {
    /// Builds a cluster that reports every pipeline step to `obs`.
    pub fn with_observer(cfg: ClusterConfig, trace: Trace, obs: O) -> Self {
        assert!(
            cfg.n_instances >= 1,
            "a cluster needs at least one instance"
        );
        let ClusterConfig {
            engine,
            n_instances,
            router,
            faults,
            slo,
        } = cfg;
        let faults = faults.filter(|p| !p.is_empty());
        let slo = slo.filter(|p| !p.is_noop());
        let mut store: Option<Box<dyn StorePlanner>> = match engine.mode {
            Mode::Recompute => None,
            _ => Some(Box::new(AttentionStore::new(engine.store.clone()))),
        };
        if let Some(s) = &mut store {
            // Store tracing is buffered-and-drained, never behavioral:
            // only turn it on for observers that will consume the stream.
            s.set_tracing(obs.wants_store_events());
            if let Some(plan) = &faults {
                s.set_faults(plan.clone());
            }
        }
        let sessions = (0..trace.sessions.len())
            .map(|i| SessionState {
                spec: i,
                next_turn: 0,
                hist_tokens: 0,
            })
            .collect();
        let sessions_remaining = trace.sessions.len();
        let report = RunReport::new(engine.model.name, engine.mode);
        let mut instances: Vec<EngineInstance> = (0..n_instances)
            .map(|i| Self::build_instance(i as u32, &engine, slo.as_ref()))
            .collect();
        if let Some(plan) = &faults {
            for inst in &mut instances {
                inst.plan.install_faults(plan, inst.id);
            }
        }
        let inboxes = match &slo {
            Some(p) => (0..n_instances)
                .map(|_| BoundedInbox::new(p.inbox_capacity))
                .collect(),
            None => Vec::new(),
        };
        let peak_instances = if slo.is_some() { n_instances } else { 0 };
        ClusterSim {
            cfg: engine,
            trace,
            sessions,
            jobs: Vec::new(),
            instances,
            router: router.build(),
            store,
            turn_arrivals: 0,
            sessions_remaining,
            last_completion: Time::ZERO,
            report,
            obs,
            faults,
            recompute_fallbacks: 0,
            instance_crashes: 0,
            turns_rerouted: 0,
            pressure_events: 0,
            slo,
            slo_state: SloState::default(),
            inboxes,
            turns_shed: 0,
            degraded_recomputes: 0,
            hard_truncations: 0,
            level_transitions: 0,
            scale_ups: 0,
            scale_downs: 0,
            slo_attained: 0,
            slo_missed: 0,
            peak_instances,
            scratch_snapshot: Vec::new(),
            scratch_triples: Vec::new(),
            scratch_order: Vec::new(),
            scratch_owners: Vec::new(),
            scratch_view: QueueView::empty(),
            scratch_loads: Vec::new(),
        }
    }

    /// Builds one instance, honouring the SLO policy's queueing choice:
    /// EDF with its starvation floor when configured, FCFS otherwise.
    fn build_instance(id: u32, engine: &EngineConfig, slo: Option<&SloPolicy>) -> EngineInstance {
        match slo.and_then(|p| p.edf_max_slack) {
            Some(slack) => {
                EngineInstance::with_scheduler(id, engine, Box::new(scheduler::Edf::new(slack)))
            }
            None => EngineInstance::new(id, engine),
        }
    }

    /// Feeds the trace's session arrivals and runs the event loop dry.
    pub(crate) fn drive(&mut self) {
        let mut q = EventQueue::new();
        for (i, s) in self.trace.sessions.iter().enumerate() {
            q.push(s.arrival, Ev::TurnArrival(i));
        }
        if self.cfg.store.ttl.is_some() && self.cfg.mode != Mode::Recompute {
            q.push(Time::from_secs_f64(30.0), Ev::Sweep);
        }
        if let Some(plan) = &self.faults {
            for c in &plan.crashes {
                q.push(c.at, Ev::Crash(c.instance));
            }
            for (i, p) in plan.pressure.iter().enumerate() {
                q.push(p.at, Ev::Pressure(i));
            }
        }
        if let Some(p) = &self.slo {
            // The header event announcing the policy: every other
            // overload-category event is gated on its presence.
            let header = EngineEvent::slo_config(
                p.ttft_target.as_secs_f64(),
                p.inbox_capacity.min(u32::MAX as usize) as u64,
                Time::ZERO,
            );
            let first_tick = Time::ZERO + p.tick;
            self.obs.on_instance_event(0, header);
            q.push(first_tick, Ev::SloTick);
        }
        sim::run(self, &mut q, None);
    }

    /// Finalizes the report; hands back the observer too.
    pub(crate) fn finish(mut self) -> (ClusterReport, O) {
        self.report.makespan_secs = self.last_completion.as_secs_f64();
        self.report.h2d_bytes = self.instances.iter().map(|i| i.plan.h2d_bytes()).sum();
        self.report.d2h_bytes = self.instances.iter().map(|i| i.plan.d2h_bytes()).sum();
        self.report.slow_read_bytes = self
            .instances
            .iter()
            .map(|i| i.plan.slow_read_bytes())
            .sum();
        self.report.slow_write_bytes = self
            .instances
            .iter()
            .map(|i| i.plan.slow_write_bytes())
            .sum();
        self.report.hbm_high_water_bytes = self
            .instances
            .iter()
            .map(|i| i.hbm.high_water())
            .max()
            .unwrap_or(0);
        if let Some(store) = &self.store {
            self.report.store_stats = *store.stats();
        }
        let mut faults = FaultReport {
            recompute_fallbacks: self.recompute_fallbacks,
            instance_crashes: self.instance_crashes,
            turns_rerouted: self.turns_rerouted,
            pressure_events: self.pressure_events,
            ..FaultReport::default()
        };
        if let Some(store) = &self.store {
            let fs = store.fault_stats();
            faults.read_retries = fs.read_retries;
            faults.read_failures = fs.read_failures;
            faults.write_retries = fs.write_retries;
            faults.write_failures = fs.write_failures;
            faults.corruptions_detected = fs.corruptions_detected;
        }
        let overload = OverloadReport {
            turns_shed: self.turns_shed,
            degraded_recomputes: self.degraded_recomputes,
            hard_truncations: self.hard_truncations,
            level_transitions: self.level_transitions,
            scale_ups: self.scale_ups,
            scale_downs: self.scale_downs,
            slo_attained: self.slo_attained,
            slo_missed: self.slo_missed,
            peak_instances: self.peak_instances as u64,
        };
        let instances: Vec<InstanceReport> = self.instances.iter().map(|i| i.report()).collect();
        let dedup = self
            .store
            .as_ref()
            .map(|s| s.dedup_stats())
            .unwrap_or_default();
        (
            ClusterReport {
                aggregate: self.report,
                router: self.router.label(),
                instances,
                faults,
                overload,
                dedup,
            },
            self.obs,
        )
    }

    /// External id of a session-table row.
    fn sid(&self, session: usize) -> SessionId {
        SessionId(self.trace.sessions[self.sessions[session].spec].id)
    }

    /// Builds the merged, owner-attributed queue view the shared store
    /// consults: per-queue positions interleaved round-robin (all heads
    /// first, ties by instance id), each session tagged with its owning
    /// instance. With one instance this is exactly that instance's queue.
    /// Every collection involved — the snapshot/order/owner scratch Vecs
    /// *and* the returned view itself — is a reusable `ClusterSim` buffer
    /// ([`QueueView::rebuild`] refills the retained maps), so a
    /// steady-state consultation allocates nothing. Callers hand the view
    /// back by assigning `self.scratch_view = view` after their last use.
    fn merged_view(&mut self) -> QueueView {
        sim::scope!("cluster.merged_view");
        let mut snapshot = std::mem::take(&mut self.scratch_snapshot);
        let mut triples = std::mem::take(&mut self.scratch_triples);
        let mut order = std::mem::take(&mut self.scratch_order);
        let mut owners = std::mem::take(&mut self.scratch_owners);
        triples.clear();
        {
            sim::scope!("sched.snapshot");
            for inst in &self.instances {
                snapshot.clear();
                inst.sched.snapshot_into(&mut snapshot);
                for (pos, &j) in snapshot.iter().enumerate() {
                    triples.push((pos as u32, inst.id, j));
                }
            }
        }
        triples.sort_unstable();
        order.clear();
        owners.clear();
        for &(_, inst_id, j) in triples.iter() {
            order.push(self.sid(self.jobs[j].session));
            owners.push(inst_id);
        }
        let mut view = std::mem::take(&mut self.scratch_view);
        view.rebuild(&order, &owners);
        self.scratch_snapshot = snapshot;
        self.scratch_triples = triples;
        self.scratch_order = order;
        self.scratch_owners = owners;
        view
    }

    /// Routes a session's arriving turn to an instance.
    fn route(&mut self, session: usize) -> u32 {
        sim::scope!("cluster.route");
        let mut loads = std::mem::take(&mut self.scratch_loads);
        loads.clear();
        loads.extend(self.instances.iter().map(|i| InstanceLoad {
            queued: i.sched.len(),
            batch: i.exec.batch.len(),
            alive: i.alive,
        }));
        let inst = self.router.route(self.sid(session).0, &loads);
        debug_assert!(inst < self.instances.len(), "router picked a real instance");
        self.scratch_loads = loads;
        inst as u32
    }

    /// Forwards buffered store events to an opted-in observer, keeping
    /// both streams in one commit order. `acting` is the instance whose
    /// pipeline step triggered the drain.
    fn pump_store_events(&mut self, acting: u32) {
        if !self.obs.wants_store_events() {
            return;
        }
        if let Some(store) = &mut self.store {
            for ev in store.drain_events() {
                self.obs.on_instance_store_event(acting, ev);
            }
        }
    }

    /// Runs the scheduler-aware prefetcher over the merged queue.
    /// Transfers are charged to each target session's owning instance
    /// (unowned sessions — e.g. demotion victims no longer queued — fall
    /// back to the `acting` instance's links).
    fn run_prefetch(&mut self, now: Time, acting: u32) {
        // Under recompute-only degradation (or harsher) the ladder sheds
        // speculative slow-tier bandwidth: no prefetching at all.
        if self.slo.is_some() && self.slo_state.level() >= OverloadLevel::RecomputeOnly {
            return;
        }
        sim::scope!("cluster.prefetch");
        let view = self.merged_view();
        let faulted = self.faults.is_some();
        let Some(store) = &mut self.store else {
            self.scratch_view = view;
            return;
        };
        // Prefetch read retries cost backoff wall time: the surviving
        // transfers start once it elapses. Fault-free runs keep the
        // infallible path untouched.
        let (transfers, start) = if faulted {
            let o = store.try_prefetch(now, &view);
            (o.transfers, now + o.backoff)
        } else {
            (store.prefetch(now, &view), now)
        };
        // Group each owner's transfers into one charge call so the hops
        // of a multi-hop promotion chain on that owner's links; owners
        // are visited in sorted order for determinism.
        let mut by_owner: BTreeMap<u32, Vec<store::Transfer>> = BTreeMap::new();
        for t in &transfers {
            let owner = view.owner(t.session).unwrap_or(acting);
            by_owner.entry(owner).or_default().push(*t);
        }
        for (owner, ts) in &by_owner {
            self.instances[*owner as usize].plan.charge(start, ts);
        }
        self.pump_store_events(acting);
        if self.obs.wants_store_events() {
            // The store planned the promotions; only the owning
            // instance's transfer stage knows when its slow-read link
            // completes them. One completion per session: block keying
            // promotes a chain chunk by chunk, so a session may own
            // several fast-arriving transfers from one pass.
            let mut completed = std::collections::BTreeSet::new();
            for t in &transfers {
                if t.to.is_fast() && completed.insert(t.session) {
                    let owner = view.owner(t.session).unwrap_or(acting);
                    let at = self.instances[owner as usize]
                        .plan
                        .fast_ready(t.session.0)
                        .unwrap_or(now);
                    self.obs.on_instance_store_event(
                        owner,
                        StoreEvent::PrefetchCompleted {
                            session: t.session.0,
                            instance: Some(owner),
                            at,
                        },
                    );
                }
            }
        }
        self.scratch_view = view;
    }

    /// Applies context-window truncation at turn arrival. Returns the new
    /// history length. Under [`OverloadLevel::HardTruncate`] the ladder
    /// shrinks the effective window, truncating harder to shrink every
    /// prefill.
    fn apply_truncation(
        &mut self,
        now: Time,
        session: usize,
        user: u64,
        measured: bool,
        inst: u32,
    ) -> u64 {
        let full = self.cfg.model.context_window as u64;
        let hard = self.slo.is_some() && self.slo_state.level() >= OverloadLevel::HardTruncate;
        let window = if hard {
            let fraction = self
                .slo
                .as_ref()
                .expect("checked above")
                .hard_truncate_window;
            ((full as f64 * fraction).floor() as u64).max(1)
        } else {
            full
        };
        let hist = self.sessions[session].hist_tokens;
        let out = truncate::truncate_history(window, self.cfg.truncation_ratio, hist, user);
        if !out.truncated {
            return hist;
        }
        if hard {
            self.hard_truncations += 1;
        }
        if measured {
            self.report.truncations.incr();
        }
        let sid = self.sid(session);
        let bytes = self.cfg.stored_kv_bytes(out.new_hist);
        let store = self
            .store
            .as_mut()
            .map(|s| s.as_mut() as &mut dyn StorePlanner);
        truncate::apply_store_effect(self.cfg.mode, store, sid, bytes, out.new_hist);
        self.sessions[session].hist_tokens = out.new_hist;
        self.obs
            .on_instance_event(inst, EngineEvent::truncated(sid.0, hist, out.new_hist, now));
        out.new_hist
    }

    /// Handles a turn arrival: routes it, creates the job, queues it on
    /// its instance, prefetches.
    fn on_turn_arrival(&mut self, now: Time, session: usize, q: &mut EventQueue<Ev>) {
        sim::scope!("cluster.turn_arrival");
        let arrival_index = self.turn_arrivals;
        self.turn_arrivals += 1;
        let measured = arrival_index >= self.cfg.warmup_turns;
        let spec = &self.trace.sessions[self.sessions[session].spec];
        let turn_idx = self.sessions[session].next_turn;
        let turn = &spec.turns[turn_idx];
        let user = (turn.user_tokens as u64).min(self.cfg.model.context_window as u64);
        let resp = turn.resp_tokens as u64;
        let content = spec.content;
        let ttft_deadline = turn.ttft_deadline;
        let inst = self.route(session);
        // SLO admission control: the ladder's shed rung and the bounded
        // inbox both reject with a typed event before the turn touches
        // the store or the session state.
        if self.slo.is_some() {
            let reason = if self.slo_state.level() >= OverloadLevel::Shed {
                Some("overload_shed")
            } else if !self.inboxes[inst as usize].try_accept() {
                Some("inbox_full")
            } else {
                None
            };
            if let Some(reason) = reason {
                let sid = self.sid(session);
                self.obs
                    .on_instance_event(inst, EngineEvent::turn_arrived(sid.0, turn_idx, now));
                self.obs
                    .on_instance_event(inst, EngineEvent::turn_shed(sid.0, turn_idx, reason, now));
                self.turns_shed += 1;
                if measured {
                    self.slo_state.note_shed();
                    self.slo_missed += 1;
                }
                // Terminal for the session: no job exists, and in the
                // closed loop its later turns never arrive.
                self.sessions_remaining -= 1;
                return;
            }
        }
        // Declare the session's token-content identity before anything
        // touches the store, so block hashing can recognise shared
        // prefixes from the very first save.
        if turn_idx == 0 {
            let sid = self.sid(session);
            if let Some(store) = &mut self.store {
                if store.keying() == KeyingMode::ContentAddressed {
                    let key = match content {
                        Some(c) => ContentKey {
                            shared_seed: c.shared_seed,
                            shared_tokens: c.shared_tokens,
                            private_seed: c.private_seed,
                            generation: 0,
                        },
                        None => ContentKey::private(sid.0),
                    };
                    store.register_content(sid, key);
                }
            }
        }
        self.obs.on_instance_event(
            inst,
            EngineEvent::turn_arrived(self.sid(session).0, turn_idx, now),
        );
        let hist = self.apply_truncation(now, session, user, measured, inst);
        self.jobs.push(Job::for_turn(
            session, inst, now, user, resp, hist, measured,
        ));
        let job_idx = self.jobs.len() - 1;
        let deadline = self
            .slo
            .as_ref()
            .map(|p| now + ttft_deadline.unwrap_or(p.ttft_target));
        self.jobs[job_idx].deadline = deadline;
        if self.slo.is_some() && self.slo_state.level() >= OverloadLevel::RecomputeOnly {
            self.jobs[job_idx].degraded = true;
        }
        match deadline {
            Some(d) => self.instances[inst as usize]
                .sched
                .enqueue_with_deadline(job_idx, now, d),
            None => self.instances[inst as usize].sched.enqueue(job_idx),
        }
        self.run_prefetch(now, inst);
        if self.instances[inst as usize].exec.gpu_action.is_none() {
            self.instances[inst as usize].exec.gpu_action = Some(Action::Sleep);
            q.push(now, Ev::GpuTick(inst));
        }
    }

    /// Consults the store for an instance's head job and classifies the
    /// access. The consultation (demand fetch, pinning) charges the
    /// owning instance's links. Returns (reused tokens, when the KV is
    /// staged in the fast tier, tier the KV was found in).
    fn consult_store(&mut self, now: Time, job_idx: usize) -> (u64, Time, Option<TierId>) {
        sim::scope!("cluster.consult");
        let job = &self.jobs[job_idx];
        let (session, hist, user, measured, inst) = (
            job.session,
            job.hist_tokens,
            job.user_tokens,
            job.measured,
            job.instance,
        );
        let sid = self.sid(session);
        let ca = self
            .store
            .as_ref()
            .is_some_and(|s| s.keying() == KeyingMode::ContentAddressed);
        // Under per-session keying a first turn has nothing to look up.
        // Under block keying it does: the turn's own input may share a
        // prefix (system prompt, parent context) with blocks other
        // sessions already stored, so the store is consulted regardless.
        if hist == 0 && !ca {
            self.obs.on_instance_event(
                inst,
                EngineEvent::consulted(sid.0, ConsultClass::NoHistory, 0, now),
            );
            return (0, now, None);
        }
        if measured && hist > 0 {
            self.report.resumption_turns.incr();
            self.instances[inst as usize].resumption_turns += 1;
        }
        if self.store.is_none() {
            // RE: always recompute.
            self.report.record_consult(ConsultClass::NoStore, measured);
            self.obs.on_instance_event(
                inst,
                EngineEvent::consulted(sid.0, ConsultClass::NoStore, 0, now),
            );
            return (0, now, None);
        }
        let view = self.merged_view();
        let faulted = self.faults.is_some();
        let cfg = &self.cfg;
        let store = self.store.as_mut().expect("checked above");
        let plan = &mut self.instances[inst as usize].plan;
        // The fallible consult path is only taken with a fault plan
        // installed, so fault-free runs stay byte-identical.
        let (consult, degraded) = if ca {
            // Block keying matches the whole next context — history plus
            // the arriving input — against the prefix trie.
            let ctx = hist + user;
            if faulted {
                let f = plan.consult_blocks_faulted(
                    now,
                    store.as_mut(),
                    sid,
                    ctx,
                    |tokens| cfg.stored_kv_bytes(tokens),
                    &view,
                );
                (f.consult, f.degraded)
            } else {
                let c = plan.consult_blocks(
                    now,
                    store.as_mut(),
                    sid,
                    ctx,
                    |tokens| cfg.stored_kv_bytes(tokens),
                    &view,
                );
                (c, None)
            }
        } else if faulted {
            let f = plan.consult_faulted(now, store.as_mut(), sid, hist, &view, |tokens| {
                cfg.stored_kv_bytes(tokens)
            });
            (f.consult, f.degraded)
        } else {
            let c = plan.consult(now, store.as_mut(), sid, hist, &view, |tokens| {
                cfg.stored_kv_bytes(tokens)
            });
            (c, None)
        };
        self.scratch_view = view;
        self.pump_store_events(inst);
        if let Some(reason) = degraded {
            self.recompute_fallbacks += 1;
            self.obs.on_instance_event(
                inst,
                EngineEvent::degraded_recompute(sid.0, reason.label(), now),
            );
        }
        self.report.record_consult(consult.class, measured);
        if measured {
            let me = &mut self.instances[inst as usize];
            match consult.class {
                ConsultClass::HitFast => me.hits_fast += 1,
                ConsultClass::HitSlow => me.hits_slow += 1,
                ConsultClass::Miss => me.misses += 1,
                ConsultClass::NoHistory | ConsultClass::NoStore => {}
            }
        }
        self.obs.on_instance_event(
            inst,
            EngineEvent::consulted(sid.0, consult.class, consult.reused, now),
        );
        (consult.reused, consult.staged, consult.tier)
    }

    /// The recompute-only consult path for overload-degraded jobs: the
    /// store is never touched (no fetch, no pin, no prefetch interest),
    /// so the turn prefills its whole context from scratch. Classified as
    /// [`ConsultClass::NoStore`] so hit/miss statistics stay honest.
    fn degraded_consult(&mut self, now: Time, job_idx: usize) -> (u64, Time, Option<TierId>) {
        let job = &self.jobs[job_idx];
        let (session, hist, measured, inst) =
            (job.session, job.hist_tokens, job.measured, job.instance);
        let sid = self.sid(session);
        if measured && hist > 0 {
            self.report.resumption_turns.incr();
            self.instances[inst as usize].resumption_turns += 1;
        }
        self.degraded_recomputes += 1;
        self.obs.on_instance_event(
            inst,
            EngineEvent::degraded_recompute(sid.0, "overload", now),
        );
        self.report.record_consult(ConsultClass::NoStore, measured);
        self.obs.on_instance_event(
            inst,
            EngineEvent::consulted(sid.0, ConsultClass::NoStore, 0, now),
        );
        (0, now, None)
    }

    /// Starts the prefill of instance `inst`'s head job. On `Err` the job
    /// cannot start at `now` (data or buffer not ready) and the value is
    /// the earliest time it could.
    fn try_admit(&mut self, now: Time, inst: u32, q: &mut EventQueue<Ev>) -> Result<(), Time> {
        sim::scope!("cluster.admit");
        let i = inst as usize;
        let job_idx = self.instances[i].sched.front().expect("caller checked");
        let gate = self.instances[i].plan.write_gate(now);
        if gate > now {
            if self.obs.wants_store_events() {
                let sid = self.sid(self.jobs[job_idx].session);
                self.obs.on_instance_store_event(
                    inst,
                    StoreEvent::WriteBufferStall {
                        session: sid.0,
                        until: gate,
                        at: now,
                    },
                );
            }
            return Err(self.defer(now, job_idx, gate));
        }
        // Consult the store the first time this job reaches the head; the
        // outcome (hit classification, pinning, demand fetch) sticks.
        // Degraded jobs skip the store entirely — no fetch, no pin.
        let (reused, staged, hit_tier) = match self.jobs[job_idx].consulted {
            Some(r) => r,
            None => {
                let r = if self.jobs[job_idx].degraded {
                    self.degraded_consult(now, job_idx)
                } else {
                    self.consult_store(now, job_idx)
                };
                self.jobs[job_idx].consulted = Some(r);
                r
            }
        };
        // KV still staging into the fast tier: decode meanwhile.
        if let Some(until) =
            scheduler::data_ready_defer(now, staged, self.instances[i].exec.batch.is_empty())
        {
            return Err(self.defer(now, job_idx, until));
        }
        // HBM residency (§2.4, Challenge 2): the new job's full context
        // plus its response must fit beside the decoding batch's live KV.
        let job = &self.jobs[job_idx];
        let job_peak = self
            .cfg
            .model
            .kv_bytes(job.hist_tokens + job.user_tokens + job.resp_tokens);
        let reserved = self.instances[i].hbm.reserved_kv(
            &self.cfg.model,
            &self.instances[i].exec.batch,
            &self.jobs,
        );
        if !scheduler::hbm_fits(
            reserved,
            job_peak,
            self.instances[i].hbm.budget(),
            self.instances[i].exec.batch.is_empty(),
        ) {
            // Decode until a job retires and frees HBM.
            return Err(self.defer(now, job_idx, now));
        }
        self.instances[i].sched.pop_front();
        if !self.inboxes.is_empty() {
            self.inboxes[i].release();
        }
        let job = &self.jobs[job_idx];
        // Summed before subtracting: under block keying the matched
        // prefix can extend into the new input, so `reused` may exceed
        // the history alone.
        let computed = job.hist_tokens + job.user_tokens - reused;
        let (total, comp, stall) = exec::prefill_timing(
            &self.cfg,
            &mut self.instances[i].plan,
            now,
            reused,
            computed,
            staged,
        );
        let wait = staged.saturating_since(now);
        let total = total.max(wait + comp);
        self.instances[i].hbm.note_reserved(reserved + job_peak);
        let sid = self.sid(self.jobs[job_idx].session);
        let job = &mut self.jobs[job_idx];
        job.reused_tokens = reused;
        job.computed_tokens = computed;
        job.admitted_at = now;
        job.prefill_secs = comp.as_secs_f64();
        self.report.record_admission(
            now.as_secs_f64(),
            comp.as_secs_f64(),
            total.as_secs_f64(),
            (stall.max(wait)).as_secs_f64(),
            job.measured,
            job.hist_tokens + job.user_tokens,
            computed,
        );
        let chunked = match exec::plan_prefill(self.cfg.chunked_prefill_tokens, computed, total) {
            PrefillIssue::Chunked {
                n_chunks,
                chunk_dur,
            } => {
                self.issue_chunk(now, q, inst, job_idx, (n_chunks - 1) as u32, chunk_dur);
                true
            }
            PrefillIssue::Monolithic => {
                self.instances[i].exec.gpu_action = Some(Action::Prefill { job: job_idx });
                q.push(now + total, Ev::GpuTick(inst));
                false
            }
        };
        self.obs.on_instance_event(
            inst,
            EngineEvent::admitted(sid.0, reused, computed, chunked, now),
        );
        // Overlap accounting for the span profiler: the KV transfer this
        // reuse requires vs. the share of it left visible as a stall.
        let load = if reused == 0 {
            Dur::ZERO
        } else if self.cfg.medium == Medium::DramDisk {
            self.instances[i]
                .plan
                .h2d_duration_of(self.cfg.stored_kv_bytes(reused))
        } else {
            // HBM-backed fast tiers hold reused KV device-resident; the
            // only transfer on the critical path is the residual staging
            // wait.
            wait
        };
        self.obs.on_instance_event(
            inst,
            EngineEvent::prefill_timed(
                sid.0,
                load.as_secs_f64(),
                comp.as_secs_f64(),
                (stall.max(wait)).as_secs_f64(),
                if reused == 0 {
                    None
                } else {
                    hit_tier.map(|t| t.0)
                },
                now,
            ),
        );
        self.obs.on_instance_event(
            inst,
            EngineEvent::hbm_reserved(
                sid.0,
                reserved + job_peak,
                self.instances[i].hbm.budget(),
                now,
            ),
        );
        // The queue head moved: give the prefetcher a chance to stage the
        // next jobs' KV while this prefill runs.
        self.run_prefetch(now, inst);
        Ok(())
    }

    /// Reports a deferred admission to the observer; returns `until`.
    fn defer(&mut self, now: Time, job_idx: usize, until: Time) -> Time {
        let job = &self.jobs[job_idx];
        let inst = job.instance;
        let sid = self.sid(job.session);
        self.obs
            .on_instance_event(inst, EngineEvent::deferred(sid.0, until, now));
        until
    }

    /// Starts the next slice of a paused chunked prefill on `inst`.
    fn issue_chunk(
        &mut self,
        now: Time,
        q: &mut EventQueue<Ev>,
        inst: u32,
        job: usize,
        chunks_left: u32,
        chunk_dur: Dur,
    ) {
        self.instances[inst as usize].exec.gpu_action = Some(Action::PrefillChunk {
            job,
            chunks_left,
            chunk_dur,
        });
        q.push(now + chunk_dur, Ev::GpuTick(inst));
    }

    /// Completes a prefill on `inst`: records TTFT (admission → first
    /// token; queue wait is reported separately), flushes the
    /// prefill-phase KV through the instance's write stream (§3.2.2),
    /// moves the job into the instance's decode batch.
    fn complete_prefill(&mut self, now: Time, inst: u32, job_idx: usize) {
        let i = inst as usize;
        let job = &mut self.jobs[job_idx];
        job.ctx_tokens = job.hist_tokens + job.user_tokens;
        job.decode_start = now;
        let (session, measured, computed) = (job.session, job.measured, job.computed_tokens);
        let deadline = job.deadline;
        let ttft = (now - job.admitted_at).as_secs_f64();
        let queue_wait = (job.admitted_at - job.arrival).as_secs_f64();
        if self.slo.is_some() && measured {
            // Attainment is end-to-end: the deadline is absolute from the
            // turn's arrival, so queue wait counts against it.
            let met = deadline.is_none_or(|d| now <= d);
            if met {
                self.slo_attained += 1;
            } else {
                self.slo_missed += 1;
            }
            self.slo_state.note_first_token(met);
        }
        self.report.record_first_token(measured, ttft, queue_wait);
        if self.cfg.mode != Mode::Recompute {
            let bytes = self.cfg.stored_kv_bytes(computed);
            self.instances[i].plan.d2h_transfer(now, bytes);
        }
        self.instances[i].exec.batch.push(job_idx);
        self.obs.on_instance_event(
            inst,
            EngineEvent::prefill_done(self.sid(session).0, ttft, now),
        );
    }

    /// Retires a finished job on `inst`: saves KV to the shared store,
    /// updates the session, schedules the next turn.
    fn retire_job(&mut self, now: Time, inst: u32, job_idx: usize, q: &mut EventQueue<Ev>) {
        sim::scope!("cluster.retire");
        self.last_completion = now;
        self.instances[inst as usize].last_completion = now;
        let job = &self.jobs[job_idx];
        let (session, measured, resp) = (job.session, job.measured, job.resp_tokens);
        let new_hist = job.hist_tokens + job.user_tokens + job.resp_tokens;
        if measured {
            self.report
                .decode_latency
                .push((now - job.decode_start).as_secs_f64());
        }
        // Save the whole session's KV back to the store; only the decode
        // phase's fresh tokens still need the device→host hop (the prefill
        // share was flushed at prefill completion). Demotions the save
        // triggers charge their victim's owning instance.
        if self.cfg.mode != Mode::Recompute {
            let sid = self.sid(session);
            let total_bytes = self.cfg.stored_kv_bytes(new_hist);
            let view = self.merged_view();
            let faulted = self.faults.is_some();
            let store = self.store.as_mut().expect("store exists outside RE");
            // Write retries cost backoff wall time before the device→host
            // flush can start; an exhausted save drops the stale entry
            // (the next turn re-prefills). Fault-free runs keep the
            // infallible path untouched.
            let (transfers, backoff) = if faulted {
                let o = store.try_save(sid, total_bytes, new_hist, now, &view);
                (o.transfers, o.backoff)
            } else {
                let (t, _saved) = store.save(sid, total_bytes, new_hist, now, &view);
                (t, Dur::ZERO)
            };
            for t in &transfers {
                let owner = view.owner(t.session).unwrap_or(inst) as usize;
                self.instances[owner]
                    .plan
                    .charge(now, std::slice::from_ref(t));
            }
            self.scratch_view = view;
            self.pump_store_events(inst);
            let done = self.instances[inst as usize]
                .plan
                .d2h_transfer(now + backoff, self.cfg.stored_kv_bytes(resp));
            if !self.cfg.async_save {
                // Synchronous saving blocks the GPU until the write-back
                // completes (Fig 8a).
                self.report.stall_secs += done.saturating_since(now).as_secs_f64();
            }
        }
        // Advance the session.
        let st = &mut self.sessions[session];
        st.hist_tokens = new_hist;
        st.next_turn += 1;
        let spec = &self.trace.sessions[st.spec];
        if st.next_turn < spec.turns.len() {
            let think = spec.turns[st.next_turn - 1].think;
            q.push(now + think, Ev::TurnArrival(session));
        } else {
            self.sessions_remaining -= 1;
            self.report.sessions_done.incr();
        }
        self.instances[inst as usize].turns_done += 1;
        self.obs.on_instance_event(
            inst,
            EngineEvent::retired(self.sid(session).0, new_hist, now),
        );
        // Space freed by the save/demotions may unblock prefetches.
        self.run_prefetch(now, inst);
    }

    /// Handles a scripted instance crash: marks the instance dead, tells
    /// the router, and drains everything it held — queued jobs, the
    /// decode batch, and any in-flight prefill — re-routing each turn to
    /// a surviving instance as a fresh (un-consulted) job. Consult-time
    /// pins are released so the shared store never leaks a dead
    /// instance's reservations; the HBM ledger reconciles automatically
    /// because reservations are derived from live batch contents.
    ///
    /// Crashing the last alive instance would strand the workload, so
    /// such crashes are skipped (as are crashes of already-dead or
    /// out-of-range instances).
    fn on_crash(&mut self, now: Time, inst: u32, q: &mut EventQueue<Ev>) {
        let i = inst as usize;
        if i >= self.instances.len() || !self.instances[i].alive {
            return;
        }
        if self.instances.iter().filter(|x| x.alive).count() <= 1 {
            return;
        }
        self.instances[i].alive = false;
        self.instance_crashes += 1;
        self.router.on_instance_down(i);
        self.obs
            .on_instance_event(inst, EngineEvent::instance_crashed(inst, now));
        self.drain_instance(now, inst, q);
    }

    /// Drains everything a just-retired instance held — queued jobs, the
    /// decode batch, and any in-flight prefill — re-routing each turn to
    /// a surviving instance as a fresh (un-consulted) job. Shared by the
    /// crash path and the autoscaler's clean scale-down.
    fn drain_instance(&mut self, now: Time, inst: u32, q: &mut EventQueue<Ev>) {
        let i = inst as usize;
        // Queue order first, then the decode batch, then the GPU's
        // in-flight prefill — a deterministic re-queue order.
        let mut orphans: Vec<usize> = Vec::new();
        while let Some(j) = self.instances[i].sched.pop_front() {
            if !self.inboxes.is_empty() {
                self.inboxes[i].release();
            }
            orphans.push(j);
        }
        // Orphans past this point were already admitted — the decode
        // batch delivered (and recorded) its first tokens, an in-flight
        // prefill recorded its admission — so their re-run is recovery
        // work, not a second measured turn.
        let admitted_from = orphans.len();
        orphans.append(&mut self.instances[i].exec.batch);
        if let Some((job, _, _)) = self.instances[i].exec.pending_chunk.take() {
            if !orphans.contains(&job) {
                orphans.push(job);
            }
        }
        match self.instances[i].exec.gpu_action.take() {
            Some(Action::Prefill { job }) | Some(Action::PrefillChunk { job, .. })
                if !orphans.contains(&job) =>
            {
                orphans.push(job);
            }
            _ => {}
        }
        for (pos, j) in orphans.into_iter().enumerate() {
            let session = self.jobs[j].session;
            let sid = self.sid(session);
            // Release the consult-time pin and forget the consult: the
            // new home must re-derive reuse from the store's current
            // state (the dead instance's staging clocks are gone).
            if self.jobs[j].consulted.is_some() {
                if let Some(store) = &mut self.store {
                    store.unpin(sid);
                }
            }
            let job = &mut self.jobs[j];
            job.consulted = None;
            job.reused_tokens = 0;
            job.computed_tokens = 0;
            job.ctx_tokens = 0;
            job.remaining_decode = job.resp_tokens;
            job.prefill_secs = 0.0;
            job.admitted_at = Time::ZERO;
            job.decode_start = Time::ZERO;
            if pos >= admitted_from {
                job.measured = false;
            }
            let to = self.route(session);
            self.jobs[j].instance = to;
            // Recovery re-queues are never shed: they were already
            // admitted once, so the new home's inbox takes them even
            // past capacity (the overflow is bounded by the dead
            // instance's own bounded occupancy).
            if !self.inboxes.is_empty() {
                self.inboxes[to as usize].force_accept();
            }
            match self.jobs[j].deadline {
                Some(d) => self.instances[to as usize]
                    .sched
                    .enqueue_with_deadline(j, now, d),
                None => self.instances[to as usize].sched.enqueue(j),
            }
            self.turns_rerouted += 1;
            self.obs
                .on_instance_event(to, EngineEvent::turn_rerouted(sid.0, inst, to, now));
            if self.instances[to as usize].exec.gpu_action.is_none() {
                self.instances[to as usize].exec.gpu_action = Some(Action::Sleep);
                q.push(now, Ev::GpuTick(to));
            }
        }
    }

    /// One SLO decision tick: evaluate the ladder and the autoscaler on
    /// the observable signals (queue depth per alive instance, TTFT burn
    /// since the previous tick), emit transition events, and re-arm.
    fn on_slo_tick(&mut self, now: Time, q: &mut EventQueue<Ev>) {
        let Some(p) = self.slo.clone() else {
            return;
        };
        let n_alive = self.instances.iter().filter(|x| x.alive).count();
        let depth: usize = self
            .instances
            .iter()
            .filter(|x| x.alive)
            .map(|x| x.sched.len())
            .sum();
        let depth_per_instance = depth as f64 / n_alive.max(1) as f64;
        let d = self.slo_state.on_tick(&p, now, depth_per_instance, n_alive);
        if let Some((from, to)) = d.transition {
            self.level_transitions += 1;
            self.obs.on_instance_event(
                0,
                EngineEvent::overload_level(from.label(), to.label(), now),
            );
        }
        match d.scale {
            Some(ScaleDecision::Up) => self.scale_up(now),
            Some(ScaleDecision::Down) => self.scale_down(now, q),
            None => {}
        }
        if self.sessions_remaining > 0 {
            q.push(now + p.tick, Ev::SloTick);
        }
    }

    /// Brings one instance into service: revives the lowest-indexed
    /// departed instance if any, otherwise grows the fleet with a fresh
    /// one (same engine config, same queueing policy, same fault plan).
    fn scale_up(&mut self, now: Time) {
        let id = match self.instances.iter().position(|x| x.departed) {
            Some(i) => {
                self.instances[i].alive = true;
                self.instances[i].departed = false;
                i as u32
            }
            None => {
                let id = self.instances.len() as u32;
                let mut inst = Self::build_instance(id, &self.cfg, self.slo.as_ref());
                if let Some(plan) = &self.faults {
                    inst.plan.install_faults(plan, id);
                }
                self.instances.push(inst);
                if let Some(p) = &self.slo {
                    self.inboxes.push(BoundedInbox::new(p.inbox_capacity));
                }
                id
            }
        };
        self.scale_ups += 1;
        let n_alive = self.instances.iter().filter(|x| x.alive).count();
        self.peak_instances = self.peak_instances.max(n_alive);
        self.obs
            .on_instance_event(id, EngineEvent::scale_up(id, n_alive as u32, now));
        // No GPU wake needed: the new instance is empty and the router's
        // next dispatch sees it alive.
    }

    /// Retires the highest-indexed alive instance cleanly: marks it
    /// departed (not crashed), tells the router, and reroutes everything
    /// it held through the crash path's drain, so no in-flight turn is
    /// stranded.
    fn scale_down(&mut self, now: Time, q: &mut EventQueue<Ev>) {
        let n_alive = self.instances.iter().filter(|x| x.alive).count();
        if n_alive <= 1 {
            return;
        }
        let Some(i) = self.instances.iter().rposition(|x| x.alive) else {
            return;
        };
        self.instances[i].alive = false;
        self.instances[i].departed = true;
        self.router.on_instance_down(i);
        self.scale_downs += 1;
        let inst = i as u32;
        self.obs.on_instance_event(
            inst,
            EngineEvent::scale_down(inst, (n_alive - 1) as u32, now),
        );
        self.drain_instance(now, inst, q);
    }

    /// Handles a scripted DRAM pressure spike: squeezes the store's DRAM
    /// tier to the plan's fraction, charging the demotions to each
    /// victim's owning instance.
    fn on_pressure(&mut self, now: Time, idx: usize) {
        let Some(p) = self.faults.as_ref().and_then(|f| f.pressure.get(idx)) else {
            return;
        };
        let fraction = p.fraction;
        self.pressure_events += 1;
        let view = self.merged_view();
        let Some(store) = &mut self.store else {
            self.scratch_view = view;
            return;
        };
        let transfers = store.apply_pressure(now, fraction, &view);
        for t in &transfers {
            let owner = view.owner(t.session).unwrap_or(0) as usize;
            self.instances[owner]
                .plan
                .charge(now, std::slice::from_ref(t));
        }
        self.scratch_view = view;
        self.pump_store_events(0);
    }

    /// Picks instance `inst`'s next action after the previous one
    /// completed.
    fn schedule_next(&mut self, now: Time, inst: u32, q: &mut EventQueue<Ev>) {
        let i = inst as usize;
        // A paused chunked prefill resumes before anything else.
        if let Some((job, chunks_left, chunk_dur)) = self.instances[i].exec.pending_chunk.take() {
            self.issue_chunk(now, q, inst, job, chunks_left.saturating_sub(1), chunk_dur);
            return;
        }
        // Admission first: prefill of waiting jobs blocks decoding, which
        // is the continuous-batching behaviour the paper describes.
        if !self.instances[i].sched.is_empty()
            && self.instances[i].exec.batch.len() < self.cfg.max_batch
        {
            match self.try_admit(now, inst, q) {
                Ok(()) => return,
                Err(ready_at) => {
                    if self.instances[i].exec.batch.is_empty() {
                        // Nothing else to run: stall until ready.
                        self.instances[i].exec.gpu_action = Some(Action::Sleep);
                        self.report.stall_secs += (ready_at - now).as_secs_f64();
                        q.push(ready_at, Ev::GpuTick(inst));
                        return;
                    }
                    // Fall through to decode while the buffer drains.
                }
            }
        }
        if !self.instances[i].exec.batch.is_empty() {
            let dur = self.instances[i]
                .exec
                .decode_iter_dur(&self.cfg, &self.jobs);
            self.report
                .record_decode_iter(dur.as_secs_f64(), Some(now.as_secs_f64()));
            self.instances[i].exec.gpu_action = Some(Action::Decode);
            q.push(now + dur, Ev::GpuTick(inst));
            return;
        }
        // Idle: a future TurnArrival will wake this instance.
        self.instances[i].exec.gpu_action = None;
    }
}

impl<O: EngineObserver> World for ClusterSim<O> {
    type Event = Ev;

    fn handle(&mut self, now: Time, ev: Ev, q: &mut EventQueue<Ev>) {
        sim::scope!("cluster.dispatch");
        match ev {
            Ev::TurnArrival(session) => self.on_turn_arrival(now, session, q),
            Ev::Sweep => {
                if let Some(store) = &mut self.store {
                    store.expire(now);
                }
                self.pump_store_events(0);
                if self.sessions_remaining > 0 {
                    q.push(now + Dur::from_secs_f64(30.0), Ev::Sweep);
                }
            }
            Ev::Crash(inst) => self.on_crash(now, inst, q),
            Ev::Pressure(idx) => self.on_pressure(now, idx),
            Ev::SloTick => self.on_slo_tick(now, q),
            Ev::GpuTick(inst) => {
                let i = inst as usize;
                // Ticks scheduled before a crash landed: the instance is
                // gone and its work was already re-routed.
                if !self.instances[i].alive {
                    return;
                }
                match self.instances[i].exec.gpu_action.take() {
                    Some(Action::Prefill { job }) => self.complete_prefill(now, inst, job),
                    Some(Action::PrefillChunk {
                        job,
                        chunks_left,
                        chunk_dur,
                    }) => {
                        if chunks_left == 0 {
                            self.complete_prefill(now, inst, job);
                        } else if self.instances[i].exec.batch.is_empty() {
                            // Nothing to piggyback: run the next slice.
                            self.issue_chunk(now, q, inst, job, chunks_left - 1, chunk_dur);
                            return;
                        } else {
                            // Let one decode iteration through, then
                            // resume (schedule_next picks it back up). Its
                            // timeline span is covered by the admission.
                            self.instances[i].exec.pending_chunk =
                                Some((job, chunks_left, chunk_dur));
                            let dur = self.instances[i]
                                .exec
                                .decode_iter_dur(&self.cfg, &self.jobs);
                            self.report.record_decode_iter(dur.as_secs_f64(), None);
                            self.instances[i].exec.gpu_action = Some(Action::Decode);
                            q.push(now + dur, Ev::GpuTick(inst));
                            return;
                        }
                    }
                    Some(Action::Decode) => {
                        let finished = self.instances[i].exec.advance_decode(&mut self.jobs);
                        for j in finished {
                            self.retire_job(now, inst, j, q);
                        }
                    }
                    Some(Action::Sleep) | None => {}
                }
                self.schedule_next(now, inst, q);
            }
        }
    }
}
