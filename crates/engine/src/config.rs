//! Engine configuration: serving modes, cache mediums and knobs.

use models::{ClusterSpec, CostModel, ModelSpec};
use store::StoreConfig;

/// How the engine treats KV caches across turns.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// CachedAttention (CA): save KV to AttentionStore on session
    /// deactivation, reuse on resumption, truncate KV directly on context
    /// overflow (decoupled positional encoding, §3.4).
    CachedAttention,
    /// Recomputation baseline (RE): discard KV after every turn, re-prefill
    /// all historical tokens, token-truncate on overflow.
    Recompute,
    /// Overflow baseline (OF, §4.3.4): CachedAttention but with positional
    /// encodings embedded in the stored KV, so every context overflow
    /// invalidates the session's cache.
    CoupledOverflow,
}

impl Mode {
    /// Short label used in reports.
    pub fn label(self) -> &'static str {
        match self {
            Mode::CachedAttention => "CA",
            Mode::Recompute => "RE",
            Mode::CoupledOverflow => "OF",
        }
    }
}

/// Which storage hierarchy backs AttentionStore (Fig 24).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Medium {
    /// Fast tier = host DRAM (PCIe hop), slow tier = SSD. The paper's
    /// full CachedAttention configuration.
    DramDisk,
    /// Fast tier = spare HBM (free to access), slow tier = host DRAM.
    HbmDram,
    /// Spare HBM only (the LMDeploy-style baseline); no slow tier.
    HbmOnly,
}

/// Complete configuration of one serving run.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Serving mode.
    pub mode: Mode,
    /// Served model.
    pub model: ModelSpec,
    /// Hardware.
    pub cluster: ClusterSpec,
    /// Latency model.
    pub cost: CostModel,
    /// AttentionStore sizing/policy (ignored in [`Mode::Recompute`]).
    pub store: StoreConfig,
    /// Storage hierarchy backing the store.
    pub medium: Medium,
    /// Continuous-batching slot count (paper: 24).
    pub max_batch: usize,
    /// Layer-wise pre-loading on/off (Fig 19's NO-PL ablation).
    pub preload: bool,
    /// Read buffer depth in layers (§3.2.1).
    pub read_buffer_layers: u32,
    /// Asynchronous saving on/off (Fig 20's ablation).
    pub async_save: bool,
    /// HBM write buffer in bytes (§3.2.2): how much un-flushed KV may
    /// outlive its job before the next job is delayed.
    pub write_buffer_bytes: u64,
    /// Fraction of the context dropped on overflow (paper: 0.5).
    pub truncation_ratio: f64,
    /// Stored/transferred fraction of the raw KV bytes, modelling KV
    /// quantization or compression applied before saving (the orthogonal
    /// techniques §5 cites, e.g. int4 ≈ 0.25). Affects store footprints
    /// and transfer times, never GPU compute. 1.0 = uncompressed.
    pub kv_compression: f64,
    /// Optional Sarathi-style chunked prefill (the paper's reference
    /// \[1\]): prefills longer than this many computed tokens are split
    /// into chunks with one decode iteration piggybacked between chunks,
    /// so long prefills stop stalling the decoding batch. `None` =
    /// monolithic prefills (the paper's setting).
    pub chunked_prefill_tokens: Option<u64>,
    /// Number of leading turn arrivals excluded from metrics (§4.2 warms
    /// up on the first 10K of 52K turns).
    pub warmup_turns: usize,
}

impl EngineConfig {
    /// The paper's end-to-end setup for `model` (§4.1): LLaMA-13B runs on
    /// two GPUs, the larger models on four; 24 batch slots; 128 GB DRAM +
    /// 10 TB SSD; scheduler-aware store; pre-loading and async saving on.
    pub fn paper(mode: Mode, model: ModelSpec) -> Self {
        let n_gpus = if model.n_params <= 14_000_000_000 {
            2
        } else {
            4
        };
        let cluster = ClusterSpec::paper_testbed().with_gpus(n_gpus);
        let store = StoreConfig {
            tiers: cluster.tiers.clone(),
            default_session_bytes: model.kv_bytes(1500),
            ..StoreConfig::default()
        };
        EngineConfig {
            mode,
            model,
            cluster,
            cost: CostModel::paper_system(),
            store,
            medium: Medium::DramDisk,
            max_batch: 24,
            preload: true,
            read_buffer_layers: 15,
            async_save: true,
            write_buffer_bytes: 2_000_000_000,
            truncation_ratio: 0.5,
            kv_compression: 1.0,
            chunked_prefill_tokens: None,
            warmup_turns: 0,
        }
    }

    /// Bytes of stored/transferred KV for `tokens` tokens after the
    /// configured compression: `kv_bytes(tokens) · kv_compression`,
    /// truncated to whole bytes. GPU compute always sees the raw size;
    /// only the store footprint and link transfers shrink.
    pub fn stored_kv_bytes(&self, tokens: u64) -> u64 {
        (self.model.kv_bytes(tokens) as f64 * self.kv_compression) as u64
    }

    /// Returns a copy with chunked prefill at the given chunk size.
    pub fn with_chunked_prefill(mut self, tokens: u64) -> Self {
        assert!(tokens > 0, "chunk size must be positive");
        self.chunked_prefill_tokens = Some(tokens);
        self
    }

    /// Returns a copy with KV compression at `ratio` of the raw bytes.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < ratio <= 1`.
    pub fn with_kv_compression(mut self, ratio: f64) -> Self {
        assert!(ratio > 0.0 && ratio <= 1.0, "invalid compression {ratio}");
        self.kv_compression = ratio;
        self
    }

    /// Returns a copy with the given warmup turn count.
    pub fn with_warmup(mut self, turns: usize) -> Self {
        self.warmup_turns = turns;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config_sizes_gpus_by_model() {
        let small = EngineConfig::paper(Mode::CachedAttention, ModelSpec::llama2_13b());
        assert_eq!(small.cluster.n_gpus, 2);
        let big = EngineConfig::paper(Mode::CachedAttention, ModelSpec::llama2_70b());
        assert_eq!(big.cluster.n_gpus, 4);
        assert_eq!(big.max_batch, 24);
        assert!(big.preload && big.async_save);
    }

    #[test]
    fn mode_labels() {
        assert_eq!(Mode::CachedAttention.label(), "CA");
        assert_eq!(Mode::Recompute.label(), "RE");
        assert_eq!(Mode::CoupledOverflow.label(), "OF");
    }
}
