#![warn(missing_docs)]

//! The LLM serving engine of the CachedAttention reproduction.
//!
//! This crate ties the substrates together into the system the paper
//! evaluates:
//!
//! - [`EngineConfig`] / [`Mode`] / [`Medium`]: a serving setup — which
//!   model, which hardware, CachedAttention (`CA`) vs recomputation
//!   (`RE`) vs the coupled-positional-encoding overflow baseline (`OF`),
//!   and which storage hierarchy backs AttentionStore.
//! - [`overlap`]: the layer-wise pre-loading and asynchronous saving
//!   timing models (§3.2, Figures 6–8, ablated in Figures 18–20).
//! - [`ServingSim`] / [`run_trace`]: the discrete-event serving simulator
//!   with closed-loop multi-turn sessions, continuous batching, and
//!   AttentionStore integration.
//! - [`RunReport`]: every metric the paper's evaluation reports.

mod config;
pub mod overlap;
mod report;
mod serving;

pub use config::{EngineConfig, Medium, Mode};
pub use report::RunReport;
pub use serving::{run_paper_workload, run_trace, ServingSim};
