#![warn(missing_docs)]

//! The LLM serving engine of the CachedAttention reproduction.
//!
//! This crate ties the substrates together into the system the paper
//! evaluates. The engine is a staged pipeline around a thin
//! discrete-event orchestrator:
//!
//! - [`EngineConfig`] / [`Mode`] / [`Medium`]: a serving setup — which
//!   model, which hardware, CachedAttention (`CA`) vs recomputation
//!   (`RE`) vs the coupled-positional-encoding overflow baseline (`OF`),
//!   and which storage hierarchy backs AttentionStore.
//! - [`scheduler`]: the job queue ([`scheduler::SchedulerPolicy`], FCFS
//!   by default), the pure admission predicates, and the §3.3 look-ahead
//!   window arithmetic.
//! - [`transfer`]: the four bandwidth links (h2d/d2h/slow-rd/slow-wr),
//!   store consultation, fast-tier staging and write-buffer gating.
//! - [`hbm`]: the live-KV HBM budget and high-water ledger (§2.4).
//! - [`truncate`]: the context-overflow policy (§3.4).
//! - [`exec`]: prefill/decode timing, chunked-prefill issue and the
//!   continuous decode batch.
//! - [`overlap`]: the layer-wise pre-loading and asynchronous saving
//!   timing models (§3.2, Figures 6–8, ablated in Figures 18–20).
//! - [`ServingSim`] / [`run_trace`]: the single-instance orchestrator
//!   dispatching closed-loop multi-turn sessions over those stages;
//!   [`run_traced`] additionally collects the [`EngineEvent`] stream
//!   through the [`EngineObserver`] hook.
//! - [`ClusterSim`] / [`run_cluster`]: the N-instance generalization —
//!   per-instance [`EngineInstance`] pipelines behind a [`router`]
//!   ([`RouterKind`]), all sharing one AttentionStore through a merged,
//!   owner-attributed queue view. [`ServingSim`] is its single-instance
//!   facade.
//! - [`slo`]: the overload-robustness layer — per-turn TTFT deadlines
//!   (EDF queueing), a deterministic admission/degradation ladder and a
//!   queue-driven autoscaler, all optional and off by default.
//! - [`RunReport`] / [`ClusterReport`]: every metric the paper's
//!   evaluation reports, plus per-instance breakdowns.

mod cluster;
mod config;
pub mod events;
pub mod exec;
pub mod hbm;
mod instance;
pub mod overlap;
mod report;
pub mod router;
pub mod scheduler;
mod serving;
pub mod slo;
pub mod transfer;
pub mod truncate;

pub use cluster::{ClusterConfig, ClusterReport, ClusterSim, Ev, FaultReport, OverloadReport};
pub use config::{EngineConfig, Medium, Mode};
pub use events::{
    CoalescedLog, ConsultClass, EngineEvent, EngineObserver, EventLog, LogEntry, NullObserver,
};
pub use instance::{EngineInstance, InstanceReport};
pub use report::RunReport;
pub use router::{InstanceLoad, LeastLoaded, RouterKind, RouterPolicy, SessionAffinity};
pub use serving::ServingSim;
pub use slo::{AutoscalePolicy, OverloadLevel, SloPolicy};

use models::ModelSpec;
use workload::Trace;

/// Runs `cfg` over `trace` and returns the collected report.
///
/// # Examples
///
/// ```
/// use engine::{run_trace, EngineConfig, Mode};
/// use models::ModelSpec;
/// use workload::{Generator, ShareGptProfile};
///
/// let trace = Generator::new(ShareGptProfile::default(), 1).trace(20);
/// let cfg = EngineConfig::paper(Mode::CachedAttention, ModelSpec::llama2_13b());
/// let report = run_trace(cfg, trace);
/// assert_eq!(report.sessions_done.get(), 20);
/// assert!(report.hit_rate() > 0.5);
/// ```
pub fn run_trace(cfg: EngineConfig, trace: Trace) -> RunReport {
    ServingSim::run(cfg, trace)
}

/// Runs `cfg` over `trace` with `obs` attached, returning the report and
/// the observer back. This is the hook external telemetry layers build
/// on: the observer sees every committed pipeline step (and, when it
/// opts in via [`EngineObserver::wants_store_events`], every store
/// placement decision) without being able to influence the run.
pub fn run_with_observer<O: EngineObserver>(
    cfg: EngineConfig,
    trace: Trace,
    obs: O,
) -> (RunReport, O) {
    let mut world = ServingSim::with_observer(cfg, trace, obs);
    world.drive();
    world.finish()
}

/// Runs `cfg` over `trace` with an [`EventLog`] attached, returning the
/// report together with the full [`EngineEvent`] stream in commit order.
pub fn run_traced(cfg: EngineConfig, trace: Trace) -> (RunReport, Vec<EngineEvent>) {
    let (report, log) = run_with_observer(cfg, trace, EventLog::new());
    (report, log.into_events())
}

/// Runs a cluster of identical instances sharing one AttentionStore and
/// returns the aggregate-plus-per-instance report. With
/// `n_instances == 1` this is exactly [`run_trace`].
pub fn run_cluster(cfg: ClusterConfig, trace: Trace) -> ClusterReport {
    ClusterSim::run(cfg, trace)
}

/// Runs a cluster with `obs` attached, returning the report and the
/// observer back. The observer's per-instance hooks
/// ([`EngineObserver::on_instance_event`] /
/// [`EngineObserver::on_instance_store_event`]) see which instance each
/// step ran on.
pub fn run_cluster_with_observer<O: EngineObserver>(
    cfg: ClusterConfig,
    trace: Trace,
    obs: O,
) -> (ClusterReport, O) {
    let mut world = ClusterSim::with_observer(cfg, trace, obs);
    world.drive();
    world.finish()
}

/// Convenience: the paper's end-to-end run for one model and mode.
pub fn run_paper_workload(
    mode: Mode,
    model: ModelSpec,
    trace: Trace,
    warmup_turns: usize,
) -> RunReport {
    let cfg = EngineConfig::paper(mode, model).with_warmup(warmup_turns);
    run_trace(cfg, trace)
}
