//! Overlapped KV cache access timing (§3.2).
//!
//! Layer-wise pre-loading (§3.2.1) pipelines the per-layer KV transfers
//! from host memory to HBM against the per-layer prefill compute of the
//! *new* tokens. The read stream may run ahead of the execution stream by
//! at most the buffer depth, and — with a read buffer — may begin before
//! the job starts, while the previous job still occupies the execution
//! buffer (Fig 6c / Fig 7b).
//!
//! This module is pure arithmetic over durations so the ablations
//! (Figures 18, 19 and 20) can exercise it directly, and the serving
//! simulator uses it to time every CachedAttention prefill.

use sim::Dur;

/// Inputs to the layer-wise pre-loading pipeline.
#[derive(Debug, Clone, Copy)]
pub struct PreloadParams {
    /// Number of transformer layers.
    pub n_layers: u32,
    /// Time to load one layer's historical KV from host memory to HBM.
    pub t_load_layer: Dur,
    /// Time to compute one layer's prefill over the new tokens.
    pub t_comp_layer: Dur,
    /// Read buffer depth in layers (`PL-B0` = 0, `PF-B15` = 15). The
    /// execution buffer always provides one slot of lookahead on top.
    pub buffer_layers: u32,
    /// How long the read stream was free *before* the job start and could
    /// warm the read buffer (0 without a read buffer).
    pub warm: Dur,
    /// How long *after* the job start the read stream becomes free (a
    /// previous job's transfers still occupy it). Mutually exclusive with
    /// `warm` in practice; both default to zero.
    pub delay: Dur,
}

/// Outcome of one prefill under a given loading scheme.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PrefillTiming {
    /// When the prefill completes (first token ready), relative to the
    /// instant the GPU was free to start the job.
    pub done: Dur,
    /// When the read stream finishes the last layer's KV transfer,
    /// relative to the same instant (may precede `done`).
    pub load_done: Dur,
    /// Total GPU stall inside the prefill: `done` minus pure compute.
    pub stall: Dur,
}

/// Times a prefill with **no** pre-loading: the whole KV loads first, then
/// every layer computes (Fig 6a, the `NO-PL` baseline of Fig 19).
pub fn no_preload(p: &PreloadParams) -> PrefillTiming {
    let l = p.n_layers as u64;
    let load = p.delay + p.t_load_layer * l;
    let comp = p.t_comp_layer * l;
    PrefillTiming {
        done: load + comp,
        load_done: load,
        stall: load,
    }
}

/// Times a prefill with layer-wise pre-loading (Fig 6b/6c, Fig 7).
///
/// The job's whole historical KV stays resident in HBM once loaded (decode
/// needs it), so the read stream is purely sequential: layer transfers run
/// back to back. The read buffer governs how *early* the stream may start
/// relative to the job — up to `buffer_layers` transfers can complete
/// before the execution buffer frees up (Fig 6c / Fig 7b) — and `warm` is
/// how long the stream was actually free beforehand. The pipeline
/// recurrences, relative to job start:
///
/// - `load[i] = start + (i + 1) · t_load`, with
///   `start = delay − min(warm, buffer_layers · t_load)`;
/// - `comp[i]` starts at `max(comp[i-1], load[i], 0)`.
pub fn with_preload(p: &PreloadParams) -> PrefillTiming {
    let l = p.n_layers as usize;
    if l == 0 {
        return PrefillTiming {
            done: Dur::ZERO,
            load_done: Dur::ZERO,
            stall: Dur::ZERO,
        };
    }
    // Work in signed nanoseconds relative to job start so the warm
    // pre-start can sit in the past.
    let t_load = p.t_load_layer.as_nanos() as i64;
    let t_comp = p.t_comp_layer.as_nanos() as i64;
    let max_warm = t_load.saturating_mul(p.buffer_layers as i64);
    let warm = (p.warm.as_nanos() as i64).min(max_warm);
    let mut read_free = p.delay.as_nanos() as i64 - warm;
    let mut last_load = 0i64;
    let mut comp = 0i64;
    for i in 0..l {
        last_load = read_free + t_load;
        read_free = last_load;
        let prev_comp = if i == 0 { 0 } else { comp };
        comp = prev_comp.max(last_load).max(0) + t_comp;
    }
    let done = Dur::from_nanos(comp.max(0) as u64);
    let pure_comp = p.t_comp_layer * l as u64;
    PrefillTiming {
        done,
        load_done: Dur::from_nanos(last_load.max(0) as u64),
        stall: done.saturating_sub(pure_comp),
    }
}

/// The read-buffer size §3.2.1 recommends:
/// `S_buf = B · (T_load · L_hist − T_pref · L_new)`, the bytes needed to
/// absorb the gap when loading the historical KV outruns the partial
/// prefill. Returns 0 when the overlap is already perfect.
pub fn recommended_buffer_bytes(
    pcie_bw: f64,
    t_load_per_token: Dur,
    l_hist: u64,
    t_pref_per_token: Dur,
    l_new: u64,
) -> u64 {
    let load = t_load_per_token.as_secs_f64() * l_hist as f64;
    let pref = t_pref_per_token.as_secs_f64() * l_new as f64;
    if load <= pref {
        return 0;
    }
    (pcie_bw * (load - pref)) as u64
}

/// Asynchronous saving (§3.2.2): how long past the nominal end of a job
/// its KV write-back blocks the *next* job.
///
/// With synchronous saving the whole `save` duration lands on the critical
/// path (Fig 8a). With asynchronous saving the write overlaps `overlap`
/// (decode time after the KV was produced) and the HBM write buffer
/// absorbs `buffered` more; only the remainder blocks (Fig 8b).
pub fn save_blocking_time(save: Dur, overlap: Dur, buffered: Dur, async_save: bool) -> Dur {
    if !async_save {
        return save;
    }
    save.saturating_sub(overlap).saturating_sub(buffered)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn params(load_ms: u64, comp_ms: u64, buf: u32, warm_ms: u64) -> PreloadParams {
        PreloadParams {
            n_layers: 40,
            t_load_layer: Dur::from_millis(load_ms),
            t_comp_layer: Dur::from_millis(comp_ms),
            buffer_layers: buf,
            warm: Dur::from_millis(warm_ms),
            delay: Dur::ZERO,
        }
    }

    /// A busy read stream delays the whole pipeline by its backlog.
    #[test]
    fn delay_pushes_the_pipeline_back() {
        let base = with_preload(&params(10, 1, 0, 0));
        let mut p = params(10, 1, 0, 0);
        p.delay = Dur::from_millis(50);
        let delayed = with_preload(&p);
        assert_eq!(delayed.done, base.done + Dur::from_millis(50));
        assert_eq!(
            no_preload(&p).done,
            no_preload(&params(10, 1, 0, 0)).done + Dur::from_millis(50)
        );
    }

    /// When compute dominates (fast loads), pre-loading hides everything
    /// except the first layer's transfer: perfect overlap (Fig 6b).
    #[test]
    fn compute_bound_prefill_hides_loading() {
        let p = params(1, 10, 0, 0);
        let t = with_preload(&p);
        // First layer load (1ms) + 40 layers × 10ms.
        assert_eq!(t.done, Dur::from_millis(401));
        assert_eq!(t.stall, Dur::from_millis(1));
        let base = no_preload(&p);
        assert_eq!(base.done, Dur::from_millis(440));
    }

    /// When loading dominates, the pipeline is load-bound: each layer
    /// waits for its KV and the tail is one compute slice past the last
    /// load (Fig 7a).
    #[test]
    fn load_bound_prefill_tracks_load_stream() {
        let p = params(10, 1, 0, 0);
        let t = with_preload(&p);
        // 40 loads back-to-back (400ms) + final layer compute (1ms).
        assert_eq!(t.done, Dur::from_millis(401));
        // Still far better than no pre-loading (440ms).
        assert!(t.done < no_preload(&p).done);
    }

    /// A warm read buffer lets the stream pre-load `buffer` layers before
    /// the job starts, cutting the load-bound tail (Fig 7b).
    #[test]
    fn warm_buffer_absorbs_load_tail() {
        let cold = with_preload(&params(10, 1, 15, 0));
        let warm = with_preload(&params(10, 1, 15, 150));
        assert!(
            warm.done < cold.done,
            "warm {:?} cold {:?}",
            warm.done,
            cold.done
        );
        // 15 layers pre-loaded: 25 remaining loads (250ms) + final compute.
        assert_eq!(warm.done, Dur::from_millis(251));
    }

    /// The buffer gate really limits lookahead: with zero buffer and warm
    /// time available, only one layer (the execution slot) pre-loads.
    #[test]
    fn buffer_gate_limits_lookahead() {
        let t = with_preload(&params(10, 1, 0, 1_000));
        // Layer 0 loads in the past; every later load gates on compute
        // consuming its predecessor, so the chain stays load-bound.
        assert!(t.done >= Dur::from_millis(390));
    }

    /// Fig 19's qualitative shape: NO-PL > PL-B0 > PF-B15, with large
    /// buffers approaching perfect overlap.
    #[test]
    fn fig19_ordering_holds() {
        // LLaMA-13B-like ratio: loading 2x slower than computing.
        let mk = |buf: u32, warm_ms: u64| with_preload(&params(12, 6, buf, warm_ms)).done;
        let no_pl = no_preload(&params(12, 6, 0, 0)).done;
        let b0 = mk(0, 0);
        let b5 = mk(5, 60);
        let b15 = mk(15, 180);
        assert!(no_pl > b0, "{no_pl} vs {b0}");
        assert!(b0 > b5);
        assert!(b5 > b15);
    }

    #[test]
    fn zero_layers_cost_nothing() {
        let mut p = params(1, 1, 0, 0);
        p.n_layers = 0;
        assert_eq!(with_preload(&p).done, Dur::ZERO);
    }

    /// §3.2.1's sizing formula: zero when compute covers the load, and
    /// exactly the gap's worth of PCIe bytes otherwise.
    #[test]
    fn buffer_sizing_formula() {
        let bw = 26e9;
        // Load 10 µs/token over 1000 hist; prefill 100 µs/token over 200
        // new: 10 ms load vs 20 ms compute — perfectly hidden.
        assert_eq!(
            recommended_buffer_bytes(bw, Dur::from_micros(10), 1000, Dur::from_micros(100), 200),
            0
        );
        // 20 ms load vs 10 ms compute: buffer covers the 10 ms gap.
        let bytes =
            recommended_buffer_bytes(bw, Dur::from_micros(20), 1000, Dur::from_micros(100), 100);
        assert_eq!(bytes, (26e9 * 0.010) as u64);
    }

    #[test]
    fn sync_save_blocks_fully_async_overlaps() {
        let save = Dur::from_millis(100);
        assert_eq!(
            save_blocking_time(save, Dur::from_millis(30), Dur::from_millis(20), false),
            save
        );
        assert_eq!(
            save_blocking_time(save, Dur::from_millis(30), Dur::from_millis(20), true),
            Dur::from_millis(50)
        );
        // Fully covered: nothing blocks.
        assert_eq!(
            save_blocking_time(save, Dur::from_millis(90), Dur::from_millis(20), true),
            Dur::ZERO
        );
    }

    proptest! {
        /// Pre-loading never does worse than loading everything up front,
        /// and never beats the two trivial lower bounds.
        #[test]
        fn preload_bounded(
            load_us in 1u64..20_000,
            comp_us in 1u64..20_000,
            buf in 0u32..64,
            warm_us in 0u64..1_000_000,
            layers in 1u32..96,
        ) {
            let p = PreloadParams {
                n_layers: layers,
                t_load_layer: Dur::from_micros(load_us),
                t_comp_layer: Dur::from_micros(comp_us),
                buffer_layers: buf,
                warm: Dur::from_micros(warm_us),
                delay: Dur::ZERO,
            };
            let t = with_preload(&p);
            let base = no_preload(&p);
            prop_assert!(t.done <= base.done);
            // Lower bounds: pure compute; and the un-warmed share of loads.
            let comp = p.t_comp_layer * layers as u64;
            prop_assert!(t.done >= comp);
            prop_assert!(t.done + p.warm + comp >= p.t_load_layer * layers as u64);
        }

        /// More buffer (with matching warm time) never hurts.
        #[test]
        fn buffer_monotone(
            load_us in 1u64..5_000,
            comp_us in 1u64..5_000,
            buf in 0u32..32,
        ) {
            let mk = |b: u32| {
                let p = PreloadParams {
                    n_layers: 40,
                    t_load_layer: Dur::from_micros(load_us),
                    t_comp_layer: Dur::from_micros(comp_us),
                    buffer_layers: b,
                    warm: Dur::from_micros(load_us * b as u64),
                    delay: Dur::ZERO,
                };
                with_preload(&p).done
            };
            prop_assert!(mk(buf + 1) <= mk(buf));
        }
    }
}
