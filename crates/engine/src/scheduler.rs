//! Scheduling stage: the job queue and the admission predicates.
//!
//! The serving pipeline keeps its waiting jobs behind a [`SchedulerPolicy`]
//! — an ordered queue the orchestrator enqueues turn arrivals into and
//! admits from the head of. [`Fcfs`] is the paper's policy (§4.1 runs
//! first-come-first-served continuous batching); the trait exists so
//! alternative orders (priority, SJF) can slot in without touching the
//! rest of the pipeline.
//!
//! The module also owns the two *pure* admission predicates the
//! orchestrator sequences in admission ([`ClusterSim`](crate::ClusterSim)
//! / [`ServingSim`](crate::ServingSim)) —
//! data-readiness and HBM residency — and the §3.3 look-ahead window
//! arithmetic (`L_pw = C_mem / S_kv`, `L_ev = (C_mem + C_disk) / S_kv`)
//! that sizes the store's scheduler-aware prefetch and eviction horizons.

use std::collections::VecDeque;

use sim::Time;

/// An ordered queue of waiting jobs (indices into the pipeline's job
/// arena). Object-safe so the orchestrator can hold `Box<dyn
/// SchedulerPolicy>`.
pub trait SchedulerPolicy {
    /// Adds a newly arrived job to the queue.
    fn enqueue(&mut self, job: usize);
    /// The next job to admit, if any.
    fn front(&self) -> Option<usize>;
    /// Removes and returns the next job to admit.
    fn pop_front(&mut self) -> Option<usize>;
    /// Whether the queue is empty.
    fn is_empty(&self) -> bool;
    /// Number of waiting jobs.
    fn len(&self) -> usize;
    /// Appends the queued jobs in admission order (head first) to `out`
    /// without allocating. Feeds the store's scheduler-aware look-ahead
    /// windows; the orchestrator reuses one scratch buffer across every
    /// consultation (and, in a cluster, across every instance's queue).
    fn snapshot_into(&self, out: &mut Vec<usize>);
    /// The queued jobs in admission order (head first), as a fresh `Vec`.
    /// Convenience over [`snapshot_into`](SchedulerPolicy::snapshot_into)
    /// for tests and one-off inspection; hot paths should use the
    /// buffer-reusing form.
    fn snapshot(&self) -> Vec<usize> {
        let mut out = Vec::with_capacity(self.len());
        self.snapshot_into(&mut out);
        out
    }
}

/// First-come-first-served: the paper's admission order.
#[derive(Debug, Default)]
pub struct Fcfs {
    queue: VecDeque<usize>,
}

impl Fcfs {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Fcfs::default()
    }
}

impl SchedulerPolicy for Fcfs {
    fn enqueue(&mut self, job: usize) {
        self.queue.push_back(job);
    }

    fn front(&self) -> Option<usize> {
        self.queue.front().copied()
    }

    fn pop_front(&mut self) -> Option<usize> {
        self.queue.pop_front()
    }

    fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    fn len(&self) -> usize {
        self.queue.len()
    }

    fn snapshot_into(&self, out: &mut Vec<usize>) {
        out.extend(self.queue.iter().copied());
    }
}

/// Data-readiness predicate: a job whose KV is still staging into the
/// fast tier defers until `staged` — unless the batch is empty, in which
/// case the GPU has nothing better to do than wait in place.
///
/// Returns `Some(defer_until)` when admission must wait.
pub fn data_ready_defer(now: Time, staged: Time, batch_is_empty: bool) -> Option<Time> {
    if staged > now && !batch_is_empty {
        Some(staged)
    } else {
        None
    }
}

/// HBM residency predicate (§2.4, Challenge 2): the candidate's full
/// final context must fit beside the decoding batch's live KV. An empty
/// batch always admits — a job cannot wait on itself to free memory.
pub fn hbm_fits(reserved: u64, job_peak: u64, budget: u64, batch_is_empty: bool) -> bool {
    batch_is_empty || reserved + job_peak <= budget
}

/// Look-ahead prefetch window in sessions, `L_pw = C_mem / S_kv`
/// (§3.3.1): how far down the queue the store stages disk-resident KV
/// into DRAM ahead of execution.
pub fn prefetch_window_sessions(c_mem: u64, s_kv: u64) -> usize {
    (c_mem / s_kv.max(1)) as usize
}

/// Look-ahead eviction window in sessions,
/// `L_ev = (C_mem + C_disk) / S_kv` (§3.3.2): entries due to run within
/// this horizon are exempted from eviction where possible.
pub fn eviction_window_sessions(c_mem: u64, c_disk: u64, s_kv: u64) -> usize {
    ((c_mem + c_disk) / s_kv.max(1)) as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use store::{AttentionStore, StoreConfig, StorePlanner};

    #[test]
    fn fcfs_preserves_arrival_order() {
        let mut q = Fcfs::new();
        assert!(q.is_empty());
        assert_eq!(q.front(), None);
        for j in [3, 1, 4] {
            q.enqueue(j);
        }
        assert_eq!(q.len(), 3);
        assert_eq!(q.snapshot(), vec![3, 1, 4]);
        assert_eq!(q.front(), Some(3));
        assert_eq!(q.pop_front(), Some(3));
        assert_eq!(q.snapshot(), vec![1, 4]);
        // The allocation-free form appends into a caller-owned buffer.
        let mut buf = vec![9];
        q.snapshot_into(&mut buf);
        assert_eq!(buf, vec![9, 1, 4]);
    }

    #[test]
    fn fcfs_is_object_safe() {
        let mut q: Box<dyn SchedulerPolicy> = Box::new(Fcfs::new());
        q.enqueue(7);
        assert_eq!(q.pop_front(), Some(7));
        assert!(q.is_empty());
    }

    #[test]
    fn data_ready_defers_only_with_a_live_batch() {
        let now = Time::from_secs_f64(10.0);
        let later = Time::from_secs_f64(12.0);
        assert_eq!(data_ready_defer(now, later, false), Some(later));
        // Empty batch: waiting in place beats deferring.
        assert_eq!(data_ready_defer(now, later, true), None);
        // Already staged: no defer either way.
        assert_eq!(data_ready_defer(now, now, false), None);
    }

    #[test]
    fn hbm_check_admits_exactly_at_budget() {
        assert!(hbm_fits(60, 40, 100, false));
        assert!(!hbm_fits(60, 41, 100, false));
        // The empty batch bypasses the budget.
        assert!(hbm_fits(60, 41, 100, true));
    }

    /// The §3.3 window formulas: `L_pw = C_mem / S_kv` and
    /// `L_ev = (C_mem + C_disk) / S_kv` (integer division, as the paper's
    /// "how many average sessions fit" reading implies).
    #[test]
    fn window_arithmetic_matches_the_paper_formulas() {
        // 8 GB DRAM, 40 GB disk, 512 MB average session KV.
        let (c_mem, c_disk, s_kv) = (8_000_000_000, 40_000_000_000, 512_000_000);
        assert_eq!(prefetch_window_sessions(c_mem, s_kv), 15);
        assert_eq!(eviction_window_sessions(c_mem, c_disk, s_kv), 93);
        // Degenerate S_kv never divides by zero.
        assert_eq!(prefetch_window_sessions(c_mem, 0), c_mem as usize);
        assert_eq!(eviction_window_sessions(0, 0, 0), 0);
    }

    /// The pure window functions agree with AttentionStore's own
    /// `prefetch_window`/`eviction_window` on a fresh store (where
    /// `S_kv` is the configured default session footprint).
    #[test]
    fn window_arithmetic_matches_attention_store() {
        let cfg = StoreConfig {
            tiers: models::TierStack::two_tier(8_000_000_000, 40_000_000_000),
            default_session_bytes: 512_000_000,
            ..StoreConfig::default()
        };
        let store = AttentionStore::new(cfg.clone());
        let s_kv = cfg.default_session_bytes;
        assert_eq!(
            StorePlanner::prefetch_window(&store),
            prefetch_window_sessions(cfg.dram_bytes(), s_kv)
        );
        assert_eq!(
            StorePlanner::eviction_window(&store),
            eviction_window_sessions(cfg.dram_bytes(), cfg.disk_bytes(), s_kv)
        );
    }
}
