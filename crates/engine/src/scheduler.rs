//! Scheduling stage: the job queue and the admission predicates.
//!
//! The serving pipeline keeps its waiting jobs behind a [`SchedulerPolicy`]
//! — an ordered queue the orchestrator enqueues turn arrivals into and
//! admits from the head of. [`Fcfs`] is the paper's policy (§4.1 runs
//! first-come-first-served continuous batching); the trait exists so
//! alternative orders (priority, SJF) can slot in without touching the
//! rest of the pipeline.
//!
//! The module also owns the two *pure* admission predicates the
//! orchestrator sequences in admission ([`ClusterSim`](crate::ClusterSim)
//! / [`ServingSim`](crate::ServingSim)) —
//! data-readiness and HBM residency — and the §3.3 look-ahead window
//! arithmetic (`L_pw = C_mem / S_kv`, `L_ev = (C_mem + C_disk) / S_kv`)
//! that sizes the store's scheduler-aware prefetch and eviction horizons.

use std::collections::VecDeque;

use sim::{Dur, Time};

/// An ordered queue of waiting jobs (indices into the pipeline's job
/// arena). Object-safe so the orchestrator can hold `Box<dyn
/// SchedulerPolicy>`.
pub trait SchedulerPolicy {
    /// Adds a newly arrived job to the queue.
    fn enqueue(&mut self, job: usize);
    /// Adds a job together with its scheduling key: the enqueue instant
    /// and the absolute TTFT deadline. Deadline-blind policies ([`Fcfs`])
    /// keep the default, which forwards to
    /// [`enqueue`](SchedulerPolicy::enqueue); deadline-aware policies
    /// ([`Edf`]) override it. Keeping the deadline an *argument* rather
    /// than a queue-side lookup keeps the trait object-safe and the job
    /// arena out of the scheduler.
    fn enqueue_with_deadline(&mut self, job: usize, now: Time, deadline: Time) {
        let _ = (now, deadline);
        self.enqueue(job);
    }
    /// The next job to admit, if any.
    fn front(&self) -> Option<usize>;
    /// Removes and returns the next job to admit.
    fn pop_front(&mut self) -> Option<usize>;
    /// Whether the queue is empty.
    fn is_empty(&self) -> bool;
    /// Number of waiting jobs.
    fn len(&self) -> usize;
    /// Appends the queued jobs in admission order (head first) to `out`
    /// without allocating. Feeds the store's scheduler-aware look-ahead
    /// windows; the orchestrator reuses one scratch buffer across every
    /// consultation (and, in a cluster, across every instance's queue).
    fn snapshot_into(&self, out: &mut Vec<usize>);
    /// The queued jobs in admission order (head first), as a fresh `Vec`.
    /// Convenience over [`snapshot_into`](SchedulerPolicy::snapshot_into)
    /// for tests and one-off inspection; hot paths should use the
    /// buffer-reusing form.
    fn snapshot(&self) -> Vec<usize> {
        let mut out = Vec::with_capacity(self.len());
        self.snapshot_into(&mut out);
        out
    }
}

/// First-come-first-served: the paper's admission order.
#[derive(Debug, Default)]
pub struct Fcfs {
    queue: VecDeque<usize>,
}

impl Fcfs {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Fcfs::default()
    }
}

impl SchedulerPolicy for Fcfs {
    fn enqueue(&mut self, job: usize) {
        self.queue.push_back(job);
    }

    fn front(&self) -> Option<usize> {
        self.queue.front().copied()
    }

    fn pop_front(&mut self) -> Option<usize> {
        self.queue.pop_front()
    }

    fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    fn len(&self) -> usize {
        self.queue.len()
    }

    fn snapshot_into(&self, out: &mut Vec<usize>) {
        out.extend(self.queue.iter().copied());
    }
}

/// Earliest-deadline-first admission with a starvation guard.
///
/// Jobs sort by *effective* deadline — the requested absolute deadline
/// clamped to `enqueue instant + max_slack` (the deadline-floor rule).
/// The clamp is the anti-starvation guarantee: a job with an arbitrarily
/// loose (or missing) deadline still carries a finite key that only
/// arrival time can push out, so a steady stream of tight-deadline
/// arrivals overtakes it for at most `max_slack` of virtual time before
/// their keys sort behind its own. Ties break by enqueue order, so equal
/// deadlines degrade to FCFS and determinism is total.
#[derive(Debug)]
pub struct Edf {
    /// Sorted ascending by `(effective deadline, seq)`.
    entries: Vec<(Time, u64, usize)>,
    next_seq: u64,
    max_slack: Dur,
}

impl Edf {
    /// Creates an empty EDF queue whose starvation guard caps every
    /// job's effective deadline at `enqueue + max_slack`.
    pub fn new(max_slack: Dur) -> Self {
        Edf {
            entries: Vec::new(),
            next_seq: 0,
            max_slack,
        }
    }

    fn insert(&mut self, key: Time, job: usize) {
        let seq = self.next_seq;
        self.next_seq += 1;
        let at = self
            .entries
            .partition_point(|&(k, s, _)| (k, s) < (key, seq));
        self.entries.insert(at, (key, seq, job));
    }
}

impl SchedulerPolicy for Edf {
    /// Deadline-less enqueue: the job sorts behind every job with a real
    /// deadline (FIFO among its own kind). The orchestrator always uses
    /// [`enqueue_with_deadline`](SchedulerPolicy::enqueue_with_deadline)
    /// when an SLO policy is active, so this path only serves tests and
    /// manual use.
    fn enqueue(&mut self, job: usize) {
        self.insert(Time::MAX, job);
    }

    fn enqueue_with_deadline(&mut self, job: usize, now: Time, deadline: Time) {
        self.insert(deadline.min(now + self.max_slack), job);
    }

    fn front(&self) -> Option<usize> {
        self.entries.first().map(|&(_, _, j)| j)
    }

    fn pop_front(&mut self) -> Option<usize> {
        if self.entries.is_empty() {
            None
        } else {
            Some(self.entries.remove(0).2)
        }
    }

    fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    fn len(&self) -> usize {
        self.entries.len()
    }

    fn snapshot_into(&self, out: &mut Vec<usize>) {
        out.extend(self.entries.iter().map(|&(_, _, j)| j));
    }
}

/// Data-readiness predicate: a job whose KV is still staging into the
/// fast tier defers until `staged` — unless the batch is empty, in which
/// case the GPU has nothing better to do than wait in place.
///
/// Returns `Some(defer_until)` when admission must wait.
pub fn data_ready_defer(now: Time, staged: Time, batch_is_empty: bool) -> Option<Time> {
    if staged > now && !batch_is_empty {
        Some(staged)
    } else {
        None
    }
}

/// HBM residency predicate (§2.4, Challenge 2): the candidate's full
/// final context must fit beside the decoding batch's live KV. An empty
/// batch always admits — a job cannot wait on itself to free memory.
pub fn hbm_fits(reserved: u64, job_peak: u64, budget: u64, batch_is_empty: bool) -> bool {
    batch_is_empty || reserved + job_peak <= budget
}

/// Look-ahead prefetch window in sessions, `L_pw = C_mem / S_kv`
/// (§3.3.1): how far down the queue the store stages disk-resident KV
/// into DRAM ahead of execution.
pub fn prefetch_window_sessions(c_mem: u64, s_kv: u64) -> usize {
    (c_mem / s_kv.max(1)) as usize
}

/// Look-ahead eviction window in sessions,
/// `L_ev = (C_mem + C_disk) / S_kv` (§3.3.2): entries due to run within
/// this horizon are exempted from eviction where possible.
pub fn eviction_window_sessions(c_mem: u64, c_disk: u64, s_kv: u64) -> usize {
    ((c_mem + c_disk) / s_kv.max(1)) as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use store::{AttentionStore, StoreConfig, StorePlanner};

    #[test]
    fn fcfs_preserves_arrival_order() {
        let mut q = Fcfs::new();
        assert!(q.is_empty());
        assert_eq!(q.front(), None);
        for j in [3, 1, 4] {
            q.enqueue(j);
        }
        assert_eq!(q.len(), 3);
        assert_eq!(q.snapshot(), vec![3, 1, 4]);
        assert_eq!(q.front(), Some(3));
        assert_eq!(q.pop_front(), Some(3));
        assert_eq!(q.snapshot(), vec![1, 4]);
        // The allocation-free form appends into a caller-owned buffer.
        let mut buf = vec![9];
        q.snapshot_into(&mut buf);
        assert_eq!(buf, vec![9, 1, 4]);
    }

    #[test]
    fn fcfs_is_object_safe() {
        let mut q: Box<dyn SchedulerPolicy> = Box::new(Fcfs::new());
        q.enqueue(7);
        assert_eq!(q.pop_front(), Some(7));
        assert!(q.is_empty());
    }

    #[test]
    fn edf_orders_by_deadline_with_fifo_ties() {
        let mut q = Edf::new(Dur::from_secs_f64(1e6));
        let now = Time::from_secs_f64(0.0);
        q.enqueue_with_deadline(0, now, Time::from_secs_f64(30.0));
        q.enqueue_with_deadline(1, now, Time::from_secs_f64(10.0));
        q.enqueue_with_deadline(2, now, Time::from_secs_f64(10.0));
        q.enqueue_with_deadline(3, now, Time::from_secs_f64(20.0));
        assert_eq!(q.snapshot(), vec![1, 2, 3, 0]);
        assert_eq!(q.front(), Some(1));
        assert_eq!(q.pop_front(), Some(1));
        assert_eq!(q.pop_front(), Some(2));
        assert_eq!(q.len(), 2);
        let mut buf = Vec::new();
        q.snapshot_into(&mut buf);
        assert_eq!(buf, vec![3, 0]);
    }

    #[test]
    fn edf_is_object_safe_and_forwards_default_enqueue() {
        let mut q: Box<dyn SchedulerPolicy> = Box::new(Edf::new(Dur::from_secs_f64(10.0)));
        q.enqueue(7);
        q.enqueue_with_deadline(8, Time::ZERO, Time::from_secs_f64(1.0));
        // The deadline-less job carries the lowest priority.
        assert_eq!(q.pop_front(), Some(8));
        assert_eq!(q.pop_front(), Some(7));
        // Fcfs ignores deadlines entirely through the default method.
        let mut f: Box<dyn SchedulerPolicy> = Box::new(Fcfs::new());
        f.enqueue_with_deadline(1, Time::ZERO, Time::from_secs_f64(99.0));
        f.enqueue_with_deadline(2, Time::ZERO, Time::from_secs_f64(1.0));
        assert_eq!(f.snapshot(), vec![1, 2]);
    }

    /// The starvation guard (deadline floor): an old job with an
    /// arbitrarily loose deadline is clamped to `enqueue + max_slack`,
    /// so a steady stream of tight-deadline arrivals overtakes it only
    /// until their own (arrival-anchored) keys pass the old job's floor.
    #[test]
    fn edf_deadline_floor_prevents_starvation() {
        let slack = Dur::from_secs_f64(30.0);
        let mut q = Edf::new(slack);
        // A "whenever" job enqueued at t=0 with a deadline a week out.
        q.enqueue_with_deadline(99, Time::ZERO, Time::from_secs_f64(7.0 * 86_400.0));
        // Tight-deadline turns (2 s of slack) arriving every second.
        let mut admitted = Vec::new();
        for i in 0..60u64 {
            let now = Time::from_secs_f64(i as f64);
            q.enqueue_with_deadline(i as usize, now, now + Dur::from_secs_f64(2.0));
            admitted.push(q.pop_front().unwrap());
        }
        // The old job ran once the stream's deadlines passed its floor
        // (0 + 30 s): bounded bypass, not starvation.
        let pos = admitted.iter().position(|&j| j == 99);
        assert!(
            matches!(pos, Some(p) if p <= 30),
            "loose-deadline job starved: admissions {admitted:?}"
        );
        // Without the floor it would never have been admitted in this
        // window: every tight deadline beats a week-out deadline.
        let mut unguarded = Edf::new(Dur::from_secs_f64(1e9));
        unguarded.enqueue_with_deadline(99, Time::ZERO, Time::from_secs_f64(7.0 * 86_400.0));
        for i in 0..60u64 {
            let now = Time::from_secs_f64(i as f64);
            unguarded.enqueue_with_deadline(i as usize, now, now + Dur::from_secs_f64(2.0));
            assert_ne!(unguarded.pop_front(), Some(99));
        }
    }

    #[test]
    fn data_ready_defers_only_with_a_live_batch() {
        let now = Time::from_secs_f64(10.0);
        let later = Time::from_secs_f64(12.0);
        assert_eq!(data_ready_defer(now, later, false), Some(later));
        // Empty batch: waiting in place beats deferring.
        assert_eq!(data_ready_defer(now, later, true), None);
        // Already staged: no defer either way.
        assert_eq!(data_ready_defer(now, now, false), None);
    }

    #[test]
    fn hbm_check_admits_exactly_at_budget() {
        assert!(hbm_fits(60, 40, 100, false));
        assert!(!hbm_fits(60, 41, 100, false));
        // The empty batch bypasses the budget.
        assert!(hbm_fits(60, 41, 100, true));
    }

    /// The §3.3 window formulas: `L_pw = C_mem / S_kv` and
    /// `L_ev = (C_mem + C_disk) / S_kv` (integer division, as the paper's
    /// "how many average sessions fit" reading implies).
    #[test]
    fn window_arithmetic_matches_the_paper_formulas() {
        // 8 GB DRAM, 40 GB disk, 512 MB average session KV.
        let (c_mem, c_disk, s_kv) = (8_000_000_000, 40_000_000_000, 512_000_000);
        assert_eq!(prefetch_window_sessions(c_mem, s_kv), 15);
        assert_eq!(eviction_window_sessions(c_mem, c_disk, s_kv), 93);
        // Degenerate S_kv never divides by zero.
        assert_eq!(prefetch_window_sessions(c_mem, 0), c_mem as usize);
        assert_eq!(eviction_window_sessions(0, 0, 0), 0);
    }

    /// The pure window functions agree with AttentionStore's own
    /// `prefetch_window`/`eviction_window` on a fresh store (where
    /// `S_kv` is the configured default session footprint).
    #[test]
    fn window_arithmetic_matches_attention_store() {
        let cfg = StoreConfig {
            tiers: models::TierStack::two_tier(8_000_000_000, 40_000_000_000),
            default_session_bytes: 512_000_000,
            ..StoreConfig::default()
        };
        let store = AttentionStore::new(cfg.clone());
        let s_kv = cfg.default_session_bytes;
        assert_eq!(
            StorePlanner::prefetch_window(&store),
            prefetch_window_sessions(cfg.dram_bytes(), s_kv)
        );
        assert_eq!(
            StorePlanner::eviction_window(&store),
            eviction_window_sessions(cfg.dram_bytes(), cfg.disk_bytes(), s_kv)
        );
    }
}
