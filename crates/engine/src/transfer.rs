//! Transfer stage: every byte that moves between tiers, on one link pair
//! per tier boundary.
//!
//! [`TransferPlan`] owns the simulated interconnects of one run:
//!
//! - `h2d` — host→device PCIe stream carrying reused KV into HBM for
//!   layer-wise pre-loading (§3.2.1);
//! - `d2h` — device→host PCIe stream flushing fresh KV through the HBM
//!   write buffer (§3.2.2);
//! - one read/write link pair per *boundary* of the store's tier stack:
//!   boundary `b` sits between tier `b` and tier `b+1`. The paper's
//!   two-tier stack has a single boundary, whose links keep their
//!   historical names `slow-rd`/`slow-wr` (SSD for the DRAM+Disk medium;
//!   a second PCIe hop for the HBM-fronted mediums). Deeper stacks add
//!   `slow-rd2`/`slow-wr2` and so on.
//!
//! The store plans tier movements as [`Transfer`] values — a promotion
//! from tier `f` arrives as the hop chain `(f→f-1), …, (1→0)` — and this
//! stage charges each hop on its boundary's link, serializing the hops of
//! one session so the shallow hop starts when the deep one delivered
//! ([`TransferPlan::charge`]). It tracks when each session's KV finishes
//! staging into the fast tier (`fast_ready_at`), gates admission on
//! write-buffer drain ([`TransferPlan::write_gate`]), and classifies
//! store consultations ([`TransferPlan::consult`]).

use std::collections::HashMap;

use sim::{BandwidthLink, Dur, FaultPlan, Time};
use store::{DegradeReason, Lookup, QueueView, SessionId, StorePlanner, TierId, Transfer};

use crate::events::ConsultClass;
use crate::{EngineConfig, Medium};

/// Link names per boundary, fixed so [`FaultPlan`] link faults can target
/// them by name. Boundary 0 keeps the historical `slow-rd`/`slow-wr`.
const SLOW_RD_NAMES: [&str; 8] = [
    "slow-rd", "slow-rd2", "slow-rd3", "slow-rd4", "slow-rd5", "slow-rd6", "slow-rd7", "slow-rd8",
];
const SLOW_WR_NAMES: [&str; 8] = [
    "slow-wr", "slow-wr2", "slow-wr3", "slow-wr4", "slow-wr5", "slow-wr6", "slow-wr7", "slow-wr8",
];

/// Outcome of consulting the store for a resuming job.
#[derive(Debug, Clone, Copy)]
pub struct Consult {
    /// Tokens of cached history the prefill can reuse.
    pub reused: u64,
    /// When the reused KV is staged in the fast tier (never before `now`
    /// for hits; `now` itself for misses).
    pub staged: Time,
    /// Hit/miss classification (one of `Miss`, `HitFast`, `HitSlow`).
    pub class: ConsultClass,
    /// Tier the cached KV was found in (`None` on a miss).
    pub tier: Option<TierId>,
}

/// A [`Consult`] that went through the fallible store path: the same
/// classification plus what the fault layer did to get there.
#[derive(Debug, Clone, Copy)]
pub struct FaultedConsult {
    /// The classification and staging outcome (backoff included in
    /// `staged`).
    pub consult: Consult,
    /// Injected read errors retried before the outcome settled.
    pub retries: u32,
    /// Why the cached KV was abandoned, when it was.
    pub degraded: Option<DegradeReason>,
}

/// The read/write links of one tier boundary plus the access latency of
/// the tier below it.
#[derive(Debug)]
struct SlowBoundary {
    rd: BandwidthLink,
    wr: BandwidthLink,
    /// Fixed access latency of the deeper tier, charged before every read
    /// crossing this boundary (zero for DRAM and the paper's SSD).
    read_latency: Dur,
}

/// The bandwidth links of a serving run — two device streams plus one
/// pair per tier boundary — and the fast-tier staging clock, unified
/// behind one planning interface.
#[derive(Debug)]
pub struct TransferPlan {
    h2d: BandwidthLink,
    d2h: BandwidthLink,
    /// `slow[b]` carries traffic across the boundary between tier `b`
    /// and tier `b+1` of the store's stack.
    slow: Vec<SlowBoundary>,
    /// When each session's KV finishes staging into the fast tier.
    fast_ready_at: HashMap<u64, Time>,
    async_save: bool,
    write_buffer_bytes: u64,
}

impl TransferPlan {
    /// Builds the links for `cfg`: PCIe for both device streams, and one
    /// link pair per boundary of the store's tier stack. Boundary 0's
    /// bandwidth follows the medium (the configured tier-1 device, or
    /// PCIe again when DRAM is the slow tier behind an HBM fast tier);
    /// deeper boundaries always use the deeper tier's rated bandwidth.
    pub fn new(cfg: &EngineConfig) -> Self {
        let pcie = cfg.cluster.pcie_bw;
        let tiers = &cfg.store.tiers;
        let n_boundaries = tiers.len().saturating_sub(1);
        assert!(
            n_boundaries <= SLOW_RD_NAMES.len(),
            "tier stacks deeper than {} are not supported",
            SLOW_RD_NAMES.len() + 1
        );
        let slow = (0..n_boundaries)
            .map(|b| {
                let deep = &tiers[b + 1];
                let (rd_bw, wr_bw) = if b == 0 {
                    match cfg.medium {
                        Medium::DramDisk => (deep.read_bw, deep.write_bw),
                        // Fast tier is HBM; the first slow tier is host
                        // DRAM behind PCIe.
                        Medium::HbmDram | Medium::HbmOnly => (pcie, pcie),
                    }
                } else {
                    (deep.read_bw, deep.write_bw)
                };
                SlowBoundary {
                    rd: BandwidthLink::new(SLOW_RD_NAMES[b], rd_bw),
                    wr: BandwidthLink::new(SLOW_WR_NAMES[b], wr_bw),
                    read_latency: Dur::from_secs_f64(deep.latency),
                }
            })
            .collect();
        TransferPlan {
            h2d: BandwidthLink::new("h2d", pcie),
            d2h: BandwidthLink::new("d2h", pcie),
            slow,
            fast_ready_at: HashMap::new(),
            async_save: cfg.async_save,
            write_buffer_bytes: cfg.write_buffer_bytes,
        }
    }

    /// Installs the link-fault windows of `plan` that target `instance`
    /// (faults with `instance: None` apply to every instance). Link names
    /// match the stream labels: `"h2d"`, `"d2h"`, `"slow-rd"`/`"slow-wr"`
    /// for boundary 0 and `"slow-rd2"`/`"slow-wr2"` … for deeper
    /// boundaries. Unknown names are ignored so plans can name links a
    /// medium (or a shallower stack) does not have.
    pub fn install_faults(&mut self, plan: &FaultPlan, instance: u32) {
        for f in &plan.link_faults {
            if f.instance.is_some_and(|i| i != instance) {
                continue;
            }
            let link = if f.link == "h2d" {
                Some(&mut self.h2d)
            } else if f.link == "d2h" {
                Some(&mut self.d2h)
            } else {
                self.slow.iter_mut().enumerate().find_map(|(b, s)| {
                    if f.link == SLOW_RD_NAMES[b] {
                        Some(&mut s.rd)
                    } else if f.link == SLOW_WR_NAMES[b] {
                        Some(&mut s.wr)
                    } else {
                        None
                    }
                })
            };
            let Some(link) = link else { continue };
            link.add_fault_window(f.window, f.kind);
        }
    }

    /// Charges store transfers on the boundary links. A promotion hop
    /// from tier `b+1` to tier `b` rides boundary `b`'s read link, a
    /// demotion hop the write link. The hops of one session's multi-hop
    /// promotion are chained within a call — each starts when the deeper
    /// hop delivered — and the hop landing in tier 0 updates the
    /// session's fast-tier staging time.
    pub fn charge(&mut self, now: Time, transfers: &[Transfer]) {
        // Per-call chain: when the deeper hop of this session delivered.
        let mut chained: HashMap<u64, Time> = HashMap::new();
        for t in transfers {
            if t.is_promotion() {
                let start = chained.get(&t.session.0).copied().unwrap_or(now);
                let boundary = &mut self.slow[t.to.0];
                let done = boundary.rd.transfer(start + boundary.read_latency, t.bytes);
                chained.insert(t.session.0, done);
                if t.to.is_fast() {
                    let e = self.fast_ready_at.entry(t.session.0).or_insert(done);
                    *e = (*e).max(done);
                }
            } else {
                self.slow[t.from.0].wr.transfer(now, t.bytes);
            }
        }
    }

    /// Streams `bytes` straight out of `tier` without staging them in
    /// tier 0 (rare pathological sizing): charges every read link on the
    /// way up, deepest boundary first, and returns the delivery time.
    fn stream_from(&mut self, now: Time, tier: TierId, bytes: u64) -> Time {
        let mut done = now;
        for b in (0..tier.0).rev() {
            let boundary = &mut self.slow[b];
            done = boundary.rd.transfer(done + boundary.read_latency, bytes);
        }
        done
    }

    /// Time before which the next prefill may not start because the HBM
    /// write buffer is still draining (§3.2.2). With synchronous saving
    /// the stall is charged at retirement instead, so the gate is open.
    pub fn write_gate(&self, now: Time) -> Time {
        if !self.async_save {
            return now;
        }
        let buffer_drain = self.d2h.duration_of(self.write_buffer_bytes);
        let backlog = self.d2h.backlog_at(now);
        if backlog > buffer_drain {
            now + (backlog - buffer_drain)
        } else {
            now
        }
    }

    /// Consults the store for a resuming job with `hist` tokens of
    /// history and classifies the access. `stored_bytes_of` maps cached
    /// tokens to their on-store byte size (compression included).
    ///
    /// The caller guarantees `hist > 0` and a configured store; the
    /// no-history and no-store classifications live in the orchestrator.
    pub fn consult(
        &mut self,
        now: Time,
        store: &mut dyn StorePlanner,
        sid: SessionId,
        hist: u64,
        queue: &QueueView,
        stored_bytes_of: impl Fn(u64) -> u64,
    ) -> Consult {
        let (found, transfers) = store.load_for_use(sid, now, queue);
        let entry_tokens = store.entry_tokens(sid).unwrap_or(0);
        let had_promotion = transfers
            .iter()
            .any(|t| t.session == sid && t.is_promotion());
        self.charge(now, &transfers);
        match found {
            Lookup::Miss => Consult {
                reused: 0,
                staged: now,
                class: ConsultClass::Miss,
                tier: None,
            },
            Lookup::Hit(tier) if tier.is_fast() => {
                let staged = self
                    .fast_ready_at
                    .get(&sid.0)
                    .copied()
                    .unwrap_or(now)
                    .max(now);
                Consult {
                    reused: entry_tokens.min(hist),
                    staged,
                    class: ConsultClass::HitFast,
                    tier: Some(tier),
                }
            }
            Lookup::Hit(tier) => {
                let staged = if had_promotion {
                    self.fast_ready_at.get(&sid.0).copied().unwrap_or(now)
                } else {
                    // Tier 0 could not stage it: stream straight from the
                    // slow tier (rare pathological sizing).
                    let bytes = stored_bytes_of(entry_tokens.min(hist));
                    self.stream_from(now, tier, bytes)
                };
                Consult {
                    reused: entry_tokens.min(hist),
                    staged: staged.max(now),
                    class: ConsultClass::HitSlow,
                    tier: Some(tier),
                }
            }
        }
    }

    /// Block-keyed form of [`TransferPlan::consult`]: matches the job's
    /// *entire* next context (`ctx_tokens = history + new input`) against
    /// the store's prefix trie, so a session whose first turn shares a
    /// system prompt with another session reuses those blocks even with
    /// zero own history. `reused` is the matched prefix length; only the
    /// unmatched tail is prefilled.
    pub fn consult_blocks(
        &mut self,
        now: Time,
        store: &mut dyn StorePlanner,
        sid: SessionId,
        ctx_tokens: u64,
        stored_bytes_of: impl Fn(u64) -> u64,
        queue: &QueueView,
    ) -> Consult {
        let m = store.load_prefix(sid, ctx_tokens, now, queue);
        let had_promotion = m
            .transfers
            .iter()
            .any(|t| t.session == sid && t.is_promotion());
        self.charge(now, &m.transfers);
        self.classify_prefix(now, sid, &m, had_promotion, stored_bytes_of)
    }

    /// Fallible form of [`TransferPlan::consult_blocks`].
    pub fn consult_blocks_faulted(
        &mut self,
        now: Time,
        store: &mut dyn StorePlanner,
        sid: SessionId,
        ctx_tokens: u64,
        stored_bytes_of: impl Fn(u64) -> u64,
        queue: &QueueView,
    ) -> FaultedConsult {
        let outcome = store.try_load_prefix(sid, ctx_tokens, now, queue);
        let had_promotion = outcome
            .prefix
            .transfers
            .iter()
            .any(|t| t.session == sid && t.is_promotion());
        let start = now + outcome.backoff;
        self.charge(start, &outcome.prefix.transfers);
        let consult =
            self.classify_prefix(start, sid, &outcome.prefix, had_promotion, stored_bytes_of);
        FaultedConsult {
            consult,
            retries: outcome.retries,
            degraded: outcome.degraded,
        }
    }

    /// Shared classification tail of the block-keyed consults.
    fn classify_prefix(
        &mut self,
        start: Time,
        sid: SessionId,
        m: &store::PrefixMatch,
        had_promotion: bool,
        stored_bytes_of: impl Fn(u64) -> u64,
    ) -> Consult {
        match m.lookup {
            Lookup::Miss => Consult {
                reused: 0,
                staged: start,
                class: ConsultClass::Miss,
                tier: None,
            },
            Lookup::Hit(tier) if tier.is_fast() => {
                let staged = self
                    .fast_ready_at
                    .get(&sid.0)
                    .copied()
                    .unwrap_or(start)
                    .max(start);
                Consult {
                    reused: m.matched_tokens,
                    staged,
                    class: ConsultClass::HitFast,
                    tier: Some(tier),
                }
            }
            Lookup::Hit(tier) => {
                let staged = if had_promotion {
                    self.fast_ready_at.get(&sid.0).copied().unwrap_or(start)
                } else {
                    // Tier 0 could not stage the matched blocks: stream
                    // them straight from the deepest matched tier.
                    self.stream_from(start, tier, stored_bytes_of(m.matched_tokens))
                };
                Consult {
                    reused: m.matched_tokens,
                    staged: staged.max(start),
                    class: ConsultClass::HitSlow,
                    tier: Some(tier),
                }
            }
        }
    }

    /// Fallible form of [`TransferPlan::consult`] for runs with a fault
    /// plan installed: reads may be retried (their exponential backoff is
    /// wall time, so it pushes the staging clock) or abandoned entirely,
    /// degrading the access to a miss-classified full re-prefill.
    pub fn consult_faulted(
        &mut self,
        now: Time,
        store: &mut dyn StorePlanner,
        sid: SessionId,
        hist: u64,
        queue: &QueueView,
        stored_bytes_of: impl Fn(u64) -> u64,
    ) -> FaultedConsult {
        let outcome = store.try_load_for_use(sid, now, queue);
        let entry_tokens = store.entry_tokens(sid).unwrap_or(0);
        let had_promotion = outcome
            .transfers
            .iter()
            .any(|t| t.session == sid && t.is_promotion());
        // Backoff is wall time spent re-issuing slow-tier reads: the
        // surviving transfers (and the job's staging) start after it.
        let start = now + outcome.backoff;
        self.charge(start, &outcome.transfers);
        let consult = match outcome.lookup {
            Lookup::Miss => Consult {
                reused: 0,
                staged: start,
                class: ConsultClass::Miss,
                tier: None,
            },
            Lookup::Hit(tier) if tier.is_fast() => {
                let staged = self
                    .fast_ready_at
                    .get(&sid.0)
                    .copied()
                    .unwrap_or(start)
                    .max(start);
                Consult {
                    reused: entry_tokens.min(hist),
                    staged,
                    class: ConsultClass::HitFast,
                    tier: Some(tier),
                }
            }
            Lookup::Hit(tier) => {
                let staged = if had_promotion {
                    self.fast_ready_at.get(&sid.0).copied().unwrap_or(start)
                } else {
                    let bytes = stored_bytes_of(entry_tokens.min(hist));
                    self.stream_from(start, tier, bytes)
                };
                Consult {
                    reused: entry_tokens.min(hist),
                    staged: staged.max(start),
                    class: ConsultClass::HitSlow,
                    tier: Some(tier),
                }
            }
        };
        FaultedConsult {
            consult,
            retries: outcome.retries,
            degraded: outcome.degraded,
        }
    }

    /// When `session`'s KV finishes staging into the fast tier, if a
    /// promotion was ever charged for it.
    pub fn fast_ready(&self, session: u64) -> Option<Time> {
        self.fast_ready_at.get(&session).copied()
    }

    /// Transfer time of `bytes` on the host→device stream.
    pub fn h2d_duration_of(&self, bytes: u64) -> Dur {
        self.h2d.duration_of(bytes)
    }

    /// When the host→device stream frees up.
    pub fn h2d_busy_until(&self) -> Time {
        self.h2d.busy_until()
    }

    /// Marks the host→device stream busy through `until` for `bytes`
    /// (the pre-loading schedule computes its own completion time).
    pub fn h2d_occupy(&mut self, until: Time, bytes: u64) {
        self.h2d.occupy(until, bytes);
    }

    /// Queues `bytes` on the device→host write stream; returns the
    /// completion time.
    pub fn d2h_transfer(&mut self, now: Time, bytes: u64) -> Time {
        self.d2h.transfer(now, bytes)
    }

    /// Total bytes moved host→device.
    pub fn h2d_bytes(&self) -> u64 {
        self.h2d.total_bytes()
    }

    /// Total bytes moved device→host.
    pub fn d2h_bytes(&self) -> u64 {
        self.d2h.total_bytes()
    }

    /// Total bytes read upward across all tier boundaries.
    pub fn slow_read_bytes(&self) -> u64 {
        self.slow.iter().map(|b| b.rd.total_bytes()).sum()
    }

    /// Total bytes written downward across all tier boundaries.
    pub fn slow_write_bytes(&self) -> u64 {
        self.slow.iter().map(|b| b.wr.total_bytes()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Mode;
    use models::{ModelSpec, TierSpec, TierStack};
    use sim::{FaultWindow, LinkFault, LinkFaultKind};

    fn plan() -> TransferPlan {
        TransferPlan::new(&EngineConfig::paper(
            Mode::CachedAttention,
            ModelSpec::llama2_13b(),
        ))
    }

    fn hop(sid: u64, bytes: u64, from: usize, to: usize) -> Transfer {
        Transfer {
            session: SessionId(sid),
            bytes,
            from: TierId(from),
            to: TierId(to),
        }
    }

    fn promote(sid: u64, bytes: u64) -> Transfer {
        hop(sid, bytes, 1, 0)
    }

    fn demote(sid: u64, bytes: u64) -> Transfer {
        hop(sid, bytes, 0, 1)
    }

    /// Promotions serialize on the boundary-0 read link in charge order:
    /// the second session's staging time includes the first's transfer.
    #[test]
    fn charge_serializes_promotions_in_order() {
        let mut p = plan();
        let gb = 1_000_000_000;
        p.charge(Time::ZERO, &[promote(1, gb), promote(2, gb)]);
        let t1 = p.fast_ready_at[&1];
        let t2 = p.fast_ready_at[&2];
        assert!(t1 > Time::ZERO);
        // Same payload, FIFO link: session 2 finishes one transfer later.
        assert_eq!(t2.as_secs_f64(), 2.0 * t1.as_secs_f64());
        assert_eq!(p.slow_read_bytes(), 2 * gb);
        assert_eq!(p.slow_write_bytes(), 0);
    }

    /// Demotions ride the write channel and never touch staging times.
    #[test]
    fn demotions_use_the_write_channel() {
        let mut p = plan();
        p.charge(Time::ZERO, &[demote(3, 500_000_000)]);
        assert_eq!(p.slow_write_bytes(), 500_000_000);
        assert_eq!(p.slow_read_bytes(), 0);
        assert!(p.fast_ready_at.is_empty());
    }

    /// Re-promoting a session keeps the *latest* staging completion.
    #[test]
    fn repeated_promotions_keep_the_max() {
        let mut p = plan();
        p.charge(Time::ZERO, &[promote(7, 1_000_000_000)]);
        let first = p.fast_ready_at[&7];
        p.charge(Time::ZERO, &[promote(7, 1_000_000_000)]);
        assert!(p.fast_ready_at[&7] > first);
    }

    /// A four-tier stack gets three boundary link pairs, and a promotion
    /// journey from the bottom tier chains its hops: each shallower hop
    /// starts when the deeper one delivered (plus the deeper tier's
    /// access latency), and only the final hop sets `fast_ready`.
    #[test]
    fn deep_promotions_chain_hop_by_hop() {
        let mut cfg = EngineConfig::paper(Mode::CachedAttention, ModelSpec::llama2_13b());
        cfg.store.tiers = TierStack::new(vec![
            TierSpec::dram(16_000_000_000),
            TierSpec::pooled_memory(64_000_000_000),
            TierSpec::ssd(1_000_000_000_000),
            TierSpec::object_store(10_000_000_000_000),
        ]);
        let mut p = TransferPlan::new(&cfg);
        let gb: u64 = 1_000_000_000;
        // The store reports a bottom-tier promotion as the chain
        // (3→2), (2→1), (1→0).
        p.charge(
            Time::ZERO,
            &[hop(5, gb, 3, 2), hop(5, gb, 2, 1), hop(5, gb, 1, 0)],
        );
        let tiers = &cfg.store.tiers;
        let expect = tiers[3].latency
            + gb as f64 / tiers[3].read_bw
            + tiers[2].latency
            + gb as f64 / tiers[2].read_bw
            + tiers[1].latency
            + gb as f64 / tiers[1].read_bw;
        let ready = p.fast_ready(5).expect("final hop landed in tier 0");
        assert!((ready.as_secs_f64() - expect).abs() < 1e-6);
        // Every boundary read link carried the payload exactly once.
        assert_eq!(p.slow_read_bytes(), 3 * gb);
        // An intermediate hop alone must not mark the session staged.
        p.charge(Time::ZERO, &[hop(6, gb, 3, 2)]);
        assert!(p.fast_ready(6).is_none());
    }

    /// Link faults target deep boundaries by their numbered names.
    #[test]
    fn faults_reach_deep_boundary_links() {
        let mut cfg = EngineConfig::paper(Mode::CachedAttention, ModelSpec::llama2_13b());
        cfg.store.tiers = TierStack::new(vec![
            TierSpec::dram(16_000_000_000),
            TierSpec::pooled_memory(64_000_000_000),
            TierSpec::ssd(1_000_000_000_000),
        ]);
        let mut p = TransferPlan::new(&cfg);
        let mut fp = FaultPlan::default();
        fp.link_faults.push(LinkFault {
            link: "slow-rd2",
            instance: None,
            window: FaultWindow::new(Time::ZERO, Time::from_secs_f64(100.0)),
            kind: LinkFaultKind::Slowdown(2.0),
        });
        p.install_faults(&fp, 0);
        let gb: u64 = 1_000_000_000;
        // Boundary 1 (tiers 1↔2) is slowed to half speed.
        let done = p.slow[1].rd.transfer(Time::ZERO, gb);
        let nominal = gb as f64 / cfg.store.tiers[2].read_bw;
        assert!((done.as_secs_f64() - 2.0 * nominal).abs() < 1e-6);
        // Boundary 0 is untouched.
        let done0 = p.slow[0].rd.transfer(Time::ZERO, gb);
        let nominal0 = gb as f64 / cfg.store.tiers[1].read_bw;
        assert!((done0.as_secs_f64() - nominal0).abs() < 1e-6);
    }

    /// The write gate only closes once the d2h backlog exceeds the
    /// configured buffer's drain time, and then by exactly the excess.
    #[test]
    fn write_gate_tracks_buffer_excess() {
        let mut p = plan();
        let now = Time::ZERO;
        assert_eq!(p.write_gate(now), now);
        // Fill well past the 2 GB buffer.
        p.d2h_transfer(now, 10_000_000_000);
        let gate = p.write_gate(now);
        let drain = p.d2h.duration_of(p.write_buffer_bytes);
        let backlog = p.d2h.backlog_at(now);
        assert_eq!(gate, now + (backlog - drain));
        assert!(gate > now);
    }

    /// With async saving off the gate never closes (the stall is charged
    /// synchronously at retirement instead).
    #[test]
    fn sync_save_leaves_the_gate_open() {
        let mut cfg = EngineConfig::paper(Mode::CachedAttention, ModelSpec::llama2_13b());
        cfg.async_save = false;
        let mut p = TransferPlan::new(&cfg);
        p.d2h_transfer(Time::ZERO, 50_000_000_000);
        assert_eq!(p.write_gate(Time::ZERO), Time::ZERO);
    }
}
