//! Transfer stage: every byte that moves between tiers, on four links.
//!
//! [`TransferPlan`] owns the simulated interconnects of one run:
//!
//! - `h2d` — host→device PCIe stream carrying reused KV into HBM for
//!   layer-wise pre-loading (§3.2.1);
//! - `d2h` — device→host PCIe stream flushing fresh KV through the HBM
//!   write buffer (§3.2.2);
//! - `slow-rd`/`slow-wr` — the slow-tier channels (SSD for the paper's
//!   DRAM+Disk medium; a second PCIe hop for the HBM-fronted mediums).
//!
//! The store plans tier movements as [`Transfer`] values; this stage
//! charges them on the links ([`TransferPlan::charge`]), tracks when each
//! session's KV finishes staging into the fast tier (`fast_ready_at`),
//! gates admission on write-buffer drain ([`TransferPlan::write_gate`]),
//! and classifies store consultations ([`TransferPlan::consult`]).

use std::collections::HashMap;

use sim::{BandwidthLink, Dur, FaultPlan, Time};
use store::{DegradeReason, Lookup, QueueView, SessionId, StorePlanner, Transfer, TransferDir};

use crate::events::ConsultClass;
use crate::{EngineConfig, Medium};

/// Outcome of consulting the store for a resuming job.
#[derive(Debug, Clone, Copy)]
pub struct Consult {
    /// Tokens of cached history the prefill can reuse.
    pub reused: u64,
    /// When the reused KV is staged in the fast tier (never before `now`
    /// for hits; `now` itself for misses).
    pub staged: Time,
    /// Hit/miss classification (one of `Miss`, `HitFast`, `HitSlow`).
    pub class: ConsultClass,
}

/// A [`Consult`] that went through the fallible store path: the same
/// classification plus what the fault layer did to get there.
#[derive(Debug, Clone, Copy)]
pub struct FaultedConsult {
    /// The classification and staging outcome (backoff included in
    /// `staged`).
    pub consult: Consult,
    /// Injected read errors retried before the outcome settled.
    pub retries: u32,
    /// Why the cached KV was abandoned, when it was.
    pub degraded: Option<DegradeReason>,
}

/// The four bandwidth links of a serving run plus the fast-tier staging
/// clock, unified behind one planning interface.
#[derive(Debug)]
pub struct TransferPlan {
    h2d: BandwidthLink,
    d2h: BandwidthLink,
    slow_rd: BandwidthLink,
    slow_wr: BandwidthLink,
    /// When each session's KV finishes staging into the fast tier.
    fast_ready_at: HashMap<u64, Time>,
    async_save: bool,
    write_buffer_bytes: u64,
}

impl TransferPlan {
    /// Builds the links for `cfg`: PCIe for both device streams, and the
    /// medium's slow tier (SSD, or PCIe again when DRAM is the slow tier
    /// behind an HBM fast tier).
    pub fn new(cfg: &EngineConfig) -> Self {
        let pcie = cfg.cluster.pcie_bw;
        let (slow_rd_bw, slow_wr_bw) = match cfg.medium {
            Medium::DramDisk => (cfg.cluster.disk_read_bw, cfg.cluster.disk_write_bw),
            // Fast tier is HBM; the slow tier is host DRAM behind PCIe.
            Medium::HbmDram | Medium::HbmOnly => (pcie, pcie),
        };
        TransferPlan {
            h2d: BandwidthLink::new("h2d", pcie),
            d2h: BandwidthLink::new("d2h", pcie),
            slow_rd: BandwidthLink::new("slow-rd", slow_rd_bw),
            slow_wr: BandwidthLink::new("slow-wr", slow_wr_bw),
            fast_ready_at: HashMap::new(),
            async_save: cfg.async_save,
            write_buffer_bytes: cfg.write_buffer_bytes,
        }
    }

    /// Installs the link-fault windows of `plan` that target `instance`
    /// (faults with `instance: None` apply to every instance). Link names
    /// match the stream labels: `"h2d"`, `"d2h"`, `"slow-rd"`,
    /// `"slow-wr"`. Unknown names are ignored so plans can name links a
    /// medium does not have.
    pub fn install_faults(&mut self, plan: &FaultPlan, instance: u32) {
        for f in &plan.link_faults {
            if f.instance.is_some_and(|i| i != instance) {
                continue;
            }
            let link = match f.link {
                "h2d" => &mut self.h2d,
                "d2h" => &mut self.d2h,
                "slow-rd" => &mut self.slow_rd,
                "slow-wr" => &mut self.slow_wr,
                _ => continue,
            };
            link.add_fault_window(f.window, f.kind);
        }
    }

    /// Charges store transfers on the slow-tier links; promotions update
    /// the fast-tier staging times.
    pub fn charge(&mut self, now: Time, transfers: &[Transfer]) {
        for t in transfers {
            match t.dir {
                TransferDir::DiskToDram => {
                    let done = self.slow_rd.transfer(now, t.bytes);
                    let e = self.fast_ready_at.entry(t.session.0).or_insert(done);
                    *e = (*e).max(done);
                }
                TransferDir::DramToDisk => {
                    self.slow_wr.transfer(now, t.bytes);
                }
            }
        }
    }

    /// Time before which the next prefill may not start because the HBM
    /// write buffer is still draining (§3.2.2). With synchronous saving
    /// the stall is charged at retirement instead, so the gate is open.
    pub fn write_gate(&self, now: Time) -> Time {
        if !self.async_save {
            return now;
        }
        let buffer_drain = self.d2h.duration_of(self.write_buffer_bytes);
        let backlog = self.d2h.backlog_at(now);
        if backlog > buffer_drain {
            now + (backlog - buffer_drain)
        } else {
            now
        }
    }

    /// Consults the store for a resuming job with `hist` tokens of
    /// history and classifies the access. `stored_bytes_of` maps cached
    /// tokens to their on-store byte size (compression included).
    ///
    /// The caller guarantees `hist > 0` and a configured store; the
    /// no-history and no-store classifications live in the orchestrator.
    pub fn consult(
        &mut self,
        now: Time,
        store: &mut dyn StorePlanner,
        sid: SessionId,
        hist: u64,
        queue: &QueueView,
        stored_bytes_of: impl Fn(u64) -> u64,
    ) -> Consult {
        let (found, transfers) = store.load_for_use(sid, now, queue);
        let entry_tokens = store.entry_tokens(sid).unwrap_or(0);
        let had_promotion = transfers
            .iter()
            .any(|t| t.session == sid && t.dir == TransferDir::DiskToDram);
        self.charge(now, &transfers);
        match found {
            Lookup::Miss => Consult {
                reused: 0,
                staged: now,
                class: ConsultClass::Miss,
            },
            Lookup::Dram => {
                let staged = self
                    .fast_ready_at
                    .get(&sid.0)
                    .copied()
                    .unwrap_or(now)
                    .max(now);
                Consult {
                    reused: entry_tokens.min(hist),
                    staged,
                    class: ConsultClass::HitFast,
                }
            }
            Lookup::Disk => {
                let staged = if had_promotion {
                    self.fast_ready_at.get(&sid.0).copied().unwrap_or(now)
                } else {
                    // DRAM could not stage it: stream straight from the
                    // slow tier (rare pathological sizing).
                    let bytes = stored_bytes_of(entry_tokens.min(hist));
                    self.slow_rd.transfer(now, bytes)
                };
                Consult {
                    reused: entry_tokens.min(hist),
                    staged: staged.max(now),
                    class: ConsultClass::HitSlow,
                }
            }
        }
    }

    /// Fallible form of [`TransferPlan::consult`] for runs with a fault
    /// plan installed: reads may be retried (their exponential backoff is
    /// wall time, so it pushes the staging clock) or abandoned entirely,
    /// degrading the access to a miss-classified full re-prefill.
    pub fn consult_faulted(
        &mut self,
        now: Time,
        store: &mut dyn StorePlanner,
        sid: SessionId,
        hist: u64,
        queue: &QueueView,
        stored_bytes_of: impl Fn(u64) -> u64,
    ) -> FaultedConsult {
        let outcome = store.try_load_for_use(sid, now, queue);
        let entry_tokens = store.entry_tokens(sid).unwrap_or(0);
        let had_promotion = outcome
            .transfers
            .iter()
            .any(|t| t.session == sid && t.dir == TransferDir::DiskToDram);
        // Backoff is wall time spent re-issuing slow-tier reads: the
        // surviving transfers (and the job's staging) start after it.
        let start = now + outcome.backoff;
        self.charge(start, &outcome.transfers);
        let consult = match outcome.lookup {
            Lookup::Miss => Consult {
                reused: 0,
                staged: start,
                class: ConsultClass::Miss,
            },
            Lookup::Dram => {
                let staged = self
                    .fast_ready_at
                    .get(&sid.0)
                    .copied()
                    .unwrap_or(start)
                    .max(start);
                Consult {
                    reused: entry_tokens.min(hist),
                    staged,
                    class: ConsultClass::HitFast,
                }
            }
            Lookup::Disk => {
                let staged = if had_promotion {
                    self.fast_ready_at.get(&sid.0).copied().unwrap_or(start)
                } else {
                    let bytes = stored_bytes_of(entry_tokens.min(hist));
                    self.slow_rd.transfer(start, bytes)
                };
                Consult {
                    reused: entry_tokens.min(hist),
                    staged: staged.max(start),
                    class: ConsultClass::HitSlow,
                }
            }
        };
        FaultedConsult {
            consult,
            retries: outcome.retries,
            degraded: outcome.degraded,
        }
    }

    /// When `session`'s KV finishes staging into the fast tier, if a
    /// promotion was ever charged for it.
    pub fn fast_ready(&self, session: u64) -> Option<Time> {
        self.fast_ready_at.get(&session).copied()
    }

    /// Transfer time of `bytes` on the host→device stream.
    pub fn h2d_duration_of(&self, bytes: u64) -> Dur {
        self.h2d.duration_of(bytes)
    }

    /// When the host→device stream frees up.
    pub fn h2d_busy_until(&self) -> Time {
        self.h2d.busy_until()
    }

    /// Marks the host→device stream busy through `until` for `bytes`
    /// (the pre-loading schedule computes its own completion time).
    pub fn h2d_occupy(&mut self, until: Time, bytes: u64) {
        self.h2d.occupy(until, bytes);
    }

    /// Queues `bytes` on the device→host write stream; returns the
    /// completion time.
    pub fn d2h_transfer(&mut self, now: Time, bytes: u64) -> Time {
        self.d2h.transfer(now, bytes)
    }

    /// Total bytes moved host→device.
    pub fn h2d_bytes(&self) -> u64 {
        self.h2d.total_bytes()
    }

    /// Total bytes moved device→host.
    pub fn d2h_bytes(&self) -> u64 {
        self.d2h.total_bytes()
    }

    /// Total bytes read from the slow tier.
    pub fn slow_read_bytes(&self) -> u64 {
        self.slow_rd.total_bytes()
    }

    /// Total bytes written to the slow tier.
    pub fn slow_write_bytes(&self) -> u64 {
        self.slow_wr.total_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Mode;
    use models::ModelSpec;

    fn plan() -> TransferPlan {
        TransferPlan::new(&EngineConfig::paper(
            Mode::CachedAttention,
            ModelSpec::llama2_13b(),
        ))
    }

    fn promote(sid: u64, bytes: u64) -> Transfer {
        Transfer {
            session: SessionId(sid),
            bytes,
            dir: TransferDir::DiskToDram,
        }
    }

    fn demote(sid: u64, bytes: u64) -> Transfer {
        Transfer {
            session: SessionId(sid),
            bytes,
            dir: TransferDir::DramToDisk,
        }
    }

    /// Promotions serialize on the slow-read link in charge order: the
    /// second session's staging time includes the first's transfer.
    #[test]
    fn charge_serializes_promotions_in_order() {
        let mut p = plan();
        let gb = 1_000_000_000;
        p.charge(Time::ZERO, &[promote(1, gb), promote(2, gb)]);
        let t1 = p.fast_ready_at[&1];
        let t2 = p.fast_ready_at[&2];
        assert!(t1 > Time::ZERO);
        // Same payload, FIFO link: session 2 finishes one transfer later.
        assert_eq!(t2.as_secs_f64(), 2.0 * t1.as_secs_f64());
        assert_eq!(p.slow_read_bytes(), 2 * gb);
        assert_eq!(p.slow_write_bytes(), 0);
    }

    /// Demotions ride the write channel and never touch staging times.
    #[test]
    fn demotions_use_the_write_channel() {
        let mut p = plan();
        p.charge(Time::ZERO, &[demote(3, 500_000_000)]);
        assert_eq!(p.slow_write_bytes(), 500_000_000);
        assert_eq!(p.slow_read_bytes(), 0);
        assert!(p.fast_ready_at.is_empty());
    }

    /// Re-promoting a session keeps the *latest* staging completion.
    #[test]
    fn repeated_promotions_keep_the_max() {
        let mut p = plan();
        p.charge(Time::ZERO, &[promote(7, 1_000_000_000)]);
        let first = p.fast_ready_at[&7];
        p.charge(Time::ZERO, &[promote(7, 1_000_000_000)]);
        assert!(p.fast_ready_at[&7] > first);
    }

    /// The write gate only closes once the d2h backlog exceeds the
    /// configured buffer's drain time, and then by exactly the excess.
    #[test]
    fn write_gate_tracks_buffer_excess() {
        let mut p = plan();
        let now = Time::ZERO;
        assert_eq!(p.write_gate(now), now);
        // Fill well past the 2 GB buffer.
        p.d2h_transfer(now, 10_000_000_000);
        let gate = p.write_gate(now);
        let drain = p.d2h.duration_of(p.write_buffer_bytes);
        let backlog = p.d2h.backlog_at(now);
        assert_eq!(gate, now + (backlog - drain));
        assert!(gate > now);
    }

    /// With async saving off the gate never closes (the stall is charged
    /// synchronously at retirement instead).
    #[test]
    fn sync_save_leaves_the_gate_open() {
        let mut cfg = EngineConfig::paper(Mode::CachedAttention, ModelSpec::llama2_13b());
        cfg.async_save = false;
        let mut p = TransferPlan::new(&cfg);
        p.d2h_transfer(Time::ZERO, 50_000_000_000);
        assert_eq!(p.write_gate(Time::ZERO), Time::ZERO);
    }
}
