//! Truncation stage: the context-overflow policy (§3.4).
//!
//! When a session's history plus the new prompt no longer fits the model's
//! context window, the engine drops leading history in fixed-ratio slices
//! until the prompt fits. What happens to the *stored* KV then depends on
//! the positional-encoding scheme: decoupled encodings (CachedAttention)
//! let the cached KV be truncated in place and stay valid; coupled
//! encodings (the OF baseline) scramble positions, so the whole cache is
//! invalidated; the recompute baseline has no cache to worry about.
//!
//! [`truncate_history`] is the pure arithmetic; [`apply_store_effect`]
//! is the per-mode store side effect.

use store::{SessionId, StorePlanner};

use crate::Mode;

/// Outcome of the overflow check for one arriving turn.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Truncation {
    /// History length after truncation (unchanged when it already fit).
    pub new_hist: u64,
    /// Whether any history was dropped.
    pub truncated: bool,
}

/// Drops leading history in `⌈window · ratio⌉`-token slices until
/// `hist + user` fits in `window`. Prompts longer than the window are
/// clamped to it first (the engine never presents more than one window
/// of prompt).
///
/// The post-condition `new_hist + min(user, window) <= window` always
/// holds: the slice size is at least one token, so the loop either fits
/// the prompt or exhausts the history.
pub fn truncate_history(window: u64, ratio: f64, hist: u64, user: u64) -> Truncation {
    let user = user.min(window);
    if hist + user <= window {
        return Truncation {
            new_hist: hist,
            truncated: false,
        };
    }
    let drop = ((window as f64) * ratio).max(1.0) as u64;
    let mut h = hist;
    while h + user > window {
        let cut = drop.min(h);
        h -= cut;
        if cut == 0 {
            break;
        }
    }
    Truncation {
        new_hist: h,
        truncated: true,
    }
}

/// Applies the per-mode store side effect of a truncation: CA truncates
/// the cached KV in place (decoupled positional encoding, §3.4), OF
/// invalidates it wholesale (§4.3.4), RE has no store.
pub fn apply_store_effect(
    mode: Mode,
    store: Option<&mut dyn StorePlanner>,
    sid: SessionId,
    new_bytes: u64,
    new_tokens: u64,
) {
    match mode {
        Mode::CachedAttention => {
            if let Some(store) = store {
                store.truncate(sid, new_bytes, new_tokens);
            }
        }
        Mode::CoupledOverflow => {
            if let Some(store) = store {
                store.invalidate(sid);
            }
        }
        Mode::Recompute => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim::Time;
    use store::{AttentionStore, Lookup, QueueView, StoreConfig, TierId};

    #[test]
    fn no_truncation_when_context_fits() {
        let t = truncate_history(2048, 0.5, 1000, 500);
        assert_eq!(
            t,
            Truncation {
                new_hist: 1000,
                truncated: false
            }
        );
    }

    #[test]
    fn drops_in_ratio_slices() {
        // window 2048, ratio 0.5 → 1024-token slices. 2000 + 500 > 2048,
        // one slice leaves 976 + 500 <= 2048.
        let t = truncate_history(2048, 0.5, 2000, 500);
        assert_eq!(
            t,
            Truncation {
                new_hist: 976,
                truncated: true
            }
        );
    }

    #[test]
    fn oversized_prompt_exhausts_history() {
        // The prompt alone fills the window: all history goes.
        let t = truncate_history(2048, 0.5, 4000, 5000);
        assert!(t.truncated);
        assert_eq!(t.new_hist, 0);
    }

    /// The invariant the admission path relies on: the presented context
    /// (post-truncation history + clamped prompt) never exceeds the
    /// model window, across the whole parameter grid.
    #[test]
    fn result_never_exceeds_the_window() {
        for window in [1u64, 7, 64, 2048, 4096] {
            for ratio in [0.01, 0.25, 0.5, 0.99] {
                for hist in [0u64, 1, 63, 64, 1000, 2048, 10_000] {
                    for user in [0u64, 1, 64, 2048, 9999] {
                        let t = truncate_history(window, ratio, hist, user);
                        assert!(
                            t.new_hist + user.min(window) <= window,
                            "w={window} r={ratio} h={hist} u={user} -> {t:?}"
                        );
                        assert!(t.new_hist <= hist);
                        assert_eq!(t.truncated, hist + user.min(window) > window);
                    }
                }
            }
        }
    }

    #[test]
    fn store_effects_follow_the_mode() {
        let sid = SessionId(9);
        let view = QueueView::empty();
        let mk = || {
            let mut s = AttentionStore::new(StoreConfig::default());
            s.save(sid, 1_000_000, 100, Time::ZERO, &view);
            s
        };

        let mut ca = mk();
        apply_store_effect(Mode::CachedAttention, Some(&mut ca), sid, 400_000, 40);
        assert_eq!(StorePlanner::entry_tokens(&ca, sid), Some(40));

        let mut of = mk();
        apply_store_effect(Mode::CoupledOverflow, Some(&mut of), sid, 400_000, 40);
        assert_eq!(StorePlanner::entry_tokens(&of, sid), None);

        let mut re = mk();
        apply_store_effect(Mode::Recompute, Some(&mut re), sid, 400_000, 40);
        let (found, _) = re.load_for_use(sid, Time::ZERO, &view);
        assert_eq!(found, Lookup::Hit(TierId(0)));
    }
}
