//! One serving instance of a cluster: the per-GPU pipeline state.
//!
//! [`EngineInstance`] bundles everything that was per-engine before the
//! cluster refactor — the job queue, the executor, the PCIe/slow-tier
//! links and the HBM ledger — plus per-instance counters the cluster
//! report surfaces. The shared pieces (the session table, the job arena,
//! the [`AttentionStore`](store::AttentionStore) and the aggregate
//! [`RunReport`](crate::RunReport)) stay in the
//! [`ClusterSim`](crate::ClusterSim) orchestrator.

use serde::Serialize;
use sim::Time;

use crate::exec::Executor;
use crate::hbm::HbmLedger;
use crate::scheduler::{Fcfs, SchedulerPolicy};
use crate::transfer::TransferPlan;
use crate::EngineConfig;

/// The per-instance pipeline state of one cluster member.
pub struct EngineInstance {
    /// Instance id (index into the cluster's instance table).
    pub id: u32,
    /// The instance's job queue (FCFS by default).
    pub sched: Box<dyn SchedulerPolicy>,
    /// The instance's GPU execution state (action + decode batch).
    pub exec: Executor,
    /// The instance's four bandwidth links and staging clocks.
    pub plan: TransferPlan,
    /// The instance's live-KV HBM ledger.
    pub hbm: HbmLedger,
    /// Turns retired on this instance.
    pub turns_done: u64,
    /// Measured resumption turns consulted for jobs routed here.
    pub resumption_turns: u64,
    /// Measured fast-tier hits for jobs routed here.
    pub hits_fast: u64,
    /// Measured slow-tier hits for jobs routed here.
    pub hits_slow: u64,
    /// Measured misses for jobs routed here.
    pub misses: u64,
    /// Last job retirement on this instance.
    pub last_completion: Time,
    /// Whether the instance is still serving (`false` after a scripted
    /// crash; dead instances accept no routes and ignore GPU ticks).
    pub alive: bool,
    /// Whether a clean autoscaler scale-down (not a crash) took this
    /// instance out of service. Departed instances can be revived by a
    /// later scale-up.
    pub departed: bool,
}

impl EngineInstance {
    /// Builds instance `id` for `cfg`: an empty FCFS queue, an idle
    /// executor, fresh links and a model-sized HBM budget.
    pub fn new(id: u32, cfg: &EngineConfig) -> Self {
        Self::with_scheduler(id, cfg, Box::new(Fcfs::new()))
    }

    /// Like [`EngineInstance::new`] but with a caller-chosen queueing
    /// policy (e.g. EDF under an SLO config).
    pub fn with_scheduler(id: u32, cfg: &EngineConfig, sched: Box<dyn SchedulerPolicy>) -> Self {
        EngineInstance {
            id,
            sched,
            exec: Executor::new(),
            plan: TransferPlan::new(cfg),
            hbm: HbmLedger::new(&cfg.cluster, &cfg.model),
            turns_done: 0,
            resumption_turns: 0,
            hits_fast: 0,
            hits_slow: 0,
            misses: 0,
            last_completion: Time::ZERO,
            alive: true,
            departed: false,
        }
    }

    /// Snapshot of this instance's counters and link totals for the
    /// cluster report.
    pub fn report(&self) -> InstanceReport {
        InstanceReport {
            instance: self.id,
            turns_done: self.turns_done,
            resumption_turns: self.resumption_turns,
            hits_fast: self.hits_fast,
            hits_slow: self.hits_slow,
            misses: self.misses,
            h2d_bytes: self.plan.h2d_bytes(),
            d2h_bytes: self.plan.d2h_bytes(),
            slow_read_bytes: self.plan.slow_read_bytes(),
            slow_write_bytes: self.plan.slow_write_bytes(),
            hbm_high_water_bytes: self.hbm.high_water(),
            last_completion_secs: self.last_completion.as_secs_f64(),
            crashed: !self.alive && !self.departed,
            departed: self.departed,
        }
    }
}

/// Per-instance metrics of one cluster run.
#[derive(Debug, Clone, Default, Serialize)]
pub struct InstanceReport {
    /// Instance id.
    pub instance: u32,
    /// Turns retired on this instance.
    pub turns_done: u64,
    /// Measured resumption turns consulted for jobs routed here.
    pub resumption_turns: u64,
    /// Measured fast-tier hits.
    pub hits_fast: u64,
    /// Measured slow-tier hits.
    pub hits_slow: u64,
    /// Measured misses.
    pub misses: u64,
    /// Bytes moved host→device on this instance's links.
    pub h2d_bytes: u64,
    /// Bytes moved device→host on this instance's links.
    pub d2h_bytes: u64,
    /// Bytes read from the slow tier for this instance.
    pub slow_read_bytes: u64,
    /// Bytes written to the slow tier for this instance.
    pub slow_write_bytes: u64,
    /// Peak live-KV HBM reservation on this instance.
    pub hbm_high_water_bytes: u64,
    /// Last retirement on this instance, seconds.
    pub last_completion_secs: f64,
    /// Whether a scripted fault took this instance down during the run.
    pub crashed: bool,
    /// Whether the autoscaler retired this instance cleanly and it was
    /// still out of service at the end of the run.
    pub departed: bool,
}

impl InstanceReport {
    /// KV hit rate over this instance's measured resumption turns.
    pub fn hit_rate(&self) -> f64 {
        if self.resumption_turns == 0 {
            return 0.0;
        }
        (self.hits_fast + self.hits_slow) as f64 / self.resumption_turns as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Mode;
    use models::ModelSpec;

    #[test]
    fn fresh_instance_is_idle_and_empty() {
        let cfg = EngineConfig::paper(Mode::CachedAttention, ModelSpec::llama2_13b());
        let inst = EngineInstance::new(3, &cfg);
        assert_eq!(inst.id, 3);
        assert!(inst.sched.is_empty());
        assert!(inst.exec.batch.is_empty());
        let r = inst.report();
        assert_eq!(r.instance, 3);
        assert_eq!(r.turns_done, 0);
        assert_eq!(r.hit_rate(), 0.0);
    }

    #[test]
    fn instance_hit_rate_partitions() {
        let r = InstanceReport {
            resumption_turns: 10,
            hits_fast: 6,
            hits_slow: 1,
            misses: 3,
            ..InstanceReport::default()
        };
        assert!((r.hit_rate() - 0.7).abs() < 1e-12);
    }
}
