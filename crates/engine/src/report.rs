//! Per-run metrics: everything the paper's evaluation section reports.

use metrics::aws::{CostReport, PriceSheet};
use metrics::{Counter, Histogram, TimeSeries, Welford};
use store::StoreStats;

use crate::events::ConsultClass;
use crate::Mode;
use serde::Serialize;

/// Metrics collected over one serving run (post-warmup unless noted).
///
/// Serializes to JSON with deterministic field order and shortest
/// round-trip float formatting, so two bit-identical runs produce
/// byte-identical JSON — the golden-report regression tests
/// (`tests/golden_report.rs`) rely on this to pin the simulator's exact
/// behavior across refactors.
#[derive(Debug, Default, Serialize)]
pub struct RunReport {
    /// Served model name.
    pub model: String,
    /// Serving mode label ("CA"/"RE"/"OF").
    pub mode: String,
    /// Time to first token per measured turn, seconds: GPU admission →
    /// first token (service latency; queue wait is reported separately).
    pub ttft: Histogram,
    /// Queue wait per measured turn, seconds (arrival → GPU admission).
    pub queue_wait: Welford,
    /// Turns measured (arrived after warmup).
    pub turns_measured: Counter,
    /// Measured turns that had history to reuse (turn index ≥ 1).
    pub resumption_turns: Counter,
    /// Resumption turns whose KV was found in the fast tier.
    pub hits_fast: Counter,
    /// Resumption turns whose KV was found in the slow tier.
    pub hits_slow: Counter,
    /// Resumption turns with no cached KV.
    pub misses: Counter,
    /// Prompt tokens the measured turns presented (history + new).
    pub prompt_tokens: Counter,
    /// Prompt tokens actually prefilled on the GPU (new + missed history).
    pub computed_tokens: Counter,
    /// GPU seconds spent in prefill compute (whole run).
    pub prefill_busy_secs: f64,
    /// GPU seconds spent in decode iterations (whole run).
    pub decode_busy_secs: f64,
    /// GPU seconds stalled waiting for KV transfers (whole run).
    pub stall_secs: f64,
    /// GPU seconds of prefill attributable to measured turns only.
    pub measured_prefill_secs: f64,
    /// Wall-clock seconds from first arrival to last completion.
    pub makespan_secs: f64,
    /// Per-turn decode wall latency (first decode token to completion),
    /// seconds. Prefill-blocked iterations inflate it; chunked prefill
    /// deflates it.
    pub decode_latency: Histogram,
    /// Bytes moved host→device (KV loads).
    pub h2d_bytes: u64,
    /// Bytes moved device→host (KV saves).
    pub d2h_bytes: u64,
    /// Bytes read from the slow tier.
    pub slow_read_bytes: u64,
    /// Bytes written to the slow tier.
    pub slow_write_bytes: u64,
    /// Final AttentionStore statistics.
    pub store_stats: StoreStats,
    /// Context-overflow truncations performed.
    pub truncations: Counter,
    /// Sessions completed.
    pub sessions_done: Counter,
    /// GPU busy-seconds per minute of virtual time (utilization curve).
    pub gpu_busy_timeline: TimeSeries,
    /// Peak HBM bytes held by live KV of the running batch (§2.4's
    /// Challenge 2: the free-HBM budget the batch competes for).
    pub hbm_high_water_bytes: u64,
}

impl RunReport {
    /// Creates an empty report labelled for `model`/`mode`.
    pub fn new(model: &str, mode: Mode) -> Self {
        RunReport {
            model: model.to_string(),
            mode: mode.label().to_string(),
            ..RunReport::default()
        }
    }

    /// Records a store consultation's hit/miss classification. Only
    /// measured turns count toward the report.
    pub fn record_consult(&mut self, class: ConsultClass, measured: bool) {
        if !measured {
            return;
        }
        match class {
            ConsultClass::NoHistory => {}
            ConsultClass::NoStore | ConsultClass::Miss => self.misses.incr(),
            ConsultClass::HitFast => self.hits_fast.incr(),
            ConsultClass::HitSlow => self.hits_slow.incr(),
        }
    }

    /// Records an admission: `comp` seconds of prefill compute inside a
    /// `total`-second GPU span starting at `now`, stalled for `stall`
    /// seconds; measured turns also contribute token counts.
    #[allow(clippy::too_many_arguments)]
    pub fn record_admission(
        &mut self,
        now: f64,
        comp: f64,
        total: f64,
        stall: f64,
        measured: bool,
        prompt_tokens: u64,
        computed_tokens: u64,
    ) {
        self.prefill_busy_secs += comp;
        self.gpu_busy_timeline.add_span(now, total, total);
        self.stall_secs += stall;
        if measured {
            self.turns_measured.incr();
            self.prompt_tokens.add(prompt_tokens);
            self.computed_tokens.add(computed_tokens);
            self.measured_prefill_secs += comp;
        }
    }

    /// Records a prefill completion (the first token) of a measured turn.
    pub fn record_first_token(&mut self, measured: bool, ttft: f64, queue_wait: f64) {
        if measured {
            self.ttft.push(ttft);
            self.queue_wait.push(queue_wait);
        }
    }

    /// Records one decode iteration of `dur` seconds. `span_at` is the
    /// start time for the utilization timeline — `None` for iterations
    /// piggybacked inside a chunked prefill, whose span the admission
    /// already covers.
    pub fn record_decode_iter(&mut self, dur: f64, span_at: Option<f64>) {
        self.decode_busy_secs += dur;
        if let Some(at) = span_at {
            self.gpu_busy_timeline.add_span(at, dur, dur);
        }
    }

    /// Overall KV cache hit rate over resumption turns (Fig 13).
    pub fn hit_rate(&self) -> f64 {
        let total = self.resumption_turns.get();
        if total == 0 {
            return 0.0;
        }
        (self.hits_fast.get() + self.hits_slow.get()) as f64 / total as f64
    }

    /// Fast-tier (DRAM) share of resumption turns (Fig 21's breakdown).
    pub fn fast_hit_rate(&self) -> f64 {
        self.hits_fast.ratio_of(&self.resumption_turns)
    }

    /// Slow-tier (disk) share of resumption turns.
    pub fn slow_hit_rate(&self) -> f64 {
        self.hits_slow.ratio_of(&self.resumption_turns)
    }

    /// Mean TTFT in seconds (Fig 14).
    pub fn ttft_mean(&self) -> f64 {
        self.ttft.mean()
    }

    /// Prefill throughput: prompt tokens presented per second of prefill
    /// GPU time (Fig 15). Reuse raises this because reused history costs
    /// no prefill time.
    pub fn prefill_throughput(&self) -> f64 {
        if self.measured_prefill_secs == 0.0 {
            return 0.0;
        }
        self.prompt_tokens.get() as f64 / self.measured_prefill_secs
    }

    /// Total GPU hours to finish the workload (Fig 16): the makespan, as
    /// the GPUs are rented for the duration of the run.
    pub fn gpu_hours(&self) -> f64 {
        self.makespan_secs / 3600.0
    }

    /// GPU busy hours (prefill + decode + transfer stalls).
    pub fn busy_hours(&self) -> f64 {
        (self.prefill_busy_secs + self.decode_busy_secs + self.stall_secs) / 3600.0
    }

    /// Fraction of presented prompt tokens that had to be recomputed.
    pub fn recompute_fraction(&self) -> f64 {
        self.computed_tokens.ratio_of(&self.prompt_tokens)
    }

    /// Prices the run (Fig 17): GPUs and storage rented for the makespan.
    pub fn cost(&self, prices: &PriceSheet, n_gpus: u32, dram_gb: f64, ssd_gb: f64) -> CostReport {
        CostReport::price(
            prices,
            n_gpus,
            self.gpu_hours(),
            dram_gb,
            ssd_gb,
            self.gpu_hours(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rates_handle_empty_runs() {
        let r = RunReport::new("m", Mode::CachedAttention);
        assert_eq!(r.hit_rate(), 0.0);
        assert_eq!(r.prefill_throughput(), 0.0);
        assert_eq!(r.recompute_fraction(), 0.0);
    }

    #[test]
    fn hit_rates_partition() {
        let mut r = RunReport::new("m", Mode::CachedAttention);
        r.resumption_turns.add(10);
        r.hits_fast.add(6);
        r.hits_slow.add(1);
        r.misses.add(3);
        assert!((r.hit_rate() - 0.7).abs() < 1e-12);
        assert!((r.fast_hit_rate() - 0.6).abs() < 1e-12);
        assert!((r.slow_hit_rate() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn throughput_uses_presented_tokens() {
        let mut r = RunReport::new("m", Mode::CachedAttention);
        r.prompt_tokens.add(10_000);
        r.measured_prefill_secs = 2.0;
        assert_eq!(r.prefill_throughput(), 5_000.0);
    }

    #[test]
    fn cost_matches_paper_storage_share() {
        // 2-GPU LLaMA-13B: storage should be ~16% of the CA bill (§4.2).
        let mut r = RunReport::new("LLaMA-13B", Mode::CachedAttention);
        r.makespan_secs = 3600.0;
        let c = r.cost(&PriceSheet::default(), 2, 128.0, 10_000.0);
        assert!(
            (c.storage_fraction() - 0.164).abs() < 0.01,
            "{}",
            c.storage_fraction()
        );
    }
}
