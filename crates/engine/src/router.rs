//! Routing stage: which serving instance a turn lands on.
//!
//! In a cluster every arriving turn must be dispatched to one of N
//! engine instances before it is queued. The [`RouterPolicy`] trait
//! captures that decision; the paper-faithful default is
//! [`SessionAffinity`] — a session sticks to the instance that served
//! its first turn, so its KV transfers stay on one instance's PCIe links
//! and the shared AttentionStore sees a stable consumer per session.
//! [`LeastLoaded`] trades that cache affinity for load balance by always
//! picking the emptiest instance, letting `exp_cluster` surface the
//! affinity-vs-balance tradeoff in per-instance hit rates.

/// A point-in-time load summary of one engine instance, given to the
/// router at dispatch time.
#[derive(Debug, Clone, Copy)]
pub struct InstanceLoad {
    /// Jobs waiting in the instance's scheduler queue.
    pub queued: usize,
    /// Jobs decoding in the instance's continuous batch.
    pub batch: usize,
    /// Whether the instance is up. Routers must never pick a dead
    /// instance; the orchestrator guarantees at least one is alive.
    pub alive: bool,
}

impl Default for InstanceLoad {
    fn default() -> Self {
        InstanceLoad {
            queued: 0,
            batch: 0,
            alive: true,
        }
    }
}

impl InstanceLoad {
    /// Total jobs the instance currently holds.
    pub fn total(&self) -> usize {
        self.queued + self.batch
    }
}

/// Decides which instance an arriving turn runs on.
///
/// Implementations may keep state (the affinity table); the orchestrator
/// calls [`route`](RouterPolicy::route) exactly once per turn arrival,
/// in event order, so stateful routers stay deterministic.
pub trait RouterPolicy {
    /// Picks the instance for `session`'s next turn. `loads` has one
    /// entry per instance; the returned index must be `< loads.len()`.
    fn route(&mut self, session: u64, loads: &[InstanceLoad]) -> usize;

    /// Short label for reports (`"affinity"`, `"least-loaded"`).
    fn label(&self) -> &'static str;

    /// Notifies the router that `instance` went down, so stateful
    /// routers can drop mappings onto it. Stateless routers ignore it.
    fn on_instance_down(&mut self, _instance: usize) {}
}

/// Which router a cluster runs; the config-level enum.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RouterKind {
    /// Sticky session→instance mapping (first turn lands least-loaded).
    #[default]
    SessionAffinity,
    /// Every turn lands on the emptiest instance.
    LeastLoaded,
}

impl RouterKind {
    /// Instantiates the router.
    pub fn build(self) -> Box<dyn RouterPolicy> {
        match self {
            RouterKind::SessionAffinity => Box::new(SessionAffinity::new()),
            RouterKind::LeastLoaded => Box::new(LeastLoaded),
        }
    }

    /// Short label for reports.
    pub fn label(self) -> &'static str {
        match self {
            RouterKind::SessionAffinity => "affinity",
            RouterKind::LeastLoaded => "least-loaded",
        }
    }
}

/// Returns the least-loaded *alive* instance, lowest index on ties (so
/// N=1 always routes to instance 0).
fn least_loaded_index(loads: &[InstanceLoad]) -> usize {
    loads
        .iter()
        .enumerate()
        .filter(|(_, l)| l.alive)
        .min_by_key(|(i, l)| (l.total(), *i))
        .map(|(i, _)| i)
        .expect("at least one alive instance")
}

/// Session-affinity routing: a session's first turn lands on the
/// least-loaded instance and every later turn follows it there, keeping
/// the session's KV traffic on one instance's links.
#[derive(Debug, Default)]
pub struct SessionAffinity {
    assigned: std::collections::HashMap<u64, usize>,
}

impl SessionAffinity {
    /// Creates an empty affinity table.
    pub fn new() -> Self {
        SessionAffinity::default()
    }
}

impl RouterPolicy for SessionAffinity {
    fn route(&mut self, session: u64, loads: &[InstanceLoad]) -> usize {
        let idx = *self
            .assigned
            .entry(session)
            .or_insert_with(|| least_loaded_index(loads));
        if loads[idx].alive {
            return idx;
        }
        // The assigned instance died since: re-home the session.
        let next = least_loaded_index(loads);
        self.assigned.insert(session, next);
        next
    }

    fn label(&self) -> &'static str {
        "affinity"
    }

    fn on_instance_down(&mut self, instance: usize) {
        // Drop every mapping onto the dead instance so future routes
        // re-home those sessions instead of consulting a stale entry.
        self.assigned.retain(|_, &mut i| i != instance);
    }
}

/// Pure load balancing: every turn (even of a returning session) lands
/// on the instance with the fewest queued + batched jobs.
#[derive(Debug, Default)]
pub struct LeastLoaded;

impl RouterPolicy for LeastLoaded {
    fn route(&mut self, _session: u64, loads: &[InstanceLoad]) -> usize {
        least_loaded_index(loads)
    }

    fn label(&self) -> &'static str {
        "least-loaded"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn loads(ls: &[(usize, usize)]) -> Vec<InstanceLoad> {
        ls.iter()
            .map(|&(queued, batch)| InstanceLoad {
                queued,
                batch,
                alive: true,
            })
            .collect()
    }

    #[test]
    fn affinity_sticks_after_first_route() {
        let mut r = SessionAffinity::new();
        // First turn: instance 1 is emptiest.
        assert_eq!(r.route(7, &loads(&[(3, 1), (0, 0)])), 1);
        // Later turns stick to instance 1 even when 0 empties out.
        assert_eq!(r.route(7, &loads(&[(0, 0), (9, 9)])), 1);
        // A different session routes independently.
        assert_eq!(r.route(8, &loads(&[(0, 0), (9, 9)])), 0);
    }

    #[test]
    fn least_loaded_follows_the_queue_and_batch() {
        let mut r = LeastLoaded;
        assert_eq!(r.route(7, &loads(&[(2, 2), (1, 2), (4, 0)])), 1);
        // Ties break to the lowest index.
        assert_eq!(r.route(7, &loads(&[(1, 1), (2, 0), (0, 2)])), 0);
    }

    #[test]
    fn single_instance_always_routes_to_zero() {
        for kind in [RouterKind::SessionAffinity, RouterKind::LeastLoaded] {
            let mut r = kind.build();
            for s in 0..10u64 {
                assert_eq!(r.route(s, &loads(&[(s as usize, 1)])), 0);
            }
        }
    }

    #[test]
    fn dead_instances_are_never_picked() {
        let mut ls = loads(&[(0, 0), (5, 5)]);
        ls[0].alive = false;
        // Least-loaded skips the (emptier) dead instance.
        assert_eq!(LeastLoaded.route(1, &ls), 1);
        // Affinity re-homes a session stuck to the dead instance...
        let mut r = SessionAffinity::new();
        assert_eq!(r.route(7, &loads(&[(0, 0), (5, 5)])), 0);
        assert_eq!(r.route(7, &ls), 1);
        // ...and sticks to the new home afterwards.
        assert_eq!(r.route(7, &loads(&[(0, 0), (5, 5)])), 1);
    }

    #[test]
    fn on_instance_down_clears_affinity_mappings() {
        let mut r = SessionAffinity::new();
        assert_eq!(r.route(7, &loads(&[(0, 0), (9, 9)])), 0);
        r.on_instance_down(0);
        let mut ls = loads(&[(0, 0), (9, 9)]);
        ls[0].alive = false;
        assert_eq!(r.route(7, &ls), 1);
    }

    #[test]
    fn kinds_expose_labels() {
        assert_eq!(RouterKind::SessionAffinity.label(), "affinity");
        assert_eq!(RouterKind::LeastLoaded.label(), "least-loaded");
        assert_eq!(RouterKind::default(), RouterKind::SessionAffinity);
        assert_eq!(RouterKind::SessionAffinity.build().label(), "affinity");
        assert_eq!(RouterKind::LeastLoaded.build().label(), "least-loaded");
    }
}
