//! AWS on-demand price constants and the inference cost report (§4.2).
//!
//! The paper prices the workload at $5/hour per A100 GPU, $0.0088/hour/GB
//! of DRAM and $0.000082/hour/GB of SSD, then reports the end-to-end cost
//! of finishing the workload (Figure 17) and the storage share of the
//! CachedAttention cost.

use serde::{Deserialize, Serialize};

/// Dollar prices per resource-hour.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PriceSheet {
    /// $ per GPU-hour.
    pub gpu_per_hour: f64,
    /// $ per GB of DRAM per hour.
    pub dram_per_gb_hour: f64,
    /// $ per GB of SSD per hour.
    pub ssd_per_gb_hour: f64,
}

impl Default for PriceSheet {
    /// The paper's EC2 on-demand prices (§4.2).
    fn default() -> Self {
        PriceSheet {
            gpu_per_hour: 5.0,
            dram_per_gb_hour: 0.0088,
            ssd_per_gb_hour: 0.000082,
        }
    }
}

/// A priced summary of one serving run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CostReport {
    /// GPU rental cost in dollars.
    pub gpu_cost: f64,
    /// DRAM rental cost in dollars.
    pub dram_cost: f64,
    /// SSD rental cost in dollars.
    pub ssd_cost: f64,
}

impl CostReport {
    /// Prices a run: `gpu_hours` of `n_gpus` GPUs (i.e. `gpu_hours` is the
    /// wall-clock busy span) holding `dram_gb`/`ssd_gb` for
    /// `storage_hours`.
    pub fn price(
        prices: &PriceSheet,
        n_gpus: u32,
        gpu_hours: f64,
        dram_gb: f64,
        ssd_gb: f64,
        storage_hours: f64,
    ) -> Self {
        CostReport {
            gpu_cost: prices.gpu_per_hour * n_gpus as f64 * gpu_hours,
            dram_cost: prices.dram_per_gb_hour * dram_gb * storage_hours,
            ssd_cost: prices.ssd_per_gb_hour * ssd_gb * storage_hours,
        }
    }

    /// Total dollars.
    pub fn total(&self) -> f64 {
        self.gpu_cost + self.dram_cost + self.ssd_cost
    }

    /// Storage (DRAM + SSD) share of the total, in `[0, 1]`.
    ///
    /// The paper reports 16.4% for LLaMA-13B and ~9% for the other models.
    pub fn storage_fraction(&self) -> f64 {
        let t = self.total();
        if t == 0.0 {
            0.0
        } else {
            (self.dram_cost + self.ssd_cost) / t
        }
    }

    /// Relative saving of `self` versus a `baseline` run, in `[0, 1]`.
    pub fn saving_vs(&self, baseline: &CostReport) -> f64 {
        let b = baseline.total();
        if b == 0.0 {
            0.0
        } else {
            1.0 - self.total() / b
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_prices_match_paper() {
        let p = PriceSheet::default();
        assert_eq!(p.gpu_per_hour, 5.0);
        assert_eq!(p.dram_per_gb_hour, 0.0088);
        assert_eq!(p.ssd_per_gb_hour, 0.000082);
    }

    #[test]
    fn pricing_arithmetic() {
        let p = PriceSheet::default();
        // 4 GPUs for 2 hours, 128 GB DRAM + 10 TB SSD for 3 hours.
        let r = CostReport::price(&p, 4, 2.0, 128.0, 10_000.0, 3.0);
        assert!((r.gpu_cost - 40.0).abs() < 1e-9);
        assert!((r.dram_cost - 128.0 * 0.0088 * 3.0).abs() < 1e-9);
        assert!((r.ssd_cost - 10_000.0 * 0.000082 * 3.0).abs() < 1e-9);
        assert!((r.total() - (r.gpu_cost + r.dram_cost + r.ssd_cost)).abs() < 1e-12);
    }

    #[test]
    fn storage_fraction_and_saving() {
        let p = PriceSheet::default();
        let ca = CostReport::price(&p, 4, 1.0, 128.0, 10_000.0, 2.0);
        let re = CostReport::price(&p, 4, 3.0, 0.0, 0.0, 0.0);
        assert!(ca.storage_fraction() > 0.0 && ca.storage_fraction() < 1.0);
        assert_eq!(re.storage_fraction(), 0.0);
        let saving = ca.saving_vs(&re);
        assert!(saving > 0.6 && saving < 0.7, "saving {saving}");
    }

    #[test]
    fn degenerate_totals_do_not_divide_by_zero() {
        let zero = CostReport {
            gpu_cost: 0.0,
            dram_cost: 0.0,
            ssd_cost: 0.0,
        };
        assert_eq!(zero.storage_fraction(), 0.0);
        assert_eq!(zero.saving_vs(&zero), 0.0);
    }
}
