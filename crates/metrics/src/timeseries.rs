//! Bucketed time series for utilization-over-time reporting.

use serde::{Deserialize, Serialize};

/// Accumulates amounts into fixed-width time buckets.
///
/// The serving engine records GPU busy-seconds into a [`TimeSeries`] so
/// reports can show utilization over the run (e.g. the backlog building
/// up during the arrival burst and draining afterwards).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TimeSeries {
    bucket_secs: f64,
    buckets: Vec<f64>,
}

impl Default for TimeSeries {
    /// One-minute buckets.
    fn default() -> Self {
        TimeSeries::new(60.0)
    }
}

impl TimeSeries {
    /// Creates a series with the given bucket width in seconds.
    ///
    /// # Panics
    ///
    /// Panics if `bucket_secs` is not strictly positive.
    pub fn new(bucket_secs: f64) -> TimeSeries {
        assert!(bucket_secs > 0.0, "bucket width must be positive");
        TimeSeries {
            bucket_secs,
            buckets: Vec::new(),
        }
    }

    /// Returns the bucket width in seconds.
    pub fn bucket_secs(&self) -> f64 {
        self.bucket_secs
    }

    /// Adds `amount` at instant `at_secs` (the bucket containing it).
    pub fn add(&mut self, at_secs: f64, amount: f64) {
        let idx = (at_secs.max(0.0) / self.bucket_secs) as usize;
        if idx >= self.buckets.len() {
            self.buckets.resize(idx + 1, 0.0);
        }
        self.buckets[idx] += amount;
    }

    /// Records a gauge sample at `at_secs`: the bucket keeps the
    /// *maximum* value seen rather than a sum, so the series traces an
    /// occupancy curve's peaks (HBM reservations, tier occupancy).
    pub fn record_max(&mut self, at_secs: f64, value: f64) {
        let idx = (at_secs.max(0.0) / self.bucket_secs) as usize;
        if idx >= self.buckets.len() {
            self.buckets.resize(idx + 1, 0.0);
        }
        self.buckets[idx] = self.buckets[idx].max(value);
    }

    /// Spreads `amount` uniformly over `[start_secs, start_secs + dur_secs)`,
    /// splitting across bucket boundaries.
    pub fn add_span(&mut self, start_secs: f64, dur_secs: f64, amount: f64) {
        if dur_secs <= 0.0 {
            self.add(start_secs, amount);
            return;
        }
        let rate = amount / dur_secs;
        let mut t = start_secs.max(0.0);
        let end = start_secs + dur_secs;
        while t < end {
            let bucket_end = (((t / self.bucket_secs) as usize + 1) as f64) * self.bucket_secs;
            let chunk_end = bucket_end.min(end);
            self.add(t, (chunk_end - t) * rate);
            t = chunk_end;
        }
    }

    /// Returns the bucket values.
    pub fn buckets(&self) -> &[f64] {
        &self.buckets
    }

    /// Returns the number of buckets.
    pub fn len(&self) -> usize {
        self.buckets.len()
    }

    /// Returns `true` when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.buckets.is_empty()
    }

    /// Returns the sum over all buckets.
    pub fn total(&self) -> f64 {
        self.buckets.iter().sum()
    }

    /// Returns the largest bucket value (0 when empty).
    pub fn peak(&self) -> f64 {
        self.buckets.iter().copied().fold(0.0, f64::max)
    }

    /// Renders a compact ASCII sparkline (one char per bucket, eight
    /// levels), capped at `max_width` chars by merging buckets.
    pub fn sparkline(&self, max_width: usize) -> String {
        const LEVELS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
        if self.buckets.is_empty() || max_width == 0 {
            return String::new();
        }
        let group = self.buckets.len().div_ceil(max_width);
        let merged: Vec<f64> = self
            .buckets
            .chunks(group)
            .map(|c| c.iter().sum::<f64>() / c.len() as f64)
            .collect();
        let peak = merged.iter().copied().fold(0.0f64, f64::max);
        if peak == 0.0 {
            return LEVELS[0].to_string().repeat(merged.len());
        }
        merged
            .iter()
            .map(|&v| LEVELS[((v / peak * 7.0).round() as usize).min(7)])
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_lands_in_the_right_bucket() {
        let mut ts = TimeSeries::new(10.0);
        ts.add(0.0, 1.0);
        ts.add(9.99, 2.0);
        ts.add(25.0, 4.0);
        assert_eq!(ts.buckets(), &[3.0, 0.0, 4.0]);
        assert_eq!(ts.total(), 7.0);
        assert_eq!(ts.peak(), 4.0);
    }

    #[test]
    fn add_span_splits_across_boundaries() {
        let mut ts = TimeSeries::new(10.0);
        // 6 units over [5, 35): 5s in bucket 0, 10s each in 1-2, 5s in 3.
        ts.add_span(5.0, 30.0, 6.0);
        let b = ts.buckets();
        assert_eq!(b.len(), 4);
        assert!((b[0] - 1.0).abs() < 1e-9);
        assert!((b[1] - 2.0).abs() < 1e-9);
        assert!((b[2] - 2.0).abs() < 1e-9);
        assert!((b[3] - 1.0).abs() < 1e-9);
        assert!((ts.total() - 6.0).abs() < 1e-9);
    }

    #[test]
    fn zero_duration_span_degenerates_to_point() {
        let mut ts = TimeSeries::new(10.0);
        ts.add_span(12.0, 0.0, 5.0);
        assert_eq!(ts.buckets(), &[0.0, 5.0]);
    }

    #[test]
    fn record_max_keeps_the_bucket_peak() {
        let mut ts = TimeSeries::new(10.0);
        ts.record_max(1.0, 5.0);
        ts.record_max(2.0, 3.0);
        ts.record_max(15.0, 7.0);
        assert_eq!(ts.buckets(), &[5.0, 7.0]);
        assert_eq!(ts.peak(), 7.0);
    }

    #[test]
    fn sparkline_compacts_to_width() {
        let mut ts = TimeSeries::new(1.0);
        for i in 0..100 {
            ts.add(i as f64, (i % 10) as f64);
        }
        let s = ts.sparkline(20);
        assert!(s.chars().count() <= 20);
        let empty = TimeSeries::new(1.0);
        assert!(empty.sparkline(20).is_empty());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_bucket_width_rejected() {
        let _ = TimeSeries::new(0.0);
    }
}
