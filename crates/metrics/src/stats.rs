//! Streaming statistics primitives.

use serde::{Deserialize, Serialize};

/// Streaming mean/variance via Welford's algorithm.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Welford {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Welford {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Welford {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        if x < self.min {
            self.min = x;
        }
        if x > self.max {
            self.max = x;
        }
    }

    /// Returns the number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Returns the running mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Returns the population variance (0 with fewer than two samples).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Returns the population standard deviation.
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Returns the sum of all observations.
    pub fn sum(&self) -> f64 {
        self.mean() * self.n as f64
    }

    /// Returns the smallest observation (`None` when empty).
    pub fn min(&self) -> Option<f64> {
        (self.n > 0).then_some(self.min)
    }

    /// Returns the largest observation (`None` when empty).
    pub fn max(&self) -> Option<f64> {
        (self.n > 0).then_some(self.max)
    }

    /// Merges another accumulator into this one.
    pub fn merge(&mut self, other: &Welford) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let n = (self.n + other.n) as f64;
        let delta = other.mean - self.mean;
        let mean = self.mean + delta * other.n as f64 / n;
        self.m2 += other.m2 + delta * delta * self.n as f64 * other.n as f64 / n;
        self.mean = mean;
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// A percentile estimator that keeps every sample (exact percentiles).
///
/// Experiments observe at most a few hundred thousand latencies, so exact
/// storage is cheap and avoids sketch error in reported numbers.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Histogram {
    samples: Vec<f64>,
    sorted: bool,
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Histogram {
            samples: Vec::new(),
            sorted: true,
        }
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.samples.push(x);
        self.sorted = false;
    }

    /// Returns the number of observations.
    pub fn count(&self) -> usize {
        self.samples.len()
    }

    /// Returns the mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples.iter().sum::<f64>() / self.samples.len() as f64
    }

    /// Returns the `p`-th percentile (nearest-rank), `p` in `[0, 100]`.
    ///
    /// Returns `None` when empty.
    pub fn percentile(&mut self, p: f64) -> Option<f64> {
        if self.samples.is_empty() {
            return None;
        }
        if !self.sorted {
            self.samples
                .sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
            self.sorted = true;
        }
        let p = p.clamp(0.0, 100.0);
        let rank = ((p / 100.0) * (self.samples.len() - 1) as f64).round() as usize;
        Some(self.samples[rank])
    }

    /// Returns the median.
    pub fn median(&mut self) -> Option<f64> {
        self.percentile(50.0)
    }
}

/// A named monotonically increasing tally.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct Counter(u64);

impl Counter {
    /// Creates a zeroed counter.
    pub fn new() -> Self {
        Counter(0)
    }

    /// Adds one.
    pub fn incr(&mut self) {
        self.0 += 1;
    }

    /// Adds `n`.
    pub fn add(&mut self, n: u64) {
        self.0 += n;
    }

    /// Returns the current value.
    pub fn get(&self) -> u64 {
        self.0
    }

    /// Returns `self / other` as a fraction, 0 when `other` is zero.
    pub fn ratio_of(&self, other: &Counter) -> f64 {
        if other.0 == 0 {
            0.0
        } else {
            self.0 as f64 / other.0 as f64
        }
    }
}

/// Accumulates an amount over a time span and reports the average rate.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct RateMeter {
    amount: f64,
    span_secs: f64,
}

impl RateMeter {
    /// Creates an empty meter.
    pub fn new() -> Self {
        RateMeter::default()
    }

    /// Records `amount` of work done over `span_secs` of time.
    pub fn record(&mut self, amount: f64, span_secs: f64) {
        self.amount += amount;
        self.span_secs += span_secs;
    }

    /// Returns total work divided by total time (0 when no time elapsed).
    pub fn rate(&self) -> f64 {
        if self.span_secs == 0.0 {
            0.0
        } else {
            self.amount / self.span_secs
        }
    }

    /// Returns the accumulated amount.
    pub fn amount(&self) -> f64 {
        self.amount
    }

    /// Returns the accumulated time span in seconds.
    pub fn span_secs(&self) -> f64 {
        self.span_secs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn welford_matches_direct_computation() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut w = Welford::new();
        for &x in &xs {
            w.push(x);
        }
        assert!((w.mean() - 5.0).abs() < 1e-12);
        assert!((w.stddev() - 2.0).abs() < 1e-12);
        assert_eq!(w.min(), Some(2.0));
        assert_eq!(w.max(), Some(9.0));
        assert!((w.sum() - 40.0).abs() < 1e-9);
    }

    #[test]
    fn welford_empty_is_zeroed() {
        let w = Welford::new();
        assert_eq!(w.mean(), 0.0);
        assert_eq!(w.variance(), 0.0);
        assert_eq!(w.min(), None);
    }

    #[test]
    fn histogram_percentiles_are_exact() {
        let mut h = Histogram::new();
        for i in (1..=101).rev() {
            h.push(i as f64);
        }
        assert_eq!(h.percentile(0.0), Some(1.0));
        assert_eq!(h.percentile(100.0), Some(101.0));
        assert_eq!(h.median(), Some(51.0));
        assert_eq!(h.percentile(99.0), Some(100.0));
        assert_eq!(Histogram::new().median(), None);
    }

    #[test]
    fn counter_ratio_handles_zero() {
        let mut a = Counter::new();
        let b = Counter::new();
        a.add(5);
        assert_eq!(a.ratio_of(&b), 0.0);
        let mut c = Counter::new();
        c.add(10);
        assert_eq!(a.ratio_of(&c), 0.5);
    }

    #[test]
    fn rate_meter_averages_over_span() {
        let mut r = RateMeter::new();
        r.record(100.0, 2.0);
        r.record(50.0, 1.0);
        assert!((r.rate() - 50.0).abs() < 1e-12);
        assert_eq!(RateMeter::new().rate(), 0.0);
    }

    proptest! {
        /// Merging two accumulators equals accumulating the concatenation.
        #[test]
        fn welford_merge_is_concat(
            xs in proptest::collection::vec(-1e6f64..1e6, 0..50),
            ys in proptest::collection::vec(-1e6f64..1e6, 0..50),
        ) {
            let mut a = Welford::new();
            for &x in &xs { a.push(x); }
            let mut b = Welford::new();
            for &y in &ys { b.push(y); }
            let mut whole = Welford::new();
            for &x in xs.iter().chain(ys.iter()) { whole.push(x); }
            a.merge(&b);
            prop_assert_eq!(a.count(), whole.count());
            prop_assert!((a.mean() - whole.mean()).abs() < 1e-6);
            prop_assert!((a.variance() - whole.variance()).abs() < 1e-3);
        }

        /// Percentiles are monotone in `p`.
        #[test]
        fn percentiles_monotone(
            xs in proptest::collection::vec(0f64..1e9, 1..200),
            p1 in 0f64..100.0,
            p2 in 0f64..100.0,
        ) {
            let mut h = Histogram::new();
            for &x in &xs { h.push(x); }
            let (lo, hi) = if p1 <= p2 { (p1, p2) } else { (p2, p1) };
            prop_assert!(h.percentile(lo).unwrap() <= h.percentile(hi).unwrap());
        }
    }
}
