#![warn(missing_docs)]

//! Statistics, cost accounting and report rendering.
//!
//! Every experiment in the paper reports one of a small set of quantities:
//! latency distributions (TTFT), throughputs, hit rates, GPU time and
//! dollar cost. This crate provides:
//!
//! - [`Welford`]: streaming mean/variance.
//! - [`Histogram`]: percentile estimation over latencies.
//! - [`Counter`] / [`RateMeter`]: simple tallies.
//! - [`aws`]: the paper's AWS on-demand price constants (§4.2) and the
//!   cost report combining GPU-hours with storage rental.
//! - [`LogSketch`]: mergeable fixed-bucket log-scale quantile sketch for
//!   the windowed telemetry plane.
//! - [`TimeSeries`]: bucketed utilization-over-time accumulation with an
//!   ASCII sparkline renderer.
//! - [`table`]: fixed-width text tables and CSV export used by the
//!   experiment binaries.

pub mod aws;
mod sketch;
mod stats;
pub mod table;
mod timeseries;

pub use sketch::LogSketch;
pub use stats::{Counter, Histogram, RateMeter, Welford};
pub use timeseries::TimeSeries;
