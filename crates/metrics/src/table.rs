//! Fixed-width text tables and CSV export for experiment reports.
//!
//! Every experiment binary prints a table whose rows mirror the paper's
//! figure/table series, typically with a "paper" column next to the
//! "measured" column.

use std::fmt::Write as _;

/// A simple column-aligned table builder.
#[derive(Debug, Clone, Default)]
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title and column headers.
    pub fn new(title: impl Into<String>, header: &[&str]) -> Self {
        Table {
            title: title.into(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row; missing cells render empty, extra cells are kept.
    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        self.rows.push(cells.to_vec());
        self
    }

    /// Appends a row of displayable values.
    pub fn row_display(&mut self, cells: &[&dyn std::fmt::Display]) -> &mut Self {
        self.rows
            .push(cells.iter().map(|c| c.to_string()).collect());
        self
    }

    /// Returns the number of data rows.
    pub fn n_rows(&self) -> usize {
        self.rows.len()
    }

    /// Renders the table as aligned text.
    pub fn render(&self) -> String {
        let n_cols = self
            .header
            .len()
            .max(self.rows.iter().map(Vec::len).max().unwrap_or(0));
        let mut widths = vec![0usize; n_cols];
        for (i, h) in self.header.iter().enumerate() {
            widths[i] = widths[i].max(h.len());
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        if !self.title.is_empty() {
            let _ = writeln!(out, "== {} ==", self.title);
        }
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, w) in widths.iter().enumerate() {
                let cell = cells.get(i).map(String::as_str).unwrap_or("");
                let _ = write!(line, "{cell:<w$}  ");
            }
            line.trim_end().to_string()
        };
        let _ = writeln!(out, "{}", fmt_row(&self.header, &widths));
        let total: usize = widths.iter().map(|w| w + 2).sum();
        let _ = writeln!(out, "{}", "-".repeat(total.saturating_sub(2)));
        for row in &self.rows {
            let _ = writeln!(out, "{}", fmt_row(row, &widths));
        }
        out
    }

    /// Renders the table as CSV (header first, comma-separated, quoting
    /// cells that contain commas or quotes).
    pub fn to_csv(&self) -> String {
        let esc = |s: &str| -> String {
            if s.contains(',') || s.contains('"') || s.contains('\n') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{}",
            self.header
                .iter()
                .map(|h| esc(h))
                .collect::<Vec<_>>()
                .join(",")
        );
        for row in &self.rows {
            let _ = writeln!(
                out,
                "{}",
                row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(",")
            );
        }
        out
    }
}

/// Formats a fraction as a percentage with one decimal, e.g. `86.2%`.
pub fn pct(frac: f64) -> String {
    format!("{:.1}%", frac * 100.0)
}

/// Formats a speedup factor, e.g. `7.8x`.
pub fn speedup(factor: f64) -> String {
    format!("{factor:.1}x")
}

/// Formats seconds with three decimals, e.g. `0.122s`.
pub fn secs(s: f64) -> String {
    format!("{s:.3}s")
}

/// Formats a byte count with a binary-friendly decimal unit.
pub fn bytes(b: u64) -> String {
    const UNITS: [&str; 5] = ["B", "KB", "MB", "GB", "TB"];
    let mut v = b as f64;
    let mut u = 0;
    while v >= 1000.0 && u < UNITS.len() - 1 {
        v /= 1000.0;
        u += 1;
    }
    if u == 0 {
        format!("{b}B")
    } else {
        format!("{v:.2}{}", UNITS[u])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = Table::new("demo", &["model", "hit"]);
        t.row(&["LLaMA-13B".into(), "86%".into()]);
        t.row(&["x".into(), "71.2%".into()]);
        let s = t.render();
        assert!(s.contains("== demo =="));
        let lines: Vec<&str> = s.lines().collect();
        // Header and both rows start their second column at the same offset.
        let col = lines[1].find("hit").unwrap();
        assert_eq!(lines[3].find("86%").unwrap(), col);
        assert_eq!(lines[4].find("71.2%").unwrap(), col);
    }

    #[test]
    fn csv_escapes_commas_and_quotes() {
        let mut t = Table::new("", &["a", "b"]);
        t.row(&["x,y".into(), "he said \"hi\"".into()]);
        let csv = t.to_csv();
        assert!(csv.contains("\"x,y\""));
        assert!(csv.contains("\"he said \"\"hi\"\"\""));
    }

    #[test]
    fn ragged_rows_render_without_panicking() {
        let mut t = Table::new("", &["a"]);
        t.row(&["1".into(), "2".into(), "3".into()]);
        t.row(&[]);
        let s = t.render();
        assert!(s.contains('1'));
        assert_eq!(t.n_rows(), 2);
    }

    #[test]
    fn formatters() {
        assert_eq!(pct(0.862), "86.2%");
        assert_eq!(speedup(7.84), "7.8x");
        assert_eq!(secs(0.1224), "0.122s");
        assert_eq!(bytes(512), "512B");
        assert_eq!(bytes(2_500_000), "2.50MB");
        assert_eq!(bytes(10_000_000_000_000), "10.00TB");
    }
}
