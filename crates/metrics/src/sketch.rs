//! A mergeable fixed-bucket log-scale quantile sketch.
//!
//! [`Histogram`](crate::Histogram) keeps every sample, which is exact but
//! unmergeable-in-O(1) and unbounded in memory. The windowed telemetry
//! plane needs hundreds of per-window latency distributions that can be
//! rolled up into an end-of-run total, so [`LogSketch`] trades a bounded
//! relative error for constant size and cheap [`merge`](LogSketch::merge).
//!
//! Buckets are laid out on a logarithmic grid: bucket `i` covers
//! `[MIN_VALUE * g^i, MIN_VALUE * g^(i+1))` with `g = 10^(1/BUCKETS_PER_DECADE)`.
//! A quantile query returns the geometric midpoint of the bucket holding
//! the nearest-rank sample, clamped to the observed `[min, max]`, so the
//! reported value is within a relative error of `sqrt(g) - 1`
//! (see [`LogSketch::relative_error`], ≈3.7% at 32 buckets per decade)
//! of the exact nearest-rank answer. Zero-valued samples (common for
//! queue waits and fetch stalls) are tallied exactly in a dedicated
//! counter, so quantiles that land on them are exact zeros.

use serde::{Deserialize, Error, Serialize, Value};

/// Buckets per decade of the log grid. 32 gives ≈3.7% relative error.
const BUCKETS_PER_DECADE: u32 = 32;
/// Smallest representable positive value (1 ns, in seconds). Positive
/// values below this clamp into the first bucket.
const MIN_VALUE: f64 = 1e-9;
/// Number of decades covered: `[1e-9, 1e6)` seconds. Values at or above
/// the top clamp into the last bucket.
const DECADES: u32 = 15;
/// Total bucket count (480).
const BUCKET_COUNT: usize = (BUCKETS_PER_DECADE * DECADES) as usize;

/// A streaming quantile sketch over non-negative samples with fixed
/// log-scale buckets, mergeable so window sketches roll up into totals.
#[derive(Debug, Clone)]
pub struct LogSketch {
    /// Samples that were exactly zero (or negative, clamped).
    zeros: u64,
    /// Total samples, including zeros.
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
    /// Dense per-bucket counts for the positive samples.
    buckets: Vec<u64>,
}

impl Default for LogSketch {
    fn default() -> Self {
        LogSketch::new()
    }
}

impl LogSketch {
    /// Creates an empty sketch.
    pub fn new() -> Self {
        LogSketch {
            zeros: 0,
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            buckets: vec![0; BUCKET_COUNT],
        }
    }

    /// The worst-case relative error of a quantile answer vs the exact
    /// nearest-rank sample: `sqrt(10^(1/BUCKETS_PER_DECADE)) - 1`.
    pub fn relative_error() -> f64 {
        10f64.powf(0.5 / BUCKETS_PER_DECADE as f64) - 1.0
    }

    fn bucket_index(v: f64) -> usize {
        debug_assert!(v > 0.0);
        let idx = ((v / MIN_VALUE).log10() * BUCKETS_PER_DECADE as f64).floor();
        (idx.max(0.0) as usize).min(BUCKET_COUNT - 1)
    }

    /// Geometric midpoint of bucket `i`.
    fn bucket_mid(i: usize) -> f64 {
        let exp = (i as f64 + 0.5) / BUCKETS_PER_DECADE as f64;
        MIN_VALUE * 10f64.powf(exp)
    }

    /// Adds one observation. Negative values are clamped to zero (latency
    /// inputs are never negative; this keeps the sketch total-ordered).
    pub fn push(&mut self, x: f64) {
        let x = if x > 0.0 { x } else { 0.0 };
        self.count += 1;
        self.sum += x;
        self.min = self.min.min(x);
        self.max = self.max.max(x);
        if x == 0.0 {
            self.zeros += 1;
        } else {
            self.buckets[Self::bucket_index(x)] += 1;
        }
    }

    /// Returns the number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Returns `true` when no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Returns the exact sum of all observations.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Returns the exact mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Returns the exact smallest observation (`None` when empty).
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Returns the exact largest observation (`None` when empty).
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Returns the `p`-th percentile (nearest rank, `p` in `[0, 100]`),
    /// or `None` when empty. Uses the same rank formula as
    /// [`Histogram::percentile`](crate::Histogram::percentile), so on the
    /// same sample stream the answer is the bucket midpoint of the exact
    /// nearest-rank sample — within [`relative_error`](Self::relative_error)
    /// of the exact answer (exact for zeros and at the clamped extremes).
    pub fn percentile(&self, p: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let p = p.clamp(0.0, 100.0);
        let rank = ((p / 100.0) * (self.count - 1) as f64).round() as u64;
        if rank < self.zeros {
            return Some(0.0);
        }
        // The extreme ranks are tracked exactly.
        if rank == 0 {
            return Some(self.min.max(0.0));
        }
        if rank == self.count - 1 {
            return Some(self.max.max(0.0));
        }
        let mut seen = self.zeros;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if rank < seen {
                return Some(Self::bucket_mid(i).clamp(self.min.max(0.0), self.max));
            }
        }
        Some(self.max)
    }

    /// Returns how many samples fall in buckets strictly above the bucket
    /// containing `threshold` (all positive samples when `threshold <= 0`).
    /// Resolution is one bucket: samples sharing the threshold's bucket
    /// are not counted.
    pub fn count_over(&self, threshold: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        if threshold <= 0.0 {
            return self.count - self.zeros;
        }
        let idx = Self::bucket_index(threshold);
        self.buckets[idx + 1..].iter().sum()
    }

    /// Merges another sketch into this one. Because every sketch shares
    /// one fixed bucket grid, merging window sketches yields exactly the
    /// sketch of the concatenated sample stream.
    pub fn merge(&mut self, other: &LogSketch) {
        if other.count == 0 {
            return;
        }
        self.zeros += other.zeros;
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        for (dst, src) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *dst += *src;
        }
    }
}

// Hand-written serde: the dense bucket array is mostly zeros, so the wire
// form is sparse `[index, count]` pairs.
impl Serialize for LogSketch {
    fn to_value(&self) -> Value {
        let sparse: Vec<Value> = self
            .buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| Value::Array(vec![Value::U64(i as u64), Value::U64(c)]))
            .collect();
        Value::Object(vec![
            ("count".into(), Value::U64(self.count)),
            ("zeros".into(), Value::U64(self.zeros)),
            ("sum".into(), Value::F64(self.sum)),
            ("min".into(), self.min().to_value()),
            ("max".into(), self.max().to_value()),
            ("buckets".into(), Value::Array(sparse)),
        ])
    }
}

impl Deserialize for LogSketch {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let field = |k: &str| {
            v.get(k)
                .ok_or_else(|| Error::custom(format!("missing {k}")))
        };
        let mut sketch = LogSketch::new();
        sketch.count = u64::from_value(field("count")?)?;
        sketch.zeros = u64::from_value(field("zeros")?)?;
        sketch.sum = f64::from_value(field("sum")?)?;
        sketch.min = Option::<f64>::from_value(field("min")?)?.unwrap_or(f64::INFINITY);
        sketch.max = Option::<f64>::from_value(field("max")?)?.unwrap_or(f64::NEG_INFINITY);
        for pair in Vec::<(u64, u64)>::from_value(field("buckets")?)? {
            let (i, c) = pair;
            let i = i as usize;
            if i >= BUCKET_COUNT {
                return Err(Error::custom("bucket index out of range"));
            }
            sketch.buckets[i] = c;
        }
        Ok(sketch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Histogram;
    use proptest::prelude::*;

    #[test]
    fn empty_sketch_has_no_quantiles() {
        let s = LogSketch::new();
        assert!(s.is_empty());
        assert_eq!(s.percentile(99.0), None);
        assert_eq!(s.min(), None);
        assert_eq!(s.count_over(1.0), 0);
    }

    #[test]
    fn zeros_are_exact() {
        let mut s = LogSketch::new();
        for _ in 0..90 {
            s.push(0.0);
        }
        for _ in 0..10 {
            s.push(1.0);
        }
        assert_eq!(s.percentile(50.0), Some(0.0));
        assert_eq!(s.zeros, 90);
        assert_eq!(s.count_over(0.0), 10);
        assert!((s.mean() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn quantiles_track_exact_histogram() {
        let mut s = LogSketch::new();
        let mut h = Histogram::new();
        for i in 1..=1000 {
            let x = i as f64 * 1e-3;
            s.push(x);
            h.push(x);
        }
        let tol = LogSketch::relative_error() * 1.001;
        for p in [0.0, 10.0, 50.0, 95.0, 99.0, 100.0] {
            let exact = h.percentile(p).unwrap();
            let approx = s.percentile(p).unwrap();
            assert!(
                (approx - exact).abs() <= exact * tol + 1e-12,
                "p{p}: sketch {approx} vs exact {exact}"
            );
        }
        // The clamped extremes are exact.
        assert_eq!(s.percentile(0.0), Some(1e-3));
        assert_eq!(s.percentile(100.0), Some(1.0));
    }

    #[test]
    fn out_of_range_values_clamp() {
        let mut s = LogSketch::new();
        s.push(1e-12); // below MIN_VALUE: lands in bucket 0
        s.push(1e9); // above the top decade: lands in the last bucket
        assert_eq!(s.count(), 2);
        assert_eq!(s.min(), Some(1e-12));
        assert_eq!(s.max(), Some(1e9));
        // Clamping to observed extremes keeps the answers exact here.
        assert_eq!(s.percentile(0.0), Some(1e-12));
        assert_eq!(s.percentile(100.0), Some(1e9));
    }

    #[test]
    fn count_over_has_bucket_resolution() {
        let mut s = LogSketch::new();
        for _ in 0..5 {
            s.push(0.01);
        }
        for _ in 0..3 {
            s.push(10.0);
        }
        assert_eq!(s.count_over(1.0), 3);
        assert_eq!(s.count_over(100.0), 0);
        assert_eq!(s.count_over(-1.0), 8);
    }

    #[test]
    fn serde_round_trips_sparsely() {
        let mut s = LogSketch::new();
        for x in [0.0, 0.003, 0.003, 1.7, 42.0] {
            s.push(x);
        }
        let v = s.to_value();
        match v.get("buckets") {
            Some(Value::Array(pairs)) => assert_eq!(pairs.len(), 3),
            other => panic!("buckets not sparse array: {other:?}"),
        }
        let back = LogSketch::from_value(&v).unwrap();
        assert_eq!(back.count(), s.count());
        assert_eq!(back.percentile(50.0), s.percentile(50.0));
        assert_eq!(back.min(), s.min());
        assert_eq!(back.max(), s.max());
    }

    proptest! {
        /// Merging window sketches equals sketching the concatenation —
        /// exactly, because the grid is fixed.
        #[test]
        fn merge_is_concat(
            xs in proptest::collection::vec(0f64..1e4, 0..200),
            ys in proptest::collection::vec(0f64..1e4, 0..200),
        ) {
            let mut a = LogSketch::new();
            for &x in &xs { a.push(x); }
            let mut b = LogSketch::new();
            for &y in &ys { b.push(y); }
            let mut whole = LogSketch::new();
            for &x in xs.iter().chain(ys.iter()) { whole.push(x); }
            a.merge(&b);
            prop_assert_eq!(a.count(), whole.count());
            prop_assert_eq!(a.zeros, whole.zeros);
            prop_assert_eq!(a.buckets.clone(), whole.buckets.clone());
            prop_assert_eq!(a.percentile(99.0), whole.percentile(99.0));
        }

        /// Every quantile stays within the documented relative error of
        /// the exact nearest-rank answer, over the documented input
        /// domain (zero or within the bucket grid's range).
        #[test]
        fn quantile_error_is_bounded(
            xs in proptest::collection::vec(
                prop_oneof![Just(0.0f64), 1e-6f64..1e5],
                1..300,
            ),
            p in 0f64..100.0,
        ) {
            let mut s = LogSketch::new();
            let mut h = Histogram::new();
            for &x in &xs {
                s.push(x);
                h.push(x);
            }
            let exact = h.percentile(p).unwrap();
            let approx = s.percentile(p).unwrap();
            let tol = LogSketch::relative_error() * 1.001;
            prop_assert!(
                (approx - exact).abs() <= exact.abs() * tol + 1e-12,
                "p{}: sketch {} vs exact {}", p, approx, exact
            );
        }

        /// Quantiles are monotone in `p`.
        #[test]
        fn quantiles_monotone(
            xs in proptest::collection::vec(0f64..1e6, 1..200),
            p1 in 0f64..100.0,
            p2 in 0f64..100.0,
        ) {
            let mut s = LogSketch::new();
            for &x in &xs { s.push(x); }
            let (lo, hi) = if p1 <= p2 { (p1, p2) } else { (p2, p1) };
            prop_assert!(s.percentile(lo).unwrap() <= s.percentile(hi).unwrap());
        }
    }
}
