//! Loader for real ShareGPT-format JSON.
//!
//! The dataset the paper uses (`sharegpt_90k_raw`) is a JSON array of
//! conversations:
//!
//! ```json
//! [
//!   {
//!     "id": "abc",
//!     "conversations": [
//!       {"from": "human", "value": "..."},
//!       {"from": "gpt", "value": "..."}
//!     ]
//!   }
//! ]
//! ```
//!
//! We cannot redistribute the dataset, so this module parses the format if
//! the user supplies a file and otherwise the synthetic
//! [`crate::Generator`] (calibrated to the paper's published statistics) is
//! used. Token counts are estimated at four characters per token, the
//! usual rough cutoff for English BPE vocabularies.

use serde::Deserialize;
use sim::{Dur, SimRng, Time};

use crate::{SessionSpec, Trace, TurnSpec};

/// Approximate characters per BPE token used for length estimation.
pub const CHARS_PER_TOKEN: usize = 4;

/// One message in the raw format.
#[derive(Debug, Deserialize)]
struct RawMessage {
    from: String,
    value: String,
}

/// One conversation in the raw format.
#[derive(Debug, Deserialize)]
struct RawConversation {
    #[allow(dead_code)]
    #[serde(default)]
    id: Option<String>,
    conversations: Vec<RawMessage>,
}

/// An error from [`load_sharegpt_json`].
#[derive(Debug)]
pub enum ShareGptError {
    /// The input was not valid JSON in the expected shape.
    Parse(serde_json::Error),
    /// The file parsed but contained no usable conversations.
    Empty,
}

impl std::fmt::Display for ShareGptError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShareGptError::Parse(e) => write!(f, "malformed ShareGPT JSON: {e}"),
            ShareGptError::Empty => write!(f, "no usable conversations in input"),
        }
    }
}

impl std::error::Error for ShareGptError {}

/// Estimates the token count of a message.
pub fn estimate_tokens(text: &str) -> u32 {
    (text.chars().count().div_ceil(CHARS_PER_TOKEN)).max(1) as u32
}

/// Parses ShareGPT JSON into a [`Trace`], assigning Poisson arrivals at
/// `arrival_rate` sessions/s and exponential think times with mean
/// `mean_think_secs`, both drawn deterministically from `seed`.
///
/// Human/assistant messages are paired in order; a trailing unanswered
/// human message is dropped (it never produced KV to reuse). Conversations
/// with no complete pair are skipped.
pub fn load_sharegpt_json(
    json: &str,
    arrival_rate: f64,
    mean_think_secs: f64,
    seed: u64,
) -> Result<Trace, ShareGptError> {
    let raw: Vec<RawConversation> = serde_json::from_str(json).map_err(ShareGptError::Parse)?;
    let mut rng = SimRng::seed_from_u64(seed);
    let mut sessions = Vec::new();
    let mut at = Time::ZERO;
    for conv in &raw {
        let mut turns = Vec::new();
        let mut pending_user: Option<u32> = None;
        for msg in &conv.conversations {
            match msg.from.as_str() {
                "human" | "user" => pending_user = Some(estimate_tokens(&msg.value)),
                "gpt" | "assistant" | "chatgpt" | "bing" | "bard" => {
                    if let Some(user_tokens) = pending_user.take() {
                        turns.push(TurnSpec {
                            user_tokens,
                            resp_tokens: estimate_tokens(&msg.value),
                            think: Dur::from_secs_f64(if mean_think_secs > 0.0 {
                                rng.exp(mean_think_secs)
                            } else {
                                0.0
                            }),
                            ttft_deadline: None,
                        });
                    }
                }
                // System prompts and unknown roles are skipped.
                _ => {}
            }
        }
        if turns.is_empty() {
            continue;
        }
        at += Dur::from_secs_f64(rng.exp(1.0 / arrival_rate));
        sessions.push(SessionSpec {
            id: sessions.len() as u64,
            arrival: at,
            turns,
            content: None,
        });
    }
    if sessions.is_empty() {
        return Err(ShareGptError::Empty);
    }
    Ok(Trace::new(sessions))
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"[
      {"id": "a", "conversations": [
        {"from": "human", "value": "What is the capital of France? Please answer briefly."},
        {"from": "gpt", "value": "The capital of France is Paris."},
        {"from": "human", "value": "And of Germany?"},
        {"from": "gpt", "value": "Berlin."}
      ]},
      {"id": "b", "conversations": [
        {"from": "system", "value": "You are helpful."},
        {"from": "human", "value": "Hi"},
        {"from": "gpt", "value": "Hello! How can I help you today?"},
        {"from": "human", "value": "dangling question with no answer"}
      ]},
      {"id": "c", "conversations": [
        {"from": "human", "value": "orphan"}
      ]}
    ]"#;

    #[test]
    fn parses_sample_and_pairs_turns() {
        let t = load_sharegpt_json(SAMPLE, 1.0, 60.0, 1).unwrap();
        // Session c has no complete pair and is skipped.
        assert_eq!(t.sessions.len(), 2);
        assert_eq!(t.sessions[0].n_turns(), 2);
        // The dangling human message in session b is dropped.
        assert_eq!(t.sessions[1].n_turns(), 1);
    }

    #[test]
    fn token_estimation_rounds_up() {
        assert_eq!(estimate_tokens(""), 1);
        assert_eq!(estimate_tokens("abcd"), 1);
        assert_eq!(estimate_tokens("abcde"), 2);
    }

    #[test]
    fn arrivals_are_monotone() {
        let t = load_sharegpt_json(SAMPLE, 1.0, 60.0, 1).unwrap();
        assert!(t.sessions[0].arrival <= t.sessions[1].arrival);
    }

    #[test]
    fn bad_json_is_parse_error() {
        assert!(matches!(
            load_sharegpt_json("[{]", 1.0, 60.0, 1),
            Err(ShareGptError::Parse(_))
        ));
    }

    #[test]
    fn empty_input_is_empty_error() {
        assert!(matches!(
            load_sharegpt_json("[]", 1.0, 60.0, 1),
            Err(ShareGptError::Empty)
        ));
        // All-orphan input also yields Empty.
        let orphans = r#"[{"conversations": [{"from": "human", "value": "x"}]}]"#;
        assert!(matches!(
            load_sharegpt_json(orphans, 1.0, 60.0, 1),
            Err(ShareGptError::Empty)
        ));
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let a = load_sharegpt_json(SAMPLE, 1.0, 60.0, 5).unwrap();
        let b = load_sharegpt_json(SAMPLE, 1.0, 60.0, 5).unwrap();
        assert_eq!(a, b);
    }
}
