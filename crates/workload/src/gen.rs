//! Synthetic ShareGPT-calibrated workload generation.

use serde::{Deserialize, Serialize};
use sim::{Dur, SimRng, Time};

use crate::{SessionSpec, Trace, TurnSpec};

/// Distribution parameters calibrated to the paper's ShareGPT statistics.
///
/// Targets (Figure 2, §4.2):
/// - 73% of sessions are multi-turn; the mean is 5.75 turns/session.
/// - 47% of sessions exceed 2K total tokens; 30% exceed 4K.
///
/// Turn counts use a `0.27`-weighted single-turn atom plus a shifted
/// geometric tail; message lengths are log-normal (users write short
/// prompts with a heavy paste-in tail, models reply longer and more
/// regularly). The calibration test in this module checks the targets.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShareGptProfile {
    /// Probability that a session has exactly one turn.
    pub p_single_turn: f64,
    /// Success probability of the geometric tail for multi-turn sessions
    /// (turns = 2 + Geometric(p)).
    pub turn_geo_p: f64,
    /// Hard cap on turns per session.
    pub max_turns: u32,
    /// Log-normal `mu` of user message tokens.
    pub user_mu: f64,
    /// Log-normal `sigma` of user message tokens.
    pub user_sigma: f64,
    /// Log-normal `mu` of response tokens.
    pub resp_mu: f64,
    /// Log-normal `sigma` of response tokens.
    pub resp_sigma: f64,
    /// Hard cap on tokens per message.
    pub max_message_tokens: u32,
    /// Session arrival rate (sessions per second, Poisson). The paper uses
    /// λ = 1.0/s.
    pub arrival_rate: f64,
    /// Mean think time between a response and the user's next message,
    /// seconds (exponential).
    pub mean_think_secs: f64,
    /// Optional bursty arrivals: a two-phase Markov-modulated Poisson
    /// process instead of the paper's homogeneous one.
    pub burstiness: Option<Burstiness>,
    /// Optional flash-crowd surge: a deterministic rate-multiplier window
    /// layered on top of the (possibly bursty) base process.
    pub surge: Option<Surge>,
    /// Optional diurnal (day/night) rate modulation, layered on top of
    /// every other shape. The multi-hour `exp_scale` traces use this.
    pub diurnal: Option<Diurnal>,
}

/// A deterministic diurnal rate modulation.
///
/// The arrival rate is multiplied by `1 + amplitude * sin(2π t / period)`,
/// approximated piecewise-constant over `segment_secs`-long segments
/// (factor evaluated at each segment's midpoint). Segment boundaries use
/// the same memoryless redraw as the burstiness phases and surge edges,
/// so the process stays a true inhomogeneous Poisson process.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Diurnal {
    /// Full day/night cycle length in seconds (a real day is 86 400; the
    /// scale experiments compress it).
    pub period_secs: f64,
    /// Swing of the modulation in `[0, 1)`: 0.6 means the peak runs at
    /// 1.6× the base rate and the trough at 0.4×.
    pub amplitude: f64,
    /// Piecewise-constant segment length in seconds.
    pub segment_secs: f64,
}

impl Default for Diurnal {
    fn default() -> Self {
        Diurnal {
            period_secs: 4.0 * 3600.0,
            amplitude: 0.6,
            segment_secs: 300.0,
        }
    }
}

impl Diurnal {
    /// The rate multiplier of the segment containing `now` (seconds).
    pub fn factor_at(&self, now: f64) -> f64 {
        let seg_start = (now / self.segment_secs).floor() * self.segment_secs;
        let mid = seg_start + self.segment_secs / 2.0;
        let phase = std::f64::consts::TAU * mid / self.period_secs;
        1.0 + self.amplitude * phase.sin()
    }

    /// The end of the segment containing `now` (seconds).
    fn segment_end(&self, now: f64) -> f64 {
        ((now / self.segment_secs).floor() + 1.0) * self.segment_secs
    }
}

/// A flash-crowd surge window.
///
/// Arrivals inside `[start_secs, start_secs + duration_secs)` come at
/// `factor ×` the prevailing rate (base rate, or the burstiness phase
/// rate when both shapes are active). Unlike [`Burstiness`]'s random
/// phase flips, the surge window is fixed — the overload experiments need
/// the crowd to hit at the same virtual second for every policy under
/// comparison.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Surge {
    /// When the crowd arrives, seconds from trace start.
    pub start_secs: f64,
    /// How long the surge lasts, seconds.
    pub duration_secs: f64,
    /// Rate multiplier inside the window (≥ 1 for a crowd; the paper-style
    /// flash crowd in `exp_slo` uses 4–6×).
    pub factor: f64,
}

impl Default for Surge {
    fn default() -> Self {
        Surge {
            start_secs: 120.0,
            duration_secs: 240.0,
            factor: 4.0,
        }
    }
}

/// Two-phase Markov-modulated Poisson arrival parameters.
///
/// The process alternates between a *high* phase (arrival rate scaled by
/// `high_factor`) and a *low* phase (`low_factor`); phase durations are
/// exponential with mean `mean_phase_secs`. Factors are chosen so the
/// long-run average rate stays at the profile's `arrival_rate` when
/// `(high_factor + low_factor) / 2 == 1`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Burstiness {
    /// Rate multiplier during the high phase (e.g. 1.7).
    pub high_factor: f64,
    /// Rate multiplier during the low phase (e.g. 0.3).
    pub low_factor: f64,
    /// Mean phase duration in seconds.
    pub mean_phase_secs: f64,
}

impl Default for Burstiness {
    fn default() -> Self {
        Burstiness {
            high_factor: 1.7,
            low_factor: 0.3,
            mean_phase_secs: 120.0,
        }
    }
}

impl Default for ShareGptProfile {
    fn default() -> Self {
        ShareGptProfile {
            p_single_turn: 0.27,
            turn_geo_p: 1.0 / 6.5,
            max_turns: 40,
            user_mu: 5.0,
            user_sigma: 1.5,
            resp_mu: 4.85,
            resp_sigma: 0.9,
            max_message_tokens: 8192,
            arrival_rate: 1.0,
            mean_think_secs: 15.0,
            burstiness: None,
            surge: None,
            diurnal: None,
        }
    }
}

impl ShareGptProfile {
    /// Returns a copy with a different Poisson session arrival rate.
    pub fn with_arrival_rate(mut self, per_sec: f64) -> Self {
        assert!(per_sec > 0.0, "arrival rate must be positive");
        self.arrival_rate = per_sec;
        self
    }

    /// Returns a copy with a different mean think time.
    pub fn with_mean_think_secs(mut self, secs: f64) -> Self {
        assert!(secs >= 0.0, "think time cannot be negative");
        self.mean_think_secs = secs;
        self
    }

    /// Returns a copy with bursty (MMPP) arrivals.
    pub fn with_burstiness(mut self, b: Burstiness) -> Self {
        self.burstiness = Some(b);
        self
    }

    /// Returns a copy with diurnal rate modulation.
    pub fn with_diurnal(mut self, d: Diurnal) -> Self {
        assert!(d.period_secs > 0.0, "diurnal period must be positive");
        assert!(
            (0.0..1.0).contains(&d.amplitude),
            "diurnal amplitude must be in [0, 1)"
        );
        assert!(
            d.segment_secs > 0.0 && d.segment_secs <= d.period_secs,
            "diurnal segments must be positive and no longer than the period"
        );
        self.diurnal = Some(d);
        self
    }

    /// Returns a copy with a flash-crowd surge window.
    pub fn with_surge(mut self, s: Surge) -> Self {
        assert!(s.factor >= 1.0, "a surge cannot slow arrivals down");
        assert!(s.duration_secs > 0.0, "surge duration must be positive");
        assert!(s.start_secs >= 0.0, "surge cannot start before the trace");
        self.surge = Some(s);
        self
    }
}

/// Deterministic workload generator.
///
/// # Examples
///
/// ```
/// use workload::{Generator, ShareGptProfile};
///
/// let trace = Generator::new(ShareGptProfile::default(), 42).trace(100);
/// assert_eq!(trace.sessions.len(), 100);
/// // Multi-turn conversations dominate, as in ShareGPT.
/// let multi = trace.sessions.iter().filter(|s| s.n_turns() > 1).count();
/// assert!(multi > 50);
/// ```
pub struct Generator {
    profile: ShareGptProfile,
    rng: SimRng,
}

impl Generator {
    /// Creates a generator from a profile and seed.
    pub fn new(profile: ShareGptProfile, seed: u64) -> Self {
        Generator {
            profile,
            rng: SimRng::seed_from_u64(seed),
        }
    }

    /// Draws the number of turns for one session.
    fn draw_turns(&mut self) -> u32 {
        let p = &self.profile;
        if self.rng.chance(p.p_single_turn) {
            return 1;
        }
        // Shifted geometric: 2 + number of failures before first success.
        let mut turns = 2u32;
        while turns < p.max_turns && !self.rng.chance(p.turn_geo_p) {
            turns += 1;
        }
        turns
    }

    /// Draws one message length from a capped log-normal.
    fn draw_tokens(&mut self, mu: f64, sigma: f64) -> u32 {
        let raw = self.rng.lognormal(mu, sigma).round().max(1.0);
        (raw as u32).min(self.profile.max_message_tokens)
    }

    /// Draws one full session arriving at `arrival`.
    pub fn session(&mut self, id: u64, arrival: Time) -> SessionSpec {
        let n_turns = self.draw_turns();
        let p = self.profile.clone();
        let turns = (0..n_turns)
            .map(|_| TurnSpec {
                user_tokens: self.draw_tokens(p.user_mu, p.user_sigma),
                resp_tokens: self.draw_tokens(p.resp_mu, p.resp_sigma),
                think: Dur::from_secs_f64(if p.mean_think_secs > 0.0 {
                    self.rng.exp(p.mean_think_secs)
                } else {
                    0.0
                }),
                ttft_deadline: None,
            })
            .collect();
        SessionSpec {
            id,
            arrival,
            turns,
            content: None,
        }
    }

    /// Draws the next inter-arrival gap, honouring the burstiness phases,
    /// the surge window and the diurnal segments via the memorylessness
    /// of the exponential: when a gap would cross the nearest rate
    /// boundary (phase end, surge start or end, diurnal segment end), the
    /// residual is re-drawn at the new rate from the boundary.
    fn next_arrival(&mut self, mut now: f64, phase_high: &mut bool, phase_end: &mut f64) -> f64 {
        let base = self.profile.arrival_rate;
        let burst = self.profile.burstiness.clone();
        let surge = self.profile.surge.clone();
        let diurnal = self.profile.diurnal.clone();
        loop {
            let mut rate = base;
            if let Some(b) = &burst {
                rate *= if *phase_high {
                    b.high_factor
                } else {
                    b.low_factor
                };
            }
            let mut boundary = *phase_end;
            if let Some(s) = &surge {
                let end = s.start_secs + s.duration_secs;
                if now < s.start_secs {
                    boundary = boundary.min(s.start_secs);
                } else if now < end {
                    rate *= s.factor;
                    boundary = boundary.min(end);
                }
            }
            if let Some(d) = &diurnal {
                rate *= d.factor_at(now);
                boundary = boundary.min(d.segment_end(now));
            }
            let gap = self.rng.exp(1.0 / rate.max(1e-9));
            if now + gap <= boundary {
                return now + gap;
            }
            now = boundary;
            if now >= *phase_end {
                let b = burst
                    .as_ref()
                    .expect("a finite phase end implies burstiness");
                *phase_high = !*phase_high;
                *phase_end = now + self.rng.exp(b.mean_phase_secs);
            }
        }
    }

    /// Generates `n` sessions with (possibly modulated) Poisson arrivals
    /// starting at time zero.
    pub fn trace(&mut self, n: usize) -> Trace {
        let mut at = 0.0f64;
        let mut phase_high = true;
        let mut phase_end = match &self.profile.burstiness {
            Some(b) => self.rng.exp(b.mean_phase_secs),
            None => f64::INFINITY,
        };
        let mut sessions = Vec::with_capacity(n);
        for id in 0..n as u64 {
            at = self.next_arrival(at, &mut phase_high, &mut phase_end);
            sessions.push(self.session(id, Time::from_secs_f64(at)));
        }
        Trace::new(sessions)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn big_trace() -> Trace {
        Generator::new(ShareGptProfile::default(), 42).trace(20_000)
    }

    /// §2.3: 73% of ShareGPT conversations are multi-turn.
    #[test]
    fn multi_turn_fraction_matches_paper() {
        let t = big_trace();
        let multi = t.sessions.iter().filter(|s| s.n_turns() > 1).count();
        let frac = multi as f64 / t.sessions.len() as f64;
        assert!((frac - 0.73).abs() < 0.02, "multi-turn fraction {frac}");
    }

    /// §4.2: the average session has ~5.75 turns.
    #[test]
    fn mean_turns_matches_paper() {
        let t = big_trace();
        let mean = t.total_turns() as f64 / t.sessions.len() as f64;
        assert!((mean - 5.75).abs() < 0.4, "mean turns {mean}");
    }

    /// Figure 2b: ~47% of sessions exceed 2K tokens, ~30% exceed 4K.
    #[test]
    fn session_length_tail_matches_paper() {
        let t = big_trace();
        let n = t.sessions.len() as f64;
        let over_2k = t
            .sessions
            .iter()
            .filter(|s| s.total_tokens() > 2048)
            .count() as f64
            / n;
        let over_4k = t
            .sessions
            .iter()
            .filter(|s| s.total_tokens() > 4096)
            .count() as f64
            / n;
        assert!((over_2k - 0.47).abs() < 0.06, "P(>2K) = {over_2k}");
        assert!((over_4k - 0.30).abs() < 0.06, "P(>4K) = {over_4k}");
    }

    /// Arrivals form a Poisson process with the configured rate.
    #[test]
    fn arrival_rate_is_respected() {
        let profile = ShareGptProfile::default().with_arrival_rate(2.0);
        let t = Generator::new(profile, 7).trace(10_000);
        let span = t.sessions.last().unwrap().arrival.as_secs_f64();
        let rate = t.sessions.len() as f64 / span;
        assert!((rate - 2.0).abs() < 0.1, "rate {rate}");
    }

    #[test]
    fn generation_is_deterministic() {
        let a = Generator::new(ShareGptProfile::default(), 1).trace(100);
        let b = Generator::new(ShareGptProfile::default(), 1).trace(100);
        assert_eq!(a, b);
        let c = Generator::new(ShareGptProfile::default(), 2).trace(100);
        assert_ne!(a, c);
    }

    /// Bursty arrivals keep roughly the same mean rate but much higher
    /// windowed variance than the homogeneous process.
    #[test]
    fn burstiness_raises_variance_not_mean() {
        let smooth = Generator::new(ShareGptProfile::default(), 4).trace(8_000);
        let bursty = Generator::new(
            ShareGptProfile::default().with_burstiness(Burstiness::default()),
            4,
        )
        .trace(8_000);
        let windowed = |t: &Trace| -> (f64, f64) {
            let span = t.sessions.last().unwrap().arrival.as_secs_f64();
            let w = 60.0;
            let n = (span / w).ceil() as usize;
            let mut counts = vec![0f64; n];
            for s in &t.sessions {
                counts[((s.arrival.as_secs_f64() / w) as usize).min(n - 1)] += 1.0;
            }
            let mean = counts.iter().sum::<f64>() / n as f64;
            let var = counts.iter().map(|c| (c - mean).powi(2)).sum::<f64>() / n as f64;
            (mean, var)
        };
        let (sm, sv) = windowed(&smooth);
        let (bm, bv) = windowed(&bursty);
        assert!((bm - sm).abs() / sm < 0.25, "means {sm} vs {bm}");
        assert!(bv > 2.0 * sv, "variance {sv} vs {bv}");
    }

    /// Inside the surge window the arrival rate multiplies by the
    /// configured factor; outside it the base process is undisturbed.
    #[test]
    fn surge_concentrates_arrivals_in_its_window() {
        let surge = Surge {
            start_secs: 300.0,
            duration_secs: 300.0,
            factor: 5.0,
        };
        let profile = ShareGptProfile::default()
            .with_arrival_rate(2.0)
            .with_surge(surge.clone());
        let t = Generator::new(profile, 11).trace(12_000);
        let end = surge.start_secs + surge.duration_secs;
        let inside = t
            .sessions
            .iter()
            .filter(|s| {
                let at = s.arrival.as_secs_f64();
                at >= surge.start_secs && at < end
            })
            .count() as f64;
        let inside_rate = inside / surge.duration_secs;
        assert!(
            (inside_rate - 10.0).abs() < 1.0,
            "surge-window rate {inside_rate}"
        );
        let before = t
            .sessions
            .iter()
            .filter(|s| s.arrival.as_secs_f64() < surge.start_secs)
            .count() as f64;
        let before_rate = before / surge.start_secs;
        assert!(
            (before_rate - 2.0).abs() < 0.4,
            "pre-surge rate {before_rate}"
        );
    }

    /// The surge shape composes with burstiness without disturbing either
    /// process's determinism.
    #[test]
    fn surge_is_deterministic_and_composes_with_burstiness() {
        let profile = ShareGptProfile::default()
            .with_burstiness(Burstiness::default())
            .with_surge(Surge::default());
        let a = Generator::new(profile.clone(), 9).trace(500);
        let b = Generator::new(profile, 9).trace(500);
        assert_eq!(a, b);
    }

    /// The diurnal shape oscillates the windowed rate: the peak quarter
    /// of the cycle sees far more arrivals than the trough quarter, while
    /// the cycle-long mean stays near the base rate.
    #[test]
    fn diurnal_oscillates_rate_around_the_base() {
        let d = Diurnal {
            period_secs: 3600.0,
            amplitude: 0.8,
            segment_secs: 60.0,
        };
        let profile = ShareGptProfile::default()
            .with_arrival_rate(4.0)
            .with_diurnal(d.clone());
        let t = Generator::new(profile, 13).trace(40_000);
        // Peak quarter: sin ≈ 1 around period/4; trough around 3*period/4.
        let in_quarter = |center: f64| {
            t.sessions
                .iter()
                .filter(|s| {
                    let phase = s.arrival.as_secs_f64() % d.period_secs;
                    (phase - center).abs() < d.period_secs / 8.0
                })
                .count() as f64
        };
        let peak = in_quarter(d.period_secs / 4.0);
        let trough = in_quarter(3.0 * d.period_secs / 4.0);
        // Expected ratio (1 + a) / (1 - a) = 9 at a = 0.8; demand > 4x.
        assert!(
            peak > 4.0 * trough,
            "peak {peak} should dwarf trough {trough}"
        );
        let span = t.sessions.last().unwrap().arrival.as_secs_f64();
        let mean_rate = t.sessions.len() as f64 / span;
        assert!((mean_rate - 4.0).abs() < 0.5, "cycle mean rate {mean_rate}");
    }

    /// The diurnal shape is deterministic and composes with the other
    /// arrival shapes.
    #[test]
    fn diurnal_is_deterministic_and_composes() {
        let profile = ShareGptProfile::default()
            .with_burstiness(Burstiness::default())
            .with_surge(Surge::default())
            .with_diurnal(Diurnal::default());
        let a = Generator::new(profile.clone(), 9).trace(500);
        let b = Generator::new(profile, 9).trace(500);
        assert_eq!(a, b);
    }

    /// `diurnal: None` leaves every draw untouched: the field is strictly
    /// additive, so existing traces stay byte-identical.
    #[test]
    fn no_diurnal_is_the_old_process() {
        let plain = Generator::new(ShareGptProfile::default(), 1).trace(200);
        let explicit_none = Generator::new(
            ShareGptProfile {
                diurnal: None,
                ..ShareGptProfile::default()
            },
            1,
        )
        .trace(200);
        assert_eq!(plain, explicit_none);
    }

    #[test]
    fn caps_are_enforced() {
        let t = big_trace();
        for s in &t.sessions {
            assert!(s.n_turns() <= 40);
            for turn in &s.turns {
                assert!(turn.user_tokens >= 1 && turn.user_tokens <= 8192);
                assert!(turn.resp_tokens >= 1 && turn.resp_tokens <= 8192);
            }
        }
    }
}
