//! Trace format: sessions, turns and (de)serialization.

use serde::{Deserialize, Serialize};
use sim::{Dur, Time};

/// One conversation turn: the user's message and the model's reply.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TurnSpec {
    /// Tokens in the user's new message (`q_j`).
    pub user_tokens: u32,
    /// Tokens in the model's response (`a_j`), i.e. decode steps.
    pub resp_tokens: u32,
    /// Gap between this turn's response completing and the next turn
    /// arriving (unused on the last turn).
    pub think: Dur,
    /// Per-turn TTFT deadline relative to the turn's arrival, for
    /// SLO-aware scheduling. `None` means the serving side's default SLO
    /// target (if any) applies. Absent from the JSON trace format, which
    /// predates SLO-aware serving.
    #[serde(skip, default)]
    pub ttft_deadline: Option<Dur>,
}

/// Token-content identity of a session's stream, for block-granular
/// cross-session dedup.
///
/// The simulator never materializes tokens, so content is abstracted by
/// seeds: the first `shared_tokens` tokens are the verbatim text every
/// session with the same `shared_seed` presents (a system prompt, a
/// parent agent's context, a RAG document); everything after is private
/// to this session. Sessions without a declared content identity are
/// fully private.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PrefixContent {
    /// Seed naming the shared prefix content (pool/document/parent id).
    pub shared_seed: u64,
    /// Length of the shared prefix in tokens.
    pub shared_tokens: u64,
    /// Seed of the session-private tokens after the shared prefix.
    pub private_seed: u64,
}

/// One conversation session: an arrival time plus its turns.
///
/// The trace is *closed-loop*: only the session arrival is absolute; each
/// later turn arrives `think` after the engine finishes the previous
/// response, so slow serving stretches the timeline exactly as it would in
/// production.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SessionSpec {
    /// Stable session identifier.
    pub id: u64,
    /// Absolute arrival time of the first turn.
    pub arrival: Time,
    /// The session's turns, in order.
    pub turns: Vec<TurnSpec>,
    /// Declared token-content identity (block-keyed stores only; absent
    /// from the JSON trace format, which predates block keying).
    #[serde(skip, default)]
    pub content: Option<PrefixContent>,
}

impl SessionSpec {
    /// Total tokens across the whole session (user + response).
    pub fn total_tokens(&self) -> u64 {
        self.turns
            .iter()
            .map(|t| t.user_tokens as u64 + t.resp_tokens as u64)
            .sum()
    }

    /// Number of turns.
    pub fn n_turns(&self) -> usize {
        self.turns.len()
    }

    /// Historical tokens visible at the start of turn `idx` (0-based):
    /// everything said in earlier turns.
    pub fn historical_tokens_at(&self, idx: usize) -> u64 {
        self.turns[..idx]
            .iter()
            .map(|t| t.user_tokens as u64 + t.resp_tokens as u64)
            .sum()
    }
}

/// A full workload: every session, sorted by arrival.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Trace {
    /// Sessions sorted by `arrival`.
    pub sessions: Vec<SessionSpec>,
}

impl Trace {
    /// Wraps sessions, sorting them by arrival time.
    pub fn new(mut sessions: Vec<SessionSpec>) -> Self {
        sessions.sort_by_key(|s| (s.arrival, s.id));
        Trace { sessions }
    }

    /// Total turns across all sessions.
    pub fn total_turns(&self) -> usize {
        self.sessions.iter().map(SessionSpec::n_turns).sum()
    }

    /// Serializes to JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("trace serialization cannot fail")
    }

    /// Parses a trace back from [`Trace::to_json`] output.
    pub fn from_json(s: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn session() -> SessionSpec {
        SessionSpec {
            id: 3,
            arrival: Time::from_secs_f64(1.0),
            turns: vec![
                TurnSpec {
                    user_tokens: 10,
                    resp_tokens: 20,
                    think: Dur::from_secs_f64(5.0),
                    ttft_deadline: None,
                },
                TurnSpec {
                    user_tokens: 30,
                    resp_tokens: 40,
                    think: Dur::ZERO,
                    ttft_deadline: None,
                },
            ],
            content: None,
        }
    }

    #[test]
    fn token_accounting() {
        let s = session();
        assert_eq!(s.total_tokens(), 100);
        assert_eq!(s.n_turns(), 2);
        assert_eq!(s.historical_tokens_at(0), 0);
        assert_eq!(s.historical_tokens_at(1), 30);
    }

    #[test]
    fn trace_sorts_by_arrival() {
        let mut late = session();
        late.id = 1;
        late.arrival = Time::from_secs_f64(9.0);
        let early = session();
        let t = Trace::new(vec![late, early]);
        assert_eq!(t.sessions[0].id, 3);
        assert_eq!(t.sessions[1].id, 1);
        assert_eq!(t.total_turns(), 4);
    }

    #[test]
    fn json_round_trip() {
        let t = Trace::new(vec![session()]);
        let json = t.to_json();
        let back = Trace::from_json(&json).unwrap();
        assert_eq!(t, back);
    }

    #[test]
    fn malformed_json_is_an_error() {
        assert!(Trace::from_json("{nope").is_err());
    }

    /// `ttft_deadline` rides only in memory: the JSON format predates SLO
    /// serving, so serialization drops it and parsing restores `None`.
    #[test]
    fn deadlines_are_skipped_by_the_json_format() {
        let mut s = session();
        s.turns[0].ttft_deadline = Some(Dur::from_secs_f64(2.5));
        let t = Trace::new(vec![s]);
        let json = t.to_json();
        assert!(!json.contains("ttft_deadline"));
        let back = Trace::from_json(&json).unwrap();
        assert_eq!(back.sessions[0].turns[0].ttft_deadline, None);
    }
}
