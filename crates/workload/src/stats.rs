//! Dataset statistics behind Figures 2 and 4.

use crate::Trace;

/// Distribution of turn counts: `hist[t]` = fraction of sessions with
/// exactly `t+1` turns (index 0 = single-turn), capped at `max_turns`.
pub fn turn_histogram(trace: &Trace, max_turns: usize) -> Vec<f64> {
    let mut hist = vec![0u64; max_turns];
    for s in &trace.sessions {
        let bin = s.n_turns().min(max_turns) - 1;
        hist[bin] += 1;
    }
    let n = trace.sessions.len().max(1) as f64;
    hist.into_iter().map(|c| c as f64 / n).collect()
}

/// Fraction of sessions whose total token count exceeds `threshold`.
pub fn fraction_longer_than(trace: &Trace, threshold: u64) -> f64 {
    if trace.sessions.is_empty() {
        return 0.0;
    }
    let over = trace
        .sessions
        .iter()
        .filter(|s| s.total_tokens() > threshold)
        .count();
    over as f64 / trace.sessions.len() as f64
}

/// Cumulative distribution of session lengths at the given thresholds:
/// returns `(threshold, fraction ≤ threshold)` pairs.
pub fn session_length_cdf(trace: &Trace, thresholds: &[u64]) -> Vec<(u64, f64)> {
    thresholds
        .iter()
        .map(|&th| (th, 1.0 - fraction_longer_than(trace, th)))
        .collect()
}

/// Figure 4a: for each turn index (1-based), the mean number of historical
/// tokens and mean number of new input tokens across sessions that reach
/// that turn.
///
/// Returns `(turn, mean_historical, mean_new)` rows up to `max_turn`.
pub fn historical_vs_new(trace: &Trace, max_turn: usize) -> Vec<(usize, f64, f64)> {
    let mut rows = Vec::new();
    for turn in 1..=max_turn {
        let idx = turn - 1;
        let mut hist_sum = 0f64;
        let mut new_sum = 0f64;
        let mut n = 0u64;
        for s in &trace.sessions {
            if s.n_turns() > idx {
                hist_sum += s.historical_tokens_at(idx) as f64;
                new_sum += s.turns[idx].user_tokens as f64;
                n += 1;
            }
        }
        if n == 0 {
            break;
        }
        rows.push((turn, hist_sum / n as f64, new_sum / n as f64));
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Generator, ShareGptProfile};

    fn trace() -> Trace {
        Generator::new(ShareGptProfile::default(), 11).trace(10_000)
    }

    #[test]
    fn turn_histogram_sums_to_one() {
        let t = trace();
        let hist = turn_histogram(&t, 40);
        let total: f64 = hist.iter().sum();
        assert!((total - 1.0).abs() < 1e-9);
        assert!((hist[0] - 0.27).abs() < 0.03, "single-turn {}", hist[0]);
    }

    #[test]
    fn cdf_is_monotone() {
        let t = trace();
        let cdf = session_length_cdf(&t, &[512, 1024, 2048, 4096, 8192]);
        for pair in cdf.windows(2) {
            assert!(pair[0].1 <= pair[1].1);
        }
    }

    /// Figure 4a's headline: by late turns, historical tokens dominate new
    /// input tokens by more than an order of magnitude.
    #[test]
    fn historical_tokens_dominate_in_late_turns() {
        let t = trace();
        let rows = historical_vs_new(&t, 20);
        let (_, hist, new) = rows[rows.len() - 1];
        assert!(
            hist / (hist + new) > 0.9,
            "historical share {}",
            hist / (hist + new)
        );
        // Turn 1 has no history at all.
        assert_eq!(rows[0].1, 0.0);
    }

    #[test]
    fn empty_trace_is_safe() {
        let t = Trace::default();
        assert_eq!(fraction_longer_than(&t, 10), 0.0);
        assert!(historical_vs_new(&t, 5).is_empty());
    }
}
