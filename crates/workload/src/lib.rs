#![warn(missing_docs)]

//! Multi-turn conversation workloads.
//!
//! The paper drives its evaluation with the ShareGPT dataset: 90K real
//! ChatGPT conversations where 73% are multi-turn (mean 5.75 turns per
//! session), 47% of sessions exceed 2K tokens and 30% exceed 4K (Figure 2,
//! §4.2). Request arrival times are not in the dataset, so the paper draws
//! session arrivals from a Poisson process (λ = 1.0/s).
//!
//! This crate reproduces that workload:
//!
//! - [`ShareGptProfile`]: the calibrated distribution parameters.
//! - [`Generator`]: deterministic synthetic session generation.
//! - [`SessionSpec`] / [`TurnSpec`]: the closed-loop trace format — turn
//!   `j+1` arrives a *think time* after turn `j`'s response completes, so
//!   the serving engine controls the actual timeline.
//! - [`PrefixProfile`]: shared-prefix shapes (fleet system prompts,
//!   agentic fan-out, Zipf-hot RAG documents) stamped over the base
//!   workload for cross-session KV dedup studies.
//! - [`sharegpt`]: a loader for real ShareGPT-format JSON, should the user
//!   have the dataset.
//! - [`stats`]: the dataset statistics behind Figures 2 and 4.

mod gen;
mod prefix;
pub mod sharegpt;
pub mod stats;
mod trace;

pub use gen::{Burstiness, Diurnal, Generator, ShareGptProfile, Surge};
pub use prefix::{PrefixProfile, PrefixScenario};
pub use trace::{PrefixContent, SessionSpec, Trace, TurnSpec};
