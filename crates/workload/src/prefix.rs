//! Shared-prefix workload shapes for block-granular KV dedup studies.
//!
//! The ShareGPT generator models every conversation as fully private
//! text, which is the worst case for content-addressed storage. Real
//! fleets are not like that: chatbots prepend one system prompt to
//! every conversation, agentic frameworks fan a parent context out to
//! N child sessions, and RAG pipelines stuff the same hot documents
//! into many requests. [`PrefixProfile`] layers those shapes over the
//! calibrated base workload by stamping each generated session with a
//! [`PrefixContent`] identity and growing its first turn by the shared
//! prefix, so a block-keyed store sees real cross-session overlap while
//! a per-session store sees the same token counts with zero overlap.

use sim::SimRng;

use crate::{Generator, PrefixContent, ShareGptProfile, Trace};

/// Which cross-session sharing shape to impose on the workload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PrefixScenario {
    /// Every session opens with one of `pools` system prompts of
    /// `prompt_tokens` tokens; sessions are spread over the pools
    /// round-robin (a fleet of products, each with its own prompt).
    SharedSystemPrompt {
        /// Number of distinct system prompts in the fleet.
        pools: u64,
        /// Tokens of each system prompt.
        prompt_tokens: u64,
    },
    /// Consecutive groups of `children` sessions share a parent agent's
    /// `parent_tokens`-token context (plan-and-execute fan-out).
    AgenticFanOut {
        /// Child sessions spawned per parent context.
        children: u64,
        /// Tokens of the parent context every child inherits.
        parent_tokens: u64,
    },
    /// Each session stuffs one of `docs` documents of `doc_tokens`
    /// tokens, drawn Zipf(`zipf_s`) so a few documents are hot (RAG
    /// over a skewed corpus).
    RagDocuments {
        /// Corpus size.
        docs: u64,
        /// Tokens per stuffed document.
        doc_tokens: u64,
        /// Zipf skew exponent (larger = hotter head).
        zipf_s: f64,
    },
}

impl PrefixScenario {
    /// Lowercase label used in experiment tables.
    pub fn label(&self) -> &'static str {
        match self {
            PrefixScenario::SharedSystemPrompt { .. } => "system_prompt",
            PrefixScenario::AgenticFanOut { .. } => "agentic_fanout",
            PrefixScenario::RagDocuments { .. } => "rag_documents",
        }
    }
}

/// A ShareGPT-calibrated workload with a cross-session sharing shape
/// stamped on top.
///
/// # Examples
///
/// ```
/// use workload::{PrefixProfile, PrefixScenario, ShareGptProfile};
///
/// let profile = PrefixProfile::new(
///     ShareGptProfile::default(),
///     PrefixScenario::SharedSystemPrompt { pools: 4, prompt_tokens: 512 },
/// );
/// let trace = profile.trace(42, 100);
/// assert_eq!(trace.sessions.len(), 100);
/// // Every session declares a content identity with the shared span.
/// assert!(trace.sessions.iter().all(|s| {
///     s.content.is_some_and(|c| c.shared_tokens == 512)
/// }));
/// ```
#[derive(Debug, Clone)]
pub struct PrefixProfile {
    /// The base conversation-shape distribution.
    pub base: ShareGptProfile,
    /// The sharing shape stamped on the generated sessions.
    pub scenario: PrefixScenario,
}

/// splitmix64 finalizer for deriving stable content seeds.
fn mix(mut x: u64) -> u64 {
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d049bb133111eb);
    x ^ (x >> 31)
}

impl PrefixProfile {
    /// Wraps `base` with `scenario`.
    pub fn new(base: ShareGptProfile, scenario: PrefixScenario) -> Self {
        PrefixProfile { base, scenario }
    }

    /// Generates `n` sessions from `seed`: the base trace with each
    /// session stamped with its [`PrefixContent`] and its first turn
    /// grown by the shared prefix (the prompt/context/document is real
    /// input the engine must prefill — once per *content* under block
    /// keying, once per *session* under per-session keying).
    pub fn trace(&self, seed: u64, n: usize) -> Trace {
        let mut trace = Generator::new(self.base.clone(), seed).trace(n);
        // Scenario draws use their own stream so the base conversation
        // shapes stay identical to the unwrapped generator's.
        let mut rng = SimRng::seed_from_u64(mix(seed ^ 0x7072_6566_6978_0001));
        for (i, s) in trace.sessions.iter_mut().enumerate() {
            let (shared_seed, shared_tokens) = match self.scenario {
                PrefixScenario::SharedSystemPrompt {
                    pools,
                    prompt_tokens,
                } => (mix(seed ^ mix(i as u64 % pools.max(1))), prompt_tokens),
                PrefixScenario::AgenticFanOut {
                    children,
                    parent_tokens,
                } => (
                    mix(seed ^ mix(0x6661_6e6f_7574 ^ (i as u64 / children.max(1)))),
                    parent_tokens,
                ),
                PrefixScenario::RagDocuments {
                    docs,
                    doc_tokens,
                    zipf_s,
                } => (
                    mix(seed ^ mix(0x0072_6167 ^ rng.zipf(docs.max(1), zipf_s))),
                    doc_tokens,
                ),
            };
            s.content = Some(PrefixContent {
                shared_seed,
                shared_tokens,
                private_seed: mix(seed ^ mix(s.id ^ 0xa076_1d64_78bd_642f)),
            });
            // The shared prefix is real first-turn input.
            let t0 = &mut s.turns[0];
            t0.user_tokens = t0
                .user_tokens
                .saturating_add(shared_tokens.min(u32::MAX as u64) as u32);
        }
        trace
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> ShareGptProfile {
        ShareGptProfile::default()
    }

    #[test]
    fn system_prompt_pools_share_seeds_round_robin() {
        let p = PrefixProfile::new(
            base(),
            PrefixScenario::SharedSystemPrompt {
                pools: 3,
                prompt_tokens: 256,
            },
        );
        let t = p.trace(7, 30);
        let seeds: Vec<u64> = t
            .sessions
            .iter()
            .map(|s| s.content.unwrap().shared_seed)
            .collect();
        let distinct: std::collections::BTreeSet<u64> = seeds.iter().copied().collect();
        assert_eq!(distinct.len(), 3);
        // Trace::new re-sorts by arrival but ids are assigned in
        // generation order, so pool membership follows the id.
        for s in &t.sessions {
            assert_eq!(s.content.unwrap().shared_tokens, 256);
        }
    }

    #[test]
    fn first_turn_carries_the_shared_prefix() {
        let p = PrefixProfile::new(
            base(),
            PrefixScenario::SharedSystemPrompt {
                pools: 1,
                prompt_tokens: 512,
            },
        );
        let plain = Generator::new(base(), 7).trace(20);
        let stamped = p.trace(7, 20);
        for (a, b) in plain.sessions.iter().zip(&stamped.sessions) {
            assert_eq!(a.id, b.id);
            assert_eq!(b.turns[0].user_tokens, a.turns[0].user_tokens + 512);
            // Later turns are untouched.
            for (ta, tb) in a.turns.iter().zip(&b.turns).skip(1) {
                assert_eq!(ta, tb);
            }
        }
    }

    #[test]
    fn fanout_groups_children_consecutively() {
        let p = PrefixProfile::new(
            base(),
            PrefixScenario::AgenticFanOut {
                children: 5,
                parent_tokens: 1024,
            },
        );
        let t = p.trace(11, 25);
        let mut by_id: Vec<&crate::SessionSpec> = t.sessions.iter().collect();
        by_id.sort_by_key(|s| s.id);
        for group in by_id.chunks(5) {
            let seed0 = group[0].content.unwrap().shared_seed;
            assert!(group
                .iter()
                .all(|s| s.content.unwrap().shared_seed == seed0));
        }
        let distinct: std::collections::BTreeSet<u64> = by_id
            .iter()
            .map(|s| s.content.unwrap().shared_seed)
            .collect();
        assert_eq!(distinct.len(), 5);
    }

    #[test]
    fn rag_documents_are_zipf_hot() {
        let p = PrefixProfile::new(
            base(),
            PrefixScenario::RagDocuments {
                docs: 100,
                doc_tokens: 800,
                zipf_s: 1.2,
            },
        );
        let t = p.trace(3, 2_000);
        let mut counts = std::collections::BTreeMap::new();
        for s in &t.sessions {
            *counts.entry(s.content.unwrap().shared_seed).or_insert(0u64) += 1;
        }
        let max = *counts.values().max().unwrap();
        // Zipf(1.2) over 100 docs puts far more than a uniform 1/100 of
        // the mass on the hottest document.
        assert!(max > 200, "hottest doc drew {max} of 2000 sessions");
        // Private seeds never collide.
        let privates: std::collections::BTreeSet<u64> = t
            .sessions
            .iter()
            .map(|s| s.content.unwrap().private_seed)
            .collect();
        assert_eq!(privates.len(), t.sessions.len());
    }

    #[test]
    fn stamping_is_deterministic() {
        let p = PrefixProfile::new(
            base(),
            PrefixScenario::RagDocuments {
                docs: 10,
                doc_tokens: 100,
                zipf_s: 1.0,
            },
        );
        assert_eq!(p.trace(5, 50), p.trace(5, 50));
    }

    #[test]
    fn labels() {
        let s = PrefixScenario::SharedSystemPrompt {
            pools: 1,
            prompt_tokens: 1,
        };
        assert_eq!(s.label(), "system_prompt");
    }
}
